#!/usr/bin/env python
"""Flag bare and swallowed exception handlers by static AST analysis.

Usage: ``python tools/check_exception_hygiene.py src/repro``

Two patterns are reported, both of which have hidden real bugs in this
codebase before (a swallowed ``LinAlgError`` masking a degenerate refit,
a broad matching fallback hiding malformed cost matrices):

* **bare handlers** — ``except:`` catches everything including
  ``KeyboardInterrupt``/``SystemExit``; name the exceptions instead;
* **swallowed broad handlers** — ``except Exception:`` (or
  ``BaseException``) whose body neither re-raises, returns/continues
  with a value, calls anything, nor assigns — i.e. silently drops the
  error on the floor (a lone ``pass``).  Broad handlers that *do*
  something (roll back and re-raise, record a fallback) are allowed:
  the smell is the silent swallow, not the breadth.

An ``OSError``-narrowed cleanup handler (``except OSError: pass``) is
fine — narrow swallows are deliberate by construction.

Exit code 1 when any finding exists.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path
from typing import Iterator, List, Tuple

_BROAD = {"Exception", "BaseException"}


def _names(node: ast.expr) -> Iterator[str]:
    """Exception class names referenced by an ``except`` clause."""
    if isinstance(node, ast.Name):
        yield node.id
    elif isinstance(node, ast.Attribute):
        yield node.attr
    elif isinstance(node, ast.Tuple):
        for elt in node.elts:
            yield from _names(elt)


def _swallows(handler: ast.ExceptHandler) -> bool:
    """True when the handler body does nothing with the error."""
    for stmt in handler.body:
        if not isinstance(stmt, (ast.Pass, ast.Expr)):
            return False
        if isinstance(stmt, ast.Expr) and not isinstance(
            stmt.value, ast.Constant
        ):
            return False  # an expression with effects (a call) is "doing"
    return True


def check_file(path: Path) -> List[Tuple[int, str]]:
    tree = ast.parse(path.read_text(), filename=str(path))
    findings: List[Tuple[int, str]] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.ExceptHandler):
            continue
        if node.type is None:
            findings.append(
                (node.lineno, "bare 'except:' — name the exception types")
            )
            continue
        caught = set(_names(node.type))
        if caught & _BROAD and _swallows(node):
            findings.append(
                (
                    node.lineno,
                    "swallowed broad handler — 'except "
                    f"{'/'.join(sorted(caught & _BROAD))}' with an empty "
                    "body hides real failures; narrow it or handle the "
                    "error",
                )
            )
    return findings


def main(argv: List[str]) -> int:
    if len(argv) != 2:
        print(__doc__)
        return 2
    root = Path(argv[1])
    if not root.is_dir():
        print(f"error: {root} is not a directory", file=sys.stderr)
        return 2
    total = 0
    for path in sorted(root.rglob("*.py")):
        for lineno, message in check_file(path):
            print(f"{path}:{lineno}: {message}")
            total += 1
    if total:
        print(f"{total} exception-hygiene finding(s)")
        return 1
    print("exception hygiene: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
