#!/usr/bin/env python
"""Gate CI on committed fleet-kernel benchmark results.

Usage: ``python tools/check_bench.py BENCH_4.json``

Reads the results file ``make bench`` writes and fails (exit code 1) when
the optimized engine round is *slower* than the scalar oracle — i.e. when
``engine_round.speedup`` drops below 1.0.  The bench itself asserts the
stronger paper-scale target (>= 1.3) when it runs; this check is the
cheap regression tripwire for environments that only re-validate the
committed numbers.  Also sanity-checks that the incremental cost cache
actually served queries (a 0-hit cache was the bug this PR removed).
"""

from __future__ import annotations

import json
import sys
from pathlib import Path


def check(path: Path) -> int:
    try:
        results = json.loads(path.read_text())
    except FileNotFoundError:
        print(f"check_bench: {path} not found — run `make bench` first")
        return 1
    except json.JSONDecodeError as exc:
        print(f"check_bench: {path} is not valid JSON: {exc}")
        return 1
    failures = []
    speedup = results.get("engine_round", {}).get("speedup")
    if not isinstance(speedup, (int, float)):
        failures.append("engine_round.speedup missing")
    elif speedup < 1.0:
        failures.append(
            f"engine_round.speedup = {speedup:.3f} < 1.0 — the fleet-kernel "
            "path is slower than the scalar oracle"
        )
    hits = results.get("cost_cache", {}).get("hits")
    if not isinstance(hits, int):
        failures.append("cost_cache.hits missing")
    elif hits <= 0:
        failures.append("cost_cache.hits = 0 — the cost cache never hit")
    if failures:
        for f in failures:
            print(f"check_bench: FAIL: {f}")
        return 1
    print(
        f"check_bench: OK — engine_round.speedup = {speedup:.3f}, "
        f"cost_cache.hits = {hits}"
    )
    return 0


if __name__ == "__main__":
    if len(sys.argv) != 2:
        print(__doc__)
        sys.exit(2)
    sys.exit(check(Path(sys.argv[1])))
