#!/usr/bin/env python
"""Gate CI on committed benchmark results.

Usage: ``python tools/check_bench.py BENCH_4.json [BENCH_5.json ...]``

Reads the results files the ``make bench`` targets write and fails (exit
code 1) when a committed claim no longer holds.  The benches themselves
assert the stronger targets when they run; these checks are the cheap
regression tripwires for environments that only re-validate the
committed numbers.  The schema is dispatched per file:

* **BENCH_4** (fleet kernels): ``engine_round.speedup >= 1.0`` — the
  vectorized path must not be slower than the scalar oracle — and
  ``cost_cache.hits > 0`` (a 0-hit cache was the bug PR 4 removed).
* **BENCH_5** (tracer overhead): ``tracer_overhead.null_identical`` —
  the NULL_TRACER run decided byte-identically to the traced run — and
  ``tracer_overhead.overhead_frac < 0.10`` — full event recording plus
  lifecycle stitching costs under 10 % of a fleet round.
* **BENCH_7** (scale ladder): every rung stayed byte-identical to the
  serial engine, the pod partition's shard efficiency held ``>= 0.7``,
  and the k=8 rung (BENCH_2's engine_round configuration) shows the
  persistent pool at ``>= 1.3x`` over the seed's serial loop.
* **BENCH_8** (confidence gate): ``confidence_overhead.neutral_identical``
  — enabling the gate with neutral fleet signals decided byte-identically
  to the point-forecast path — and ``overhead_frac < 0.10`` — carrying
  the gate costs within noise of an engine round.
* **BENCH_10** (SLO accounting): ``slo_overhead.disabled_identical`` —
  enabling the violation-minutes accountant decided byte-identically to
  the slo-off engine — and ``overhead_frac < 0.10`` — keeping the full
  per-tenant ledger costs within noise of an engine round.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path
from typing import List


def _check_bench_4(results: dict, failures: List[str]) -> str:
    speedup = results.get("engine_round", {}).get("speedup")
    if not isinstance(speedup, (int, float)):
        failures.append("engine_round.speedup missing")
    elif speedup < 1.0:
        failures.append(
            f"engine_round.speedup = {speedup:.3f} < 1.0 — the fleet-kernel "
            "path is slower than the scalar oracle"
        )
    hits = results.get("cost_cache", {}).get("hits")
    if not isinstance(hits, int):
        failures.append("cost_cache.hits missing")
    elif hits <= 0:
        failures.append("cost_cache.hits = 0 — the cost cache never hit")
    if failures:
        return ""
    return f"engine_round.speedup = {speedup:.3f}, cost_cache.hits = {hits}"


def _check_bench_5(results: dict, failures: List[str]) -> str:
    over = results.get("tracer_overhead", {})
    identical = over.get("null_identical")
    if identical is not True:
        failures.append(
            "tracer_overhead.null_identical is not true — the traced run "
            "decided differently from the NULL_TRACER run"
        )
    frac = over.get("overhead_frac")
    if not isinstance(frac, (int, float)):
        failures.append("tracer_overhead.overhead_frac missing")
    elif frac >= 0.10:
        failures.append(
            f"tracer_overhead.overhead_frac = {frac:.3f} >= 0.10 — event "
            "recording costs more than 10% of a fleet round"
        )
    spans = results.get("span_export", {}).get("spans")
    if not isinstance(spans, int) or spans <= 0:
        failures.append("span_export.spans missing or zero")
    if failures:
        return ""
    return (
        f"tracer overhead = {100.0 * frac:.1f}% (null-identical), "
        f"{spans} spans exported"
    )


def _check_bench_7(results: dict, failures: List[str]) -> str:
    ladder = results.get("scale_ladder")
    if not isinstance(ladder, dict) or not ladder:
        failures.append("scale_ladder missing or empty")
        return ""
    for name, rung in sorted(ladder.items()):
        if rung.get("identical") is not True:
            failures.append(
                f"{name}: identical is not true — a pooled engine diverged "
                "from the workers=0 loop"
            )
        eff = rung.get("sharded_efficiency")
        if not isinstance(eff, (int, float)):
            failures.append(f"{name}: sharded_efficiency missing")
        elif eff < 0.7:
            failures.append(
                f"{name}: sharded_efficiency = {eff:.3f} < 0.7 — the pod "
                "partition left shards unbalanced"
            )
    k8 = ladder.get("k8", {})
    speedup = k8.get("pooled_speedup")
    if not isinstance(speedup, (int, float)):
        failures.append("k8.pooled_speedup missing")
    elif speedup < 1.3:
        failures.append(
            f"k8.pooled_speedup = {speedup:.3f} < 1.3 — the persistent pool "
            "lost its margin over the serial loop at paper scale"
        )
    if failures:
        return ""
    effs = ", ".join(
        f"{name}={ladder[name]['sharded_efficiency']:.2f}" for name in sorted(ladder)
    )
    return f"k8.pooled_speedup = {speedup:.3f}, shard efficiency {effs}"


def _check_bench_8(results: dict, failures: List[str]) -> str:
    over = results.get("confidence_overhead", {})
    identical = over.get("neutral_identical")
    if identical is not True:
        failures.append(
            "confidence_overhead.neutral_identical is not true — the "
            "neutral-stance gate decided differently from the "
            "point-forecast path"
        )
    frac = over.get("overhead_frac")
    if not isinstance(frac, (int, float)):
        failures.append("confidence_overhead.overhead_frac missing")
    elif frac >= 0.10:
        failures.append(
            f"confidence_overhead.overhead_frac = {frac:.3f} >= 0.10 — "
            "carrying the confidence gate costs more than noise"
        )
    if failures:
        return ""
    return (
        f"neutral gate overhead = {100.0 * frac:.1f}% (identical decisions)"
    )


def _check_bench_10(results: dict, failures: List[str]) -> str:
    over = results.get("slo_overhead", {})
    identical = over.get("disabled_identical")
    if identical is not True:
        failures.append(
            "slo_overhead.disabled_identical is not true — the accounting "
            "run decided differently from the slo-off engine"
        )
    frac = over.get("overhead_frac")
    if not isinstance(frac, (int, float)):
        failures.append("slo_overhead.overhead_frac missing")
    elif frac >= 0.10:
        failures.append(
            f"slo_overhead.overhead_frac = {frac:.3f} >= 0.10 — the "
            "violation-minutes ledger costs more than noise"
        )
    minutes = over.get("slo_accounting", {}).get("violation_minutes")
    if not isinstance(minutes, (int, float)) or minutes <= 0.0:
        failures.append(
            "slo_overhead.slo_accounting.violation_minutes missing or zero "
            "— the benchmark scenario charged nothing"
        )
    if failures:
        return ""
    return (
        f"slo accounting overhead = {100.0 * frac:.1f}% "
        f"(identical decisions, {minutes:.2f} violation-minutes charged)"
    )


def _dispatch(results: dict):
    if "slo_overhead" in results:
        return _check_bench_10
    if "confidence_overhead" in results:
        return _check_bench_8
    if "scale_ladder" in results:
        return _check_bench_7
    if "tracer_overhead" in results:
        return _check_bench_5
    if "engine_round" in results:
        return _check_bench_4
    return None


def check(path: Path) -> int:
    try:
        results = json.loads(path.read_text())
    except FileNotFoundError:
        print(f"check_bench: {path} not found — run `make bench` first")
        return 1
    except json.JSONDecodeError as exc:
        print(f"check_bench: {path} is not valid JSON: {exc}")
        return 1
    checker = _dispatch(results)
    if checker is None:
        print(f"check_bench: {path}: unrecognized results schema")
        return 1
    failures: List[str] = []
    summary = checker(results, failures)
    if failures:
        for f in failures:
            print(f"check_bench: {path.name}: FAIL: {f}")
        return 1
    print(f"check_bench: {path.name}: OK — {summary}")
    return 0


if __name__ == "__main__":
    if len(sys.argv) < 2:
        print(__doc__)
        sys.exit(2)
    sys.exit(max(check(Path(arg)) for arg in sys.argv[1:]))
