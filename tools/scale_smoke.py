#!/usr/bin/env python
"""CI smoke for the persistent planner pool (`make scale-smoke`).

A fast, deterministic slice of the BENCH_7 scale ladder: run a few
rounds on a small fat-tree under all three engines — serial
(``workers=0``), pooled (``planner="process"``) and pod-sharded
(``planner="sharded"``) — and assert

* byte-identical round summaries and final placements across engines,
* the pool forked once, shipped once per round, and repaired (move
  deltas) rather than re-pickling the fleet,
* clean teardown (workers joined, shared segments unlinked).

Exit code 0 on success; prints a one-line verdict per engine.
"""

from __future__ import annotations

import dataclasses
import sys

from repro.cluster import build_cluster
from repro.config import SheriffConfig
from repro.sim import SheriffSimulation, inject_fraction_alerts
from repro.topology import build_fattree

SEED = 2015
ROUNDS = 4

ENGINES = {
    "serial": dict(workers=0),
    "pooled": dict(planner="process", workers=2),
    "sharded": dict(planner="sharded"),
}


def _summary_key(summary):
    d = dataclasses.asdict(summary)
    for key in ("timings", "reports", "pool"):
        d.pop(key, None)
    return d


def main() -> int:
    results = {}
    for name, kw in ENGINES.items():
        cluster = build_cluster(
            build_fattree(4),
            hosts_per_rack=4,
            fill_fraction=0.5,
            skew=1.1,
            seed=SEED,
            delay_sensitive_fraction=0.1,
        )
        sim = SheriffSimulation(cluster, SheriffConfig(**kw))
        for r in range(ROUNDS):
            alerts, vma = inject_fraction_alerts(
                cluster, 0.1, time=r, seed=SEED + r
            )
            sim.run_round(alerts, vma)
        pool = sim.history[-1].pool
        results[name] = (
            [_summary_key(s) for s in sim.history],
            cluster.placement.vm_host.tolist(),
            pool,
        )
        if name != "serial":
            if pool.get("attached", 0) < 1:
                print(f"scale-smoke: FAIL: {name} never attached workers")
                return 1
            if pool.get("ships", 0) != ROUNDS:
                print(
                    f"scale-smoke: FAIL: {name} shipped "
                    f"{pool.get('ships')} times for {ROUNDS} rounds"
                )
                return 1
        planner_pool = sim._planner if sim._planner is not None else None
        sim.close()
        if planner_pool is not None and any(
            p.is_alive() for p in planner_pool._procs
        ):
            print(f"scale-smoke: FAIL: {name} left workers running")
            return 1
        print(
            f"scale-smoke: {name}: {ROUNDS} rounds ok"
            + (
                f" (shards={int(pool['attached'])}, ships={int(pool['ships'])},"
                f" repairs={int(pool['repairs'])})"
                if pool
                else ""
            )
        )
    base_summaries, base_placement, _ = results["serial"]
    for name, (summaries, placement, _) in results.items():
        if summaries != base_summaries or placement != base_placement:
            print(f"scale-smoke: FAIL: {name} diverged from the serial engine")
            return 1
    print("scale-smoke: pooled planners byte-identical to serial: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
