#!/usr/bin/env python
"""Detect import cycles inside a package by static AST analysis.

Usage: ``python tools/check_import_cycles.py src/repro``

Builds the intra-package import graph (``import x`` / ``from x import y``
statements, resolved against the package root; importing a submodule also
counts as importing every ancestor package, because Python executes the
parent ``__init__`` first — except ancestors the importing module itself
lives under, since re-entering a partially-initialized parent package is
well-defined) and reports every strongly connected component with more
than one module.  Exit code 1 when a cycle exists.

Only imports that actually execute at module-import time count: bodies
of ``if TYPE_CHECKING:`` blocks and of function definitions are skipped
(they run never / later), as are imports built with ``importlib`` at
runtime (a lazy facade's ``__getattr__``) — laziness is precisely how a
facade stays cycle-free.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path
from typing import Dict, Iterator, List, Set, Tuple


def module_name(root: Path, path: Path, pkg: str) -> str:
    # *root* is the directory containing the package dir, so the relative
    # parts already start with *pkg* (e.g. ("repro", "sim", "engine"))
    rel = path.relative_to(root).with_suffix("")
    parts = list(rel.parts)
    if parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts) if parts else pkg


def _is_type_checking_guard(node: ast.If) -> bool:
    t = node.test
    return (isinstance(t, ast.Name) and t.id == "TYPE_CHECKING") or (
        isinstance(t, ast.Attribute) and t.attr == "TYPE_CHECKING"
    )


def _import_time_nodes(tree: ast.AST) -> Iterator[ast.AST]:
    """Statements that execute when the module is imported.

    Descends into conditionals and class bodies but not into function
    bodies (run later) or ``if TYPE_CHECKING:`` blocks (run never).
    """
    stack: List[ast.AST] = [tree]
    while stack:
        node = stack.pop()
        yield node
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            if isinstance(child, ast.If) and _is_type_checking_guard(child):
                stack.extend(child.orelse)  # the else branch does run
                continue
            stack.append(child)


def iter_imports(tree: ast.AST, current: str, pkg: str) -> Iterator[str]:
    """Imported module names (absolute, package-internal only)."""
    for node in _import_time_nodes(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == pkg or alias.name.startswith(pkg + "."):
                    yield alias.name
        elif isinstance(node, ast.ImportFrom):
            if node.level:  # relative import: resolve against current
                base = current.split(".")
                # level 1 = current package; drop one extra per level
                base = base[: len(base) - node.level + (0 if node.module else 0)]
                target = ".".join(base + ([node.module] if node.module else []))
            else:
                target = node.module or ""
            if target == pkg or target.startswith(pkg + "."):
                yield target


def ancestors(mod: str, pkg: str) -> Iterator[str]:
    """The module plus every enclosing package down to (incl.) *pkg*."""
    parts = mod.split(".")
    for i in range(1, len(parts) + 1):
        candidate = ".".join(parts[:i])
        if candidate == pkg or candidate.startswith(pkg):
            yield candidate


def build_graph(root: Path) -> Dict[str, Set[str]]:
    pkg = root.name
    graph: Dict[str, Set[str]] = {}
    for path in sorted(root.rglob("*.py")):
        mod = module_name(root.parent, path, pkg)
        tree = ast.parse(path.read_text(), filename=str(path))
        edges: Set[str] = set()
        for target in iter_imports(tree, mod, pkg):
            # importing a.b.c executes a/__init__ and a.b/__init__ too —
            # but a parent package of *mod* itself re-enters harmlessly
            for anc in ancestors(target, pkg):
                if anc == mod or mod == anc or mod.startswith(anc + "."):
                    continue
                edges.add(anc)
        graph.setdefault(mod, set()).update(edges)
    # keep edges only to modules that exist in the scanned tree
    known = set(graph)
    return {m: {e for e in edges if e in known} for m, edges in graph.items()}


def strongly_connected(graph: Dict[str, Set[str]]) -> List[List[str]]:
    """Tarjan's algorithm, iterative (no recursion-limit surprises)."""
    index: Dict[str, int] = {}
    lowlink: Dict[str, int] = {}
    on_stack: Set[str] = set()
    stack: List[str] = []
    result: List[List[str]] = []
    counter = 0

    for start in graph:
        if start in index:
            continue
        work: List[Tuple[str, Iterator[str]]] = [(start, iter(graph[start]))]
        index[start] = lowlink[start] = counter
        counter += 1
        stack.append(start)
        on_stack.add(start)
        while work:
            node, it = work[-1]
            advanced = False
            for nxt in it:
                if nxt not in index:
                    index[nxt] = lowlink[nxt] = counter
                    counter += 1
                    stack.append(nxt)
                    on_stack.add(nxt)
                    work.append((nxt, iter(graph[nxt])))
                    advanced = True
                    break
                if nxt in on_stack:
                    lowlink[node] = min(lowlink[node], index[nxt])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index[node]:
                comp = []
                while True:
                    w = stack.pop()
                    on_stack.discard(w)
                    comp.append(w)
                    if w == node:
                        break
                result.append(comp)
    return result


def main(argv: List[str]) -> int:
    if len(argv) != 2:
        print(__doc__)
        return 2
    root = Path(argv[1]).resolve()
    if not (root / "__init__.py").exists():
        print(f"error: {root} is not a package (no __init__.py)")
        return 2
    graph = build_graph(root)
    cycles = [sorted(c) for c in strongly_connected(graph) if len(c) > 1]
    if cycles:
        print(f"import cycles in {root.name}:")
        for comp in sorted(cycles):
            print("  " + " <-> ".join(comp))
        return 1
    print(
        f"{root.name}: {len(graph)} modules, "
        f"{sum(len(e) for e in graph.values())} intra-package edges, no cycles"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
