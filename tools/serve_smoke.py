#!/usr/bin/env python
"""End-to-end smoke test for ``repro serve`` (the `make serve-smoke` gate).

Boots the real CLI as a subprocess against a seeded endless replay
source, then exercises the full operational story:

1. parse the ready line for the bound port;
2. poll ``GET /healthz`` until the service reports it is serving and
   has completed at least one management round;
3. scrape ``GET /metrics`` and assert the engine's round counter is
   exposed in Prometheus text format;
4. send SIGTERM and assert the process drains gracefully: exit code 0
   and a final JSON report with ``clean_drain: true``.

Exits non-zero (with a reason on stderr) on any violation; a hard
deadline guards against hangs so CI never wedges.
"""

from __future__ import annotations

import json
import signal
import subprocess
import sys
import time
import urllib.error
import urllib.request

DEADLINE_S = 60.0
SERVE_CMD = [
    sys.executable,
    "-m",
    "repro",
    "serve",
    "--size",
    "4",
    "--seed",
    "2015",
    "--rounds",
    "0",  # endless: only our SIGTERM stops it
    "--interval",
    "0.05",
    "--json",
]


def fail(proc: subprocess.Popen, reason: str) -> int:
    print(f"serve-smoke: FAIL: {reason}", file=sys.stderr)
    proc.kill()
    proc.wait()
    return 1


def fetch(port: int, path: str) -> str:
    with urllib.request.urlopen(
        f"http://127.0.0.1:{port}{path}", timeout=5
    ) as resp:
        return resp.read().decode()


def main() -> int:
    start = time.monotonic()
    proc = subprocess.Popen(
        SERVE_CMD,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )
    assert proc.stdout is not None

    # 1. the ready line announces the bound port
    ready_line = proc.stdout.readline()
    try:
        ready = json.loads(ready_line)
        port = int(ready["port"])
    except (ValueError, KeyError, TypeError):
        return fail(proc, f"bad ready line: {ready_line!r}")
    print(f"serve-smoke: serving on port {port}")

    # 2. poll /healthz until a round has completed
    health = None
    while time.monotonic() - start < DEADLINE_S:
        try:
            health = json.loads(fetch(port, "/healthz"))
        except (urllib.error.URLError, OSError, ValueError):
            health = None
        if health and health.get("rounds", 0) >= 1:
            break
        time.sleep(0.1)
    else:
        return fail(proc, f"no round completed before deadline ({health})")
    if health.get("status") != "serving":
        return fail(proc, f"unexpected /healthz status: {health}")
    print(f"serve-smoke: healthy after {health['rounds']} round(s)")

    # 3. the metrics endpoint speaks Prometheus and counts rounds
    try:
        metrics = fetch(port, "/metrics")
    except (urllib.error.URLError, OSError) as exc:
        return fail(proc, f"/metrics unreachable: {exc}")
    if "sheriff_rounds_total" not in metrics:
        return fail(proc, "sheriff_rounds_total missing from /metrics")
    print("serve-smoke: /metrics exposes sheriff_rounds_total")

    # 4. graceful drain on SIGTERM
    proc.send_signal(signal.SIGTERM)
    try:
        out, err = proc.communicate(timeout=DEADLINE_S)
    except subprocess.TimeoutExpired:
        return fail(proc, "did not exit after SIGTERM")
    if proc.returncode != 0:
        print(err, file=sys.stderr)
        return fail(proc, f"exit code {proc.returncode} after SIGTERM")
    try:
        report = json.loads(out)
    except ValueError:
        return fail(proc, f"final report is not JSON: {out!r}")
    if not report.get("clean_drain"):
        return fail(proc, f"drain dropped alerts: {report}")
    print(
        "serve-smoke: OK "
        f"(rounds={report['rounds']}, ingested={report['ingested']}, "
        f"migrations={report['migrations']})"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
