"""SLO-accounting overhead at paper scale.

Pinned-seed benchmark behind ``make bench-slo``: times BENCH_4's
paper-scale engine configuration (8-pod Fat-Tree, 1 280 hosts) in three
configurations —

* **slo off** — the default engine; no SLO layer is even constructed;
* **slo accounting** — ``SheriffConfig(slo=True)`` with network scoring.
  The contract (asserted here, every run): the accountant is a pure
  observer, so the rounds decide *byte-identically* to slo-off, and the
  full violation-minutes ledger (downtime, stretch, overload, episodes)
  costs under 10 % of a round;
* **slo scoring** — ``SheriffConfig(scoring="slo")``: the cost matrix
  gains the predicted-damage addend, so this path is allowed to decide
  differently (that is its job); its cost is reported so the SLO-aware
  assignment has a committed price tag.

Results land in ``BENCH_10.json`` at the repo root; ``make bench-check``
(see ``tools/check_bench.py``) gates CI on the committed numbers.  As in
BENCH_4, each configuration runs once untimed before the timed pass.
"""

import json
from pathlib import Path
from time import perf_counter

from benchmarks.conftest import run_once
from benchmarks.test_perf_fleet import (
    ENGINE_ROUNDS,
    SEED,
    _paper_cluster,
    _summary_key,
)
from repro.analysis import format_table
from repro.config import SheriffConfig
from repro.sim import SheriffSimulation, inject_fraction_alerts

RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_10.json"

ALERT_FRACTION = 0.05


def _decision_key(summary):
    """Summary minus the SLO ledger fields (nonzero only with slo=True)."""
    d = _summary_key(summary)
    d.pop("slo_violation_minutes", None)
    d.pop("slo_by_class", None)
    return d


def run_engine_rounds(*, slo, scoring):
    """Engine rounds under one SLO configuration; timing + outcomes."""
    cluster = _paper_cluster()
    sim = SheriffSimulation(
        cluster, SheriffConfig(workers=0, slo=slo, scoring=scoring)
    )
    summaries, alert_rounds = [], []
    t0 = perf_counter()
    for r in range(ENGINE_ROUNDS):
        alerts, vm_alerts = inject_fraction_alerts(
            cluster, ALERT_FRACTION, time=r, seed=SEED + r
        )
        alert_rounds.append(
            (sorted((a.rack, a.host, round(a.magnitude, 12)) for a in alerts),
             sorted(vm_alerts))
        )
        summaries.append(sim.run_round(alerts, vm_alerts))
    elapsed = perf_counter() - t0
    ledger = sim.slo.summary() if sim.slo is not None else None
    sim.close()
    return {
        "slo": slo,
        "scoring": scoring,
        "rounds": ENGINE_ROUNDS,
        "seconds": elapsed,
        "rounds_per_sec": ENGINE_ROUNDS / elapsed,
        "violation_minutes": (
            ledger["total_minutes"] if ledger is not None else 0.0
        ),
        "by_class": dict(ledger["by_class"]) if ledger is not None else {},
        "alert_rounds": alert_rounds,
        "summaries": [_decision_key(s) for s in summaries],
        "final_placement": cluster.placement.vm_host.tolist(),
    }


def run_suite():
    # untimed warm-up of both code paths (see the module docstring)
    run_engine_rounds(slo=False, scoring="network")
    run_engine_rounds(slo=True, scoring="network")
    off = run_engine_rounds(slo=False, scoring="network")
    accounting = run_engine_rounds(slo=True, scoring="network")
    scoring = run_engine_rounds(slo=False, scoring="slo")
    # the observer contract: accounting decides byte-identically
    identical = (
        off["alert_rounds"] == accounting["alert_rounds"]
        and off["summaries"] == accounting["summaries"]
        and off["final_placement"] == accounting["final_placement"]
    )
    for row in (off, accounting, scoring):
        row.pop("alert_rounds")
        row.pop("summaries")
        row.pop("final_placement")
    overhead = accounting["seconds"] / off["seconds"] - 1.0
    return {
        "seed": SEED,
        "scale": {
            "fattree_pods": 8,
            "hosts_per_rack": 40,
            "alert_fraction": ALERT_FRACTION,
        },
        "slo_overhead": {
            "slo_off": off,
            "slo_accounting": accounting,
            "slo_scoring": scoring,
            "disabled_identical": identical,
            "overhead_frac": overhead,
            "scoring_overhead_frac": scoring["seconds"] / off["seconds"] - 1.0,
        },
    }


def test_slo_accounting_overhead(benchmark, emit):
    results = run_once(benchmark, run_suite)
    RESULTS_PATH.write_text(json.dumps(results, indent=2, sort_keys=True) + "\n")
    over = results["slo_overhead"]
    rows = [
        {
            "config": name,
            "seconds": over[name]["seconds"],
            "rounds_per_sec": over[name]["rounds_per_sec"],
            "violation_minutes": over[name]["violation_minutes"],
        }
        for name in ("slo_off", "slo_accounting", "slo_scoring")
    ]
    emit(format_table("SLO-accounting overhead (BENCH_10.json)", rows))
    # acceptance: accounting observes for free (identical decisions,
    # ledger upkeep within noise of an engine round)
    assert over["disabled_identical"] is True
    assert over["overhead_frac"] < 0.10
    assert over["slo_accounting"]["violation_minutes"] > 0.0
