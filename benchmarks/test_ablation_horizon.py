"""Ablation: forecast horizon — K-STEP-AHEAD accuracy and model choice.

The paper's pre-alert runs "T-seconds-ahead" predictions and notes that
k-step values are computed recursively from one-step forecasts.  Longer
lead time buys the manager more room to act, but recursive forecasts
degrade.  This bench quantifies the accuracy-vs-lead trade on the weekly
traffic trace and shows the model ranking *flips* with horizon: plain
ARIMA wins one-step, seasonal ARIMA wins half-day-ahead.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.analysis import format_table
from repro.forecast import ARIMA, SeasonalARIMA, SeasonalNaive, mse
from repro.traces import weekly_traffic_trace

SEED = 2015
HORIZONS = [1, 6, 24, 72]
STARTS = range(600, 860, 72)


def run_experiment():
    y = weekly_traffic_trace(seed=SEED)
    rows = []
    for h in HORIZONS:
        errs = {"arima": [], "sarima": [], "snaive": []}
        for start in STARTS:
            actual = y[start : start + h]
            train = y[:start]
            errs["arima"].append(mse(actual, ARIMA(1, 1, 1).fit(train).forecast(h)))
            errs["sarima"].append(
                mse(actual, SeasonalARIMA(1, 0, 1, period=144).fit(train).forecast(h))
            )
            errs["snaive"].append(
                mse(actual, SeasonalNaive(period=144).fit(train).forecast(h))
            )
        rows.append(
            {
                "horizon": h,
                "arima_mse": float(np.mean(errs["arima"])),
                "sarima_mse": float(np.mean(errs["sarima"])),
                "snaive_mse": float(np.mean(errs["snaive"])),
            }
        )
    return rows


def test_ablation_forecast_horizon(benchmark, emit):
    rows = run_once(benchmark, run_experiment)
    emit(
        format_table(
            "Ablation — K-step-ahead MSE by model (weekly traffic, 144/day)",
            rows,
        )
    )
    by_h = {r["horizon"]: r for r in rows}
    # short horizon: differenced models crush the seasonal-naive floor
    assert by_h[1]["arima_mse"] < by_h[1]["snaive_mse"]
    assert by_h[1]["sarima_mse"] < by_h[1]["snaive_mse"]
    # long horizon: seasonal structure dominates — SARIMA must win big
    assert by_h[72]["sarima_mse"] < 0.5 * by_h[72]["arima_mse"]
    assert by_h[72]["sarima_mse"] <= by_h[72]["snaive_mse"] * 1.1
    # recursive plain-ARIMA forecasts degrade with horizon, and faster
    # than the seasonal model's (the paper's k-step trade-off)
    arima_curve = np.asarray([by_h[h]["arima_mse"] for h in HORIZONS])
    sarima_curve = np.asarray([by_h[h]["sarima_mse"] for h in HORIZONS])
    assert (np.diff(arima_curve) > 0).all()
    assert arima_curve[-1] / arima_curve[0] > sarima_curve[-1] / sarima_curve[0]
