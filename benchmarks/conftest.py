"""Shared benchmark fixtures.

Every figure benchmark prints the series the paper plots through the
``emit`` fixture (bypassing pytest capture) so that
``pytest benchmarks/ --benchmark-only | tee bench_output.txt`` records the
reproduced curves alongside the timing table.
"""

from __future__ import annotations

import pytest


@pytest.fixture
def emit(capsys):
    """Print *text* even under pytest output capture."""

    def _emit(text: str) -> None:
        with capsys.disabled():
            print("\n" + text, flush=True)

    return _emit


def run_once(benchmark, fn, *args, **kwargs):
    """Run *fn* exactly once under pytest-benchmark timing.

    Experiment benches are deterministic end-to-end pipelines, not
    microbenchmarks; a single timed round keeps the suite's wall-clock
    sane while still recording the runtime.
    """
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
