"""Fig. 10: workload std-dev over VM migration rounds on BCube.

Same protocol as Fig. 9 on the server-centric fabric; the paper's curve
falls from ~45 % to ~20 % over 24 rounds.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.analysis import Series, format_series
from repro.cluster import build_cluster
from repro.sim import SheriffSimulation, inject_fraction_alerts
from repro.topology import build_bcube

ROUNDS = 24
SEED = 2015


def run_experiment():
    cluster = build_cluster(
        build_bcube(8),
        hosts_per_rack=8,
        fill_fraction=0.5,
        skew=1.1,
        seed=SEED,
        delay_sensitive_fraction=0.0,
    )
    sim = SheriffSimulation(cluster, balance_weight=25.0)
    for r in range(ROUNDS):
        alerts, vma = inject_fraction_alerts(cluster, 0.05, time=r, seed=SEED + r)
        sim.run_round(alerts, vma)
    cluster.placement.check_invariants()
    return sim.workload_std_series()


def test_fig10_bcube_workload_balance(benchmark, emit):
    series = run_once(benchmark, run_experiment)
    emit(
        format_series(
            "Fig. 10 — Sheriff on BCube: workload std-dev (%) per migration round",
            [Series("std_dev_pct", list(range(ROUNDS + 1)), series.tolist())],
            x_label="round",
        )
    )
    assert series[-1] < 0.55 * series[0]
    assert series[-6:].mean() < 0.6 * series[:3].mean()
