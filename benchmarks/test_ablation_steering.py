"""Ablation: destination steering strength and migration cooldown.

Two mechanisms DESIGN.md documents as necessary for the paper's dynamics
are swept here to show they are *calibrated*, not magic:

* ``balance_weight`` — 0 disables load-aware destination choice; the
  Figs. 9/10 balancing curve flattens without it, while very large values
  distort the Eq. (1) economics (higher per-move cost);
* ``migration_cooldown`` — 0 allows hot-potato ping-pong (more repeat
  moves of the same VM); a few rounds suffice to kill it.
"""

from collections import Counter

import numpy as np

from benchmarks.conftest import run_once
from repro.analysis import format_table
from repro.cluster import build_cluster
from repro.sim import SheriffSimulation, inject_fraction_alerts
from repro.topology import build_fattree

SEED = 2015
ROUNDS = 16


def run_balance_weight(weight: float):
    cluster = build_cluster(
        build_fattree(8),
        hosts_per_rack=4,
        skew=1.1,
        fill_fraction=0.5,
        seed=SEED,
        delay_sensitive_fraction=0.0,
    )
    sim = SheriffSimulation(cluster, balance_weight=weight)
    cost = 0.0
    migrations = 0
    for r in range(ROUNDS):
        alerts, vma = inject_fraction_alerts(cluster, 0.05, time=r, seed=SEED + r)
        s = sim.run_round(alerts, vma)
        cost += s.total_cost
        migrations += s.migrations
    series = sim.workload_std_series()
    return float(series[0]), float(series[-1]), cost / max(migrations, 1)


def run_cooldown(cooldown: int):
    cluster = build_cluster(
        build_fattree(8),
        hosts_per_rack=4,
        skew=1.1,
        fill_fraction=0.5,
        seed=SEED,
        delay_sensitive_fraction=0.0,
    )
    sim = SheriffSimulation(cluster, migration_cooldown=cooldown)
    move_counts: Counter = Counter()
    for r in range(ROUNDS):
        alerts, vma = inject_fraction_alerts(cluster, 0.05, time=r, seed=SEED + r)
        s = sim.run_round(alerts, vma)
        for rep in s.reports:
            for vm, _, _ in rep.migration.moves:
                move_counts[vm] += 1
    repeats = sum(c - 1 for c in move_counts.values() if c > 1)
    return repeats, sum(move_counts.values())


def run_experiment():
    weights = [0.0, 25.0, 50.0, 500.0]
    w_rows = []
    for w in weights:
        std0, std_end, per_vm = run_balance_weight(w)
        w_rows.append(
            {
                "balance_weight": w,
                "std_start": std0,
                "std_end": std_end,
                "cost_per_vm": per_vm,
            }
        )
    c_rows = []
    for cd in (0, 3, 6):
        repeats, total = run_cooldown(cd)
        c_rows.append({"cooldown": cd, "repeat_moves": repeats, "total_moves": total})
    return w_rows, c_rows


def test_ablation_steering_and_cooldown(benchmark, emit):
    w_rows, c_rows = run_once(benchmark, run_experiment)
    emit(
        format_table("Ablation — destination steering weight (16 rounds)", w_rows)
        + "\n\n"
        + format_table("Ablation — migration cooldown (16 rounds)", c_rows)
    )
    by_w = {r["balance_weight"]: r for r in w_rows}
    # steering materially improves the final balance vs none
    assert by_w[25.0]["std_end"] < by_w[0.0]["std_end"]
    # but does not distort the true cost accounting (true Eq. 1 cost per
    # move stays in the same band regardless of steering)
    costs = [r["cost_per_vm"] for r in w_rows]
    assert max(costs) <= 1.3 * min(costs)
    by_c = {r["cooldown"]: r for r in c_rows}
    # cooldown reduces repeat moves of the same VM
    assert by_c[3]["repeat_moves"] <= by_c[0]["repeat_moves"]
