"""Ablation: FLOWREROUTE-first vs migration-only congestion handling.

Sec. III-B: "live VM migration ... is more expensive and slower than flow
rerouting. Thus shim will implement flow reroute first."  We create a hot
aggregation switch by routing many flows through it, then resolve the
congestion (a) by rerouting (Alg. 1's outer-switch case) and (b) by
migrating the flows' VMs to other racks (which drags their flows along).
Rerouting must clear the hotspot at a fraction of the migration bill.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.analysis import format_table
from repro.cluster import build_cluster
from repro.migration.reroute import FlowTable
from repro.sim import SheriffSimulation, congestion_alerts, hot_switches, switch_capacity
from repro.topology import build_fattree

SEED = 2015
FLOW_RATE = 2.0


def build_congested():
    cluster = build_cluster(
        build_fattree(4),
        hosts_per_rack=2,
        fill_fraction=0.4,
        seed=SEED,
        dependency_degree=0.0,
        delay_sensitive_fraction=0.0,
    )
    ft = FlowTable(cluster.topology)
    pl = cluster.placement
    for vm in pl.vms_in_rack(0):
        ft.add_flow(int(vm), 0, 1, FLOW_RATE)
    return cluster, ft


def peak_utilization(cluster, ft):
    cap = switch_capacity(cluster.topology)
    sw = cluster.topology.switches()
    with np.errstate(invalid="ignore"):
        util = ft.node_load[sw] / cap[sw]
    return float(np.nanmax(util))


def run_reroute():
    cluster, ft = build_congested()
    before = peak_utilization(cluster, ft)
    sim = SheriffSimulation(cluster)
    # α keeps each round's reroute to a *portion* of the flows — moving
    # everything at once would just recreate the hotspot on the alternate
    # path (the reason Alg. 2 selects a capacity portion, not the full set)
    for mgr in sim.managers.values():
        mgr.flow_table = ft
        mgr.alpha = 0.1
    total_cost = 0.0
    rerouted = 0
    for t in range(4):
        alerts, vma = congestion_alerts(cluster, ft, time=t)
        if not alerts:
            break
        s = sim.run_round(alerts, vma)
        rerouted += sum(r.rerouted_flows for r in s.reports)
        total_cost += s.total_cost  # migrations triggered (should be ~0)
    return before, peak_utilization(cluster, ft), rerouted, total_cost


def run_migrate_only():
    cluster, ft = build_congested()
    before = peak_utilization(cluster, ft)
    sim = SheriffSimulation(cluster)
    # no flow table attached: outer-switch alerts cannot reroute, so we
    # instead migrate the flows' source VMs away and re-home their flows
    total_cost = 0.0
    migrations = 0
    pl = cluster.placement
    for t in range(4):
        if not hot_switches(cluster.topology, ft):
            break
        alerts, vma = congestion_alerts(cluster, ft, time=t)
        from repro.alerts.alert import Alert, AlertKind

        # translate each congestion alert into host alerts on the source rack
        host_alerts = []
        seen = set()
        for a in alerts:
            for h in pl.hosts_in_rack(a.rack):
                if int(h) not in seen:
                    seen.add(int(h))
                    host_alerts.append(
                        Alert(
                            kind=AlertKind.SERVER,
                            rack=a.rack,
                            magnitude=a.magnitude,
                            host=int(h),
                            time=t,
                        )
                    )
        s = sim.run_round(host_alerts, vma)
        migrations += s.migrations
        total_cost += s.total_cost
        # migrated VMs drag their flows to the new source rack
        for rep in s.reports:
            for vm, host, _ in rep.migration.moves:
                new_rack = int(pl.host_rack[host])
                for f in list(ft.flows.values()):
                    if f.vm == vm:
                        ft.remove_flow(f.flow_id)
                        ft.add_flow(vm, new_rack, f.dst_rack, f.rate)
    return before, peak_utilization(cluster, ft), migrations, total_cost


def test_ablation_reroute_first(benchmark, emit):
    (rb, ra, rerouted, rcost), (mb, ma, migrations, mcost) = run_once(
        benchmark, lambda: (run_reroute(), run_migrate_only())
    )
    rows = [
        {
            "reroute_util_before": rb,
            "reroute_util_after": ra,
            "flows_rerouted": rerouted,
            "reroute_migr_cost": rcost,
        },
        {
            "reroute_util_before": mb,
            "reroute_util_after": ma,
            "flows_rerouted": migrations,
            "reroute_migr_cost": mcost,
        },
    ]
    emit(
        format_table(
            "Ablation — reroute-first vs migrate-only (row 0 = reroute, row 1 = migrate)",
            rows,
        )
    )
    # both policies must relieve the hotspot...
    assert ra < rb
    assert ma < mb or migrations == 0
    # ...but rerouting does it without paying migration cost
    assert rcost == 0.0
    assert rerouted > 0
    if migrations:
        assert mcost > 0.0
