"""Paper-facility scale: 40 servers per rack.

The figure benches use small racks to keep sweeps fast; this bench runs
one management round at the paper's stated facility density — an 8-pod
Fat-Tree with **40 hosts per rack** (1 280 hosts, ~6 000 VMs) — to show
the implementation holds up at the scale the paper describes, not just
at benchmark-convenient sizes.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.analysis import format_table
from repro.cluster import build_cluster
from repro.costs.model import CostModel
from repro.sim import (
    SheriffSimulation,
    inject_fraction_alerts,
    regional_migration_round,
)
from repro.topology import build_fattree

SEED = 2015


def run_experiment():
    cluster = build_cluster(
        build_fattree(8),
        hosts_per_rack=40,  # the paper's rack density
        host_capacity=100,
        vm_capacity_max=20,
        fill_fraction=0.5,
        skew=0.8,
        seed=SEED,
        delay_sensitive_fraction=0.1,
    )
    cm = CostModel(cluster)
    _, vma = inject_fraction_alerts(cluster, 0.05, seed=SEED)
    cands = sorted(vma)
    plan = regional_migration_round(cluster, cm, cands)
    # and a full engine round with the same alert stream
    sim = SheriffSimulation(cluster)
    alerts, vma2 = inject_fraction_alerts(cluster, 0.05, time=1, seed=SEED + 1)
    summary = sim.run_round(alerts, vma2)
    cluster.placement.check_invariants()
    return {
        "hosts": cluster.num_hosts,
        "vms": cluster.num_vms,
        "candidates": len(cands),
        "planned_moves": len(plan.moves),
        "plan_cost": plan.total_cost,
        "engine_migrations": summary.migrations,
        "engine_cost": summary.total_cost,
        "std_before": summary.workload_std_before,
        "std_after": summary.workload_std_after,
    }


def test_paper_scale_single_round(benchmark, emit):
    row = run_once(benchmark, run_experiment)
    emit(
        format_table(
            "Paper-facility scale — Fat-Tree k=8, 40 hosts/rack, one round",
            [row],
        )
    )
    assert row["hosts"] == 1280
    assert row["vms"] > 5_000
    assert row["planned_moves"] > 0
    assert row["engine_migrations"] > 0
    # one round of 5 % alerts already improves balance at this density
    assert row["std_after"] < row["std_before"]


def run_managed_experiment():
    from repro.sim import host_surges, run_managed_simulation
    from repro.sim.reactive import PredictiveManager

    cluster = build_cluster(
        build_fattree(8),
        hosts_per_rack=40,
        fill_fraction=0.5,
        seed=SEED,
        delay_sensitive_fraction=0.0,
    )
    workload, events = host_surges(
        cluster, 90, fraction=0.05, earliest=50, latest=70, seed=SEED + 1
    )
    sim = SheriffSimulation(cluster)
    manager = PredictiveManager(workload, threshold=0.5, horizon=3)
    report = run_managed_simulation(
        sim, workload, manager, warm=40, horizon=90, overload_threshold=0.5
    )
    cluster.placement.check_invariants()
    return {
        "hosts": cluster.num_hosts,
        "vms": cluster.num_vms,
        "surging_hosts": len(events),
        "rounds": report.rounds,
        "overload_rounds": report.overload_rounds,
        "migrations": report.migrations,
        "first_alert": report.first_alert_round or -1,
    }


def test_paper_scale_managed_run(benchmark, emit):
    """50 pre-alert-managed rounds at full facility density."""
    row = run_once(benchmark, run_managed_experiment)
    emit(
        format_table(
            "Paper-facility scale — pre-alert management, 50 rounds, "
            "64-host surge wave",
            [row],
        )
    )
    assert row["hosts"] == 1280
    assert row["first_alert"] >= 0  # surges were noticed
    assert row["migrations"] >= 1
    # exposure bounded: far fewer overload-rounds than surging hosts x
    # surge duration (~64 hosts x 40 rounds unmanaged)
    assert row["overload_rounds"] < 0.2 * row["surging_hosts"] * 40
