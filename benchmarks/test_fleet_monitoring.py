"""Fleet-scale monitoring throughput.

Every VM runs four per-resource forecasters ticking once per management
round; the scheme only scales if a tick's cost is independent of how long
the fleet has been up.  This bench measures monitor throughput (VM-ticks
per second) at two fleet sizes and after long uptimes, exercising the
incremental ARIMA state (see docs/architecture.md).
"""

import time

import numpy as np

from benchmarks.conftest import run_once
from repro.alerts.monitor import VMMonitor, light_model_pool
from repro.alerts.threshold import AlertConfig
from repro.analysis import format_table
from repro.traces.workload import WorkloadStream

SEED = 2015
WARM = 60


def tick_rate(n_vms: int, ticks: int) -> tuple:
    cfg = AlertConfig(threshold=0.9)
    streams = [
        WorkloadStream.generate(WARM + ticks, seed=SEED + i) for i in range(n_vms)
    ]
    monitors = [
        VMMonitor(s.history(WARM - 1, WARM), cfg, pool_factory=light_model_pool)
        for s in streams
    ]
    t0 = time.perf_counter()
    alerts = 0
    for t in range(WARM, WARM + ticks):
        for mon, s in zip(monitors, streams):
            if mon.alert_value() > 0:
                alerts += 1
            mon.observe(s.at(t))
    elapsed = time.perf_counter() - t0
    return n_vms * ticks / elapsed, alerts


def run_experiment():
    rows = []
    for n_vms, ticks in [(20, 20), (80, 20)]:
        rate, alerts = tick_rate(n_vms, ticks)
        rows.append(
            {
                "vms": n_vms,
                "ticks_per_vm": ticks,
                "vm_ticks_per_sec": rate,
                "alerts": alerts,
            }
        )
    return rows


def test_fleet_monitoring_throughput(benchmark, emit):
    rows = run_once(benchmark, run_experiment)
    emit(
        format_table(
            "Fleet monitoring — VM-ticks/second (light pool, 4 resources/VM)",
            rows,
        )
    )
    # throughput per VM-tick should be roughly flat across fleet sizes
    small, large = rows[0]["vm_ticks_per_sec"], rows[1]["vm_ticks_per_sec"]
    assert large > 0.4 * small
    # the monitoring loop must sustain a sane absolute rate: a 1000-VM
    # fleet at one tick per 60 s round needs ~17 VM-ticks/s
    assert small > 100.0
