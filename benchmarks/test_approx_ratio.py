"""Sec. VI-C theorem check: Local Search is a (3 + 2/p)-approximation.

The paper proves VMMIGRATION, reduced to k-median, inherits Arya et al.'s
``3 + 2/p`` ratio.  We measure the empirical ratio of Alg. 5 against the
brute-force optimum on random instances — both Euclidean and actual
VMMIGRATION instances built from a Fat-Tree cost model — and confirm the
bound (empirically the ratio sits near 1).
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.analysis import format_table
from repro.cluster import build_cluster
from repro.costs.model import CostModel
from repro.kmedian import (
    KMedianInstance,
    exact_kmedian,
    local_search,
    vmmigration_to_kmedian,
)
from repro.topology import build_fattree

SEED = 2015
TRIALS = 25


def run_experiment():
    rng = np.random.default_rng(SEED)
    results = {}
    for p in (1, 2):
        ratios = []
        for trial in range(TRIALS):
            n = int(rng.integers(8, 14))
            k = int(rng.integers(2, min(5, n - 1)))
            pts = rng.random((n, 2))
            inst = KMedianInstance.from_points(pts, k)
            _, opt = exact_kmedian(inst)
            res = local_search(inst, p=p, seed=trial)
            if opt > 1e-12:
                ratios.append(res.cost / opt)
        results[p] = (float(np.max(ratios)), float(np.mean(ratios)))

    # actual VMMIGRATION instances via the Sec. V-A reduction
    cluster = build_cluster(build_fattree(4), hosts_per_rack=2, seed=SEED)
    cm = CostModel(cluster)
    vm_ratios = []
    for trial in range(10):
        trial_rng = np.random.default_rng(SEED + trial)
        srcs = trial_rng.choice(cluster.num_racks, size=5, replace=False)
        inst = vmmigration_to_kmedian(cm, srcs.tolist(), k=2)
        _, opt = exact_kmedian(inst)
        res = local_search(inst, p=1, seed=trial)
        if opt > 1e-12:
            vm_ratios.append(res.cost / opt)
        else:
            assert res.cost <= 1e-12  # zero-cost optimum must be found
    results["vmmig"] = (
        float(np.max(vm_ratios)) if vm_ratios else 1.0,
        float(np.mean(vm_ratios)) if vm_ratios else 1.0,
    )
    return results


def test_local_search_approximation_ratio(benchmark, emit):
    results = run_once(benchmark, run_experiment)
    rows = [
        {
            "p1_max_ratio": results[1][0],
            "p1_bound": 5.0,
            "p2_max_ratio": results[2][0],
            "p2_bound": 4.0,
            "vmmig_max_ratio": results["vmmig"][0],
        }
    ]
    emit(
        format_table(
            "Sec. VI-C — empirical Local Search ratio vs the 3 + 2/p bound",
            rows,
        )
    )
    assert results[1][0] <= 3 + 2 / 1
    assert results[2][0] <= 3 + 2 / 2
    assert results["vmmig"][0] <= 3 + 2 / 1
    # empirically near-optimal, as the paper's "performs best" suggests
    assert results[1][1] <= 1.1
