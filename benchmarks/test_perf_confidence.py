"""Confidence-gate overhead at paper scale.

Pinned-seed benchmark behind ``make bench-confidence``: times the BENCH_2
engine-round configuration (8-pod Fat-Tree, monitored hot region, batched
fleet kernels) in three configurations —

* **gate off** — the historical point-forecast ALERT path;
* **gate on, neutral** — ``AlertConfig.confidence_gate=True`` with no
  headroom/migration signals, so every stance resolves to ``"mean"``.
  The contract (asserted here, every run): the rounds decide
  *byte-identically* to gate-off, and the overhead of carrying the gate
  stays within noise;
* **gate on, active** — a cheap-headroom fleet signal forces the
  ``"upper"`` stance, so every monitor rewrites its profile from the
  answering members' prediction bands.  This path is allowed to decide
  differently (that is its job); its cost is reported so the interval
  machinery has a committed price tag.

Results land in ``BENCH_8.json`` at the repo root; ``make bench-check``
(see ``tools/check_bench.py``) gates CI on the committed numbers.  As in
BENCH_4, each configuration runs once untimed before the timed pass.
"""

import dataclasses
import json
from pathlib import Path
from time import perf_counter

import numpy as np

from benchmarks.conftest import run_once
from benchmarks.test_perf_fleet import (
    ALERT_THRESHOLD,
    ENGINE_ROUNDS,
    HISTORY_ROWS,
    HOT_RACKS,
    MONITOR_STRIDE,
    SEED,
    _paper_cluster,
    _summary_key,
)
from repro.alerts.monitor import VMMonitor
from repro.alerts.threshold import AlertConfig
from repro.analysis import format_table
from repro.config import SheriffConfig
from repro.sim import SheriffSimulation
from repro.sim.scenario import forecast_alert_round

RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_8.json"


def _build_variant(alert_config):
    """Cluster + engine + monitored hot-region fleet (BENCH_4's shape)."""
    cluster = _paper_cluster()
    pl = cluster.placement
    rng = np.random.default_rng(SEED)
    vms = [
        v
        for v in range(cluster.num_vms)
        if int(pl.host_rack[pl.vm_host[v]]) < HOT_RACKS
        and not pl.vm_delay_sensitive[v]
    ][::MONITOR_STRIDE]
    monitors, future = {}, {}
    for v in vms:
        level = rng.uniform(0.25, 0.92)
        series = np.clip(
            level + 0.04 * rng.standard_normal((HISTORY_ROWS + ENGINE_ROUNDS, 4)),
            0.0,
            1.0,
        )
        monitors[v] = VMMonitor(series[:HISTORY_ROWS], alert_config)
        future[v] = series[HISTORY_ROWS:]
    sim = SheriffSimulation(cluster, SheriffConfig(workers=0))
    return cluster, sim, monitors, future


def run_engine_rounds(alert_config, *, headroom=None):
    """Engine rounds under *alert_config*; timing + per-round outcomes."""
    cluster, sim, monitors, future = _build_variant(alert_config)
    summaries, alert_rounds = [], []
    t0 = perf_counter()
    for r in range(ENGINE_ROUNDS):
        alerts, vm_alerts = forecast_alert_round(
            cluster, monitors, time=r, batched=True, headroom=headroom
        )
        alert_rounds.append(
            (sorted((a.rack, a.host, round(a.magnitude, 12)) for a in alerts),
             sorted(vm_alerts))
        )
        summaries.append(sim.run_round(alerts, vm_alerts))
        for v, mon in monitors.items():
            mon.observe(future[v][r])
    elapsed = perf_counter() - t0
    sim.close()
    return {
        "confidence_gate": alert_config.confidence_gate,
        "headroom": headroom,
        "rounds": ENGINE_ROUNDS,
        "monitored_vms": len(monitors),
        "seconds": elapsed,
        "rounds_per_sec": ENGINE_ROUNDS / elapsed,
        "alert_rounds": alert_rounds,
        "summaries": [_summary_key(s) for s in summaries],
        "final_placement": cluster.placement.vm_host.tolist(),
    }


def run_suite():
    off_cfg = AlertConfig(threshold=ALERT_THRESHOLD, horizon=1)
    on_cfg = AlertConfig(
        threshold=ALERT_THRESHOLD, horizon=1, confidence_gate=True
    )
    # untimed warm-up of both code paths (see the module docstring)
    run_engine_rounds(off_cfg)
    run_engine_rounds(on_cfg)
    off = run_engine_rounds(off_cfg)
    neutral = run_engine_rounds(on_cfg)
    active = run_engine_rounds(on_cfg, headroom=0.9)
    # the gate contract: neutral stance decides byte-identically
    identical = (
        off["alert_rounds"] == neutral["alert_rounds"]
        and off["summaries"] == neutral["summaries"]
        and off["final_placement"] == neutral["final_placement"]
    )
    for row in (off, neutral, active):
        row.pop("alert_rounds")
        row.pop("summaries")
        row.pop("final_placement")
    overhead = neutral["seconds"] / off["seconds"] - 1.0
    return {
        "seed": SEED,
        "scale": {
            "fattree_pods": 8,
            "hosts_per_rack": 40,
            "monitored_vms": off["monitored_vms"],
        },
        "confidence_overhead": {
            "gate_off": off,
            "gate_neutral": neutral,
            "gate_active": active,
            "neutral_identical": identical,
            "overhead_frac": overhead,
            "active_overhead_frac": active["seconds"] / off["seconds"] - 1.0,
        },
    }


def test_confidence_gate_overhead(benchmark, emit):
    results = run_once(benchmark, run_suite)
    RESULTS_PATH.write_text(json.dumps(results, indent=2, sort_keys=True) + "\n")
    over = results["confidence_overhead"]
    rows = [
        {
            "config": name,
            "seconds": over[name]["seconds"],
            "rounds_per_sec": over[name]["rounds_per_sec"],
        }
        for name in ("gate_off", "gate_neutral", "gate_active")
    ]
    emit(format_table("Confidence-gate overhead (BENCH_8.json)", rows))
    # acceptance: the neutral gate is free (identical decisions, cost
    # within noise of the point-forecast path)
    assert over["neutral_identical"] is True
    assert over["overhead_frac"] < 0.10
