"""Scalability: planning wall-clock vs fabric size.

The paper argues the regional scheme "performs much faster than the
centralized manager" because each shim solves a tiny matching — and the
shims run *in parallel* on their own racks.  This bench measures one
management round across the pod sweep:

* ``regional_ms`` — all shims run back-to-back in this single process
  (a serialization the real system does not have);
* ``per_shim_ms`` — the mean per-shim share, i.e. the latency a
  distributed deployment would actually see: it stays roughly constant
  with fabric size, which is the scalability claim;
* ``central_ms`` — the global matching (scipy's C solver; fast here, but
  it requires shipping the whole DCN state to one node);
* ``precompute_ms`` — the one-time Floyd/Dijkstra cost-table build.
"""

import time

import numpy as np

from benchmarks.conftest import run_once
from repro.analysis import format_table
from repro.cluster import build_cluster
from repro.costs.model import CostModel
from repro.sim import (
    centralized_migration_round,
    inject_fraction_alerts,
    regional_migration_round,
)
from repro.topology import build_fattree

PODS = [8, 16, 24, 32]
SEED = 2015


def run_experiment():
    rows = []
    for k in PODS:
        cluster = build_cluster(
            build_fattree(k),
            hosts_per_rack=2,
            fill_fraction=0.5,
            skew=0.5,
            seed=SEED,
            delay_sensitive_fraction=0.0,
        )
        t0 = time.perf_counter()
        cm = CostModel(cluster)
        precompute_s = time.perf_counter() - t0
        _, vma = inject_fraction_alerts(cluster, 0.05, seed=SEED)
        cands = sorted(vma)

        pl = cluster.placement
        shims_active = len({int(pl.host_rack[pl.vm_host[v]]) for v in cands})
        t0 = time.perf_counter()
        regional_migration_round(cluster, cm, cands)
        regional_s = time.perf_counter() - t0

        t0 = time.perf_counter()
        centralized_migration_round(cluster, cm, cands)
        central_s = time.perf_counter() - t0

        rows.append(
            {
                "pods": k,
                "hosts": cluster.num_hosts,
                "candidates": len(cands),
                "precompute_ms": precompute_s * 1e3,
                "regional_ms": regional_s * 1e3,
                "per_shim_ms": regional_s * 1e3 / max(shims_active, 1),
                "central_ms": central_s * 1e3,
            }
        )
    return rows


def test_scalability_planning_time(benchmark, emit):
    rows = run_once(benchmark, run_experiment)
    emit(
        format_table(
            "Scalability — one planning round, wall-clock (ms)",
            rows,
        )
    )
    # regional planning must not blow up with fabric size: even at the
    # largest sweep point one serialized round stays well under a second
    assert rows[-1]["regional_ms"] < 1000.0
    # the distributed-latency proxy stays flat: per-shim time at the
    # largest fabric is within a small factor of the smallest fabric's
    assert rows[-1]["per_shim_ms"] <= 5.0 * rows[0]["per_shim_ms"] + 1.0
