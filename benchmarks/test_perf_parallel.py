"""Speedup benchmarks for the parallel/caching/warm-start layer.

Pinned-seed subset behind ``make bench``: times the paper-scale workload
(8-pod Fat-Tree, 40 hosts per rack, 1 280 hosts) in two configurations —

* **baseline**: the seed's code paths — legacy serial round loop, cost
  kernels uncached, cold forecaster refits, and the general-order CSS
  kernels (``_css_residuals_ref`` / ``_max_inverse_root_ref``, which the
  fast paths are bit-identical to);
* **optimized**: plan/execute split with a thread pool (``workers=4``),
  cost-kernel cache on, warm-started refits, specialized CSS kernels.

Results land in ``BENCH_2.json`` at the repo root: engine rounds/sec
(byte-identical across configurations — asserted here), managed
closed-loop rounds/sec (the headline: a full pre-alert round at facility
density, dominated by the fleet's ARIMA refits), raw refit throughput,
and the transmission-table memo eliminating repeated shortest-path
(Floyd–Warshall-style) precomputations across rounds.
"""

import dataclasses
import json
from contextlib import contextmanager
from pathlib import Path
from time import perf_counter

import numpy as np

from benchmarks.conftest import run_once
from repro.analysis import format_table
from repro.cluster import build_cluster
from repro.config import SheriffConfig
from repro.costs.model import CostModel
from repro.costs.transmission import transmission_table_cache_stats
from repro.forecast import arima as arima_mod
from repro.forecast.arima import ARIMA
from repro.forecast.base import warm_fit
from repro.sim import SheriffSimulation, inject_fraction_alerts
from repro.topology import build_fattree

SEED = 2015
RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_2.json"
ENGINE_ROUNDS = 6
MANAGED_WARM = 40
MANAGED_HORIZON = 90  # 50 managed rounds


@contextmanager
def kernel_mode(fast: bool):
    """Select the CSS kernels: specialized fast paths vs the seed's
    general-order reference implementations (bit-identical by test)."""
    if fast:
        yield
        return
    saved = (arima_mod._css_residuals, arima_mod._max_inverse_root)
    arima_mod._css_residuals = arima_mod._css_residuals_ref
    arima_mod._max_inverse_root = arima_mod._max_inverse_root_ref
    try:
        yield
    finally:
        arima_mod._css_residuals, arima_mod._max_inverse_root = saved


def _paper_cluster(delay_sensitive=0.1):
    return build_cluster(
        build_fattree(8),
        hosts_per_rack=40,  # the paper's rack density (1 280 hosts)
        fill_fraction=0.5,
        seed=SEED,
        delay_sensitive_fraction=delay_sensitive,
    )


def _summary_key(summary):
    d = dataclasses.asdict(summary)
    d.pop("timings", None)
    d.pop("reports", None)
    d.pop("pool", None)
    return d


def run_engine_rounds(*, workers, cache):
    """Alert-driven engine rounds at facility scale; returns timing + outcomes."""
    cluster = _paper_cluster()
    sim = SheriffSimulation(
        cluster, SheriffConfig(workers=workers, cache_cost_kernels=cache)
    )
    streams = [
        inject_fraction_alerts(cluster, 0.05, time=r, seed=SEED + r)
        for r in range(ENGINE_ROUNDS)
    ]
    t0 = perf_counter()
    summaries = [sim.run_round(alerts, vma) for alerts, vma in streams]
    elapsed = perf_counter() - t0
    plan_sections = sorted(
        name for name in sim.profiler.totals if name.startswith("plan")
    )
    sim.close()
    return {
        "workers": workers,
        "cache": cache,
        "rounds": ENGINE_ROUNDS,
        "seconds": elapsed,
        "rounds_per_sec": ENGINE_ROUNDS / elapsed,
        "summaries": [_summary_key(s) for s in summaries],
        "final_placement": cluster.placement.vm_host.tolist(),
        "cache_stats": dict(sim.cost_model.cache_stats),
        "plan_sections": plan_sections,
    }


def run_managed(*, workers, cache, warm_start, fast_kernels):
    """50 managed closed-loop rounds (the refit-dominated headline)."""
    from repro.sim import host_surges, run_managed_simulation
    from repro.sim.reactive import PredictiveManager

    cluster = _paper_cluster(delay_sensitive=0.0)
    workload, events = host_surges(
        cluster, MANAGED_HORIZON, fraction=0.05, earliest=50, latest=70, seed=SEED + 1
    )
    sim = SheriffSimulation(
        cluster, SheriffConfig(workers=workers, cache_cost_kernels=cache)
    )
    manager = PredictiveManager(
        workload, threshold=0.5, horizon=3, warm_start=warm_start, workers=workers
    )
    with kernel_mode(fast_kernels):
        t0 = perf_counter()
        report = run_managed_simulation(
            sim,
            workload,
            manager,
            warm=MANAGED_WARM,
            horizon=MANAGED_HORIZON,
            overload_threshold=0.5,
        )
        elapsed = perf_counter() - t0
    sim.close()
    cluster.placement.check_invariants()
    rounds = MANAGED_HORIZON - MANAGED_WARM
    return {
        "workers": workers,
        "cache": cache,
        "warm_start": warm_start,
        "fast_kernels": fast_kernels,
        "rounds": rounds,
        "seconds": elapsed,
        "rounds_per_sec": rounds / elapsed,
        "overload_rounds": report.overload_rounds,
        "migrations": report.migrations,
        "surging_hosts": len(events),
    }


def run_refit_throughput(*, warm_start, fast_kernels, refits=30):
    """Sequential ARIMA refits on a drifting series (the fleet's unit work)."""
    rng = np.random.default_rng(SEED)
    t = np.arange(800, dtype=np.float64)
    series = 0.5 + 0.15 * np.sin(2 * np.pi * t / 50) + 0.02 * rng.standard_normal(800)
    factory = lambda: ARIMA(1, 1, 0, maxiter=40)  # PredictiveManager's default
    with kernel_mode(fast_kernels):
        model = factory().fit(series[:100])
        t0 = perf_counter()
        for k in range(refits):
            window = series[: 120 + 20 * k]
            previous = model if warm_start else None
            model = warm_fit(factory(), window, previous)
        elapsed = perf_counter() - t0
    return {
        "warm_start": warm_start,
        "fast_kernels": fast_kernels,
        "refits": refits,
        "seconds": elapsed,
        "refits_per_sec": refits / elapsed,
    }


def run_table_reuse(*, cache, rounds=8):
    """One CostModel per round on a fixed fabric (the sweep/baseline
    pattern): the memo must run the shortest-path precomputation once."""
    cluster = _paper_cluster()
    before = transmission_table_cache_stats()
    tables = []
    t0 = perf_counter()
    for _ in range(rounds):
        tables.append(CostModel(cluster, cache=cache).table)
    elapsed = perf_counter() - t0
    after = transmission_table_cache_stats()
    return {
        "cache": cache,
        "rounds": rounds,
        "seconds": elapsed,
        "table_builds": len({id(t) for t in tables}),
        "memo_hits": after["hits"] - before["hits"],
    }


def run_suite():
    engine_base = run_engine_rounds(workers=0, cache=False)
    engine_opt = run_engine_rounds(workers=4, cache=True)
    # the parallel path's contract: byte-identical outcomes
    assert engine_opt["summaries"] == engine_base["summaries"]
    assert engine_opt["final_placement"] == engine_base["final_placement"]
    for row in (engine_base, engine_opt):
        row.pop("summaries")
        row.pop("final_placement")
    managed_base = run_managed(
        workers=0, cache=False, warm_start=False, fast_kernels=False
    )
    managed_opt = run_managed(workers=4, cache=True, warm_start=True, fast_kernels=True)
    refit_base = run_refit_throughput(warm_start=False, fast_kernels=False)
    refit_opt = run_refit_throughput(warm_start=True, fast_kernels=True)
    table_base = run_table_reuse(cache=False)
    table_opt = run_table_reuse(cache=True)
    return {
        "seed": SEED,
        "scale": {"fattree_pods": 8, "hosts_per_rack": 40, "hosts": 1280},
        "engine_round": {
            "baseline": engine_base,
            "optimized": engine_opt,
            "speedup": engine_opt["rounds_per_sec"] / engine_base["rounds_per_sec"],
        },
        "managed_round": {
            "baseline": managed_base,
            "optimized": managed_opt,
            "speedup": managed_opt["rounds_per_sec"] / managed_base["rounds_per_sec"],
        },
        "forecast_refit": {
            "baseline": refit_base,
            "optimized": refit_opt,
            "speedup": refit_opt["refits_per_sec"] / refit_base["refits_per_sec"],
        },
        "transmission_table": {
            "baseline": table_base,
            "optimized": table_opt,
            "speedup": table_base["seconds"] / table_opt["seconds"],
        },
    }


def test_parallel_layer_speedup(benchmark, emit):
    results = run_once(benchmark, run_suite)
    RESULTS_PATH.write_text(json.dumps(results, indent=2, sort_keys=True) + "\n")
    rows = []
    for name, unit in [
        ("engine_round", "rounds_per_sec"),
        ("managed_round", "rounds_per_sec"),
        ("forecast_refit", "refits_per_sec"),
    ]:
        rows.append(
            {
                "stage": name,
                "baseline_per_sec": results[name]["baseline"][unit],
                "optimized_per_sec": results[name]["optimized"][unit],
                "speedup": results[name]["speedup"],
            }
        )
    rows.append(
        {
            "stage": "transmission_table",
            "baseline_per_sec": results["transmission_table"]["baseline"]["rounds"]
            / results["transmission_table"]["baseline"]["seconds"],
            "optimized_per_sec": results["transmission_table"]["optimized"]["rounds"]
            / results["transmission_table"]["optimized"]["seconds"],
            "speedup": results["transmission_table"]["speedup"],
        }
    )
    emit(format_table("Parallel/caching/warm-start speedups (BENCH_2.json)", rows))
    # the headline acceptance: managed closed-loop paper-scale rounds
    assert results["managed_round"]["speedup"] >= 2.0
    assert results["forecast_refit"]["speedup"] >= 2.0
    # per-worker plan sections surfaced by the profiler
    assert results["engine_round"]["optimized"]["plan_sections"]
    # the memo runs the shortest-path precomputation exactly once
    assert results["transmission_table"]["optimized"]["table_builds"] == 1
    assert (
        results["transmission_table"]["baseline"]["table_builds"]
        == results["transmission_table"]["baseline"]["rounds"]
    )
    # the engine path must never regress materially on one core
    assert results["engine_round"]["speedup"] > 0.7
