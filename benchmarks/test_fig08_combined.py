"""Fig. 8: the combined (dynamic-selection) model on mixed data.

"Because a dataset may contain both linear data and nonlinear data, we
suggest to use this combined model ... The result is shown in Fig. 8 with
a smaller minimum square error."  The selector must approach (and on the
mixed trace beat or match) each fixed model.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.analysis import format_table
from repro.forecast import ARIMA, NARNET, DynamicModelSelector, NaiveLast, mse
from repro.traces import mixed_trace

SEED = 2015


def pool():
    # the paper's example: two ARIMA configurations + two NARNET shapes
    return {
        "arima111": lambda: ARIMA(1, 1, 1),
        "arima212": lambda: ARIMA(2, 1, 2),
        "narnet8x10": lambda: NARNET(ni=8, nh=10, restarts=1, seed=3, maxiter=150),
        "narnet12x20": lambda: NARNET(ni=12, nh=20, restarts=1, seed=5, maxiter=150),
    }


def run_experiment():
    y = mixed_trace(seed=SEED)
    train_len = int(0.6 * y.shape[0])
    sel = DynamicModelSelector(pool(), period=20, refit_every=120, max_history=400)
    trace = sel.run(y, train_len)
    return y, train_len, trace


def test_fig08_combined_model(benchmark, emit):
    y, train_len, trace = run_once(benchmark, run_experiment)
    actual = y[train_len:]
    combined = mse(actual, trace.predictions)
    per_model = {}
    for name, p in trace.per_model_predictions.items():
        ok = ~np.isnan(p)
        per_model[name] = mse(actual[ok], p[ok])
    rows = [{"combined_mse": combined, **{f"{k}_mse": v for k, v in per_model.items()}}]
    from collections import Counter

    chosen = Counter(trace.chosen)
    emit(
        format_table("Fig. 8 — combined model on the mixed trace", rows)
        + f"\nmodel usage: {dict(chosen)}"
    )
    best = min(per_model.values())
    worst = max(per_model.values())
    # the combined model has "a smaller minimum square error": it must beat
    # the worst member clearly and track the best member closely
    assert combined < worst
    assert combined <= 1.15 * best
    # both model families actually get used on mixed data
    used = set(trace.chosen)
    assert any("arima" in u for u in used) or any("narnet" in u for u in used)
