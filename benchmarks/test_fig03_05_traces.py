"""Figs. 3-5: the raw ZopleCloud traces (synthetic substitute).

The paper plots raw CPU utilization (Fig. 3), disk I/O rate (Fig. 4) and
weekly switch traffic (Fig. 5).  We regenerate the synthetic suite and
report the summary statistics that characterize each figure's shape:
range, burstiness, and seasonal peak/trough structure.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.analysis import format_table
from repro.forecast.acf import acf
from repro.traces import ZopleCloudTraces


def test_fig03_05_trace_suite(benchmark, emit):
    suite = run_once(benchmark, ZopleCloudTraces.generate, 2015)

    rows = [
        {
            "mean": float(arr.mean()),
            "p50": float(np.median(arr)),
            "max": float(arr.max()),
            "std": float(arr.std()),
            "burst_ratio": float(arr.max() / max(np.median(arr), 1e-9)),
        }
        for arr in (suite.cpu, suite.disk_io, suite.weekly_traffic)
    ]
    table = format_table(
        "Figs. 3-5 — synthetic ZopleCloud traces "
        "(rows: CPU %, disk I/O MB, weekly traffic MB)",
        rows,
    )
    day = 144
    r = acf(suite.weekly_traffic, 2 * day)
    extra = (
        f"Fig. 5 seasonality: ACF(1 day) = {r[day]:.3f}, "
        f"ACF(2 days) = {r[2 * day - 1]:.3f} (regular peaks & troughs)"
    )
    emit(table + "\n" + extra)

    # Fig. 3: CPU bounded in [0, 100] with visible bursts
    assert suite.cpu.max() <= 100.0 and suite.cpu.min() >= 0.0
    assert rows[0]["burst_ratio"] > 1.5
    # Fig. 4: disk I/O heavily bursty
    assert rows[1]["burst_ratio"] > 4.0
    # Fig. 5: strong daily seasonality
    assert r[day] > 0.5
