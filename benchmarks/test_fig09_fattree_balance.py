"""Fig. 9: workload std-dev over VM migration rounds on Fat-Tree.

Paper setting: Fat-Tree topology, five percent of VMs raise alerts per
round, 24 migration rounds; "the standard deviation of the workload
percentages of all the servers in the network keeps going down" from
~38 % toward ~12 %.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.analysis import Series, format_series
from repro.cluster import build_cluster
from repro.sim import SheriffSimulation, inject_fraction_alerts
from repro.topology import build_fattree

ROUNDS = 24
SEED = 2015


def run_experiment():
    cluster = build_cluster(
        build_fattree(8),
        hosts_per_rack=4,
        fill_fraction=0.5,
        skew=1.1,  # start near the paper's ~38 % imbalance
        seed=SEED,
        delay_sensitive_fraction=0.0,
    )
    sim = SheriffSimulation(cluster, balance_weight=25.0)
    for r in range(ROUNDS):
        alerts, vma = inject_fraction_alerts(cluster, 0.05, time=r, seed=SEED + r)
        sim.run_round(alerts, vma)
    cluster.placement.check_invariants()
    return sim.workload_std_series()


def test_fig09_fattree_workload_balance(benchmark, emit):
    series = run_once(benchmark, run_experiment)
    emit(
        format_series(
            "Fig. 9 — Sheriff on Fat-Tree: workload std-dev (%) per migration round",
            [Series("std_dev_pct", list(range(ROUNDS + 1)), series.tolist())],
            x_label="round",
        )
    )
    # the curve must fall substantially and not rebound past its start
    assert series[-1] < 0.55 * series[0]
    assert series.min() >= 0.0
    # overall downward trend: late average well below early average
    assert series[-6:].mean() < 0.6 * series[:3].mean()
