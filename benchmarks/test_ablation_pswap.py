"""Ablation: Local Search swap size p — quality vs time.

The ``3 + 2/p`` bound improves with p, but each sweep enumerates
``C(k, p) * C(n-k, p)`` candidate swaps.  This bench quantifies the actual
trade on matched instances: p=2 may only marginally beat p=1 while paying
a clear time premium — exactly why the paper treats p as a tunable.
"""

import time

import numpy as np

from benchmarks.conftest import run_once
from repro.analysis import format_table
from repro.kmedian import KMedianInstance, greedy_kmedian, local_search

SEED = 2015
TRIALS = 8


def run_experiment():
    rng = np.random.default_rng(SEED)
    rows = []
    for p in (1, 2):
        costs, times = [], []
        greedy_costs = []
        for trial in range(TRIALS):
            pts = rng.random((40, 2))
            inst = KMedianInstance.from_points(pts, 6)
            t0 = time.perf_counter()
            res = local_search(inst, p=p, seed=trial)
            times.append(time.perf_counter() - t0)
            costs.append(res.cost)
            greedy_costs.append(greedy_kmedian(inst)[1])
        rows.append(
            {
                "p": p,
                "mean_cost": float(np.mean(costs)),
                "mean_time_ms": float(np.mean(times) * 1e3),
                "greedy_cost": float(np.mean(greedy_costs)),
            }
        )
    return rows


def test_ablation_swap_size(benchmark, emit):
    rows = run_once(benchmark, run_experiment)
    emit(format_table("Ablation — Local Search swap size p (n=40, k=6)", rows))
    p1, p2 = rows
    # quality: p=2 never worse on average; both beat greedy
    assert p2["mean_cost"] <= p1["mean_cost"] + 1e-9
    assert p1["mean_cost"] <= p1["greedy_cost"] + 1e-9
    # cost: the richer neighborhood takes longer
    assert p2["mean_time_ms"] > p1["mean_time_ms"]
