"""Ablation: ECMP hash-spreading vs single-path flow placement.

The DCN congestion literature the paper builds on (Hedera, Mahout) is
about ECMP collisions; Sheriff's FLOWREROUTE is the repair.  This bench
quantifies the starting point: the same flow population placed (a) all on
the deterministic min-weight path and (b) hash-spread across equal-cost
paths.  ECMP slashes the peak switch utilization before any management
runs — and the residual imbalance is what FLOWREROUTE then cleans up.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.analysis import format_table
from repro.cluster import build_cluster
from repro.migration.reroute import FlowTable
from repro.sim import (
    SheriffSimulation,
    congestion_alerts,
    latency_percentiles,
    switch_capacity,
)
from repro.topology import build_fattree

SEED = 2015
FLOW_RATE = 0.5


def populate(ft, cluster, rng):
    """Many flows between random inter-pod rack pairs."""
    pl = cluster.placement
    for vm in range(0, cluster.num_vms, 2):
        src = int(pl.host_rack[pl.vm_host[vm]])
        dst = int(rng.integers(0, cluster.num_racks))
        if dst != src:
            ft.add_flow(vm, src, dst, FLOW_RATE)


def peak_util(cluster, ft):
    cap = switch_capacity(cluster.topology)
    sw = cluster.topology.switches()
    return float(np.max(ft.node_load[sw] / cap[sw]))


def run_mode(ecmp: bool):
    cluster = build_cluster(
        build_fattree(8),
        hosts_per_rack=2,
        seed=SEED,
        dependency_degree=0.0,
        delay_sensitive_fraction=0.0,
    )
    rng = np.random.default_rng(SEED)
    ft = FlowTable(cluster.topology, ecmp=ecmp)
    populate(ft, cluster, rng)
    before = peak_util(cluster, ft)
    p99_before = latency_percentiles(cluster.topology, ft)["p99"]
    # then let Sheriff's reroute clean up what is left
    sim = SheriffSimulation(cluster)
    for mgr in sim.managers.values():
        mgr.flow_table = ft
        mgr.alpha = 0.2
    rerouted = 0
    for t in range(4):
        alerts, vma = congestion_alerts(cluster, ft, utilization_threshold=0.5, time=t)
        if not alerts:
            break
        s = sim.run_round(alerts, vma)
        rerouted += sum(r.rerouted_flows for r in s.reports)
    p99_after = latency_percentiles(cluster.topology, ft)["p99"]
    return before, peak_util(cluster, ft), rerouted, len(ft.flows), p99_before, p99_after


def run_experiment():
    single = run_mode(False)
    ecmp = run_mode(True)
    return single, ecmp


def test_ablation_ecmp(benchmark, emit):
    (sb, sa, sr, n1, sl0, sl1), (eb, ea, er, n2, el0, el1) = run_once(
        benchmark, run_experiment
    )
    rows = [
        {
            "mode": "single-path",
            "peak_before": sb,
            "peak_after_reroute": sa,
            "rerouted": sr,
            "p99_latency_before": sl0,
            "p99_latency_after": sl1,
        },
        {
            "mode": "ecmp",
            "peak_before": eb,
            "peak_after_reroute": ea,
            "rerouted": er,
            "p99_latency_before": el0,
            "p99_latency_after": el1,
        },
    ]
    emit(
        format_table(
            f"Ablation — ECMP vs single-path flow placement ({n1} flows)",
            rows,
        )
    )
    assert n1 == n2
    # ECMP alone beats single-path placement substantially
    assert eb < 0.7 * sb
    # FLOWREROUTE improves (or keeps) both starting points
    assert sa <= sb + 1e-9
    assert ea <= eb + 1e-9
    # tail latency follows: ECMP's p99 is far below single-path's, and
    # rerouting improves the single-path tail
    assert el0 < sl0
    assert sl1 <= sl0 + 1e-9
