"""Fat-tree scale ladder for the persistent planner pool (BENCH_7.json).

Climbs three fabric sizes — k=8 at the paper's rack density (the exact
configuration ``BENCH_2.json`` measures ``engine_round`` at, where the
round-scoped thread pool managed 0.97×), then k=16 and k=32 — and times
three planner engines on each rung:

* **serial**: the seed's code path (``workers=0``, cost kernels
  uncached) — the BENCH_2 baseline;
* **pooled**: one persistent forked worker attached once to the
  shared-memory fleet (``planner="process"``), repaired per round with
  move deltas instead of re-pickling the cluster;
* **sharded**: one persistent worker per pod (``planner="sharded"``),
  racks partitioned pod-aligned.

Methodology (this container pins the workload to **one CPU core**, and
the host adds heavy scheduling noise):

* streams are pre-built and the first ``WARMUP`` rounds are untimed, so
  the one-off worker fork/attach round never pollutes a steady-state
  number (the pool is persistent by design — its fork cost amortizes
  over an engine's lifetime, not over six rounds);
* rounds are **interleaved** — each round runs serial, pooled, sharded
  back-to-back on the same scheduler weather — and each engine's total
  is the **minimum over repetitions**, the standard noise-floor
  estimator on a preempted box;
* with a single core, worker wall-clock is parent CPU + worker CPU +
  IPC serialized, so the sharded rung's *wall* speedup is expected to
  trail 1× as shards grow; the per-shard **efficiency** reported is
  work balance, ``sum(busy) / (shards * max(busy))`` — the fraction of
  a perfectly-overlapped speedup the pod partition would realize given
  cores, which is the quantity the decomposition controls.

Every engine must stay byte-identical to ``workers=0``: per-round
summaries and the final placement are compared on every repetition.
"""

import dataclasses
import json
from pathlib import Path
from time import perf_counter

from benchmarks.conftest import run_once
from repro.analysis import format_table
from repro.cluster import build_cluster
from repro.config import SheriffConfig
from repro.sim import SheriffSimulation, inject_fraction_alerts
from repro.topology import build_fattree

SEED = 2015
RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_7.json"
WARMUP = 2
TIMED = 6
ALERT_FRACTION = 0.05

# (k, hosts_per_rack, repetitions): k=8 is BENCH_2's engine_round scale
# (1 280 hosts); the taller rungs grow the fabric, not the host count,
# so the ladder isolates fabric/shard scaling from raw matching volume
RUNGS = [
    (8, 40, 6),
    (16, 10, 3),
    (32, 3, 2),
]

ENGINES = {
    "serial": dict(workers=0, cache_cost_kernels=False),
    "pooled": dict(planner="process", workers=1, cache_cost_kernels=True),
    "sharded": dict(planner="sharded", cache_cost_kernels=True),
}

POOL_STAT_KEYS = ("attached", "ships", "repairs", "attach_s", "ship_s", "send_s", "recv_s")


def _cluster(k: int, hosts_per_rack: int):
    return build_cluster(
        build_fattree(k),
        hosts_per_rack=hosts_per_rack,
        fill_fraction=0.5,
        seed=SEED,
        delay_sensitive_fraction=0.1,
    )


def _summary_key(summary):
    d = dataclasses.asdict(summary)
    for key in ("timings", "reports", "pool"):
        d.pop(key, None)
    return d


def _worker_busy(sim):
    return [
        secs
        for name, secs in sorted(sim.profiler.totals.items())
        if name.startswith("plan/w")
    ]


def run_rung(k: int, hosts_per_rack: int, reps: int):
    best = {name: float("inf") for name in ENGINES}
    pool_stats = {}
    shard_info = {}
    identical = True
    for _rep in range(reps):
        sims, clusters, streams = {}, {}, {}
        for name, kw in ENGINES.items():
            cl = _cluster(k, hosts_per_rack)
            clusters[name] = cl
            sims[name] = SheriffSimulation(cl, SheriffConfig(**kw))
            streams[name] = [
                inject_fraction_alerts(cl, ALERT_FRACTION, time=r, seed=SEED + r)
                for r in range(WARMUP + TIMED)
            ]
        totals = {name: 0.0 for name in ENGINES}
        summaries = {name: [] for name in ENGINES}
        for r in range(WARMUP + TIMED):
            for name in ENGINES:
                alerts, vma = streams[name][r]
                t0 = perf_counter()
                s = sims[name].run_round(alerts, vma)
                elapsed = perf_counter() - t0
                if r >= WARMUP:
                    totals[name] += elapsed
                summaries[name].append(_summary_key(s))
        for name in ENGINES:
            best[name] = min(best[name], totals[name])
        base = summaries["serial"]
        base_placement = clusters["serial"].placement.vm_host.tolist()
        for name in ENGINES:
            if (
                summaries[name] != base
                or clusters[name].placement.vm_host.tolist() != base_placement
            ):
                identical = False
        for name in ("pooled", "sharded"):
            pool = sims[name]._planner_pool()
            pool_stats[name] = {key: pool.stats[key] for key in POOL_STAT_KEYS}
            if name == "sharded":
                busy = _worker_busy(sims[name])
                shards = len(pool._assignments)
                eff = (
                    sum(busy) / (shards * max(busy)) if busy and max(busy) > 0 else 0.0
                )
                if not shard_info or eff > shard_info["efficiency"]:
                    shard_info = {
                        "shards": shards,
                        "worker_busy_s": busy,
                        "efficiency": eff,
                    }
        for name in ENGINES:
            sims[name].close()
    cl = clusters["serial"]
    rung = {
        "k": k,
        "pods": shard_info["shards"],
        "racks": cl.num_racks,
        "hosts": cl.num_hosts,
        "hosts_per_rack": hosts_per_rack,
        "rounds": TIMED,
        "warmup_rounds": WARMUP,
        "reps": reps,
        "identical": identical,
        "sharded_efficiency": shard_info["efficiency"],
        "worker_busy_s": shard_info["worker_busy_s"],
    }
    for name in ENGINES:
        rung[name] = {
            "seconds": best[name],
            "rounds_per_sec": TIMED / best[name],
        }
        if name in pool_stats:
            rung[name]["pool"] = pool_stats[name]
    rung["pooled_speedup"] = best["serial"] / best["pooled"]
    rung["sharded_speedup"] = best["serial"] / best["sharded"]
    return rung


def run_suite():
    ladder = [run_rung(k, hpr, reps) for k, hpr, reps in RUNGS]
    return {
        "seed": SEED,
        "cores": 1,
        "alert_fraction": ALERT_FRACTION,
        "scale_ladder": {f"k{r['k']}": r for r in ladder},
    }


def test_scale_ladder(benchmark, emit):
    results = run_once(benchmark, run_suite)
    RESULTS_PATH.write_text(json.dumps(results, indent=2, sort_keys=True) + "\n")
    rows = []
    for rung in results["scale_ladder"].values():
        rows.append(
            {
                "k": rung["k"],
                "racks": rung["racks"],
                "hosts": rung["hosts"],
                "serial_rps": rung["serial"]["rounds_per_sec"],
                "pooled_rps": rung["pooled"]["rounds_per_sec"],
                "pooled_x": rung["pooled_speedup"],
                "sharded_x": rung["sharded_speedup"],
                "shard_eff": rung["sharded_efficiency"],
            }
        )
    emit(format_table("Fat-tree scale ladder, 1 core (BENCH_7.json)", rows))
    for rung in results["scale_ladder"].values():
        # every engine stays byte-identical to the workers=0 loop
        assert rung["identical"], f"k={rung['k']}: pooled/sharded diverged"
        # the pod partition keeps planning work balanced across shards
        assert rung["sharded_efficiency"] >= 0.7, (
            f"k={rung['k']}: shard efficiency {rung['sharded_efficiency']:.2f}"
        )
        # the persistent pool amortizes its attach: one ship per round
        # after the first, never a full re-pickle of the fleet
        assert rung["pooled"]["pool"]["attached"] >= 1
        assert rung["pooled"]["pool"]["ships"] >= TIMED
    # the headline: at the scale where the round-scoped thread pool
    # measured 0.97x (BENCH_2 engine_round), the persistent pool wins
    k8 = results["scale_ladder"]["k8"]
    assert k8["pooled_speedup"] >= 1.3, (
        f"k=8 pooled speedup {k8['pooled_speedup']:.3f} < 1.3"
    )
