"""Tracer-overhead benchmark: the observability zero-cost contract, priced.

Behind ``make bench-trace``: runs the BENCH_4 fleet round (8-pod
Fat-Tree, 1 280 hosts, forecast-driven alerts) in three configurations —

* **null**: the default ``NULL_TRACER`` path (one ``enabled`` attribute
  read per emitting site, zero event allocations);
* **recording**: a :class:`~repro.obs.tracer.RecordingTracer` with the
  lifecycle stitcher stamping ``trace_id``/``parent_id`` on every event;
* **spans**: ``Profiler(record_spans=True)`` capturing the nested-span
  flamegraph for the Chrome/Perfetto exporter.

Results land in ``BENCH_5.json``; ``make bench-check``
(``tools/check_bench.py``) gates CI on two claims from the PR 1
contract: the NULL_TRACER run is byte-identical to the seed decisions,
and full recording costs < 10 % of a fleet round's wall-clock.

Timing noise note: the overhead fraction compares the *median* of three
alternating passes per configuration — a single pass each puts
scheduler jitter (easily 5 % on a loaded machine) straight into the
gate.
"""

import json
import statistics
from pathlib import Path
from time import perf_counter

from benchmarks.conftest import run_once
from benchmarks.test_perf_fleet import ENGINE_ROUNDS, SEED, run_engine_rounds
from repro.analysis import format_table
from repro.cluster import build_cluster
from repro.config import SheriffConfig
from repro.obs.export import chrome_trace
from repro.obs.profiling import Profiler
from repro.obs.tracer import RecordingTracer
from repro.sim import SheriffSimulation, inject_fraction_alerts
from repro.topology import build_fattree

RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_5.json"
TIMED_PASSES = 3
SPAN_ROUNDS = 6


def _timed_pass(tracer):
    row = run_engine_rounds(workers=0, cache=True, batched=True, tracer=tracer)
    decisions = (row["summaries"], row["final_placement"])
    return row["seconds"], decisions


def run_tracer_overhead():
    """Median fleet-round wall-clock: null vs recording tracer."""
    # warm-up (see benchmarks/test_perf_fleet.py docstring)
    _timed_pass(None)
    null_seconds, traced_seconds = [], []
    null_decisions = traced_decisions = None
    events = 0
    for _ in range(TIMED_PASSES):
        secs, null_decisions = _timed_pass(None)
        null_seconds.append(secs)
        tracer = RecordingTracer()
        secs, traced_decisions = _timed_pass(tracer)
        traced_seconds.append(secs)
        events = len(tracer.events)
    # the zero-cost contract, checked on the benchmark's own outputs
    null_identical = traced_decisions == null_decisions
    base = statistics.median(null_seconds)
    traced = statistics.median(traced_seconds)
    return {
        "rounds": ENGINE_ROUNDS,
        "passes": TIMED_PASSES,
        "baseline_seconds": base,
        "traced_seconds": traced,
        "overhead_frac": (traced - base) / base,
        "events": events,
        "null_identical": null_identical,
    }


def run_span_export():
    """Paper-scale spans: record a traced run and export the flamegraph."""
    cluster = build_cluster(
        build_fattree(8),
        hosts_per_rack=40,
        fill_fraction=0.5,
        skew=1.1,
        seed=SEED,
        delay_sensitive_fraction=0.0,
    )
    profiler = Profiler(record_spans=True)
    sim = SheriffSimulation(cluster, SheriffConfig(profiler=profiler))
    for r in range(SPAN_ROUNDS):
        alerts, vma = inject_fraction_alerts(
            cluster, 0.05, time=r, seed=SEED + r
        )
        sim.run_round(alerts, vma)
    t0 = perf_counter()
    doc = chrome_trace(profiler)
    export_seconds = perf_counter() - t0
    events = doc["traceEvents"]
    # valid trace_event JSON: serializable, complete events, sane nesting
    json.dumps(doc)
    assert events and all(e["ph"] == "X" for e in events)
    assert all(e["dur"] >= 0.0 for e in events)
    top = [e for e in events if e["args"]["depth"] == 0]
    return {
        "rounds": SPAN_ROUNDS,
        "spans": len(events),
        "top_level_spans": len(top),
        "max_depth": max(e["args"]["depth"] for e in events),
        "export_seconds": export_seconds,
    }


def run_suite():
    return {
        "seed": SEED,
        "tracer_overhead": run_tracer_overhead(),
        "span_export": run_span_export(),
    }


def test_tracer_overhead(benchmark, emit):
    results = run_once(benchmark, run_suite)
    RESULTS_PATH.write_text(json.dumps(results, indent=2, sort_keys=True) + "\n")
    over = results["tracer_overhead"]
    emit(
        format_table(
            "Tracer overhead on the fleet round (BENCH_5.json)",
            [
                {
                    "baseline_s": over["baseline_seconds"],
                    "traced_s": over["traced_seconds"],
                    "overhead_pct": 100.0 * over["overhead_frac"],
                    "events": over["events"],
                    "spans": results["span_export"]["spans"],
                }
            ],
        )
    )
    # the PR 1 contract: disabled observability is free, enabled is cheap
    assert over["null_identical"] is True
    assert over["overhead_frac"] < 0.10
    assert results["span_export"]["max_depth"] >= 1
