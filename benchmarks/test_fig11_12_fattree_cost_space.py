"""Figs. 11 & 12: Sheriff vs global optimal manager on Fat-Tree.

Paper protocol (Sec. VI-B): Fat-Tree with pods swept from 8 to 48, C_r =
100, δ = η = 1, core-agg bandwidth 10, agg-ToR bandwidth 1, C_d = 1, VM
capacity up to 20, five percent of VMs alerting.

* Fig. 11 — total migration cost: regional Sheriff "performs quite well
  even compared to a centralized optimal manager" (both curves grow
  together, Sheriff slightly above);
* Fig. 12 — search space: Sheriff's candidate space is far below the
  centralized manager's, and the gap widens with the fabric.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.analysis import Series, format_series
from repro.cluster import build_cluster
from repro.costs.model import CostModel, CostParams
from repro.sim import (
    centralized_migration_round,
    inject_fraction_alerts,
    regional_migration_round,
)
from repro.topology import build_fattree

PODS = [8, 16, 24, 32, 40, 48]
SEED = 2015


def run_experiment():
    rows = []
    for k in PODS:
        cluster = build_cluster(
            build_fattree(k),
            hosts_per_rack=2,
            host_capacity=100,
            vm_capacity_max=20,  # paper: "VM capacity is set up to value 20"
            fill_fraction=0.5,
            skew=0.5,
            seed=SEED,
            delay_sensitive_fraction=0.0,
        )
        cm = CostModel(cluster, CostParams())  # C_r=100, delta=eta=1, C_d=1
        _, vma = inject_fraction_alerts(cluster, 0.05, seed=SEED)
        cands = sorted(vma)
        reg = regional_migration_round(cluster, cm, cands)
        cen = centralized_migration_round(cluster, cm, cands)
        rows.append(
            {
                "pods": k,
                "sheriff_cost": reg.total_cost,
                "optimal_cost": cen.total_cost,
                "sheriff_per_vm": reg.total_cost / max(len(reg.moves), 1),
                "optimal_per_vm": cen.total_cost / max(len(cen.moves), 1),
                "sheriff_space": reg.search_space,
                "central_space": cen.search_space,
                "sheriff_placed": len(reg.moves),
                "central_placed": len(cen.moves),
            }
        )
    return rows


def test_fig11_fig12_fattree_cost_and_space(benchmark, emit):
    rows = run_once(benchmark, run_experiment)
    x = [r["pods"] for r in rows]
    emit(
        format_series(
            "Fig. 11 — VM migration cost: Sheriff (APP) vs global optimal (OPT), Fat-Tree",
            [
                Series("sheriff_cost", x, [r["sheriff_cost"] for r in rows]),
                Series("optimal_cost", x, [r["optimal_cost"] for r in rows]),
                Series("sheriff_per_vm", x, [r["sheriff_per_vm"] for r in rows]),
                Series("optimal_per_vm", x, [r["optimal_per_vm"] for r in rows]),
            ],
            x_label="pods",
        )
        + "\n\n"
        + format_series(
            "Fig. 12 — search space: Sheriff vs centralized manager, Fat-Tree",
            [
                Series("sheriff_space", x, [r["sheriff_space"] for r in rows]),
                Series("central_space", x, [r["central_space"] for r in rows]),
            ],
            x_label="pods",
        )
    )
    sheriff = np.asarray([r["sheriff_cost"] for r in rows])
    optimal = np.asarray([r["optimal_cost"] for r in rows])
    s_space = np.asarray([r["sheriff_space"] for r in rows], dtype=float)
    c_space = np.asarray([r["central_space"] for r in rows], dtype=float)

    # Fig. 11 shape: both curves grow with pods; per-placed-VM cost close
    assert (np.diff(sheriff) > 0).all()
    assert (np.diff(optimal) > 0).all()
    per_reg = np.asarray([r["sheriff_per_vm"] for r in rows])
    per_cen = np.asarray([r["optimal_per_vm"] for r in rows])
    assert (per_reg <= 2.0 * per_cen).all()
    assert (per_reg >= 0.8 * per_cen).all()  # and genuinely comparable

    # Fig. 12 shape: regional space orders of magnitude smaller, gap widens
    assert (s_space * 5 < c_space).all()
    ratio = c_space / s_space
    assert ratio[-1] > ratio[0]
