"""Fig. 2: the six-stage live VM migration timeline.

Fig. 2 is the paper's schematic of pre-copy migration (initialization &
reservation → iterative pre-copy → stop-and-copy → commitment &
activation).  We regenerate it quantitatively: per-VM-size timelines with
the paper's ~60 ms downtime target, showing how the stage budget shifts
from ``t2`` (iterative pre-copy) into rounds as guests get busier.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.analysis import format_table
from repro.costs.precopy import precopy_timeline

BANDWIDTH = 125.0  # MB/s — 1 Gbps, the paper's ToR link


def run_experiment():
    rows = []
    for mem_mb, dirty in [
        (512, 2.0),      # small idle guest
        (2048, 10.0),    # medium web server
        (8192, 30.0),    # large busy database
        (8192, 80.0),    # same guest, hot pages
    ]:
        tl = precopy_timeline(
            memory=mem_mb,
            dirty_rate=dirty,
            bandwidth=BANDWIDTH,
            downtime_target=0.06,
        )
        rows.append(
            {
                "memory_mb": mem_mb,
                "dirty_mbps": dirty,
                "t1_s": tl.t1,
                "t2_s": tl.t2,
                "t3_ms": tl.t3 * 1e3,
                "t4_s": tl.t4,
                "rounds": tl.rounds,
                "transferred_mb": tl.transferred,
            }
        )
    return rows


def test_fig02_six_stage_timeline(benchmark, emit):
    rows = run_once(benchmark, run_experiment)
    emit(
        format_table(
            "Fig. 2 — six-stage pre-copy timelines at 1 Gbps "
            "(t3 = downtime, target 60 ms)",
            rows,
        )
    )
    for r in rows:
        # the paper's premise: downtime is a short period around 60 ms
        assert r["t3_ms"] <= 60.0 + 1e-6
        # pre-copy transfers at least the full RAM once
        assert r["transferred_mb"] >= r["memory_mb"]
    # busier guests need more rounds and more total transfer
    assert rows[3]["rounds"] >= rows[2]["rounds"]
    assert rows[3]["transferred_mb"] > rows[2]["transferred_mb"]
    # t2 dominates the timeline for large guests (the Fig. 2 proportions)
    big = rows[2]
    assert big["t2_s"] > big["t1_s"] + big["t4_s"]
