"""Ablation: pre-alert (forecast-driven) vs contingency (reactive).

The paper's founding claim (Sec. I): acting on *predicted* overloads
"solves potential problems before they actually happen".  We drive two
identical clusters through the same demand trajectories — scheduled
overload ramps on a quarter of the VMs — and count host-overload rounds
under each policy.  Pre-alert must expose the fleet to fewer overloads.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.analysis import format_table
from repro.cluster import build_cluster
from repro.cluster.resources import ResourceKind
from repro.sim import SheriffSimulation, run_managed_simulation
from repro.sim.reactive import (
    DemandDrivenWorkload,
    PredictiveManager,
    ReactiveManager,
)
from repro.topology import build_fattree
from repro.traces.workload import WorkloadStream

SEED = 2015
HOST_THRESHOLD = 0.5   # host-level overload line
WARM = 60
HORIZON = 130


def build_env():
    """Cluster plus demand with *host-level* overload events.

    A quarter of the hosts experience a correlated surge: every VM they
    carry ramps toward saturation at the same time (a tenant-wide load
    spike), pushing the host across HOST_THRESHOLD unless the manager evicts.
    """
    cluster = build_cluster(
        build_fattree(4),
        hosts_per_rack=2,
        fill_fraction=0.55,
        seed=SEED,
        dependency_degree=0.0,
        delay_sensitive_fraction=0.0,
    )
    rng = np.random.default_rng(SEED + 1)
    pl = cluster.placement
    surging = rng.choice(
        pl.num_hosts, size=max(1, pl.num_hosts // 4), replace=False
    )
    surge_start = {
        int(h): int(rng.integers(WARM + 10, HORIZON - 40)) for h in surging
    }
    streams = {}
    for vm in range(cluster.num_vms):
        host = int(pl.vm_host[vm])
        ramps = []
        if host in surge_start:
            ramps = [(int(ResourceKind.CPU), surge_start[host], 10, 0.95)]
        streams[vm] = WorkloadStream.generate(
            HORIZON,
            base_level=0.45,
            diurnal_amplitude=0.08,
            burst_rate=0.0,
            wander_sigma=0.005,
            ramps=ramps,
            seed=int(rng.integers(0, 2**31)),
        )
    return cluster, DemandDrivenWorkload(cluster, streams)


def run_policy(policy):
    cluster, workload = build_env()
    sim = SheriffSimulation(cluster)
    if policy == "prealert":
        manager = PredictiveManager(workload, threshold=HOST_THRESHOLD, horizon=3)
    else:
        manager = ReactiveManager(workload, threshold=HOST_THRESHOLD)
    report = run_managed_simulation(
        sim,
        workload,
        manager,
        warm=WARM,
        horizon=HORIZON,
        overload_threshold=HOST_THRESHOLD,
    )
    return report.overload_rounds, report.migrations


def run_experiment():
    pre = run_policy("prealert")
    rea = run_policy("reactive")
    return pre, rea


def test_ablation_prealert_vs_reactive(benchmark, emit):
    (pre_over, pre_migr), (rea_over, rea_migr) = run_once(benchmark, run_experiment)
    rows = [
        {
            "prealert_overload_rounds": pre_over,
            "reactive_overload_rounds": rea_over,
            "prealert_migrations": pre_migr,
            "reactive_migrations": rea_migr,
        }
    ]
    emit(
        format_table(
            "Ablation — pre-alert vs contingency management "
            f"(host threshold {HOST_THRESHOLD}, rounds {HORIZON - WARM})",
            rows,
        )
    )
    # the paper's claim: predicting strictly reduces overload exposure
    assert pre_over < rea_over
