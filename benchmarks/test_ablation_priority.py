"""Ablation: PRIORITY knapsack vs naive max-ALERT selection.

Alg. 2's DP evicts low-value/large-size VMs within the capacity budget.
The naive alternative (grab the highest-ALERT VMs until the budget is
full) relieves less capacity and/or evicts more operator value.  We
quantify both on randomized candidate pools.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.analysis import format_table
from repro.migration.priority import CandidateVM, PriorityFactor, priority_select

SEED = 2015
TRIALS = 200


def naive_select(cands, budget):
    """Highest-ALERT-first greedy fill (the strawman)."""
    out = []
    used = 0
    for c in sorted(cands, key=lambda c: -c.alert):
        if c.delay_sensitive:
            continue
        if used + c.capacity <= budget:
            out.append(c)
            used += c.capacity
    return out


def run_experiment():
    rng = np.random.default_rng(SEED)
    dp_relief, dp_value = [], []
    nv_relief, nv_value = [], []
    for _ in range(TRIALS):
        n = int(rng.integers(5, 15))
        cands = [
            CandidateVM(
                vm_id=i,
                capacity=int(rng.integers(1, 15)),
                value=float(rng.uniform(0.5, 10.0)),
                alert=float(rng.uniform(0.9, 1.0)),
                delay_sensitive=bool(rng.random() < 0.1),
            )
            for i in range(n)
        ]
        budget = int(rng.integers(10, 45))
        dp = priority_select(cands, PriorityFactor.BETA, budget=budget)
        nv = naive_select(cands, budget)
        dp_relief.append(sum(c.capacity for c in dp))
        dp_value.append(sum(c.value for c in dp))
        nv_relief.append(sum(c.capacity for c in nv))
        nv_value.append(sum(c.value for c in nv))
    return (
        float(np.mean(dp_relief)),
        float(np.mean(dp_value)),
        float(np.mean(nv_relief)),
        float(np.mean(nv_value)),
    )


def test_ablation_priority_selection(benchmark, emit):
    dp_r, dp_v, nv_r, nv_v = run_once(benchmark, run_experiment)
    rows = [
        {
            "dp_relieved_cap": dp_r,
            "naive_relieved_cap": nv_r,
            "dp_value_evicted": dp_v,
            "naive_value_evicted": nv_v,
            "dp_value_per_cap": dp_v / dp_r,
            "naive_value_per_cap": nv_v / nv_r,
        }
    ]
    emit(
        format_table(
            f"Ablation — PRIORITY knapsack vs max-ALERT greedy ({TRIALS} pools)",
            rows,
        )
    )
    # the DP relieves at least as much capacity on average...
    assert dp_r >= nv_r - 1e-9
    # ...and evicts less operator value per relieved capacity unit
    assert dp_v / dp_r < nv_v / nv_r
