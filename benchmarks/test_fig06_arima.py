"""Fig. 6: ARIMA(1,1,1) predicting the weekly switch traffic.

Paper protocol: half the trace trains the ARIMA(1,1,1) (via Box-Jenkins/
MATLAB there, CSS here), the other half is the test set; the predicted
curve tracks the original with small bias.  We reproduce with walk-forward
one-step prediction and report train/test errors plus the bias envelope.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.analysis import format_table
from repro.forecast import ARIMA, mape, mse, rmse
from repro.forecast.selection import rolling_one_step
from repro.traces import weekly_traffic_trace

SEED = 2015


def run_experiment():
    y = weekly_traffic_trace(seed=SEED)
    n = y.shape[0]
    train_len = n // 2  # paper: "use half of the data for training"
    model = ARIMA(1, 1, 1).fit(y[:train_len])
    fitted_residuals = model.residuals()
    preds = rolling_one_step(lambda: ARIMA(1, 1, 1), y, train_len, refit_every=100)
    return y, train_len, fitted_residuals, preds


def test_fig06_arima_weekly_traffic(benchmark, emit):
    y, train_len, resid, preds = run_once(benchmark, run_experiment)
    actual = y[train_len:]
    bias = actual - preds
    rows = [
        {
            "test_mse": mse(actual, preds),
            "test_rmse": rmse(actual, preds),
            "test_mape_pct": mape(actual, preds),
            "bias_mean": float(bias.mean()),
            "bias_p95": float(np.quantile(np.abs(bias), 0.95)),
        }
    ]
    emit(
        format_table(
            "Fig. 6 — ARIMA(1,1,1) on weekly switch traffic "
            f"(train {train_len} / test {len(actual)})",
            rows,
        )
        + f"\ntraffic range: [{y.min():.1f}, {y.max():.1f}] MB; "
        f"train residual std {resid.std():.2f}"
    )
    # the model must track the signal: error well below the signal's own
    # variability, and bias centred near zero (the paper's thin bias band)
    assert mse(actual, preds) < 0.2 * actual.var()
    assert abs(bias.mean()) < 0.1 * actual.std()
    assert mape(actual, preds) < 15.0
