"""Figs. 13 & 14: Sheriff vs global optimal manager on BCube.

Paper protocol: BCube with the number of switches per level swept (the
figure axis runs 2..20), all other settings as in the Fat-Tree run.  A
two-level BCube(n) has n racks of n servers, so the host count grows
quadratically along the sweep.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.analysis import Series, format_series
from repro.cluster import build_cluster
from repro.costs.model import CostModel, CostParams
from repro.sim import (
    centralized_migration_round,
    inject_fraction_alerts,
    regional_migration_round,
)
from repro.topology import build_bcube

SWITCHES = [4, 8, 12, 16, 20]
SEED = 2015


def run_experiment():
    rows = []
    for n in SWITCHES:
        cluster = build_cluster(
            build_bcube(n),
            hosts_per_rack=n,  # BCube(n, 1): n servers per level-0 switch
            host_capacity=100,
            vm_capacity_max=20,
            fill_fraction=0.5,
            skew=0.5,
            seed=SEED,
            delay_sensitive_fraction=0.0,
        )
        cm = CostModel(cluster, CostParams())
        _, vma = inject_fraction_alerts(cluster, 0.05, seed=SEED)
        cands = sorted(vma)
        reg = regional_migration_round(cluster, cm, cands)
        cen = centralized_migration_round(cluster, cm, cands)
        rows.append(
            {
                "k": n,
                "sheriff_cost": reg.total_cost,
                "optimal_cost": cen.total_cost,
                "sheriff_per_vm": reg.total_cost / max(len(reg.moves), 1),
                "optimal_per_vm": cen.total_cost / max(len(cen.moves), 1),
                "sheriff_space": reg.search_space,
                "central_space": cen.search_space,
            }
        )
    return rows


def test_fig13_fig14_bcube_cost_and_space(benchmark, emit):
    rows = run_once(benchmark, run_experiment)
    x = [r["k"] for r in rows]
    emit(
        format_series(
            "Fig. 13 — VM migration cost: Sheriff (APP) vs global optimal (OPT), BCube",
            [
                Series("sheriff_cost", x, [r["sheriff_cost"] for r in rows]),
                Series("optimal_cost", x, [r["optimal_cost"] for r in rows]),
                Series("sheriff_per_vm", x, [r["sheriff_per_vm"] for r in rows]),
                Series("optimal_per_vm", x, [r["optimal_per_vm"] for r in rows]),
            ],
            x_label="k_switches",
        )
        + "\n\n"
        + format_series(
            "Fig. 14 — search space: Sheriff vs centralized manager, BCube",
            [
                Series("sheriff_space", x, [r["sheriff_space"] for r in rows]),
                Series("central_space", x, [r["central_space"] for r in rows]),
            ],
            x_label="k_switches",
        )
    )
    sheriff = np.asarray([r["sheriff_cost"] for r in rows])
    optimal = np.asarray([r["optimal_cost"] for r in rows])
    s_space = np.asarray([r["sheriff_space"] for r in rows], dtype=float)
    c_space = np.asarray([r["central_space"] for r in rows], dtype=float)

    assert (np.diff(sheriff) > 0).all()
    assert (np.diff(optimal) > 0).all()
    per_reg = np.asarray([r["sheriff_per_vm"] for r in rows])
    per_cen = np.asarray([r["optimal_per_vm"] for r in rows])
    assert (per_reg <= 2.0 * per_cen).all()
    # in a two-level BCube every rack is a one-hop neighbor, so the
    # regional space approaches (but must not exceed) the centralized one
    assert (s_space <= c_space).all()
