"""Ablation: the dependency cost term ``C_d · D(e) · χ`` (Eq. 1).

The dependency term is what makes migration *application-aware*: moving a
VM away from its communication partners is penalized by the physical
distance its traffic will now travel.  We plan the same candidate set
with ``C_d = 0`` (dependency-blind) and with a strong ``C_d``, and
measure the resulting total dependency traffic distance

    ``Σ_{(a,b) ∈ G_d} D(rack(a), rack(b))``

after applying each plan.  Dependency-aware planning must end with its
communicating pairs closer together.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.analysis import format_table
from repro.cluster import build_cluster
from repro.costs.model import CostModel, CostParams
from repro.sim import centralized_migration_round, inject_fraction_alerts
from repro.topology import build_fattree

SEED = 2015


def dependency_distance(cluster, rack_dist):
    pl = cluster.placement
    racks = pl.host_rack[pl.vm_host]
    total = 0.0
    pairs = 0
    deps = cluster.dependencies
    for a in range(deps.num_vms):
        for b in deps.neighbors(a):
            if b > a:
                total += float(rack_dist[int(racks[a]), int(racks[b])])
                pairs += 1
    return total, pairs


def run_policy(dependency_unit: float):
    cluster = build_cluster(
        build_fattree(8),
        hosts_per_rack=2,
        fill_fraction=0.5,
        skew=0.6,
        seed=SEED,
        dependency_degree=2.5,
        delay_sensitive_fraction=0.0,
    )
    cm = CostModel(cluster, CostParams(dependency_unit=dependency_unit))
    rack_dist = cm.rack_distances
    before, pairs = dependency_distance(cluster, rack_dist)
    total_moves = 0
    for r in range(4):
        _, vma = inject_fraction_alerts(cluster, 0.05, time=r, seed=SEED + r)
        plan = centralized_migration_round(cluster, cm, sorted(vma), apply=True)
        total_moves += plan.migrations
    after, _ = dependency_distance(cluster, rack_dist)
    return before, after, pairs, total_moves


def run_experiment():
    blind = run_policy(0.0)
    aware = run_policy(8.0)
    return blind, aware


def test_ablation_dependency_cost(benchmark, emit):
    (b0, b1, pairs, bm), (a0, a1, _, am) = run_once(benchmark, run_experiment)
    rows = [
        {
            "policy": "blind (C_d=0)",
            "dep_dist_before": b0,
            "dep_dist_after": b1,
            "moves": bm,
        },
        {
            "policy": "aware (C_d=8)",
            "dep_dist_before": a0,
            "dep_dist_after": a1,
            "moves": am,
        },
    ]
    emit(
        format_table(
            f"Ablation — dependency cost term over {pairs} dependent pairs "
            "(4 centralized rounds)",
            rows,
        )
    )
    # identical starting state by construction
    assert b0 == a0
    # the aware planner ends with dependents closer together than the
    # blind one — the Eq. (1) f-term earning its keep
    assert a1 < b1
    # and it actively improves on the initial layout
    assert a1 < a0
