"""Kernel microbenchmarks.

Unlike the figure benches (one-shot experiment pipelines), these time the
library's hot computational kernels properly (multiple rounds) so
performance regressions show up in ``--benchmark-compare`` runs:

* vectorized Floyd–Warshall;
* the Dijkstra + pointer-doubling transmission-cost precomputation;
* the from-scratch Hungarian matching (vs scipy's C implementation);
* ARIMA CSS fitting and NARNET training;
* the PRIORITY knapsack DP.
"""

import numpy as np
import pytest
from scipy.optimize import linear_sum_assignment

from repro.costs.transmission import TransmissionCostTable
from repro.forecast.arima import ARIMA
from repro.forecast.narnet import NARNET
from repro.migration.matching import hungarian
from repro.migration.priority import CandidateVM, PriorityFactor, priority_select
from repro.topology import build_fattree, floyd_warshall
from repro.traces import weekly_traffic_trace


@pytest.fixture(scope="module")
def dense_graph():
    rng = np.random.default_rng(0)
    n = 150
    w = np.full((n, n), np.inf)
    np.fill_diagonal(w, 0.0)
    for i in range(n):
        for j in range(i + 1, n):
            if rng.random() < 0.1:
                w[i, j] = w[j, i] = rng.uniform(0.5, 5.0)
    return w


def test_kernel_floyd_warshall(benchmark, dense_graph):
    d = benchmark(floyd_warshall, dense_graph)
    assert np.isfinite(d).any()


def test_kernel_transmission_table(benchmark):
    topo = build_fattree(16)  # 640 nodes

    def build():
        return TransmissionCostTable(topo)

    tab = benchmark(build)
    r = topo.num_racks
    assert np.isfinite(tab.path_weight[:, :r]).all()


def test_kernel_hungarian(benchmark):
    rng = np.random.default_rng(1)
    c = rng.random((60, 90)) * 10

    a, tot = benchmark(hungarian, c)
    rr, cc = linear_sum_assignment(c)
    assert tot == pytest.approx(c[rr, cc].sum())


def test_kernel_scipy_assignment_reference(benchmark):
    rng = np.random.default_rng(1)
    c = rng.random((60, 90)) * 10
    rr, cc = benchmark(linear_sum_assignment, c)
    assert len(rr) == 60


def test_kernel_arima_fit(benchmark):
    y = weekly_traffic_trace(seed=0)[:500]

    def fit():
        return ARIMA(1, 1, 1).fit(y)

    m = benchmark(fit)
    assert np.isfinite(m.sigma2_)


def test_kernel_narnet_fit(benchmark):
    y = weekly_traffic_trace(seed=0)[:400]

    def fit():
        return NARNET(ni=8, nh=16, restarts=1, seed=0, maxiter=100).fit(y)

    m = benchmark(fit)
    assert np.isfinite(m.train_loss_)


def test_kernel_priority_knapsack(benchmark):
    rng = np.random.default_rng(2)
    cands = [
        CandidateVM(
            vm_id=i,
            capacity=int(rng.integers(1, 20)),
            value=float(rng.uniform(0.5, 10)),
            alert=0.95,
        )
        for i in range(120)
    ]

    out = benchmark(priority_select, cands, PriorityFactor.BETA, budget=400)
    assert sum(c.capacity for c in out) <= 400
