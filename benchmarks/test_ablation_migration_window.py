"""Ablation: instantaneous vs timed (in-flight) migrations.

The paper folds the six-stage window into the constant ``C_r`` and its
simulation moves VMs instantly.  With the in-flight model (destination
reserved at acceptance, landing after the Fig. 2 timeline) the balancing
curve of Fig. 9 converges more slowly and double-holds capacity — the
price of physical realism this reproduction can quantify and the paper
could not.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.analysis import Series, format_series
from repro.cluster import build_cluster
from repro.sim import MigrationTiming, SheriffSimulation, inject_fraction_alerts
from repro.topology import build_fattree

SEED = 2015
ROUNDS = 24


def run_mode(timing):
    cluster = build_cluster(
        build_fattree(8),
        hosts_per_rack=4,
        skew=1.1,
        fill_fraction=0.5,
        seed=SEED,
        delay_sensitive_fraction=0.0,
    )
    sim = SheriffSimulation(cluster, balance_weight=25.0, migration_timing=timing)
    for r in range(ROUNDS):
        alerts, vma = inject_fraction_alerts(cluster, 0.05, time=r, seed=SEED + r)
        sim.run_round(alerts, vma)
    cluster.placement.check_invariants()
    return sim.workload_std_series()


def run_experiment():
    instant = run_mode(None)
    # one-round windows: small VMs land next round
    fast = run_mode(MigrationTiming(round_seconds=60.0))
    # slow network: multi-round windows for most VMs
    slow = run_mode(
        MigrationTiming(round_seconds=10.0, bandwidth_mbps=60.0)
    )
    return instant, fast, slow


def test_ablation_migration_window(benchmark, emit):
    instant, fast, slow = run_once(benchmark, run_experiment)
    x = list(range(ROUNDS + 1))
    emit(
        format_series(
            "Ablation — Fig. 9 balancing under migration-window models",
            [
                Series("instant", x, instant.tolist()),
                Series("fast_window", x, fast.tolist()),
                Series("slow_window", x, slow.tolist()),
            ],
            x_label="round",
        )
    )
    # every mode still balances...
    assert instant[-1] < 0.6 * instant[0]
    assert fast[-1] < 0.7 * fast[0]
    assert slow[-1] < 0.9 * slow[0]
    # ...but longer windows converge more slowly: compare mid-run std-dev
    mid = ROUNDS // 2
    assert instant[mid] <= fast[mid] + 1.5
    assert fast[mid] <= slow[mid] + 1.5
    # and the slow-window end state is no better than the instant one
    assert instant[-1] <= slow[-1] + 1.5
