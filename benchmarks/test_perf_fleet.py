"""Speedup benchmarks for the vectorized fleet kernels.

Pinned-seed subset behind ``make bench``: times the paper's Alg. 1 round
(forecast → pre-alert → plan → migrate → observe) at facility scale
(8-pod Fat-Tree, 40 hosts per rack, 1 280 hosts, a monitored hot region)
in two configurations —

* **baseline**: the scalar oracles — per-monitor ``alert_value`` loop,
  legacy serial round loop (``workers=0``), cost kernels uncached;
* **optimized**: the fleet-kernel path — stacked per-order ARIMA and
  NaiveLast one-step kernels with vectorized Eq. (14) arbitration,
  ``workers=-1`` auto mode (SoA snapshot shared by every planner, inline
  below the pool break-even), incremental cost cache with in-place repair
  and speculative priming.

Results land in ``BENCH_4.json`` at the repo root; ``make bench-check``
(see ``tools/check_bench.py``) gates CI on the committed numbers.  Byte
identity between the configurations is asserted *here*, on every run —
the speedups are only comparable because the outputs are interchangeable.

Warm-up note: each configuration runs once untimed before the timed pass.
A cold first run pays import/JIT-less numpy warm-up that the other
configuration then skips — the asymmetry once inflated a ratio by 40%.
"""

import dataclasses
import json
from pathlib import Path
from time import perf_counter

import numpy as np

from benchmarks.conftest import run_once
from repro.analysis import format_table
from repro.alerts.monitor import VMMonitor
from repro.alerts.threshold import AlertConfig
from repro.cluster import build_cluster
from repro.config import SheriffConfig
from repro.forecast.arima import ARIMA
from repro.forecast.batch import batch_forecast
from repro.sim import SheriffSimulation
from repro.sim.scenario import forecast_alert_round
from repro.topology import build_fattree

SEED = 2015
RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_4.json"
ENGINE_ROUNDS = 5
HISTORY_ROWS = 28  # initial monitor fit window
HOT_RACKS = 16  # the monitored (pre-alerting) region: half the fabric
MONITOR_STRIDE = 2  # every 2nd movable VM in the region carries a monitor
ALERT_THRESHOLD = 0.75
FLEET_MODELS = 1280  # one forecaster per paper-scale host
FORECAST_HORIZON = 3
FORECAST_REPEATS = 5


def _paper_cluster(delay_sensitive=0.1):
    return build_cluster(
        build_fattree(8),
        hosts_per_rack=40,  # the paper's rack density (1 280 hosts)
        fill_fraction=0.5,
        seed=SEED,
        delay_sensitive_fraction=delay_sensitive,
    )


def _summary_key(summary):
    d = dataclasses.asdict(summary)
    d.pop("timings", None)
    d.pop("reports", None)
    d.pop("pool", None)
    return d


def _build_variant(*, workers, cache, tracer=None):
    """Cluster + engine + monitored hot-region fleet, identical per variant."""
    cluster = _paper_cluster()
    pl = cluster.placement
    rng = np.random.default_rng(SEED)
    vms = [
        v
        for v in range(cluster.num_vms)
        if int(pl.host_rack[pl.vm_host[v]]) < HOT_RACKS
        and not pl.vm_delay_sensitive[v]
    ][::MONITOR_STRIDE]
    config = AlertConfig(threshold=ALERT_THRESHOLD, horizon=1)
    monitors, future = {}, {}
    for v in vms:
        level = rng.uniform(0.25, 0.92)
        series = np.clip(
            level + 0.04 * rng.standard_normal((HISTORY_ROWS + ENGINE_ROUNDS, 4)),
            0.0,
            1.0,
        )
        monitors[v] = VMMonitor(series[:HISTORY_ROWS], config)
        future[v] = series[HISTORY_ROWS:]
    cfg = SheriffConfig(workers=workers, cache_cost_kernels=cache)
    if tracer is not None:
        cfg = cfg.replace(tracer=tracer)
    sim = SheriffSimulation(cluster, cfg)
    return cluster, sim, monitors, future


def run_engine_rounds(*, workers, cache, batched, tracer=None):
    """Forecast-driven engine rounds at facility scale: timing + outcomes.

    The timed region is the full per-round pipeline — monitor one-step
    predictions and the ALERT gate (:func:`forecast_alert_round`), the
    management round (plan + migrate), and the monitors ingesting the
    round's realized profiles.
    """
    cluster, sim, monitors, future = _build_variant(
        workers=workers, cache=cache, tracer=tracer
    )
    summaries = []
    t0 = perf_counter()
    for r in range(ENGINE_ROUNDS):
        alerts, vm_alerts = forecast_alert_round(
            cluster, monitors, time=r, batched=batched
        )
        summaries.append(sim.run_round(alerts, vm_alerts))
        for v, mon in monitors.items():
            mon.observe(future[v][r])
    elapsed = perf_counter() - t0
    plan_sections = sorted(
        name for name in sim.profiler.totals if name.startswith("plan")
    )
    pool_created = sim._pool is not None
    cache_stats = dict(sim.cost_model.cache_stats)
    sim.close()
    return {
        "workers": workers,
        "cache": cache,
        "batched_forecast": batched,
        "rounds": ENGINE_ROUNDS,
        "monitored_vms": len(monitors),
        "seconds": elapsed,
        "rounds_per_sec": ENGINE_ROUNDS / elapsed,
        "summaries": [_summary_key(s) for s in summaries],
        "final_placement": cluster.placement.vm_host.tolist(),
        "cache_stats": cache_stats,
        "plan_sections": plan_sections,
        "pool_created": pool_created,
    }


def run_batched_forecast():
    """Fleet-wide h-step forecasting: stacked kernel vs per-model calls."""
    rng = np.random.default_rng(SEED)
    models = []
    for _ in range(FLEET_MODELS):
        series = 0.5 + 0.1 * np.cumsum(rng.standard_normal(60))
        models.append(ARIMA(1, 1, 0, maxiter=40).fit(series))

    t0 = perf_counter()
    for _ in range(FORECAST_REPEATS):
        scalar = [m.forecast(FORECAST_HORIZON) for m in models]
    scalar_s = perf_counter() - t0
    t0 = perf_counter()
    for _ in range(FORECAST_REPEATS):
        batched = batch_forecast(models, FORECAST_HORIZON)
    batched_s = perf_counter() - t0
    for a, b in zip(scalar, batched):
        np.testing.assert_array_equal(a, b)
    ticks = FLEET_MODELS * FORECAST_REPEATS
    return {
        "models": FLEET_MODELS,
        "horizon": FORECAST_HORIZON,
        "repeats": FORECAST_REPEATS,
        "baseline": {"seconds": scalar_s, "forecasts_per_sec": ticks / scalar_s},
        "optimized": {"seconds": batched_s, "forecasts_per_sec": ticks / batched_s},
        "speedup": scalar_s / batched_s,
    }


def run_suite():
    # untimed warm-up of both code paths (see the module docstring)
    run_engine_rounds(workers=0, cache=False, batched=False)
    run_engine_rounds(workers=-1, cache=True, batched=True)
    engine_base = run_engine_rounds(workers=0, cache=False, batched=False)
    engine_opt = run_engine_rounds(workers=-1, cache=True, batched=True)
    # the fleet-kernel contract: byte-identical outcomes
    assert engine_opt["summaries"] == engine_base["summaries"]
    assert engine_opt["final_placement"] == engine_base["final_placement"]
    for row in (engine_base, engine_opt):
        row.pop("summaries")
        row.pop("final_placement")
    forecast = run_batched_forecast()
    cache_stats = engine_opt["cache_stats"]
    queries = cache_stats["hits"] + cache_stats["misses"]
    return {
        "seed": SEED,
        "scale": {
            "fattree_pods": 8,
            "hosts_per_rack": 40,
            "hosts": 1280,
            "monitored_vms": engine_opt["monitored_vms"],
        },
        "engine_round": {
            "baseline": engine_base,
            "optimized": engine_opt,
            "speedup": engine_opt["rounds_per_sec"] / engine_base["rounds_per_sec"],
        },
        "batched_forecast": forecast,
        "cost_cache": {
            **cache_stats,
            "hit_rate": cache_stats["hits"] / queries if queries else 0.0,
        },
    }


def test_fleet_kernel_speedup(benchmark, emit):
    results = run_once(benchmark, run_suite)
    RESULTS_PATH.write_text(json.dumps(results, indent=2, sort_keys=True) + "\n")
    rows = [
        {
            "stage": "engine_round",
            "baseline_per_sec": results["engine_round"]["baseline"]["rounds_per_sec"],
            "optimized_per_sec": results["engine_round"]["optimized"][
                "rounds_per_sec"
            ],
            "speedup": results["engine_round"]["speedup"],
        },
        {
            "stage": "batched_forecast",
            "baseline_per_sec": results["batched_forecast"]["baseline"][
                "forecasts_per_sec"
            ],
            "optimized_per_sec": results["batched_forecast"]["optimized"][
                "forecasts_per_sec"
            ],
            "speedup": results["batched_forecast"]["speedup"],
        },
    ]
    emit(format_table("Fleet-kernel speedups (BENCH_4.json)", rows))
    # acceptance: the fleet-kernel round (stacked forecasting + SoA
    # planning + incremental cache) beats the scalar oracle at paper scale
    assert results["engine_round"]["speedup"] >= 1.3
    # the auto mode planned inline: the hot region's alerts land on well
    # under 64 distinct racks per round
    assert results["engine_round"]["optimized"]["plan_sections"]
    # the incremental cache finally hits (BENCH_2 recorded 0 hits here)
    assert results["cost_cache"]["hits"] > 0
    assert results["cost_cache"]["misses"] == 0  # priming covered every query
    assert results["batched_forecast"]["speedup"] >= 2.0
