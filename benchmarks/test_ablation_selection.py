"""Ablation: dynamic model selection vs fixed ARIMA vs fixed NARNET.

DESIGN.md calls out the selector as a core design choice.  We evaluate the
three policies on all three trace regimes (linear-seasonal, chaotic,
mixed): each fixed model should win its home regime, and the selector
should be the only policy that is never far from the per-regime winner.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.analysis import format_table
from repro.forecast import ARIMA, NARNET, DynamicModelSelector, mse
from repro.forecast.selection import rolling_one_step
from repro.traces import mixed_trace, nonlinear_trace, weekly_traffic_trace

SEED = 2015


def make_pool():
    return {
        "arima": lambda: ARIMA(1, 1, 1),
        "narnet": lambda: NARNET(ni=10, nh=16, restarts=1, seed=4, maxiter=180),
    }


def run_experiment():
    traces = {
        "linear": weekly_traffic_trace(seed=SEED)[:700],
        "chaotic": nonlinear_trace(700, seed=SEED),
        "mixed": mixed_trace(seed=SEED)[:700],
    }
    out = {}
    for name, y in traces.items():
        train = int(0.6 * y.shape[0])
        actual = y[train:]
        arima = rolling_one_step(lambda: ARIMA(1, 1, 1), y, train, refit_every=120)
        narnet = rolling_one_step(
            lambda: NARNET(ni=10, nh=16, restarts=1, seed=4, maxiter=180),
            y,
            train,
            refit_every=120,
        )
        sel = DynamicModelSelector(make_pool(), period=20, refit_every=120)
        combined = sel.run(y, train).predictions
        out[name] = {
            "arima_mse": mse(actual, arima),
            "narnet_mse": mse(actual, narnet),
            "selector_mse": mse(actual, combined),
        }
    return out


def test_ablation_dynamic_selection(benchmark, emit):
    out = run_once(benchmark, run_experiment)
    rows = [{"regime": i, **v} for i, v in enumerate(out.values())]
    emit(
        format_table(
            "Ablation — model policy MSE by trace regime "
            "(rows 0=linear, 1=chaotic, 2=mixed)",
            rows,
        )
    )
    # each fixed model wins its home turf...
    assert out["chaotic"]["narnet_mse"] < out["chaotic"]["arima_mse"]
    # ...and the selector is never catastrophically wrong anywhere
    for regime, v in out.items():
        best = min(v["arima_mse"], v["narnet_mse"])
        worst = max(v["arima_mse"], v["narnet_mse"])
        assert v["selector_mse"] <= max(1.3 * best, worst), regime
    # regret of the selector (max over regimes of mse/best) must be far
    # below the regret of committing to either fixed model
    def regret(key):
        return max(v[key] / min(v["arima_mse"], v["narnet_mse"]) for v in out.values())

    assert regret("selector_mse") <= min(regret("arima_mse"), regret("narnet_mse")) + 0.3
