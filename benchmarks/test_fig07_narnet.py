"""Fig. 7: NARNET (20 hidden units) on the nonlinear trace.

Paper protocol: 70 % train / 30 % test on data where "classical ARIMA
mainly works for linear data"; NARNET's prediction error is "very small
and we can hardly recognize the difference".  We verify both the absolute
quality and the NARNET-beats-ARIMA ordering on this regime.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.analysis import format_table
from repro.forecast import ARIMA, NARNET, mse, rmse
from repro.forecast.selection import rolling_one_step
from repro.traces import nonlinear_trace

SEED = 2015


def run_experiment():
    y = nonlinear_trace(1000, seed=SEED)
    train_len = int(0.7 * y.shape[0])  # paper: 70/30 split
    nar = rolling_one_step(
        lambda: NARNET(ni=12, nh=20, restarts=2, seed=7, maxiter=250),
        y,
        train_len,
        refit_every=150,
    )
    ar = rolling_one_step(lambda: ARIMA(2, 0, 1), y, train_len, refit_every=150)
    return y, train_len, nar, ar


def test_fig07_narnet_nonlinear(benchmark, emit):
    y, train_len, nar, ar = run_once(benchmark, run_experiment)
    actual = y[train_len:]
    rows = [
        {
            "narnet_mse": mse(actual, nar),
            "narnet_rmse": rmse(actual, nar),
            "arima_mse": mse(actual, ar),
            "nar_vs_arima": mse(actual, ar) / mse(actual, nar),
            "signal_var": float(actual.var()),
        }
    ]
    emit(
        format_table(
            "Fig. 7 — NARNET(12, 20) vs ARIMA on the chaotic trace "
            f"(train {train_len} / test {len(actual)})",
            rows,
        )
    )
    # "the prediction error is also very small"
    assert mse(actual, nar) < 0.1 * actual.var()
    # NARNET outperforms ARIMA on nonlinear data (the figure's message)
    assert mse(actual, nar) < mse(actual, ar)
