"""Extension bench: three planners over the same alerting candidates.

Compares, on one Fat-Tree sweep, the three management strategies the
library implements:

* **regional** — per-shim Alg. 3 within one-hop neighborhoods (Sheriff);
* **matching** — the global minimal-weighted-matching optimal manager;
* **k-median** — the paper's Sec. V-A centralized reduction: open ``k``
  destination ToRs with Local Search, pack each source's VMs there.

The k-median planner *consolidates* (fewer destination racks — simpler
operations) at a moderate cost premium over free matching; its decision
space is ToR-level, far below VM×host.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.analysis import format_table
from repro.cluster import build_cluster
from repro.costs.model import CostModel
from repro.sim import (
    centralized_migration_round,
    inject_fraction_alerts,
    kmedian_migration_round,
    regional_migration_round,
)
from repro.topology import build_fattree

PODS = [8, 16, 24]
SEED = 2015


def run_experiment():
    rows = []
    for k in PODS:
        cluster = build_cluster(
            build_fattree(k),
            hosts_per_rack=2,
            fill_fraction=0.5,
            skew=0.5,
            seed=SEED,
            delay_sensitive_fraction=0.0,
        )
        cm = CostModel(cluster)
        _, vma = inject_fraction_alerts(cluster, 0.05, seed=SEED)
        cands = sorted(vma)
        reg = regional_migration_round(cluster, cm, cands)
        mat = centralized_migration_round(cluster, cm, cands)
        km = kmedian_migration_round(cluster, cm, cands)
        pl = cluster.placement

        def n_dst_racks(plan):
            return len({int(pl.host_rack[h]) for _, h, _ in plan.moves})

        rows.append(
            {
                "pods": k,
                "regional_per_vm": reg.total_cost / max(len(reg.moves), 1),
                "matching_per_vm": mat.total_cost / max(len(mat.moves), 1),
                "kmedian_per_vm": km.total_cost / max(len(km.moves), 1),
                "regional_racks": n_dst_racks(reg),
                "matching_racks": n_dst_racks(mat),
                "kmedian_racks": n_dst_racks(km),
                "kmedian_space": km.search_space,
                "matching_space": mat.search_space,
            }
        )
    return rows


def test_three_planners(benchmark, emit):
    rows = run_once(benchmark, run_experiment)
    emit(
        format_table(
            "Extension — regional vs matching vs k-median planners (Fat-Tree)",
            rows,
        )
    )
    for r in rows:
        # every planner pays at least C_r per move; matching is cheapest/VM
        assert r["matching_per_vm"] >= 100.0
        assert r["kmedian_per_vm"] >= r["matching_per_vm"] - 1e-9
        assert r["kmedian_per_vm"] <= 3.0 * r["matching_per_vm"]
        # consolidation: k-median uses far fewer destination racks
        assert r["kmedian_racks"] <= r["matching_racks"]
        # and its decision space (ToR x ToR) is far below VM x host
        assert r["kmedian_space"] < r["matching_space"]
