"""Ablation: initial placement policy × manager scope.

A consolidating packer (first-fit / best-fit) fills entire pods solid and
leaves others empty.  That start is *unfixable for regional Sheriff*: a
one-hop neighborhood inside a full pod has no free capacity, so almost no
migration is even feasible.  A centralized manager, matching against
every host in the DCN, drains the full pods immediately.  Spreading
packers (round-robin / worst-fit) start balanced enough that regional
scope suffices.

This quantifies a boundary of the paper's design: regional pre-alert
management *maintains* balance but cannot *create* it across pods —
placement policy and management scope are complements, not substitutes.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.analysis import format_table
from repro.cluster import build_cluster_packed
from repro.costs.model import CostModel
from repro.sim import (
    SheriffSimulation,
    centralized_migration_round,
    inject_fraction_alerts,
)
from repro.topology import build_fattree

SEED = 2015
ROUNDS = 16
POLICIES = ["first_fit", "best_fit", "round_robin", "worst_fit"]


def make_cluster(policy: str):
    return build_cluster_packed(
        build_fattree(8),
        policy=policy,
        hosts_per_rack=4,
        fill_fraction=0.5,
        seed=SEED,
        delay_sensitive_fraction=0.0,
    )


def run_regional(policy: str):
    cluster = make_cluster(policy)
    sim = SheriffSimulation(cluster)
    migrations = 0
    for r in range(ROUNDS):
        alerts, vma = inject_fraction_alerts(cluster, 0.05, time=r, seed=SEED + r)
        s = sim.run_round(alerts, vma)
        migrations += s.migrations
    series = sim.workload_std_series()
    return float(series[0]), float(series[-1]), migrations


def run_centralized(policy: str):
    cluster = make_cluster(policy)
    cm = CostModel(cluster)
    migrations = 0
    for r in range(ROUNDS):
        _, vma = inject_fraction_alerts(cluster, 0.05, time=r, seed=SEED + r)
        plan = centralized_migration_round(
            cluster, cm, sorted(vma), apply=True, balance_weight=50.0
        )
        migrations += plan.migrations
    return float(cluster.workload_std()), migrations


def run_experiment():
    rows = []
    for policy in POLICIES:
        std0, reg_end, reg_moves = run_regional(policy)
        cen_end, cen_moves = run_centralized(policy)
        rows.append(
            {
                "policy": policy,
                "std_start": std0,
                "regional_end": reg_end,
                "regional_moves": reg_moves,
                "central_end": cen_end,
                "central_moves": cen_moves,
            }
        )
    return rows


def test_ablation_initial_placement(benchmark, emit):
    rows = run_once(benchmark, run_experiment)
    emit(
        format_table(
            f"Ablation — initial placement × manager scope "
            f"({ROUNDS} rounds, Fat-Tree k=8)",
            rows,
        )
    )
    by = {r["policy"]: r for r in rows}
    # consolidating packers start far more skewed than spreading ones
    assert by["first_fit"]["std_start"] > 2.0 * by["worst_fit"]["std_start"]
    # regional scope cannot fix pod-level consolidation: barely any
    # feasible moves, imbalance essentially unchanged
    assert by["first_fit"]["regional_moves"] < 50
    assert by["first_fit"]["regional_end"] > 0.8 * by["first_fit"]["std_start"]
    # the centralized manager, by contrast, cuts it down substantially
    assert by["first_fit"]["central_end"] < 0.7 * by["first_fit"]["std_start"]
    # spread starts: regional management suffices and keeps balance low
    assert by["round_robin"]["regional_end"] < by["round_robin"]["std_start"]
    assert by["worst_fit"]["regional_end"] < 10.0
