#!/usr/bin/env python
"""Switch failure, flow recovery, and migration replanning.

The paper assumes crashes are "resolved by backup system"; this example
shows what that backup path looks like in the library:

1. build a Fat-Tree, register inter-rack flows;
2. kill an aggregation switch — flows crossing it reroute automatically;
3. rebuild the migration cost model on the surviving fabric and verify
   new migration plans route around the dead switch;
4. push the fabric to a partition (BCube(2) with both switches dead) and
   see the injector refuse to plan over it.

Run:  python examples/failure_recovery.py
"""

import numpy as np

from repro.cluster import build_cluster
from repro.costs import CostModel
from repro.errors import TopologyError
from repro.migration.reroute import FlowTable
from repro.sim import FailureInjector, inject_fraction_alerts, regional_migration_round
from repro.topology import build_bcube, build_fattree
from repro.topology.base import NodeKind


def main() -> None:
    cluster = build_cluster(
        build_fattree(4),
        hosts_per_rack=2,
        seed=11,
        dependency_degree=1.5,
        delay_sensitive_fraction=0.0,
    )
    topo = cluster.topology
    print(f"fabric: {topo}")

    # register one flow per inter-rack dependency
    flows = FlowTable(topo)
    pl = cluster.placement
    racks = pl.host_rack[pl.vm_host]
    n_flows = 0
    for vm in range(cluster.num_vms):
        for other in sorted(cluster.dependencies.neighbors(vm)):
            if other > vm and racks[vm] != racks[other]:
                flows.add_flow(vm, int(racks[vm]), int(racks[other]), 0.1)
                n_flows += 1
    print(f"flows registered: {n_flows}")

    # ------------------------------------------------------------------ #
    injector = FailureInjector(cluster, flow_table=flows)
    # kill the busiest aggregation switch — the interesting case
    aggs = topo.nodes_of_kind(NodeKind.AGG)
    agg = int(aggs[np.argmax(flows.node_load[aggs])])
    crossing = len(flows.flows_through(agg))
    report = injector.fail(agg)
    print(f"\nkilled aggregation switch {agg} ({crossing} flows crossed it):")
    print(f"  flows rerouted    : {report.flows_rerouted}")
    print(f"  flows dropped     : {len(report.flows_dropped)}")
    print(f"  racks disconnected: {report.racks_disconnected or 'none'}")
    assert abs(flows.load_of(agg)) < 1e-9

    # migration planning on the surviving fabric
    cm = injector.rebuild_cost_model()
    _, magnitudes = inject_fraction_alerts(cluster, 0.1, seed=2)
    plan = regional_migration_round(cluster, cm, sorted(magnitudes))
    crossing_dead = sum(
        agg in cm.table.path(pl.rack_of(vm), int(pl.host_rack[h]))
        for vm, h, _ in plan.moves
    )
    print(
        f"\nreplanned migration round: {len(plan.moves)} moves, "
        f"{crossing_dead} of them across the dead switch (must be 0)"
    )

    # ------------------------------------------------------------------ #
    print("\npartition handling on BCube(2):")
    small = build_cluster(build_bcube(2), hosts_per_rack=2, seed=3)
    inj2 = FailureInjector(small)
    inj2.fail(2)
    rep = inj2.fail(3)
    print(f"  both switches dead -> disconnected racks: {rep.racks_disconnected}")
    try:
        inj2.rebuild_cost_model()
    except TopologyError as exc:
        print(f"  replanning refused: {exc}")


if __name__ == "__main__":
    main()
