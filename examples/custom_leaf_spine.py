#!/usr/bin/env python
"""Sheriff on a user-defined fabric (leaf-spine).

The paper says Sheriff "can be easily implemented in other DCN
topologies"; this example proves it end to end on a topology the library
does *not* ship: a 2-tier leaf-spine Clos, built from an explicit edge
list.  The same public API then runs unchanged:

1. build the fabric with :func:`from_edge_list` and validate it;
2. inspect its ECMP path diversity;
3. populate it, run Sheriff balancing rounds, watch std-dev fall.

Run:  python examples/custom_leaf_spine.py
"""

import numpy as np

from repro.cluster import build_cluster
from repro.sim import SheriffSimulation, inject_fraction_alerts
from repro.topology import (
    equal_cost_paths,
    from_edge_list,
    path_diversity,
    validate_topology,
)


def build_leaf_spine(leaves: int = 8, spines: int = 4):
    """Every leaf (ToR) connects to every spine — a 2-tier Clos."""
    kinds = ["tor"] * leaves + ["agg"] * spines
    edges = []
    for leaf in range(leaves):
        for s in range(spines):
            spine = leaves + s
            edges.append((leaf, spine, 10.0, 1.0))  # 10G leaf-spine links
    return from_edge_list(kinds, edges, name=f"leafspine-{leaves}x{spines}")


def main() -> None:
    topo = build_leaf_spine()
    validate_topology(topo)
    print(f"fabric : {topo}")

    # ECMP structure: every leaf pair has `spines` equal-cost 2-hop paths
    paths = equal_cost_paths(topo, 0, 1)
    print(f"leaf 0 -> leaf 1: {len(paths)} equal-cost paths, e.g. {paths[0]}")
    div = path_diversity(topo)
    off_diag = div[~np.eye(div.shape[0], dtype=bool)]
    print(f"path diversity: every pair has {int(off_diag.min())} paths\n")

    # the standard Sheriff pipeline runs unchanged on the custom fabric
    cluster = build_cluster(
        topo,
        hosts_per_rack=4,
        fill_fraction=0.55,
        skew=0.9,
        seed=7,
        delay_sensitive_fraction=0.0,
    )
    sim = SheriffSimulation(cluster)
    print(f"cluster: {cluster.num_hosts} hosts, {cluster.num_vms} VMs")
    print(f"{'round':>5} {'migrations':>11} {'std-dev %':>10}")
    for r in range(8):
        alerts, magnitudes = inject_fraction_alerts(cluster, 0.06, time=r, seed=50 + r)
        s = sim.run_round(alerts, magnitudes)
        print(f"{r:>5} {s.migrations:>11} {s.workload_std_after:>10.2f}")
    series = sim.workload_std_series()
    print(f"\nimbalance: {series[0]:.2f} % -> {series[-1]:.2f} %")
    # in a leaf-spine, every leaf is a one-hop neighbor of every other —
    # regional Sheriff's horizon covers the whole fabric
    from repro.cluster.shim import neighbor_racks

    print(f"one-hop neighbors of leaf 0: {sorted(neighbor_racks(topo, 0))}")


if __name__ == "__main__":
    main()
