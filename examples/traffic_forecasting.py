#!/usr/bin/env python
"""Traffic forecasting with ARIMA, NARNET and the dynamic selector.

Reproduces the Sec. IV / Figs. 6-8 workflow on synthetic ZopleCloud-style
traces:

* Box-Jenkins order selection + ARIMA on the seasonal weekly traffic;
* NARNET on the chaotic trace where linear models struggle;
* the minimum-trailing-MSE selector on a mixed trace, switching between
  the two families as the local regime changes.

Run:  python examples/traffic_forecasting.py
"""

from collections import Counter

import numpy as np

from repro.forecast import (
    ARIMA,
    NARNET,
    DynamicModelSelector,
    mse,
    rmse,
    select_arima_order,
)
from repro.forecast.selection import rolling_one_step
from repro.traces import mixed_trace, nonlinear_trace, weekly_traffic_trace


def section(title: str) -> None:
    print(f"\n=== {title} " + "=" * max(0, 60 - len(title)))


def main() -> None:
    # ------------------------------------------------------------------ #
    section("1. Box-Jenkins identification on weekly switch traffic")
    traffic = weekly_traffic_trace(seed=7)
    train = traffic[: len(traffic) // 2]
    result = select_arima_order(train, max_p=2, max_q=2)
    print(f"selected order: ARIMA{result.order}  (AIC {result.aic:.1f})")
    print("runner-up orders:", [o for o, _ in result.candidates[1:4]])

    preds = rolling_one_step(
        lambda: ARIMA(*result.order), traffic, len(train), refit_every=100
    )
    actual = traffic[len(train):]
    print(
        f"walk-forward test: RMSE {rmse(actual, preds):.2f} MB "
        f"on a signal with std {actual.std():.2f} MB"
    )

    # ------------------------------------------------------------------ #
    section("2. NARNET vs ARIMA on a chaotic (Mackey-Glass) trace")
    chaos = nonlinear_trace(900, seed=11)
    split = int(0.7 * len(chaos))
    nar = rolling_one_step(
        lambda: NARNET(ni=12, nh=20, restarts=2, seed=1), chaos, split, refit_every=150
    )
    ar = rolling_one_step(lambda: ARIMA(2, 0, 1), chaos, split, refit_every=150)
    test = chaos[split:]
    print(f"ARIMA(2,0,1) MSE : {mse(test, ar):.4f}")
    print(f"NARNET(12,20) MSE: {mse(test, nar):.4f}")
    print(f"NARNET is {mse(test, ar) / mse(test, nar):.2f}x more accurate here")

    # ------------------------------------------------------------------ #
    section("3. Dynamic model selection on a mixed trace")
    mixed = mixed_trace(seed=13)
    split = int(0.6 * len(mixed))
    selector = DynamicModelSelector(
        {
            "arima": lambda: ARIMA(1, 1, 1),
            "narnet": lambda: NARNET(ni=10, nh=16, restarts=1, seed=2, maxiter=150),
        },
        period=20,       # T_p of Eq. (14)
        refit_every=120,
        max_history=400,
    )
    trace = selector.run(mixed, split)
    test = mixed[split:]
    print(f"combined MSE: {mse(test, trace.predictions):.3f}")
    for name, p in trace.per_model_predictions.items():
        ok = ~np.isnan(p)
        print(f"  fixed {name:<7}: {mse(test[ok], p[ok]):.3f}")
    print("per-step winner counts:", dict(Counter(trace.chosen)))


if __name__ == "__main__":
    main()
