#!/usr/bin/env python
"""Quickstart: build a Fat-Tree DCN, run Sheriff for a few rounds.

This walks the shortest useful path through the public API:

1. build a fabric and populate it with hosts/VMs;
2. start the distributed Sheriff simulation;
3. inject the paper's "5 % of VMs alert" workload for a few rounds;
4. watch the per-host workload imbalance fall.

Run:  python examples/quickstart.py
"""

from repro.cluster import build_cluster
from repro.sim import SheriffSimulation, inject_fraction_alerts
from repro.topology import build_fattree, validate_topology


def main() -> None:
    # An 8-pod Fat-Tree: 32 racks, 80 switches. Each rack gets 4 hosts of
    # capacity 100; VM sizes are drawn up to 20 units (the paper's
    # simulation settings). `skew` concentrates the initial load so there
    # is an imbalance worth fixing.
    topology = build_fattree(8)
    validate_topology(topology)
    cluster = build_cluster(
        topology,
        hosts_per_rack=4,
        host_capacity=100,
        vm_capacity_max=20,
        fill_fraction=0.55,
        skew=0.9,
        seed=42,
    )
    print(f"fabric : {topology}")
    print(f"cluster: {cluster.num_hosts} hosts, {cluster.num_vms} VMs")
    print(f"initial workload std-dev: {cluster.workload_std():.2f} %\n")

    sim = SheriffSimulation(cluster)
    print(f"{'round':>5} {'alerts':>7} {'migrations':>11} {'cost':>10} {'std-dev %':>10}")
    for r in range(10):
        alerts, magnitudes = inject_fraction_alerts(cluster, 0.05, time=r, seed=100 + r)
        s = sim.run_round(alerts, magnitudes)
        print(
            f"{r:>5} {s.alerts:>7} {s.migrations:>11} "
            f"{s.total_cost:>10.1f} {s.workload_std_after:>10.2f}"
        )

    cluster.placement.check_invariants()
    series = sim.workload_std_series()
    print(f"\nimbalance: {series[0]:.2f} % -> {series[-1]:.2f} % after {len(series) - 1} rounds")


if __name__ == "__main__":
    main()
