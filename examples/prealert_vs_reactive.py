#!/usr/bin/env python
"""Pre-alert management vs contingency management, side by side.

The paper's motivating claim (Sec. I): predicting overload and acting
*before* it lands protects the system, while contingency schemes only
react after damage is visible.  This example builds two identical
clusters whose hosts suffer scheduled demand surges, manages one with the
forecast-driven :class:`PredictiveManager` and the other with the
threshold :class:`ReactiveManager`, and compares overload exposure.

Run:  python examples/prealert_vs_reactive.py
"""

import numpy as np

from repro.cluster import build_cluster
from repro.cluster.resources import ResourceKind
from repro.sim import SheriffSimulation, run_managed_simulation
from repro.sim.reactive import (
    DemandDrivenWorkload,
    PredictiveManager,
    ReactiveManager,
)
from repro.topology import build_fattree
from repro.traces.workload import WorkloadStream

THRESHOLD = 0.5
WARM = 60
HORIZON = 140
SEED = 7


def build_env():
    """Cluster + per-VM demand with correlated host-level surges."""
    cluster = build_cluster(
        build_fattree(4),
        hosts_per_rack=2,
        fill_fraction=0.55,
        seed=SEED,
        dependency_degree=0.0,
        delay_sensitive_fraction=0.0,
    )
    rng = np.random.default_rng(SEED + 1)
    pl = cluster.placement
    surging = rng.choice(pl.num_hosts, size=max(1, pl.num_hosts // 4), replace=False)
    starts = {int(h): int(rng.integers(WARM + 10, HORIZON - 40)) for h in surging}
    streams = {}
    for vm in range(cluster.num_vms):
        host = int(pl.vm_host[vm])
        ramps = (
            [(int(ResourceKind.CPU), starts[host], 10, 0.95)] if host in starts else []
        )
        streams[vm] = WorkloadStream.generate(
            HORIZON,
            base_level=0.45,
            diurnal_amplitude=0.08,
            burst_rate=0.0,
            wander_sigma=0.005,
            ramps=ramps,
            seed=int(rng.integers(0, 2**31)),
        )
    return cluster, DemandDrivenWorkload(cluster, streams), sorted(starts.items())


def run(policy: str):
    cluster, workload, surges = build_env()
    sim = SheriffSimulation(cluster)
    if policy == "pre-alert":
        manager = PredictiveManager(workload, threshold=THRESHOLD, horizon=3)
    else:
        manager = ReactiveManager(workload, threshold=THRESHOLD)
    report = run_managed_simulation(
        sim, workload, manager,
        warm=WARM, horizon=HORIZON, overload_threshold=THRESHOLD,
    )
    return report.overload_rounds, report.migrations, report.first_alert_round, surges


def main() -> None:
    for policy in ("pre-alert", "reactive"):
        overload, migrations, first_alert, surges = run(policy)
        print(f"policy: {policy}")
        print(f"  surges scheduled at rounds: {[t for _, t in surges]}")
        print(f"  first alert fired at round: {first_alert}")
        print(f"  host-overload rounds      : {overload}")
        print(f"  migrations performed      : {migrations}\n")
    print(
        "The pre-alert manager fires before the surge crests and keeps\n"
        "hosts below the overload line; the reactive one pays the full\n"
        "detection delay in overloaded rounds."
    )


if __name__ == "__main__":
    main()
