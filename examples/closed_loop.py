#!/usr/bin/env python
"""The whole scheme in one closed loop.

Demand drives traffic, traffic drives switch load, predicted host
overload and observed switch congestion raise their alerts in the same
round, shims respond with FLOWREROUTE and VMMIGRATION, and migrated VMs
drag their flows to the new rack.  This is Alg. 1 with all three alert
cases live at once — the configuration the paper's Fig. 1 draws.

Run:  python examples/closed_loop.py
"""

from repro.cluster import build_cluster
from repro.sim import FullStackSimulation, flash_crowd
from repro.topology import build_fattree

SEED = 8
WARM, SURGE_AT, END = 40, 55, 95


def main() -> None:
    # fatter ToR uplinks (5 units) so the three congestion scales —
    # host capacity, ToR uplink, aggregation fabric — are all reachable
    cluster = build_cluster(
        build_fattree(4, tor_agg_capacity=5.0),
        hosts_per_rack=2,
        fill_fraction=0.55,
        seed=3,
        dependency_degree=2.0,
        delay_sensitive_fraction=0.0,
    )
    # rack 1 goes viral at round 55: every VM there saturates CPU and TRF
    workload = flash_crowd(cluster, END + 10, rack=1, start=SURGE_AT, peak=0.9, seed=SEED)
    loop = FullStackSimulation(
        cluster,
        workload,
        host_threshold=0.45,
        switch_threshold=0.38,
        tor_queue_threshold=0.35,
        base_rate=0.8,
    )
    print(f"fabric: {cluster.topology};  {cluster.num_vms} VMs, "
          f"{len(cluster.dependencies.rack_edges(cluster.placement))} rack-level dependencies")
    print(f"flash crowd on rack 1 at round {SURGE_AT}\n")
    header = (
        f"{'round':>5} {'srv-alerts':>10} {'sw-alerts':>9} {'tor-alerts':>10} "
        f"{'migr':>5} {'reroutes':>8} {'over':>5} {'peak-util':>9} {'p99-lat':>8}"
    )
    print(header)
    for row in loop.run(WARM, END):
        t = WARM + row.round_index
        if row.server_alerts or row.switch_alerts or row.tor_alerts or t % 10 == 0:
            p99 = f"{row.p99_latency:8.1f}" if row.p99_latency else "      --"
            print(
                f"{t:>5} {row.server_alerts:>10} {row.switch_alerts:>9} "
                f"{row.tor_alerts:>10} {row.migrations:>5} {row.rerouted_flows:>8} "
                f"{row.overloaded_hosts:>5} {row.peak_switch_util:>9.2f} {p99}"
            )
    cluster.placement.check_invariants()
    total_migr = sum(r.migrations for r in loop.history)
    total_rr = sum(r.rerouted_flows for r in loop.history)
    print(f"\ntotals: {total_migr} migrations, {total_rr} flow reroutes; "
          "placement invariants hold")


if __name__ == "__main__":
    main()
