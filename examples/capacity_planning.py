#!/usr/bin/env python
"""Long-horizon pre-alerts: capacity planning with seasonal forecasts.

The paper's pre-alert horizon is "T seconds ahead"; but the same
machinery scales to much longer leads — *will this fleet run out of
headroom next week?* — if the forecaster can hold seasonal structure
over the horizon.  This example:

1. measures how plain ARIMA and seasonal ARIMA degrade with horizon on
   the weekly traffic trace (`horizon_curve`);
2. runs residual diagnostics to show the chosen model actually passes
   the Box–Jenkins checking step;
3. simulates creeping fleet-wide demand growth and asks the seasonal
   model, at every round, how many rounds of headroom remain —
   the long-lead pre-alert.

Run:  python examples/capacity_planning.py
"""

import numpy as np

from repro.cluster import build_cluster
from repro.forecast import ARIMA, SeasonalARIMA, diagnose
from repro.forecast.evaluation import horizon_curve
from repro.sim import creeping_growth
from repro.topology import build_fattree

SEED = 31


def main() -> None:
    from repro.traces import weekly_traffic_trace

    # ------------------------------------------------------------------ #
    print("=== 1. accuracy vs horizon (weekly traffic, 144 samples/day)")
    y = weekly_traffic_trace(seed=SEED)
    horizons = [1, 12, 48, 144]
    arima_curve = horizon_curve(
        lambda: ARIMA(1, 1, 1), y, 700, horizons=horizons, stride=24
    )
    sarima_curve = horizon_curve(
        lambda: SeasonalARIMA(1, 0, 1, period=144),
        y,
        700,
        horizons=horizons,
        stride=24,
    )
    print(f"{'horizon':>8} {'ARIMA rmse':>12} {'SARIMA rmse':>12}")
    for h in horizons:
        print(f"{h:>8} {arima_curve[h].rmse:>12.2f} {sarima_curve[h].rmse:>12.2f}")

    # ------------------------------------------------------------------ #
    print("\n=== 2. Box-Jenkins checking step (residual diagnostics)")
    model = SeasonalARIMA(1, 0, 1, period=144).fit(y[:700])
    d = diagnose(model._inner.residuals(), fitted_params=2)
    print(
        f"residuals: n={d.n}, mean={d.mean:+.3f}, "
        f"Ljung-Box p={d.ljung_box_p:.3f} (white={d.white}), "
        f"adequate={d.adequate}"
    )

    # ------------------------------------------------------------------ #
    print("\n=== 3. headroom forecasting under creeping growth")
    cluster = build_cluster(
        build_fattree(4),
        hosts_per_rack=2,
        fill_fraction=0.6,
        seed=SEED,
        delay_sensitive_fraction=0.0,
    )
    horizon = 150
    workload = creeping_growth(
        cluster, horizon, start_level=0.35, end_level=0.85, seed=SEED
    )
    threshold = 0.45
    # fleet-mean load series; forecast when it will cross the threshold
    history = [float(workload.host_load(t).mean()) for t in range(60)]
    model = ARIMA(1, 1, 0).fit(np.asarray(history))
    lookahead = 40
    forecast = model.forecast(lookahead)
    crossing = next(
        (k + 1 for k, v in enumerate(forecast) if v > threshold), None
    )
    actual_crossing = next(
        (
            t - 60
            for t in range(60, horizon)
            if workload.host_load(t).mean() > threshold
        ),
        None,
    )
    print(f"fleet mean load at t=59: {history[-1]:.3f} (threshold {threshold})")
    print(f"forecast says headroom runs out in : {crossing} rounds")
    print(f"it actually runs out in            : {actual_crossing} rounds")
    if crossing and actual_crossing:
        print(f"lead-time error                    : {abs(crossing - actual_crossing)} rounds")


if __name__ == "__main__":
    main()
