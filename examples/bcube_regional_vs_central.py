#!/usr/bin/env python
"""Regional Sheriff vs a centralized optimal manager on BCube.

Walks the Sec. V / Figs. 13-14 comparison on the server-centric fabric:
the same alerting VMs are planned by (a) per-rack shims restricted to
their one-hop neighborhood and (b) a global manager matching against
every host.  Sheriff's plan costs almost the same while examining a far
smaller candidate space — and the k-median view of the same problem is
solved with Local Search for comparison.

Run:  python examples/bcube_regional_vs_central.py
"""

import numpy as np

from repro.cluster import build_cluster
from repro.costs import CostModel, CostParams
from repro.kmedian import local_search, vmmigration_to_kmedian
from repro.sim import (
    centralized_migration_round,
    inject_fraction_alerts,
    regional_migration_round,
)
from repro.topology import build_bcube


def main() -> None:
    n = 12  # switches per level; BCube(12,1): 12 racks x 12 servers
    cluster = build_cluster(
        build_bcube(n),
        hosts_per_rack=n,
        host_capacity=100,
        vm_capacity_max=20,
        fill_fraction=0.5,
        skew=0.5,
        seed=2015,
        delay_sensitive_fraction=0.0,
    )
    cost_model = CostModel(cluster, CostParams())
    print(f"fabric : {cluster.topology}")
    print(f"cluster: {cluster.num_hosts} hosts, {cluster.num_vms} VMs")

    _, magnitudes = inject_fraction_alerts(cluster, 0.05, seed=3)
    candidates = sorted(magnitudes)
    print(f"alerting VMs: {len(candidates)}\n")

    regional = regional_migration_round(cluster, cost_model, candidates)
    central = centralized_migration_round(cluster, cost_model, candidates)

    print(f"{'':24}{'regional Sheriff':>18}{'centralized opt':>18}")
    print(f"{'VMs placed':<24}{len(regional.moves):>18}{len(central.moves):>18}")
    print(f"{'total cost':<24}{regional.total_cost:>18.1f}{central.total_cost:>18.1f}")
    reg_per = regional.total_cost / max(len(regional.moves), 1)
    cen_per = central.total_cost / max(len(central.moves), 1)
    print(f"{'cost per placed VM':<24}{reg_per:>18.2f}{cen_per:>18.2f}")
    print(f"{'search space (pairs)':<24}{regional.search_space:>18}{central.search_space:>18}")

    # ------------------------------------------------------------------ #
    # The same decision as a k-median problem (Sec. V-A reduction):
    # which m destination ToRs should absorb the alerting racks' load?
    src_racks = sorted({cluster.placement.rack_of(v) for v in candidates})
    inst = vmmigration_to_kmedian(cost_model, src_racks, k=3)
    result = local_search(inst, p=1)
    print(
        f"\nk-median view: {len(src_racks)} alerting ToRs -> open 3 destination "
        f"ToRs {result.solution.tolist()} at connection cost {result.cost:.1f} "
        f"({result.swaps_taken} swaps, converged={result.converged})"
    )


if __name__ == "__main__":
    main()
