"""Legacy setuptools shim.

Modern editable installs (PEP 660) require the ``wheel`` package; this
shim lets ``pip install -e .`` fall back to ``setup.py develop`` on
offline machines where wheel cannot be fetched.  All metadata lives in
pyproject.toml.
"""

from setuptools import setup

setup()
