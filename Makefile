# Convenience targets for the Sheriff reproduction.

.PHONY: install lint test bench bench-all report examples chaos all

install:
	pip install -e . --no-build-isolation

lint:
	python -m compileall -q src/repro
	python tools/check_import_cycles.py src/repro
	python tools/check_exception_hygiene.py src/repro

test: lint
	pytest tests/

bench:
	pytest benchmarks/test_perf_parallel.py --benchmark-only

bench-all:
	pytest benchmarks/ --benchmark-only

report:
	python -m repro report

# Seeded chaos campaign: run it twice, assert the reports are identical
# byte-for-byte (the docs/robustness.md reproducibility contract).
chaos:
	PYTHONPATH=src python -m repro chaos --rounds 8 --size 4 --output /tmp/sheriff_chaos_a.json > /dev/null
	PYTHONPATH=src python -m repro chaos --rounds 8 --size 4 --output /tmp/sheriff_chaos_b.json > /dev/null
	cmp /tmp/sheriff_chaos_a.json /tmp/sheriff_chaos_b.json
	@echo "chaos campaign reproducible: OK"

examples:
	for f in examples/*.py; do echo "== $$f"; python $$f > /dev/null || exit 1; done

all: lint test bench-all
