# Convenience targets for the Sheriff reproduction.

.PHONY: install lint test bench bench-all report examples all

install:
	pip install -e . --no-build-isolation

lint:
	python -m compileall -q src/repro
	python tools/check_import_cycles.py src/repro

test: lint
	pytest tests/

bench:
	pytest benchmarks/test_perf_parallel.py --benchmark-only

bench-all:
	pytest benchmarks/ --benchmark-only

report:
	python -m repro report

examples:
	for f in examples/*.py; do echo "== $$f"; python $$f > /dev/null || exit 1; done

all: lint test bench-all
