# Convenience targets for the Sheriff reproduction.

.PHONY: install test bench report examples all

install:
	pip install -e . --no-build-isolation

test:
	pytest tests/

bench:
	pytest benchmarks/ --benchmark-only

report:
	python -m repro report

examples:
	for f in examples/*.py; do echo "== $$f"; python $$f > /dev/null || exit 1; done

all: test bench
