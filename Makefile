# Convenience targets for the Sheriff reproduction.

# Run straight from a checkout: the package lives under src/ and the
# benchmark helpers import as `benchmarks.*` from the repo root.  An
# installed package shadows neither (src/ simply wins on the path).
export PYTHONPATH := src:.$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: install lint test bench bench-scale bench-trace bench-confidence bench-slo bench-check bench-all report examples chaos adversarial trace-lint serve-smoke scale-smoke ci all

install:
	pip install -e . --no-build-isolation

lint:
	python -m compileall -q src/repro
	python tools/check_import_cycles.py src/repro
	python tools/check_exception_hygiene.py src/repro

test: lint
	pytest tests/

# Fleet-kernel speedups at paper scale (BENCH_4.json) and the planner
# pool's fat-tree scale ladder (BENCH_7.json), both at the repo root.
bench:
	pytest benchmarks/test_perf_fleet.py --benchmark-only
	pytest benchmarks/test_perf_scale_ladder.py --benchmark-only

# Just the scale ladder; writes BENCH_7.json.
bench-scale:
	pytest benchmarks/test_perf_scale_ladder.py --benchmark-only

# Tracer overhead + span export at paper scale; writes BENCH_5.json.
bench-trace:
	pytest benchmarks/test_perf_trace.py --benchmark-only

# Confidence-gate overhead at paper scale; writes BENCH_8.json.
bench-confidence:
	pytest benchmarks/test_perf_confidence.py --benchmark-only

# SLO-accounting overhead at paper scale; writes BENCH_10.json.
bench-slo:
	pytest benchmarks/test_perf_slo.py --benchmark-only

# Cheap regression gate on the committed benchmark numbers.
bench-check:
	python tools/check_bench.py BENCH_4.json BENCH_5.json BENCH_7.json BENCH_8.json BENCH_10.json

bench-all:
	pytest benchmarks/ --benchmark-only

report:
	python -m repro report

# Seeded chaos campaign: run it twice, assert the reports are identical
# byte-for-byte (the docs/robustness.md reproducibility contract).
chaos:
	PYTHONPATH=src python -m repro chaos --rounds 8 --size 4 --output /tmp/sheriff_chaos_a.json > /dev/null
	PYTHONPATH=src python -m repro chaos --rounds 8 --size 4 --output /tmp/sheriff_chaos_b.json > /dev/null
	cmp /tmp/sheriff_chaos_a.json /tmp/sheriff_chaos_b.json
	@echo "chaos campaign reproducible: OK"

# Worst-case fallback bound: exit code asserts guarded <= factor x
# reactive + slack on the damage metrics, run twice + cmp asserts the
# report is seeded-deterministic (docs/robust-forecasting.md).
adversarial:
	PYTHONPATH=src python -m repro adversarial --output /tmp/sheriff_adv_a.json > /dev/null
	PYTHONPATH=src python -m repro adversarial --output /tmp/sheriff_adv_b.json > /dev/null
	cmp /tmp/sheriff_adv_a.json /tmp/sheriff_adv_b.json
	@echo "adversarial bound holds and is reproducible: OK"

examples:
	for f in examples/*.py; do echo "== $$f"; python $$f > /dev/null || exit 1; done

# Invariant-check the golden seeded chaos trace: every REQUEST resolves,
# commits are acked, down racks stay silent (docs/observability.md).
trace-lint:
	PYTHONPATH=src python -m repro chaos --rounds 8 --size 4 --seed 2015 --trace /tmp/sheriff_chaos_golden.jsonl > /dev/null
	PYTHONPATH=src python -m repro trace lint /tmp/sheriff_chaos_golden.jsonl

# Boot `repro serve` against a seeded replay, poll /healthz, scrape
# /metrics, SIGTERM, assert a clean drain (docs/service.md ops story).
serve-smoke:
	PYTHONPATH=src python tools/serve_smoke.py

# Fast deterministic slice of the BENCH_7 ladder: serial vs pooled vs
# pod-sharded on a small fat-tree, byte-identity and clean pool teardown.
scale-smoke:
	PYTHONPATH=src python tools/scale_smoke.py

ci: lint bench-check trace-lint serve-smoke scale-smoke adversarial
	pytest tests/

all: lint test bench-all
