"""Seasonal pattern tests."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.traces.diurnal import diurnal_pattern, weekly_pattern


class TestDiurnal:
    def test_periodicity(self):
        period = 96
        x = diurnal_pattern(3 * period, period)
        np.testing.assert_allclose(x[:period], x[period : 2 * period], atol=1e-12)

    def test_mean_near_base(self):
        x = diurnal_pattern(960, 96, base=0.5, amplitude=0.3, sharpness=1.0)
        assert abs(x.mean() - 0.5) < 0.05

    def test_amplitude_zero_is_flat(self):
        x = diurnal_pattern(100, 50, base=0.4, amplitude=0.0)
        np.testing.assert_allclose(x, 0.4)

    def test_peak_location(self):
        period = 100
        x = diurnal_pattern(period, period, peak_phase=0.58, sharpness=1.0)
        assert abs(int(np.argmax(x)) - 58) <= 3

    def test_sharpness_narrows_peaks(self):
        period = 200
        soft = diurnal_pattern(period, period, sharpness=1.0)
        sharp = diurnal_pattern(period, period, sharpness=3.0)
        # narrower peak = fewer samples above the midline
        mid = 0.5
        assert (sharp > soft.max() * 0.95).sum() <= (soft > soft.max() * 0.95).sum()

    def test_rejects_bad_period(self):
        with pytest.raises(ConfigurationError):
            diurnal_pattern(10, 1)


class TestWeekly:
    def test_weekday_weekend_levels(self):
        period = 24
        x = weekly_pattern(14 * period, period, weekend_factor=0.5)
        # mid-Wednesday (day 2) should be ~1.0; mid-Saturday (day 5) ~0.5
        wed = x[2 * period + period // 2]
        sat = x[5 * period + period // 2]
        assert wed == pytest.approx(1.0, abs=0.05)
        assert sat == pytest.approx(0.5, abs=0.05)

    def test_smooth_transitions(self):
        period = 24
        x = weekly_pattern(14 * period, period, weekend_factor=0.5)
        assert np.abs(np.diff(x)).max() < 0.1  # no step jumps

    def test_rejects_zero_factor(self):
        with pytest.raises(ConfigurationError):
            weekly_pattern(100, 10, weekend_factor=0.0)
