"""Synthetic ZopleCloud trace suite tests (Figs. 3-5 substitutes)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.forecast.acf import acf
from repro.traces.zoplecloud import (
    ZopleCloudTraces,
    cpu_trace,
    disk_io_trace,
    mixed_trace,
    nonlinear_trace,
    weekly_traffic_trace,
)


class TestCpuTrace:
    def test_range_and_length(self):
        x = cpu_trace(hours=24, samples_per_hour=60, seed=0)
        assert x.shape == (1440,)
        assert (x >= 0).all() and (x <= 100).all()

    def test_has_bursts(self):
        x = cpu_trace(seed=1)
        assert x.max() > x.mean() + 3 * x.std() * 0.8  # heavy upper tail

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            cpu_trace(hours=0)


class TestDiskIO:
    def test_nonnegative_and_bursty(self):
        x = disk_io_trace(seed=2)
        assert (x >= 0).all()
        # Fig. 4: bursts reach several times the base level
        assert x.max() > 4 * np.median(x)


class TestWeeklyTraffic:
    def test_daily_seasonality_dominates(self):
        x = weekly_traffic_trace(seed=3)
        r = acf(x, 300)
        # strong autocorrelation at one day (144 samples)
        assert r[144] > 0.5

    def test_weekend_dip(self):
        x = weekly_traffic_trace(seed=4, samples_per_day=144)
        weekday = x[2 * 144 : 3 * 144].mean()  # Wednesday
        weekend = x[5 * 144 : 6 * 144].mean()  # Saturday
        assert weekend < weekday

    def test_positive(self):
        assert (weekly_traffic_trace(seed=5) >= 0).all()


class TestNonlinearAndMixed:
    def test_nonlinear_range(self):
        x = nonlinear_trace(500, seed=6, scale=40.0, offset=50.0)
        assert x.min() >= 50.0 - 1e-9
        assert x.max() <= 90.0 + 1e-9

    def test_mixed_combines_both(self):
        x = mixed_trace(seed=7)
        lin = weekly_traffic_trace(seed=7)
        # mixture is not just the linear part
        assert x.shape[0] == 1008
        assert x.std() > 0

    def test_suite_generation(self):
        suite = ZopleCloudTraces.generate(seed=2015)
        for name in ("cpu", "disk_io", "weekly_traffic", "nonlinear", "mixed"):
            arr = getattr(suite, name)
            assert np.isfinite(arr).all()
            assert arr.std() > 0

    def test_suite_deterministic(self):
        a = ZopleCloudTraces.generate(seed=11)
        b = ZopleCloudTraces.generate(seed=11)
        np.testing.assert_array_equal(a.cpu, b.cpu)
        np.testing.assert_array_equal(a.mixed, b.mixed)
