"""Noise primitive tests."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.traces.noise import ar1_noise, bursty_spikes, white_noise


class TestWhiteNoise:
    def test_moments(self):
        x = white_noise(20000, sigma=2.0, seed=0)
        assert abs(x.mean()) < 0.1
        assert abs(x.std() - 2.0) < 0.1

    def test_deterministic(self):
        np.testing.assert_array_equal(white_noise(10, seed=3), white_noise(10, seed=3))

    def test_zero_length(self):
        assert white_noise(0).shape == (0,)

    def test_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            white_noise(-1)
        with pytest.raises(ConfigurationError):
            white_noise(5, sigma=-1)


class TestAR1:
    def test_autocorrelation_matches_phi(self):
        phi = 0.8
        x = ar1_noise(50000, phi=phi, seed=1)
        r1 = np.corrcoef(x[:-1], x[1:])[0, 1]
        assert abs(r1 - phi) < 0.02

    def test_stationary_variance(self):
        phi, sigma = 0.7, 1.0
        x = ar1_noise(50000, phi=phi, sigma=sigma, seed=2)
        expected = sigma**2 / (1 - phi**2)
        assert abs(x.var() / expected - 1.0) < 0.1

    def test_rejects_unit_root(self):
        with pytest.raises(ConfigurationError):
            ar1_noise(10, phi=1.0)

    def test_zero_sigma_is_zero(self):
        x = ar1_noise(100, phi=0.5, sigma=0.0, seed=0)
        np.testing.assert_allclose(x, 0.0)


class TestBursts:
    def test_nonnegative(self):
        x = bursty_spikes(5000, seed=4)
        assert (x >= 0).all()

    def test_rate_zero_is_silent(self):
        x = bursty_spikes(1000, rate=0.0, seed=5)
        np.testing.assert_allclose(x, 0.0)

    def test_mean_scales_with_rate(self):
        lo = bursty_spikes(50000, rate=0.01, scale=5.0, seed=6).mean()
        hi = bursty_spikes(50000, rate=0.05, scale=5.0, seed=6).mean()
        assert hi > 3 * lo

    def test_decay_stretches_bursts(self):
        # higher decay keeps mass longer -> larger total sum for same starts
        fast = bursty_spikes(20000, decay=0.1, seed=7).sum()
        slow = bursty_spikes(20000, decay=0.9, seed=7).sum()
        assert slow > fast

    def test_rejects_bad_params(self):
        with pytest.raises(ConfigurationError):
            bursty_spikes(10, rate=1.5)
        with pytest.raises(ConfigurationError):
            bursty_spikes(10, decay=1.0)
        with pytest.raises(ConfigurationError):
            bursty_spikes(10, scale=-1.0)
