"""Per-VM workload stream tests."""

import numpy as np
import pytest

from repro.cluster.resources import NUM_RESOURCES
from repro.errors import ConfigurationError
from repro.traces.workload import WorkloadStream, overload_ramp


class TestOverloadRamp:
    def test_shape_and_plateau(self):
        r = overload_ramp(100, start=40, ramp_len=20, peak=0.8)
        assert (r[:40] == 0).all()
        assert r[60:].max() == pytest.approx(0.8)
        assert r[59] == pytest.approx(0.8)

    def test_monotone_rise(self):
        r = overload_ramp(100, start=10, ramp_len=30, peak=1.0)
        assert (np.diff(r[10:40]) > 0).all()

    def test_start_past_end_is_silent(self):
        assert (overload_ramp(50, start=60, ramp_len=5) == 0).all()

    def test_rejects_bad_params(self):
        with pytest.raises(ConfigurationError):
            overload_ramp(10, start=-1, ramp_len=5)
        with pytest.raises(ConfigurationError):
            overload_ramp(10, start=0, ramp_len=0)


class TestWorkloadStream:
    def test_shape_and_bounds(self):
        ws = WorkloadStream.generate(200, seed=0)
        assert ws.profile.shape == (200, NUM_RESOURCES)
        assert (ws.profile >= 0).all() and (ws.profile <= 1).all()

    def test_at_clamps_past_end(self):
        ws = WorkloadStream.generate(50, seed=1)
        np.testing.assert_array_equal(ws.at(49), ws.at(1000))

    def test_history_window(self):
        ws = WorkloadStream.generate(100, seed=2)
        h = ws.history(30, 10)
        assert h.shape == (10, NUM_RESOURCES)
        np.testing.assert_array_equal(h[-1], ws.at(30))
        # early history shrinks instead of wrapping
        assert ws.history(3, 10).shape == (4, NUM_RESOURCES)

    def test_ramp_injection_crosses_threshold(self):
        ws = WorkloadStream.generate(
            200, ramps=[(0, 120, 30, 0.9)], seed=3, base_level=0.3
        )
        assert ws.profile[160, 0] > 0.85
        assert ws.profile[100, 0] < 0.85

    def test_rejects_unknown_resource(self):
        with pytest.raises(ConfigurationError):
            WorkloadStream.generate(50, ramps=[(9, 0, 5, 0.5)])

    def test_rejects_bad_profile(self):
        with pytest.raises(ConfigurationError):
            WorkloadStream(profile=np.ones((10, 2)))
        with pytest.raises(ConfigurationError):
            WorkloadStream(profile=np.full((10, NUM_RESOURCES), 1.5))

    def test_deterministic(self):
        a = WorkloadStream.generate(64, seed=5)
        b = WorkloadStream.generate(64, seed=5)
        np.testing.assert_array_equal(a.profile, b.profile)


class TestGenerateStreams:
    def test_batch_shape_and_bounds(self):
        from repro.traces.workload import generate_streams

        streams = generate_streams(12, 80, seed=1)
        assert len(streams) == 12
        for s in streams:
            assert s.profile.shape == (80, NUM_RESOURCES)
            assert (s.profile >= 0).all() and (s.profile <= 1).all()

    def test_batch_deterministic(self):
        from repro.traces.workload import generate_streams

        a = generate_streams(5, 40, seed=9)
        b = generate_streams(5, 40, seed=9)
        for x, y in zip(a, b):
            np.testing.assert_array_equal(x.profile, y.profile)

    def test_streams_differ_within_batch(self):
        from repro.traces.workload import generate_streams

        a, b = generate_streams(2, 60, seed=3)
        assert not np.allclose(a.profile, b.profile)

    def test_batch_statistics_match_single_recipe(self):
        """Batch and single-stream paths share the same distribution."""
        from repro.traces.workload import generate_streams

        batch = generate_streams(300, 96, seed=4, burst_rate=0.0)
        singles = [
            WorkloadStream.generate(96, seed=400 + i, burst_rate=0.0)
            for i in range(60)
        ]
        mb = np.mean([s.profile.mean() for s in batch])
        ms = np.mean([s.profile.mean() for s in singles])
        assert abs(mb - ms) < 0.05

    def test_empty_batch(self):
        from repro.traces.workload import generate_streams

        assert generate_streams(0, 50) == []

    def test_validation(self):
        from repro.traces.workload import generate_streams

        with pytest.raises(ConfigurationError):
            generate_streams(-1, 50)
        with pytest.raises(ConfigurationError):
            generate_streams(3, 0)
