"""Nonlinear/chaotic generator tests."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.traces.nonlinear import logistic_map, mackey_glass, regime_switching


class TestMackeyGlass:
    def test_bounded_and_nondegenerate(self):
        x = mackey_glass(2000, seed=0)
        assert np.isfinite(x).all()
        assert 0.2 < x.min() and x.max() < 2.0
        assert x.std() > 0.05

    def test_deterministic_given_seed(self):
        np.testing.assert_array_equal(mackey_glass(500, seed=1), mackey_glass(500, seed=1))

    def test_different_seeds_differ(self):
        assert not np.allclose(mackey_glass(500, seed=1), mackey_glass(500, seed=2))

    def test_nonlinear_structure(self):
        # a linear AR(1) fit must leave substantial residual structure
        x = mackey_glass(3000, seed=3)
        x0, x1 = x[:-1], x[1:]
        phi = np.dot(x0 - x0.mean(), x1 - x1.mean()) / np.dot(x0 - x0.mean(), x0 - x0.mean())
        resid = (x1 - x1.mean()) - phi * (x0 - x0.mean())
        # residuals remain autocorrelated -> nonlinearity
        r = np.corrcoef(resid[:-1], resid[1:])[0, 1]
        assert abs(r) > 0.4

    def test_rejects_bad_params(self):
        with pytest.raises(ConfigurationError):
            mackey_glass(10, tau=0)
        with pytest.raises(ConfigurationError):
            mackey_glass(-1)


class TestLogisticMap:
    def test_stays_in_unit_interval(self):
        x = logistic_map(5000, r=3.9)
        assert (x > 0).all() and (x < 1).all()

    def test_chaotic_regime_fills_interval(self):
        x = logistic_map(5000, r=3.99)
        assert x.max() - x.min() > 0.8

    def test_fixed_point_regime(self):
        x = logistic_map(500, r=2.5, discard=400)
        np.testing.assert_allclose(x, 0.6, atol=1e-3)  # fixed point 1 - 1/r

    def test_rejects_bad_x0(self):
        with pytest.raises(ConfigurationError):
            logistic_map(10, x0=0.0)


class TestRegimeSwitching:
    def test_shape_and_finite(self):
        x = regime_switching(3000, seed=0)
        assert x.shape == (3000,)
        assert np.isfinite(x).all()

    def test_visits_multiple_regimes(self):
        # with very different sigmas, windowed variance should vary a lot
        x = regime_switching(
            6000, phis=(0.9, 0.0), sigmas=(0.1, 3.0), stay_prob=0.99, seed=1
        )
        win = x[: 6000 - 6000 % 200].reshape(-1, 200).var(axis=1)
        assert win.max() / max(win.min(), 1e-12) > 10

    def test_rejects_mismatched_regimes(self):
        with pytest.raises(ConfigurationError):
            regime_switching(10, phis=(0.5,), sigmas=(1.0,))

    def test_rejects_explosive_phi(self):
        with pytest.raises(ConfigurationError):
            regime_switching(10, phis=(1.2, 0.5), sigmas=(1.0, 1.0))
