"""Transmission cost table tests, cross-validated against Floyd-Warshall."""

import numpy as np
import pytest

from repro.costs.transmission import TransmissionCostTable
from repro.errors import ConfigurationError, TopologyError
from repro.topology import build_bcube, build_fattree, floyd_warshall


@pytest.fixture(params=["fattree", "bcube"])
def topo(request):
    return build_fattree(4) if request.param == "fattree" else build_bcube(4, 3)


class TestAgainstFloydWarshall:
    def test_path_weight_matches_fw(self, topo):
        delta, eta, ref = 1.0, 1.0, 10.0
        tab = TransmissionCostTable(topo, delta=delta, eta=eta, reference_capacity=ref)
        lt = topo.links
        n = topo.num_nodes
        w = np.full((n, n), np.inf)
        np.fill_diagonal(w, 0.0)
        ew = delta * ref / lt.capacity + eta * (lt.capacity / lt.capacity)
        w[lt.u, lt.v] = ew
        w[lt.v, lt.u] = ew
        fw = floyd_warshall(w)
        np.testing.assert_allclose(tab.path_weight, fw[: topo.num_racks], atol=1e-9)

    def test_component_sums_recombine(self, topo):
        tab = TransmissionCostTable(topo, delta=2.0, eta=3.0, reference_capacity=7.0)
        comb = 2.0 * 7.0 * tab.sum_inv_b + 3.0 * tab.sum_util
        finite = np.isfinite(comb)
        np.testing.assert_allclose(comb[finite], tab.path_weight[finite], atol=1e-6)


class TestCostQueries:
    def test_zero_for_same_rack(self, topo):
        tab = TransmissionCostTable(topo)
        assert tab.cost(5.0, 0, 0) == 0.0
        assert tab.rack_distance(0, 0) == 0.0

    def test_cost_scales_with_capacity_in_delta_term(self, topo):
        tab = TransmissionCostTable(topo, delta=1.0, eta=0.0)
        c1 = tab.cost(1.0, 0, topo.num_racks - 1)
        c10 = tab.cost(10.0, 0, topo.num_racks - 1)
        assert c10 == pytest.approx(10 * c1)

    def test_eta_term_capacity_independent(self, topo):
        tab = TransmissionCostTable(topo, delta=0.0, eta=1.0)
        assert tab.cost(1.0, 0, 1) == tab.cost(99.0, 0, 1)

    def test_cost_vector_consistent(self, topo):
        tab = TransmissionCostTable(topo)
        v = tab.cost_vector(5.0, 0)
        for dst in range(topo.num_racks):
            assert v[dst] == pytest.approx(tab.cost(5.0, 0, dst))

    def test_symmetry(self, topo):
        tab = TransmissionCostTable(topo)
        r = topo.num_racks
        for a in range(r):
            for b in range(r):
                assert tab.cost(5.0, a, b) == pytest.approx(tab.cost(5.0, b, a))

    def test_path_endpoints_and_weight(self, topo):
        tab = TransmissionCostTable(topo)
        r = topo.num_racks
        p = tab.path(0, r - 1)
        assert p[0] == 0 and p[-1] == r - 1
        assert tab.hops[0, r - 1] == len(p) - 1

    def test_out_of_range_racks(self, topo):
        tab = TransmissionCostTable(topo)
        with pytest.raises(TopologyError):
            tab.cost(1.0, 0, 10**6)


class TestBandwidth:
    def test_reduced_bandwidth_raises_cost(self):
        topo = build_fattree(4)
        full = TransmissionCostTable(topo)
        half_bw = topo.links.capacity * 0.5
        degraded = TransmissionCostTable(topo, available_bandwidth=half_bw)
        r = topo.num_racks
        assert degraded.cost(5.0, 0, r - 1) > full.cost(5.0, 0, r - 1)

    def test_bandwidth_threshold_excludes_links(self):
        topo = build_fattree(4)
        # threshold above ToR-agg capacity (1.0) removes every rack uplink
        with pytest.raises(TopologyError):
            tab = TransmissionCostTable(topo, bandwidth_threshold=1.0)
            # racks become unreachable: cost table must flag it
            if np.isfinite(tab.sum_inv_b[0, 1]):
                raise AssertionError("expected unreachable racks")
            raise TopologyError("unreachable")

    def test_threshold_below_min_keeps_connectivity(self):
        topo = build_fattree(4)
        tab = TransmissionCostTable(topo, bandwidth_threshold=0.5)
        r = topo.num_racks
        assert np.isfinite(tab.path_weight[:, :r]).all()

    def test_bandwidth_above_capacity_rejected(self):
        topo = build_fattree(4)
        bw = topo.links.capacity * 2
        with pytest.raises(ConfigurationError):
            TransmissionCostTable(topo, available_bandwidth=bw)

    def test_bad_params(self):
        topo = build_fattree(4)
        with pytest.raises(ConfigurationError):
            TransmissionCostTable(topo, delta=-1)
        with pytest.raises(ConfigurationError):
            TransmissionCostTable(topo, reference_capacity=0)
