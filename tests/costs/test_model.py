"""CostModel facade and dependency cost tests."""

import numpy as np
import pytest

from repro.cluster import build_cluster
from repro.cluster.dependency import DependencyGraph
from repro.costs.dependency import dependency_cost, dependent_racks
from repro.costs.model import CostModel, CostParams
from repro.errors import ConfigurationError
from repro.topology import build_fattree


class TestCostParams:
    def test_paper_defaults(self):
        p = CostParams()
        assert p.migration_constant == 100.0
        assert p.dependency_unit == 1.0
        assert p.delta == 1.0 and p.eta == 1.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            CostParams(migration_constant=-1)
        with pytest.raises(ConfigurationError):
            CostParams(dependency_unit=-1)


class TestDependencyCost:
    def make(self):
        c = build_cluster(build_fattree(4), hosts_per_rack=2, seed=0, dependency_degree=0.0)
        return c

    def test_no_dependents_zero(self):
        c = self.make()
        cm = CostModel(c)
        assert dependency_cost(c.dependencies, c.placement, cm.rack_distances, 0, 5) == 0.0

    def test_moving_toward_dependents_is_negative(self):
        c = self.make()
        pl = c.placement
        # find two VMs in different racks and make them dependent
        vm_a = int(pl.vms_in_rack(0)[0])
        vm_b = int(pl.vms_in_rack(5)[0])
        c.dependencies.add_pair(vm_a, vm_b)
        cm = CostModel(c)
        d = cm.rack_distances
        toward = dependency_cost(c.dependencies, pl, d, vm_a, 5)
        away = dependency_cost(c.dependencies, pl, d, vm_a, 0)  # stay: zero delta
        assert toward < 0
        assert away == 0.0

    def test_multiplicity_counts(self):
        c = self.make()
        pl = c.placement
        vm_a = int(pl.vms_in_rack(0)[0])
        others = pl.vms_in_rack(5)
        c.dependencies.add_pair(vm_a, int(others[0]))
        c.dependencies.add_pair(vm_a, int(others[1]))
        cm = CostModel(c)
        two = dependency_cost(c.dependencies, pl, cm.rack_distances, vm_a, 5)
        racks = dependent_racks(c.dependencies, pl, vm_a)
        assert racks.shape == (2,)
        # two dependents in the same rack -> twice the single-dependent delta
        c2 = self.make()
        vm_a2 = int(c2.placement.vms_in_rack(0)[0])
        c2.dependencies.add_pair(vm_a2, int(c2.placement.vms_in_rack(5)[0]))
        cm2 = CostModel(c2)
        one = dependency_cost(c2.dependencies, c2.placement, cm2.rack_distances, vm_a2, 5)
        assert two == pytest.approx(2 * one)


class TestCostModel:
    def test_vector_matches_scalar(self, small_cluster):
        cm = CostModel(small_cluster)
        v = cm.migration_cost_vector(0)
        for rack in range(small_cluster.num_racks):
            assert v[rack] == pytest.approx(cm.migration_cost(0, rack))

    def test_includes_migration_constant(self, small_cluster):
        cm = CostModel(small_cluster, CostParams(migration_constant=500.0))
        src = small_cluster.placement.rack_of(0)
        assert cm.migration_cost(0, src) >= 500.0

    def test_pairwise_rack_cost_zero_diagonal(self, small_cluster):
        cm = CostModel(small_cluster)
        m = cm.pairwise_rack_cost(10.0)
        assert (np.diagonal(m) == 0).all()
        off = m[~np.eye(m.shape[0], dtype=bool)]
        assert (off >= cm.params.migration_constant).all()

    def test_larger_vm_costs_more(self, small_cluster):
        cm = CostModel(small_cluster)
        pl = small_cluster.placement
        caps = pl.vm_capacity
        big = int(np.argmax(caps))
        small = int(np.argmin(caps))
        if caps[big] == caps[small]:
            pytest.skip("cluster has uniform VM sizes")
        src_b, src_s = pl.rack_of(big), pl.rack_of(small)
        # compare moves over identical rack pairs (symmetric fabric)
        dst_b = (src_b + 4) % small_cluster.num_racks
        dst_s = (src_s + 4) % small_cluster.num_racks
        tb = cm.table.cost(float(caps[big]), src_b, dst_b)
        ts = cm.table.cost(float(caps[small]), src_s, dst_s)
        if dst_b != src_b and dst_s != src_s:
            assert tb / max(caps[big], 1) <= ts / max(caps[small], 1) * 5
