"""Property tests for the pre-copy timeline (hypothesis).

The timeline feeds the timed engine's round accounting, so it must be
well-behaved over the whole parameter domain: finite non-negative phase
durations, bounded rounds, downtime within budget whenever pre-copy
converged, and clean errors — `MigrationError` exactly when the dirty
rate reaches the bandwidth, `ConfigurationError` for non-finite inputs.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.costs.precopy import precopy_timeline
from repro.errors import ConfigurationError, MigrationError

common = settings(max_examples=100, deadline=None)

MAX_ROUNDS = 30

domain = dict(
    memory=st.floats(1e-3, 1e6),
    ratio=st.floats(0.0, 0.99),
    bandwidth=st.floats(1e-2, 1e5),
    downtime=st.floats(1e-4, 10.0),
)


@common
@given(**domain)
def test_timeline_is_finite_and_consistent(memory, ratio, bandwidth, downtime):
    tl = precopy_timeline(
        memory, ratio * bandwidth, bandwidth, downtime_target=downtime
    )
    for value in (tl.t1, tl.t2, tl.t3, tl.t4, tl.total, tl.transferred):
        assert math.isfinite(value) and value >= 0.0
    assert 0 <= tl.rounds <= MAX_ROUNDS
    assert tl.total == tl.t1 + tl.t2 + tl.t3 + tl.t4
    assert tl.downtime == tl.t3
    # everything sent at least covers the RAM footprint
    assert tl.transferred >= memory * (1.0 - 1e-9)


@common
@given(**domain)
def test_downtime_within_budget_when_converged(
    memory, ratio, bandwidth, downtime
):
    tl = precopy_timeline(
        memory, ratio * bandwidth, bandwidth, downtime_target=downtime
    )
    if tl.rounds < MAX_ROUNDS:  # the cap did not force an early cut-over
        assert tl.t3 <= downtime * (1.0 + 1e-9)


@common
@given(
    memory=st.floats(1e-3, 1e6),
    bandwidth=st.floats(1e-2, 1e5),
    factor=st.floats(1.0, 10.0),
)
def test_non_convergence_raises_migration_error(memory, bandwidth, factor):
    with pytest.raises(MigrationError):
        precopy_timeline(memory, bandwidth * factor, bandwidth)


@pytest.mark.parametrize("bad", [math.inf, -math.inf, math.nan])
@pytest.mark.parametrize("slot", range(4))
def test_non_finite_inputs_rejected(bad, slot):
    args = [256.0, 10.0, 100.0, 0.06]
    args[slot] = bad
    memory, dirty, bandwidth, downtime = args
    with pytest.raises(ConfigurationError):
        precopy_timeline(memory, dirty, bandwidth, downtime_target=downtime)


def test_more_bandwidth_never_slows_the_migration():
    base = precopy_timeline(1024.0, 40.0, 100.0)
    faster = precopy_timeline(1024.0, 40.0, 200.0)
    assert faster.total <= base.total
    assert faster.t3 <= base.t3
