"""Six-stage pre-copy timeline tests (Fig. 2)."""

import pytest

from repro.costs.precopy import precopy_timeline
from repro.errors import ConfigurationError, MigrationError


class TestTimeline:
    def test_idle_vm_single_round(self):
        tl = precopy_timeline(memory=1024, dirty_rate=0.0, bandwidth=100.0)
        assert tl.rounds == 1
        assert tl.t2 == pytest.approx(1024 / 100)
        assert tl.t3 == 0.0
        assert tl.transferred == pytest.approx(1024)

    def test_downtime_respects_target(self):
        tl = precopy_timeline(
            memory=2048, dirty_rate=30.0, bandwidth=100.0, downtime_target=0.06
        )
        assert tl.downtime <= 0.06 + 1e-9

    def test_rounds_shrink_geometrically(self):
        tl = precopy_timeline(memory=1000, dirty_rate=50.0, bandwidth=100.0)
        # ratio 0.5: residual after k rounds = 1000 * 0.5^k
        assert tl.rounds >= 2
        assert tl.transferred < 1000 / (1 - 0.5) + 1  # geometric series bound

    def test_total_includes_all_stages(self):
        tl = precopy_timeline(
            memory=100,
            dirty_rate=0.0,
            bandwidth=100.0,
            setup_time=0.5,
            finish_time=0.2,
        )
        assert tl.total == pytest.approx(0.5 + 1.0 + 0.0 + 0.2)

    def test_high_dirty_rate_hits_round_cap(self):
        tl = precopy_timeline(
            memory=1000, dirty_rate=99.0, bandwidth=100.0, max_rounds=5
        )
        assert tl.rounds == 5
        assert tl.downtime > 0.06  # forced cut-over exceeds the target

    def test_faster_bandwidth_shortens_migration(self):
        slow = precopy_timeline(memory=4096, dirty_rate=20.0, bandwidth=100.0)
        fast = precopy_timeline(memory=4096, dirty_rate=20.0, bandwidth=1000.0)
        assert fast.total < slow.total
        assert fast.downtime <= slow.downtime + 1e-9


class TestFailureInjection:
    def test_dirty_rate_at_bandwidth_cannot_converge(self):
        with pytest.raises(MigrationError):
            precopy_timeline(memory=1000, dirty_rate=100.0, bandwidth=100.0)

    def test_dirty_rate_above_bandwidth(self):
        with pytest.raises(MigrationError):
            precopy_timeline(memory=1000, dirty_rate=150.0, bandwidth=100.0)

    def test_parameter_validation(self):
        with pytest.raises(ConfigurationError):
            precopy_timeline(memory=0, dirty_rate=1, bandwidth=1)
        with pytest.raises(ConfigurationError):
            precopy_timeline(memory=1, dirty_rate=-1, bandwidth=1)
        with pytest.raises(ConfigurationError):
            precopy_timeline(memory=1, dirty_rate=0, bandwidth=0)
        with pytest.raises(ConfigurationError):
            precopy_timeline(memory=1, dirty_rate=0, bandwidth=1, downtime_target=0)
        with pytest.raises(ConfigurationError):
            precopy_timeline(memory=1, dirty_rate=0, bandwidth=1, max_rounds=0)
