"""Cost-kernel cache: bit-identical answers, precise invalidation."""

import numpy as np
import pytest

from repro.cluster import build_cluster
from repro.costs.model import CostModel
from repro.costs.transmission import (
    cached_transmission_table,
    transmission_table_cache_stats,
)
from repro.topology import build_fattree


@pytest.fixture
def cluster():
    return build_cluster(
        build_fattree(4),
        hosts_per_rack=3,
        fill_fraction=0.5,
        skew=0.6,
        seed=7,
        delay_sensitive_fraction=0.0,
    )


def _movable_pair(cluster):
    """A (vm, dst_host) pair in different racks with room for the move."""
    pl = cluster.placement
    for vm in range(cluster.num_vms):
        src = int(pl.vm_host[vm])
        need = float(pl.vm_capacity[vm])
        for host in range(pl.num_hosts):
            if pl.host_rack[host] == pl.host_rack[src]:
                continue
            if pl.free_capacity(host) >= need:
                return vm, host
    pytest.skip("no feasible cross-rack move in this cluster")


class TestVectorCache:
    def test_cached_equals_uncached(self, cluster):
        warm = CostModel(cluster, cache=True)
        cold = CostModel(cluster, cache=False)
        for vm in range(min(cluster.num_vms, 20)):
            np.testing.assert_array_equal(
                warm.migration_cost_vector(vm), cold.migration_cost_vector(vm)
            )

    def test_repeat_query_hits(self, cluster):
        cm = CostModel(cluster, cache=True)
        a = cm.migration_cost_vector(0)
        b = cm.migration_cost_vector(0)
        assert a is b  # shared read-only vector, not a recompute
        assert cm.cache_stats["hits"] == 1
        assert cm.cache_stats["misses"] == 1

    def test_move_invalidates_vm_and_neighbors_only(self, cluster):
        cm = CostModel(cluster, cache=True)
        vm, dst = _movable_pair(cluster)
        neighbors = {int(n) for n in cluster.dependencies.neighbors(vm)}
        untouched = next(
            u
            for u in range(cluster.num_vms)
            if u != vm and u not in neighbors
        )
        # populate enough entries that the targeted (non-wholesale)
        # invalidation path runs: 1 move * 4 < cache size
        for u in range(cluster.num_vms):
            cm.migration_cost_vector(u)
        kept = cm.migration_cost_vector(untouched)
        cluster.placement.migrate(vm, dst)
        fresh = cm.migration_cost_vector(vm)  # triggers sync
        assert cm.cache_stats["invalidations"] >= 1
        # the stale entry was repaired in place, not just dropped
        assert cm.cache_stats["repairs"] >= 1
        # the moved VM's vector reflects its new source rack
        cold = CostModel(cluster, cache=False)
        np.testing.assert_array_equal(fresh, cold.migration_cost_vector(vm))
        # an unrelated VM's entry survived (same object, no recompute)
        assert cm.migration_cost_vector(untouched) is kept

    def test_lost_vm_entry_dropped_not_repaired(self, cluster):
        cm = CostModel(cluster, cache=True)
        cm.migration_cost_vector(0)
        cluster.placement.mark_lost(0)
        cm.sync_cache()
        assert 0 not in cm._vec_cache
        cluster.placement.restore_lost(0)

    def test_steady_state_multi_round_hits(self, cluster):
        """Regression: repeated planning rounds must hit, not rebuild.

        Simulates the engine's per-round pattern — sync, then query a
        largely-overlapping working set — with a few commits in between.
        Before the incremental repair the sync dropped huge swaths of the
        cache every round and the hit count stayed at 0."""
        cm = CostModel(cluster, cache=True)
        working_set = list(range(min(cluster.num_vms, 30)))
        for _ in range(4):
            cm.sync_cache()
            for u in working_set:
                cm.migration_cost_vector(u)
            vm, dst = _movable_pair(cluster)
            cluster.placement.migrate(vm, dst)
        assert cm.cache_stats["hits"] > 0
        # the second round onwards should be nearly all hits
        assert cm.cache_stats["hits"] > cm.cache_stats["misses"]

    def test_stats_disabled_path(self, cluster):
        cm = CostModel(cluster, cache=False)
        cm.migration_cost_vector(0)
        cm.migration_cost_vector(0)
        assert cm.cache_stats == {
            "hits": 0, "misses": 0, "invalidations": 0, "repairs": 0,
            "primed": 0,
        }


class TestTransmissionMemo:
    def test_same_topology_same_table(self, cluster):
        t1 = cached_transmission_table(cluster.topology)
        t2 = cached_transmission_table(cluster.topology)
        assert t1 is t2

    def test_cost_models_share_table(self, cluster):
        before = transmission_table_cache_stats()
        a = CostModel(cluster, cache=True)
        b = CostModel(cluster, cache=True)
        after = transmission_table_cache_stats()
        assert a.table is b.table
        # at most one build for this topology across both constructions
        assert after["builds"] - before["builds"] <= 1
        assert after["hits"] > before["hits"]

    def test_knob_change_builds_fresh_table(self, cluster):
        t1 = cached_transmission_table(cluster.topology, delta=1.0)
        t2 = cached_transmission_table(cluster.topology, delta=2.0)
        assert t1 is not t2
