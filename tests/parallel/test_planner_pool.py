"""Unit coverage for the persistent planner pool's moving parts.

The identity suites (``tests/service/test_sharded_identity.py``,
``tests/faults/test_sharded_chaos.py``) pin the end-to-end contract;
this file covers the mechanisms in isolation: pod discovery, the static
rack partition, the alert wire codec, worker lifecycle and reuse stats,
the result arena's reuse/growth protocol, and error marshalling from a
failed shard back to the engine.
"""

import numpy as np
import pytest

from repro.alerts.alert import Alert, AlertKind
from repro.cluster import build_cluster
from repro.config import SheriffConfig
from repro.errors import ConfigurationError, SimulationError
from repro.parallel.planner import (
    PlannerPool,
    _decode_alerts,
    _encode_alerts,
    pod_groups,
    shard_racks,
)
from repro.sim.engine import SheriffSimulation
from repro.sim.scenario import inject_fraction_alerts
from repro.topology import build_fattree

SEED = 11


def _cluster(k=4, hosts_per_rack=3):
    return build_cluster(
        build_fattree(k),
        hosts_per_rack=hosts_per_rack,
        fill_fraction=0.55,
        skew=0.8,
        seed=SEED,
        delay_sensitive_fraction=0.1,
    )


class TestPodGroups:
    def test_fattree_pods_partition_the_racks(self):
        topo = build_fattree(4)
        pods = pod_groups(topo)
        assert len(pods) == 4
        flat = sorted(r for pod in pods for r in pod)
        assert flat == list(range(topo.num_racks))

    def test_pods_are_disjoint_and_sorted(self):
        pods = pod_groups(build_fattree(8))
        seen = set()
        for pod in pods:
            assert pod == sorted(pod)
            assert not (seen & set(pod))
            seen.update(pod)


class TestShardRacks:
    def test_sharded_default_is_one_shard_per_pod(self):
        topo = build_fattree(4)
        shards = shard_racks(topo, topo.num_racks, mode="sharded", shards=0, workers=0)
        assert len(shards) == 4
        assert shards == pod_groups(topo)

    def test_sharded_never_splits_a_pod(self):
        topo = build_fattree(8)
        pods = pod_groups(topo)
        shards = shard_racks(topo, topo.num_racks, mode="sharded", shards=3, workers=0)
        assert len(shards) == 3
        for pod in pods:
            owners = {i for i, s in enumerate(shards) if set(pod) & set(s)}
            assert len(owners) == 1

    def test_process_mode_chunks_contiguously(self):
        topo = build_fattree(4)
        shards = shard_racks(topo, topo.num_racks, mode="process", shards=3, workers=0)
        flat = [r for s in shards for r in s]
        assert flat == list(range(topo.num_racks))
        for s in shards:
            assert s == list(range(s[0], s[0] + len(s)))

    def test_every_mode_covers_every_rack_exactly_once(self):
        topo = build_fattree(4)
        for mode, shards in [("sharded", 2), ("process", 5)]:
            out = shard_racks(topo, topo.num_racks, mode=mode, shards=shards, workers=0)
            flat = sorted(r for s in out for r in s)
            assert flat == list(range(topo.num_racks))

    def test_unknown_mode_rejected(self):
        with pytest.raises(ConfigurationError):
            shard_racks(build_fattree(4), 16, mode="magic", shards=0, workers=0)


class TestAlertCodec:
    def _alerts(self):
        return {
            2: [
                Alert(kind=AlertKind.SERVER, rack=2, magnitude=0.7, time=3, vm=9, host=4),
                Alert(kind=AlertKind.LOCAL_TOR, rack=2, magnitude=1.5, time=3),
            ],
            5: [
                Alert(
                    kind=AlertKind.OUTER_SWITCH, rack=5, magnitude=0.2, time=3, switch=1
                ),
            ],
        }

    def test_roundtrip_is_identical(self):
        by_rack = self._alerts()
        ints, mags = _encode_alerts(by_rack, sorted(by_rack))
        decoded = _decode_alerts(ints, mags)
        assert sorted(decoded) == sorted(by_rack)
        for rack, alerts in by_rack.items():
            assert decoded[rack] == alerts  # dataclass eq: field-for-field

    def test_none_fields_survive(self):
        decoded = _decode_alerts(
            *_encode_alerts(self._alerts(), [2, 5])
        )
        a = decoded[2][1]
        assert a.vm is None and a.host is None and a.switch is None
        assert decoded[5][0].switch == 1

    def test_empty_stream(self):
        ints, mags = _encode_alerts({}, [])
        assert _decode_alerts(ints, mags) == {}


def _run_rounds(sim, cluster, rounds=3, fraction=0.2):
    for r in range(rounds):
        alerts, vma = inject_fraction_alerts(cluster, fraction, time=r, seed=SEED + r)
        sim.run_round(alerts, vma)


class TestLifecycleAndStats:
    def test_pool_forks_once_and_ships_per_round(self):
        cluster = _cluster()
        sim = SheriffSimulation(cluster, SheriffConfig(planner="sharded"))
        _run_rounds(sim, cluster, rounds=4)
        pool = sim._planner_pool()
        stats = pool.stats
        assert stats["attached"] == len(pool._assignments)
        assert stats["ships"] == 4  # one fleet ship per round, no re-forks
        assert stats["attach_s"] > 0.0
        sim.close()
        # idempotent teardown: workers joined, segments released
        sim.close()
        assert not any(p.is_alive() for p in pool._procs)

    def test_summary_carries_pool_stats(self):
        cluster = _cluster()
        sim = SheriffSimulation(cluster, SheriffConfig(planner="process", workers=2))
        _run_rounds(sim, cluster, rounds=2)
        assert sim.history[-1].pool["ships"] == 2
        assert sim.history[-1].pool["attached"] >= 1
        sim.close()

    def test_arena_is_reused_across_rounds(self):
        # the result arena is created on the first planned round and then
        # reused (geometric growth): the parent re-attaches only when a
        # worker announces a new segment name
        cluster = _cluster()
        sim = SheriffSimulation(cluster, SheriffConfig(planner="process", workers=1))
        _run_rounds(sim, cluster, rounds=1, fraction=0.3)
        pool = sim._planner_pool()
        names_first = {idx: seg.name for idx, seg in pool._arenas.items()}
        assert names_first  # at least one shard shipped block arrays
        _run_rounds(sim, cluster, rounds=3, fraction=0.05)
        names_later = {idx: seg.name for idx, seg in pool._arenas.items()}
        # smaller rounds fit in the grown arena: no new segment appears
        assert names_later == names_first
        sim.close()

    def test_blocks_arrive_through_the_arena(self):
        cluster = _cluster()
        sim = SheriffSimulation(cluster, SheriffConfig(planner="process", workers=1))
        pool = sim._planner_pool()
        alerts, vma = inject_fraction_alerts(cluster, 0.3, time=0, seed=SEED)
        by_rack = {}
        for a in alerts:
            by_rack.setdefault(a.rack, []).append(a)
        plans, worker_secs = pool.plan_round(
            sorted(by_rack), by_rack, vma, frozenset(), None
        )
        assert worker_secs
        got_block = False
        for plan in plans:
            block = plan.block
            if block is None or block.true_cost is None:
                continue
            got_block = True
            # the parent's matrices are views over the shard's arena
            assert not block.true_cost.flags.owndata
            assert block.cost.shape == block.true_cost.shape
            np.testing.assert_array_equal(
                block.cost, block.true_cost + block.steer[None, :]
            )
        assert got_block
        sim.close()


class TestErrorMarshalling:
    def test_worker_failure_surfaces_as_simulation_error(self):
        cluster = _cluster()
        sim = SheriffSimulation(cluster, SheriffConfig(planner="process", workers=1))
        pool = sim._planner_pool()
        pool.start()
        alerts, vma = inject_fraction_alerts(cluster, 0.2, time=0, seed=SEED)
        by_rack = {}
        for a in alerts:
            by_rack.setdefault(a.rack, []).append(a)
        # a nonsense VM id blows up inside the worker's prime step; the
        # exception and its traceback must come back as SimulationError
        with pytest.raises(SimulationError, match="planner shard"):
            pool.plan_round(
                sorted(by_rack), by_rack, {10**6: 1.0}, frozenset(), None
            )
        # the worker loop survives the failure and keeps serving
        plans, _ = pool.plan_round(sorted(by_rack), by_rack, vma, frozenset(), None)
        assert [p.rack for p in plans] == sorted(by_rack)
        sim.close()

    def test_malformed_payload_is_reported_not_fatal(self):
        cluster = _cluster()
        sim = SheriffSimulation(cluster, SheriffConfig(planner="process", workers=1))
        pool = sim._planner_pool()
        pool.start()
        conn = pool._conns[0]
        conn.send(("plan", {"moves": "not an ndarray"}))
        reply = conn.recv()
        assert reply[0] == "err"
        assert "Traceback" in reply[2]
        sim.close()
