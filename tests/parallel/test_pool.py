"""WorkerPool: ordering, timing accounting, and degradation rules."""

import threading

import pytest

from repro.parallel import WorkerPool, resolve_workers


class TestResolveWorkers:
    def test_passthrough(self):
        assert resolve_workers(0) == 0
        assert resolve_workers(3) == 3

    def test_negative_means_all_cores(self):
        assert resolve_workers(-1) >= 1


class TestSerialDegrade:
    @pytest.mark.parametrize("workers", [0, 1])
    def test_small_pools_never_spawn(self, workers):
        pool = WorkerPool(workers, backend="thread")
        assert pool.backend == "serial"
        assert not pool.parallel
        results, timings = pool.map_ordered(lambda x: x * 2, [1, 2, 3])
        assert results == [2, 4, 6]
        assert set(timings) == {"w0"}

    def test_bad_backend_rejected(self):
        with pytest.raises(ValueError):
            WorkerPool(4, backend="fibers")


class TestThreadBackend:
    def test_results_in_submission_order(self):
        # tasks finishing out of order must not reorder results
        import time

        def slow_first(x):
            if x == 0:
                time.sleep(0.02)
            return x * 10

        with WorkerPool(4, backend="thread") as pool:
            results, timings = pool.map_ordered(slow_first, list(range(8)))
        assert results == [x * 10 for x in range(8)]
        assert sum(timings.values()) > 0.0

    def test_worker_labels_use_prefix(self):
        with WorkerPool(2, backend="thread", name="testpool") as pool:
            _, timings = pool.map_ordered(lambda x: x, list(range(6)))
        assert timings
        assert all(label.startswith("w") for label in timings)

    def test_exception_propagates(self):
        def boom(x):
            if x == 3:
                raise RuntimeError("task 3 failed")
            return x

        with WorkerPool(2, backend="thread") as pool:
            with pytest.raises(RuntimeError, match="task 3"):
                pool.map_ordered(boom, list(range(6)))

    def test_runs_on_pool_threads(self):
        seen = set()

        def record(x):
            seen.add(threading.current_thread().name)
            return x

        with WorkerPool(2, backend="thread", name="zz") as pool:
            pool.map_ordered(record, list(range(16)))
        assert any("zz" in name for name in seen)


class TestLifecycle:
    def test_empty_items(self):
        pool = WorkerPool(4)
        assert pool.map_ordered(lambda x: x, []) == ([], {})
        pool.close()

    def test_close_idempotent_and_reusable(self):
        pool = WorkerPool(4)
        pool.map_ordered(lambda x: x + 1, [1])
        pool.close()
        pool.close()
        # a closed pool lazily re-creates its executor on next use
        results, _ = pool.map_ordered(lambda x: x + 1, [1, 2])
        assert results == [2, 3]
        pool.close()
