"""The ``workers=-1`` auto mode: inline planning below the pool break-even."""

import numpy as np

from repro.cluster import build_cluster
from repro.config import SheriffConfig
from repro.parallel.pool import AUTO_INLINE_TASK_THRESHOLD, auto_inline
from repro.sim.engine import SheriffSimulation
from repro.sim.scenario import inject_fraction_alerts
from repro.topology import build_fattree


def _small_cluster(seed=3):
    return build_cluster(
        build_fattree(4),
        hosts_per_rack=3,
        fill_fraction=0.55,
        skew=0.8,
        seed=seed,
        delay_sensitive_fraction=0.1,
    )


class TestHeuristic:
    def test_auto_mode_inlines_small_fanouts(self):
        assert auto_inline(-1, AUTO_INLINE_TASK_THRESHOLD - 1)
        assert auto_inline(-1, 1)

    def test_auto_mode_pools_large_fanouts(self):
        assert not auto_inline(-1, AUTO_INLINE_TASK_THRESHOLD)
        assert not auto_inline(-1, AUTO_INLINE_TASK_THRESHOLD + 100)

    def test_explicit_worker_counts_always_pool(self):
        # a user-chosen size is honored no matter how few tasks there are
        assert not auto_inline(1, 1)
        assert not auto_inline(4, 1)
        assert not auto_inline(0, 1)

    def test_threshold_override(self):
        assert auto_inline(-1, 5, threshold=6)
        assert not auto_inline(-1, 5, threshold=5)

    def test_cost_based_decision_overrides_task_count(self):
        # many cheap tasks: count alone would pool, est_cost inlines
        assert auto_inline(-1, 200, est_cost=400, cost_threshold=16384)
        # few expensive tasks: count alone would inline, est_cost pools
        assert not auto_inline(-1, 8, est_cost=20000, cost_threshold=16384)
        # explicit worker counts still always pool
        assert not auto_inline(4, 200, est_cost=1, cost_threshold=16384)

    def test_cost_threshold_defaults(self):
        from repro.parallel.pool import AUTO_INLINE_COST_THRESHOLD

        assert auto_inline(-1, 999, est_cost=AUTO_INLINE_COST_THRESHOLD - 1)
        assert not auto_inline(-1, 1, est_cost=AUTO_INLINE_COST_THRESHOLD)


class TestEngineAutoMode:
    def test_small_run_never_creates_pool(self):
        cluster = _small_cluster()
        sim = SheriffSimulation(cluster, config=SheriffConfig(workers=-1))
        for r in range(3):
            alerts, vm_alerts = inject_fraction_alerts(
                cluster, 0.2, time=r, seed=11 + r
            )
            sim.run_round(alerts, vm_alerts)
        # a 4-pod fabric has 16 racks < threshold: planning ran inline
        assert sim._pool is None

    def test_auto_mode_matches_scalar_oracle(self):
        base = _small_cluster()
        auto = _small_cluster()
        sim0 = SheriffSimulation(base, config=SheriffConfig(workers=0))
        sim_auto = SheriffSimulation(auto, config=SheriffConfig(workers=-1))
        for r in range(3):
            a0, v0 = inject_fraction_alerts(base, 0.2, time=r, seed=11 + r)
            a1, v1 = inject_fraction_alerts(auto, 0.2, time=r, seed=11 + r)
            s0 = sim0.run_round(a0, v0)
            s1 = sim_auto.run_round(a1, v1)
            assert (
                s0.migrations,
                s0.requests,
                s0.rejects,
                s0.total_cost,
                s0.unplaced,
            ) == (
                s1.migrations,
                s1.requests,
                s1.rejects,
                s1.total_cost,
                s1.unplaced,
            )
        np.testing.assert_array_equal(base.placement.vm_host, auto.placement.vm_host)

    def test_pool_still_used_above_threshold(self, monkeypatch):
        # planning lives in the service core's PlanSource since the
        # event-bus refactor
        import repro.service.round as round_mod

        monkeypatch.setattr(round_mod, "auto_inline", lambda w, n, **k: False)
        cluster = _small_cluster()
        sim = SheriffSimulation(cluster, config=SheriffConfig(workers=-1))
        alerts, vm_alerts = inject_fraction_alerts(cluster, 0.2, time=0, seed=11)
        sim.run_round(alerts, vm_alerts)
        if alerts:
            assert sim._pool is not None
