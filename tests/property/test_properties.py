"""Property-based tests (hypothesis) on core data structures and kernels."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st
from scipy.optimize import linear_sum_assignment

from repro.cluster.host import Host
from repro.cluster.placement import Placement
from repro.cluster.vm import VM
from repro.errors import CapacityError, PlacementError
from repro.forecast.lag import difference, difference_heads, lag_matrix, undifference
from repro.kmedian import KMedianInstance, local_search
from repro.migration.matching import hungarian
from repro.migration.priority import CandidateVM, PriorityFactor, priority_select
from repro.topology.shortest_paths import floyd_warshall

common = settings(
    max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


# --------------------------------------------------------------------- #
# Floyd–Warshall metric properties
# --------------------------------------------------------------------- #
@st.composite
def weight_matrices(draw):
    n = draw(st.integers(3, 8))
    edges = {}
    for i in range(n):
        for j in range(i + 1, n):
            if draw(st.booleans()):
                edges[(i, j)] = draw(
                    st.floats(0.1, 10.0, allow_nan=False, allow_infinity=False)
                )
    w = np.full((n, n), np.inf)
    np.fill_diagonal(w, 0.0)
    for (i, j), v in edges.items():
        w[i, j] = w[j, i] = v
    return w


@common
@given(weight_matrices())
def test_fw_triangle_inequality(w):
    d = floyd_warshall(w)
    n = d.shape[0]
    for i in range(n):
        for j in range(n):
            for k in range(n):
                if np.isfinite(d[i, k]) and np.isfinite(d[k, j]):
                    assert d[i, j] <= d[i, k] + d[k, j] + 1e-9


@common
@given(weight_matrices())
def test_fw_symmetric_and_dominated_by_edges(w):
    d = floyd_warshall(w)
    np.testing.assert_allclose(d, d.T)
    finite = np.isfinite(w)
    assert (d[finite] <= w[finite] + 1e-12).all()


# --------------------------------------------------------------------- #
# difference / undifference are inverse
# --------------------------------------------------------------------- #
@common
@given(
    st.lists(st.floats(-100, 100, allow_nan=False), min_size=8, max_size=60),
    st.integers(1, 3),
)
def test_difference_roundtrip(values, d):
    y = np.asarray(values)
    if y.shape[0] <= d + 2:
        return
    heads = difference_heads(y[:-2], d)
    w = difference(y, d)
    rebuilt = undifference(w[-2:], heads)
    np.testing.assert_allclose(rebuilt, y[-2:], atol=1e-6)


@common
@given(st.lists(st.floats(-10, 10, allow_nan=False), min_size=5, max_size=40), st.integers(1, 4))
def test_lag_matrix_rows_are_history(values, lags):
    y = np.asarray(values)
    if y.shape[0] <= lags:
        return
    X, t = lag_matrix(y, lags)
    for i in range(X.shape[0]):
        for j in range(lags):
            assert X[i, j] == y[lags + i - 1 - j]
        assert t[i] == y[lags + i]


# --------------------------------------------------------------------- #
# Hungarian == scipy on random instances
# --------------------------------------------------------------------- #
@common
@given(st.integers(1, 8), st.integers(0, 6), st.integers(0, 10**6))
def test_hungarian_matches_scipy(n, extra, seed):
    rng = np.random.default_rng(seed)
    c = rng.random((n, n + extra)) * 50
    _, tot = hungarian(c)
    r, cc = linear_sum_assignment(c)
    assert tot == pytest.approx(c[r, cc].sum())


# --------------------------------------------------------------------- #
# PRIORITY knapsack properties
# --------------------------------------------------------------------- #
@st.composite
def candidate_sets(draw):
    n = draw(st.integers(1, 10))
    cands = [
        CandidateVM(
            vm_id=i,
            capacity=draw(st.integers(1, 15)),
            value=draw(st.floats(0.1, 10.0, allow_nan=False)),
            alert=draw(st.floats(0.0, 1.0, allow_nan=False)),
            delay_sensitive=draw(st.booleans()),
        )
        for i in range(n)
    ]
    budget = draw(st.integers(0, 60))
    return cands, budget


@common
@given(candidate_sets())
def test_priority_respects_budget_and_uniqueness(args):
    cands, budget = args
    out = priority_select(cands, PriorityFactor.BETA, budget=budget)
    total = sum(c.capacity for c in out)
    assert total <= max(budget, 0)
    ids = [c.vm_id for c in out]
    assert len(set(ids)) == len(ids)
    assert all(not c.delay_sensitive for c in out)


@common
@given(candidate_sets())
def test_priority_maximizes_relief(args):
    """No unselected movable VM should fit in the leftover budget."""
    cands, budget = args
    out = priority_select(cands, PriorityFactor.BETA, budget=budget)
    used = sum(c.capacity for c in out)
    chosen = {c.vm_id for c in out}
    leftovers = [
        c for c in cands if c.vm_id not in chosen and not c.delay_sensitive
    ]
    # optimality of relieved capacity: brute-force check on small sets
    movable = [c for c in cands if not c.delay_sensitive]
    if len(movable) <= 8:
        best = 0
        for mask in range(1 << len(movable)):
            tot = sum(
                movable[i].capacity for i in range(len(movable)) if mask >> i & 1
            )
            if tot <= budget:
                best = max(best, tot)
        assert used == best


# --------------------------------------------------------------------- #
# Placement capacity invariant under random migration sequences
# --------------------------------------------------------------------- #
@common
@given(st.integers(0, 10**6))
def test_placement_random_migrations_keep_invariants(seed):
    rng = np.random.default_rng(seed)
    n_hosts = int(rng.integers(2, 6))
    hosts = [Host(h, h % 2, int(rng.integers(20, 60))) for h in range(n_hosts)]
    vms = []
    vm_host = []
    for h in hosts:
        used = 0
        while used < h.capacity // 2:
            cap = int(rng.integers(1, 10))
            if used + cap > h.capacity:
                break
            vms.append(VM(len(vms), cap, 1.0))
            vm_host.append(h.host_id)
            used += cap
    if not vms:
        return
    pl = Placement(vms, hosts, vm_host)
    for _ in range(20):
        vm = int(rng.integers(0, len(vms)))
        dst = int(rng.integers(0, n_hosts))
        try:
            pl.migrate(vm, dst)
        except (CapacityError, PlacementError):
            pass
    pl.check_invariants()


# --------------------------------------------------------------------- #
# Local search never worse than its start, never better than optimum
# --------------------------------------------------------------------- #
@common
@given(st.integers(0, 10**6), st.integers(4, 9), st.integers(1, 3))
def test_local_search_bounds(seed, n, k):
    if k >= n:
        return
    rng = np.random.default_rng(seed)
    pts = rng.random((n, 2))
    inst = KMedianInstance.from_points(pts, k)
    start = list(range(k))
    res = local_search(inst, initial=start, seed=seed)
    assert res.cost <= inst.cost(start) + 1e-9
    from repro.kmedian import exact_kmedian

    _, opt = exact_kmedian(inst)
    assert res.cost >= opt - 1e-9
    assert res.cost <= 5 * opt + 1e-9  # 3 + 2/1 bound
