"""Byte-identity of the parallel plan/execute path vs the serial loop.

The contract of :mod:`repro.parallel` is not "roughly the same answer
faster" — it is *byte-identical* outcomes for every workers setting.
Whatever alert stream the engine is fed, ``workers=0`` (the legacy
interleaved loop), ``workers=1`` (plan/execute split, inline) and
``workers=4`` (thread pool) must produce the same RoundSummary counters
and the same final placement, with and without the cost-kernel cache.

A hypothesis-driven Kuhn-Munkres cross-check against scipy rides along:
the planned path pre-solves matchings in workers, so the solver's
correctness on rectangular and partially forbidden matrices underpins the
identity argument.
"""

import dataclasses

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st
from scipy.optimize import linear_sum_assignment

from repro.cluster import Cluster, build_cluster
from repro.config import SheriffConfig
from repro.errors import MigrationError
from repro.migration.matching import hungarian
from repro.sim import SheriffSimulation, inject_fraction_alerts
from repro.topology import build_fattree

common = settings(
    max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


def fresh_cluster(seed):
    return build_cluster(
        build_fattree(4),
        hosts_per_rack=3,
        fill_fraction=0.55,
        skew=0.8,
        seed=seed,
        delay_sensitive_fraction=0.1,
    )


def clone_cluster(cluster):
    return Cluster(
        topology=cluster.topology,
        racks=cluster.racks,
        hosts=cluster.hosts,
        vms=cluster.vms,
        placement=cluster.placement.clone(),
        dependencies=cluster.dependencies,
    )


def summary_fields(summary):
    """Every RoundSummary field except wall-clock noise (timings/reports)."""
    d = dataclasses.asdict(summary)
    d.pop("timings", None)
    d.pop("reports", None)
    d.pop("pool", None)
    return d


def run_variant(cluster, rounds, *, workers, cache):
    sim = SheriffSimulation(
        cluster, SheriffConfig(workers=workers, cache_cost_kernels=cache)
    )
    out = [summary_fields(sim.run_round(alerts, vma)) for alerts, vma in rounds]
    sim.close()
    return out


@st.composite
def alert_rounds(draw):
    """A fixed cluster plus a few rounds of seeded fraction alerts."""
    seed = draw(st.integers(0, 10**6))
    cluster = fresh_cluster(seed)
    n_rounds = draw(st.integers(1, 3))
    fraction = draw(st.floats(0.02, 0.15))
    rounds = [
        inject_fraction_alerts(cluster, fraction, time=r, seed=seed + r)
        for r in range(n_rounds)
    ]
    return seed, rounds


@common
@given(alert_rounds())
def test_workers_and_cache_are_byte_identical(case):
    seed, rounds = case
    baseline_cluster = fresh_cluster(seed)
    baseline = run_variant(baseline_cluster, rounds, workers=0, cache=False)
    for workers, cache in [(0, True), (1, True), (4, True), (4, False)]:
        cluster = fresh_cluster(seed)
        got = run_variant(cluster, rounds, workers=workers, cache=cache)
        assert got == baseline, f"workers={workers} cache={cache} diverged"
        np.testing.assert_array_equal(
            cluster.placement.vm_host,
            baseline_cluster.placement.vm_host,
            err_msg=f"final placement differs for workers={workers} cache={cache}",
        )


@common
@given(alert_rounds())
def test_parallel_engine_reuses_one_cluster_correctly(case):
    """Same engine across rounds (migrations land between rounds) stays
    identical to serial — the cache-invalidation path is what's on trial."""
    seed, rounds = case
    serial_cluster = fresh_cluster(seed)
    parallel_cluster = clone_cluster(serial_cluster)
    serial = run_variant(serial_cluster, rounds, workers=0, cache=False)
    parallel = run_variant(parallel_cluster, rounds, workers=4, cache=True)
    assert parallel == serial
    np.testing.assert_array_equal(
        serial_cluster.placement.vm_host, parallel_cluster.placement.vm_host
    )


matching_settings = settings(max_examples=50, deadline=None)


@matching_settings
@given(
    st.integers(0, 10**6),
    st.integers(1, 9),
    st.integers(0, 8),
    st.floats(0.0, 0.45),
)
def test_hungarian_matches_scipy_on_random_matrices(seed, n, extra, forbid_frac):
    """Rectangular matrices with random forbidden (inf) entries: whenever a
    fully finite matching exists, hungarian's total equals scipy's."""
    rng = np.random.default_rng(seed)
    m = n + extra
    c = rng.random((n, m)) * 100.0
    mask = rng.random((n, m)) < forbid_frac
    c[mask] = np.inf
    if not np.isfinite(c).any(axis=1).all():
        return  # a row with no finite column is trivially infeasible
    sentinel = 1e9
    filled = np.where(np.isfinite(c), c, sentinel)
    r, cc = linear_sum_assignment(filled)
    ref = float(filled[r, cc].sum())
    try:
        a, tot = hungarian(c)
    except MigrationError:
        # hungarian may only declare infeasibility when scipy cannot find
        # an all-finite matching either
        assert ref >= sentinel
        return
    assert np.isfinite(c[np.arange(n), a]).all()
    assert len(set(a.tolist())) == n
    if ref < sentinel:
        assert tot == pytest.approx(ref)
    else:
        # scipy had to use a forbidden cell, hungarian found a finite
        # matching scipy's sentinel formulation missed — still optimal
        # among finite matchings by construction, just check feasibility
        assert np.isfinite(tot)
