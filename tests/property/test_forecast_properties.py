"""Property-based tests on the forecasting stack."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.forecast.arima import ARIMA, _css_residuals, _max_inverse_root
from repro.forecast.naive import NaiveLast, SeasonalNaive
from repro.forecast.sarima import seasonal_difference, seasonal_undifference

common = settings(
    max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


@st.composite
def stationary_arma(draw):
    """Random stationary/invertible ARMA(≤2, ≤2) coefficients."""
    p = draw(st.integers(0, 2))
    q = draw(st.integers(0, 2))
    # draw inverse roots inside the unit disc and expand to coefficients
    def coeffs(k):
        roots = [
            draw(st.floats(-0.85, 0.85)) for _ in range(k)
        ]
        poly = np.array([1.0])
        for r in roots:
            poly = np.convolve(poly, [1.0, -r])
        return -poly[1:]  # 1 - c1 z - c2 z^2 ...

    phi = coeffs(p)
    theta = -coeffs(q)  # MA polynomial uses + signs
    return phi, theta


@common
@given(stationary_arma(), st.integers(0, 10**6))
def test_arima_forecasts_finite_and_bounded(params, seed):
    phi, theta = params
    rng = np.random.default_rng(seed)
    n = 300
    e = rng.normal(size=n)
    w = np.zeros(n)
    for t in range(max(len(phi), len(theta), 1), n):
        w[t] = e[t]
        for i, c in enumerate(phi):
            w[t] += c * w[t - 1 - i]
        for j, c in enumerate(theta):
            w[t] += c * e[t - 1 - j]
    model = ARIMA(max(len(phi), 1), 0, max(len(theta), 1), maxiter=60).fit(w)
    f = model.forecast(30)
    assert np.isfinite(f).all()
    # stationary-model forecasts stay within a generous envelope
    assert np.abs(f).max() < 10 * (np.abs(w).max() + 1.0)
    # fitted parameters stay stationary/invertible
    assert _max_inverse_root(model.phi_, "ar") < 1.0
    assert _max_inverse_root(model.theta_, "ma") < 1.0


@common
@given(stationary_arma(), st.integers(0, 10**6))
def test_css_residuals_shrink_sse_vs_zero_model(params, seed):
    """Fitted residual SSE never exceeds the raw (mean-only) SSE."""
    phi, theta = params
    if len(phi) + len(theta) == 0:
        return
    rng = np.random.default_rng(seed)
    n = 240
    e = rng.normal(size=n)
    w = np.zeros(n)
    for t in range(2, n):
        w[t] = e[t]
        for i, c in enumerate(phi):
            w[t] += c * w[t - 1 - i]
        for j, c in enumerate(theta):
            w[t] += c * e[t - 1 - j]
    model = ARIMA(max(len(phi), 1), 0, max(len(theta), 1), maxiter=60).fit(w)
    fitted = model.residuals()
    k = max(len(phi), 1)
    raw = w[k:] - w.mean()
    assert float(fitted @ fitted) <= float(raw @ raw) * 1.001


@common
@given(
    st.lists(st.floats(-50, 50, allow_nan=False), min_size=30, max_size=80),
    st.integers(2, 7),
    st.integers(1, 2),
)
def test_seasonal_difference_roundtrip(values, period, order):
    y = np.asarray(values)
    if y.shape[0] <= order * period + 5:
        return
    # collect tails exactly as SeasonalARIMA.fit does
    tails = []
    work = y
    for _ in range(order):
        tails.append(work[-period:].copy())
        work = seasonal_difference(work, period, 1)
    # differencing the true continuation then integrating must round-trip
    h = 4
    rng = np.random.default_rng(0)
    future = rng.normal(scale=5.0, size=h)
    merged = np.concatenate([y, future])
    diffed = merged
    for _ in range(order):
        diffed = seasonal_difference(diffed, period, 1)
    rebuilt = seasonal_undifference(diffed[-h:], tails, period)
    np.testing.assert_allclose(rebuilt, future, atol=1e-8)


@common
@given(st.lists(st.floats(-100, 100, allow_nan=False), min_size=3, max_size=60))
def test_naive_last_repeats_final_value(values):
    m = NaiveLast().fit(np.asarray(values))
    f = m.forecast(5)
    np.testing.assert_allclose(f, values[-1])


@common
@given(
    st.lists(st.floats(-10, 10, allow_nan=False), min_size=12, max_size=48),
    st.integers(2, 6),
)
def test_seasonal_naive_periodicity(values, period):
    y = np.asarray(values)
    if y.shape[0] < period:
        return
    m = SeasonalNaive(period=period).fit(y)
    f = m.forecast(2 * period)
    # the forecast repeats the last season with period `period`
    np.testing.assert_allclose(f[:period], f[period:])
    np.testing.assert_allclose(f[:period], y[-period:])
