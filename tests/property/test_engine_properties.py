"""Property-based tests on the simulation engine.

Whatever alert stream the engine is fed — random kinds, random
magnitudes, random rounds — the placement invariants must hold after
every round, accepted migrations must respect capacity, and the reported
counters must be internally consistent.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.alerts.alert import Alert, AlertKind
from repro.cluster import build_cluster
from repro.sim import SheriffSimulation
from repro.topology import build_fattree

common = settings(
    max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


def fresh_cluster(seed):
    return build_cluster(
        build_fattree(4),
        hosts_per_rack=2,
        fill_fraction=0.5,
        skew=0.6,
        seed=seed,
        delay_sensitive_fraction=0.1,
    )


@st.composite
def alert_streams(draw):
    """A few rounds of random alerts for a fixed small cluster."""
    seed = draw(st.integers(0, 10**6))
    cluster = fresh_cluster(seed)
    n_rounds = draw(st.integers(1, 4))
    rounds = []
    for _ in range(n_rounds):
        n_alerts = draw(st.integers(0, 6))
        alerts = []
        vm_alerts = {}
        for _ in range(n_alerts):
            kind = draw(st.sampled_from(list(AlertKind)))
            rack = draw(st.integers(0, cluster.num_racks - 1))
            mag = draw(st.floats(0.01, 1.0, allow_nan=False))
            if kind is AlertKind.SERVER:
                hosts = cluster.placement.hosts_in_rack(rack)
                host = int(hosts[draw(st.integers(0, len(hosts) - 1))])
                alerts.append(
                    Alert(kind=kind, rack=rack, magnitude=mag, host=host)
                )
                for vm in cluster.placement.vms_on_host(host):
                    vm_alerts[int(vm)] = mag
            elif kind is AlertKind.LOCAL_TOR:
                alerts.append(Alert(kind=kind, rack=rack, magnitude=mag))
                for vm in cluster.placement.vms_in_rack(rack):
                    vm_alerts[int(vm)] = mag
            else:
                sw = int(
                    cluster.topology.switches()[
                        draw(st.integers(0, len(cluster.topology.switches()) - 1))
                    ]
                )
                alerts.append(Alert(kind=kind, rack=rack, magnitude=mag, switch=sw))
        rounds.append((alerts, vm_alerts))
    return cluster, rounds


@common
@given(alert_streams())
def test_engine_invariants_under_random_alerts(stream):
    cluster, rounds = stream
    sim = SheriffSimulation(cluster)
    for alerts, vm_alerts in rounds:
        before = cluster.placement.vm_host.copy()
        summary = sim.run_round(alerts, vm_alerts)
        cluster.placement.check_invariants()
        moved = int((before != cluster.placement.vm_host).sum())
        assert moved == summary.migrations
        assert summary.migrations <= summary.requests
        assert summary.requests == summary.migrations + summary.rejects
        assert summary.total_cost >= 100.0 * summary.migrations - 1e-6
        # delay-sensitive VMs never move
        sensitive = np.nonzero(cluster.placement.vm_delay_sensitive)[0]
        assert (before[sensitive] == cluster.placement.vm_host[sensitive]).all()


@common
@given(alert_streams())
def test_engine_is_deterministic(stream):
    cluster_a, rounds = stream
    # replay the identical stream on an identical cluster
    import copy

    from repro.cluster import Cluster

    cluster_b = Cluster(
        topology=cluster_a.topology,
        racks=cluster_a.racks,
        hosts=cluster_a.hosts,
        vms=cluster_a.vms,
        placement=cluster_a.placement.clone(),
        dependencies=cluster_a.dependencies,
    )
    sim_a = SheriffSimulation(cluster_a)
    sim_b = SheriffSimulation(cluster_b)
    for alerts, vm_alerts in rounds:
        sa = sim_a.run_round(alerts, vm_alerts)
        sb = sim_b.run_round(alerts, vm_alerts)
        assert sa.migrations == sb.migrations
        assert sa.total_cost == pytest.approx(sb.total_cost)
    np.testing.assert_array_equal(
        cluster_a.placement.vm_host, cluster_b.placement.vm_host
    )
