"""Byte-identity of the vectorized fleet kernels vs the scalar oracles.

PR 2 fixed the contract: optimizations change *where* and *how fast* work
runs, never what it computes.  The fleet kernels (SoA snapshot, stacked
ARIMA forecasting, vectorized ALERT gate, incremental cost cache) each have
a live scalar reference path; hypothesis drives generated fleets, alert
streams and move sequences through both and asserts bitwise agreement.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.alerts.alert import compute_alert, compute_alerts
from repro.cluster import Cluster, build_cluster
from repro.cluster.snapshot import FleetSnapshot
from repro.config import SheriffConfig
from repro.costs.model import CostModel
from repro.errors import ConvergenceError, ForecastError
from repro.forecast.arima import ARIMA
from repro.forecast.batch import batch_forecast, batch_predict_one
from repro.forecast.naive import NaiveLast
from repro.forecast.selection import DynamicModelSelector
from repro.forecast.selection import batch_predict_one as fleet_predict_one
from repro.sim import SheriffSimulation, inject_fraction_alerts
from repro.topology import build_fattree

from tests.property.test_parallel_properties import (
    alert_rounds,
    fresh_cluster,
    run_variant,
)

common = settings(
    max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)

_ORDERS = [(1, 1, 1), (2, 1, 2), (1, 1, 0), (0, 1, 1), (1, 0, 0), (0, 0, 1)]


# --------------------------------------------------------------------- #
# batched forecasting
# --------------------------------------------------------------------- #
@st.composite
def fitted_fleet(draw):
    """A mixed fleet of fitted forecasters plus the series they saw."""
    seed = draw(st.integers(0, 10**6))
    rng = np.random.default_rng(seed)
    n_models = draw(st.integers(1, 8))
    models = []
    for k in range(n_models):
        series = 0.5 + 0.1 * np.cumsum(rng.standard_normal(40))
        if draw(st.booleans()) or k == 0:
            p, d, q = draw(st.sampled_from(_ORDERS))
            m = ARIMA(p, d, q, maxiter=30)
        else:
            m = NaiveLast()
        try:
            m.fit(series)
        except (ConvergenceError, ForecastError):
            continue
        # advance the O(p+q+d) state a little so tails differ from the fit
        for v in rng.random(draw(st.integers(0, 3))):
            m.append(float(v))
        models.append(m)
    return models


@common
@given(fitted_fleet(), st.integers(1, 6))
def test_batch_forecast_bitwise_equals_scalar(models, h):
    if not models:
        return
    got = batch_forecast(models, h)
    for m, f in zip(models, got):
        np.testing.assert_array_equal(f, m.forecast(h))


@common
@given(fitted_fleet())
def test_batch_predict_one_bitwise_equals_scalar(models):
    if not models:
        return
    got = batch_predict_one(models)
    assert got == [m.predict_one() for m in models]


# --------------------------------------------------------------------- #
# fleet selector rounds: batched vs scalar predict/observe cycles
# --------------------------------------------------------------------- #
def _selector_fleet(seed, n_sel):
    """Two identical fleets of fitted selectors (mixed ARIMA + naive pool)."""
    def build():
        rng = np.random.default_rng(seed)
        fleet = []
        for _ in range(n_sel):
            series = np.clip(
                0.5 + 0.1 * np.cumsum(rng.standard_normal(30)), 0.0, 1.0
            )
            sel = DynamicModelSelector(
                {
                    "arima110": lambda: ARIMA(1, 1, 0, maxiter=30),
                    "naive": NaiveLast,
                },
                period=4,
                refit_every=1000,
            )
            try:
                sel.fit(series)
            except ConvergenceError:
                return None
            fleet.append(sel)
        return fleet
    return build(), build()


@common
@given(st.integers(0, 10**6), st.integers(1, 5), st.integers(2, 8))
def test_fleet_selector_rounds_bitwise(seed, n_sel, n_rounds):
    """Multi-round predict/observe: batched fleet == scalar loop, bitwise.

    Exercises the vectorized Eq. (14) arbitration with *non-empty* error
    windows, including windows shorter than and saturated at ``period``.
    """
    batched, scalar = _selector_fleet(seed, n_sel)
    if batched is None:
        return
    obs = np.random.default_rng(seed + 1).random((n_rounds, n_sel))
    for r in range(n_rounds):
        pa = fleet_predict_one(batched)
        pb = [s.predict_one() for s in scalar]
        assert pa == pb
        for a, b in zip(batched, scalar):
            assert a.best_model_name() == b.best_model_name()
            assert a._last_pred == b._last_pred
        for i, (a, b) in enumerate(zip(batched, scalar)):
            a.observe(float(obs[r, i]))
            b.observe(float(obs[r, i]))
    for a, b in zip(batched, scalar):
        for name in a.names:
            assert list(a._errors[name]) == list(b._errors[name])


@common
@given(st.integers(0, 10**6))
def test_fleet_selector_ragged_windows_fall_back(seed):
    """Uneven error windows take the scalar Eq. (14) path — and still agree."""
    batched, scalar = _selector_fleet(seed, 2)
    if batched is None:
        return
    obs = np.random.default_rng(seed + 1).random((3, 2))
    for r in range(3):
        fleet_predict_one(batched)
        for s in scalar:
            s.predict_one()
        for i, (a, b) in enumerate(zip(batched, scalar)):
            a.observe(float(obs[r, i]))
            b.observe(float(obs[r, i]))
    # desync one member's window in both fleets identically
    batched[0]._errors["naive"].popleft()
    scalar[0]._errors["naive"].popleft()
    assert fleet_predict_one(batched) == [s.predict_one() for s in scalar]
    for a, b in zip(batched, scalar):
        assert a.best_model_name() == b.best_model_name()


# --------------------------------------------------------------------- #
# vectorized ALERT gate
# --------------------------------------------------------------------- #
@common
@given(
    st.integers(0, 10**6),
    st.integers(1, 40),
    st.integers(1, 6),
    st.floats(0.05, 1.0),
)
def test_compute_alerts_bitwise_equals_per_row(seed, n, r, threshold):
    rng = np.random.default_rng(seed)
    # overshoots and negatives exercise the clip exactly like forecasters do
    profiles = rng.uniform(-0.3, 1.4, size=(n, r))
    got = compute_alerts(profiles, threshold)
    assert got.shape == (n,)
    for i in range(n):
        assert float(got[i]) == compute_alert(profiles[i], threshold)


@common
@given(st.integers(0, 10**6), st.integers(1, 20))
def test_compute_alerts_per_row_thresholds(seed, n):
    rng = np.random.default_rng(seed)
    profiles = rng.uniform(0.0, 1.2, size=(n, 4))
    thresholds = rng.uniform(0.1, 1.0, size=n)
    got = compute_alerts(profiles, thresholds)
    for i in range(n):
        assert float(got[i]) == compute_alert(profiles[i], float(thresholds[i]))


# --------------------------------------------------------------------- #
# SoA snapshot vs the Placement scalar queries
# --------------------------------------------------------------------- #
@common
@given(st.integers(0, 10**6))
def test_snapshot_matches_placement_queries(seed):
    cluster = fresh_cluster(seed)
    pl = cluster.placement
    # a few mutations so the snapshot is not just the initial layout
    rng = np.random.default_rng(seed)
    for _ in range(5):
        vm = int(rng.integers(0, cluster.num_vms))
        host = int(rng.integers(0, pl.num_hosts))
        try:
            pl.migrate(vm, host)
        except Exception:
            continue
    snap = FleetSnapshot(pl)
    hosts = np.arange(pl.num_hosts)
    np.testing.assert_array_equal(
        snap.free_capacity(hosts),
        np.asarray([pl.free_capacity(int(h)) for h in hosts]),
    )
    for host in range(pl.num_hosts):
        np.testing.assert_array_equal(snap.vms_on_host(host), pl.vms_on_host(host))
    for rack in range(pl.num_racks):
        np.testing.assert_array_equal(snap.vms_in_rack(rack), pl.vms_in_rack(rack))


# --------------------------------------------------------------------- #
# batched cost-matrix kernel vs the scalar Eq. (1) kernel
# --------------------------------------------------------------------- #
@common
@given(st.integers(0, 10**6), st.booleans())
def test_cost_rows_bitwise_equals_scalar(seed, cached):
    cluster = fresh_cluster(seed)
    cm = CostModel(cluster, cache=cached)
    oracle = CostModel(cluster, cache=False)
    rng = np.random.default_rng(seed)
    ids = rng.integers(0, cluster.num_vms, size=12).tolist()
    rows = cm.cost_rows(ids)
    assert rows.shape == (len(ids), cm.table.num_racks)
    for vm, row in zip(ids, rows):
        np.testing.assert_array_equal(row, oracle.migration_cost_vector(int(vm)))


@common
@given(st.integers(0, 10**6))
def test_cost_rows_dense_dependencies_take_scalar_path(seed):
    # degree >= 8 crosses numpy's pairwise-summation block: the batch
    # kernel must fall back to the scalar dependency reduction per row
    cluster = fresh_cluster(seed)
    deps = cluster.dependencies
    hub = 0
    for other in range(1, min(cluster.num_vms, 12)):
        if other not in deps.neighbors(hub):
            deps.add_pair(hub, other)
    assert len(deps.neighbors(hub)) >= 8
    cm = CostModel(cluster, cache=True)
    oracle = CostModel(cluster, cache=False)
    ids = list(range(min(cluster.num_vms, 12)))
    for vm, row in zip(ids, cm.cost_rows(ids)):
        np.testing.assert_array_equal(row, oracle.migration_cost_vector(vm))


@common
@given(st.integers(0, 10**6))
def test_prime_then_query_hits_without_recompute(seed):
    cluster = fresh_cluster(seed)
    cm = CostModel(cluster, cache=True)
    oracle = CostModel(cluster, cache=False)
    vms = list(range(min(cluster.num_vms, 10)))
    cm.prime_cost_vectors(vms)
    assert cm.cache_stats["primed"] == len(vms)
    assert cm.cache_stats["misses"] == 0
    for vm in vms:
        np.testing.assert_array_equal(
            cm.migration_cost_vector(vm), oracle.migration_cost_vector(vm)
        )
    assert cm.cache_stats["hits"] == len(vms)
    assert cm.cache_stats["misses"] == 0


# --------------------------------------------------------------------- #
# incremental cost cache vs a cold rebuild
# --------------------------------------------------------------------- #
@common
@given(st.integers(0, 10**6), st.integers(1, 12))
def test_incremental_cost_model_equals_rebuilt(seed, n_moves):
    cluster = fresh_cluster(seed)
    pl = cluster.placement
    warm = CostModel(cluster, cache=True)
    rng = np.random.default_rng(seed)
    probe = rng.integers(0, cluster.num_vms, size=8)
    for u in probe:
        warm.migration_cost_vector(int(u))
    for _ in range(n_moves):
        vm = int(rng.integers(0, cluster.num_vms))
        host = int(rng.integers(0, pl.num_hosts))
        try:
            pl.migrate(vm, host)
        except Exception:
            continue
        warm.sync_cache()
        cold = CostModel(cluster, cache=False)
        for u in list(probe) + [vm]:
            np.testing.assert_array_equal(
                warm.migration_cost_vector(int(u)),
                cold.migration_cost_vector(int(u)),
            )


@common
@given(st.integers(0, 10**6))
def test_incremental_cost_model_across_lost_restore(seed):
    cluster = fresh_cluster(seed)
    pl = cluster.placement
    warm = CostModel(cluster, cache=True)
    for u in range(min(cluster.num_vms, 12)):
        warm.migration_cost_vector(u)
    pl.mark_lost(0)
    warm.sync_cache()
    assert 0 not in warm._vec_cache  # dropped, not repaired
    pl.restore_lost(0)
    warm.sync_cache()
    cold = CostModel(cluster, cache=False)
    for u in range(min(cluster.num_vms, 12)):
        np.testing.assert_array_equal(
            warm.migration_cost_vector(u), cold.migration_cost_vector(u)
        )


# --------------------------------------------------------------------- #
# end to end: snapshot-planned engine vs the scalar oracle
# --------------------------------------------------------------------- #
@common
@given(alert_rounds())
def test_auto_mode_engine_is_byte_identical(case):
    """workers=-1 (snapshot-planned, auto-inlined) vs workers=0 (oracle)."""
    seed, rounds = case
    baseline_cluster = fresh_cluster(seed)
    baseline = run_variant(baseline_cluster, rounds, workers=0, cache=False)
    cluster = fresh_cluster(seed)
    got = run_variant(cluster, rounds, workers=-1, cache=True)
    assert got == baseline
    np.testing.assert_array_equal(
        cluster.placement.vm_host, baseline_cluster.placement.vm_host
    )
