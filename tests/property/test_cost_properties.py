"""Property-based tests on the cost/routing substrate."""

import networkx as nx
import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.costs.transmission import TransmissionCostTable
from repro.errors import TopologyError
from repro.migration.reroute import FlowTable
from repro.topology.base import NodeKind, Topology
from repro.topology.validate import is_connected

common = settings(
    max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


@st.composite
def random_fabrics(draw):
    """Connected random fabric: racks + switches with random links."""
    n_racks = draw(st.integers(2, 5))
    n_switch = draw(st.integers(1, 4))
    kinds = [NodeKind.TOR] * n_racks + [NodeKind.AGG] * n_switch
    topo = Topology("random", kinds)
    n = n_racks + n_switch
    # spanning chain through the switches guarantees connectivity
    order = list(range(n))
    rng_seed = draw(st.integers(0, 10**6))
    rng = np.random.default_rng(rng_seed)
    rng.shuffle(order)
    for a, b in zip(order, order[1:]):
        cap = float(rng.uniform(1.0, 10.0))
        topo.add_link(a, b, cap, float(rng.uniform(0.5, 3.0)))
    # extra random links
    extras = draw(st.integers(0, 6))
    for _ in range(extras):
        a, b = rng.integers(0, n, size=2)
        if a != b and not topo.has_edge(int(a), int(b)):
            topo.add_link(int(a), int(b), float(rng.uniform(1.0, 10.0)), 1.0)
    return topo


@common
@given(random_fabrics(), st.floats(0.5, 5.0))
def test_transmission_weight_matches_networkx(topo, ref_cap):
    """Selected path weights must equal networkx Dijkstra on same weights."""
    assert is_connected(topo)
    tab = TransmissionCostTable(topo, reference_capacity=ref_cap)
    lt = topo.links
    g = nx.Graph()
    g.add_nodes_from(range(topo.num_nodes))
    for i in range(len(lt)):
        w = ref_cap / lt.capacity[i] + 1.0  # delta=eta=1, B=C
        g.add_edge(int(lt.u[i]), int(lt.v[i]), weight=float(w))
    for src in range(topo.num_racks):
        dist = nx.single_source_dijkstra_path_length(g, src, weight="weight")
        for dst in range(topo.num_racks):
            assert tab.path_weight[src, dst] == pytest.approx(dist[dst], abs=1e-6)


@common
@given(random_fabrics())
def test_transmission_component_sums_consistent(topo):
    """δ·ref·Σ1/B + η·ΣB/C along selected paths == the path weight."""
    tab = TransmissionCostTable(topo, reference_capacity=3.0)
    comb = 3.0 * tab.sum_inv_b + tab.sum_util
    finite = np.isfinite(comb)
    np.testing.assert_allclose(
        comb[finite], tab.path_weight[finite], atol=1e-5
    )


@common
@given(random_fabrics())
def test_path_reconstruction_consistent_with_sums(topo):
    """Walking tab.path() and summing per-edge values reproduces the sums."""
    tab = TransmissionCostTable(topo, reference_capacity=2.0)
    lt = topo.links
    inv_b = {}
    for i in range(len(lt)):
        key = (int(lt.u[i]), int(lt.v[i]))
        inv_b[key] = inv_b[key[::-1]] = 1.0 / float(lt.capacity[i])
    r = topo.num_racks
    for src in range(r):
        for dst in range(r):
            if src == dst:
                continue
            p = tab.path(src, dst)
            total = sum(inv_b[(a, b)] for a, b in zip(p, p[1:]))
            assert total == pytest.approx(float(tab.sum_inv_b[src, dst]), abs=1e-5)


@common
@given(random_fabrics(), st.integers(0, 10**6))
def test_flow_table_load_conservation(topo, seed):
    """Total node load == Σ flows (rate × path length); removal restores 0."""
    rng = np.random.default_rng(seed)
    ft = FlowTable(topo)
    fids = []
    for _ in range(6):
        a, b = rng.integers(0, topo.num_racks, size=2)
        try:
            fids.append(ft.add_flow(0, int(a), int(b), float(rng.uniform(0.5, 2.0))))
        except TopologyError:
            pass
    expected = sum(f.rate * len(f.path) for f in ft.flows.values())
    assert ft.node_load.sum() == pytest.approx(expected)
    for fid in fids:
        ft.remove_flow(fid)
    np.testing.assert_allclose(ft.node_load, 0.0, atol=1e-12)
