"""`FleetSnapshot.from_shared` equals in-process construction, always.

The persistent planner workers never receive the placement on the wire:
the owner ships ``vm_host`` / ``host_used`` / ``host_alive`` /
``host_load`` into shared-memory segments each round, and a worker
builds its round snapshot zero-copy over the mapping
(:meth:`FleetSnapshot.from_shared`).  This suite holds the promise made
in that constructor's docstring: through *arbitrary* ship/repair cycles
— random migrations, host crashes and revivals, load re-measurements —
the shared-memory snapshot is value-identical to a plain
``FleetSnapshot(placement)`` built in the owner process after the same
mutations.  Both worker attachment modes are exercised: an adopted
placement (fork inheritance, arrays rebound to the segments) and the
proxy view over a stale fork copy.
"""

from multiprocessing import resource_tracker

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cluster import build_cluster
from repro.cluster.snapshot import FleetSnapshot
from repro.parallel.shm import SharedFleet
from repro.topology import build_fattree

common = settings(
    max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)

SEED = 2015


def _attach(fleet):
    """Same-process worker attach for tests.

    ``SharedFleet.attach`` unregisters the segments from the calling
    process's resource tracker (worker-process semantics: only the owner
    unlinks).  In-process the owner *is* the caller, so restore its
    registrations or the eventual unlink would warn about unknown names.
    """
    worker = SharedFleet.attach(fleet.spec)
    for name in fleet.spec["names"].values():
        try:
            resource_tracker.register(f"/{name}", "shared_memory")
        except Exception:
            pass
    return worker


def _cluster():
    return build_cluster(
        build_fattree(4),
        hosts_per_rack=3,
        fill_fraction=0.55,
        skew=0.8,
        seed=SEED,
        delay_sensitive_fraction=0.1,
    )


# one mutation per draw: (kind, a, b) interpreted against the placement
_mutation = st.tuples(
    st.sampled_from(["migrate", "kill", "revive", "load"]),
    st.integers(min_value=0, max_value=10_000),
    st.integers(min_value=0, max_value=10_000),
)


def _apply(placement, rng, kind, a, b):
    """Apply one legal mutation derived from the draw (no-op if impossible)."""
    if kind == "migrate":
        vm = a % placement.num_vms
        host = b % placement.num_hosts
        if (
            placement.host_alive[host]
            and placement.vm_host[vm] >= 0
            and placement.vm_host[vm] != host
            and placement.free_capacity(host) >= placement.vm_capacity[vm]
        ):
            placement.migrate(vm, host)
    elif kind == "kill":
        host = a % placement.num_hosts
        if placement.host_alive[host]:
            placement.disable_host(host)
    elif kind == "revive":
        host = a % placement.num_hosts
        if not placement.host_alive[host]:
            placement.enable_host(host)


def _assert_snapshots_equal(mine: FleetSnapshot, theirs: FleetSnapshot, placement):
    hosts = np.arange(placement.num_hosts, dtype=np.int64)
    np.testing.assert_array_equal(
        mine.free_capacity(hosts), theirs.free_capacity(hosts)
    )
    np.testing.assert_array_equal(mine.host_load, theirs.host_load)
    for host in range(placement.num_hosts):
        np.testing.assert_array_equal(
            mine.vms_on_host(host), theirs.vms_on_host(host)
        )
    for rack in range(placement.num_racks):
        np.testing.assert_array_equal(
            mine.vms_in_rack(rack), theirs.vms_in_rack(rack)
        )


def _run_cycles(mutation_rounds, adopt: bool):
    cluster = _cluster()
    owner_pl = cluster.placement
    worker_pl = owner_pl.clone()  # the fork-inherited copy, soon stale
    fleet = SharedFleet.create(owner_pl)
    worker_fleet = _attach(fleet)
    if adopt:
        worker_fleet.adopt(worker_pl)
    rng = np.random.default_rng(SEED)
    try:
        for muts in mutation_rounds:
            loads = rng.random(owner_pl.num_hosts)
            for kind, a, b in muts:
                _apply(owner_pl, rng, kind, a, b)
            fleet.ship(owner_pl, host_load=loads)
            mine = FleetSnapshot(owner_pl)
            theirs = FleetSnapshot.from_shared(worker_fleet, worker_pl)
            _assert_snapshots_equal(mine, theirs, owner_pl)
            np.testing.assert_array_equal(worker_fleet.host_load, loads)
    finally:
        worker_fleet.close()
        fleet.close()


@given(st.lists(st.lists(_mutation, max_size=8), min_size=1, max_size=5))
@common
def test_from_shared_matches_inprocess_adopted(mutation_rounds):
    _run_cycles(mutation_rounds, adopt=True)


@given(st.lists(st.lists(_mutation, max_size=8), min_size=1, max_size=5))
@common
def test_from_shared_matches_inprocess_proxy(mutation_rounds):
    _run_cycles(mutation_rounds, adopt=False)


def test_worker_views_are_read_only():
    cluster = _cluster()
    fleet = SharedFleet.create(cluster.placement)
    worker = _attach(fleet)
    try:
        for view in worker.views.values():
            assert not view.flags.writeable
        try:
            worker.views["vm_host"][0] = 0
            raised = False
        except ValueError:
            raised = True
        assert raised
    finally:
        worker.close()
        fleet.close()
