"""Property tests: interval coverage and fallback hysteresis."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.forecast.arima import ARIMA
from repro.forecast.naive import NaiveLast

common = settings(
    max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


def _walk_forward_coverage(model_factory, y, train_len, alpha):
    """Fraction of one-step bands that contain the realized value."""
    model = model_factory().fit(y[:train_len])
    hits = 0
    steps = 0
    for t in range(train_len, len(y)):
        iv = model.predict_one_interval(alpha=alpha)
        assert iv.lower <= iv.mean <= iv.upper
        if iv.lower <= y[t] <= iv.upper:
            hits += 1
        steps += 1
        model.append(float(y[t]))
    return hits / steps


@common
@given(
    st.floats(-0.6, 0.6),
    st.integers(0, 10**6),
    st.sampled_from([0.1, 0.2]),
)
def test_arima_coverage_tracks_nominal_on_ar1(phi, seed, alpha):
    """Well-specified AR(1): empirical coverage near the 1 - alpha nominal.

    The CSS variance estimate and normal quantiles are approximations, so
    the assertion is a sanity corridor, not a calibration proof: coverage
    must not collapse (bands too narrow to mean anything) and the band
    must not be trivially infinite.
    """
    rng = np.random.default_rng(seed)
    n, train = 260, 120
    y = np.empty(n)
    y[0] = 0.0
    eps = rng.normal(0.0, 0.1, size=n)
    for t in range(1, n):
        y[t] = phi * y[t - 1] + eps[t]
    coverage = _walk_forward_coverage(
        lambda: ARIMA(1, 0, 0, maxiter=60), y, train, alpha
    )
    nominal = 1.0 - alpha
    assert coverage >= nominal - 0.25
    # a degenerate everything-covered band is only plausible at high
    # nominal coverage; at 80% nominal the band must exclude *something*
    if alpha >= 0.2:
        assert coverage <= 1.0


@common
@given(st.integers(0, 10**6), st.sampled_from([0.1, 0.2, 0.4]))
def test_naive_coverage_on_random_walk(seed, alpha):
    """NaiveLast trailing-error quantiles calibrate on their own model."""
    rng = np.random.default_rng(seed)
    y = np.cumsum(rng.normal(0.0, 0.2, size=300))
    coverage = _walk_forward_coverage(NaiveLast, y, 150, alpha)
    assert coverage >= (1.0 - alpha) - 0.2


@common
@given(st.integers(0, 10**6))
def test_tighter_alpha_never_narrows_naive_band(seed):
    rng = np.random.default_rng(seed)
    y = np.cumsum(rng.normal(0.0, 0.5, size=120))
    m = NaiveLast().fit(y)
    widths = [
        m.predict_one_interval(alpha=a).width for a in (0.5, 0.2, 0.05)
    ]
    assert widths[0] <= widths[1] + 1e-12 <= widths[2] + 2e-12


class _ScriptedPredictive:
    """Alert source whose per-round forecast error is scripted."""

    def __init__(self, workload, errors):
        self.workload = workload
        self.errors = errors
        self.last_predicted = None

    def alerts_at(self, t):
        load = self.workload.host_load(t)
        self.last_predicted = load + self.errors[t]
        return [], {}

    def observe(self, t):
        pass


class _FlatWorkload:
    def __init__(self, hosts=4):
        self._load = np.full(hosts, 0.5)

    def host_load(self, t):
        return self._load.copy()


@common
@given(
    st.lists(st.floats(0.0, 0.5), min_size=24, max_size=24),
    st.integers(2, 5),
    st.integers(1, 4),
)
def test_fallback_hysteresis_invariants(errs, window, recovery):
    """Trigger/recovery state machine invariants on arbitrary error runs.

    Degradation requires a *full* window above the bound's mean; recovery
    requires exactly `recovery` consecutive calm rounds; transitions
    always alternate reactive → predictive → reactive...
    """
    from repro.sim.fallback import FallbackManager

    class _SilentReactive:
        def alerts_at(self, t):
            return [], {}

    bound = 0.15
    wl = _FlatWorkload()
    mgr = FallbackManager(
        wl,
        _ScriptedPredictive(wl, errs),
        _SilentReactive(),
        error_bound=bound,
        window=window,
        recovery_rounds=recovery,
    )
    modes = []
    for t in range(len(errs)):
        mgr.alerts_at(t)
        was = mgr.degraded
        mgr.observe(t)
        modes.append(mgr.degraded)
        if not was and mgr.degraded:
            # can only trip on a full window with mean above the bound
            assert len(mgr._errors) == window
            assert mgr.trailing_error > bound
        if was and not mgr.degraded:
            assert mgr._calm >= recovery
    # transitions counter equals the number of mode flips
    flips = sum(
        1 for a, b in zip([False] + modes, modes) if a != b
    )
    assert mgr.transitions == flips
