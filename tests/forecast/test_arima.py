"""ARIMA estimation and forecasting tests."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, ForecastError
from repro.forecast.arima import ARIMA, _css_residuals, _max_inverse_root
from repro.traces.noise import white_noise


def simulate_arma(n, phi, theta, c=0.0, sigma=1.0, seed=0):
    rng = np.random.default_rng(seed)
    e = rng.normal(0, sigma, n)
    w = np.zeros(n)
    p, q = len(phi), len(theta)
    for t in range(max(p, q), n):
        w[t] = c + e[t]
        for i in range(p):
            w[t] += phi[i] * w[t - 1 - i]
        for j in range(q):
            w[t] += theta[j] * e[t - 1 - j]
    return w


class TestInverseRoots:
    def test_ar1(self):
        assert _max_inverse_root(np.array([0.6]), "ar") == pytest.approx(0.6)

    def test_explosive_ar1(self):
        assert _max_inverse_root(np.array([1.5]), "ar") == pytest.approx(1.5)

    def test_ma1(self):
        assert _max_inverse_root(np.array([0.4]), "ma") == pytest.approx(0.4)

    def test_empty(self):
        assert _max_inverse_root(np.empty(0), "ar") == 0.0


class TestResiduals:
    def test_white_noise_recovered_from_true_params(self):
        phi, theta = [0.6], [0.3]
        w = simulate_arma(3000, phi, theta, c=0.5, seed=1)
        e = _css_residuals(w, 0.5, np.array(phi), np.array(theta))
        # residuals should behave like the true innovations: unit variance,
        # no autocorrelation
        assert abs(e.var() - 1.0) < 0.1
        r1 = np.corrcoef(e[:-1], e[1:])[0, 1]
        assert abs(r1) < 0.05

    def test_pure_ar_matches_direct(self):
        w = simulate_arma(500, [0.5], [], seed=2)
        e = _css_residuals(w, 0.0, np.array([0.5]), np.empty(0))
        direct = w[1:] - 0.5 * w[:-1]
        np.testing.assert_allclose(e, direct, atol=1e-12)


class TestFit:
    def test_recovers_arma11(self):
        w = simulate_arma(4000, [0.6], [0.3], c=0.2, seed=3)
        y = np.cumsum(w)
        m = ARIMA(1, 1, 1).fit(y)
        assert m.phi_[0] == pytest.approx(0.6, abs=0.08)
        assert m.theta_[0] == pytest.approx(0.3, abs=0.08)
        assert m.sigma2_ == pytest.approx(1.0, abs=0.1)

    def test_recovers_ar2(self):
        w = simulate_arma(4000, [0.5, 0.2], [], seed=4)
        m = ARIMA(2, 0, 0).fit(w)
        assert m.phi_[0] == pytest.approx(0.5, abs=0.08)
        assert m.phi_[1] == pytest.approx(0.2, abs=0.08)

    def test_fitted_params_stationary_invertible(self):
        w = simulate_arma(800, [0.9], [0.8], seed=5)
        m = ARIMA(1, 0, 1).fit(w)
        assert _max_inverse_root(m.phi_, "ar") < 1.0
        assert _max_inverse_root(m.theta_, "ma") < 1.0

    def test_constant_series(self):
        m = ARIMA(1, 0, 1).fit(np.full(50, 3.0))
        np.testing.assert_allclose(m.forecast(3), 3.0)

    def test_linear_trend_with_d1(self):
        y = 2.0 * np.arange(100) + 5
        m = ARIMA(0, 1, 0).fit(y)
        np.testing.assert_allclose(m.forecast(3), [205, 207, 209], atol=1e-6)

    def test_too_short_series_raises(self):
        with pytest.raises(ForecastError):
            ARIMA(2, 1, 2).fit(np.ones(5))

    def test_invalid_orders_raise(self):
        with pytest.raises(ConfigurationError):
            ARIMA(-1, 0, 0)


class TestForecast:
    def test_requires_fit(self):
        with pytest.raises(ForecastError):
            ARIMA(1, 0, 0).forecast(1)

    def test_horizon_validation(self):
        m = ARIMA(1, 0, 0).fit(white_noise(100, seed=0))
        with pytest.raises(ForecastError):
            m.forecast(0)

    def test_ar1_forecast_decays_to_mean(self):
        w = simulate_arma(3000, [0.7], [], c=0.0, seed=6)
        m = ARIMA(1, 0, 0, include_constant=False).fit(w)
        f = m.forecast(50)
        assert abs(f[-1]) < abs(f[0]) or abs(f[0]) < 0.05
        assert abs(f[-1]) < 0.1 * max(abs(w).max(), 1.0)

    def test_kstep_consistency(self):
        """k-step forecast must equal iterating 1-step with own predictions."""
        w = simulate_arma(1000, [0.6], [0.2], seed=7)
        y = np.cumsum(w)
        m = ARIMA(1, 1, 1).fit(y)
        f5 = m.forecast(5)
        # manual recursion on the differenced scale
        f1 = m.forecast(1)
        assert f5[0] == pytest.approx(f1[0], abs=1e-9)
        assert np.isfinite(f5).all()

    def test_interval_contains_mean_and_widens(self):
        w = simulate_arma(1000, [0.5], [0.3], seed=8)
        y = np.cumsum(w)
        m = ARIMA(1, 1, 1).fit(y)
        mean, lo, hi = m.forecast_interval(10)
        assert ((lo < mean) & (mean < hi)).all()
        widths = hi - lo
        assert (np.diff(widths) > -1e-9).all()  # nondecreasing uncertainty

    def test_append_shifts_forecast(self):
        w = simulate_arma(500, [0.5], [], seed=9)
        m = ARIMA(1, 0, 0).fit(w)
        f_before = m.predict_one()
        m.append(w[-1] + 5.0)  # a large surprise
        f_after = m.predict_one()
        assert f_after != pytest.approx(f_before)

    def test_append_rejects_nan(self):
        m = ARIMA(1, 0, 0).fit(white_noise(100, seed=1))
        with pytest.raises(ForecastError):
            m.append(float("nan"))


class TestInformationCriteria:
    def test_aic_prefers_true_order(self):
        w = simulate_arma(3000, [0.6], [], seed=10)
        a1 = ARIMA(1, 0, 0).fit(w).aic()
        a3 = ARIMA(3, 0, 3).fit(w).aic()
        assert a1 < a3 + 20  # parsimony should win or come close

    def test_loglik_finite(self):
        m = ARIMA(1, 0, 1).fit(white_noise(200, seed=11))
        assert np.isfinite(m.loglikelihood())
        assert np.isfinite(m.aic())


class TestIncrementalState:
    """The O(1) append state must match refiltering the full series."""

    @pytest.mark.parametrize("order", [(1, 0, 0), (1, 1, 1), (2, 1, 2), (0, 2, 1)])
    def test_append_equals_refilter(self, order):
        p, d, q = order
        rng = np.random.default_rng(7)
        w = simulate_arma(600, [0.5, 0.2][:p], [0.3, 0.1][:q], seed=11)
        y = w
        for _ in range(d):
            y = np.cumsum(y)
        m = ARIMA(p, d, q).fit(y[:400])
        for v in y[400:550]:
            m.append(float(v))
        f_inc = m.forecast(4)
        # rebuild the state from scratch with identical parameters
        clone = ARIMA(p, d, q)
        clone.const_, clone.phi_, clone.theta_ = m.const_, m.phi_, m.theta_
        clone.sigma2_ = m.sigma2_
        clone.y_ = y[:550].copy()
        clone._fitted = True
        clone._init_state()
        f_full = clone.forecast(4)
        np.testing.assert_allclose(f_inc, f_full, atol=1e-9)

    def test_many_appends_stay_stable(self):
        w = simulate_arma(2000, [0.6], [0.3], seed=12)
        y = np.cumsum(w)
        m = ARIMA(1, 1, 1).fit(y[:300])
        for v in y[300:]:
            m.append(float(v))
        f = m.forecast(3)
        assert np.isfinite(f).all()
        # forecast stays anchored near the last level
        assert abs(f[0] - y[-1]) < 10 * np.abs(np.diff(y)).max()

    def test_append_speed_independent_of_history(self):
        import time

        w = simulate_arma(6000, [0.5], [0.2], seed=13)
        y = np.cumsum(w)
        m = ARIMA(1, 1, 1).fit(y[:500])
        t0 = time.perf_counter()
        for v in y[500:1000]:
            m.predict_one()
            m.append(float(v))
        short_hist = time.perf_counter() - t0
        t0 = time.perf_counter()
        for v in y[5500:6000]:
            m.predict_one()
            m.append(float(v))
        long_hist = time.perf_counter() - t0
        # O(1) per tick: 10x more history must not mean ~10x slower ticks
        assert long_hist < 5 * short_hist + 0.05
