"""Seasonal ARIMA tests."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, ForecastError
from repro.forecast import ARIMA, SeasonalARIMA, mse
from repro.forecast.sarima import seasonal_difference, seasonal_undifference
from repro.traces import weekly_traffic_trace


class TestSeasonalDifference:
    def test_removes_pure_seasonality(self):
        period = 12
        y = np.tile(np.arange(period, dtype=float), 6)
        d = seasonal_difference(y, period)
        np.testing.assert_allclose(d, 0.0)

    def test_length(self):
        y = np.arange(40.0)
        assert seasonal_difference(y, 7, 1).shape == (33,)
        assert seasonal_difference(y, 7, 2).shape == (26,)

    def test_order_zero_is_copy(self):
        y = np.arange(10.0)
        d = seasonal_difference(y, 3, 0)
        np.testing.assert_array_equal(d, y)

    def test_too_short_raises(self):
        with pytest.raises(ForecastError):
            seasonal_difference(np.arange(5.0), 7)

    def test_roundtrip_via_undifference(self):
        rng = np.random.default_rng(0)
        period = 6
        y = rng.normal(size=40).cumsum()
        tail = y[-period:].copy()
        # next-5 values diffed then integrated must reproduce them
        future = rng.normal(size=5).cumsum() + y[-1]
        diffed = np.empty(5)
        merged = np.concatenate([y, future])
        for k in range(5):
            diffed[k] = merged[len(y) + k] - merged[len(y) + k - period]
        rebuilt = seasonal_undifference(diffed, [tail], period)
        np.testing.assert_allclose(rebuilt, future, atol=1e-10)


class TestSeasonalARIMA:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SeasonalARIMA(period=1)
        with pytest.raises(ConfigurationError):
            SeasonalARIMA(seasonal_order=-1)

    def test_pure_seasonal_signal_predicted_exactly(self):
        period = 24
        base = np.sin(2 * np.pi * np.arange(period) / period)
        y = np.tile(base, 8)
        m = SeasonalARIMA(0, 0, 0, period=period, include_constant=False).fit(y)
        f = m.forecast(period)
        np.testing.assert_allclose(f, base, atol=1e-6)

    def test_long_horizon_beats_plain_arima(self):
        """The k-step-ahead case the paper needs seasonality for."""
        y = weekly_traffic_trace(seed=3)
        h = 72
        errs_s, errs_a = [], []
        for start in range(600, 850, 72):
            actual = y[start : start + h]
            errs_s.append(
                mse(actual, SeasonalARIMA(1, 0, 1, period=144).fit(y[:start]).forecast(h))
            )
            errs_a.append(mse(actual, ARIMA(1, 1, 1).fit(y[:start]).forecast(h)))
        assert np.mean(errs_s) < 0.5 * np.mean(errs_a)

    def test_append_consistent_with_refit(self):
        y = weekly_traffic_trace(seed=5)
        m = SeasonalARIMA(1, 0, 0, period=144).fit(y[:600])
        for v in y[600:620]:
            m.append(float(v))
        f_append = m.forecast(3)
        # appended state must track the series: forecast near actual scale
        actual = y[620:623]
        assert np.abs(f_append - actual).max() < 4 * y.std()
        # tails must hold the latest `period` observations
        np.testing.assert_allclose(m._tails[0], y[620 - 144 : 620], atol=1e-12)

    def test_forecast_requires_fit(self):
        with pytest.raises(ForecastError):
            SeasonalARIMA().forecast(1)

    def test_horizon_beyond_one_period(self):
        y = weekly_traffic_trace(seed=7)
        m = SeasonalARIMA(1, 0, 1, period=144).fit(y[:600])
        f = m.forecast(300)  # > 2 periods
        assert f.shape == (300,)
        assert np.isfinite(f).all()

    def test_seasonal_order_zero_equals_inner_arima(self):
        y = weekly_traffic_trace(seed=9)[:400]
        a = SeasonalARIMA(1, 1, 1, period=144, seasonal_order=0).fit(y).forecast(5)
        b = ARIMA(1, 1, 1).fit(y).forecast(5)
        np.testing.assert_allclose(a, b, atol=1e-9)
