"""Fast CSS-kernel paths must agree bitwise with the reference kernels.

The CSS objective runs ~20 times per fit and a paper-scale fleet refits
thousands of times per managed run, so ``_css_residuals`` and
``_max_inverse_root`` shortcut the low orders every fleet monitor uses.
Anything short of bit-identity would silently perturb every optimizer
trajectory, so the shortcuts are held to exact equality with the
general-order reference implementations.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.forecast.arima import (
    _css_residuals,
    _css_residuals_ref,
    _max_inverse_root,
    _max_inverse_root_ref,
)

finite = st.floats(-5.0, 5.0, allow_nan=False, allow_infinity=False)
coeff = st.floats(-0.99, 0.99, allow_nan=False)

# Below dgeev's scaling threshold (smlnum = sqrt(safmin)/eps ~ 6.7e-139)
# the eigenvalue route rescales the 1x1 companion matrix and its final
# multiply can round the last ULP, so np.roots itself is up to 1 ULP off
# the exact answer |c| there.  The closed form is exact at every
# magnitude; bit-identity with the reference holds wherever LAPACK is
# exact, which is everything an optimizer step can produce.
root_coeff = st.one_of(
    st.just(0.0),
    st.floats(1e-130, 4.0, allow_nan=False),
    st.floats(-4.0, -1e-130, allow_nan=False),
)


@settings(max_examples=200, deadline=None)
@given(
    st.lists(finite, min_size=4, max_size=80),
    finite,
    st.lists(coeff, min_size=0, max_size=1),
    st.lists(coeff, min_size=0, max_size=3),
)
def test_css_residuals_fast_path_bit_identical(w, c, phi, theta):
    w = np.asarray(w)
    phi = np.asarray(phi)
    theta = np.asarray(theta)
    fast = _css_residuals(w, c, phi, theta)
    ref = _css_residuals_ref(w, c, phi, theta)
    assert fast.shape == ref.shape
    assert np.array_equal(fast, ref)  # exact, not approx


@settings(max_examples=200, deadline=None)
@given(st.lists(root_coeff, min_size=0, max_size=1), st.sampled_from(["ar", "ma"]))
def test_max_inverse_root_fast_path_bit_identical(coeffs, kind):
    coeffs = np.asarray(coeffs)
    assert _max_inverse_root(coeffs, kind) == _max_inverse_root_ref(coeffs, kind)


def test_max_inverse_root_below_lapack_scaling_threshold():
    """In the sub-smlnum regime the fast path is *exact* while the
    reference may round its rescaling by 1 ULP.  Both sides of any
    threshold comparison the fit performs (0.98, the wall limit, 1.0)
    are unaffected at such magnitudes, so fits stay bit-identical."""
    for c in (4.814190176953802e-297, 1e-150, -3e-200, 5e-324):
        arr = np.asarray([c])
        fast = _max_inverse_root(arr, "ar")
        ref = _max_inverse_root_ref(arr, "ar")
        assert fast == abs(c)  # the closed form is the exact answer
        assert ref == fast or np.nextafter(ref, fast) == fast  # <= 1 ULP off
        assert (fast < 0.98) == (ref < 0.98)


def test_higher_orders_delegate_to_reference():
    rng = np.random.default_rng(3)
    w = rng.standard_normal(60)
    phi = np.array([0.4, -0.2])
    theta = np.array([0.3, 0.1])
    assert np.array_equal(
        _css_residuals(w, 0.1, phi, theta), _css_residuals_ref(w, 0.1, phi, theta)
    )
    assert _max_inverse_root(phi, "ar") == _max_inverse_root_ref(phi, "ar")
