"""NARNET training and prediction tests."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, ForecastError
from repro.forecast.metrics import mse
from repro.forecast.narnet import NARNET
from repro.traces.nonlinear import mackey_glass


class TestConstruction:
    def test_rejects_bad_shapes(self):
        with pytest.raises(ConfigurationError):
            NARNET(ni=0)
        with pytest.raises(ConfigurationError):
            NARNET(nh=0)
        with pytest.raises(ConfigurationError):
            NARNET(restarts=0)
        with pytest.raises(ConfigurationError):
            NARNET(l2=-1.0)


class TestGradient:
    def test_analytic_gradient_matches_finite_difference(self):
        """The backprop inside fit() must match numeric differentiation."""
        net = NARNET(ni=3, nh=4, l2=1e-3, restarts=1, seed=0, maxiter=1)
        rng = np.random.default_rng(0)
        y = rng.normal(size=40)
        # reach into the fit closure by replicating it here
        from repro.forecast.lag import lag_matrix

        z = (y - y.mean()) / y.std()
        X, t = lag_matrix(z, 3)
        m = X.shape[0]

        def loss(x):
            w1, b1, w2, b2 = net._unpack(x)
            h = np.tanh(X @ w1.T + b1)
            r = h @ w2 + b2 - t
            out = 0.5 * float(r @ r) / m
            out += 0.5 * net.l2 * (float((w1 * w1).sum()) + float(w2 @ w2))
            return out

        def grad_analytic(x):
            w1, b1, w2, b2 = net._unpack(x)
            h = np.tanh(X @ w1.T + b1)
            r = h @ w2 + b2 - t
            dy = r / m
            g_b2 = float(dy.sum())
            g_w2 = h.T @ dy + net.l2 * w2
            dh = np.outer(dy, w2) * (1.0 - h * h)
            g_w1 = dh.T @ X + net.l2 * w1
            g_b1 = dh.sum(axis=0)
            return np.concatenate([g_w1.ravel(), g_b1, g_w2, [g_b2]])

        x0 = rng.normal(0, 0.5, net._n_params())
        g = grad_analytic(x0)
        eps = 1e-6
        for i in range(0, len(x0), 5):
            xp = x0.copy()
            xp[i] += eps
            xm = x0.copy()
            xm[i] -= eps
            num = (loss(xp) - loss(xm)) / (2 * eps)
            assert g[i] == pytest.approx(num, abs=1e-5)


class TestFit:
    def test_learns_deterministic_nonlinear_map(self):
        # y_t = sin(y_{t-1}) recursion is exactly learnable
        y = np.empty(300)
        y[0] = 0.9
        for t in range(1, 300):
            y[t] = np.sin(2.5 * y[t - 1])
        net = NARNET(ni=2, nh=12, restarts=2, seed=1, maxiter=400).fit(y[:250])
        pred = net.fitted_values()
        assert mse(y[2:250], pred) < 1e-3

    def test_beats_linear_on_mackey_glass(self):
        from repro.forecast.arima import ARIMA

        x = mackey_glass(900, seed=2)
        train, test_start = x[:700], 700
        net = NARNET(ni=8, nh=16, restarts=2, seed=3).fit(train)
        ar = ARIMA(2, 0, 1).fit(train)
        # walk-forward one-step on the test span
        errs_net, errs_ar = [], []
        for t in range(test_start, 800):
            errs_net.append(x[t] - net.predict_one())
            errs_ar.append(x[t] - ar.predict_one())
            net.append(x[t])
            ar.append(x[t])
        assert np.mean(np.square(errs_net)) < np.mean(np.square(errs_ar))

    def test_constant_series(self):
        net = NARNET(ni=4, nh=8, seed=4).fit(np.full(64, 2.5))
        np.testing.assert_allclose(net.forecast(3), 2.5, atol=1e-9)

    def test_deterministic_given_seed(self):
        x = mackey_glass(300, seed=5)
        a = NARNET(ni=6, nh=8, restarts=2, seed=6).fit(x).forecast(5)
        b = NARNET(ni=6, nh=8, restarts=2, seed=6).fit(x).forecast(5)
        np.testing.assert_array_equal(a, b)

    def test_too_short_raises(self):
        with pytest.raises(ForecastError):
            NARNET(ni=8, nh=20).fit(np.ones(10))


class TestForecast:
    def test_closed_loop_horizon(self):
        x = mackey_glass(400, seed=7)
        net = NARNET(ni=6, nh=10, restarts=1, seed=8).fit(x)
        f = net.forecast(20)
        assert f.shape == (20,)
        assert np.isfinite(f).all()
        # closed-loop forecasts should stay within a sane envelope
        assert f.min() > x.min() - 3 * x.std()
        assert f.max() < x.max() + 3 * x.std()

    def test_append_without_refit(self):
        x = mackey_glass(300, seed=9)
        net = NARNET(ni=4, nh=8, restarts=1, seed=10).fit(x[:250])
        w1_before = net.w1_.copy()
        for v in x[250:260]:
            net.append(float(v))
        np.testing.assert_array_equal(net.w1_, w1_before)  # no refit
        assert net.y_.shape[0] == 260

    def test_requires_fit(self):
        with pytest.raises(ForecastError):
            NARNET().forecast(1)


class TestEarlyStopping:
    def test_validation_fraction_validated(self):
        with pytest.raises(ConfigurationError):
            NARNET(validation_fraction=0.95)
        with pytest.raises(ConfigurationError):
            NARNET(validation_fraction=-0.1)

    def test_val_loss_recorded(self):
        x = mackey_glass(400, seed=20)
        net = NARNET(
            ni=6, nh=8, restarts=1, seed=21, validation_fraction=0.2
        ).fit(x)
        assert np.isfinite(net.val_loss_)
        assert net.val_loss_ >= 0

    def test_early_stopping_never_much_worse(self):
        """Held-out one-step error with early stopping stays competitive."""
        x = mackey_glass(500, seed=22)
        train, test = x[:400], x[400:]

        def holdout_mse(net):
            net.fit(train)
            errs = []
            for v in test:
                errs.append(v - net.predict_one())
                net.append(float(v))
            return float(np.mean(np.square(errs)))

        plain = holdout_mse(NARNET(ni=6, nh=12, restarts=2, seed=23))
        early = holdout_mse(
            NARNET(ni=6, nh=12, restarts=2, seed=23, validation_fraction=0.2)
        )
        assert early <= 2.0 * plain

    def test_tiny_history_with_validation_raises(self):
        from repro.errors import ConvergenceError, ForecastError

        with pytest.raises((ConvergenceError, ForecastError)):
            NARNET(ni=8, nh=8, validation_fraction=0.8).fit(np.sin(np.arange(30.0)))
