"""Refit determinism: grouped/pooled dispatch must not perturb RNG streams.

A pool member seeded with a *shared* ``numpy.random.Generator`` draws from
that stream during ``fit``.  ``_refit_all`` dispatches members grouped by
model class (and optionally over a thread pool), so without pinning, the
order members consume the shared stream would depend on grouping and
scheduling — silently changing fitted parameters between worker settings.
The selector pins a child substream per member, serially in pool order,
before any dispatch; these tests lock that contract in.
"""

import numpy as np
import pytest

from repro.forecast.arima import ARIMA
from repro.forecast.narnet import NARNET
from repro.forecast.selection import DynamicModelSelector


def _series(n=80, seed=5):
    rng = np.random.default_rng(seed)
    t = np.arange(n)
    return 0.5 + 0.3 * np.sin(2 * np.pi * t / 12) + 0.02 * rng.standard_normal(n)


def _shared_gen_pool(gen):
    """Mixed-class pool whose NARNET members share one Generator.

    The mixed classes matter: class-grouped dispatch interleaves the pool
    order (ARIMA members first), which is exactly the reordering that
    would corrupt a shared stream without per-member pinning.
    """
    return {
        "narnetA": lambda: NARNET(ni=4, nh=4, restarts=1, seed=gen, maxiter=30),
        "arima110": lambda: ARIMA(1, 1, 0, maxiter=40),
        "narnetB": lambda: NARNET(ni=6, nh=4, restarts=1, seed=gen, maxiter=30),
    }


def _run(workers: int, seed: int = 42) -> list:
    gen = np.random.default_rng(seed)
    sel = DynamicModelSelector(
        _shared_gen_pool(gen),
        period=10,
        refit_every=15,  # the observe loop below triggers pooled refits
        workers=workers,
    )
    y = _series()
    sel.fit(y[:48])
    preds = []
    for v in y[48:]:
        preds.append(sel.predict_one())
        sel.observe(float(v))
    return preds


class TestSharedStreamPinning:
    def test_serial_is_repeatable(self):
        assert _run(0) == _run(0)

    def test_pooled_matches_serial(self):
        # the pinned substreams make worker count invisible to the fits
        assert _run(4) == _run(0)

    def test_pin_draws_in_pool_order(self):
        # two selectors over the same shared stream: member substreams are
        # split off serially in pool order, so each member's draws are a
        # pure function of (seed, position), never of execution order
        gen_a = np.random.default_rng(7)
        gen_b = np.random.default_rng(7)
        sel_a = DynamicModelSelector(_shared_gen_pool(gen_a), workers=0)
        sel_b = DynamicModelSelector(_shared_gen_pool(gen_b), workers=3)
        y = _series(seed=9)
        sel_a.fit(y)
        sel_b.fit(y)
        assert sel_a.predict_one() == sel_b.predict_one()
        for name in sel_a.names:
            assert sel_a._last_pred[name] == sel_b._last_pred[name]

    def test_integer_seeds_untouched(self):
        # int-seeded members never depended on order; pinning leaves them be
        pool = {
            "n1": lambda: NARNET(ni=4, nh=4, restarts=1, seed=11, maxiter=30),
            "arima": lambda: ARIMA(1, 1, 0, maxiter=40),
        }
        a = DynamicModelSelector(pool, workers=0)
        b = DynamicModelSelector(pool, workers=4)
        y = _series(seed=3)
        a.fit(y)
        b.fit(y)
        assert a.predict_one() == b.predict_one()
