"""Backtesting API tests."""

import numpy as np
import pytest

from repro.errors import ForecastError
from repro.forecast import ARIMA, NaiveLast, SeasonalARIMA
from repro.forecast.evaluation import backtest, compare_models, horizon_curve
from repro.traces import weekly_traffic_trace


class TestBacktest:
    def test_perfect_trend(self):
        y = np.arange(120, dtype=float)
        res = backtest(lambda: ARIMA(0, 1, 0), y, 60, horizon=1)
        assert res.mse == pytest.approx(0.0, abs=1e-10)
        assert res.predictions.shape == res.actuals.shape

    def test_naive_alignment(self):
        rng = np.random.default_rng(0)
        y = rng.normal(size=80)
        res = backtest(lambda: NaiveLast(), y, 40, horizon=1)
        # one-step naive prediction at origin t is y[t-1]
        np.testing.assert_allclose(res.predictions, y[39:-1])
        np.testing.assert_allclose(res.actuals, y[40:])

    def test_horizon_alignment(self):
        y = np.arange(100, dtype=float)
        res = backtest(lambda: ARIMA(0, 1, 0), y, 50, horizon=5)
        np.testing.assert_allclose(res.actuals, y[54:])
        assert res.mse == pytest.approx(0.0, abs=1e-9)

    def test_stride_thins_origins(self):
        y = np.arange(100, dtype=float)
        res1 = backtest(lambda: NaiveLast(), y, 50, stride=1)
        res5 = backtest(lambda: NaiveLast(), y, 50, stride=5)
        assert len(res5.predictions) == (len(res1.predictions) + 4) // 5

    def test_bias_sign(self):
        y = np.arange(100, dtype=float)
        res = backtest(lambda: NaiveLast(), y, 50, horizon=1)
        assert res.bias == pytest.approx(1.0)  # naive lags a rising trend

    def test_refit_and_history_window(self):
        y = weekly_traffic_trace(seed=1)[:500]
        res = backtest(
            lambda: ARIMA(1, 1, 1), y, 400, refit_every=20, max_history=200
        )
        assert np.isfinite(res.mse)

    def test_validation(self):
        y = np.arange(20.0)
        with pytest.raises(ForecastError):
            backtest(lambda: NaiveLast(), y, 25)
        with pytest.raises(ForecastError):
            backtest(lambda: NaiveLast(), y, 10, horizon=0)
        with pytest.raises(ForecastError):
            backtest(lambda: NaiveLast(), y, 19, horizon=5)


class TestHorizonCurve:
    def test_degradation_measured(self):
        y = weekly_traffic_trace(seed=2)[:700]
        curve = horizon_curve(
            lambda: ARIMA(1, 1, 1), y, 550, horizons=[1, 24], stride=12
        )
        assert set(curve) == {1, 24}
        assert curve[24].mse > curve[1].mse  # recursive degradation

    def test_empty_horizons_rejected(self):
        with pytest.raises(ForecastError):
            horizon_curve(lambda: NaiveLast(), np.arange(50.0), 25, horizons=[])


class TestCompareModels:
    def test_ranked_output(self):
        y = weekly_traffic_trace(seed=3)[:600]
        rows = compare_models(
            {
                "arima": lambda: ARIMA(1, 1, 1),
                "naive": lambda: NaiveLast(),
                "sarima": lambda: SeasonalARIMA(1, 0, 1, period=144),
            },
            y,
            450,
            stride=4,
        )
        assert [set(r) for r in rows] == [{"model", "mse", "rmse", "mae", "bias"}] * 3
        mses = [r["mse"] for r in rows]
        assert mses == sorted(mses)
        assert rows[0]["mse"] < rows[-1]["mse"]

    def test_empty_zoo_rejected(self):
        with pytest.raises(ForecastError):
            compare_models({}, np.arange(50.0), 25)
