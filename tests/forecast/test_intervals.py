"""Prediction intervals + the confidence-aware selector (and its bugfixes)."""

import numpy as np
import pytest

from repro.errors import ForecastError
from repro.forecast.arima import ARIMA
from repro.forecast.base import Forecaster, PredictionInterval
from repro.forecast.metrics import mse
from repro.forecast.naive import NaiveLast, SeasonalNaive
from repro.forecast.narnet import NARNET
from repro.forecast.selection import (
    DynamicModelSelector,
    SelectionTrace,
    batch_predict_one,
)
from repro.obs.metrics import MetricsRegistry


class Stub(Forecaster):
    """Controllable pool member: scripted prediction, width, failure."""

    supports_intervals = True

    def __init__(self, value=0.0, half_width=0.05, fail=False):
        self.value = value
        self.half_width = half_width
        self.fail = fail

    def fit(self, y, start=None):
        self._fitted = True
        return self

    def forecast(self, h=1):
        if self.fail:
            raise ForecastError("scripted failure")
        return np.full(h, float(self.value))

    def append(self, value):
        pass

    def forecast_interval(self, h=1, alpha=0.05):
        mean = self.forecast(h)
        w = np.full(h, float(self.half_width))
        return mean, mean - w, mean + w


class TestPredictionInterval:
    def test_validates_bracketing(self):
        with pytest.raises(ForecastError):
            PredictionInterval(mean=1.0, lower=1.5, upper=2.0, alpha=0.1)
        with pytest.raises(ForecastError):
            PredictionInterval(mean=1.0, lower=0.5, upper=0.9, alpha=0.1)

    def test_validates_alpha(self):
        for alpha in (0.0, 1.0, -0.1):
            with pytest.raises(ForecastError):
                PredictionInterval(mean=0.0, lower=-1.0, upper=1.0, alpha=alpha)

    def test_width(self):
        iv = PredictionInterval(mean=0.5, lower=0.2, upper=1.0, alpha=0.1)
        assert iv.width == pytest.approx(0.8)
        assert iv.half_width == pytest.approx(0.4)


class TestModelIntervals:
    """Every advertised family brackets its mean and is deterministic."""

    def fitted_models(self):
        rng = np.random.default_rng(7)
        y = 0.5 + 0.1 * np.cumsum(rng.standard_normal(80))
        return [
            ARIMA(1, 1, 0, maxiter=40).fit(y),
            NaiveLast().fit(y),
            SeasonalNaive(period=8).fit(y),
            NARNET(ni=6, nh=6, restarts=1, seed=5, maxiter=60).fit(y),
        ]

    def test_bands_bracket_mean(self):
        for model in self.fitted_models():
            assert model.supports_intervals
            mean, lower, upper = model.forecast_interval(4, alpha=0.1)
            assert mean.shape == lower.shape == upper.shape == (4,)
            assert (lower <= mean + 1e-12).all()
            assert (mean <= upper + 1e-12).all()
            np.testing.assert_allclose(mean, model.forecast(4))

    def test_deterministic(self):
        for model in self.fitted_models():
            a = model.forecast_interval(3, alpha=0.1)
            b = model.forecast_interval(3, alpha=0.1)
            for x, y in zip(a, b):
                np.testing.assert_array_equal(x, y)

    def test_lower_alpha_widens(self):
        for model in self.fitted_models():
            tight = model.predict_one_interval(alpha=0.4)
            wide = model.predict_one_interval(alpha=0.05)
            assert wide.width >= tight.width - 1e-12

    def test_narnet_interval_does_not_perturb_forecasts(self):
        rng = np.random.default_rng(11)
        y = np.sin(np.linspace(0, 12, 90)) + 0.05 * rng.standard_normal(90)
        m = NARNET(ni=6, nh=6, restarts=1, seed=3, maxiter=60).fit(y)
        before = m.forecast(3)
        m.forecast_interval(3, alpha=0.1)
        np.testing.assert_array_equal(m.forecast(3), before)

    def test_unsupported_raises(self):
        class Plain(Forecaster):
            def fit(self, y):
                self._fitted = True
                return self

            def forecast(self, h=1):
                return np.zeros(h)

            def append(self, value):
                pass

        with pytest.raises(ForecastError, match="does not produce"):
            Plain().fit(np.zeros(4)).forecast_interval(1)

    def test_naive_needs_history(self):
        m = NaiveLast().fit(np.array([1.0, 2.0]))
        with pytest.raises(ForecastError):
            m.forecast_interval(1)


def scripted_selector(**kwargs):
    """bad/mid/good pool in an order that exposes the fallback bug."""
    stubs = {
        "bad": Stub(value=0.0),
        "mid": Stub(value=0.0),
        "good": Stub(value=0.0),
    }
    sel = DynamicModelSelector(
        {name: (lambda s=s: s) for name, s in stubs.items()},
        period=10,
        refit_every=10_000,
        **kwargs,
    ).fit(np.zeros(8))
    return sel, stubs


class TestSelectorFallbackBugfix:
    def seed_errors(self, sel, stubs, rounds=4):
        """bad scores best, then good, then mid (insertion order: mid first)."""
        for _ in range(rounds):
            stubs["bad"].value = 0.0
            stubs["mid"].value = 0.5
            stubs["good"].value = 0.1
            sel.predict_one()
            sel.observe(0.0)

    def test_fallback_picks_lowest_mse_not_insertion_order(self):
        reg = MetricsRegistry()
        sel, stubs = scripted_selector(metrics=reg)
        self.seed_errors(sel, stubs)
        assert sel.best_model_name() == "bad"
        stubs["bad"].fail = True
        pred = sel.predict_one()
        # the Eq. 14 winner failed; the answer must come from the best
        # *remaining* member ("good"), not the first surviving dict key
        # ("mid", the old insertion-order bug)
        assert sel._last_best == "good"
        assert pred == pytest.approx(0.1)
        assert reg.counter("sheriff_selector_fallback_total", model="good").value == 1

    def test_batch_path_uses_same_fallback(self):
        sel, stubs = scripted_selector()
        self.seed_errors(sel, stubs)
        stubs["bad"].fail = True
        (pred,) = batch_predict_one([sel])
        assert sel._last_best == "good"
        assert pred == pytest.approx(0.1)


class TestIncrementalGaugeBugfix:
    def test_gauge_matches_full_recompute_across_eviction(self):
        reg = MetricsRegistry()
        sel, stubs = scripted_selector(metrics=reg)
        rng = np.random.default_rng(3)
        # 30 rounds >> period=10: plenty of deque evictions
        for _ in range(30):
            for s in stubs.values():
                s.value = float(rng.normal())
            sel.predict_one()
            sel.observe(float(rng.normal()))
        for name in sel.names:
            errs = np.asarray(sel._errors[name])
            expected = float(np.mean(errs * errs))
            gauge = reg.gauge("sheriff_forecast_trailing_mse", model=name).value
            assert gauge == pytest.approx(expected, rel=1e-9, abs=1e-12)

    def test_selection_still_reads_exact_deques(self):
        """The incremental sums are observability-only: arbitration is exact."""
        sel, stubs = scripted_selector()
        rng = np.random.default_rng(5)
        for _ in range(25):
            for s in stubs.values():
                s.value = float(rng.normal())
            sel.predict_one()
            sel.observe(float(rng.normal()))
        scores = {
            n: float(np.mean(np.asarray(sel._errors[n]) ** 2)) for n in sel.names
        }
        assert sel.best_model_name() == min(sorted(scores), key=scores.get)


class TestFailedMaskBugfix:
    def test_run_records_failed_steps(self):
        sel, stubs = scripted_selector()
        y = np.zeros(20)
        # fail "bad" from the start: run() must mask it, not carry NaN
        stubs["bad"].fail = True
        trace = sel.run(y, 8)
        assert trace.failed["bad"].all()
        assert not trace.failed["good"].any()
        # masked MSE works for survivors, raises for the all-failed member
        assert trace.model_mse("good", y[8:]) >= 0.0
        with pytest.raises(ForecastError, match="failed every step"):
            trace.model_mse("bad", y[8:])

    def test_mse_rejects_nan_predictions(self):
        with pytest.raises(ForecastError, match="mask them first"):
            mse(np.zeros(3), np.array([0.0, np.nan, 0.0]))

    def test_masks_derived_when_omitted(self):
        trace = SelectionTrace(
            chosen=["a", "a"],
            predictions=np.zeros(2),
            per_model_predictions={"a": np.array([0.0, np.nan])},
        )
        np.testing.assert_array_equal(trace.failed["a"], [False, True])


class TestConfidenceMode:
    def test_off_by_default_is_identical(self):
        a = DynamicModelSelector(
            {"arima": lambda: ARIMA(1, 1, 0, maxiter=40), "naive": NaiveLast}
        )
        b = DynamicModelSelector(
            {"arima": lambda: ARIMA(1, 1, 0, maxiter=40), "naive": NaiveLast}
        )
        rng = np.random.default_rng(9)
        y = 0.5 + 0.05 * np.cumsum(rng.standard_normal(60))
        a.fit(y[:40])
        b.fit(y[:40])
        for t in range(40, 60):
            assert a.predict_one() == b.predict_one()
            a.observe(y[t])
            b.observe(y[t])
        assert a.last_interval is None

    def test_widens_on_width_spike(self):
        reg = MetricsRegistry()
        stub = Stub(value=0.5, half_width=0.01)
        sel = DynamicModelSelector(
            {"only": lambda: stub},
            period=10,
            refit_every=10_000,
            confidence=True,
            width_spike=2.0,
            metrics=reg,
        ).fit(np.zeros(8))
        for _ in range(5):  # build the trailing width history
            assert sel.predict_one() == pytest.approx(0.5)
            sel.observe(0.5)
        stub.half_width = 0.2  # 40x the median width: a spike
        pred = sel.predict_one()
        assert pred == pytest.approx(0.7)  # the interval's upper bound
        assert sel.last_interval is not None
        assert reg.counter("sheriff_confidence_widened_total", model="only").value == 1

    def test_normal_width_keeps_point_forecast(self):
        stub = Stub(value=0.5, half_width=0.01)
        sel = DynamicModelSelector(
            {"only": lambda: stub},
            period=10,
            refit_every=10_000,
            confidence=True,
        ).fit(np.zeros(8))
        for _ in range(6):
            assert sel.predict_one() == pytest.approx(0.5)
            sel.observe(0.5)

    def test_validates_knobs(self):
        with pytest.raises(ForecastError):
            DynamicModelSelector({"n": NaiveLast}, interval_alpha=1.5)
        with pytest.raises(ForecastError):
            DynamicModelSelector({"n": NaiveLast}, width_spike=0.9)

    def test_last_answer_interval(self):
        stub = Stub(value=0.5, half_width=0.02)
        sel = DynamicModelSelector(
            {"only": lambda: stub}, period=10, refit_every=10_000
        ).fit(np.zeros(8))
        assert sel.last_answer_interval() is None  # nothing answered yet
        sel.predict_one()
        iv = sel.last_answer_interval(alpha=0.1)
        assert iv is not None
        assert iv.upper == pytest.approx(0.52)

    def test_batch_routes_confidence_scalar_and_matches(self):
        """Mixed fleet: plain members batched, confidence members scalar."""

        def make(confidence):
            return DynamicModelSelector(
                {"arima": lambda: ARIMA(1, 1, 0, maxiter=40), "naive": NaiveLast},
                period=10,
                confidence=confidence,
            )

        rng = np.random.default_rng(21)
        y = 0.5 + 0.05 * np.cumsum(rng.standard_normal(70))
        fleet = [make(False), make(True), make(False), make(True)]
        twins = [make(False), make(True), make(False), make(True)]
        for s in fleet + twins:
            s.fit(y[:50])
        for t in range(50, 70):
            batched = batch_predict_one(fleet)
            scalar = [s.predict_one() for s in twins]
            assert batched == scalar
            for s in fleet + twins:
                s.observe(y[t])
