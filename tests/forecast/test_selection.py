"""Dynamic model selection tests (Eq. 14)."""

import numpy as np
import pytest

from repro.errors import ForecastError
from repro.forecast.arima import ARIMA
from repro.forecast.naive import NaiveLast, SeasonalNaive
from repro.forecast.narnet import NARNET
from repro.forecast.metrics import mse
from repro.forecast.selection import DynamicModelSelector, rolling_one_step
from repro.traces.nonlinear import mackey_glass
from repro.traces.zoplecloud import mixed_trace, weekly_traffic_trace


class TestRollingOneStep:
    def test_alignment(self):
        y = np.arange(100, dtype=float)  # perfect trend
        p = rolling_one_step(lambda: ARIMA(0, 1, 0), y, 50, refit_every=25)
        np.testing.assert_allclose(p, y[50:], atol=1e-6)

    def test_naive_predicts_previous(self):
        rng = np.random.default_rng(0)
        y = rng.normal(size=60)
        p = rolling_one_step(lambda: NaiveLast(), y, 30)
        np.testing.assert_allclose(p, y[29:-1])

    def test_max_history_bounds_refit(self):
        y = np.arange(300, dtype=float)
        p = rolling_one_step(
            lambda: ARIMA(0, 1, 0), y, 200, refit_every=10, max_history=50
        )
        np.testing.assert_allclose(p, y[200:], atol=1e-6)

    def test_bad_train_len(self):
        with pytest.raises(ForecastError):
            rolling_one_step(lambda: NaiveLast(), np.ones(10), 10)


class TestSelector:
    def pool(self):
        return {
            "arima": lambda: ARIMA(1, 1, 1),
            "naive": lambda: NaiveLast(),
        }

    def test_requires_factories(self):
        with pytest.raises(ForecastError):
            DynamicModelSelector({})

    def test_predict_before_fit_raises(self):
        sel = DynamicModelSelector(self.pool())
        with pytest.raises(ForecastError):
            sel.predict_one()

    def test_run_produces_aligned_trace(self):
        y = weekly_traffic_trace(seed=1)[:400]
        sel = DynamicModelSelector(self.pool(), period=20, refit_every=100)
        tr = sel.run(y, 300)
        assert tr.predictions.shape == (100,)
        assert len(tr.chosen) == 100
        assert set(tr.chosen) <= set(self.pool())

    def test_combined_at_least_close_to_best(self):
        """Selector MSE should approach the best member's MSE."""
        y = mixed_trace(seed=2)[:600]
        sel = DynamicModelSelector(
            {
                "arima": lambda: ARIMA(1, 1, 1),
                "nar": lambda: NARNET(ni=8, nh=10, restarts=1, seed=3, maxiter=120),
                "naive": lambda: NaiveLast(),
            },
            period=20,
            refit_every=100,
            max_history=300,
        )
        tr = sel.run(y, 400)
        actual = y[400:]
        combined = mse(actual, tr.predictions)
        per_model = {}
        for name, p in tr.per_model_predictions.items():
            ok = ~np.isnan(p)
            per_model[name] = mse(actual[ok], p[ok])
        best = min(per_model.values())
        worst = max(per_model.values())
        assert combined <= worst
        assert combined <= best * 1.5  # close to the best member

    def test_selector_tracks_regime_change(self):
        """Pool with one model per regime: the selector must switch."""
        # first half: pure trend (ARIMA d=1 perfect); second: last-value ideal
        rng = np.random.default_rng(4)
        a = np.arange(200, dtype=float)
        b = a[-1] + np.cumsum(rng.normal(0, 5.0, size=200))
        y = np.concatenate([a, b])
        sel = DynamicModelSelector(
            {"trend": lambda: ARIMA(0, 1, 0), "naive": lambda: NaiveLast()},
            period=10,
            refit_every=50,
        )
        tr = sel.run(y, 100)
        first_half = tr.chosen[: 80]
        assert first_half.count("trend") > len(first_half) * 0.8

    def test_observe_rejects_nan(self):
        sel = DynamicModelSelector(self.pool()).fit(np.arange(50.0))
        sel.predict_one()
        with pytest.raises(ForecastError):
            sel.observe(float("nan"))

    def test_forecast_multi_step(self):
        sel = DynamicModelSelector(self.pool()).fit(np.arange(80.0))
        f = sel.forecast(5)
        assert f.shape == (5,)
        np.testing.assert_allclose(f, [80, 81, 82, 83, 84], atol=1e-5)


class TestSeasonalNaive:
    def test_repeats_last_season(self):
        period = 10
        y = np.tile(np.arange(10.0), 5)
        m = SeasonalNaive(period=period).fit(y)
        np.testing.assert_array_equal(m.forecast(10), np.arange(10.0))

    def test_wraps_past_one_season(self):
        m = SeasonalNaive(period=3).fit(np.array([1.0, 2.0, 3.0]))
        np.testing.assert_array_equal(m.forecast(5), [1, 2, 3, 1, 2])
