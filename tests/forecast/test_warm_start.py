"""Warm-start plumbing: start hints, feasibility guards, warm_fit routing."""

import numpy as np
import pytest

from repro.forecast.arima import ARIMA
from repro.forecast.base import warm_fit
from repro.forecast.narnet import NARNET


@pytest.fixture
def series():
    rng = np.random.default_rng(42)
    t = np.arange(240, dtype=np.float64)
    return 0.5 + 0.2 * np.sin(2 * np.pi * t / 24) + 0.03 * rng.standard_normal(240)


class TestArimaHints:
    def test_unfitted_hint_is_none(self):
        assert ARIMA(1, 0, 1).start_hint() is None

    def test_hint_shape_and_roundtrip(self, series):
        m = ARIMA(2, 0, 1).fit(series)
        hint = m.start_hint()
        assert hint.shape == (m.num_params,)
        np.testing.assert_array_equal(hint[1:3], m.phi_)
        np.testing.assert_array_equal(hint[3:], m.theta_)

    def test_warm_fit_converges(self, series):
        cold = ARIMA(2, 0, 1).fit(series[:200])
        warm = ARIMA(2, 0, 1).fit(series, start=cold.start_hint())
        assert warm._fitted
        # the warm optimum predicts the same series about as well
        f_cold = ARIMA(2, 0, 1).fit(series).forecast(3)
        np.testing.assert_allclose(warm.forecast(3), f_cold, atol=0.2)

    def test_bad_shape_start_falls_back(self, series):
        m = ARIMA(1, 0, 1).fit(series, start=np.ones(17))
        assert m._fitted

    def test_nonfinite_start_falls_back(self, series):
        m = ARIMA(1, 0, 1)
        start = np.full(m.num_params, np.nan)
        assert m._feasible_start(start) is None
        assert m.fit(series, start=start)._fitted

    def test_explosive_start_is_shrunk(self):
        m = ARIMA(1, 0, 0)
        start = np.array([0.0, 5.0])  # AR root far outside the unit circle
        out = m._feasible_start(start)
        assert out is not None
        assert abs(out[1]) < 1.0


class TestNarnetHints:
    def test_unfitted_hint_is_none(self):
        assert NARNET(ni=4, nh=3).start_hint() is None

    def test_hint_length(self, series):
        m = NARNET(ni=4, nh=3, restarts=1, maxiter=60, seed=1).fit(series)
        assert m.start_hint().shape == (m._n_params(),)

    def test_warm_fit_runs_and_is_finite(self, series):
        cold = NARNET(ni=4, nh=3, restarts=1, maxiter=60, seed=1).fit(series[:200])
        warm = NARNET(ni=4, nh=3, restarts=1, maxiter=60, seed=1).fit(
            series, start=cold.start_hint()
        )
        assert warm._fitted and np.isfinite(warm.train_loss_)

    def test_wrong_length_hint_ignored(self, series):
        m = NARNET(ni=4, nh=3, restarts=1, maxiter=60, seed=1)
        assert m.fit(series, start=np.ones(5))._fitted


class TestWarmFitHelper:
    def test_same_class_passes_hint(self, series):
        prev = ARIMA(1, 0, 1).fit(series[:150])
        model = warm_fit(ARIMA(1, 0, 1), series, prev)
        assert model._fitted

    def test_cross_class_degrades_to_cold(self, series):
        prev = NARNET(ni=4, nh=3, restarts=1, maxiter=60, seed=1).fit(series[:150])
        model = warm_fit(ARIMA(1, 0, 1), series, prev)
        assert model._fitted

    def test_none_previous_is_cold(self, series):
        assert warm_fit(ARIMA(1, 0, 1), series, None)._fitted

    def test_warm_fit_matches_explicit_start(self, series):
        prev = ARIMA(2, 0, 1).fit(series[:200])
        via_helper = warm_fit(ARIMA(2, 0, 1), series, prev)
        direct = ARIMA(2, 0, 1).fit(series, start=prev.start_hint())
        np.testing.assert_array_equal(via_helper.phi_, direct.phi_)
        np.testing.assert_array_equal(via_helper.theta_, direct.theta_)
