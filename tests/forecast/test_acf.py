"""ACF / PACF / Ljung-Box tests."""

import numpy as np
import pytest

from repro.errors import ForecastError
from repro.forecast.acf import acf, ljung_box, pacf
from repro.traces.noise import ar1_noise, white_noise


class TestACF:
    def test_lag_zero_is_one(self):
        x = white_noise(500, seed=0)
        assert acf(x, 5)[0] == pytest.approx(1.0)

    def test_white_noise_decorrelated(self):
        x = white_noise(5000, seed=1)
        r = acf(x, 10)
        assert np.abs(r[1:]).max() < 0.05

    def test_ar1_geometric_decay(self):
        phi = 0.8
        x = ar1_noise(50000, phi=phi, seed=2)
        r = acf(x, 5)
        for k in range(1, 6):
            assert r[k] == pytest.approx(phi**k, abs=0.03)

    def test_matches_direct_computation(self):
        rng = np.random.default_rng(3)
        x = rng.normal(size=200)
        r = acf(x, 4)
        xc = x - x.mean()
        for k in range(5):
            direct = np.dot(xc[: len(x) - k], xc[k:]) / np.dot(xc, xc)
            assert r[k] == pytest.approx(direct, abs=1e-10)

    def test_constant_series_raises(self):
        with pytest.raises(ForecastError):
            acf(np.ones(100), 5)

    def test_too_many_lags_raises(self):
        with pytest.raises(ForecastError):
            acf(np.arange(10.0), 10)


class TestPACF:
    def test_ar1_cuts_off_after_lag_one(self):
        x = ar1_noise(50000, phi=0.7, seed=4)
        p = pacf(x, 6)
        assert p[1] == pytest.approx(0.7, abs=0.03)
        assert np.abs(p[2:]).max() < 0.05

    def test_ar2_cuts_off_after_lag_two(self):
        rng = np.random.default_rng(5)
        n = 50000
        x = np.zeros(n)
        e = rng.normal(size=n)
        for t in range(2, n):
            x[t] = 0.5 * x[t - 1] + 0.3 * x[t - 2] + e[t]
        p = pacf(x, 6)
        assert abs(p[2] - 0.3) < 0.03
        assert np.abs(p[3:]).max() < 0.05

    def test_lag_zero_is_one(self):
        x = white_noise(500, seed=6)
        assert pacf(x, 3)[0] == 1.0


class TestLjungBox:
    def test_white_noise_not_rejected(self):
        x = white_noise(2000, seed=7)
        q, p = ljung_box(x, 10)
        assert p > 0.01

    def test_correlated_rejected(self):
        x = ar1_noise(2000, phi=0.6, seed=8)
        q, p = ljung_box(x, 10)
        assert p < 1e-6

    def test_dof_adjustment(self):
        x = white_noise(500, seed=9)
        q1, p1 = ljung_box(x, 10, fitted_params=0)
        q2, p2 = ljung_box(x, 10, fitted_params=3)
        assert q1 == q2
        assert p1 != p2

    def test_rejects_lags_below_params(self):
        with pytest.raises(ForecastError):
            ljung_box(white_noise(100, seed=0), 3, fitted_params=3)
