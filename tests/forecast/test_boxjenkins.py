"""Box-Jenkins order selection and stationarity heuristic tests."""

import numpy as np
import pytest

from repro.errors import ForecastError
from repro.forecast.boxjenkins import select_arima_order
from repro.forecast.stationarity import choose_difference_order, is_stationary
from repro.traces.noise import ar1_noise, white_noise
from repro.traces.zoplecloud import weekly_traffic_trace


class TestStationarity:
    def test_white_noise_stationary(self):
        assert is_stationary(white_noise(1000, seed=0))

    def test_random_walk_not_stationary(self):
        y = np.cumsum(white_noise(1000, seed=1))
        assert not is_stationary(y)

    def test_constant_is_stationary(self):
        assert is_stationary(np.ones(200))

    def test_too_short_raises(self):
        with pytest.raises(ForecastError):
            is_stationary(np.ones(10))


class TestChooseD:
    def test_stationary_gets_zero(self):
        assert choose_difference_order(ar1_noise(800, phi=0.5, seed=2)) == 0

    def test_random_walk_gets_one(self):
        y = np.cumsum(white_noise(800, seed=3))
        assert choose_difference_order(y) == 1

    def test_double_integrated_gets_two(self):
        y = np.cumsum(np.cumsum(white_noise(800, seed=4)))
        assert choose_difference_order(y, max_d=2) == 2

    def test_negative_max_d_raises(self):
        with pytest.raises(ForecastError):
            choose_difference_order(np.ones(100), max_d=-1)


class TestOrderSelection:
    def test_selects_reasonable_order_for_ar1(self):
        rng = np.random.default_rng(5)
        n = 3000
        w = np.zeros(n)
        e = rng.normal(size=n)
        for t in range(1, n):
            w[t] = 0.7 * w[t - 1] + e[t]
        res = select_arima_order(w, max_p=3, max_q=2, d=0)
        p, d, q = res.order
        assert d == 0
        assert p >= 1  # AR structure must be detected
        # the chosen model should fit no worse than the true-order one
        assert res.candidates[0][1] == res.aic

    def test_candidates_sorted_by_aic(self):
        y = weekly_traffic_trace(seed=6)[:400]
        res = select_arima_order(y, max_p=2, max_q=2)
        aics = [a for _, a in res.candidates]
        assert aics == sorted(aics)

    def test_d_heuristic_applied(self):
        y = np.cumsum(white_noise(600, seed=7)) + 50
        res = select_arima_order(y, max_p=1, max_q=1)
        assert res.order[1] == 1

    def test_degenerate_grid_rejected(self):
        with pytest.raises(ForecastError):
            select_arima_order(np.ones(100), max_p=0, max_q=0)

    def test_model_is_fitted(self):
        y = weekly_traffic_trace(seed=8)[:300]
        res = select_arima_order(y, max_p=1, max_q=1)
        f = res.model.forecast(3)
        assert np.isfinite(f).all()
