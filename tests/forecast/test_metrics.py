"""Forecast metric tests."""

import numpy as np
import pytest

from repro.errors import ForecastError
from repro.forecast.metrics import mae, mape, mse, rmse, trailing_mse


class TestPointMetrics:
    def test_mse_known_value(self):
        assert mse([1, 2, 3], [1, 2, 5]) == pytest.approx(4.0 / 3.0)

    def test_rmse_is_sqrt_mse(self):
        a, p = np.arange(10.0), np.arange(10.0) + 2
        assert rmse(a, p) == pytest.approx(np.sqrt(mse(a, p)))

    def test_mae_known_value(self):
        assert mae([0, 0], [3, -1]) == 2.0

    def test_mape_percentage(self):
        assert mape([100.0, 200.0], [110.0, 180.0]) == pytest.approx(10.0)

    def test_mape_skips_zeros(self):
        assert mape([0.0, 100.0], [5.0, 110.0]) == pytest.approx(10.0)

    def test_mape_all_zero_raises(self):
        with pytest.raises(ForecastError):
            mape([0.0, 0.0], [1.0, 1.0])

    def test_shape_mismatch_raises(self):
        with pytest.raises(ForecastError):
            mse([1, 2], [1, 2, 3])

    def test_empty_raises(self):
        with pytest.raises(ForecastError):
            mse([], [])

    def test_perfect_prediction_zero(self):
        x = np.random.default_rng(0).normal(size=50)
        assert mse(x, x) == 0.0
        assert mae(x, x) == 0.0


class TestTrailingMSE:
    def test_window_mean_of_squares(self):
        e = np.array([1.0, 2.0, 3.0, 4.0])
        assert trailing_mse(e, 3, 2) == pytest.approx((9 + 16) / 2)

    def test_window_shrinks_at_start(self):
        e = np.array([2.0, 2.0, 2.0])
        assert trailing_mse(e, 0, 10) == 4.0

    def test_full_history(self):
        e = np.array([1.0, 1.0, 1.0, 1.0])
        assert trailing_mse(e, 3, 4) == 1.0

    def test_out_of_range_raises(self):
        with pytest.raises(ForecastError):
            trailing_mse(np.ones(3), 5, 2)

    def test_bad_period_raises(self):
        with pytest.raises(ForecastError):
            trailing_mse(np.ones(3), 1, 0)
