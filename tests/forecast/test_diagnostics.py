"""Residual diagnostic tests."""

import numpy as np
import pytest

from repro.errors import ForecastError
from repro.forecast import ARIMA, diagnose, jarque_bera
from repro.forecast.diagnostics import ResidualDiagnostics
from repro.traces.noise import ar1_noise, white_noise


class TestJarqueBera:
    def test_gaussian_not_rejected(self):
        x = white_noise(5000, seed=0)
        _, p = jarque_bera(x)
        assert p > 0.01

    def test_heavy_tails_rejected(self):
        rng = np.random.default_rng(1)
        x = rng.standard_t(df=2, size=5000)
        _, p = jarque_bera(x)
        assert p < 1e-6

    def test_skew_rejected(self):
        rng = np.random.default_rng(2)
        x = rng.exponential(size=5000)
        _, p = jarque_bera(x)
        assert p < 1e-6

    def test_constant_degenerate(self):
        jb, p = jarque_bera(np.ones(50))
        assert jb == 0.0 and p == 1.0

    def test_too_short(self):
        with pytest.raises(ForecastError):
            jarque_bera(np.ones(5))


class TestDiagnose:
    def test_white_noise_passes_everything(self):
        e = white_noise(2000, seed=3)
        d = diagnose(e)
        assert d.white and d.unbiased and d.normal and d.homoskedastic
        assert d.adequate

    def test_correlated_residuals_fail_whiteness(self):
        e = ar1_noise(2000, phi=0.5, seed=4)
        d = diagnose(e)
        assert not d.white
        assert not d.adequate

    def test_biased_residuals_detected(self):
        e = white_noise(2000, seed=5) + 0.5
        d = diagnose(e)
        assert not d.unbiased
        assert not d.adequate

    def test_arch_structure_detected(self):
        rng = np.random.default_rng(6)
        # GARCH-ish: volatility follows an AR(1) regime
        n = 4000
        sigma = np.exp(ar1_noise(n, phi=0.97, sigma=0.3, seed=7))
        e = rng.normal(size=n) * sigma
        d = diagnose(e)
        assert not d.homoskedastic
        # heteroskedasticity alone does not veto adequacy
        if d.white and d.unbiased:
            assert d.adequate

    def test_good_arima_fit_is_adequate(self):
        rng = np.random.default_rng(8)
        n = 2000
        w = np.zeros(n)
        eps = rng.normal(size=n)
        for t in range(1, n):
            w[t] = 0.6 * w[t - 1] + eps[t]
        m = ARIMA(1, 0, 0).fit(w)
        d = diagnose(m.residuals(), fitted_params=m.p + m.q)
        assert d.adequate

    def test_underfit_arima_is_inadequate(self):
        rng = np.random.default_rng(9)
        n = 2000
        w = np.zeros(n)
        eps = rng.normal(size=n)
        for t in range(2, n):
            w[t] = 0.5 * w[t - 1] + 0.3 * w[t - 2] + eps[t]
        # fit white-noise-only model: residuals keep the AR structure
        m = ARIMA(0, 0, 0).fit(w)
        d = diagnose(m.residuals(), fitted_params=0)
        assert not d.adequate

    def test_validation(self):
        with pytest.raises(ForecastError):
            diagnose(np.ones(10))
        with pytest.raises(ForecastError):
            diagnose(white_noise(100, seed=0), alpha=0.0)
