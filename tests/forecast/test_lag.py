"""Lag/difference operator tests."""

import numpy as np
import pytest

from repro.errors import ForecastError
from repro.forecast.lag import difference, difference_heads, lag_matrix, undifference


class TestDifference:
    def test_orders(self):
        y = np.array([1.0, 3.0, 6.0, 10.0])
        np.testing.assert_array_equal(difference(y, 0), y)
        np.testing.assert_array_equal(difference(y, 1), [2, 3, 4])
        np.testing.assert_array_equal(difference(y, 2), [1, 1])

    def test_zero_order_returns_copy(self):
        y = np.array([1.0, 2.0])
        d = difference(y, 0)
        d[0] = 99
        assert y[0] == 1.0

    def test_too_short_raises(self):
        with pytest.raises(ForecastError):
            difference(np.array([1.0, 2.0]), 2)

    def test_negative_order_raises(self):
        with pytest.raises(ForecastError):
            difference(np.array([1.0, 2.0]), -1)


class TestUndifference:
    @pytest.mark.parametrize("d", [1, 2, 3])
    def test_roundtrip(self, d):
        rng = np.random.default_rng(0)
        y = rng.normal(size=60).cumsum() + 5
        heads = difference_heads(y, d)
        w = difference(y, d)
        # pretend the last 10 differenced values are 'forecasts' and rebuild
        rebuilt = undifference(w[-10:], difference_heads(y[:-10], d))
        np.testing.assert_allclose(rebuilt, y[-10:], atol=1e-9)

    def test_identity_with_no_heads(self):
        f = np.array([1.0, 2.0, 3.0])
        np.testing.assert_array_equal(undifference(f, []), f)

    def test_single_integration(self):
        # ∇Y forecasts [2, 3] from level 10 -> levels [12, 15]
        np.testing.assert_array_equal(undifference(np.array([2.0, 3.0]), [10.0]), [12, 15])


class TestLagMatrix:
    def test_embedding(self):
        y = np.arange(6, dtype=float)
        X, t = lag_matrix(y, 2)
        # row 0 predicts y[2]=2 from [y1, y0]
        np.testing.assert_array_equal(X[0], [1, 0])
        np.testing.assert_array_equal(t, [2, 3, 4, 5])
        assert X.shape == (4, 2)

    def test_most_recent_first(self):
        y = np.array([10.0, 20.0, 30.0, 40.0])
        X, _ = lag_matrix(y, 3)
        np.testing.assert_array_equal(X[0], [30, 20, 10])

    def test_too_short(self):
        with pytest.raises(ForecastError):
            lag_matrix(np.ones(3), 3)

    def test_bad_lags(self):
        with pytest.raises(ForecastError):
            lag_matrix(np.ones(5), 0)
