"""The chaos campaign over pooled planners: same bytes as the serial run.

``run_chaos_campaign`` is the repo's worst-weather gauntlet — shim
outages, host crashes, switch failures with live flow tables, a lossy
ACK channel and timed (multi-round) migrations, all seeded.  Running it
with ``planner="sharded"`` / ``planner="process"`` pushes every one of
those behaviors through the persistent shared-memory worker path: fault
state must arrive at the shards via the shipped fleet segments and the
per-round repair messages, never drift a round behind, and the report —
including the fault log and per-round degraded flags — must be
byte-for-byte the serial engine's.
"""

import json

import pytest

from repro.config import SheriffConfig
from repro.faults.campaign import run_chaos_campaign

ROUNDS = 8
SEED = 7


def _report(config=None):
    return run_chaos_campaign(size=4, rounds=ROUNDS, seed=SEED, config=config)


@pytest.fixture(scope="module")
def serial_report():
    return _report(SheriffConfig(workers=0))


@pytest.mark.parametrize(
    "name, config",
    [
        ("sharded", SheriffConfig(planner="sharded")),
        ("sharded_two", SheriffConfig(planner="sharded", shards=2)),
        ("process", SheriffConfig(planner="process", workers=2)),
    ],
)
def test_pooled_campaign_matches_serial(serial_report, name, config):
    pooled = _report(config)
    assert json.dumps(pooled, sort_keys=True) == json.dumps(
        serial_report, sort_keys=True
    )


def test_sharded_campaign_is_reproducible():
    a = _report(SheriffConfig(planner="sharded"))
    b = _report(SheriffConfig(planner="sharded"))
    assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)
