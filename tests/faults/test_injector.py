"""Fault injection through the engine: crash, recover, shim outage, abort."""

import pytest

from repro.cluster import build_cluster
from repro.config import SheriffConfig
from repro.faults.schedule import FaultKind, FaultSchedule, FaultSpec
from repro.obs.metrics import MetricsRegistry
from repro.sim import SheriffSimulation, inject_fraction_alerts
from repro.sim.inflight import MigrationTiming
from repro.topology import build_bcube, build_fattree


@pytest.fixture
def cluster():
    return build_cluster(
        build_fattree(4),
        hosts_per_rack=3,
        fill_fraction=0.5,
        skew=0.7,
        seed=99,
        delay_sensitive_fraction=0.0,
    )


def busy_host(cluster):
    pl = cluster.placement
    for h in range(pl.num_hosts):
        if len(pl.vms_on_host(h)) > 0:
            return h
    pytest.skip("fixture has no occupied host")


class TestHostCrash:
    def test_residents_evacuated_or_lost(self, cluster):
        host = busy_host(cluster)
        residents = [int(v) for v in cluster.placement.vms_on_host(host)]
        metrics = MetricsRegistry()
        cfg = SheriffConfig(
            metrics=metrics,
            fault_schedule=FaultSchedule(
                [FaultSpec(FaultKind.HOST_CRASH, target=host, at_round=1)]
            ),
        )
        sim = SheriffSimulation(cluster, cfg)
        sim.run_round([], {})
        s = sim.run_round([], {})
        assert s.faults == 1
        pl = cluster.placement
        assert not pl.host_alive[host]
        for vm in residents:
            if vm in pl.lost_vms:
                assert pl.host_of(vm) == host  # capacity stays booked
            else:
                assert pl.host_of(vm) != host  # emergency-evacuated
        pl.check_invariants()
        evac = metrics.total("sheriff_vms_evacuated_total")
        lost = metrics.total("sheriff_vms_lost_total")
        assert evac + lost == len(residents)

    def test_recover_restores_lost_vms(self, cluster):
        host = busy_host(cluster)
        cfg = SheriffConfig(
            fault_schedule=FaultSchedule(
                [
                    FaultSpec(FaultKind.HOST_CRASH, target=host, at_round=0),
                    FaultSpec(FaultKind.HOST_RECOVER, target=host, at_round=1),
                ]
            )
        )
        sim = SheriffSimulation(cluster, cfg)
        sim.run_round([], {})
        assert not cluster.placement.host_alive[host]
        sim.run_round([], {})
        pl = cluster.placement
        assert pl.host_alive[host]
        assert not pl.lost_vms
        pl.check_invariants()

    def test_crash_then_rounds_keep_completing(self, cluster):
        host = busy_host(cluster)
        cfg = SheriffConfig(
            fault_schedule=FaultSchedule(
                [FaultSpec(FaultKind.HOST_CRASH, target=host, at_round=0)]
            )
        )
        sim = SheriffSimulation(cluster, cfg)
        for r in range(4):
            alerts, vma = inject_fraction_alerts(
                cluster, 0.1, time=r, seed=40 + r
            )
            sim.run_round(alerts, vma)
            cluster.placement.check_invariants()
        # nothing ever migrates onto the dead host
        assert cluster.placement.free_capacity(host) == 0


class TestShimOutage:
    def test_down_rack_is_skipped_and_round_degrades(self, cluster):
        alerts, vma = inject_fraction_alerts(cluster, 0.3, time=0, seed=7)
        if not alerts:
            pytest.skip("no alerts generated")
        down = alerts[0].rack
        metrics = MetricsRegistry()
        cfg = SheriffConfig(
            metrics=metrics,
            fault_schedule=FaultSchedule(
                [
                    FaultSpec(
                        FaultKind.SHIM_DOWN, target=down, at_round=0,
                        duration=1,
                    )
                ]
            ),
        )
        sim = SheriffSimulation(cluster, cfg)
        s = sim.run_round(alerts, vma)
        assert s.degraded
        # the silent delegation never processed its alerts
        assert metrics.counter("sheriff_shim_alerts_total", rack=down).value == 0
        cluster.placement.check_invariants()
        # duration=1 expired: the next round is back to normal
        s2 = sim.run_round([], {})
        assert not s2.degraded

    def test_explicit_shim_up(self, cluster):
        cfg = SheriffConfig(
            fault_schedule=FaultSchedule(
                [
                    FaultSpec(FaultKind.SHIM_DOWN, target=0, at_round=0),
                    FaultSpec(FaultKind.SHIM_UP, target=0, at_round=2),
                ]
            )
        )
        sim = SheriffSimulation(cluster, cfg)
        assert sim.run_round([], {}).degraded
        assert sim.run_round([], {}).degraded  # no duration: still down
        assert not sim.run_round([], {}).degraded


class TestMigrationAbort:
    def test_inflight_abort_rolls_back(self, cluster):
        cfg = SheriffConfig(
            migration_timing=MigrationTiming(),
            fault_schedule=FaultSchedule(
                [FaultSpec(FaultKind.MIGRATION_ABORT, at_round=1)]
            ),
        )
        sim = SheriffSimulation(cluster, cfg)
        alerts, vma = inject_fraction_alerts(cluster, 0.3, time=0, seed=5)
        s0 = sim.run_round(alerts, vma)
        if s0.migrations == 0:
            pytest.skip("no migration started in round 0")
        before = set(sim.inflight.vms_in_flight)
        s1 = sim.run_round([], {})
        assert s1.rollbacks >= 1
        # the aborted VM left the in-flight set without landing
        assert len(sim.inflight.vms_in_flight & before) < len(before)
        cluster.placement.check_invariants()

    def test_abort_is_noop_on_instant_engine(self, cluster):
        cfg = SheriffConfig(
            fault_schedule=FaultSchedule(
                [FaultSpec(FaultKind.MIGRATION_ABORT, at_round=0)]
            )
        )
        sim = SheriffSimulation(cluster, cfg)
        s = sim.run_round([], {})
        assert s.faults == 1 and s.rollbacks == 0


class TestSwitchFaults:
    def test_partition_degrades_but_completes(self):
        cluster = build_cluster(
            build_bcube(2), hosts_per_rack=2, seed=2,
            delay_sensitive_fraction=0.0,
        )
        cfg = SheriffConfig(
            with_flows=True,
            fault_schedule=FaultSchedule(
                [
                    FaultSpec(FaultKind.SWITCH_FAIL, target=2, at_round=0),
                    FaultSpec(FaultKind.SWITCH_FAIL, target=3, at_round=1),
                ]
            ),
        )
        sim = SheriffSimulation(cluster, cfg)
        sim.run_round([], {})
        s1 = sim.run_round([], {})  # both switches dead: partitioned
        assert s1.degraded
        cluster.placement.check_invariants()

    def test_fail_and_recover_replan_costs(self, cluster):
        from repro.topology.base import NodeKind

        agg = int(cluster.topology.nodes_of_kind(NodeKind.AGG)[0])
        cfg = SheriffConfig(
            with_flows=True,
            fault_schedule=FaultSchedule(
                [
                    FaultSpec(FaultKind.SWITCH_FAIL, target=agg, at_round=0),
                    FaultSpec(
                        FaultKind.SWITCH_RECOVER, target=agg, at_round=1
                    ),
                ]
            ),
        )
        sim = SheriffSimulation(cluster, cfg)
        s0 = sim.run_round([], {})
        assert s0.faults == 1 and not s0.degraded
        # the rebuilt model routes around the dead aggregation switch
        r = cluster.num_racks
        for a in range(r):
            for b in range(r):
                if a != b:
                    assert agg not in sim.cost_model.table.path(a, b)
        sim.run_round([], {})
        assert sim.faults.switches.failed == set()
