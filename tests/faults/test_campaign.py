"""Chaos campaign: seeded reproducibility and the `cli chaos` surface."""

import json

import pytest

from repro.cli import main
from repro.errors import ConfigurationError
from repro.faults.campaign import default_schedule, run_chaos_campaign


class TestDefaultSchedule:
    def test_shape(self):
        sched = default_schedule(16, 4, rounds=10, seed=3)
        assert len(sched) == 6

    def test_rejects_tiny_campaigns(self):
        with pytest.raises(ConfigurationError):
            default_schedule(1, 4, rounds=10)
        with pytest.raises(ConfigurationError):
            default_schedule(16, 4, rounds=3)


class TestCampaign:
    def test_same_seed_same_report(self):
        a = run_chaos_campaign(size=4, rounds=8, seed=7)
        b = run_chaos_campaign(size=4, rounds=8, seed=7)
        assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)

    def test_report_shape(self):
        report = run_chaos_campaign(size=4, rounds=8, seed=7)
        assert report["campaign"]["rounds"] == 8
        assert len(report["rounds"]) == 8
        assert report["totals"]["faults_injected"] >= 5  # the one-shots
        assert report["totals"]["degraded_rounds"] >= 1  # shim outage rounds
        assert len(report["faults_log"]) == report["totals"]["faults_injected"]
        json.dumps(report)  # JSON-ready end to end

    def test_unknown_topology_rejected(self):
        with pytest.raises(ConfigurationError):
            run_chaos_campaign(topology="hypercube")


class TestCli:
    def test_chaos_subcommand_writes_report(self, tmp_path):
        out = tmp_path / "chaos.json"
        rc = main(
            [
                "chaos", "--size", "4", "--rounds", "8", "--seed", "7",
                "--output", str(out),
            ]
        )
        assert rc == 0
        report = json.loads(out.read_text())
        assert report["campaign"]["seed"] == 7
        assert len(report["rounds"]) == 8
