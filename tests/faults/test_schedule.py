"""FaultSchedule determinism and validation."""

import pytest

from repro.errors import ConfigurationError
from repro.faults.schedule import FaultKind, FaultSchedule, FaultSpec


def probabilistic(p=0.3):
    return FaultSpec(FaultKind.MIGRATION_ABORT, probability=p)


class TestFaultSpec:
    def test_requires_trigger(self):
        with pytest.raises(ConfigurationError):
            FaultSpec(FaultKind.HOST_CRASH, target=0)  # no at_round, no p

    def test_requires_target_except_abort(self):
        with pytest.raises(ConfigurationError):
            FaultSpec(FaultKind.HOST_CRASH, at_round=1)  # target -1
        FaultSpec(FaultKind.MIGRATION_ABORT, at_round=1)  # ok: picks first

    def test_validates_duration_and_round(self):
        with pytest.raises(ConfigurationError):
            FaultSpec(FaultKind.SHIM_DOWN, target=0, at_round=1, duration=0)
        with pytest.raises(ConfigurationError):
            FaultSpec(FaultKind.SHIM_DOWN, target=0, at_round=-1)


class TestDue:
    def test_one_shot_fires_exactly_once(self):
        sched = FaultSchedule(
            [FaultSpec(FaultKind.HOST_CRASH, target=3, at_round=2)]
        )
        fired = [sched.due(r) for r in range(5)]
        assert [len(f) for f in fired] == [0, 0, 1, 0, 0]
        assert fired[2][0][1].target == 3

    def test_probabilistic_fires_deterministically(self):
        a = FaultSchedule([probabilistic()], seed=7)
        b = FaultSchedule([probabilistic()], seed=7)
        rounds_a = [bool(a.due(r)) for r in range(50)]
        rounds_b = [bool(b.due(r)) for r in range(50)]
        assert rounds_a == rounds_b
        assert any(rounds_a) and not all(rounds_a)

    def test_spec_streams_independent(self):
        """Adding a second spec never changes the first spec's firings."""
        alone = FaultSchedule([probabilistic()], seed=11)
        paired = FaultSchedule([probabilistic(), probabilistic(0.9)], seed=11)
        fires_alone = [
            [i for i, _ in alone.due(r)] for r in range(30)
        ]
        fires_paired = [
            [i for i, _ in paired.due(r) if i == 0] for r in range(30)
        ]
        assert fires_alone == [
            [i for i in row] for row in fires_paired
        ]

    def test_empty(self):
        sched = FaultSchedule()
        assert sched.empty and len(sched) == 0
        assert sched.due(0) == []
