"""Adversarial campaign tests: determinism, the bound, the traces."""

import json

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.faults import run_adversarial_campaign
from repro.traces.adversarial import adversarial_series, adversarial_streams


class TestAdversarialTraces:
    def test_calm_then_cliff_structure(self):
        y = adversarial_series(24, period=12, spike_len=3, seed=0, noise=0.0)
        # rounds 0-8 calm, 9-11 cliff, repeating
        assert (y[:9] < 0.5).all()
        assert (y[9:12] > 0.9).all()
        assert (y[12:21] < 0.5).all()
        assert (y[21:24] > 0.9).all()

    def test_deterministic_and_bounded(self):
        a = adversarial_series(50, seed=9)
        b = adversarial_series(50, seed=9)
        np.testing.assert_array_equal(a, b)
        assert (a >= 0.0).all() and (a <= 1.0).all()

    def test_streams_shapes_and_phases(self):
        streams = adversarial_streams(6, 30, seed=4)
        assert len(streams) == 6
        for s in streams:
            assert s.profile.shape == (30, 4)
            # all resource components follow the same schedule
            np.testing.assert_array_equal(s.profile[:, 0], s.profile[:, 1])

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            adversarial_series(0)
        with pytest.raises(ConfigurationError):
            adversarial_series(10, spike_len=12, period=12)
        with pytest.raises(ConfigurationError):
            adversarial_series(10, low=0.9, high=0.5)
        with pytest.raises(ConfigurationError):
            adversarial_streams(-1, 10)
        with pytest.raises(ConfigurationError):
            adversarial_streams(2, 10, phase_jitter=12, period=12)


class TestCampaign:
    def small(self, **kwargs):
        kwargs.setdefault("rounds", 24)
        kwargs.setdefault("warm", 12)
        return run_adversarial_campaign(**kwargs)

    def test_report_is_deterministic(self):
        a = self.small()
        b = self.small()
        assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)

    def test_bound_holds_and_governor_trips(self):
        report = self.small()
        assert report["bound"]["holds"] is True
        for key in ("overload_rounds", "vms_lost"):
            entry = report["bound"][key]
            assert entry["guarded"] <= entry["limit"]
        # the whole point: the guarded arm actually degraded at least once
        assert report["arms"]["guarded"]["fallback_transitions"] >= 1
        assert report["arms"]["guarded"]["fallback_rounds"] >= 1
        # the unguarded arms never touch the governor
        for arm in ("reactive", "predictive"):
            assert report["arms"][arm]["fallback_transitions"] == 0

    def test_arms_share_the_fault_schedule(self):
        report = self.small()
        # every arm lost VMs to the same crash schedule (counts may
        # differ — that is the metric — but all must be hit)
        for arm in report["arms"].values():
            assert arm["vms_lost"] >= 1

    def test_report_is_json_ready(self):
        report = self.small()
        json.dumps(report)  # no numpy scalars anywhere
        assert set(report) == {"campaign", "arms", "bound"}
        assert set(report["arms"]) == {"reactive", "predictive", "guarded"}

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            run_adversarial_campaign(rounds=10, period=12)
        with pytest.raises(ConfigurationError):
            run_adversarial_campaign(warm=2)
        with pytest.raises(ConfigurationError):
            run_adversarial_campaign(factor=0.5)
        with pytest.raises(ConfigurationError):
            run_adversarial_campaign(slack=-1.0)
