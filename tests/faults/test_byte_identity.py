"""The no-faults contract: an armed-but-empty fault layer changes nothing.

`SheriffConfig(fault_schedule=FaultSchedule())` builds the injector and
routes commits through the tolerant path, yet every placement, summary
and metric the simulation produces must be identical to a run without
the fault layer at all.
"""

import numpy as np

from repro.cluster import build_cluster
from repro.config import SheriffConfig
from repro.faults.schedule import FaultSchedule
from repro.sim import SheriffSimulation, inject_fraction_alerts
from repro.topology import build_fattree

ROUNDS = 6


def run(cfg):
    cluster = build_cluster(
        build_fattree(4),
        hosts_per_rack=3,
        fill_fraction=0.5,
        skew=0.7,
        seed=99,
        delay_sensitive_fraction=0.0,
    )
    sim = SheriffSimulation(cluster, cfg)
    summaries = []
    for r in range(ROUNDS):
        alerts, vma = inject_fraction_alerts(cluster, 0.1, time=r, seed=20 + r)
        summaries.append(sim.run_round(alerts, vma))
    return cluster, sim, summaries


def test_empty_schedule_is_byte_identical():
    plain_cluster, plain_sim, plain = run(SheriffConfig())
    armed_cluster, armed_sim, armed = run(
        SheriffConfig(fault_schedule=FaultSchedule())
    )
    assert armed_sim.faults is not None  # the layer really was active
    assert np.array_equal(
        plain_cluster.placement.vm_host, armed_cluster.placement.vm_host
    )
    assert np.array_equal(
        plain_sim.workload_std_series(), armed_sim.workload_std_series()
    )
    for a, b in zip(plain, armed):
        assert (a.migrations, a.requests, a.rejects, a.total_cost) == (
            b.migrations, b.requests, b.rejects, b.total_cost
        )
        assert b.faults == 0 and b.rollbacks == 0 and not b.degraded
