"""Lossy REQUEST/ACK channel: retry, timeout, idempotence, lease expiry."""

import pytest

from repro.cluster import build_cluster
from repro.errors import ConfigurationError
from repro.faults.channel import ChannelPolicy, UnreliableChannel
from repro.migration.request import ReceiverRegistry, RequestOutcome
from repro.obs.metrics import MetricsRegistry
from repro.topology import build_fattree


@pytest.fixture
def cluster():
    return build_cluster(
        build_fattree(4), hosts_per_rack=2, fill_fraction=0.4, seed=10,
        dependency_degree=0.0,
    )


def pick_vm_and_free_host(cluster):
    pl = cluster.placement
    vm = 0
    need = int(pl.vm_capacity[vm])
    src = pl.host_of(vm)
    for h in range(pl.num_hosts):
        if h != src and pl.free_capacity(h) >= need:
            return vm, h, int(pl.host_rack[h])
    pytest.skip("no free host in fixture")


class ScriptedRng:
    """Feed the channel an exact loss script: values < p read as 'lost'."""

    def __init__(self, values):
        self.values = list(values)

    def random(self):
        return self.values.pop(0)


class TestPolicy:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ChannelPolicy(loss_probability=1.0)
        with pytest.raises(ConfigurationError):
            ChannelPolicy(timeout_s=0.0)
        with pytest.raises(ConfigurationError):
            ChannelPolicy(max_retries=-1)
        with pytest.raises(ConfigurationError):
            ChannelPolicy(backoff_factor=0.5)


class TestLosslessPassthrough:
    def test_zero_loss_matches_direct_request(self, cluster):
        reg = ReceiverRegistry(cluster)
        ch = UnreliableChannel(reg, ChannelPolicy(loss_probability=0.0))
        vm, host, rack = pick_vm_and_free_host(cluster)
        assert ch.request(vm, host, rack) is RequestOutcome.ACK
        assert ch.retries == 0 and ch.timeouts == 0
        assert ch.simulated_wait_s == 0.0
        assert reg.pending == 1


class TestLossAndRetry:
    def make(self, cluster, script, *, max_retries=2, metrics=None):
        reg = ReceiverRegistry(cluster)
        ch = UnreliableChannel(
            reg,
            ChannelPolicy(loss_probability=0.5, max_retries=max_retries),
            metrics=metrics,
        )
        ch._rng = ScriptedRng(script)
        return reg, ch

    def test_request_leg_loss_then_success(self, cluster):
        # attempt 0: request lost (one draw); attempt 1: both legs survive
        reg, ch = self.make(cluster, [0.1, 0.9, 0.9])
        vm, host, rack = pick_vm_and_free_host(cluster)
        assert ch.request(vm, host, rack) is RequestOutcome.ACK
        assert ch.retries == 1
        assert ch.simulated_wait_s == pytest.approx(0.5)
        assert reg.pending == 1

    def test_lost_ack_redelivery_is_idempotent(self, cluster):
        """The REQUEST satellite: a re-delivered ACKed request must not
        double-reserve."""
        # attempt 0: request delivered, ACK lost; attempt 1: both survive
        reg, ch = self.make(cluster, [0.9, 0.1, 0.9, 0.9])
        vm, host, rack = pick_vm_and_free_host(cluster)
        need = int(cluster.placement.vm_capacity[vm])
        assert ch.request(vm, host, rack) is RequestOutcome.ACK
        assert reg.pending == 1  # one reservation despite two deliveries
        assert reg._promised[host] == need  # capacity promised exactly once
        moved = reg.commit_round()
        assert moved == [(vm, host)]
        cluster.placement.check_invariants()

    def test_exhaustion_cancels_orphan_reservation(self, cluster):
        # both attempts deliver the request but lose every reply: the
        # receiver reserved, the sender believes REJECT -> lease expiry
        metrics = MetricsRegistry()
        reg, ch = self.make(
            cluster, [0.9, 0.1, 0.9, 0.1], max_retries=1, metrics=metrics
        )
        vm, host, rack = pick_vm_and_free_host(cluster)
        assert ch.request(vm, host, rack) is RequestOutcome.REJECT
        assert ch.timeouts == 1 and ch.cancels == 1
        assert reg.pending == 0
        assert not reg.holds_reservation(vm)
        assert metrics.total("sheriff_request_timeouts_total") == 1
        assert metrics.total("sheriff_rollbacks_total") == 1
        # commit of an empty round is a no-op
        assert reg.commit_round() == []
        cluster.placement.check_invariants()

    def test_retries_counted_in_metrics(self, cluster):
        metrics = MetricsRegistry()
        reg, ch = self.make(cluster, [0.1, 0.1, 0.9, 0.9], metrics=metrics)
        vm, host, rack = pick_vm_and_free_host(cluster)
        assert ch.request(vm, host, rack) is RequestOutcome.ACK
        assert ch.retries == 2
        assert metrics.total("sheriff_channel_retries_total") == 2


class TestDownRack:
    def test_down_rack_times_out_into_reject(self, cluster):
        reg = ReceiverRegistry(cluster)
        pol = ChannelPolicy(
            loss_probability=0.0, timeout_s=0.5, max_retries=3,
            backoff_factor=2.0,
        )
        ch = UnreliableChannel(reg, pol, is_rack_down=lambda rack: True)
        vm, host, rack = pick_vm_and_free_host(cluster)
        assert ch.request(vm, host, rack) is RequestOutcome.REJECT
        assert ch.timeouts == 1
        assert reg.pending == 0  # the receiver never saw the request
        # full backoff ladder simulated, never slept:
        # 0.5 + 1.0 + 2.0 + 4.0
        assert ch.simulated_wait_s == pytest.approx(7.5)
