"""Custom topology builder tests."""

import networkx as nx
import pytest

from repro.errors import TopologyError
from repro.topology import build_fattree, from_edge_list, from_networkx
from repro.topology.base import NodeKind


class TestFromEdgeList:
    def test_basic(self):
        topo = from_edge_list(
            ["tor", "tor", "agg"],
            [(0, 2, 1.0, 1.0), (1, 2, 1.0, 1.0)],
        )
        assert topo.num_racks == 2
        assert topo.num_links == 2

    def test_kind_objects_accepted(self):
        topo = from_edge_list(
            [NodeKind.TOR, NodeKind.AGG],
            [(0, 1, 2.0, 1.5)],
        )
        assert topo.links.capacity[0] == 2.0

    def test_unknown_kind_rejected(self):
        with pytest.raises(TopologyError):
            from_edge_list(["tor", "router"], [(0, 1, 1.0, 1.0)])

    def test_malformed_edge_rejected(self):
        with pytest.raises(TopologyError):
            from_edge_list(["tor", "agg"], [(0, 1, 1.0)])

    def test_validation_enforced(self):
        with pytest.raises(TopologyError):
            from_edge_list(["tor", "tor", "agg"], [(0, 2, 1.0, 1.0)])  # node 1 isolated

    def test_validation_can_be_skipped(self):
        topo = from_edge_list(
            ["tor", "tor", "agg"], [(0, 2, 1.0, 1.0)], validate=False
        )
        assert topo.num_links == 1


class TestFromNetworkx:
    def test_roundtrip_with_to_networkx(self):
        original = build_fattree(4)
        g = original.to_networkx()
        rebuilt = from_networkx(g)
        assert rebuilt.num_nodes == original.num_nodes
        assert rebuilt.num_racks == original.num_racks
        assert rebuilt.num_links == original.num_links
        lt_a, lt_b = original.links, rebuilt.links
        assert sorted(lt_a.capacity.tolist()) == sorted(lt_b.capacity.tolist())

    def test_missing_kind_rejected(self):
        g = nx.Graph()
        g.add_edge(0, 1)
        with pytest.raises(TopologyError):
            from_networkx(g)

    def test_non_contiguous_ids_rejected(self):
        g = nx.Graph()
        g.add_node(0, kind="TOR")
        g.add_node(5, kind="AGG")
        g.add_edge(0, 5)
        with pytest.raises(TopologyError):
            from_networkx(g)

    def test_default_attributes(self):
        g = nx.Graph()
        g.add_node(0, kind="TOR")
        g.add_node(1, kind="TOR")
        g.add_node(2, kind="AGG")
        g.add_edge(0, 2)
        g.add_edge(1, 2)
        topo = from_networkx(g, default_capacity=5.0, default_distance=2.0)
        assert (topo.links.capacity == 5.0).all()
        assert (topo.links.distance == 2.0).all()
