"""Rack layout geometry tests."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.topology.layout import (
    RACK_DEPTH_M,
    RACK_WIDTH_M,
    ROW_GAP_M,
    rack_distance_matrix,
    rack_positions,
)


class TestPositions:
    def test_adjacent_racks_one_width_apart(self):
        pos = rack_positions(5, racks_per_row=10)
        assert pos[1, 0] - pos[0, 0] == pytest.approx(RACK_WIDTH_M)
        assert pos[1, 1] == pos[0, 1]

    def test_row_wrap(self):
        pos = rack_positions(12, racks_per_row=10)
        assert pos[10, 1] - pos[0, 1] == pytest.approx(RACK_DEPTH_M + ROW_GAP_M)
        assert pos[10, 0] == pos[0, 0]

    def test_rejects_zero_racks(self):
        with pytest.raises(ConfigurationError):
            rack_positions(0)

    def test_rejects_bad_row_size(self):
        with pytest.raises(ConfigurationError):
            rack_positions(5, racks_per_row=0)


class TestDistances:
    def test_symmetric_zero_diagonal(self):
        d = rack_distance_matrix(7, racks_per_row=3)
        np.testing.assert_array_equal(d, d.T)
        assert (np.diagonal(d) == 0).all()

    def test_rectilinear_value(self):
        d = rack_distance_matrix(12, racks_per_row=10)
        # rack 0 and rack 11: one column over, one row down
        expected = 1 * RACK_WIDTH_M + (RACK_DEPTH_M + ROW_GAP_M)
        assert d[0, 11] == pytest.approx(expected)

    def test_triangle_inequality(self):
        d = rack_distance_matrix(9, racks_per_row=3)
        n = d.shape[0]
        for i in range(n):
            for j in range(n):
                for k in range(n):
                    assert d[i, j] <= d[i, k] + d[k, j] + 1e-12
