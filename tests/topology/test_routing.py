"""ECMP routing tests."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, TopologyError
from repro.topology import (
    build_bcube,
    build_fattree,
    ecmp_path,
    equal_cost_paths,
    path_diversity,
)


class TestEqualCostPaths:
    def test_fattree_intra_pod_count(self):
        k = 4
        t = build_fattree(k)
        paths = equal_cost_paths(t, 0, 1)
        assert len(paths) == k // 2  # one per pod agg

    def test_fattree_inter_pod_count(self):
        k = 4
        t = build_fattree(k)
        paths = equal_cost_paths(t, 0, 2)
        assert len(paths) == (k // 2) ** 2  # one per core

    def test_all_paths_optimal_and_distinct(self):
        t = build_fattree(4)
        paths = equal_cost_paths(t, 0, 7)
        lengths = {len(p) for p in paths}
        assert lengths == {5}  # 4 hops
        assert len({tuple(p) for p in paths}) == len(paths)
        for p in paths:
            assert p[0] == 0 and p[-1] == 7
            for a, b in zip(p, p[1:]):
                assert t.has_edge(a, b)

    def test_bcube_diversity(self):
        n = 4
        t = build_bcube(n)
        # complete bipartite: n disjoint 2-hop paths between any rack pair
        paths = equal_cost_paths(t, 0, 1)
        assert len(paths) == n

    def test_trivial_path(self):
        t = build_fattree(4)
        assert equal_cost_paths(t, 3, 3) == [[3]]

    def test_cap_raises(self):
        t = build_fattree(8)
        with pytest.raises(ConfigurationError):
            equal_cost_paths(t, 0, 16, max_paths=2)

    def test_unreachable_raises(self):
        from repro.topology import from_edge_list

        t = from_edge_list(
            ["tor", "tor", "agg", "agg"],
            [(0, 2, 1.0, 1.0), (1, 3, 1.0, 1.0)],
            validate=False,
        )
        with pytest.raises(TopologyError):
            equal_cost_paths(t, 0, 1)

    def test_weight_selects_different_sets(self):
        # with inverse-capacity weights, the fat agg-core links are cheap,
        # which can change which paths tie; just check both run
        t = build_fattree(4)
        by_hops = equal_cost_paths(t, 0, 2, weight="hops")
        by_cap = equal_cost_paths(t, 0, 2, weight="inverse_capacity")
        assert by_hops and by_cap

    def test_unknown_weight(self):
        t = build_fattree(4)
        with pytest.raises(ConfigurationError):
            equal_cost_paths(t, 0, 1, weight="latency")


class TestEcmpPath:
    def test_deterministic_per_key(self):
        t = build_fattree(4)
        assert ecmp_path(t, 0, 2, 42) == ecmp_path(t, 0, 2, 42)

    def test_spreads_across_group(self):
        t = build_fattree(4)
        chosen = {tuple(ecmp_path(t, 0, 2, key)) for key in range(64)}
        assert len(chosen) >= 3  # 4 paths available; hashing hits most

    def test_valid_path(self):
        t = build_fattree(4)
        p = ecmp_path(t, 1, 6, 7)
        assert p[0] == 1 and p[-1] == 6


class TestPathDiversity:
    def test_fattree_matrix(self):
        k = 4
        t = build_fattree(k)
        d = path_diversity(t)
        assert d[0, 1] == k // 2
        assert d[0, 2] == (k // 2) ** 2
        assert (np.diagonal(d) == 1).all()
        np.testing.assert_array_equal(d, d.T)
