"""Structural tests for the BCube builder."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.topology import build_bcube, validate_topology
from repro.topology.base import NodeKind
from repro.topology.bcube import bcube_counts, _digits, _undigits


class TestDigits:
    @pytest.mark.parametrize("x,n,count", [(0, 2, 3), (7, 2, 3), (13, 4, 2), (99, 10, 2)])
    def test_roundtrip(self, x, n, count):
        assert _undigits(_digits(x, n, count), n) == x

    def test_known_digits(self):
        assert _digits(6, 2, 3) == [0, 1, 1]  # 6 = 110b, LSB first


class TestCounts:
    @pytest.mark.parametrize("n", [2, 4, 8])
    def test_two_level_counts(self, n):
        t = build_bcube(n)
        c = bcube_counts(n)
        assert t.num_racks == c["racks"] == n
        assert len(t.nodes_of_kind(NodeKind.BCUBE)) == c["upper_switches"] == n
        # complete bipartite between racks and level-1 switches
        assert t.num_links == n * n

    def test_three_level_counts(self):
        n = 3
        t = build_bcube(n, levels=3)
        c = bcube_counts(n, 3)
        assert t.num_racks == n**2
        assert len(t.nodes_of_kind(NodeKind.BCUBE)) == 2 * n**2
        assert c["servers"] == n**3

    def test_rejects_small_n(self):
        with pytest.raises(ConfigurationError):
            build_bcube(1)

    def test_rejects_single_level(self):
        with pytest.raises(ConfigurationError):
            build_bcube(4, levels=1)


class TestStructure:
    @pytest.mark.parametrize("n,levels", [(2, 2), (4, 2), (3, 3), (2, 4)])
    def test_validates(self, n, levels):
        validate_topology(build_bcube(n, levels))

    def test_two_level_is_complete_bipartite(self):
        n = 4
        t = build_bcube(n)
        for rack in range(n):
            nbrs = t.neighbors(rack)
            assert len(nbrs) == n
            assert (nbrs >= t.num_racks).all()

    def test_rack_reaches_n_switches_per_level(self):
        n, levels = 3, 3
        t = build_bcube(n, levels)
        per_level = n ** (levels - 1)
        for rack in range(t.num_racks):
            nbrs = t.neighbors(rack)
            lvl1 = [x for x in nbrs if t.num_racks <= x < t.num_racks + per_level]
            lvl2 = [x for x in nbrs if x >= t.num_racks + per_level]
            assert len(lvl1) == n
            # level-2 switches shared by servers differing only in digit 0
            assert len(lvl2) == n

    def test_distinct_racks_share_limited_switches(self):
        # in BCube(n,1) every pair of racks shares every switch (complete
        # bipartite); in BCube(n,2) rack pairs share at most n switches
        t = build_bcube(3, levels=3)
        s0 = set(t.neighbors(0).tolist())
        s1 = set(t.neighbors(1).tolist())
        assert 0 < len(s0 & s1) <= 3
