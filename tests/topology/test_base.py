"""Tests for the Topology data structure."""

import numpy as np
import pytest

from repro.errors import TopologyError
from repro.topology.base import LinkTable, NodeKind, Topology


def make_line(n_tor=2, n_switch=1):
    kinds = [NodeKind.TOR] * n_tor + [NodeKind.AGG] * n_switch
    return Topology("line", kinds)


class TestConstruction:
    def test_requires_nodes(self):
        with pytest.raises(TopologyError):
            Topology("empty", [])

    def test_requires_tor(self):
        with pytest.raises(TopologyError):
            Topology("no-tor", [NodeKind.AGG, NodeKind.CORE])

    def test_tor_must_be_prefix(self):
        with pytest.raises(TopologyError):
            Topology("bad", [NodeKind.AGG, NodeKind.TOR])

    def test_num_racks_counts_tor_prefix(self):
        t = Topology("t", [NodeKind.TOR, NodeKind.TOR, NodeKind.AGG])
        assert t.num_racks == 2
        assert t.num_nodes == 3


class TestLinks:
    def test_add_link_returns_sequential_ids(self):
        t = make_line(2, 1)
        assert t.add_link(0, 2, 1.0, 1.0) == 0
        assert t.add_link(1, 2, 1.0, 1.0) == 1
        assert t.num_links == 2

    def test_duplicate_link_rejected_both_orders(self):
        t = make_line()
        t.add_link(0, 2, 1.0, 1.0)
        with pytest.raises(TopologyError):
            t.add_link(0, 2, 1.0, 1.0)
        with pytest.raises(TopologyError):
            t.add_link(2, 0, 1.0, 1.0)

    def test_self_loop_rejected(self):
        t = make_line()
        with pytest.raises(TopologyError):
            t.add_link(1, 1, 1.0, 1.0)

    def test_out_of_range_endpoint_rejected(self):
        t = make_line()
        with pytest.raises(TopologyError):
            t.add_link(0, 99, 1.0, 1.0)

    def test_nonpositive_capacity_rejected(self):
        t = make_line()
        with pytest.raises(TopologyError):
            t.add_link(0, 2, 0.0, 1.0)

    def test_negative_distance_rejected(self):
        t = make_line()
        with pytest.raises(TopologyError):
            t.add_link(0, 2, 1.0, -1.0)

    def test_edge_id_lookup_is_symmetric(self):
        t = make_line()
        eid = t.add_link(0, 2, 5.0, 2.0)
        assert t.edge_id(0, 2) == eid
        assert t.edge_id(2, 0) == eid
        assert t.has_edge(2, 0)
        assert not t.has_edge(0, 1)

    def test_edge_id_missing_raises(self):
        t = make_line()
        with pytest.raises(TopologyError):
            t.edge_id(0, 1)

    def test_link_table_values(self):
        t = make_line()
        t.add_link(0, 2, 5.0, 2.0)
        t.add_link(1, 2, 7.0, 3.0)
        lt = t.links
        assert isinstance(lt, LinkTable)
        assert len(lt) == 2
        np.testing.assert_array_equal(lt.capacity, [5.0, 7.0])
        np.testing.assert_array_equal(lt.distance, [2.0, 3.0])


class TestQueries:
    def test_neighbors_sorted(self):
        t = Topology("t", [NodeKind.TOR] * 3 + [NodeKind.AGG])
        t.add_link(2, 3, 1.0, 1.0)
        t.add_link(0, 3, 1.0, 1.0)
        t.add_link(1, 3, 1.0, 1.0)
        np.testing.assert_array_equal(t.neighbors(3), [0, 1, 2])
        np.testing.assert_array_equal(t.neighbors(0), [3])

    def test_nodes_of_kind(self):
        t = make_line(2, 1)
        np.testing.assert_array_equal(t.nodes_of_kind(NodeKind.TOR), [0, 1])
        np.testing.assert_array_equal(t.nodes_of_kind(NodeKind.AGG), [2])

    def test_racks_and_switches_partition_nodes(self):
        t = make_line(2, 1)
        all_nodes = np.concatenate([t.racks(), t.switches()])
        np.testing.assert_array_equal(np.sort(all_nodes), np.arange(t.num_nodes))

    def test_degree(self):
        t = make_line(2, 1)
        t.add_link(0, 2, 1.0, 1.0)
        t.add_link(1, 2, 1.0, 1.0)
        np.testing.assert_array_equal(t.degree(), [1, 1, 2])


class TestMatrices:
    def test_adjacency_matrix_distance(self):
        t = make_line()
        t.add_link(0, 2, 4.0, 2.5)
        m = t.adjacency_matrix("distance")
        assert m[0, 2] == 2.5 and m[2, 0] == 2.5
        assert np.isinf(m[0, 1])
        assert (np.diagonal(m) == 0).all()

    def test_adjacency_matrix_hops(self):
        t = make_line()
        t.add_link(0, 2, 4.0, 2.5)
        m = t.adjacency_matrix("hops")
        assert m[0, 2] == 1.0

    def test_adjacency_matrix_unknown_weight(self):
        t = make_line()
        t.add_link(0, 2, 4.0, 2.5)
        with pytest.raises(TopologyError):
            t.adjacency_matrix("latency")

    def test_to_networkx_roundtrip(self):
        t = make_line()
        t.add_link(0, 2, 4.0, 2.5)
        t.add_link(1, 2, 3.0, 1.5)
        g = t.to_networkx()
        assert g.number_of_nodes() == 3
        assert g.number_of_edges() == 2
        assert g.edges[0, 2]["capacity"] == 4.0
        assert g.nodes[0]["kind"] == "TOR"
