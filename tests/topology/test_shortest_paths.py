"""Floyd–Warshall kernel tests, including cross-validation with networkx."""

import networkx as nx
import numpy as np
import pytest

from repro.errors import TopologyError
from repro.topology import (
    build_fattree,
    floyd_warshall,
    floyd_warshall_with_paths,
    reconstruct_path,
)


def random_weighted_graph(rng, n=12, p=0.4):
    w = np.full((n, n), np.inf)
    np.fill_diagonal(w, 0.0)
    for i in range(n):
        for j in range(i + 1, n):
            if rng.random() < p:
                val = float(rng.uniform(0.5, 5.0))
                w[i, j] = val
                w[j, i] = val
    return w


class TestFloydWarshall:
    def test_triangle(self):
        w = np.array([[0, 1, 10], [1, 0, 1], [10, 1, 0]], dtype=float)
        d = floyd_warshall(w)
        assert d[0, 2] == 2.0

    def test_matches_networkx(self, rng):
        for _ in range(5):
            w = random_weighted_graph(rng)
            d = floyd_warshall(w)
            g = nx.Graph()
            n = w.shape[0]
            g.add_nodes_from(range(n))
            for i in range(n):
                for j in range(i + 1, n):
                    if np.isfinite(w[i, j]):
                        g.add_edge(i, j, weight=w[i, j])
            ref = dict(nx.all_pairs_dijkstra_path_length(g, weight="weight"))
            for i in range(n):
                for j in range(n):
                    if j in ref.get(i, {}):
                        assert d[i, j] == pytest.approx(ref[i][j])
                    else:
                        assert np.isinf(d[i, j])

    def test_unreachable_stays_inf(self):
        w = np.full((3, 3), np.inf)
        np.fill_diagonal(w, 0.0)
        w[0, 1] = w[1, 0] = 1.0
        d = floyd_warshall(w)
        assert np.isinf(d[0, 2])

    def test_input_not_mutated(self):
        w = np.array([[0, 1, 10], [1, 0, 1], [10, 1, 0]], dtype=float)
        orig = w.copy()
        floyd_warshall(w)
        np.testing.assert_array_equal(w, orig)

    def test_rejects_nonsquare(self):
        with pytest.raises(TopologyError):
            floyd_warshall(np.zeros((2, 3)))

    def test_rejects_nonzero_diagonal(self):
        w = np.ones((2, 2))
        with pytest.raises(TopologyError):
            floyd_warshall(w)

    def test_rejects_negative_weights(self):
        w = np.array([[0.0, -1.0], [-1.0, 0.0]])
        with pytest.raises(TopologyError):
            floyd_warshall(w)


class TestPathReconstruction:
    def test_paths_have_matching_length(self, rng):
        w = random_weighted_graph(rng, n=10, p=0.5)
        d, nxt = floyd_warshall_with_paths(w)
        n = w.shape[0]
        for i in range(n):
            for j in range(n):
                if i == j or np.isinf(d[i, j]):
                    continue
                path = reconstruct_path(nxt, i, j)
                assert path[0] == i and path[-1] == j
                total = sum(w[a, b] for a, b in zip(path, path[1:]))
                assert total == pytest.approx(d[i, j])

    def test_trivial_path(self):
        w = np.zeros((1, 1))
        _, nxt = floyd_warshall_with_paths(w)
        assert reconstruct_path(nxt, 0, 0) == [0]

    def test_unreachable_raises(self):
        w = np.full((3, 3), np.inf)
        np.fill_diagonal(w, 0.0)
        w[0, 1] = w[1, 0] = 1.0
        _, nxt = floyd_warshall_with_paths(w)
        with pytest.raises(TopologyError):
            reconstruct_path(nxt, 0, 2)

    def test_out_of_range_raises(self):
        w = np.zeros((2, 2))
        w[0, 1] = w[1, 0] = 1.0
        _, nxt = floyd_warshall_with_paths(w)
        with pytest.raises(TopologyError):
            reconstruct_path(nxt, 0, 5)


class TestOnFabric:
    def test_fattree_rack_distances(self):
        t = build_fattree(4)
        d = floyd_warshall(t.adjacency_matrix("hops"))
        r = t.num_racks
        rack_d = d[:r, :r]
        # same pod: 2 hops via agg; different pod: 4 hops via core
        assert rack_d[0, 1] == 2.0
        assert rack_d[0, 2] == 4.0
        assert (np.diagonal(rack_d) == 0).all()
        np.testing.assert_array_equal(rack_d, rack_d.T)
