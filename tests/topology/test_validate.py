"""Topology validation tests."""

import pytest

from repro.errors import TopologyError
from repro.topology import build_bcube, build_fattree, validate_topology
from repro.topology.base import NodeKind, Topology
from repro.topology.validate import connected_components, is_connected


def two_island_topology():
    t = Topology("islands", [NodeKind.TOR] * 2 + [NodeKind.AGG] * 2)
    t.add_link(0, 2, 1.0, 1.0)
    t.add_link(1, 3, 1.0, 1.0)
    return t


class TestConnectivity:
    def test_fattree_connected(self):
        assert is_connected(build_fattree(4))

    def test_bcube_connected(self):
        assert is_connected(build_bcube(4))

    def test_islands_detected(self):
        t = two_island_topology()
        assert not is_connected(t)
        comps = connected_components(t)
        assert len(comps) == 2
        assert sorted(len(c) for c in comps) == [2, 2]

    def test_components_cover_all_nodes(self):
        t = two_island_topology()
        nodes = sorted(x for c in connected_components(t) for x in c.tolist())
        assert nodes == list(range(t.num_nodes))


class TestValidation:
    def test_valid_fabrics_pass(self):
        validate_topology(build_fattree(4))
        validate_topology(build_bcube(3, 3))

    def test_no_links_fails(self):
        t = Topology("bare", [NodeKind.TOR, NodeKind.AGG])
        with pytest.raises(TopologyError, match="no links"):
            validate_topology(t)

    def test_disconnected_fails(self):
        with pytest.raises(TopologyError, match="disconnected"):
            validate_topology(two_island_topology())

    def test_isolated_node_fails(self):
        t = Topology("iso", [NodeKind.TOR] * 2 + [NodeKind.AGG])
        t.add_link(0, 2, 1.0, 1.0)
        with pytest.raises(TopologyError, match="isolated"):
            validate_topology(t)

    def test_mutated_capacity_detected(self):
        t = build_fattree(4)
        t.links.capacity[0] = -1.0  # simulate corruption through the arrays
        with pytest.raises(TopologyError, match="capacity"):
            validate_topology(t)
