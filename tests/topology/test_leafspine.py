"""Leaf-spine builder tests."""

import pytest

from repro.errors import ConfigurationError
from repro.topology import (
    build_leaf_spine,
    equal_cost_paths,
    leaf_spine_counts,
    validate_topology,
)
from repro.cluster.shim import neighbor_racks


class TestBuild:
    def test_counts_and_validation(self):
        t = build_leaf_spine(8, 4)
        c = leaf_spine_counts(8, 4)
        assert t.num_racks == 8
        assert t.num_links == c["links"] == 32
        validate_topology(t)

    def test_full_mesh_degree(self):
        t = build_leaf_spine(6, 3)
        deg = t.degree()
        assert (deg[:6] == 3).all()   # each leaf hits every spine
        assert (deg[6:] == 6).all()   # each spine hits every leaf

    def test_ecmp_equals_spines(self):
        t = build_leaf_spine(5, 4)
        assert len(equal_cost_paths(t, 0, 3)) == 4

    def test_everyone_is_a_neighbor(self):
        t = build_leaf_spine(6, 2)
        assert neighbor_racks(t, 0) == frozenset(range(1, 6))

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            build_leaf_spine(1, 4)
        with pytest.raises(ConfigurationError):
            build_leaf_spine(4, 0)
