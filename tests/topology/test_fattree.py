"""Structural tests for the Fat-Tree builder."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.topology import build_fattree, validate_topology
from repro.topology.base import NodeKind
from repro.topology.fattree import fattree_counts


class TestCounts:
    @pytest.mark.parametrize("k", [2, 4, 8, 16])
    def test_element_counts(self, k):
        t = build_fattree(k)
        c = fattree_counts(k)
        assert t.num_racks == c["tor"] == k * k // 2
        assert len(t.nodes_of_kind(NodeKind.AGG)) == c["agg"]
        assert len(t.nodes_of_kind(NodeKind.CORE)) == c["core"] == (k // 2) ** 2
        assert t.num_links == c["links"]

    def test_odd_k_rejected(self):
        with pytest.raises(ConfigurationError):
            build_fattree(5)

    def test_k_below_two_rejected(self):
        with pytest.raises(ConfigurationError):
            build_fattree(0)


class TestStructure:
    @pytest.mark.parametrize("k", [4, 8])
    def test_validates(self, k):
        validate_topology(build_fattree(k))

    def test_tor_degree_is_half_k(self):
        k = 8
        t = build_fattree(k)
        deg = t.degree()
        assert (deg[: t.num_racks] == k // 2).all()

    def test_agg_degree_is_k(self):
        k = 8
        t = build_fattree(k)
        deg = t.degree()
        agg = t.nodes_of_kind(NodeKind.AGG)
        assert (deg[agg] == k).all()

    def test_core_degree_is_k(self):
        k = 8
        t = build_fattree(k)
        core = t.nodes_of_kind(NodeKind.CORE)
        assert (t.degree()[core] == k).all()

    def test_tor_connects_only_to_own_pod_aggs(self):
        k = 4
        t = build_fattree(k)
        half = k // 2
        agg_base = t.num_racks
        for tor in range(t.num_racks):
            pod = tor // half
            for nbr in t.neighbors(tor):
                assert agg_base + pod * half <= nbr < agg_base + (pod + 1) * half

    def test_link_capacities_follow_paper(self):
        t = build_fattree(4)
        lt = t.links
        agg_base = t.num_racks
        core_base = agg_base + len(t.nodes_of_kind(NodeKind.AGG))
        for i in range(len(lt)):
            u, v = int(lt.u[i]), int(lt.v[i])
            if max(u, v) >= core_base:
                assert lt.capacity[i] == 10.0  # agg-core
            else:
                assert lt.capacity[i] == 1.0  # tor-agg

    def test_custom_capacities(self):
        t = build_fattree(4, tor_agg_capacity=2.5, agg_core_capacity=40.0)
        caps = set(t.links.capacity.tolist())
        assert caps == {2.5, 40.0}

    def test_meta_records_k(self):
        t = build_fattree(6)
        assert t.meta["k"] == 6.0
