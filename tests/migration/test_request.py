"""REQUEST/ACK/REJECT protocol tests (Alg. 4)."""

import pytest

from repro.cluster import build_cluster
from repro.errors import ProtocolError
from repro.migration.request import ReceiverRegistry, RequestOutcome
from repro.topology import build_fattree


@pytest.fixture
def cluster():
    return build_cluster(
        build_fattree(4), hosts_per_rack=2, fill_fraction=0.4, seed=10,
        dependency_degree=0.0,
    )


def pick_vm_and_free_host(cluster):
    pl = cluster.placement
    vm = 0
    need = int(pl.vm_capacity[vm])
    src = pl.host_of(vm)
    for h in range(pl.num_hosts):
        if h != src and pl.free_capacity(h) >= need:
            return vm, h, int(pl.host_rack[h])
    pytest.skip("no free host in fixture")


class TestFCFS:
    def test_ack_and_commit(self, cluster):
        reg = ReceiverRegistry(cluster)
        vm, host, rack = pick_vm_and_free_host(cluster)
        assert reg.request(vm, host, rack) is RequestOutcome.ACK
        assert reg.pending == 1
        moved = reg.commit_round()
        assert moved == [(vm, host)]
        assert cluster.placement.host_of(vm) == host
        cluster.placement.check_invariants()

    def test_reject_when_promised_capacity_exhausted(self, cluster):
        pl = cluster.placement
        reg = ReceiverRegistry(cluster)
        # fill one host's free capacity with promises until a reject occurs
        target = None
        for h in range(pl.num_hosts):
            if pl.free_capacity(h) > 0:
                target = h
                break
        assert target is not None
        rack = int(pl.host_rack[target])
        outcomes = []
        for vm in range(pl.num_vms):
            if pl.host_of(vm) == target:
                continue
            outcomes.append(reg.request(vm, target, rack))
            if outcomes[-1] is RequestOutcome.REJECT:
                break
        assert RequestOutcome.REJECT in outcomes
        # commits must still respect capacity
        reg.commit_round()
        pl.check_invariants()

    def test_wrong_delegation_ignored(self, cluster):
        reg = ReceiverRegistry(cluster)
        vm, host, rack = pick_vm_and_free_host(cluster)
        wrong = (rack + 1) % cluster.num_racks
        assert reg.request(vm, host, wrong) is RequestOutcome.IGNORED
        assert reg.pending == 0

    def test_duplicate_reservation_raises(self, cluster):
        reg = ReceiverRegistry(cluster)
        vm, host, rack = pick_vm_and_free_host(cluster)
        reg.request(vm, host, rack)
        with pytest.raises(ProtocolError):
            reg.request(vm, host, rack)

    def test_reset_round_drops_promises(self, cluster):
        reg = ReceiverRegistry(cluster)
        vm, host, rack = pick_vm_and_free_host(cluster)
        reg.request(vm, host, rack)
        reg.reset_round()
        assert reg.pending == 0
        assert cluster.placement.host_of(vm) != host
        # capacity promise released: the same request works again
        assert reg.request(vm, host, rack) is RequestOutcome.ACK

    def test_unknown_ids_raise(self, cluster):
        reg = ReceiverRegistry(cluster)
        with pytest.raises(ProtocolError):
            reg.request(10**6, 0, 0)
        with pytest.raises(ProtocolError):
            reg.request(0, 10**6, 0)


class TestDependencyConflicts:
    def test_conflicting_destination_rejected(self, cluster):
        pl = cluster.placement
        reg = ReceiverRegistry(cluster)
        # make vm0 dependent on some VM of another host, then aim vm0 there
        for other in range(1, pl.num_vms):
            if pl.host_of(other) != pl.host_of(0):
                host = pl.host_of(other)
                if pl.free_capacity(host) >= int(pl.vm_capacity[0]):
                    cluster.dependencies.add_pair(0, other)
                    rack = int(pl.host_rack[host])
                    assert reg.request(0, host, rack) is RequestOutcome.REJECT
                    return
        pytest.skip("fixture too full for the conflict scenario")
