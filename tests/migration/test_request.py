"""REQUEST/ACK/REJECT protocol tests (Alg. 4)."""

import pytest

from repro.cluster import build_cluster
from repro.errors import ProtocolError
from repro.migration.request import ReceiverRegistry, RequestOutcome
from repro.topology import build_fattree


@pytest.fixture
def cluster():
    return build_cluster(
        build_fattree(4), hosts_per_rack=2, fill_fraction=0.4, seed=10,
        dependency_degree=0.0,
    )


def pick_vm_and_free_host(cluster):
    pl = cluster.placement
    vm = 0
    need = int(pl.vm_capacity[vm])
    src = pl.host_of(vm)
    for h in range(pl.num_hosts):
        if h != src and pl.free_capacity(h) >= need:
            return vm, h, int(pl.host_rack[h])
    pytest.skip("no free host in fixture")


class TestFCFS:
    def test_ack_and_commit(self, cluster):
        reg = ReceiverRegistry(cluster)
        vm, host, rack = pick_vm_and_free_host(cluster)
        assert reg.request(vm, host, rack) is RequestOutcome.ACK
        assert reg.pending == 1
        moved = reg.commit_round()
        assert moved == [(vm, host)]
        assert cluster.placement.host_of(vm) == host
        cluster.placement.check_invariants()

    def test_reject_when_promised_capacity_exhausted(self, cluster):
        pl = cluster.placement
        reg = ReceiverRegistry(cluster)
        # fill one host's free capacity with promises until a reject occurs
        target = None
        for h in range(pl.num_hosts):
            if pl.free_capacity(h) > 0:
                target = h
                break
        assert target is not None
        rack = int(pl.host_rack[target])
        outcomes = []
        for vm in range(pl.num_vms):
            if pl.host_of(vm) == target:
                continue
            outcomes.append(reg.request(vm, target, rack))
            if outcomes[-1] is RequestOutcome.REJECT:
                break
        assert RequestOutcome.REJECT in outcomes
        # commits must still respect capacity
        reg.commit_round()
        pl.check_invariants()

    def test_wrong_delegation_ignored(self, cluster):
        reg = ReceiverRegistry(cluster)
        vm, host, rack = pick_vm_and_free_host(cluster)
        wrong = (rack + 1) % cluster.num_racks
        assert reg.request(vm, host, wrong) is RequestOutcome.IGNORED
        assert reg.pending == 0

    def test_duplicate_reservation_raises(self, cluster):
        reg = ReceiverRegistry(cluster)
        vm, host, rack = pick_vm_and_free_host(cluster)
        reg.request(vm, host, rack)
        with pytest.raises(ProtocolError):
            reg.request(vm, host, rack)

    def test_reset_round_drops_promises(self, cluster):
        reg = ReceiverRegistry(cluster)
        vm, host, rack = pick_vm_and_free_host(cluster)
        reg.request(vm, host, rack)
        reg.reset_round()
        assert reg.pending == 0
        assert cluster.placement.host_of(vm) != host
        # capacity promise released: the same request works again
        assert reg.request(vm, host, rack) is RequestOutcome.ACK

    def test_unknown_ids_raise(self, cluster):
        reg = ReceiverRegistry(cluster)
        with pytest.raises(ProtocolError):
            reg.request(10**6, 0, 0)
        with pytest.raises(ProtocolError):
            reg.request(0, 10**6, 0)


def pick_two_moves(cluster):
    """Two distinct VMs with two distinct free destination hosts."""
    pl = cluster.placement
    moves = []
    taken_hosts = set()
    for vm in range(pl.num_vms):
        src = pl.host_of(vm)
        need = int(pl.vm_capacity[vm])
        for h in range(pl.num_hosts):
            if h != src and h not in taken_hosts and pl.free_capacity(h) >= need:
                moves.append((vm, h, int(pl.host_rack[h])))
                # keep destinations disjoint from every involved host, so
                # killing one destination cannot block another rollback
                taken_hosts.add(h)
                taken_hosts.add(src)
                break
        if len(moves) == 2:
            return moves
    pytest.skip("fixture too full for two disjoint moves")


class TestAtomicCommit:
    """Regression: commit_round must never half-apply a round."""

    def test_failed_commit_rolls_back_applied_moves(self, cluster):
        pl = cluster.placement
        reg = ReceiverRegistry(cluster)
        (vm1, h1, r1), (vm2, h2, r2) = pick_two_moves(cluster)
        src1 = pl.host_of(vm1)
        assert reg.request(vm1, h1, r1) is RequestOutcome.ACK
        assert reg.request(vm2, h2, r2) is RequestOutcome.ACK
        pl.disable_host(h2)  # second destination dies mid-round
        with pytest.raises(ProtocolError, match="rolled back"):
            reg.commit_round()
        # the first move was applied, then undone: nothing half-committed
        assert pl.host_of(vm1) == src1
        assert pl.host_of(vm2) != h2
        assert reg.pending == 0
        pl.check_invariants()

    def test_tolerant_commit_reports_partial_failure(self, cluster):
        pl = cluster.placement
        reg = ReceiverRegistry(cluster)
        (vm1, h1, r1), (vm2, h2, r2) = pick_two_moves(cluster)
        reg.request(vm1, h1, r1)
        reg.request(vm2, h2, r2)
        pl.disable_host(h2)
        moved, failed = reg.commit_round_tolerant()
        assert moved == [(vm1, h1)]
        assert [(vm, host) for vm, host, _reason in failed] == [(vm2, h2)]
        assert pl.host_of(vm1) == h1
        assert pl.host_of(vm2) != h2
        pl.check_invariants()


class TestIdempotentRedelivery:
    """A re-delivered REQUEST answers with the cached verdict (lost-ACK
    retries must not double-reserve)."""

    def test_redelivered_ack_does_not_double_reserve(self, cluster):
        pl = cluster.placement
        reg = ReceiverRegistry(cluster)
        vm, host, rack = pick_vm_and_free_host(cluster)
        need = int(pl.vm_capacity[vm])
        assert reg.redeliver(vm, host, rack) is RequestOutcome.ACK
        assert reg.redeliver(vm, host, rack) is RequestOutcome.ACK  # duplicate
        assert reg.pending == 1
        assert reg._promised[host] == need  # promised once, not twice
        assert reg.commit_round() == [(vm, host)]
        pl.check_invariants()

    def test_first_delivery_falls_through_to_request(self, cluster):
        reg = ReceiverRegistry(cluster)
        vm, host, rack = pick_vm_and_free_host(cluster)
        wrong = (rack + 1) % cluster.num_racks
        assert reg.redeliver(vm, host, wrong) is RequestOutcome.IGNORED
        assert reg.redeliver(vm, host, wrong) is RequestOutcome.IGNORED
        assert reg.pending == 0

    def test_cancel_releases_the_slot(self, cluster):
        reg = ReceiverRegistry(cluster)
        vm, host, rack = pick_vm_and_free_host(cluster)
        reg.redeliver(vm, host, rack)
        assert reg.holds_reservation(vm)
        reg.cancel(vm)
        assert not reg.holds_reservation(vm)
        assert reg.pending == 0
        # capacity and the verdict cache are both released
        assert reg.redeliver(vm, host, rack) is RequestOutcome.ACK

    def test_cancel_without_reservation_raises(self, cluster):
        reg = ReceiverRegistry(cluster)
        with pytest.raises(ProtocolError):
            reg.cancel(0)


class TestDependencyConflicts:
    def test_conflicting_destination_rejected(self, cluster):
        pl = cluster.placement
        reg = ReceiverRegistry(cluster)
        # make vm0 dependent on some VM of another host, then aim vm0 there
        for other in range(1, pl.num_vms):
            if pl.host_of(other) != pl.host_of(0):
                host = pl.host_of(other)
                if pl.free_capacity(host) >= int(pl.vm_capacity[0]):
                    cluster.dependencies.add_pair(0, other)
                    rack = int(pl.host_rack[host])
                    assert reg.request(0, host, rack) is RequestOutcome.REJECT
                    return
        pytest.skip("fixture too full for the conflict scenario")
