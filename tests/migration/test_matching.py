"""Kuhn-Munkres matching tests, cross-validated against scipy."""

import numpy as np
import pytest
from scipy.optimize import linear_sum_assignment

from repro.errors import ConfigurationError, MigrationError
from repro.migration.matching import hungarian


class TestCorrectness:
    def test_identity_matrix(self):
        c = np.array([[0.0, 1.0], [1.0, 0.0]])
        a, tot = hungarian(c)
        np.testing.assert_array_equal(a, [0, 1])
        assert tot == 0.0

    def test_forces_expensive_choice(self):
        c = np.array([[1.0, 2.0], [1.0, 10.0]])
        a, tot = hungarian(c)
        np.testing.assert_array_equal(a, [1, 0])
        assert tot == 3.0

    @pytest.mark.parametrize("seed", range(10))
    def test_matches_scipy_square(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(2, 20))
        c = rng.random((n, n)) * 100
        _, tot = hungarian(c)
        r, cc = linear_sum_assignment(c)
        assert tot == pytest.approx(c[r, cc].sum())

    @pytest.mark.parametrize("seed", range(10))
    def test_matches_scipy_rectangular(self, seed):
        rng = np.random.default_rng(100 + seed)
        n = int(rng.integers(1, 10))
        m = int(rng.integers(n, 18))
        c = rng.random((n, m)) * 10
        a, tot = hungarian(c)
        r, cc = linear_sum_assignment(c)
        assert tot == pytest.approx(c[r, cc].sum())
        assert len(set(a.tolist())) == n  # distinct columns

    def test_single_row(self):
        c = np.array([[3.0, 1.0, 2.0]])
        a, tot = hungarian(c)
        assert a[0] == 1 and tot == 1.0

    def test_empty(self):
        a, tot = hungarian(np.empty((0, 5)))
        assert a.shape == (0,) and tot == 0.0

    def test_integer_costs(self):
        c = np.array([[4, 1, 3], [2, 0, 5], [3, 2, 2]])
        _, tot = hungarian(c)
        r, cc = linear_sum_assignment(c)
        assert tot == c[r, cc].sum()


class TestForbiddenPairs:
    def test_routes_around_inf(self):
        c = np.array([[1.0, np.inf], [np.inf, 5.0]])
        a, tot = hungarian(c)
        np.testing.assert_array_equal(a, [0, 1])
        assert tot == 6.0

    def test_infeasible_raises(self):
        c = np.array([[np.inf, np.inf], [1.0, 1.0]])
        with pytest.raises(MigrationError):
            hungarian(c)

    def test_partially_forbidden_still_optimal(self):
        rng = np.random.default_rng(7)
        c = rng.random((6, 8)) * 10
        c[c < 2] = np.inf
        if not np.isfinite(c).any(axis=1).all():
            pytest.skip("degenerate draw")
        try:
            a, tot = hungarian(c)
        except MigrationError:
            return  # genuinely infeasible is acceptable
        sentinel = 1e6
        filled = np.where(np.isfinite(c), c, sentinel)
        r, cc = linear_sum_assignment(filled)
        ref = filled[r, cc].sum()
        if ref < sentinel:  # scipy found an all-finite matching too
            assert tot == pytest.approx(ref)


class TestValidation:
    def test_more_rows_than_cols_rejected(self):
        with pytest.raises(ConfigurationError):
            hungarian(np.ones((3, 2)))

    def test_nan_rejected(self):
        with pytest.raises(ConfigurationError):
            hungarian(np.array([[np.nan, 1.0]]))

    def test_one_dim_rejected(self):
        with pytest.raises(ConfigurationError):
            hungarian(np.ones(4))
