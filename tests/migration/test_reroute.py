"""FlowTable and FLOWREROUTE tests."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, TopologyError
from repro.migration.reroute import FlowTable, flow_reroute
from repro.topology import build_bcube, build_fattree


@pytest.fixture
def table():
    return FlowTable(build_fattree(4))


class TestFlowTable:
    def test_add_flow_routes_and_loads(self, table):
        fid = table.add_flow(vm=7, src_rack=0, dst_rack=4, rate=2.0)
        f = table.flows[fid]
        assert f.path[0] == 0 and f.path[-1] == 4
        for node in f.path:
            assert table.load_of(node) == 2.0

    def test_intra_rack_flow(self, table):
        fid = table.add_flow(vm=1, src_rack=3, dst_rack=3, rate=1.0)
        assert table.flows[fid].path == [3]

    def test_remove_flow_releases_load(self, table):
        fid = table.add_flow(vm=1, src_rack=0, dst_rack=2, rate=3.0)
        path = list(table.flows[fid].path)
        table.remove_flow(fid)
        for node in path:
            assert table.load_of(node) == 0.0
        with pytest.raises(ConfigurationError):
            table.remove_flow(fid)

    def test_flows_through_filters(self, table):
        f1 = table.add_flow(vm=1, src_rack=0, dst_rack=4, rate=1.0)
        f2 = table.add_flow(vm=2, src_rack=1, dst_rack=4, rate=1.0)
        shared = set(table.flows[f1].path) & set(table.flows[f2].path)
        hub = next(iter(n for n in shared if n >= table.topology.num_racks), None)
        if hub is None:
            pytest.skip("no shared switch for this draw")
        both = table.flows_through(hub)
        assert {f.flow_id for f in both} >= {f1, f2} - {None}
        only0 = table.flows_through(hub, from_rack=0)
        assert all(f.src_rack == 0 for f in only0)

    def test_rejects_non_rack_endpoints(self, table):
        with pytest.raises(TopologyError):
            table.add_flow(vm=0, src_rack=0, dst_rack=table.topology.num_nodes - 1, rate=1.0)

    def test_rejects_bad_rate(self):
        ft = FlowTable(build_fattree(4))
        with pytest.raises(ConfigurationError):
            ft.add_flow(vm=0, src_rack=0, dst_rack=1, rate=0.0)


class TestReroute:
    def test_avoids_hot_switch(self, table):
        fid = table.add_flow(vm=0, src_rack=0, dst_rack=1, rate=1.0)
        path = table.flows[fid].path
        hot = path[1]  # the agg switch used
        ok, failed = flow_reroute(table, [fid], {hot})
        assert ok == 1 and failed == 0
        assert hot not in table.flows[fid].path
        assert table.load_of(hot) == 0.0

    def test_load_conserved_across_reroute(self, table):
        fid = table.add_flow(vm=0, src_rack=0, dst_rack=5, rate=2.5)
        before = table.node_load.sum()
        hot = table.flows[fid].path[1]
        flow_reroute(table, [fid], {hot})
        after = table.node_load.sum()
        # same endpoints, alternate path of equal length in a Fat-Tree
        assert after == pytest.approx(before)

    def test_no_alternative_fails_gracefully(self):
        # BCube(2, 1): racks {0,1}, switches {2,3} - blocking both switches
        # leaves no path
        ft = FlowTable(build_bcube(2))
        fid = ft.add_flow(vm=0, src_rack=0, dst_rack=1, rate=1.0)
        old_path = list(ft.flows[fid].path)
        ok, failed = flow_reroute(ft, [fid], {2, 3})
        assert ok == 0 and failed == 1
        assert ft.flows[fid].path == old_path  # unchanged

    def test_unknown_flow_raises(self, table):
        with pytest.raises(ConfigurationError):
            flow_reroute(table, [999], {0})

    def test_reroute_batch(self, table):
        fids = [table.add_flow(vm=i, src_rack=0, dst_rack=1, rate=1.0) for i in range(2)]
        hot = {table.flows[fids[0]].path[1], table.flows[fids[1]].path[1]}
        ok, failed = flow_reroute(table, fids, hot)
        assert ok + failed == 2
        for fid in fids:
            if set(table.flows[fid].path) & hot:
                assert failed > 0
