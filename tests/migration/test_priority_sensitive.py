"""Regression: delay-sensitive VMs excluded from every PRIORITY case."""

from repro.migration.priority import CandidateVM, PriorityFactor, priority_select


def vm(i, sensitive, alert=0.95):
    return CandidateVM(vm_id=i, capacity=5, value=1.0, alert=alert, delay_sensitive=sensitive)


class TestOneFiltersSensitive:
    def test_sensitive_never_picked_by_one(self):
        cands = [vm(0, True, alert=0.99), vm(1, False, alert=0.91)]
        out = priority_select(cands, PriorityFactor.ONE)
        assert [c.vm_id for c in out] == [1]

    def test_all_sensitive_selects_nothing(self):
        assert priority_select([vm(0, True)], PriorityFactor.ONE) == []
