"""ShimManager (Alg. 1) dispatch tests."""

import numpy as np
import pytest

from repro.alerts.alert import Alert, AlertKind
from repro.cluster import build_cluster
from repro.costs.model import CostModel
from repro.errors import ConfigurationError
from repro.migration.manager import ShimManager
from repro.migration.request import ReceiverRegistry
from repro.migration.reroute import FlowTable
from repro.topology import build_fattree


@pytest.fixture
def env():
    cluster = build_cluster(
        build_fattree(4),
        hosts_per_rack=3,
        fill_fraction=0.4,
        seed=33,
        dependency_degree=0.0,
        delay_sensitive_fraction=0.0,
    )
    cm = CostModel(cluster)
    reg = ReceiverRegistry(cluster)
    return cluster, cm, reg


def server_alert(cluster, rack, host=None):
    pl = cluster.placement
    if host is None:
        host = int(pl.hosts_in_rack(rack)[0])
    return Alert(kind=AlertKind.SERVER, rack=rack, magnitude=0.95, host=host)


class TestServerAlerts:
    def test_one_vm_per_host_alert(self, env):
        cluster, cm, reg = env
        pl = cluster.placement
        mgr = ShimManager(cluster, cm, 0)
        host = int(pl.hosts_in_rack(0)[0])
        vms = pl.vms_on_host(host)
        vm_alerts = {int(v): 0.95 for v in vms}
        report = mgr.process_round([server_alert(cluster, 0, host)], vm_alerts, reg)
        assert len(report.selected_for_migration) == 1
        assert report.selected_for_migration[0] in vms
        assert report.migration.acked == 1

    def test_highest_alert_vm_chosen(self, env):
        cluster, cm, reg = env
        pl = cluster.placement
        mgr = ShimManager(cluster, cm, 0)
        host = int(pl.hosts_in_rack(0)[0])
        vms = [int(v) for v in pl.vms_on_host(host)]
        if len(vms) < 2:
            pytest.skip("need two VMs on the host")
        vm_alerts = {v: 0.91 for v in vms}
        vm_alerts[vms[1]] = 0.99
        report = mgr.process_round([server_alert(cluster, 0, host)], vm_alerts, reg)
        assert report.selected_for_migration == [vms[1]]

    def test_two_host_alerts_two_migrations(self, env):
        cluster, cm, reg = env
        pl = cluster.placement
        mgr = ShimManager(cluster, cm, 0)
        hosts = pl.hosts_in_rack(0)[:2]
        alerts = [server_alert(cluster, 0, int(h)) for h in hosts]
        vm_alerts = {int(v): 0.95 for h in hosts for v in pl.vms_on_host(int(h))}
        report = mgr.process_round(alerts, vm_alerts, reg)
        assert len(report.selected_for_migration) == 2


class TestToRAlerts:
    def test_beta_selection_over_whole_rack(self, env):
        cluster, cm, reg = env
        pl = cluster.placement
        mgr = ShimManager(cluster, cm, 1, beta=0.2)
        alert = Alert(kind=AlertKind.LOCAL_TOR, rack=1, magnitude=0.95)
        vm_alerts = {int(v): 0.92 for v in pl.vms_in_rack(1)}
        report = mgr.process_round([alert], vm_alerts, reg)
        budget = int(0.2 * cluster.tor_capacity(1))
        moved_cap = sum(int(pl.vm_capacity[v]) for v in report.selected_for_migration)
        assert 0 < moved_cap <= budget

    def test_multiple_tor_alerts_collapse(self, env):
        cluster, cm, reg = env
        pl = cluster.placement
        mgr = ShimManager(cluster, cm, 1)
        alerts = [
            Alert(kind=AlertKind.LOCAL_TOR, rack=1, magnitude=0.95),
            Alert(kind=AlertKind.LOCAL_TOR, rack=1, magnitude=0.97),
        ]
        vm_alerts = {int(v): 0.92 for v in pl.vms_in_rack(1)}
        r = mgr.process_round(alerts, vm_alerts, reg)
        # aggregated once, not per alert: selection within a single budget
        budget = int(mgr.beta * cluster.tor_capacity(1))
        moved_cap = sum(int(pl.vm_capacity[v]) for v in r.selected_for_migration)
        assert moved_cap <= budget


class TestOuterSwitchAlerts:
    def test_reroute_without_flow_table_is_noop(self, env):
        cluster, cm, reg = env
        mgr = ShimManager(cluster, cm, 0)
        sw = int(cluster.topology.switches()[0])
        alert = Alert(kind=AlertKind.OUTER_SWITCH, rack=0, magnitude=0.95, switch=sw)
        report = mgr.process_round([alert], {}, reg)
        assert report.rerouted_flows == 0
        assert report.alerts_processed == 1

    def test_reroute_moves_flows_off_hot_switch(self, env):
        cluster, cm, reg = env
        ft = FlowTable(cluster.topology)
        pl = cluster.placement
        vms0 = pl.vms_in_rack(0)
        fid = ft.add_flow(int(vms0[0]), 0, 2, rate=1.0)
        path = ft.flows[fid].path
        hot = next(p for p in path if p >= cluster.num_racks)
        mgr = ShimManager(cluster, cm, 0, flow_table=ft)
        alert = Alert(kind=AlertKind.OUTER_SWITCH, rack=0, magnitude=0.95, switch=hot)
        report = mgr.process_round([alert], {int(vms0[0]): 0.95}, reg)
        assert report.rerouted_flows == 1
        assert hot not in ft.flows[fid].path


class TestValidation:
    def test_misrouted_alert_raises(self, env):
        cluster, cm, reg = env
        mgr = ShimManager(cluster, cm, 0)
        with pytest.raises(ConfigurationError):
            mgr.process_round([server_alert(cluster, 1)], {}, reg)

    def test_bad_alpha_beta(self, env):
        cluster, cm, _ = env
        with pytest.raises(ConfigurationError):
            ShimManager(cluster, cm, 0, alpha=0.0)
        with pytest.raises(ConfigurationError):
            ShimManager(cluster, cm, 0, beta=1.5)
