"""PRIORITY (Alg. 2) selection tests."""

import pytest

from repro.errors import ConfigurationError
from repro.migration.priority import CandidateVM, PriorityFactor, priority_select


def vm(i, cap, val, alert=0.95, sensitive=False):
    return CandidateVM(vm_id=i, capacity=cap, value=val, alert=alert, delay_sensitive=sensitive)


class TestFactorOne:
    def test_picks_max_alert(self):
        cands = [vm(0, 5, 1, alert=0.91), vm(1, 5, 1, alert=0.99), vm(2, 5, 1, alert=0.95)]
        out = priority_select(cands, PriorityFactor.ONE)
        assert [c.vm_id for c in out] == [1]

    def test_tie_breaks_by_lower_value(self):
        cands = [vm(0, 5, 9.0, alert=0.95), vm(1, 5, 1.0, alert=0.95)]
        out = priority_select(cands, PriorityFactor.ONE)
        assert out[0].vm_id == 1

    def test_empty_input(self):
        assert priority_select([], PriorityFactor.ONE) == []


class TestKnapsack:
    def test_exact_fill_min_value(self):
        cands = [vm(0, 5, 1.0), vm(1, 3, 9.0), vm(2, 4, 2.0)]
        out = priority_select(cands, PriorityFactor.BETA, budget=9)
        assert sorted(c.vm_id for c in out) == [0, 2]  # cap 9, value 3

    def test_max_relief_preferred_over_value(self):
        # budget 10: {0,2} fills 9; {0,1} fills 8 with lower value.
        # relief is maximized first, so {0,2} wins despite higher value.
        cands = [vm(0, 5, 1.0), vm(1, 3, 0.5), vm(2, 4, 9.0)]
        out = priority_select(cands, PriorityFactor.ALPHA, budget=10)
        total_cap = sum(c.capacity for c in out)
        assert total_cap == 9

    def test_delay_sensitive_eliminated(self):
        cands = [vm(0, 5, 1.0, sensitive=True), vm(1, 5, 5.0)]
        out = priority_select(cands, PriorityFactor.BETA, budget=10)
        assert [c.vm_id for c in out] == [1]

    def test_all_sensitive_selects_nothing(self):
        cands = [vm(0, 5, 1.0, sensitive=True)]
        assert priority_select(cands, PriorityFactor.BETA, budget=10) == []

    def test_budget_zero(self):
        assert priority_select([vm(0, 5, 1.0)], PriorityFactor.BETA, budget=0) == []

    def test_budget_exceeds_pool(self):
        cands = [vm(0, 5, 1.0), vm(1, 3, 2.0)]
        out = priority_select(cands, PriorityFactor.BETA, budget=1000)
        assert sorted(c.vm_id for c in out) == [0, 1]

    def test_single_item_too_big(self):
        cands = [vm(0, 50, 1.0)]
        assert priority_select(cands, PriorityFactor.BETA, budget=10) == []

    def test_missing_budget_raises(self):
        with pytest.raises(ConfigurationError):
            priority_select([vm(0, 5, 1.0)], PriorityFactor.ALPHA)

    def test_subset_reconstruction_consistent(self):
        # regression: DP must reconstruct a subset matching its own optimum
        import numpy as np

        rng = np.random.default_rng(0)
        for _ in range(30):
            n = int(rng.integers(1, 10))
            cands = [
                vm(i, int(rng.integers(1, 12)), float(rng.uniform(0.5, 9)))
                for i in range(n)
            ]
            budget = int(rng.integers(1, 40))
            out = priority_select(cands, PriorityFactor.BETA, budget=budget)
            total = sum(c.capacity for c in out)
            assert total <= budget
            ids = [c.vm_id for c in out]
            assert len(set(ids)) == len(ids)  # each VM at most once

    def test_min_value_among_max_relief(self):
        # two ways to fill capacity 8 exactly: {0,1} value 3, {2,3} value 10
        cands = [vm(0, 4, 1.0), vm(1, 4, 2.0), vm(2, 4, 5.0), vm(3, 4, 5.0)]
        out = priority_select(cands, PriorityFactor.BETA, budget=8)
        assert sum(c.value for c in out) == pytest.approx(3.0)


class TestCandidateValidation:
    def test_zero_capacity_rejected(self):
        with pytest.raises(ConfigurationError):
            CandidateVM(vm_id=0, capacity=0, value=1.0, alert=0.5)
