"""VMMIGRATION (Alg. 3) tests."""

import numpy as np
import pytest

from repro.cluster import build_cluster
from repro.cluster.shim import ShimView
from repro.costs.model import CostModel
from repro.migration.request import ReceiverRegistry
from repro.migration.vmmigration import _greedy_assign, vmmigration
from repro.topology import build_fattree


@pytest.fixture
def setup():
    cluster = build_cluster(
        build_fattree(4),
        hosts_per_rack=3,
        fill_fraction=0.4,
        seed=21,
        dependency_degree=0.0,
        delay_sensitive_fraction=0.0,
    )
    return cluster, CostModel(cluster), ReceiverRegistry(cluster)


class TestGreedyAssign:
    def test_prefers_cheap_edges(self):
        c = np.array([[1.0, 9.0], [9.0, 1.0]])
        np.testing.assert_array_equal(_greedy_assign(c), [0, 1])

    def test_handles_inf_rows(self):
        c = np.array([[np.inf, np.inf], [1.0, 2.0]])
        out = _greedy_assign(c)
        assert out[0] == -1 and out[1] == 0

    def test_column_conflicts(self):
        c = np.array([[1.0, np.inf], [2.0, np.inf]])
        out = _greedy_assign(c)
        assert sorted(out.tolist()) == [-1, 0]


class TestVMMigration:
    def test_migrates_candidates_to_neighbor_racks(self, setup):
        cluster, cm, reg = setup
        pl = cluster.placement
        shim = ShimView(cluster, 0)
        cands = pl.vms_in_rack(0)[:3].tolist()
        stats = vmmigration(cluster, cm, cands, shim.candidate_hosts().tolist(), reg)
        assert stats.acked == len(cands)
        moved = reg.commit_round()
        for vm, host in moved:
            assert int(pl.host_rack[host]) in shim.neighbors
        pl.check_invariants()

    def test_cost_accounting_matches_model(self, setup):
        cluster, cm, reg = setup
        pl = cluster.placement
        shim = ShimView(cluster, 1)
        cands = pl.vms_in_rack(1)[:2].tolist()
        stats = vmmigration(
            cluster, cm, cands, shim.candidate_hosts().tolist(), reg, balance_weight=0.0
        )
        # recorded per-move costs must equal the model's (pre-move placement)
        for vm, host, cost in stats.moves:
            dst_rack = int(pl.host_rack[host])
            assert cost == pytest.approx(cm.migration_cost(vm, dst_rack))
        total = sum(c for _, _, c in stats.moves)
        assert stats.total_cost == pytest.approx(total)

    def test_search_space_counts_pairs(self, setup):
        cluster, cm, reg = setup
        shim = ShimView(cluster, 0)
        hosts = shim.candidate_hosts().tolist()
        cands = cluster.placement.vms_in_rack(0)[:2].tolist()
        stats = vmmigration(cluster, cm, cands, hosts, reg)
        assert stats.search_space >= len(cands) * len(hosts)

    def test_empty_candidates(self, setup):
        cluster, cm, reg = setup
        stats = vmmigration(cluster, cm, [], [0, 1], reg)
        assert stats.requested == 0 and stats.acked == 0

    def test_no_destinations_reports_unplaced(self, setup):
        cluster, cm, reg = setup
        cands = cluster.placement.vms_in_rack(0)[:2].tolist()
        stats = vmmigration(cluster, cm, cands, [], reg)
        assert stats.unplaced == cands

    def test_duplicates_deduplicated(self, setup):
        cluster, cm, reg = setup
        shim = ShimView(cluster, 0)
        vmid = int(cluster.placement.vms_in_rack(0)[0])
        stats = vmmigration(
            cluster, cm, [vmid, vmid], shim.candidate_hosts().tolist(), reg
        )
        assert stats.acked == 1

    def test_oversized_vm_unplaced(self, setup):
        cluster, cm, reg = setup
        pl = cluster.placement
        shim = ShimView(cluster, 0)
        # pick a candidate and shrink every destination below its size by
        # filling destinations through direct accounting
        vmid = int(pl.vms_in_rack(0)[0])
        hosts = shim.candidate_hosts()
        for h in hosts:
            pl.host_used[h] = pl.host_capacity[h]  # simulate fully packed
        stats = vmmigration(cluster, cm, [vmid], hosts.tolist(), reg)
        assert vmid in stats.unplaced
        # restore for invariant hygiene
        for h in hosts:
            used = pl.vm_capacity[pl.vms_on_host(int(h))].sum()
            pl.host_used[h] = used

    def test_balance_weight_steers_to_empty_hosts(self):
        cluster = build_cluster(
            build_fattree(4),
            hosts_per_rack=2,
            fill_fraction=0.5,
            skew=1.0,
            seed=5,
            dependency_degree=0.0,
            delay_sensitive_fraction=0.0,
        )
        cm = CostModel(cluster)
        pl = cluster.placement
        shim = ShimView(cluster, 0)
        cands = pl.vms_in_rack(0)[:4].tolist()
        hosts = shim.candidate_hosts()
        load = pl.host_used[hosts] / pl.host_capacity[hosts]
        reg = ReceiverRegistry(cluster)
        stats = vmmigration(
            cluster, cm, cands, hosts.tolist(), reg, balance_weight=1000.0
        )
        chosen_loads = [
            load[hosts.tolist().index(h)] for _, h, _ in stats.moves
        ]
        if stats.moves:
            # strongly steered: chosen hosts among the emptier half
            assert np.mean(chosen_loads) <= np.median(load) + 1e-9
