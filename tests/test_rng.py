"""Seeded RNG utility tests."""

import numpy as np
import pytest

from repro.rng import as_generator, spawn, stream_for


class TestAsGenerator:
    def test_int_seed_reproducible(self):
        a = as_generator(5).random(10)
        b = as_generator(5).random(10)
        np.testing.assert_array_equal(a, b)

    def test_generator_passthrough(self):
        g = np.random.default_rng(0)
        assert as_generator(g) is g

    def test_none_gives_fresh(self):
        a = as_generator(None).random(4)
        b = as_generator(None).random(4)
        assert not np.array_equal(a, b)


class TestSpawn:
    def test_children_independent(self):
        a, b = spawn(7, 2)
        assert not np.array_equal(a.random(16), b.random(16))

    def test_reproducible(self):
        a1, b1 = spawn(7, 2)
        a2, b2 = spawn(7, 2)
        np.testing.assert_array_equal(a1.random(8), a2.random(8))
        np.testing.assert_array_equal(b1.random(8), b2.random(8))

    def test_zero_children(self):
        assert spawn(1, 0) == []

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            spawn(1, -1)


class TestStreamFor:
    def test_keyed_determinism(self):
        a = stream_for(3, "rack", 2, "vm", 7).random(8)
        b = stream_for(3, "rack", 2, "vm", 7).random(8)
        np.testing.assert_array_equal(a, b)

    def test_different_keys_differ(self):
        a = stream_for(3, "rack", 2).random(8)
        b = stream_for(3, "rack", 3).random(8)
        assert not np.array_equal(a, b)

    def test_order_independent_of_creation(self):
        first = stream_for(9, "x", 1).random(4)
        _ = stream_for(9, "y", 2).random(4)
        again = stream_for(9, "x", 1).random(4)
        np.testing.assert_array_equal(first, again)

    def test_string_and_int_keys_distinct(self):
        a = stream_for(1, "1").random(4)
        b = stream_for(1, 1).random(4)
        assert not np.array_equal(a, b)
