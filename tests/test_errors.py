"""Exception hierarchy contract tests."""

import pytest

from repro import errors


class TestHierarchy:
    def test_all_derive_from_repro_error(self):
        for name in errors.__all__:
            exc = getattr(errors, name)
            assert issubclass(exc, errors.ReproError)

    def test_configuration_error_is_value_error(self):
        assert issubclass(errors.ConfigurationError, ValueError)

    def test_specializations(self):
        assert issubclass(errors.CapacityError, errors.PlacementError)
        assert issubclass(errors.ConvergenceError, errors.ForecastError)
        assert issubclass(errors.ProtocolError, errors.MigrationError)

    def test_single_except_catches_library_errors(self):
        """A caller can catch everything the library throws in one clause."""
        from repro.topology import build_fattree

        with pytest.raises(errors.ReproError):
            build_fattree(3)  # odd k -> ConfigurationError -> ReproError
