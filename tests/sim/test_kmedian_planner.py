"""Centralized k-median planning round tests (Sec. V-A pipeline)."""

import numpy as np
import pytest

from repro.cluster import build_cluster
from repro.costs.model import CostModel
from repro.errors import ConfigurationError
from repro.sim import (
    centralized_migration_round,
    inject_fraction_alerts,
    kmedian_migration_round,
)
from repro.topology import build_fattree


@pytest.fixture
def env():
    cluster = build_cluster(
        build_fattree(8),
        hosts_per_rack=2,
        fill_fraction=0.5,
        seed=81,
        delay_sensitive_fraction=0.0,
        dependency_degree=0.0,
    )
    return cluster, CostModel(cluster)


def candidates(cluster, seed=5):
    _, vma = inject_fraction_alerts(cluster, 0.05, seed=seed)
    return sorted(vma)


class TestKMedianRound:
    def test_places_everything_when_room_exists(self, env):
        cluster, cm = env
        cands = candidates(cluster)
        plan = kmedian_migration_round(cluster, cm, cands)
        assert len(plan.moves) + len(plan.unplaced) == len(cands)
        assert plan.total_cost > 0

    def test_consolidates_onto_k_racks(self, env):
        cluster, cm = env
        cands = candidates(cluster)
        k = 3
        plan = kmedian_migration_round(cluster, cm, cands, k=k)
        pl = cluster.placement
        dst_racks = {int(pl.host_rack[h]) for _, h, _ in plan.moves}
        assert len(dst_racks) <= k

    def test_apply_respects_capacity(self, env):
        cluster, cm = env
        cands = candidates(cluster)
        plan = kmedian_migration_round(cluster, cm, cands, apply=True)
        cluster.placement.check_invariants()
        moved = {vm for vm, _, _ in plan.moves}
        for vm, host, _ in plan.moves:
            assert cluster.placement.host_of(vm) == host
        assert moved.isdisjoint(set(plan.unplaced))

    def test_cost_accounting_consistent(self, env):
        cluster, cm = env
        cands = candidates(cluster)
        plan = kmedian_migration_round(cluster, cm, cands)
        assert plan.total_cost == pytest.approx(sum(c for _, _, c in plan.moves))

    def test_moves_leave_source_rack(self, env):
        cluster, cm = env
        cands = candidates(cluster)
        pl = cluster.placement
        src = {vm: pl.rack_of(vm) for vm in cands}
        plan = kmedian_migration_round(cluster, cm, cands)
        for vm, host, _ in plan.moves:
            assert int(pl.host_rack[host]) != src[vm]

    def test_search_space_is_kmedian_sized(self, env):
        """The reduction's search space is ToRs x ToRs, not VMs x hosts."""
        cluster, cm = env
        cands = candidates(cluster)
        plan = kmedian_migration_round(cluster, cm, cands)
        matching = centralized_migration_round(cluster, cm, cands)
        assert plan.search_space < matching.search_space

    def test_cost_comparable_to_matching(self, env):
        """Consolidation costs more per VM than free matching, boundedly."""
        cluster, cm = env
        cands = candidates(cluster)
        km = kmedian_migration_round(cluster, cm, cands)
        mt = centralized_migration_round(cluster, cm, cands)
        if km.moves and mt.moves:
            km_per = km.total_cost / len(km.moves)
            mt_per = mt.total_cost / len(mt.moves)
            assert km_per <= 3.0 * mt_per

    def test_empty_candidates(self, env):
        cluster, cm = env
        plan = kmedian_migration_round(cluster, cm, [])
        assert plan.moves == [] and plan.total_cost == 0.0

    def test_k_validation(self, env):
        cluster, cm = env
        with pytest.raises(ConfigurationError):
            kmedian_migration_round(cluster, cm, candidates(cluster), k=10**6)

    def test_respects_dependency_conflicts(self):
        cluster = build_cluster(
            build_fattree(4),
            hosts_per_rack=2,
            fill_fraction=0.4,
            seed=4,
            dependency_degree=0.0,
            delay_sensitive_fraction=0.0,
        )
        cm = CostModel(cluster)
        pl = cluster.placement
        vm = int(pl.vms_in_rack(0)[0])
        # make vm depend on one VM of every other host -> nowhere to go
        for host in range(pl.num_hosts):
            if host == pl.host_of(vm):
                continue
            others = pl.vms_on_host(host)
            if others.size:
                cluster.dependencies.add_pair(vm, int(others[0]))
        plan = kmedian_migration_round(cluster, cm, [vm])
        assert vm in plan.unplaced
