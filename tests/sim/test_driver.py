"""Managed-run driver tests."""

import numpy as np
import pytest

from repro.cluster import build_cluster
from repro.errors import ConfigurationError
from repro.sim import SheriffSimulation, run_managed_simulation
from repro.sim.reactive import DemandDrivenWorkload, PredictiveManager, ReactiveManager
from repro.topology import build_fattree
from repro.traces.workload import WorkloadStream


def make_env(seed=5, horizon=80, surge=True):
    cluster = build_cluster(
        build_fattree(4), hosts_per_rack=2, fill_fraction=0.55, seed=seed,
        dependency_degree=0.0, delay_sensitive_fraction=0.0,
    )
    rng = np.random.default_rng(seed)
    pl = cluster.placement
    streams = {}
    for vm in range(cluster.num_vms):
        ramps = []
        if surge and int(pl.vm_host[vm]) == 0:
            ramps = [(0, 50, 10, 0.9)]
        streams[vm] = WorkloadStream.generate(
            horizon, base_level=0.45, diurnal_amplitude=0.05,
            burst_rate=0.0, wander_sigma=0.004, ramps=ramps,
            seed=int(rng.integers(0, 2**31)),
        )
    return cluster, DemandDrivenWorkload(cluster, streams)


class TestDriver:
    def test_reports_rounds_and_score(self):
        cluster, wl = make_env()
        sim = SheriffSimulation(cluster)
        mgr = ReactiveManager(wl, threshold=0.5)
        rep = run_managed_simulation(
            sim, wl, mgr, warm=30, horizon=80, overload_threshold=0.5
        )
        assert rep.rounds == 50
        assert len(rep.peak_load_by_round) == 50
        assert rep.overload_rounds == sum(rep.overload_by_round)

    def test_predictive_manager_warmed(self):
        cluster, wl = make_env()
        sim = SheriffSimulation(cluster)
        mgr = PredictiveManager(wl, threshold=0.5, horizon=3)
        rep = run_managed_simulation(
            sim, wl, mgr, warm=30, horizon=80, overload_threshold=0.5
        )
        # the surge at t=50 must be noticed
        assert rep.first_alert_round is not None
        assert rep.migrations >= 1

    def test_quiet_run_no_alerts(self):
        cluster, wl = make_env(surge=False)
        sim = SheriffSimulation(cluster)
        mgr = ReactiveManager(wl, threshold=0.99)
        rep = run_managed_simulation(
            sim, wl, mgr, warm=10, horizon=40, overload_threshold=0.99
        )
        assert rep.first_alert_round is None
        assert rep.migrations == 0
        assert rep.overload_rounds == 0

    def test_validation(self):
        cluster, wl = make_env()
        sim = SheriffSimulation(cluster)
        mgr = ReactiveManager(wl, threshold=0.5)
        with pytest.raises(ConfigurationError):
            run_managed_simulation(sim, wl, mgr, warm=50, horizon=40, overload_threshold=0.5)
        with pytest.raises(ConfigurationError):
            run_managed_simulation(sim, wl, mgr, warm=0, horizon=40, overload_threshold=0.0)
