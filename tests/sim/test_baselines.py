"""Centralized-optimal and regional planning round tests (Figs. 11-14)."""

import numpy as np
import pytest

from repro.cluster import build_cluster
from repro.costs.model import CostModel
from repro.sim import (
    centralized_migration_round,
    inject_fraction_alerts,
    regional_migration_round,
    search_space_centralized,
    search_space_regional,
)
from repro.topology import build_fattree


@pytest.fixture
def env():
    cluster = build_cluster(
        build_fattree(8),
        hosts_per_rack=2,
        fill_fraction=0.5,
        skew=0.5,
        seed=77,
        delay_sensitive_fraction=0.0,
    )
    return cluster, CostModel(cluster)


def candidates(cluster, seed=1, fraction=0.05):
    _, vma = inject_fraction_alerts(cluster, fraction, seed=seed)
    return sorted(vma)


class TestCentralized:
    def test_plan_shape(self, env):
        cluster, cm = env
        cands = candidates(cluster)
        plan = centralized_migration_round(cluster, cm, cands)
        assert plan.search_space == len(cands) * cluster.num_hosts
        assert plan.migrations + len(plan.unplaced) == len(cands)
        # planning must not mutate the placement
        cluster.placement.check_invariants()

    def test_apply_mutates(self, env):
        cluster, cm = env
        cands = candidates(cluster)
        before = cluster.placement.vm_host.copy()
        plan = centralized_migration_round(cluster, cm, cands, apply=True)
        moved = int((before != cluster.placement.vm_host).sum())
        assert moved == plan.migrations
        cluster.placement.check_invariants()

    def test_empty_candidates(self, env):
        cluster, cm = env
        plan = centralized_migration_round(cluster, cm, [])
        assert plan.migrations == 0 and plan.total_cost == 0.0

    def test_same_host_forbidden(self, env):
        cluster, cm = env
        cands = candidates(cluster)
        plan = centralized_migration_round(cluster, cm, cands)
        pl = cluster.placement
        for vm, host, _ in plan.moves:
            assert pl.host_of(vm) != host

    def test_cost_is_minimal_for_singleton(self, env):
        """For one candidate, the centralized plan must pick the argmin."""
        cluster, cm = env
        pl = cluster.placement
        vm = candidates(cluster)[0]
        plan = centralized_migration_round(cluster, cm, [vm])
        v = cm.migration_cost_vector(vm)
        feasible_costs = []
        need = int(pl.vm_capacity[vm])
        for h in range(pl.num_hosts):
            if h != pl.host_of(vm) and pl.free_capacity(h) >= need:
                feasible_costs.append(v[int(pl.host_rack[h])])
        assert plan.total_cost == pytest.approx(min(feasible_costs))


class TestRegionalVsCentralized:
    def test_regional_cost_at_least_central_per_move(self, env):
        """On fully-placed rounds, regional total >= centralized total."""
        cluster, cm = env
        cands = candidates(cluster, fraction=0.02)
        reg = regional_migration_round(cluster, cm, cands)
        cen = centralized_migration_round(cluster, cm, cands)
        if not reg.unplaced and not cen.unplaced:
            assert reg.total_cost >= cen.total_cost - 1e-6

    def test_regional_search_space_much_smaller(self, env):
        cluster, cm = env
        cands = candidates(cluster)
        reg = regional_migration_round(cluster, cm, cands)
        cen = centralized_migration_round(cluster, cm, cands)
        assert reg.search_space < cen.search_space / 2

    def test_regional_moves_stay_in_neighborhood(self, env):
        from repro.cluster.shim import neighbor_racks

        cluster, cm = env
        pl = cluster.placement
        cands = candidates(cluster)
        src_rack = {vm: pl.rack_of(vm) for vm in cands}
        reg = regional_migration_round(cluster, cm, cands)
        for vm, host, _ in reg.moves:
            dst = int(pl.host_rack[host])
            assert dst in neighbor_racks(cluster.topology, src_rack[vm])

    def test_apply_commits(self, env):
        cluster, cm = env
        cands = candidates(cluster)
        before = cluster.placement.vm_host.copy()
        reg = regional_migration_round(cluster, cm, cands, apply=True)
        moved = int((before != cluster.placement.vm_host).sum())
        assert moved == len(reg.moves)


class TestSearchSpaceMetrics:
    def test_regional_formula(self, env):
        cluster, _ = env
        by_rack = {0: [1, 2], 1: [3]}
        total = search_space_regional(cluster, by_rack)
        from repro.cluster.shim import neighbor_racks

        pl = cluster.placement
        expected = 0
        for rack, c in by_rack.items():
            nbrs = neighbor_racks(cluster.topology, rack)
            hosts = int(np.isin(pl.host_rack, list(nbrs)).sum())
            expected += len(c) * hosts
        assert total == expected

    def test_centralized_formula(self, env):
        cluster, _ = env
        assert search_space_centralized(cluster, 10) == 10 * cluster.num_hosts
