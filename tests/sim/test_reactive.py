"""Demand-driven workload and reactive manager tests."""

import numpy as np
import pytest

from repro.cluster import build_cluster
from repro.errors import ConfigurationError
from repro.sim.reactive import DemandDrivenWorkload, ReactiveManager
from repro.topology import build_fattree
from repro.traces.workload import WorkloadStream


@pytest.fixture
def env():
    cluster = build_cluster(
        build_fattree(4), hosts_per_rack=2, fill_fraction=0.5, seed=60,
        delay_sensitive_fraction=0.0,
    )
    streams = {
        vm: WorkloadStream.generate(100, base_level=0.4, seed=vm)
        for vm in range(cluster.num_vms)
    }
    return cluster, DemandDrivenWorkload(cluster, streams)


class TestDemandDriven:
    def test_host_load_in_unit_interval(self, env):
        cluster, wl = env
        load = wl.host_load(10)
        assert load.shape == (cluster.num_hosts,)
        assert (load >= 0).all() and (load <= 1.0 + 1e-9).all()

    def test_load_follows_demand(self, env):
        cluster, wl = env
        pl = cluster.placement
        # overwrite one host's VMs with a saturated stream
        host = 0
        vms = pl.vms_on_host(host)
        for vm in vms:
            wl.streams[int(vm)] = WorkloadStream(
                profile=np.ones((100, 4)) * 0.99
            )
        load = wl.host_load(50)
        expected = 0.99 * pl.host_used[host] / pl.host_capacity[host]
        assert load[host] == pytest.approx(expected, rel=1e-6)

    def test_overloaded_hosts_detection(self, env):
        cluster, wl = env
        pl = cluster.placement
        host = 1
        for vm in pl.vms_on_host(host):
            wl.streams[int(vm)] = WorkloadStream(profile=np.ones((100, 4)))
        thr = 0.9 * pl.host_used[host] / pl.host_capacity[host]
        if thr <= 0:
            pytest.skip("empty host in fixture")
        hot = wl.overloaded_hosts(10, min(thr, 0.99))
        assert host in hot

    def test_migration_cools_host(self, env):
        cluster, wl = env
        pl = cluster.placement
        host = 0
        vms = pl.vms_on_host(host)
        if vms.size == 0:
            pytest.skip("empty host")
        before = wl.host_load(5)[host]
        # move the largest VM elsewhere
        vm = int(vms[np.argmax(pl.vm_capacity[vms])])
        for dst in range(pl.num_hosts):
            if dst != host and pl.free_capacity(dst) >= int(pl.vm_capacity[vm]):
                pl.migrate(vm, dst)
                break
        after = wl.host_load(5)[host]
        assert after < before

    def test_missing_stream_rejected(self):
        cluster = build_cluster(build_fattree(4), seed=61)
        with pytest.raises(ConfigurationError):
            DemandDrivenWorkload(cluster, {0: WorkloadStream.generate(10, seed=0)})


class TestReactiveManager:
    def test_alerts_only_when_overloaded(self, env):
        cluster, wl = env
        mgr = ReactiveManager(wl, threshold=0.999)
        alerts, vma = mgr.alerts_at(10)
        assert alerts == []

    def test_alert_shape_matches_scenario_contract(self, env):
        cluster, wl = env
        pl = cluster.placement
        host = 0
        for vm in pl.vms_on_host(host):
            wl.streams[int(vm)] = WorkloadStream(profile=np.ones((100, 4)))
        load = wl.host_load(10)[host]
        mgr = ReactiveManager(wl, threshold=min(0.99, max(0.05, load * 0.9)))
        alerts, vma = mgr.alerts_at(10)
        hosts = {a.host for a in alerts}
        assert host in hosts
        for a in alerts:
            assert a.rack == int(pl.host_rack[a.host])
        for vm in vma:
            assert not pl.vm_delay_sensitive[vm]

    def test_threshold_validation(self, env):
        _, wl = env
        with pytest.raises(ConfigurationError):
            ReactiveManager(wl, threshold=0.0)
