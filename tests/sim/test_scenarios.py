"""Demand-scenario factory tests."""

import numpy as np
import pytest

from repro.cluster import build_cluster
from repro.errors import ConfigurationError
from repro.sim import creeping_growth, flash_crowd, host_surges, steady_demand
from repro.topology import build_fattree


@pytest.fixture
def cluster():
    return build_cluster(
        build_fattree(4), hosts_per_rack=2, fill_fraction=0.6, seed=31,
        delay_sensitive_fraction=0.0,
    )


class TestSteady:
    def test_no_overload_structure(self, cluster):
        wl = steady_demand(cluster, 100, seed=1)
        loads = np.stack([wl.host_load(t) for t in range(0, 100, 10)])
        # stays in a moderate band: no saturation events
        assert loads.max() < 0.55
        assert loads.min() > 0.05

    def test_horizon_validation(self, cluster):
        with pytest.raises(ConfigurationError):
            steady_demand(cluster, 4)


class TestHostSurges:
    def test_schedule_matches_behavior(self, cluster):
        wl, events = host_surges(
            cluster, 120, fraction=0.25, earliest=40, latest=80, seed=2
        )
        assert events
        for e in events:
            before = wl.host_load(max(0, e.start - 5))[e.host]
            after = wl.host_load(min(119, e.start + e.ramp_len + 3))[e.host]
            assert after > before + 0.1

    def test_non_surging_hosts_stay_flat(self, cluster):
        wl, events = host_surges(
            cluster, 120, fraction=0.25, earliest=40, latest=80, seed=3
        )
        surging = {e.host for e in events}
        quiet = [h for h in range(cluster.num_hosts) if h not in surging]
        if not quiet:
            pytest.skip("all hosts surging at this fraction")
        early = wl.host_load(10)
        late = wl.host_load(110)
        for h in quiet:
            assert abs(late[h] - early[h]) < 0.2

    def test_fraction_validation(self, cluster):
        with pytest.raises(ConfigurationError):
            host_surges(cluster, 100, fraction=0.0, earliest=10, latest=50)
        with pytest.raises(ConfigurationError):
            host_surges(cluster, 100, fraction=0.5, earliest=60, latest=50)

    def test_deterministic(self, cluster):
        _, e1 = host_surges(cluster, 100, earliest=20, latest=60, seed=7)
        _, e2 = host_surges(cluster, 100, earliest=20, latest=60, seed=7)
        assert e1 == e2


class TestFlashCrowd:
    def test_whole_rack_surges(self, cluster):
        rack = 1
        wl = flash_crowd(cluster, 100, rack=rack, start=50, seed=4)
        pl = cluster.placement
        for h in pl.hosts_in_rack(rack):
            assert wl.host_load(80)[h] > wl.host_load(30)[h] + 0.2
        # other racks untouched
        other = int(pl.hosts_in_rack(0)[0])
        assert abs(wl.host_load(80)[other] - wl.host_load(30)[other]) < 0.2

    def test_validation(self, cluster):
        with pytest.raises(ConfigurationError):
            flash_crowd(cluster, 100, rack=99, start=10)
        with pytest.raises(ConfigurationError):
            flash_crowd(cluster, 100, rack=0, start=200)


class TestCreepingGrowth:
    def test_monotone_drift(self, cluster):
        wl = creeping_growth(cluster, 120, start_level=0.3, end_level=0.7, seed=5)
        means = [wl.host_load(t).mean() for t in (10, 60, 110)]
        assert means[0] < means[1] < means[2]

    def test_validation(self, cluster):
        with pytest.raises(ConfigurationError):
            creeping_growth(cluster, 100, start_level=0.8, end_level=0.5)
