"""Full-stack closed-loop tests."""

import numpy as np
import pytest

from repro.cluster import build_cluster
from repro.errors import ConfigurationError
from repro.sim import FullStackSimulation, flash_crowd, steady_demand
from repro.topology import build_fattree


def make_cluster(seed=3):
    return build_cluster(
        build_fattree(4),
        hosts_per_rack=2,
        fill_fraction=0.55,
        seed=seed,
        dependency_degree=2.0,
        delay_sensitive_fraction=0.0,
    )


class TestQuietFleet:
    def test_no_alerts_no_actions(self):
        cluster = make_cluster()
        wl = steady_demand(cluster, 80, base_level=0.3, seed=5)
        fs = FullStackSimulation(
            cluster, wl, host_threshold=0.9, switch_threshold=0.9, base_rate=0.01
        )
        rows = fs.run(30, 60)
        assert all(r.server_alerts == 0 for r in rows)
        assert all(r.switch_alerts == 0 for r in rows)
        assert all(r.migrations == 0 for r in rows)
        cluster.placement.check_invariants()

    def test_flows_track_dependencies(self):
        cluster = make_cluster()
        wl = steady_demand(cluster, 40, seed=6)
        fs = FullStackSimulation(cluster, wl, base_rate=0.02)
        fs.run(10, 12)
        # one flow per inter-rack dependency pair
        pl = cluster.placement
        racks = pl.host_rack[pl.vm_host]
        inter = sum(
            1
            for a in range(cluster.num_vms)
            for b in cluster.dependencies.neighbors(a)
            if b > a and racks[a] != racks[b]
        )
        assert len(fs.flow_table.flows) == inter

    def test_rates_follow_trf(self):
        cluster = make_cluster()
        wl = steady_demand(cluster, 40, seed=7)
        fs = FullStackSimulation(cluster, wl, base_rate=1.0)
        fs.run(10, 11)
        from repro.cluster.resources import ResourceKind

        t = 10
        for flow in fs.flow_table.flows.values():
            trf = float(wl.streams[flow.vm].at(t)[int(ResourceKind.TRF)])
            assert flow.rate == pytest.approx(max(trf, 0.05), rel=1e-9)


class TestSurge:
    def test_both_alert_paths_fire_and_act(self):
        cluster = make_cluster()
        wl = flash_crowd(cluster, 110, rack=1, start=55, peak=0.9, seed=8)
        fs = FullStackSimulation(
            cluster,
            wl,
            host_threshold=0.45,
            switch_threshold=0.4,
            base_rate=1.0,
        )
        pre = fs.run(30, 50)
        assert all(r.server_alerts == 0 for r in pre)
        surge = [fs.run_round(t) for t in range(50, 90)]
        assert any(r.server_alerts > 0 for r in surge)
        assert any(r.switch_alerts > 0 for r in surge)
        assert sum(r.migrations for r in surge) >= 1
        assert sum(r.rerouted_flows for r in surge) >= 1
        cluster.placement.check_invariants()

    def test_history_and_latency_recorded(self):
        cluster = make_cluster()
        wl = steady_demand(cluster, 40, seed=9)
        fs = FullStackSimulation(cluster, wl, base_rate=0.02)
        rows = fs.run(10, 20)
        assert [r.round_index for r in rows] == list(range(10))
        assert all(r.p99_latency is not None for r in rows)
        assert all(np.isfinite(r.peak_switch_util) for r in rows)

    def test_migrated_vm_flows_rehome(self):
        cluster = make_cluster()
        wl = flash_crowd(cluster, 100, rack=1, start=45, peak=0.9, seed=10)
        fs = FullStackSimulation(
            cluster, wl, host_threshold=0.45, switch_threshold=0.9, base_rate=0.02
        )
        fs.run(30, 80)
        fs.sync_flows(80)  # flows re-home at the next sync after a migration
        pl = cluster.placement
        racks = pl.host_rack[pl.vm_host]
        for flow in fs.flow_table.flows.values():
            assert flow.src_rack == int(racks[flow.vm])

    def test_run_validation(self):
        cluster = make_cluster()
        wl = steady_demand(cluster, 40, seed=11)
        fs = FullStackSimulation(cluster, wl)
        with pytest.raises(ConfigurationError):
            fs.run(20, 10)
        with pytest.raises(ConfigurationError):
            FullStackSimulation(cluster, wl, base_rate=0.0)


class TestToRAlertPath:
    def test_saturated_uplink_raises_local_tor_alerts(self):
        cluster = make_cluster()
        # drive one rack's uplink far past capacity so its predicted
        # queue occupancy crosses the threshold
        wl = flash_crowd(cluster, 120, rack=1, start=40, peak=0.95, seed=12)
        fs = FullStackSimulation(
            cluster,
            wl,
            host_threshold=0.99,      # mute the server path
            switch_threshold=0.99,    # mute the outer-switch path
            tor_queue_threshold=0.3,
            base_rate=2.0,
        )
        rows = fs.run(20, 100)
        assert any(r.tor_alerts > 0 for r in rows)
        # the β-selection migrated something out of the saturated rack
        assert sum(r.migrations for r in rows) >= 1
        cluster.placement.check_invariants()

    def test_quiet_uplink_no_tor_alerts(self):
        cluster = make_cluster()
        wl = steady_demand(cluster, 60, base_level=0.2, seed=13)
        fs = FullStackSimulation(
            cluster, wl, base_rate=0.005, tor_queue_threshold=0.5
        )
        rows = fs.run(20, 50)
        assert all(r.tor_alerts == 0 for r in rows)
