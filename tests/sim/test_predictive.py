"""PredictiveManager and engine cooldown/steering tests."""

import numpy as np
import pytest

from repro.cluster import build_cluster
from repro.errors import ConfigurationError
from repro.sim import SheriffSimulation
from repro.sim.reactive import DemandDrivenWorkload, PredictiveManager
from repro.sim.scenario import inject_fraction_alerts
from repro.topology import build_fattree
from repro.traces.workload import WorkloadStream


def make_env(ramp_hosts=(), horizon=100, warm=40, seed=5):
    cluster = build_cluster(
        build_fattree(4),
        hosts_per_rack=2,
        fill_fraction=0.55,
        seed=seed,
        dependency_degree=0.0,
        delay_sensitive_fraction=0.0,
    )
    rng = np.random.default_rng(seed)
    pl = cluster.placement
    streams = {}
    for vm in range(cluster.num_vms):
        host = int(pl.vm_host[vm])
        ramps = [(0, warm + 15, 10, 0.9)] if host in ramp_hosts else []
        streams[vm] = WorkloadStream.generate(
            horizon,
            base_level=0.45,
            diurnal_amplitude=0.05,
            burst_rate=0.0,
            wander_sigma=0.004,
            ramps=ramps,
            seed=int(rng.integers(0, 2**31)),
        )
    return cluster, DemandDrivenWorkload(cluster, streams)


class TestPredictiveManager:
    def test_validation(self):
        cluster, wl = make_env()
        with pytest.raises(ConfigurationError):
            PredictiveManager(wl, threshold=0.0)
        with pytest.raises(ConfigurationError):
            PredictiveManager(wl, horizon=0)
        with pytest.raises(ConfigurationError):
            PredictiveManager(wl, min_history=2)

    def test_quiet_fleet_never_alerts(self):
        cluster, wl = make_env()
        mgr = PredictiveManager(wl, threshold=0.9, horizon=2)
        for t in range(40):
            mgr.observe(t)
        for t in range(40, 70):
            alerts, _ = mgr.alerts_at(t)
            assert alerts == []
            mgr.observe(t)

    def test_alerts_no_later_than_reactive_detection(self):
        """max(pred, current) makes detection a superset of reactive."""
        cluster, wl = make_env(ramp_hosts=(0,), warm=40)
        threshold = 0.5
        mgr = PredictiveManager(wl, threshold=threshold, horizon=3)
        for t in range(40):
            mgr.observe(t)
        first_alert = None
        first_cross = None
        for t in range(40, 90):
            if first_cross is None and wl.host_load(t)[0] > threshold:
                first_cross = t
            alerts, _ = mgr.alerts_at(t)
            if first_alert is None and any(a.host == 0 for a in alerts):
                first_alert = t
            mgr.observe(t)  # no migrations here: pure detection timing
        assert first_cross is not None, "scenario must actually overload"
        assert first_alert is not None
        assert first_alert <= first_cross

    def test_reset_on_assignment_change(self):
        cluster, wl = make_env()
        mgr = PredictiveManager(wl, threshold=0.9)
        for t in range(20):
            mgr.observe(t)
        pl = cluster.placement
        vm = 0
        src = pl.host_of(vm)
        dst = next(
            h
            for h in range(pl.num_hosts)
            if h != src and pl.free_capacity(h) >= int(pl.vm_capacity[vm])
        )
        pl.migrate(vm, dst)
        mgr.observe(20)
        assert len(mgr._history[src]) == 1  # reset then one fresh sample
        assert len(mgr._history[dst]) == 1
        other = next(h for h in range(pl.num_hosts) if h not in (src, dst))
        assert len(mgr._history[other]) == 21


class TestEngineCooldown:
    def test_recently_moved_vm_not_remigrated(self):
        cluster = build_cluster(
            build_fattree(4),
            hosts_per_rack=2,
            fill_fraction=0.5,
            skew=0.8,
            seed=3,
            delay_sensitive_fraction=0.0,
        )
        sim = SheriffSimulation(cluster, migration_cooldown=1000)
        moved_rounds = {}
        for r in range(6):
            alerts, vma = inject_fraction_alerts(cluster, 0.1, time=r, seed=r)
            s = sim.run_round(alerts, vma)
            for rep in s.reports:
                for vm, _, _ in rep.migration.moves:
                    assert vm not in moved_rounds, f"vm {vm} re-migrated under cooldown"
                    moved_rounds[vm] = r

    def test_cooldown_expires(self):
        cluster = build_cluster(
            build_fattree(4),
            hosts_per_rack=2,
            fill_fraction=0.5,
            skew=0.8,
            seed=3,
            delay_sensitive_fraction=0.0,
        )
        sim = SheriffSimulation(cluster, migration_cooldown=1)
        # with cooldown 1, a VM may move again in the next round; just make
        # sure rounds still run and invariants hold
        for r in range(4):
            alerts, vma = inject_fraction_alerts(cluster, 0.1, time=r, seed=r)
            sim.run_round(alerts, vma)
        cluster.placement.check_invariants()


class TestHostLoadSteering:
    def test_steering_prefers_cool_hosts(self):
        from repro.cluster.shim import ShimView
        from repro.costs.model import CostModel
        from repro.migration.request import ReceiverRegistry
        from repro.migration.vmmigration import vmmigration

        cluster = build_cluster(
            build_fattree(4),
            hosts_per_rack=2,
            fill_fraction=0.5,
            seed=9,
            dependency_degree=0.0,
            delay_sensitive_fraction=0.0,
        )
        cm = CostModel(cluster)
        pl = cluster.placement
        shim = ShimView(cluster, 0)
        hosts = shim.candidate_hosts()
        # declare every destination hot except one
        host_load = np.ones(pl.num_hosts)
        cool = int(hosts[-1])
        host_load[cool] = 0.0
        vm = int(pl.vms_in_rack(0)[0])
        reg = ReceiverRegistry(cluster)
        stats = vmmigration(
            cluster, cm, [vm], hosts.tolist(), reg,
            balance_weight=1000.0, host_load=host_load,
        )
        assert stats.moves and stats.moves[0][1] == cool
