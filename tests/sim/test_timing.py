"""Plan timing (six-stage model integration) tests."""

import pytest

from repro.cluster import build_cluster
from repro.costs.model import CostModel
from repro.errors import ConfigurationError
from repro.sim import inject_fraction_alerts, regional_migration_round, time_plan
from repro.topology import build_fattree


@pytest.fixture
def plan_env():
    cluster = build_cluster(
        build_fattree(4), hosts_per_rack=2, seed=44,
        delay_sensitive_fraction=0.0, dependency_degree=0.0,
    )
    cm = CostModel(cluster)
    _, vma = inject_fraction_alerts(cluster, 0.1, seed=4)
    plan = regional_migration_round(cluster, cm, sorted(vma))
    assert plan.moves
    return cluster, plan


class TestTimePlan:
    def test_counts_and_aggregates(self, plan_env):
        cluster, plan = plan_env
        timing = time_plan(cluster, plan.moves)
        assert timing.count == len(plan.moves)
        assert timing.total_transfer_mb > 0
        assert timing.makespan_s >= max(t.total for t in timing.timelines) - 1e-9
        assert timing.infeasible == ()

    def test_downtime_respects_target(self, plan_env):
        cluster, plan = plan_env
        timing = time_plan(cluster, plan.moves, downtime_target=0.06)
        assert timing.worst_downtime_s <= 0.06 + 1e-9

    def test_memory_scales_with_capacity(self, plan_env):
        cluster, plan = plan_env
        small = time_plan(cluster, plan.moves, mem_per_capacity_mb=10.0)
        big = time_plan(cluster, plan.moves, mem_per_capacity_mb=1000.0)
        assert big.total_transfer_mb > 50 * small.total_transfer_mb

    def test_infeasible_dirty_rate_reported(self, plan_env):
        cluster, plan = plan_env
        timing = time_plan(cluster, plan.moves, dirty_fraction=0.999999)
        # ratio ~1: still feasible per precopy (ratio < 1), so force exact
        timing2 = time_plan(cluster, plan.moves, dirty_fraction=0.0)
        assert timing2.infeasible == ()
        assert timing.count + len(timing.infeasible) == len(plan.moves)

    def test_empty_plan(self, plan_env):
        cluster, _ = plan_env
        timing = time_plan(cluster, [])
        assert timing.count == 0
        assert timing.makespan_s == 0.0

    def test_validation(self, plan_env):
        cluster, plan = plan_env
        with pytest.raises(ConfigurationError):
            time_plan(cluster, plan.moves, mem_per_capacity_mb=0.0)
        with pytest.raises(ConfigurationError):
            time_plan(cluster, plan.moves, dirty_fraction=1.0)
