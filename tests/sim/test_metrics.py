"""Balance/search-space metric tests."""

import numpy as np
import pytest

from repro.cluster import build_cluster
from repro.errors import ConfigurationError
from repro.sim import (
    SheriffSimulation,
    gini_coefficient,
    inject_fraction_alerts,
    jain_fairness,
    time_above_threshold,
)
from repro.sim.metrics import BalanceSeries
from repro.topology import build_fattree


class TestJain:
    def test_uniform_is_one(self):
        assert jain_fairness(np.full(10, 0.4)) == pytest.approx(1.0)

    def test_single_loaded_host_is_one_over_n(self):
        x = np.zeros(8)
        x[3] = 5.0
        assert jain_fairness(x) == pytest.approx(1.0 / 8.0)

    def test_scale_free(self):
        rng = np.random.default_rng(0)
        x = rng.random(20)
        assert jain_fairness(x) == pytest.approx(jain_fairness(7.5 * x))

    def test_all_zero_is_fair(self):
        assert jain_fairness(np.zeros(5)) == 1.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            jain_fairness(np.array([]))
        with pytest.raises(ConfigurationError):
            jain_fairness(np.array([-1.0, 1.0]))


class TestGini:
    def test_uniform_is_zero(self):
        assert gini_coefficient(np.full(10, 2.0)) == pytest.approx(0.0)

    def test_concentration_approaches_one(self):
        x = np.zeros(100)
        x[0] = 1.0
        assert gini_coefficient(x) > 0.95

    def test_known_value(self):
        # two hosts, loads 0 and 1: Gini = 0.5
        assert gini_coefficient(np.array([0.0, 1.0])) == pytest.approx(0.5)

    def test_order_invariant(self):
        rng = np.random.default_rng(1)
        x = rng.random(15)
        y = x.copy()
        rng.shuffle(y)
        assert gini_coefficient(x) == pytest.approx(gini_coefficient(y))

    def test_all_zero(self):
        assert gini_coefficient(np.zeros(4)) == 0.0


class TestTimeAboveThreshold:
    def test_per_host_counts(self):
        series = [
            np.array([0.2, 0.9]),
            np.array([0.95, 0.9]),
            np.array([0.95, 0.1]),
        ]
        out = time_above_threshold(series, 0.5)
        np.testing.assert_array_equal(out, [2, 2])

    def test_strict_comparison(self):
        out = time_above_threshold([np.array([0.5])], 0.5)
        np.testing.assert_array_equal(out, [0])

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            time_above_threshold([np.zeros(2), np.zeros(3)], 0.5)

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            time_above_threshold([], 0.5)


class TestBalanceSeriesAndConsistency:
    def test_fairness_improves_with_balancing(self):
        cluster = build_cluster(
            build_fattree(4),
            hosts_per_rack=3,
            skew=0.9,
            seed=12,
            delay_sensitive_fraction=0.0,
        )
        jain_before = jain_fairness(cluster.placement.host_load_fraction())
        gini_before = gini_coefficient(cluster.placement.host_load_fraction())
        sim = SheriffSimulation(cluster)
        for r in range(8):
            alerts, vma = inject_fraction_alerts(cluster, 0.08, time=r, seed=r)
            sim.run_round(alerts, vma)
        load = cluster.placement.host_load_fraction()
        assert jain_fairness(load) > jain_before
        assert gini_coefficient(load) < gini_before

    def test_balance_series_records(self):
        cluster = build_cluster(build_fattree(4), seed=1)
        bs = BalanceSeries()
        v = bs.record(cluster)
        assert bs.values == [v]
        bs.record(cluster)
        assert bs.improvement == pytest.approx(0.0)
        assert bs.as_array().shape == (2,)
