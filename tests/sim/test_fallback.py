"""Fallback governor tests: hysteresis, driver wiring, byte-identity."""

import dataclasses

import numpy as np
import pytest

from repro.cluster import build_cluster
from repro.config import SheriffConfig
from repro.errors import ConfigurationError
from repro.obs.events import FallbackTransition
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import RecordingTracer
from repro.sim import FallbackManager, SheriffSimulation, run_managed_simulation
from repro.sim.fallback import FALLBACK_POLICIES
from repro.sim.reactive import DemandDrivenWorkload, PredictiveManager, ReactiveManager
from repro.topology import build_fattree
from repro.traces.adversarial import adversarial_streams


def make_env(seed=5, horizon=60):
    """Small cluster on the deceptive calm-then-cliff regime."""
    cluster = build_cluster(
        build_fattree(4), hosts_per_rack=2, fill_fraction=0.9, seed=seed,
        dependency_degree=0.0, delay_sensitive_fraction=0.0,
    )
    streams = adversarial_streams(cluster.num_vms, horizon, seed=seed)
    return cluster, DemandDrivenWorkload(
        cluster, {vm: s for vm, s in enumerate(streams)}
    )


class _Scripted:
    """Predictive source whose per-round forecast error is scripted."""

    def __init__(self, workload, error_by_round):
        self.workload = workload
        self.error_by_round = error_by_round
        self.last_predicted = None
        self.rounds_seen = []

    def alerts_at(self, t):
        self.last_predicted = self.workload.host_load(t) + self.error_by_round(t)
        return [("predictive", t)], {}

    def observe(self, t):
        self.rounds_seen.append(t)


class _SilentReactive:
    def alerts_at(self, t):
        return [("reactive", t)], {}


class TestHysteresis:
    def governor(self, error_by_round, **kwargs):
        _, wl = make_env()
        kwargs.setdefault("error_bound", 0.15)
        kwargs.setdefault("window", 4)
        kwargs.setdefault("recovery_rounds", 3)
        return FallbackManager(
            wl, _Scripted(wl, error_by_round), _SilentReactive(), **kwargs
        )

    def test_trigger_then_recover(self):
        # loud for 6 rounds, calm after
        mgr = self.governor(lambda t: 0.4 if t < 6 else 0.0)
        modes = []
        for t in range(12):
            alerts, _ = mgr.alerts_at(t)
            modes.append(alerts[0][0])
            mgr.observe(t)
        # rounds 0-3 fill the window (still predictive), trip at t=3's
        # observe, degrade through the calm-counting rounds, recover
        # after 3 consecutive calm scores
        assert modes[:4] == ["predictive"] * 4
        assert "reactive" in modes
        assert modes[-1] == "predictive"
        assert mgr.transitions == 2
        assert not mgr.degraded

    def test_shadow_mode_keeps_observing(self):
        mgr = self.governor(lambda t: 1.0)  # never recovers
        for t in range(8):
            mgr.alerts_at(t)
            mgr.observe(t)
        assert mgr.degraded
        # the predictive manager observed every round while degraded
        assert mgr.predictive.rounds_seen == list(range(8))

    def test_partial_window_never_trips(self):
        mgr = self.governor(lambda t: 1.0, window=10)
        for t in range(9):
            mgr.alerts_at(t)
            mgr.observe(t)
        assert not mgr.degraded

    def test_loud_round_resets_calm_streak(self):
        # calm, calm, loud, calm, calm, ... never 3 calm in a row after
        # the trip until the tail
        errs = [0.4] * 4 + [0.0, 0.0, 0.4] * 3 + [0.0] * 3
        mgr = self.governor(lambda t: errs[t])
        for t in range(len(errs)):
            mgr.alerts_at(t)
            mgr.observe(t)
        assert mgr.transitions == 2
        assert not mgr.degraded

    def test_event_and_counters(self):
        tracer = RecordingTracer()
        reg = MetricsRegistry()
        mgr = self.governor(
            lambda t: 0.4 if t < 6 else 0.0, tracer=tracer, metrics=reg
        )
        for t in range(12):
            mgr.alerts_at(t)
            mgr.observe(t)
        transitions = [e for e in tracer.events if isinstance(e, FallbackTransition)]
        assert [e.mode for e in transitions] == ["reactive", "predictive"]
        assert all(e.at_round >= 0 and e.trailing_error >= 0.0 for e in transitions)
        assert reg.counter(
            "sheriff_fallback_transitions_total", mode="reactive"
        ).value == 1
        assert reg.counter(
            "sheriff_fallback_transitions_total", mode="predictive"
        ).value == 1
        assert reg.counter("sheriff_fallback_rounds_total").value >= 1

    def test_validation(self):
        _, wl = make_env()
        with pytest.raises(ConfigurationError):
            FallbackManager(wl, _Scripted(wl, lambda t: 0.0), error_bound=0.0)
        with pytest.raises(ConfigurationError):
            FallbackManager(wl, _Scripted(wl, lambda t: 0.0), window=0)
        with pytest.raises(ConfigurationError):
            FallbackManager(wl, _Scripted(wl, lambda t: 0.0), recovery_rounds=0)
        with pytest.raises(ConfigurationError):
            FallbackManager(wl, object())  # no observe: not predictive


class TestDriverWiring:
    def run_once(self, policy, *, seed=5, workers=0, **fallback_kwargs):
        cluster, wl = make_env(seed=seed)
        cfg = SheriffConfig(
            workers=workers, fallback_policy=policy, **fallback_kwargs
        )
        sim = SheriffSimulation(cluster, cfg)
        mgr = PredictiveManager(wl, threshold=0.7)
        rep = run_managed_simulation(
            sim, wl, mgr, warm=20, horizon=60, overload_threshold=0.7
        )
        sim.close()
        return rep

    def _key(self, rep):
        d = dataclasses.asdict(rep)
        d.pop("timings")
        return d

    def test_reactive_policy_wraps_and_reports(self):
        rep = self.run_once(
            "reactive",
            fallback_error_bound=0.05,
            fallback_window=4,
            fallback_recovery_rounds=3,
        )
        # the cliff regime must trip the governor at least once
        assert rep.fallback_transitions >= 1
        assert rep.fallback_rounds >= 1

    def test_none_policy_reports_zero(self):
        rep = self.run_once("none")
        assert rep.fallback_transitions == 0
        assert rep.fallback_rounds == 0

    def test_unknown_policy_rejected(self):
        with pytest.raises(ConfigurationError, match="fallback_policy"):
            self.run_once("bogus")
        assert set(FALLBACK_POLICIES) == {"none", "reactive"}

    def test_off_is_byte_identical_to_historical_loop(self):
        """policy="none" with tuned knobs changes nothing at all."""
        base = self.run_once("none")
        tuned = self.run_once(
            "none",
            fallback_error_bound=0.01,
            fallback_window=2,
            fallback_recovery_rounds=1,
        )
        assert self._key(base) == self._key(tuned)

    def test_guarded_run_identical_across_planner_workers(self):
        """The governor's scoring is engine-independent: pooled planners
        reproduce the serial guarded run decision for decision."""
        serial = self.run_once(
            "reactive", workers=0, fallback_error_bound=0.05, fallback_window=4
        )
        pooled = self.run_once(
            "reactive", workers=2, fallback_error_bound=0.05, fallback_window=4
        )
        assert self._key(serial) == self._key(pooled)

    def test_config_round_trips_fallback_knobs(self):
        cfg = SheriffConfig(
            fallback_policy="reactive",
            fallback_error_bound=0.11,
            fallback_window=5,
            fallback_recovery_rounds=2,
        )
        back = SheriffConfig.from_dict(cfg.to_dict())
        assert back.fallback_policy == "reactive"
        assert back.fallback_error_bound == 0.11
        assert back.fallback_window == 5
        assert back.fallback_recovery_rounds == 2

    def test_already_wrapped_manager_not_rewrapped(self):
        cluster, wl = make_env()
        cfg = SheriffConfig(fallback_policy="reactive")
        sim = SheriffSimulation(cluster, cfg)
        inner = PredictiveManager(wl, threshold=0.7)
        mgr = FallbackManager.from_config(wl, inner, cfg, threshold=0.7)
        rep = run_managed_simulation(
            sim, wl, mgr, warm=20, horizon=40, overload_threshold=0.7
        )
        sim.close()
        assert rep.rounds == 20

    def test_reactive_manager_passes_through(self):
        """A non-observing manager is never wrapped, whatever the policy."""
        cluster, wl = make_env()
        cfg = SheriffConfig(fallback_policy="reactive")
        sim = SheriffSimulation(cluster, cfg)
        mgr = ReactiveManager(wl, threshold=0.7)
        rep = run_managed_simulation(
            sim, wl, mgr, warm=20, horizon=40, overload_threshold=0.7
        )
        sim.close()
        assert rep.fallback_transitions == 0
