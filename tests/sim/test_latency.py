"""Queueing latency model tests."""

import numpy as np
import pytest

from repro.cluster import build_cluster
from repro.errors import ConfigurationError
from repro.migration.reroute import FlowTable, flow_reroute
from repro.sim import flow_latencies, latency_percentiles, switch_delay_factors
from repro.topology import build_fattree


@pytest.fixture
def env():
    topo = build_fattree(4)
    return topo, FlowTable(topo)


class TestDelayFactors:
    def test_idle_fabric_unit_factors(self, env):
        topo, ft = env
        f = switch_delay_factors(topo, ft)
        np.testing.assert_allclose(f, 1.0)

    def test_loaded_switch_slows_down(self, env):
        topo, ft = env
        fid = ft.add_flow(0, 0, 1, rate=1.0)
        hot = ft.flows[fid].path[1]
        f = switch_delay_factors(topo, ft)
        assert f[hot] > 1.0

    def test_clamped_at_rho_cap(self, env):
        topo, ft = env
        for i in range(50):
            ft.add_flow(i, 0, 1, rate=10.0)  # way past capacity
        f = switch_delay_factors(topo, ft, rho_cap=0.95)
        assert f.max() <= 1.0 / (1.0 - 0.95) + 1e-9

    def test_rho_cap_validation(self, env):
        topo, ft = env
        with pytest.raises(ConfigurationError):
            switch_delay_factors(topo, ft, rho_cap=1.0)


class TestFlowLatencies:
    def test_uncongested_latency_equals_hops(self, env):
        topo, ft = env
        fid = ft.add_flow(0, 0, 2, rate=0.001)  # negligible load
        lat = flow_latencies(topo, ft)
        hops = len(ft.flows[fid].path)
        assert lat[fid] == pytest.approx(hops, rel=0.02)

    def test_congestion_raises_latency(self, env):
        topo, ft = env
        probe = ft.add_flow(0, 0, 1, rate=0.001)
        base = flow_latencies(topo, ft)[probe]
        # pile load onto the probe's path
        for i in range(6):
            ft.add_flow(100 + i, 0, 1, rate=2.0)
        loaded = flow_latencies(topo, ft)[probe]
        assert loaded > base

    def test_reroute_reduces_latency(self, env):
        topo, ft = env
        probe = ft.add_flow(0, 0, 1, rate=0.001)
        for i in range(6):
            ft.add_flow(100 + i, 0, 1, rate=2.0)
        before = flow_latencies(topo, ft)[probe]
        hot = ft.flows[probe].path[1]
        flow_reroute(ft, [probe], {hot})
        after = flow_latencies(topo, ft)[probe]
        assert after < before


class TestPercentiles:
    def test_summary_fields(self, env):
        topo, ft = env
        for i in range(10):
            ft.add_flow(i, i % 4, (i + 1) % 4, rate=0.5)
        s = latency_percentiles(topo, ft)
        assert set(s) == {"mean", "p50", "p95", "p99"}
        assert s["p50"] <= s["p95"] <= s["p99"]

    def test_empty_fleet_rejected(self, env):
        topo, ft = env
        with pytest.raises(ConfigurationError):
            latency_percentiles(topo, ft)

    def test_bad_percentile_rejected(self, env):
        topo, ft = env
        ft.add_flow(0, 0, 1, rate=0.5)
        with pytest.raises(ConfigurationError):
            latency_percentiles(topo, ft, percentiles=[150.0])
