"""In-flight migration (live-migration window) tests."""

import numpy as np
import pytest

from repro.cluster import build_cluster
from repro.errors import MigrationError
from repro.sim import MigrationTiming, SheriffSimulation, inject_fraction_alerts
from repro.sim.inflight import InFlightTracker
from repro.topology import build_fattree


def make_cluster(seed=21):
    return build_cluster(
        build_fattree(4),
        hosts_per_rack=2,
        fill_fraction=0.5,
        skew=0.8,
        seed=seed,
        delay_sensitive_fraction=0.0,
        dependency_degree=0.0,
    )


class TestMigrationTiming:
    def test_bigger_vms_take_longer(self):
        timing = MigrationTiming(round_seconds=10.0)
        small, _ = timing.rounds_for(2)
        big, _ = timing.rounds_for(20)
        assert big >= small >= 1

    def test_fast_network_one_round(self):
        timing = MigrationTiming(
            mem_per_capacity_mb=1.0, bandwidth_mbps=1000.0, round_seconds=60.0
        )
        rounds, tl = timing.rounds_for(20)
        assert rounds == 1
        assert tl.downtime <= 0.06 + 1e-9


class TestTracker:
    def test_start_holds_capacity_until_completion(self):
        cluster = make_cluster()
        pl = cluster.placement
        timing = MigrationTiming(round_seconds=10.0)  # multi-round windows
        tracker = InFlightTracker(cluster, timing)
        vm = 0
        src = pl.host_of(vm)
        need = int(pl.vm_capacity[vm])
        dst = next(
            h for h in range(pl.num_hosts) if h != src and pl.free_capacity(h) >= need
        )
        done_at = tracker.start(vm, dst, now=0)
        assert done_at >= 1
        assert vm in tracker.vms_in_flight
        assert tracker.hold_on(dst) == need
        # placement untouched while in flight
        assert pl.host_of(vm) == src
        # completion lands the VM and releases the hold
        assert tracker.complete_due(done_at) == [(vm, dst)]
        assert pl.host_of(vm) == dst
        assert tracker.hold_on(dst) == 0
        pl.check_invariants()

    def test_double_start_rejected(self):
        cluster = make_cluster()
        pl = cluster.placement
        tracker = InFlightTracker(cluster, MigrationTiming(round_seconds=10.0))
        vm = 0
        dst = next(
            h
            for h in range(pl.num_hosts)
            if h != pl.host_of(vm) and pl.free_capacity(h) >= int(pl.vm_capacity[vm])
        )
        tracker.start(vm, dst, now=0)
        with pytest.raises(MigrationError):
            tracker.start(vm, dst, now=0)

    def test_hold_blocks_overbooking(self):
        cluster = make_cluster()
        pl = cluster.placement
        tracker = InFlightTracker(cluster, MigrationTiming(round_seconds=10.0))
        # fill one destination's free capacity with holds
        dst = int(np.argmax([pl.free_capacity(h) for h in range(pl.num_hosts)]))
        started = 0
        with pytest.raises(MigrationError):
            for vm in range(pl.num_vms):
                if pl.host_of(vm) != dst:
                    tracker.start(vm, dst, now=0)
                    started += 1
        assert started >= 1  # some fit before the hold saturated


class TestEngineIntegration:
    def test_migrations_land_after_window(self):
        cluster = make_cluster()
        timing = MigrationTiming(round_seconds=5.0)  # long windows in rounds
        sim = SheriffSimulation(cluster, migration_timing=timing)
        before = cluster.placement.vm_host.copy()
        alerts, vma = inject_fraction_alerts(cluster, 0.1, time=0, seed=5)
        s0 = sim.run_round(alerts, vma)
        assert s0.migrations >= 1  # accepted & started
        # nothing has physically moved yet
        np.testing.assert_array_equal(before, cluster.placement.vm_host)
        assert len(sim.inflight.vms_in_flight) == s0.migrations
        # idle rounds until every window elapses
        for _ in range(20):
            sim.run_round([], {})
            if not sim.inflight.vms_in_flight:
                break
        assert not sim.inflight.vms_in_flight
        moved = int((before != cluster.placement.vm_host).sum())
        assert moved == s0.migrations
        cluster.placement.check_invariants()

    def test_inflight_vm_not_reselected(self):
        cluster = make_cluster()
        timing = MigrationTiming(round_seconds=1.0)  # very long windows
        sim = SheriffSimulation(cluster, migration_timing=timing)
        alerts, vma = inject_fraction_alerts(cluster, 0.1, time=0, seed=6)
        s0 = sim.run_round(alerts, vma)
        flying = set(sim.inflight.vms_in_flight)
        assert flying
        # same alerts again: in-flight VMs must not move twice
        s1 = sim.run_round(alerts, vma)
        for rep in s1.reports:
            for vm, _, _ in rep.migration.moves:
                assert vm not in flying

    def test_instant_mode_unchanged(self):
        cluster = make_cluster()
        sim = SheriffSimulation(cluster)  # no timing: legacy instant commit
        before = cluster.placement.vm_host.copy()
        alerts, vma = inject_fraction_alerts(cluster, 0.1, time=0, seed=7)
        s = sim.run_round(alerts, vma)
        moved = int((before != cluster.placement.vm_host).sum())
        assert moved == s.migrations
