"""Simulation engine tests."""

import numpy as np
import pytest

from repro.cluster import build_cluster
from repro.sim import SheriffSimulation, inject_fraction_alerts
from repro.topology import build_bcube, build_fattree


@pytest.fixture
def sim_cluster():
    cluster = build_cluster(
        build_fattree(4),
        hosts_per_rack=3,
        fill_fraction=0.5,
        skew=0.7,
        seed=99,
        delay_sensitive_fraction=0.0,
    )
    return cluster


class TestRunRound:
    def test_round_summary_fields(self, sim_cluster):
        sim = SheriffSimulation(sim_cluster)
        alerts, vma = inject_fraction_alerts(sim_cluster, 0.05, seed=1)
        s = sim.run_round(alerts, vma)
        assert s.alerts == len(alerts)
        assert s.migrations <= s.requests
        assert s.total_cost >= 0
        assert s.search_space > 0
        sim_cluster.placement.check_invariants()

    def test_migrations_committed(self, sim_cluster):
        sim = SheriffSimulation(sim_cluster)
        before = sim_cluster.placement.vm_host.copy()
        alerts, vma = inject_fraction_alerts(sim_cluster, 0.1, seed=2)
        s = sim.run_round(alerts, vma)
        moved = int((before != sim_cluster.placement.vm_host).sum())
        assert moved == s.migrations

    def test_balancing_improves_over_rounds(self, sim_cluster):
        sim = SheriffSimulation(sim_cluster)
        for r in range(10):
            alerts, vma = inject_fraction_alerts(sim_cluster, 0.05, seed=10 + r)
            sim.run_round(alerts, vma)
        series = sim.workload_std_series()
        assert series[-1] < series[0]  # Fig. 9 shape
        assert series.shape == (11,)

    def test_bcube_works_too(self):
        cluster = build_cluster(
            build_bcube(4), hosts_per_rack=3, skew=0.7, seed=3,
            delay_sensitive_fraction=0.0,
        )
        sim = SheriffSimulation(cluster)
        for r in range(5):
            alerts, vma = inject_fraction_alerts(cluster, 0.05, seed=r)
            sim.run_round(alerts, vma)
        assert sim.workload_std_series()[-1] <= sim.workload_std_series()[0]

    def test_empty_round(self, sim_cluster):
        sim = SheriffSimulation(sim_cluster)
        s = sim.run_round([], {})
        assert s.migrations == 0
        assert s.workload_std_before == s.workload_std_after

    def test_history_accumulates(self, sim_cluster):
        sim = SheriffSimulation(sim_cluster)
        for r in range(3):
            alerts, vma = inject_fraction_alerts(sim_cluster, 0.05, seed=r)
            sim.run_round(alerts, vma)
        assert [s.round_index for s in sim.history] == [0, 1, 2]

    def test_with_flows_populates_table(self):
        cluster = build_cluster(
            build_fattree(4), hosts_per_rack=2, seed=4, dependency_degree=2.0
        )
        sim = SheriffSimulation(cluster, with_flows=True)
        assert sim.flow_table is not None
        # inter-rack dependency pairs become flows
        inter = {
            (a, b)
            for a, b in cluster.dependencies.rack_edges(cluster.placement)
        }
        if inter:
            assert len(sim.flow_table.flows) > 0
