"""Alert scenario generation tests."""

import numpy as np
import pytest

from repro.alerts.alert import AlertKind
from repro.alerts.monitor import VMMonitor
from repro.alerts.threshold import AlertConfig
from repro.cluster import build_cluster
from repro.cluster.resources import ResourceKind
from repro.errors import ConfigurationError
from repro.sim.scenario import (
    forecast_alert_round,
    inject_fraction_alerts,
    overloaded_host_alerts,
)
from repro.topology import build_fattree
from repro.traces.workload import WorkloadStream


@pytest.fixture
def cluster():
    return build_cluster(
        build_fattree(4), hosts_per_rack=3, skew=0.8, fill_fraction=0.5, seed=50,
        delay_sensitive_fraction=0.1,
    )


class TestInjectFraction:
    def test_count_close_to_fraction(self, cluster):
        alerts, vma = inject_fraction_alerts(cluster, 0.05, seed=0)
        target = round(0.05 * cluster.num_vms)
        assert abs(len(alerts) - target) <= 1
        assert len(vma) == len(alerts)

    def test_all_server_alerts_with_coordinates(self, cluster):
        alerts, vma = inject_fraction_alerts(cluster, 0.05, seed=1)
        pl = cluster.placement
        for a in alerts:
            assert a.kind is AlertKind.SERVER
            assert a.vm in vma
            assert pl.host_of(a.vm) == a.host
            assert int(pl.host_rack[a.host]) == a.rack

    def test_prefers_loaded_hosts(self, cluster):
        alerts, _ = inject_fraction_alerts(cluster, 0.05, seed=2)
        pl = cluster.placement
        load = pl.host_load_fraction()
        alerted = np.asarray([load[a.host] for a in alerts])
        assert alerted.mean() > load.mean()

    def test_skips_delay_sensitive(self, cluster):
        alerts, _ = inject_fraction_alerts(cluster, 0.3, seed=3)
        pl = cluster.placement
        for a in alerts:
            assert not pl.vm_delay_sensitive[a.vm]

    def test_deterministic(self, cluster):
        a1, _ = inject_fraction_alerts(cluster, 0.05, seed=9)
        a2, _ = inject_fraction_alerts(cluster, 0.05, seed=9)
        assert [x.vm for x in a1] == [x.vm for x in a2]

    def test_rejects_bad_fraction(self, cluster):
        with pytest.raises(ConfigurationError):
            inject_fraction_alerts(cluster, 0.0)


class TestOverloadedHosts:
    def test_threshold_filtering(self, cluster):
        pl = cluster.placement
        load = pl.host_load_fraction()
        thr = float(np.quantile(load, 0.8))
        thr = min(max(thr, 0.05), 0.99)
        alerts, vma = overloaded_host_alerts(cluster, thr)
        hot = set(np.nonzero(load > thr)[0].tolist())
        assert {a.host for a in alerts} == hot

    def test_no_overload_no_alerts(self, cluster):
        alerts, vma = overloaded_host_alerts(cluster, 1.0)
        assert alerts == [] and vma == {}


class TestForecastRound:
    def test_alerts_come_from_ramping_vms(self, cluster):
        pl = cluster.placement
        cfg = AlertConfig(threshold=0.8)
        # two monitored VMs: one quiet, one ramping into overload
        quiet = WorkloadStream.generate(
            120, base_level=0.3, burst_rate=0.0, wander_sigma=0.005, seed=1
        )
        ramp = WorkloadStream.generate(
            120,
            base_level=0.3,
            burst_rate=0.0,
            wander_sigma=0.005,
            ramps=[(int(ResourceKind.CPU), 60, 10, 0.65)],
            seed=2,
        )
        monitors = {
            0: VMMonitor(quiet.history(59, 60), cfg),
            1: VMMonitor(ramp.history(59, 60), cfg),
        }
        fired_vms = set()
        for t in range(60, 90):
            alerts, vma = forecast_alert_round(cluster, monitors, time=t)
            fired_vms |= set(vma)
            monitors[0].observe(quiet.at(t))
            monitors[1].observe(ramp.at(t))
        assert 1 in fired_vms
        assert 0 not in fired_vms

    def test_alert_addressing(self, cluster):
        pl = cluster.placement
        cfg = AlertConfig(threshold=0.1)  # everything alerts
        ws = WorkloadStream.generate(80, base_level=0.5, seed=3)
        monitors = {4: VMMonitor(ws.history(59, 60), cfg)}
        alerts, vma = forecast_alert_round(cluster, monitors)
        assert len(alerts) == 1
        assert alerts[0].host == pl.host_of(4)
