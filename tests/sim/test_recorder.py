"""Simulation recorder tests."""

import csv

import numpy as np
import pytest

from repro.cluster import build_cluster
from repro.errors import ConfigurationError
from repro.sim import SheriffSimulation, SimulationRecorder, inject_fraction_alerts
from repro.topology import build_fattree


@pytest.fixture
def recorded_run():
    cluster = build_cluster(
        build_fattree(4), hosts_per_rack=2, skew=0.8, seed=17,
        delay_sensitive_fraction=0.0,
    )
    sim = SheriffSimulation(cluster)
    rec = SimulationRecorder(sim)
    for r in range(6):
        alerts, vma = inject_fraction_alerts(cluster, 0.08, time=r, seed=r)
        rec.record(sim.run_round(alerts, vma))
    return rec


class TestRecording:
    def test_columns_aligned(self, recorded_run):
        rec = recorded_run
        assert rec.num_rounds == 6
        np.testing.assert_array_equal(rec.column("round"), np.arange(6))
        assert rec.column("workload_std").shape == (6,)

    def test_metrics_consistent_with_engine(self, recorded_run):
        rec = recorded_run
        engine_std = [s.workload_std_after for s in rec.sim.history]
        np.testing.assert_allclose(rec.column("workload_std"), engine_std)

    def test_summary(self, recorded_run):
        s = recorded_run.summary()
        assert s["rounds"] == 6
        assert s["total_migrations"] == recorded_run.column("migrations").sum()
        assert s["std_improvement"] > 0  # the skewed start improves

    def test_unknown_column_rejected(self, recorded_run):
        with pytest.raises(ConfigurationError):
            recorded_run.column("latency")

    def test_empty_recorder_rejects_export(self):
        cluster = build_cluster(build_fattree(4), seed=1)
        rec = SimulationRecorder(SheriffSimulation(cluster))
        with pytest.raises(ConfigurationError):
            rec.summary()
        with pytest.raises(ConfigurationError):
            rec.to_npz("/tmp/never.npz")


class TestExport:
    def test_npz_roundtrip(self, recorded_run, tmp_path):
        path = tmp_path / "run.npz"
        recorded_run.to_npz(path)
        with np.load(path) as data:
            np.testing.assert_allclose(
                data["workload_std"], recorded_run.column("workload_std")
            )
            assert "jain_fairness" in data

    def test_csv_roundtrip(self, recorded_run, tmp_path):
        path = tmp_path / "run.csv"
        recorded_run.to_csv(path)
        with open(path) as fh:
            rows = list(csv.DictReader(fh))
        assert len(rows) == 6
        assert float(rows[0]["round"]) == 0.0
        assert abs(
            float(rows[-1]["workload_std"])
            - recorded_run.column("workload_std")[-1]
        ) < 1e-9
