"""Switch congestion scenario + end-to-end reroute tests."""

import numpy as np
import pytest

from repro.alerts.alert import AlertKind
from repro.cluster import build_cluster
from repro.errors import ConfigurationError
from repro.migration.reroute import FlowTable
from repro.sim import SheriffSimulation, congestion_alerts, hot_switches, switch_capacity
from repro.topology import build_fattree


@pytest.fixture
def env():
    cluster = build_cluster(
        build_fattree(4),
        hosts_per_rack=2,
        seed=70,
        dependency_degree=0.0,
        delay_sensitive_fraction=0.0,
    )
    ft = FlowTable(cluster.topology)
    return cluster, ft


def saturate_one_switch(cluster, ft, rate=2.0):
    """Route flows 0->1 until some agg switch crosses 70% utilization."""
    pl = cluster.placement
    vms = pl.vms_in_rack(0)
    cap = switch_capacity(cluster.topology)
    fids = []
    for vm in vms:
        fid = ft.add_flow(int(vm), 0, 1, rate)
        fids.append(fid)
        hs = hot_switches(cluster.topology, ft, 0.7)
        if hs:
            return fids, hs
    raise AssertionError("could not saturate a switch in the fixture")


class TestSwitchCapacity:
    def test_fattree_capacities(self):
        topo = build_fattree(4)
        cap = switch_capacity(topo)
        # ToR: 2 uplinks x 1.0; agg: 2 down x 1.0 + 2 up x 10.0; core: 4 x 10.0
        assert cap[0] == pytest.approx(2.0)
        agg = topo.nodes_of_kind(__import__("repro.topology.base", fromlist=["NodeKind"]).NodeKind.AGG)
        assert cap[agg[0]] == pytest.approx(22.0)


class TestHotSwitches:
    def test_no_flows_no_hot(self, env):
        cluster, ft = env
        assert hot_switches(cluster.topology, ft) == []

    def test_saturation_detected(self, env):
        cluster, ft = env
        _, hs = saturate_one_switch(cluster, ft)
        assert len(hs) >= 1

    def test_threshold_validation(self, env):
        cluster, ft = env
        with pytest.raises(ConfigurationError):
            hot_switches(cluster.topology, ft, 0.0)


class TestCongestionAlerts:
    def test_alert_addressing(self, env):
        cluster, ft = env
        _, hs = saturate_one_switch(cluster, ft)
        alerts, vma = congestion_alerts(cluster, ft)
        assert alerts, "expected alerts for the hot switch"
        for a in alerts:
            assert a.kind is AlertKind.OUTER_SWITCH
            assert a.switch in hs
            # addressed to a rack that actually originates flows through it
            assert any(
                f.src_rack == a.rack for f in ft.flows_through(a.switch)
            )
        assert vma  # the flows' VMs carry selection magnitudes

    def test_end_to_end_reroute_cools_switch(self, env):
        cluster, ft = env
        fids, hs = saturate_one_switch(cluster, ft)
        sim = SheriffSimulation(cluster)
        # wire the shared flow table into the managers
        for mgr in sim.managers.values():
            mgr.flow_table = ft
        hot_before = {sw: ft.load_of(sw) for sw in hs}
        alerts, vma = congestion_alerts(cluster, ft)
        summary = sim.run_round(alerts, vma)
        rerouted = sum(r.rerouted_flows for r in summary.reports)
        assert rerouted > 0
        for sw in hs:
            assert ft.load_of(sw) < hot_before[sw]

    def test_alert_free_after_reroute(self, env):
        cluster, ft = env
        saturate_one_switch(cluster, ft, rate=2.0)
        sim = SheriffSimulation(cluster)
        for mgr in sim.managers.values():
            mgr.flow_table = ft
        # a few reroute rounds should clear (or at least not grow) the hot set
        n0 = len(hot_switches(cluster.topology, ft))
        for t in range(3):
            alerts, vma = congestion_alerts(cluster, ft, time=t)
            if not alerts:
                break
            sim.run_round(alerts, vma)
        assert len(hot_switches(cluster.topology, ft)) <= n0
