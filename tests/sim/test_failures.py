"""Switch failure injection tests."""

import numpy as np
import pytest

from repro.cluster import build_cluster
from repro.errors import TopologyError
from repro.migration.reroute import FlowTable
from repro.sim import FailureInjector
from repro.topology import build_bcube, build_fattree
from repro.topology.base import NodeKind


@pytest.fixture
def env():
    cluster = build_cluster(
        build_fattree(4), hosts_per_rack=2, seed=90, dependency_degree=0.0
    )
    ft = FlowTable(cluster.topology)
    return cluster, ft


class TestFail:
    def test_rejects_rack_and_double_failures(self, env):
        cluster, ft = env
        inj = FailureInjector(cluster, flow_table=ft)
        with pytest.raises(TopologyError):
            inj.fail(0)  # rack, not a switch
        sw = int(cluster.topology.switches()[0])
        inj.fail(sw)
        with pytest.raises(TopologyError):
            inj.fail(sw)

    def test_flows_rerouted_off_dead_switch(self, env):
        cluster, ft = env
        fid = ft.add_flow(vm=0, src_rack=0, dst_rack=1, rate=1.0)
        dead = ft.flows[fid].path[1]
        inj = FailureInjector(cluster, flow_table=ft)
        report = inj.fail(dead)
        assert report.flows_rerouted == 1
        assert dead not in ft.flows[fid].path
        assert report.flows_dropped == []

    def test_flow_dropped_when_no_path(self):
        cluster = build_cluster(build_bcube(2), hosts_per_rack=2, seed=1)
        ft = FlowTable(cluster.topology)
        fid = ft.add_flow(vm=0, src_rack=0, dst_rack=1, rate=1.0)
        inj = FailureInjector(cluster, flow_table=ft)
        inj.fail(2)
        report = inj.fail(3)  # both BCube(2) switches dead
        assert fid in report.flows_dropped
        assert fid not in ft.flows
        assert report.racks_disconnected  # fabric partitioned

    def test_fattree_survives_one_agg(self, env):
        cluster, ft = env
        agg = int(cluster.topology.nodes_of_kind(NodeKind.AGG)[0])
        inj = FailureInjector(cluster, flow_table=ft)
        report = inj.fail(agg)
        assert report.racks_disconnected == []

    def test_cost_model_avoids_dead_switch(self, env):
        cluster, ft = env
        inj = FailureInjector(cluster)
        cm_before = inj.rebuild_cost_model()
        agg = int(cluster.topology.nodes_of_kind(NodeKind.AGG)[0])
        inj.fail(agg)
        cm_after = inj.rebuild_cost_model()
        # all rack pairs still reachable
        r = cluster.num_racks
        assert np.isfinite(cm_after.table.path_weight[:, :r]).all()
        # and no selected path crosses the dead switch
        for a in range(r):
            for b in range(r):
                if a != b:
                    assert agg not in cm_after.table.path(a, b)

    def test_partition_blocks_replanning(self):
        cluster = build_cluster(build_bcube(2), hosts_per_rack=2, seed=2)
        inj = FailureInjector(cluster)
        inj.fail(2)
        inj.fail(3)
        with pytest.raises(TopologyError, match="partitioned"):
            inj.rebuild_cost_model()

    def test_recover(self, env):
        cluster, ft = env
        inj = FailureInjector(cluster)
        sw = int(cluster.topology.switches()[0])
        inj.fail(sw)
        inj.recover(sw)
        assert inj.failed == set()
        with pytest.raises(TopologyError):
            inj.recover(sw)

    def test_recover_readmits_dropped_flows(self):
        cluster = build_cluster(build_bcube(2), hosts_per_rack=2, seed=1)
        ft = FlowTable(cluster.topology)
        ft.add_flow(vm=0, src_rack=0, dst_rack=1, rate=1.0)
        inj = FailureInjector(cluster, flow_table=ft)
        inj.fail(2)
        inj.fail(3)  # no surviving path: flow dropped
        assert len(ft.flows) == 0
        report = inj.recover(3)
        assert len(report.flows_readmitted) == 1
        assert report.racks_disconnected == []
        fid = report.flows_readmitted[0]
        flow = ft.flows[fid]
        assert (flow.vm, flow.src_rack, flow.dst_rack) == (0, 0, 1)
        assert 2 not in flow.path  # routed around the still-failed switch

    def test_fail_recover_fail_cycle(self):
        cluster = build_cluster(build_bcube(2), hosts_per_rack=2, seed=1)
        ft = FlowTable(cluster.topology)
        ft.add_flow(vm=0, src_rack=0, dst_rack=1, rate=1.0)
        inj = FailureInjector(cluster, flow_table=ft)
        inj.fail(2)
        inj.fail(3)
        inj.recover(3)  # flow back, carried by switch 3
        report = inj.fail(3)  # second outage drops it again
        assert len(report.flows_dropped) == 1
        assert len(ft.flows) == 0
        report = inj.recover(2)  # and the other switch brings it back
        assert len(report.flows_readmitted) == 1
        assert 3 not in ft.flows[report.flows_readmitted[0]].path

    def test_recover_on_partitioned_fabric(self):
        """Re-admission works even while the fabric stays partitioned
        elsewhere; what still has no path stays dropped for later."""
        cluster = build_cluster(build_bcube(2), hosts_per_rack=2, seed=1)
        ft = FlowTable(cluster.topology)
        ft.add_flow(vm=0, src_rack=0, dst_rack=1, rate=1.0)
        inj = FailureInjector(cluster, flow_table=ft)
        inj.fail(2)
        inj.fail(3)
        report = inj.recover(2)
        assert len(report.flows_readmitted) == 1  # path via switch 2 again
        with pytest.raises(TopologyError):
            inj.recover(2)  # not failed any more
        assert inj.failed == {3}

    def test_available_bandwidth_zeroed(self, env):
        cluster, ft = env
        inj = FailureInjector(cluster)
        sw = int(cluster.topology.switches()[0])
        inj.fail(sw)
        bw = inj.available_bandwidth()
        lt = cluster.topology.links
        touched = (lt.u == sw) | (lt.v == sw)
        assert (bw[touched] == 0).all()
        assert (bw[~touched] == lt.capacity[~touched]).all()
