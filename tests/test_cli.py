"""CLI smoke and contract tests."""

import json

import pytest

from repro.cli import build_parser, main
from repro.obs.tracer import load_trace


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_defaults(self):
        args = build_parser().parse_args(["balance"])
        assert args.topology == "fattree"
        assert args.rounds == 24


class TestCommands:
    def test_traces(self, capsys):
        assert main(["traces", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "CPU" in out and "burst_ratio" in out

    def test_approx_within_bound(self, capsys):
        assert main(["approx", "--trials", "5", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "max_ratio" in out

    def test_balance_small(self, capsys):
        code = main(
            ["balance", "--size", "4", "--rounds", "4", "--seed", "9"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "std_dev_pct" in out
        assert out.count("\n") >= 6  # header + 5 rounds

    def test_sweep_small(self, capsys):
        assert main(["sweep", "--sizes", "4,8", "--seed", "9"]) == 0
        out = capsys.readouterr().out
        assert "sheriff_cost" in out and "central_space" in out

    def test_sweep_bcube(self, capsys):
        assert main(["sweep", "--topology", "bcube", "--sizes", "4", "--seed", "2"]) == 0
        assert "bcube" in capsys.readouterr().out

    def test_forecast_nonlinear(self, capsys):
        assert main(["forecast", "--series", "nonlinear", "--seed", "4"]) == 0
        out = capsys.readouterr().out
        assert "narnet_mse" in out

    def test_balance_bcube(self, capsys):
        assert main(
            ["balance", "--topology", "bcube", "--size", "4", "--rounds", "3"]
        ) == 0
        assert "bcube-4" in capsys.readouterr().out


class TestMachineOutput:
    def test_balance_json_payload(self, capsys):
        code = main(
            ["balance", "--size", "4", "--rounds", "4", "--seed", "9", "--json"]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["command"] == "balance"
        assert payload["rounds"] == 4
        assert len(payload["std_dev_pct"]) == 5  # initial + 4 rounds
        assert isinstance(payload["migrations"], int)
        assert "timings" in payload and "round" in payload["timings"]

    def test_traces_json_payload(self, capsys):
        assert main(["traces", "--seed", "1", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["command"] == "traces"
        assert "cpu_pct" in payload["traces"]
        assert "burst_ratio" in payload["traces"]["cpu_pct"]

    def test_sweep_json_payload(self, capsys):
        assert main(["sweep", "--sizes", "4", "--seed", "9", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["command"] == "sweep"
        assert payload["rows"][0]["size"] == 4
        assert "timings" in payload

    def test_json_flag_on_every_subcommand(self):
        parser = build_parser()
        for cmd in ("traces", "forecast", "balance", "sweep", "approx", "report"):
            args = parser.parse_args([cmd, "--json"])
            assert args.json is True
            assert args.trace_path is None

    def test_trace_writes_jsonl(self, capsys, tmp_path):
        trace = tmp_path / "balance.jsonl"
        code = main(
            [
                "balance",
                "--size", "4",
                "--rounds", "4",
                "--seed", "9",
                "--trace", str(trace),
            ]
        )
        assert code == 0
        events = load_trace(trace)
        assert events, "trace file must not be empty"
        kinds = {e["event"] for e in events}
        assert "AlertDelivered" in kinds
        assert "PrioritySelected" in kinds
        assert all("round" in e for e in events)

    def test_plain_output_unchanged_by_trace(self, capsys, tmp_path):
        argv = ["balance", "--size", "4", "--rounds", "4", "--seed", "9"]
        assert main(argv) == 0
        plain = capsys.readouterr().out
        assert main(argv + ["--trace", str(tmp_path / "t.jsonl")]) == 0
        assert capsys.readouterr().out == plain


class TestReport:
    def test_report_to_stdout(self, capsys):
        assert main(["report", "--seed", "7"]) == 0
        out = capsys.readouterr().out
        for section in (
            "Traces (Figs. 3-5)",
            "Prediction (Figs. 6-8)",
            "Balancing (Figs. 9-10)",
            "Regional vs centralized",
            "Approximation",
        ):
            assert section in out
        assert "declining" in out

    def test_report_to_file(self, capsys, tmp_path):
        target = tmp_path / "report.md"
        assert main(["report", "--seed", "7", "--output", str(target)]) == 0
        text = target.read_text()
        assert text.startswith("# Sheriff reproduction report")
        assert "wrote" in capsys.readouterr().out

    def test_report_trace_covers_every_event_kind(self, capsys, tmp_path):
        # the acceptance bar for the observability subsystem: one traced
        # run exercising migrations, rejects and reroutes emits at least
        # one event of every documented type (the fault vocabulary is
        # covered by the chaos campaign's trace — see TestChaosTrace)
        from repro.obs.events import EVENT_TYPES

        trace = tmp_path / "report.jsonl"
        assert main(["report", "--seed", "7", "--trace", str(trace)]) == 0
        kinds = {e["event"] for e in load_trace(trace)}
        fault_kinds = {
            "FaultInjected", "HostCrashed", "RequestTimedOut",
            "MigrationAborted",
        }
        assert kinds == {cls.__name__ for cls in EVENT_TYPES} - fault_kinds


class TestChaosTrace:
    def test_chaos_trace_covers_the_fault_vocabulary(self, tmp_path):
        # the acceptance bar for the fault layer: one traced campaign
        # emits every fault-event kind alongside the protocol events
        trace = tmp_path / "chaos.jsonl"
        out = tmp_path / "chaos.json"
        rc = main(
            [
                "chaos", "--size", "4", "--rounds", "8", "--seed", "2015",
                "--output", str(out), "--trace", str(trace),
            ]
        )
        assert rc == 0
        kinds = {e["event"] for e in load_trace(trace)}
        assert {
            "FaultInjected", "HostCrashed", "RequestTimedOut",
            "MigrationAborted", "RequestSent", "MigrationCommitted",
        } <= kinds
