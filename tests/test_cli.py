"""CLI smoke and contract tests."""

import json

import pytest

from repro.cli import build_parser, main
from repro.obs.tracer import load_trace


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_defaults(self):
        args = build_parser().parse_args(["balance"])
        assert args.topology == "fattree"
        assert args.rounds == 24


class TestCommands:
    def test_traces(self, capsys):
        assert main(["traces", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "CPU" in out and "burst_ratio" in out

    def test_approx_within_bound(self, capsys):
        assert main(["approx", "--trials", "5", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "max_ratio" in out

    def test_balance_small(self, capsys):
        code = main(
            ["balance", "--size", "4", "--rounds", "4", "--seed", "9"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "std_dev_pct" in out
        assert out.count("\n") >= 6  # header + 5 rounds

    def test_sweep_small(self, capsys):
        assert main(["sweep", "--sizes", "4,8", "--seed", "9"]) == 0
        out = capsys.readouterr().out
        assert "sheriff_cost" in out and "central_space" in out

    def test_sweep_bcube(self, capsys):
        assert main(["sweep", "--topology", "bcube", "--sizes", "4", "--seed", "2"]) == 0
        assert "bcube" in capsys.readouterr().out

    def test_forecast_nonlinear(self, capsys):
        assert main(["forecast", "--series", "nonlinear", "--seed", "4"]) == 0
        out = capsys.readouterr().out
        assert "narnet_mse" in out

    def test_balance_bcube(self, capsys):
        assert main(
            ["balance", "--topology", "bcube", "--size", "4", "--rounds", "3"]
        ) == 0
        assert "bcube-4" in capsys.readouterr().out


class TestMachineOutput:
    def test_balance_json_payload(self, capsys):
        code = main(
            ["balance", "--size", "4", "--rounds", "4", "--seed", "9", "--json"]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["command"] == "balance"
        assert payload["rounds"] == 4
        assert len(payload["std_dev_pct"]) == 5  # initial + 4 rounds
        assert isinstance(payload["migrations"], int)
        assert "timings" in payload and "round" in payload["timings"]

    def test_traces_json_payload(self, capsys):
        assert main(["traces", "--seed", "1", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["command"] == "traces"
        assert "cpu_pct" in payload["traces"]
        assert "burst_ratio" in payload["traces"]["cpu_pct"]

    def test_sweep_json_payload(self, capsys):
        assert main(["sweep", "--sizes", "4", "--seed", "9", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["command"] == "sweep"
        assert payload["rows"][0]["size"] == 4
        assert "timings" in payload

    def test_json_flag_on_every_subcommand(self):
        parser = build_parser()
        for cmd in ("traces", "forecast", "balance", "sweep", "approx", "report"):
            args = parser.parse_args([cmd, "--json"])
            assert args.json is True
            assert args.trace_path is None

    def test_trace_writes_jsonl(self, capsys, tmp_path):
        trace = tmp_path / "balance.jsonl"
        code = main(
            [
                "balance",
                "--size", "4",
                "--rounds", "4",
                "--seed", "9",
                "--trace", str(trace),
            ]
        )
        assert code == 0
        events = load_trace(trace)
        assert events, "trace file must not be empty"
        kinds = {e["event"] for e in events}
        assert "AlertDelivered" in kinds
        assert "PrioritySelected" in kinds
        assert all("round" in e for e in events)

    def test_plain_output_unchanged_by_trace(self, capsys, tmp_path):
        argv = ["balance", "--size", "4", "--rounds", "4", "--seed", "9"]
        assert main(argv) == 0
        plain = capsys.readouterr().out
        assert main(argv + ["--trace", str(tmp_path / "t.jsonl")]) == 0
        assert capsys.readouterr().out == plain


class TestReport:
    def test_report_to_stdout(self, capsys):
        assert main(["report", "--seed", "7"]) == 0
        out = capsys.readouterr().out
        for section in (
            "Traces (Figs. 3-5)",
            "Prediction (Figs. 6-8)",
            "Balancing (Figs. 9-10)",
            "Regional vs centralized",
            "Approximation",
        ):
            assert section in out
        assert "declining" in out

    def test_report_to_file(self, capsys, tmp_path):
        target = tmp_path / "report.md"
        assert main(["report", "--seed", "7", "--output", str(target)]) == 0
        text = target.read_text()
        assert text.startswith("# Sheriff reproduction report")
        assert "wrote" in capsys.readouterr().out

    def test_report_trace_covers_every_event_kind(self, capsys, tmp_path):
        # the acceptance bar for the observability subsystem: one traced
        # run exercising migrations, rejects and reroutes emits at least
        # one event of every documented type (the fault vocabulary is
        # covered by the chaos campaign's trace — see TestChaosTrace;
        # FallbackTransition by the adversarial campaign / governor tests;
        # the SLO vocabulary by the opt-in SLO layer — see tests/slo)
        from repro.obs.events import EVENT_TYPES

        trace = tmp_path / "report.jsonl"
        assert main(["report", "--seed", "7", "--trace", str(trace)]) == 0
        kinds = {e["event"] for e in load_trace(trace)}
        other_layer_kinds = {
            "FaultInjected", "HostCrashed", "RequestTimedOut",
            "MigrationAborted", "FallbackTransition",
            "SloViolation", "SloBudgetExhausted",
        }
        assert kinds == {cls.__name__ for cls in EVENT_TYPES} - other_layer_kinds


class TestChaosTrace:
    def test_chaos_trace_covers_the_fault_vocabulary(self, tmp_path):
        # the acceptance bar for the fault layer: one traced campaign
        # emits every fault-event kind alongside the protocol events
        trace = tmp_path / "chaos.jsonl"
        out = tmp_path / "chaos.json"
        rc = main(
            [
                "chaos", "--size", "4", "--rounds", "8", "--seed", "2015",
                "--output", str(out), "--trace", str(trace),
            ]
        )
        assert rc == 0
        kinds = {e["event"] for e in load_trace(trace)}
        assert {
            "FaultInjected", "HostCrashed", "RequestTimedOut",
            "MigrationAborted", "RequestSent", "MigrationCommitted",
        } <= kinds


class TestServeCommand:
    def test_serve_bounded_replay(self, capsys):
        rc = main(
            [
                "serve", "--size", "4", "--rounds", "3", "--max-rounds", "6",
                "--interval", "0.01", "--seed", "2015", "--json",
            ]
        )
        assert rc == 0
        lines = capsys.readouterr().out.strip().splitlines()
        ready = json.loads(lines[0])
        assert ready["serving"] and ready["port"] > 0
        report = json.loads("\n".join(lines[1:]))
        assert report["command"] == "serve"
        assert report["clean_drain"]
        assert report["planned"] == report["ingested"] > 0

    def test_serve_jsonl_source(self, capsys, tmp_path):
        feed = tmp_path / "alerts.jsonl"
        feed.write_text(
            '{"rack": 0, "kind": "local_tor", "magnitude": 1.5, "time": 0}\n'
            '{"rack": 1, "kind": "local_tor", "magnitude": 1.2, "time": 0}\n'
        )
        rc = main(
            [
                "serve", "--size", "4", "--source", str(feed),
                "--interval", "0.01", "--json",
            ]
        )
        assert rc == 0
        lines = capsys.readouterr().out.strip().splitlines()
        report = json.loads("\n".join(lines[1:]))
        assert report["ingested"] == 2

    def test_serve_config_file(self, capsys, tmp_path):
        from repro.config import SheriffConfig

        cfg = tmp_path / "cfg.json"
        cfg.write_text(json.dumps(SheriffConfig(balance_weight=10.0).to_dict()))
        rc = main(
            [
                "serve", "--size", "4", "--rounds", "2", "--config", str(cfg),
                "--interval", "0.01", "--json",
            ]
        )
        assert rc == 0

    def test_serve_rejects_bad_config(self, tmp_path, capsys):
        cfg = tmp_path / "cfg.json"
        cfg.write_text('{"warp_factor": 9}')
        with pytest.raises(SystemExit):
            main(["serve", "--config", str(cfg)])


class TestSloCommand:
    def test_slo_report_plain(self, capsys):
        rc = main(
            ["slo", "report", "--size", "4", "--rounds", "20",
             "--warm", "8", "--seed", "2015"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "violation-minutes" in out
        assert "tenant gold" in out and "source downtime" in out
        assert "episodes:" in out

    def test_slo_report_json_and_prom(self, capsys, tmp_path):
        prom = tmp_path / "slo.prom"
        rc = main(
            ["slo", "report", "--size", "4", "--rounds", "20",
             "--warm", "8", "--seed", "2015", "--json",
             "--prom", str(prom)]
        )
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["command"] == "slo-report"
        ledger = payload["slo"]
        assert ledger["total_minutes"] > 0.0
        assert set(ledger["by_class"]) == {"gold", "silver", "bronze"}
        # the exposition carries the family with per-tenant labels —
        # the same surface /metrics serves
        text = prom.read_text()
        assert "# TYPE sheriff_slo_violation_minutes_total counter" in text
        assert 'tenant="gold"' in text

    def test_slo_report_rejects_short_horizon(self, capsys):
        # host_surges needs >= 16 rounds; the CLI must say so, not
        # traceback
        with pytest.raises(SystemExit) as exc:
            main(["slo", "report", "--size", "4", "--rounds", "12"])
        assert exc.value.code == 2
        assert "error:" in capsys.readouterr().err

    def test_slo_scoring_variant_runs(self, capsys):
        rc = main(
            ["slo", "report", "--size", "4", "--rounds", "16",
             "--warm", "8", "--seed", "2015", "--scoring", "slo", "--json"]
        )
        assert rc == 0
        assert json.loads(capsys.readouterr().out)["scoring"] == "slo"


class TestUniformExporterFlags:
    """--perfetto/--prom/--metrics-out on every simulation-running command."""

    def test_every_sim_command_has_the_flags(self):
        parser = build_parser()
        for cmd, extra in {
            "balance": [],
            "sweep": [],
            "approx": [],
            "chaos": [],
            "serve": [],
        }.items():
            args = parser.parse_args([cmd, *extra])
            assert hasattr(args, "perfetto_path"), cmd
            assert hasattr(args, "prom_path"), cmd
            assert hasattr(args, "metrics_out_path"), cmd

    def test_sweep_perfetto_and_prom(self, capsys, tmp_path):
        perfetto = tmp_path / "sweep.perfetto.json"
        prom = tmp_path / "sweep.prom"
        rc = main(
            [
                "sweep", "--sizes", "4", "--seed", "9",
                "--perfetto", str(perfetto), "--prom", str(prom),
            ]
        )
        assert rc == 0
        spans = json.loads(perfetto.read_text())
        assert spans["traceEvents"]
        assert prom.exists()

    def test_approx_prom(self, capsys, tmp_path):
        prom = tmp_path / "approx.prom"
        rc = main(
            ["approx", "--trials", "3", "--seed", "3", "--prom", str(prom)]
        )
        assert rc == 0
        text = prom.read_text()
        assert "kmedian_trials_total" in text
        assert "kmedian_approx_ratio" in text

    def test_serve_prom_export(self, capsys, tmp_path):
        prom = tmp_path / "serve.prom"
        rc = main(
            [
                "serve", "--size", "4", "--rounds", "2",
                "--interval", "0.01", "--prom", str(prom), "--json",
            ]
        )
        assert rc == 0
        assert "sheriff_rounds_total" in prom.read_text()
