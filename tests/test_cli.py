"""CLI smoke and contract tests."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_defaults(self):
        args = build_parser().parse_args(["balance"])
        assert args.topology == "fattree"
        assert args.rounds == 24


class TestCommands:
    def test_traces(self, capsys):
        assert main(["traces", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "CPU" in out and "burst_ratio" in out

    def test_approx_within_bound(self, capsys):
        assert main(["approx", "--trials", "5", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "max_ratio" in out

    def test_balance_small(self, capsys):
        code = main(
            ["balance", "--size", "4", "--rounds", "4", "--seed", "9"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "std_dev_pct" in out
        assert out.count("\n") >= 6  # header + 5 rounds

    def test_sweep_small(self, capsys):
        assert main(["sweep", "--sizes", "4,8", "--seed", "9"]) == 0
        out = capsys.readouterr().out
        assert "sheriff_cost" in out and "central_space" in out

    def test_sweep_bcube(self, capsys):
        assert main(["sweep", "--topology", "bcube", "--sizes", "4", "--seed", "2"]) == 0
        assert "bcube" in capsys.readouterr().out

    def test_forecast_nonlinear(self, capsys):
        assert main(["forecast", "--trace", "nonlinear", "--seed", "4"]) == 0
        out = capsys.readouterr().out
        assert "narnet_mse" in out

    def test_balance_bcube(self, capsys):
        assert main(
            ["balance", "--topology", "bcube", "--size", "4", "--rounds", "3"]
        ) == 0
        assert "bcube-4" in capsys.readouterr().out


class TestReport:
    def test_report_to_stdout(self, capsys):
        assert main(["report", "--seed", "7"]) == 0
        out = capsys.readouterr().out
        for section in (
            "Traces (Figs. 3-5)",
            "Prediction (Figs. 6-8)",
            "Balancing (Figs. 9-10)",
            "Regional vs centralized",
            "Approximation",
        ):
            assert section in out
        assert "declining" in out

    def test_report_to_file(self, capsys, tmp_path):
        target = tmp_path / "report.md"
        assert main(["report", "--seed", "7", "--output", str(target)]) == 0
        text = target.read_text()
        assert text.startswith("# Sheriff reproduction report")
        assert "wrote" in capsys.readouterr().out
