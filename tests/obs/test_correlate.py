"""Lifecycle correlation: id minting, stamping, and chain integrity."""

from repro.config import SheriffConfig
from repro.obs.correlate import LifecycleStitcher
from repro.obs.events import (
    AlertDelivered,
    FaultInjected,
    MigrationCommitted,
    MigrationLanded,
    ModelSelected,
    PrioritySelected,
    RequestAcked,
    RequestSent,
)
from repro.obs.tracer import RecordingTracer
from repro.sim.engine import SheriffSimulation
from repro.sim.inflight import MigrationTiming
from repro.sim.scenario import inject_fraction_alerts
from tests.obs.test_integration import _cluster

_PROTOCOL = {
    "RequestSent",
    "RequestAcked",
    "RequestRejected",
    "RequestTimedOut",
    "MigrationCommitted",
    "MigrationLanded",
    "MigrationAborted",
}


class TestStitcherUnit:
    def test_rack_events_share_the_alert_group_id(self):
        s = LifecycleStitcher()
        s.begin_round(3)
        alert = AlertDelivered(rack=5, alert_kind="SERVER", magnitude=0.9)
        prio = PrioritySelected(rack=5, factor="ALPHA", selected=(7,))
        s.stamp(alert)
        s.stamp(prio)
        assert alert.trace_id == prio.trace_id == "r3.k5"

    def test_selection_mints_attempt_with_group_parent(self):
        s = LifecycleStitcher()
        s.begin_round(2)
        s.stamp(PrioritySelected(rack=1, factor="ALPHA", selected=(9,)))
        sent = RequestSent(vm=9, dst_host=4, dst_rack=2)
        s.stamp(sent)
        assert sent.trace_id == "r2.v9"
        assert sent.parent_id == "r2.k1"

    def test_unselected_vm_mints_on_first_sight_without_parent(self):
        # emergency evacuations send REQUESTs no PRIORITY ever selected
        s = LifecycleStitcher()
        s.begin_round(4)
        sent = RequestSent(vm=3, dst_host=1, dst_rack=0)
        s.stamp(sent)
        assert sent.trace_id == "r4.v3"
        assert sent.parent_id is None

    def test_committed_attempt_survives_reselection(self):
        # frozen in-flight VMs still appear in PrioritySelected.selected;
        # their open attempt keeps its id until the landing closes it
        s = LifecycleStitcher()
        s.begin_round(0)
        s.stamp(PrioritySelected(rack=0, factor="ALPHA", selected=(5,)))
        s.stamp(RequestSent(vm=5, dst_host=2, dst_rack=1))
        s.stamp(RequestAcked(vm=5, dst_host=2, dst_rack=1))
        s.stamp(MigrationCommitted(vm=5, dst_host=2))
        s.begin_round(1)
        s.stamp(PrioritySelected(rack=0, factor="ALPHA", selected=(5,)))
        landed = MigrationLanded(vm=5, dst_host=2)
        s.stamp(landed)
        assert landed.trace_id == "r0.v5"

    def test_closed_attempt_reopens_fresh_next_round(self):
        s = LifecycleStitcher()
        s.begin_round(0)
        s.stamp(PrioritySelected(rack=0, factor="ALPHA", selected=(5,)))
        s.stamp(MigrationLanded(vm=5, dst_host=2))
        s.begin_round(3)
        s.stamp(PrioritySelected(rack=0, factor="ALPHA", selected=(5,)))
        sent = RequestSent(vm=5, dst_host=9, dst_rack=2)
        s.stamp(sent)
        assert sent.trace_id == "r3.v5"

    def test_fault_events_get_fault_ids(self):
        s = LifecycleStitcher()
        s.begin_round(6)
        ev = FaultInjected(fault_kind="shim_down", target=2, detail="until-round-8")
        s.stamp(ev)
        assert ev.trace_id == "r6.f.shim_down.2"

    def test_uncorrelated_kinds_stay_unstamped(self):
        s = LifecycleStitcher()
        s.begin_round(0)
        ev = ModelSelected(model="arima", step=3, prediction=0.5)
        s.stamp(ev)
        assert ev.trace_id is None
        assert "trace_id" not in ev.as_dict()


class TestEndToEndCorrelation:
    def test_every_protocol_event_is_stamped(self):
        tracer = RecordingTracer()
        cluster = _cluster(seed=11, fill=0.7, skew=1.0)
        sim = SheriffSimulation(cluster, SheriffConfig(tracer=tracer))
        for r in range(4):
            alerts, vma = inject_fraction_alerts(cluster, 0.3, time=r, seed=70 + r)
            sim.run_round(alerts, vma)
        protocol = [e for e in tracer.events if e.kind in _PROTOCOL]
        assert protocol, "run produced no protocol events"
        assert all(e.trace_id is not None for e in protocol)

    def test_attempt_chain_is_consistent_across_rounds(self):
        # timed migrations: the id minted at selection must still be on
        # the landing emitted rounds later
        tracer = RecordingTracer()
        cluster = _cluster(seed=11, fill=0.7, skew=1.0)
        sim = SheriffSimulation(
            cluster,
            SheriffConfig(tracer=tracer, migration_timing=MigrationTiming()),
        )
        for r in range(6):
            alerts, vma = inject_fraction_alerts(cluster, 0.3, time=r, seed=70 + r)
            sim.run_round(alerts, vma)
        landings = tracer.of_kind("MigrationLanded")
        assert landings, "run produced no landings"
        commits = {
            (e.vm, e.trace_id) for e in tracer.of_kind("MigrationCommitted")
        }
        for landed in landings:
            assert (landed.vm, landed.trace_id) in commits

    def test_workers_and_serial_paths_stamp_identically(self):
        def ids(workers):
            tracer = RecordingTracer()
            cluster = _cluster(seed=11, fill=0.7, skew=1.0)
            sim = SheriffSimulation(
                cluster, SheriffConfig(tracer=tracer, workers=workers)
            )
            for r in range(4):
                alerts, vma = inject_fraction_alerts(
                    cluster, 0.3, time=r, seed=70 + r
                )
                sim.run_round(alerts, vma)
            return [
                (e.kind, e.trace_id, e.parent_id)
                for e in tracer.events
                if e.kind in _PROTOCOL
            ]

        assert ids(0) == ids(2)
