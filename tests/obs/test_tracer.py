"""Tracer implementations and event payload shapes."""

import json

from repro.obs.events import (
    EVENT_TYPES,
    AlertDelivered,
    MatchingSolved,
    PrioritySelected,
    RequestRejected,
)
from repro.obs.tracer import (
    NULL_TRACER,
    JsonlTracer,
    NullTracer,
    RecordingTracer,
    Tracer,
    load_trace,
)


class TestNullTracer:
    def test_disabled_singleton(self):
        assert NULL_TRACER.enabled is False
        assert isinstance(NULL_TRACER, NullTracer)
        assert isinstance(NULL_TRACER, Tracer)

    def test_emit_is_noop(self):
        NULL_TRACER.emit(AlertDelivered(rack=0, alert_kind="SERVER", magnitude=0.5))
        NULL_TRACER.begin_round(3)


class TestRecordingTracer:
    def test_records_in_order(self):
        t = RecordingTracer()
        assert t.enabled is True
        a = AlertDelivered(rack=0, alert_kind="SERVER", magnitude=0.5)
        b = RequestRejected(vm=1, dst_host=4, dst_rack=1, reason="capacity")
        t.emit(a)
        t.emit(b)
        assert t.events == [a, b]
        assert t.kinds() == ["AlertDelivered", "RequestRejected"]
        assert t.of_kind("RequestRejected") == [b]

    def test_begin_round_stamps_events(self):
        t = RecordingTracer()
        t.begin_round(0)
        t.emit(AlertDelivered(rack=0, alert_kind="SERVER", magnitude=0.5))
        t.begin_round(1)
        t.emit(AlertDelivered(rack=1, alert_kind="SERVER", magnitude=0.6))
        assert [e.round for e in t.events] == [0, 1]

    def test_clear(self):
        t = RecordingTracer()
        t.emit(AlertDelivered(rack=0, alert_kind="SERVER", magnitude=0.5))
        t.clear()
        assert t.events == []


class TestJsonlTracer:
    def test_writes_one_json_object_per_event(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with JsonlTracer.open(path) as t:
            t.begin_round(7)
            t.emit(
                PrioritySelected(
                    rack=2, factor="ALPHA", budget=3, candidates=5, selected=(1, 4)
                )
            )
            t.emit(
                MatchingSolved(
                    rack=2,
                    rows=3,
                    cols=9,
                    matched=3,
                    iteration=1,
                    fallback=False,
                    elapsed_s=0.001,
                )
            )
            assert t.emitted == 2
        lines = path.read_text().splitlines()
        assert len(lines) == 3  # schema header + two events
        header = json.loads(lines[0])
        assert header == {"schema_version": 2}
        first = json.loads(lines[1])
        assert first["event"] == "PrioritySelected"
        assert first["round"] == 7
        assert first["selected"] == [1, 4]  # tuples serialize as lists
        assert first["trace_id"] == "r7.k2"
        second = json.loads(lines[2])
        assert second["event"] == "MatchingSolved"
        assert second["fallback"] is False

    def test_load_trace_round_trips(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with JsonlTracer.open(path) as t:
            t.begin_round(0)
            t.emit(AlertDelivered(rack=1, alert_kind="SERVER", magnitude=0.9))
        events = load_trace(path)
        assert len(events) == 1
        assert events[0]["event"] == "AlertDelivered"
        assert events[0]["round"] == 0

    def test_load_trace_accepts_headerless_schema_1(self, tmp_path):
        path = tmp_path / "old.jsonl"
        path.write_text('{"event": "AlertDelivered", "rack": 0}\n')
        assert load_trace(path)[0]["rack"] == 0

    def test_load_trace_rejects_future_schema(self, tmp_path):
        path = tmp_path / "future.jsonl"
        path.write_text('{"schema_version": 99}\n')
        import pytest

        with pytest.raises(ValueError):
            load_trace(path)


class TestEventShapes:
    def test_every_event_type_round_trips_through_as_dict(self):
        # every documented type constructs, has a stable kind and a
        # JSON-serializable payload
        kinds = set()
        for cls in EVENT_TYPES:
            event = cls()
            d = event.as_dict()
            assert d["event"] == event.kind == cls.__name__
            json.dumps(d)  # must not raise
            kinds.add(event.kind)
        assert len(kinds) == len(EVENT_TYPES) == 17
