"""End-to-end observability: events from real rounds, config compat, parity."""

import numpy as np
import pytest

from repro.alerts.alert import Alert, AlertKind
from repro.cluster import build_cluster
from repro.config import SheriffConfig
from repro.forecast.naive import NaiveLast, SeasonalNaive
from repro.forecast.selection import DynamicModelSelector
from repro.obs.events import EVENT_TYPES
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import RecordingTracer
from repro.sim.engine import SheriffSimulation
from repro.sim.inflight import MigrationTiming
from repro.sim.scenario import inject_fraction_alerts
from repro.topology import build_fattree


def _cluster(seed=42, fill=0.5, skew=0.7, **kw):
    return build_cluster(
        build_fattree(4),
        hosts_per_rack=3,
        fill_fraction=fill,
        skew=skew,
        seed=seed,
        delay_sensitive_fraction=0.0,
        **kw,
    )


class TestRoundEventSequence:
    def test_plain_round_emits_coherent_story(self):
        tracer = RecordingTracer()
        cluster = _cluster()
        sim = SheriffSimulation(cluster, SheriffConfig(tracer=tracer))
        alerts, vma = inject_fraction_alerts(cluster, 0.3, time=0, seed=5)
        summary = sim.run_round(alerts, vma)

        kinds = tracer.kinds()
        # delivery precedes every decision event
        assert kinds[0] == "AlertDelivered"
        assert len(tracer.of_kind("AlertDelivered")) == summary.alerts
        # every shim that got alerts ran PRIORITY
        assert tracer.of_kind("PrioritySelected")
        # sender-side counts agree with the summary's metrics-backed totals
        assert len(tracer.of_kind("RequestSent")) == summary.requests
        assert len(tracer.of_kind("RequestAcked")) == summary.migrations
        assert len(tracer.of_kind("RequestRejected")) == summary.rejects
        # instant engine: committed == landed, one each per accepted request
        assert len(tracer.of_kind("MigrationCommitted")) == summary.migrations
        assert len(tracer.of_kind("MigrationLanded")) == summary.migrations
        # every event carries the round stamp
        assert all(e.round == 0 for e in tracer.events)

    def test_acks_precede_commits_within_round(self):
        tracer = RecordingTracer()
        cluster = _cluster()
        sim = SheriffSimulation(cluster, SheriffConfig(tracer=tracer))
        alerts, vma = inject_fraction_alerts(cluster, 0.3, time=0, seed=5)
        sim.run_round(alerts, vma)
        kinds = tracer.kinds()
        if "MigrationCommitted" in kinds:
            assert kinds.index("RequestAcked") < kinds.index("MigrationCommitted")

    def test_rejection_reasons_are_documented_vocabulary(self):
        tracer = RecordingTracer()
        cluster = _cluster(fill=0.85, skew=1.2, seed=7)
        sim = SheriffSimulation(cluster, SheriffConfig(tracer=tracer))
        for r in range(4):
            alerts, vma = inject_fraction_alerts(cluster, 0.25, time=r, seed=50 + r)
            sim.run_round(alerts, vma)
        allowed = {
            "wrong-delegation",
            "capacity",
            "dependency-conflict",
            "in-flight",
            "capacity-hold",
        }
        for ev in tracer.of_kind("RequestRejected"):
            assert ev.reason in allowed


class TestAllEventKinds:
    def test_full_stack_run_emits_every_documented_kind(self):
        """One run exercising migrations, rejects, reroutes, timed landings,
        forecasting and fault injection covers the complete event
        vocabulary."""
        tracer = RecordingTracer()
        cluster = _cluster(fill=0.85, skew=1.2, seed=7, dependency_degree=2.0)
        sim = SheriffSimulation(
            cluster,
            SheriffConfig(
                with_flows=True, migration_timing=MigrationTiming(), tracer=tracer
            ),
        )
        assert sim.flow_table is not None and sim.flow_table.flows
        for r in range(6):
            alerts, vma = inject_fraction_alerts(cluster, 0.25, time=r, seed=100 + r)
            alerts = list(alerts)
            # congested aggregation switch on a live flow path → FLOWREROUTE
            flow = next(iter(sim.flow_table.flows.values()))
            mid = [n for n in flow.path if n not in (flow.src_rack, flow.dst_rack)]
            alerts.append(
                Alert(
                    kind=AlertKind.OUTER_SWITCH,
                    rack=flow.src_rack,
                    magnitude=0.9,
                    switch=int(mid[0]),
                    time=r,
                )
            )
            vma.setdefault(flow.vm, 0.9)
            sim.run_round(alerts, vma)

        # the forecast layer shares the tracer: Eq. 14 model selection
        selector = DynamicModelSelector(
            {"naive": NaiveLast, "seasonal": lambda: SeasonalNaive(period=4)},
            period=4,
            tracer=tracer,
        )
        rng = np.random.default_rng(0)
        series = np.sin(np.arange(32) / 4.0) + 0.1 * rng.standard_normal(32)
        selector.fit(series[:24])
        for value in series[24:]:
            selector.predict_one()
            selector.observe(float(value))

        # the fault layer shares the tracer too: start migrations, then
        # crash an occupied host mid-flight and abort a migration
        from repro.faults.channel import ChannelPolicy, UnreliableChannel
        from repro.faults.schedule import FaultKind, FaultSchedule, FaultSpec

        fcluster = _cluster(fill=0.85, skew=1.2, seed=7)
        pl = fcluster.placement
        victim = next(
            h for h in range(pl.num_hosts) if len(pl.vms_on_host(h)) > 0
        )
        fsim = SheriffSimulation(
            fcluster,
            SheriffConfig(
                tracer=tracer,
                migration_timing=MigrationTiming(),
                fault_schedule=FaultSchedule(
                    [
                        FaultSpec(
                            FaultKind.HOST_CRASH, target=victim, at_round=1
                        ),
                        FaultSpec(FaultKind.MIGRATION_ABORT, at_round=1),
                    ]
                ),
            ),
        )
        alerts, vma = inject_fraction_alerts(fcluster, 0.3, time=0, seed=5)
        assert fsim.run_round(alerts, vma).migrations > 0  # some in flight
        fsim.run_round([], {})

        # and a REQUEST into a dead delegation times out over the channel
        dead = UnreliableChannel(
            fsim.receivers,
            ChannelPolicy(max_retries=0),
            is_rack_down=lambda rack: True,
            tracer=tracer,
        )
        dead.request(0, 0, int(pl.host_rack[0]))

        # the fallback governor shares the tracer too: a sustained forecast
        # error trips it into reactive mode
        from repro.sim.fallback import FallbackManager

        class _FlatWorkload:
            def host_load(self, t):
                return np.full(4, 0.5)

        class _Wrong:
            def __init__(self, workload):
                self.workload = workload
                self.last_predicted = None

            def alerts_at(self, t):
                self.last_predicted = self.workload.host_load(t) + 0.5
                return [], {}

            def observe(self, t):
                pass

        class _Silent:
            def alerts_at(self, t):
                return [], {}

        wl = _FlatWorkload()
        governor = FallbackManager(
            wl, _Wrong(wl), _Silent(),
            error_bound=0.1, window=2, recovery_rounds=2, tracer=tracer,
        )
        for t in range(4):
            governor.alerts_at(t)
            governor.observe(t)
        assert governor.degraded

        # the SLO layer shares the tracer too: a tiny budget guarantees
        # the first charge also exhausts a tenant class
        scluster = _cluster(fill=0.85, skew=1.2, seed=7)
        ssim = SheriffSimulation(
            scluster,
            SheriffConfig(tracer=tracer, slo=True, slo_budget_minutes=1e-9),
        )
        alerts, vma = inject_fraction_alerts(scluster, 0.3, time=0, seed=5)
        assert ssim.run_round(alerts, vma).slo_violation_minutes > 0

        seen = set(tracer.kinds())
        missing = {cls.__name__ for cls in EVENT_TYPES} - seen
        assert not missing, f"never emitted: {sorted(missing)}"


class TestConfigCompat:
    def test_legacy_kwargs_warn_and_work(self):
        cluster = _cluster()
        with pytest.warns(DeprecationWarning, match="balance_weight"):
            sim = SheriffSimulation(cluster, balance_weight=25.0, alpha=0.2)
        assert sim.config.balance_weight == 25.0
        assert sim.config.alpha == 0.2

    def test_unknown_kwarg_rejected(self):
        with pytest.raises(TypeError, match="unexpected keyword"):
            SheriffSimulation(_cluster(), banana=1)

    def test_config_and_legacy_kwarg_together(self):
        cfg = SheriffConfig(alpha=0.3)
        with pytest.warns(DeprecationWarning):
            sim = SheriffSimulation(_cluster(), cfg, beta=0.4)
        assert sim.config.alpha == 0.3
        assert sim.config.beta == 0.4
        assert cfg.beta != 0.4  # the caller's config object is not mutated

    def test_facade_exports(self):
        import repro

        for name in (
            "SheriffConfig",
            "SheriffSimulation",
            "run_managed_simulation",
            "build_cluster",
            "build_fattree",
            "build_bcube",
            "Tracer",
            "MetricsRegistry",
            "RecordingTracer",
            "JsonlTracer",
        ):
            assert getattr(repro, name) is not None
            assert name in dir(repro)


class TestObservabilityIsPassive:
    def test_tracing_leaves_round_summaries_identical(self):
        """A recording tracer must not perturb a single decision."""

        def run(tracer):
            cluster = _cluster(seed=11, fill=0.7, skew=1.0)
            cfg = SheriffConfig(tracer=tracer) if tracer else SheriffConfig()
            sim = SheriffSimulation(cluster, cfg)
            out = []
            for r in range(5):
                alerts, vma = inject_fraction_alerts(cluster, 0.2, time=r, seed=70 + r)
                out.append(sim.run_round(alerts, vma))
            return out

        plain = run(None)
        traced = run(RecordingTracer())
        for a, b in zip(plain, traced):
            assert a.round_index == b.round_index
            assert a.alerts == b.alerts
            assert a.migrations == b.migrations
            assert a.requests == b.requests
            assert a.rejects == b.rejects
            assert a.total_cost == b.total_cost
            assert a.search_space == b.search_space
            assert a.unplaced == b.unplaced
            assert a.workload_std_after == b.workload_std_after

    def test_metrics_registry_mirrors_summaries(self):
        registry = MetricsRegistry()
        cluster = _cluster()
        sim = SheriffSimulation(cluster, SheriffConfig(metrics=registry))
        totals = {"migrations": 0, "requests": 0, "rejects": 0, "cost": 0.0}
        for r in range(3):
            alerts, vma = inject_fraction_alerts(cluster, 0.3, time=r, seed=30 + r)
            s = sim.run_round(alerts, vma)
            totals["migrations"] += s.migrations
            totals["requests"] += s.requests
            totals["rejects"] += s.rejects
            totals["cost"] += s.total_cost
        assert registry.total("sheriff_rounds_total") == 3.0
        assert registry.total("sheriff_requests_acked_total") == totals["migrations"]
        assert registry.total("sheriff_requests_sent_total") == totals["requests"]
        assert registry.total("sheriff_requests_rejected_total") == totals["rejects"]
        assert registry.total("sheriff_migration_cost_total") == pytest.approx(
            totals["cost"]
        )
        assert registry.total("sheriff_migrations_committed_total") == float(
            totals["migrations"]
        )

    def test_tracing_is_passive_under_seeded_chaos(self):
        """Tracer-on chaos campaigns report byte-identically to tracer-off.

        The faults layer is the hardest case for the zero-cost contract:
        the unreliable channel, fault injector and evacuation paths all
        branch on ``tracer.enabled``, and the lifecycle stitcher now runs
        inside every enabled emit.  The seeded campaign report is
        byte-stable (``make chaos`` cmp contract), so comparing reports
        proves the traced decision path identical.
        """
        import json

        from repro.faults import ChannelPolicy, run_chaos_campaign

        def run(tracer):
            cfg = SheriffConfig(tracer=tracer) if tracer else None
            return run_chaos_campaign(
                topology="fattree",
                size=4,
                rounds=8,
                seed=2015,
                alert_fraction=0.1,
                channel=ChannelPolicy(
                    loss_probability=0.1, max_retries=3, seed=2015
                ),
                config=cfg,
            )

        plain = json.dumps(run(None), sort_keys=True)
        tracer = RecordingTracer()
        traced = json.dumps(run(tracer), sort_keys=True)
        assert traced == plain
        # and the traced run really did record the fault vocabulary
        kinds = set(tracer.kinds())
        assert "FaultInjected" in kinds
        assert "RequestSent" in kinds

    def test_profiler_breakdown_has_pipeline_sections(self):
        cluster = _cluster()
        sim = SheriffSimulation(cluster)
        alerts, vma = inject_fraction_alerts(cluster, 0.3, time=0, seed=5)
        summary = sim.run_round(alerts, vma)
        for section in ("round", "priority", "matching", "request", "commit"):
            assert section in summary.timings
            assert summary.timings[section] >= 0.0
        breakdown = sim.timing_breakdown()
        assert breakdown["round"] >= summary.timings["round"]
