"""Exporters: Prometheus text exposition, Chrome spans, reservoir quantiles."""

import json

from repro.obs.export import chrome_trace, prometheus_text, write_chrome_trace
from repro.obs.metrics import RESERVOIR_SIZE, MetricsRegistry
from repro.obs.profiling import Profiler


class TestHistogramQuantiles:
    def test_exact_while_stream_fits_reservoir(self):
        m = MetricsRegistry()
        h = m.histogram("latency")
        for v in range(1, 101):
            h.observe(float(v))
        assert h.quantile(0.0) == 1.0
        assert h.quantile(1.0) == 100.0
        assert h.quantile(0.5) == 50.5
        qs = h.quantiles()
        assert qs["p50"] == 50.5
        assert abs(qs["p95"] - 95.05) < 1e-9

    def test_reservoir_stays_bounded(self):
        m = MetricsRegistry()
        h = m.histogram("big")
        for v in range(10 * RESERVOIR_SIZE):
            h.observe(float(v))
        assert len(h._reservoir) == RESERVOIR_SIZE
        assert h.count == 10 * RESERVOIR_SIZE
        # sampled estimate still lands in the right region
        assert 0.3 < h.quantile(0.5) / (10 * RESERVOIR_SIZE) < 0.7

    def test_deterministic_across_registries(self):
        def fill():
            h = MetricsRegistry().histogram("d", rack=3)
            for v in range(5000):
                h.observe(float((v * 37) % 1000))
            return h.quantiles()

        assert fill() == fill()

    def test_quantiles_in_as_dict(self):
        m = MetricsRegistry()
        h = m.histogram("x")
        h.observe(2.0)
        h.observe(4.0)
        entry = m.as_dict()["x"]
        assert entry["p50"] == 3.0
        assert entry["p99"] >= entry["p50"]


class TestPrometheusText:
    def test_counter_gauge_and_summary_families(self):
        m = MetricsRegistry()
        m.counter("sheriff_rounds_total").inc(3)
        m.counter("requests_total", rack=1).inc(2)
        m.gauge("sheriff_workload_std").set(1.25)
        h = m.histogram("move_cost", rack=1)
        h.observe(5.0)
        h.observe(7.0)
        text = prometheus_text(m)
        assert "# TYPE sheriff_rounds_total counter" in text
        assert "sheriff_rounds_total 3.0" in text
        # namespace prefix applied exactly once
        assert "# TYPE sheriff_requests_total counter" in text
        assert 'sheriff_requests_total{rack="1"} 2.0' in text
        assert "sheriff_sheriff" not in text
        assert "# TYPE sheriff_workload_std gauge" in text
        assert "# TYPE sheriff_move_cost summary" in text
        assert 'sheriff_move_cost{quantile="0.5",rack="1"} 6.0' in text
        assert 'sheriff_move_cost_count{rack="1"} 2' in text
        assert 'sheriff_move_cost_sum{rack="1"} 12.0' in text

    def test_bucketed_histogram_exports_cumulative_le(self):
        m = MetricsRegistry()
        h = m.histogram("lat", buckets=[1.0, 5.0])
        for v in (0.5, 0.7, 3.0, 9.0):
            h.observe(v)
        text = prometheus_text(m)
        assert "# TYPE sheriff_lat histogram" in text
        assert 'sheriff_lat_bucket{le="1.0"} 2' in text
        assert 'sheriff_lat_bucket{le="5.0"} 3' in text
        assert 'sheriff_lat_bucket{le="+Inf"} 4' in text
        assert "sheriff_lat_count 4" in text

    def test_empty_registry_exports_empty(self):
        assert prometheus_text(MetricsRegistry()) == ""

    def test_label_values_are_escaped(self):
        m = MetricsRegistry()
        m.counter("weird_total", path='C:\\dir', note='say "hi"\nbye').inc()
        text = prometheus_text(m)
        assert 'path="C:\\\\dir"' in text
        assert 'note="say \\"hi\\"\\nbye"' in text
        # the raw (unescaped) forms never leak into the exposition
        assert '\nbye' not in text.replace("\\n", "")

    def test_help_and_type_once_per_family_under_interleaving(self):
        m = MetricsRegistry()
        # interleave labeled series of two families in registration order
        m.counter("alerts_total", rack=0).inc()
        m.counter("requests_sent_total", rack=0).inc()
        m.counter("alerts_total", rack=1).inc()
        m.counter("requests_sent_total", rack=1).inc()
        text = prometheus_text(m)
        for family in ("sheriff_alerts_total", "sheriff_requests_sent_total"):
            assert text.count(f"# HELP {family} ") == 1
            assert text.count(f"# TYPE {family} ") == 1
        # all samples of a family sit contiguously under its header
        lines = text.splitlines()
        starts = [i for i, l in enumerate(lines) if l.startswith("# HELP")]
        assert lines[starts[0]].split()[2] == "sheriff_alerts_total"
        assert lines[starts[0] + 2].startswith("sheriff_alerts_total{")
        assert lines[starts[0] + 3].startswith("sheriff_alerts_total{")

    def test_known_families_get_catalog_help_text(self):
        m = MetricsRegistry()
        m.counter("sheriff_slo_violation_minutes_total", tenant="gold").inc()
        m.counter("made_up_total").inc()
        text = prometheus_text(m)
        assert (
            "# HELP sheriff_slo_violation_minutes_total "
            "SLO-violation-minutes charged, by tenant class and source."
        ) in text
        # unknown families still get a HELP line (generic fallback)
        assert "# HELP sheriff_made_up_total Sheriff metric" in text


class TestChromeTrace:
    def test_nested_sections_become_nested_spans(self):
        p = Profiler(record_spans=True)
        p.begin_round(0)
        with p.section("round"):
            with p.section("priority"):
                pass
            with p.section("matching"):
                pass
        doc = chrome_trace(p)
        events = doc["traceEvents"]
        assert [e["name"] for e in events] == ["round", "priority", "matching"]
        outer, inner, second = events
        assert outer["ph"] == "X"
        assert outer["args"]["depth"] == 0
        assert inner["args"]["depth"] == 1
        assert inner["args"]["round"] == 0
        # time containment: children inside the parent window
        assert outer["ts"] <= inner["ts"]
        assert inner["ts"] + inner["dur"] <= outer["ts"] + outer["dur"] + 1e-6
        assert second["ts"] >= inner["ts"] + inner["dur"] - 1e-6

    def test_span_parents_form_a_tree(self):
        p = Profiler(record_spans=True)
        with p.section("a"):
            with p.section("b"):
                with p.section("c"):
                    pass
        assert [s.parent for s in p.spans] == [None, 0, 1]

    def test_spans_off_by_default_keeps_flat_totals(self):
        p = Profiler()
        with p.section("x"):
            pass
        assert p.spans == []
        assert "x" in p.totals

    def test_write_chrome_trace_is_valid_json(self, tmp_path):
        p = Profiler(record_spans=True)
        with p.section("round"):
            pass
        path = tmp_path / "spans.json"
        with open(path, "w") as fh:
            count = write_chrome_trace(p, fh)
        assert count == 1
        doc = json.loads(path.read_text())
        assert doc["traceEvents"][0]["name"] == "round"

    def test_worker_folds_land_as_spans(self):
        p = Profiler(record_spans=True)
        p.add("plan/w0", 0.002)
        assert p.spans[-1].name == "plan/w0"
        assert p.spans[-1].duration == 0.002
