"""The ``repro trace`` toolchain: summarize, lifecycle, diff, lint."""

import json

import pytest

from repro.cli import main
from repro.obs.analysis import (
    diff_traces,
    lint_trace,
    summarize_trace,
    vm_lifecycle,
)
from repro.obs.tracer import load_trace


@pytest.fixture(scope="module")
def chaos_trace(tmp_path_factory):
    """One seeded chaos campaign's trace — the golden lint subject."""
    path = tmp_path_factory.mktemp("trace") / "chaos.jsonl"
    rc = main(
        [
            "chaos", "--size", "4", "--rounds", "8", "--seed", "2015",
            "--trace", str(path),
        ]
    )
    assert rc == 0
    return path


class TestSummarize:
    def test_counts_and_latency(self, chaos_trace):
        events = load_trace(chaos_trace)
        summary = summarize_trace(events)
        assert summary["events"] == len(events)
        assert summary["rounds"] == 8
        assert summary["attempts"] > 0
        assert summary["totals"]["RequestSent"] > 0
        lat = summary["alert_to_landed_rounds"]
        assert lat["count"] == summary["totals"].get("MigrationLanded", 0)
        assert 0.0 <= lat["p50"] <= lat["p95"] <= lat["p99"] <= lat["max"]

    def test_cli_json(self, chaos_trace, capsys):
        assert main(["trace", "summarize", str(chaos_trace), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["rounds"] == 8
        assert payload["no_landings"] is False

    def test_no_landings_row_is_explicit(self, tmp_path, capsys):
        # a trace with zero landed migrations must say so (not omit the
        # latency section) and still exit 0
        path = tmp_path / "quiet.jsonl"
        path.write_text(
            '{"schema_version": 2}\n'
            '{"event": "AlertDelivered", "round": 0, "rack": 0}\n'
        )
        assert main(["trace", "summarize", str(path)]) == 0
        out = capsys.readouterr().out
        assert "no landings" in out
        assert main(["trace", "summarize", str(path), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["no_landings"] is True
        assert payload["alert_to_landed_rounds"]["count"] == 0

    def test_slo_section_appears_for_slo_traces(self, tmp_path, capsys):
        trace = tmp_path / "chaos_slo.jsonl"
        rc = main(
            [
                "chaos", "--size", "4", "--rounds", "8", "--seed", "2015",
                "--slo", "--trace", str(trace),
            ]
        )
        assert rc == 0
        summary = summarize_trace(load_trace(trace))
        assert summary["totals"]["SloViolation"] > 0
        slo = summary["slo"]
        assert slo["violation_minutes"] > 0.0
        assert sum(slo["by_tenant"].values()) == pytest.approx(
            slo["violation_minutes"]
        )
        assert sum(slo["by_source"].values()) == pytest.approx(
            slo["violation_minutes"]
        )
        assert slo["episodes"]["count"] > 0
        assert (
            0.0
            < slo["episodes"]["p50_rounds"]
            <= slo["episodes"]["p99_rounds"]
            <= slo["episodes"]["max_rounds"]
        )
        assert main(["trace", "summarize", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "slo violation-minutes" in out
        assert "tenant gold" in out

    def test_plain_clean_traces_have_no_slo_section(self, chaos_trace, capsys):
        assert main(["trace", "summarize", str(chaos_trace)]) == 0
        assert "slo violation-minutes" not in capsys.readouterr().out


class TestLifecycle:
    def test_follows_one_vm(self, chaos_trace):
        events = load_trace(chaos_trace)
        vm = next(e["vm"] for e in events if e["event"] == "MigrationLanded")
        life = vm_lifecycle(events, vm)
        assert life["attempts"]
        landed = [
            a for a in life["attempts"] if a["outcome"] == "MigrationLanded"
        ]
        assert landed
        chain = [e["event"] for e in landed[0]["events"]]
        assert chain[0] == "RequestSent"
        assert "MigrationCommitted" in chain

    def test_cli_plain(self, chaos_trace, capsys):
        events = load_trace(chaos_trace)
        vm = next(e["vm"] for e in events if e["event"] == "RequestSent")
        assert main(["trace", "lifecycle", str(chaos_trace), str(vm)]) == 0
        out = capsys.readouterr().out
        assert "attempt r" in out


class TestDiff:
    def test_identical_traces_diff_empty(self, chaos_trace):
        events = load_trace(chaos_trace)
        assert diff_traces(events, events)["identical"] is True

    def test_mutation_shows_up(self, chaos_trace):
        events = load_trace(chaos_trace)
        mutated = [e for e in events if e["event"] != "FaultInjected"]
        diff = diff_traces(events, mutated)
        assert diff["identical"] is False
        assert all(r["event"] == "FaultInjected" for r in diff["rows"])
        assert sum(r["delta"] for r in diff["rows"]) < 0

    def test_cli_exit_zero_either_way(self, chaos_trace, tmp_path, capsys):
        other = tmp_path / "other.jsonl"
        other.write_text(
            "\n".join(
                json.dumps(e)
                for e in load_trace(chaos_trace)
                if e["event"] != "AlertDelivered"
            )
            + "\n"
        )
        assert main(["trace", "diff", str(chaos_trace), str(other)]) == 0
        assert "AlertDelivered" in capsys.readouterr().out


class TestLint:
    def test_golden_chaos_trace_is_clean(self, chaos_trace):
        assert lint_trace(load_trace(chaos_trace)) == []

    def test_cli_exit_codes(self, chaos_trace, tmp_path, capsys):
        assert main(["trace", "lint", str(chaos_trace)]) == 0
        capsys.readouterr()

    def _mutate(self, chaos_trace, tmp_path, drop=None, name="bad.jsonl"):
        events = load_trace(chaos_trace)
        if drop is not None:
            hit = next(i for i, e in enumerate(events) if e["event"] == drop)
            events = events[:hit] + events[hit + 1 :]
        path = tmp_path / name
        path.write_text("\n".join(json.dumps(e) for e in events) + "\n")
        return path

    def test_dropped_ack_is_caught(self, chaos_trace, tmp_path, capsys):
        bad = self._mutate(chaos_trace, tmp_path, drop="RequestAcked")
        violations = lint_trace(load_trace(bad))
        rules = {v.rule for v in violations}
        assert "resolution" in rules or "commit-unacked" in rules
        assert main(["trace", "lint", str(bad)]) == 1
        capsys.readouterr()

    def test_commit_without_ack_is_caught(self, tmp_path):
        events = [
            {"event": "RequestSent", "round": 0, "vm": 1, "dst_host": 2,
             "dst_rack": 0},
            {"event": "RequestRejected", "round": 0, "vm": 1, "dst_host": 2,
             "dst_rack": 0, "reason": "capacity"},
            {"event": "MigrationCommitted", "round": 0, "vm": 1, "dst_host": 2},
        ]
        violations = lint_trace(events)
        assert [v.rule for v in violations] == ["commit-unacked"]

    def test_landed_without_commit_is_caught(self):
        events = [
            {"event": "MigrationLanded", "round": 1, "vm": 4, "dst_host": 3},
        ]
        assert [v.rule for v in lint_trace(events)] == ["landed-uncommitted"]

    def test_double_resolution_is_caught(self):
        events = [
            {"event": "RequestSent", "round": 0, "vm": 1, "dst_host": 2,
             "dst_rack": 0},
            {"event": "RequestRejected", "round": 0, "vm": 1, "dst_host": 2,
             "dst_rack": 0, "reason": "capacity"},
            {"event": "RequestAcked", "round": 0, "vm": 1, "dst_host": 2,
             "dst_rack": 0},
        ]
        assert [v.rule for v in lint_trace(events)] == ["resolution"]

    def test_ack_then_timeout_is_allowed(self):
        # lossy channel lease expiry: receiver ACKed, every reply leg
        # lost, sender timed out and the reservation was cancelled
        events = [
            {"event": "RequestSent", "round": 0, "vm": 1, "dst_host": 2,
             "dst_rack": 0},
            {"event": "RequestAcked", "round": 0, "vm": 1, "dst_host": 2,
             "dst_rack": 0},
            {"event": "RequestTimedOut", "round": 0, "vm": 1, "dst_host": 2,
             "dst_rack": 0, "attempts": 3},
        ]
        assert lint_trace(events) == []

    def test_down_rack_activity_is_caught(self):
        events = [
            {"event": "FaultInjected", "round": 2, "fault_kind": "shim_down",
             "target": 1, "detail": "until-round-5"},
            {"event": "PrioritySelected", "round": 3, "rack": 1,
             "factor": "ALPHA", "selected": []},
            {"event": "PrioritySelected", "round": 5, "rack": 1,
             "factor": "ALPHA", "selected": []},
        ]
        violations = lint_trace(events)
        # round 3 is inside the outage; round 5 is after auto-recovery
        assert [v.rule for v in violations] == ["down-rack"]
        assert violations[0].line == 1

    def test_corrupted_trace_id_is_caught(self, chaos_trace, tmp_path):
        events = load_trace(chaos_trace)
        hit = next(
            i for i, e in enumerate(events)
            if e["event"] == "RequestAcked" and "trace_id" in e
        )
        events[hit]["trace_id"] = "r99.v424242"
        violations = lint_trace(events)
        assert "correlation" in {v.rule for v in violations}
