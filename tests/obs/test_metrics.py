"""Metrics registry semantics: counters, gauges, histograms, scopes."""

import math

import pytest

from repro.errors import ObservabilityError
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        reg = MetricsRegistry()
        c = reg.counter("m")
        assert c.value == 0.0
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_negative_increment_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(ObservabilityError):
            reg.counter("m").inc(-1)

    def test_get_or_create_same_object(self):
        reg = MetricsRegistry()
        assert reg.counter("m", rack=3) is reg.counter("m", rack=3)
        assert reg.counter("m", rack=3) is not reg.counter("m", rack=4)

    def test_label_order_irrelevant(self):
        reg = MetricsRegistry()
        assert reg.counter("m", a=1, b=2) is reg.counter("m", b=2, a=1)

    def test_family_total_across_labels(self):
        reg = MetricsRegistry()
        reg.counter("m", rack=0).inc(2)
        reg.counter("m", rack=1).inc(3)
        assert reg.total("m") == 5.0


class TestGauge:
    def test_set_inc_dec(self):
        g = MetricsRegistry().gauge("g")
        g.set(10)
        g.inc(2)
        g.dec(5)
        assert g.value == 7.0

    def test_can_go_negative(self):
        g = MetricsRegistry().gauge("g")
        g.dec(3)
        assert g.value == -3.0


class TestHistogram:
    def test_streaming_stats(self):
        h = MetricsRegistry().histogram("h")
        for v in (1.0, 5.0, 3.0):
            h.observe(v)
        assert h.count == 3
        assert h.sum == 9.0
        assert h.mean == 3.0
        assert h.min == 1.0
        assert h.max == 5.0

    def test_empty_histogram(self):
        h = MetricsRegistry().histogram("h")
        assert h.count == 0
        assert h.mean == 0.0
        assert math.isinf(h.min)

    def test_buckets(self):
        h = MetricsRegistry().histogram("h", buckets=[1.0, 10.0])
        for v in (0.5, 1.0, 2.0, 100.0):
            h.observe(v)
        # <=1, <=10, +inf
        assert h.bucket_counts == [2, 1, 1]

    def test_unsorted_buckets_rejected(self):
        with pytest.raises(ObservabilityError):
            MetricsRegistry().histogram("h", buckets=[10.0, 1.0])


class TestRegistry:
    def test_type_clash_raises(self):
        reg = MetricsRegistry()
        reg.counter("m")
        with pytest.raises(ObservabilityError):
            reg.gauge("m")
        with pytest.raises(ObservabilityError):
            reg.histogram("m")

    def test_empty_name_rejected(self):
        with pytest.raises(ObservabilityError):
            MetricsRegistry().counter("")

    def test_as_dict_formats_labels(self):
        reg = MetricsRegistry()
        reg.counter("m", rack=3).inc()
        reg.gauge("g").set(2.0)
        snap = reg.as_dict()
        assert snap["m{rack=3}"] == 1.0
        assert snap["g"] == 2.0

    def test_instruments_enumerates(self):
        reg = MetricsRegistry()
        reg.counter("a")
        reg.gauge("b")
        kinds = {type(m) for m in reg.instruments()}
        assert kinds == {Counter, Gauge}


class TestScope:
    def test_scope_window_accumulates_from_zero(self):
        reg = MetricsRegistry()
        reg.counter("m").inc(100)  # before the window: invisible to it
        with reg.scope() as scope:
            reg.counter("m").inc(2)
            reg.counter("m").inc(3)
        assert scope.total("m") == 5.0
        assert reg.counter("m").value == 105.0

    def test_scope_total_spans_labels(self):
        reg = MetricsRegistry()
        with reg.scope() as scope:
            reg.counter("m", rack=0).inc(1)
            reg.counter("m", rack=1).inc(2)
        assert scope.total("m") == 3.0
        assert scope.value("m", rack=1) == 2.0
        assert scope.value("m", rack=9) == 0.0
        assert scope.by_label("m", "rack") == {"0": 1.0, "1": 2.0}

    def test_scope_counts_recordings(self):
        reg = MetricsRegistry()
        with reg.scope() as scope:
            reg.histogram("h").observe(4.0)
            reg.histogram("h").observe(6.0)
        assert scope.count("h") == 2
        assert scope.total("h") == 10.0

    def test_nested_scopes_both_see_increments(self):
        reg = MetricsRegistry()
        with reg.scope() as outer:
            reg.counter("m").inc()
            with reg.scope() as inner:
                reg.counter("m").inc()
        assert outer.total("m") == 2.0
        assert inner.total("m") == 1.0

    def test_closed_scope_stops_recording(self):
        reg = MetricsRegistry()
        with reg.scope() as scope:
            pass
        reg.counter("m").inc()
        assert scope.total("m") == 0.0
