"""SheriffConfig JSON round-trips and the legacy-kwarg deprecation path."""

import json

import pytest

from repro.config import SheriffConfig, resolve_config
from repro.costs.model import CostParams
from repro.errors import ConfigurationError
from repro.obs.metrics import MetricsRegistry
from repro.sim.inflight import MigrationTiming


class TestRoundTrip:
    def test_defaults_round_trip(self):
        cfg = SheriffConfig()
        assert SheriffConfig.from_dict(cfg.to_dict()) == cfg

    def test_scalars_round_trip_through_json(self):
        cfg = SheriffConfig(
            alpha=0.2,
            beta=0.3,
            balance_weight=12.5,
            migration_cooldown=5,
            with_flows=True,
            flow_rate=0.1,
            workers=4,
            cache_cost_kernels=False,
            profile=False,
        )
        wire = json.dumps(cfg.to_dict(), sort_keys=True)
        assert SheriffConfig.from_dict(json.loads(wire)) == cfg

    def test_nested_dataclasses_round_trip(self):
        cfg = SheriffConfig(
            cost_params=CostParams(),
            migration_timing=MigrationTiming(),
        )
        back = SheriffConfig.from_dict(json.loads(json.dumps(cfg.to_dict())))
        assert back.cost_params == cfg.cost_params
        assert back.migration_timing == cfg.migration_timing

    def test_unknown_key_rejected(self):
        with pytest.raises(ConfigurationError, match="ballance_weight"):
            SheriffConfig.from_dict({"ballance_weight": 25.0})

    def test_non_object_rejected(self):
        with pytest.raises(ConfigurationError, match="object"):
            SheriffConfig.from_dict([1, 2])

    def test_bad_nested_key_rejected(self):
        with pytest.raises(ConfigurationError, match="cost_params"):
            SheriffConfig.from_dict({"cost_params": {"warp_factor": 9}})

    def test_runtime_handles_refuse_to_serialize(self):
        cfg = SheriffConfig(metrics=MetricsRegistry())
        with pytest.raises(ConfigurationError, match="metrics"):
            cfg.to_dict()

    def test_event_bus_refuses_to_serialize(self):
        from repro.service.bus import EventBus

        with pytest.raises(ConfigurationError, match="event_bus"):
            SheriffConfig(event_bus=EventBus()).to_dict()


class TestLegacyKwargs:
    def test_warning_names_replacement_and_release(self):
        with pytest.warns(DeprecationWarning) as rec:
            resolve_config(None, {"balance_weight": 25.0})
        message = str(rec[0].message)
        assert "SheriffConfig.balance_weight" in message
        assert "removed in release 2.0" in message

    def test_unknown_kwarg_still_a_type_error(self):
        with pytest.raises(TypeError, match="warp"):
            resolve_config(None, {"warp": 1})
