"""Benchmark table-formatting tests."""

import pytest

from repro.analysis import Series, format_series, format_table
from repro.errors import ConfigurationError


class TestSeries:
    def test_length_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            Series("a", [1, 2], [1.0])

    def test_format_contains_all_values(self):
        s1 = Series("sheriff", [8, 16], [100.0, 200.0])
        s2 = Series("optimal", [8, 16], [90.0, 180.0])
        out = format_series("Fig 11", [s1, s2], x_label="pods")
        assert "Fig 11" in out
        assert "sheriff" in out and "optimal" in out
        assert "100.000" in out and "180.000" in out

    def test_mismatched_x_rejected(self):
        s1 = Series("a", [1, 2], [0.0, 0.0])
        s2 = Series("b", [1, 3], [0.0, 0.0])
        with pytest.raises(ConfigurationError):
            format_series("t", [s1, s2])

    def test_empty_series_list_rejected(self):
        with pytest.raises(ConfigurationError):
            format_series("t", [])


class TestTable:
    def test_formats_rows(self):
        rows = [{"k": 8, "cost": 1.5}, {"k": 16, "cost": 2.5}]
        out = format_table("tbl", rows)
        assert "cost" in out and "2.500" in out

    def test_scientific_for_large(self):
        out = format_table("t", [{"x": 1e9}])
        assert "e+" in out

    def test_inconsistent_columns_rejected(self):
        with pytest.raises(ConfigurationError):
            format_table("t", [{"a": 1}, {"b": 2}])

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            format_table("t", [])


class TestStringColumns:
    def test_string_cells_right_aligned(self):
        out = format_table("t", [{"model": "arima", "mse": 1.25}])
        assert "arima" in out
        line = out.splitlines()[-1]
        assert line.endswith("1.250")

    def test_mixed_rows_consistent(self):
        rows = [{"name": "a", "v": 1}, {"name": "bb", "v": 2}]
        out = format_table("t", rows)
        assert out.count("\n") == 4
