"""Persistence round-trip tests."""

import numpy as np
import pytest

from repro.cluster import build_cluster
from repro.errors import ConfigurationError
from repro.io import load_cluster, load_topology, save_cluster, save_topology
from repro.sim import SheriffSimulation, inject_fraction_alerts
from repro.topology import build_bcube, build_fattree


class TestTopologyRoundtrip:
    @pytest.mark.parametrize("make", [lambda: build_fattree(4), lambda: build_bcube(3, 3)])
    def test_roundtrip(self, make, tmp_path):
        topo = make()
        path = tmp_path / "topo.npz"
        save_topology(topo, path)
        back = load_topology(path)
        assert back.name == topo.name
        assert back.num_nodes == topo.num_nodes
        assert back.num_racks == topo.num_racks
        np.testing.assert_array_equal(back.kinds, topo.kinds)
        np.testing.assert_array_equal(back.links.u, topo.links.u)
        np.testing.assert_array_equal(back.links.capacity, topo.links.capacity)
        assert back.meta == topo.meta


class TestClusterRoundtrip:
    def test_full_state_preserved(self, tmp_path):
        cluster = build_cluster(
            build_fattree(4), hosts_per_rack=3, seed=5, dependency_degree=1.5
        )
        path = tmp_path / "cluster.npz"
        save_cluster(cluster, path)
        back = load_cluster(path)
        assert back.num_vms == cluster.num_vms
        assert back.num_hosts == cluster.num_hosts
        np.testing.assert_array_equal(back.placement.vm_host, cluster.placement.vm_host)
        np.testing.assert_array_equal(
            back.placement.vm_capacity, cluster.placement.vm_capacity
        )
        np.testing.assert_array_equal(
            back.placement.vm_delay_sensitive, cluster.placement.vm_delay_sensitive
        )
        assert back.dependencies.num_pairs == cluster.dependencies.num_pairs
        for vm in range(cluster.num_vms):
            assert back.dependencies.neighbors(vm) == cluster.dependencies.neighbors(vm)
        back.placement.check_invariants()

    def test_mid_simulation_snapshot_resumes(self, tmp_path):
        cluster = build_cluster(
            build_fattree(4), hosts_per_rack=2, skew=0.8, seed=6,
            delay_sensitive_fraction=0.0,
        )
        sim = SheriffSimulation(cluster)
        for r in range(3):
            alerts, vma = inject_fraction_alerts(cluster, 0.1, time=r, seed=r)
            sim.run_round(alerts, vma)
        path = tmp_path / "snap.npz"
        save_cluster(cluster, path)
        resumed = load_cluster(path)
        np.testing.assert_array_equal(
            resumed.placement.vm_host, cluster.placement.vm_host
        )
        # resumed cluster can keep simulating
        sim2 = SheriffSimulation(resumed)
        alerts, vma = inject_fraction_alerts(resumed, 0.1, time=9, seed=9)
        sim2.run_round(alerts, vma)
        resumed.placement.check_invariants()

    def test_tampered_archive_fails_loudly(self, tmp_path):
        cluster = build_cluster(build_fattree(4), hosts_per_rack=2, seed=7)
        path = tmp_path / "c.npz"
        save_cluster(cluster, path)
        # corrupt: shrink a host capacity below its load
        data = dict(np.load(path))
        data["host_capacity"] = data["host_capacity"] * 0 + 1
        np.savez_compressed(path, **data)
        with pytest.raises(Exception):
            load_cluster(path)

    def test_version_check(self, tmp_path):
        cluster = build_cluster(build_fattree(4), hosts_per_rack=2, seed=8)
        path = tmp_path / "c.npz"
        save_cluster(cluster, path)
        data = dict(np.load(path))
        data["format_version"] = np.asarray(99)
        np.savez_compressed(path, **data)
        with pytest.raises(ConfigurationError, match="format version"):
            load_cluster(path)
