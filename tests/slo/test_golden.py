"""Golden seeded accounting run and the disabled-path identity contract."""

from dataclasses import asdict

import numpy as np
import pytest

from repro.cluster import build_cluster
from repro.config import SheriffConfig
from repro.sim import SheriffSimulation, inject_fraction_alerts
from repro.topology import build_fattree

ROUNDS = 6
ALERT_FRACTION = 0.08


def _cluster():
    return build_cluster(
        build_fattree(4),
        hosts_per_rack=4,
        fill_fraction=0.5,
        skew=1.1,
        seed=2015,
        delay_sensitive_fraction=0.1,
    )


def _run(cfg):
    cluster = _cluster()
    sim = SheriffSimulation(cluster, cfg)
    summaries = []
    for r in range(ROUNDS):
        alerts, vma = inject_fraction_alerts(
            cluster, ALERT_FRACTION, time=r, seed=3 + r
        )
        summaries.append(sim.run_round(alerts, vma))
    return cluster, sim, summaries


def _decision_view(summary):
    """A round summary minus the SLO ledger fields and run-local noise."""
    d = asdict(summary)
    for key in ("timings", "reports", "pool", "slo_violation_minutes",
                "slo_by_class"):
        d.pop(key, None)
    return d


class TestGoldenRun:
    def test_per_tenant_totals_are_pinned(self):
        # seeded derivation + seeded alerts => the ledger is bit-stable;
        # any drift here means the SLO derivation or a charge site moved
        _, sim, _ = _run(SheriffConfig(balance_weight=25.0, slo=True))
        ledger = sim.slo.summary()
        assert ledger["total_minutes"] == pytest.approx(
            4.774623738786248, abs=1e-9
        )
        assert ledger["by_class"]["gold"] == pytest.approx(
            4.696617944410786, abs=1e-9
        )
        assert ledger["by_class"]["silver"] == pytest.approx(
            0.07800579437546293, abs=1e-9
        )
        assert ledger["by_class"]["bronze"] == 0.0
        assert ledger["by_source"]["downtime"] == pytest.approx(
            3.1746237387862486, abs=1e-9
        )
        assert ledger["by_source"]["stretch"] == pytest.approx(
            1.5999999999999999, abs=1e-9
        )
        assert ledger["by_source"]["overload"] == 0.0
        assert ledger["episodes"]["count"] == 47

    def test_round_summaries_carry_the_ledger(self):
        _, sim, summaries = _run(SheriffConfig(balance_weight=25.0, slo=True))
        total = sum(s.slo_violation_minutes for s in summaries)
        assert total == pytest.approx(sim.slo.total_minutes, abs=1e-9)
        merged = {}
        for s in summaries:
            for tenant, minutes in s.slo_by_class.items():
                merged[tenant] = merged.get(tenant, 0.0) + minutes
        for tenant, minutes in merged.items():
            assert minutes == pytest.approx(
                sim.slo.by_class[tenant], abs=1e-9
            )


class TestDisabledPathIdentity:
    def test_defaults_leave_slo_layer_unbuilt(self):
        _, sim, summaries = _run(SheriffConfig(balance_weight=25.0))
        assert sim.slo is None
        assert sim.slo_scorer is None
        assert all(s.slo_violation_minutes == 0.0 for s in summaries)
        assert all(s.slo_by_class == {} for s in summaries)

    def test_accounting_never_perturbs_decisions(self):
        # the accountant is a pure observer: the same seed with slo=True
        # must produce byte-identical decisions and final placement
        cl_off, _, off = _run(SheriffConfig(balance_weight=25.0))
        cl_on, _, on = _run(SheriffConfig(balance_weight=25.0, slo=True))
        assert [_decision_view(s) for s in off] == [
            _decision_view(s) for s in on
        ]
        assert np.array_equal(
            cl_off.placement.vm_host, cl_on.placement.vm_host
        )

    def test_explicit_network_scoring_is_the_default(self):
        cl_a, _, a = _run(SheriffConfig(balance_weight=25.0))
        cl_b, _, b = _run(
            SheriffConfig(balance_weight=25.0, scoring="network")
        )
        assert [_decision_view(s) for s in a] == [_decision_view(s) for s in b]
        assert [(s.slo_violation_minutes, s.slo_by_class) for s in a] == [
            (s.slo_violation_minutes, s.slo_by_class) for s in b
        ]
        assert np.array_equal(cl_a.placement.vm_host, cl_b.placement.vm_host)
