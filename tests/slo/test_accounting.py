"""Violation-minutes accounting: properties, episodes, budget, metrics."""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cluster import build_cluster
from repro.costs.model import CostModel
from repro.costs.precopy import precopy_timeline
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import RecordingTracer
from repro.sim.inflight import MigrationTiming
from repro.slo import SloAccountant, SloModel, VIOLATION_SOURCES, VmSlo
from repro.topology import build_fattree

common = settings(
    max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)

_BANDWIDTH = 125.0
_MEMORY = 1024.0


def _cluster(seed=2015):
    return build_cluster(
        build_fattree(4),
        hosts_per_rack=4,
        fill_fraction=0.5,
        skew=1.1,
        seed=seed,
        delay_sensitive_fraction=0.1,
    )


def _accountant(cluster, model=None, **kw):
    model = model if model is not None else SloModel.from_cluster(cluster)
    return SloAccountant(
        model,
        cluster,
        rack_distances=CostModel(cluster).rack_distances,
        timing=MigrationTiming(),
        **kw,
    )


class TestDowntimeProperties:
    # In the max_rounds-capped pre-copy regime (dirty/bandwidth ratio
    # high enough that the residual never fits the downtime budget) the
    # stop-and-copy window is residual = M * ratio^max_rounds / b, which
    # grows with the dirty rate — so violation-minutes must too.  Below
    # the cap the window saw-tooths under the budget, so the guarantee
    # only holds where the cap binds (ratio >= ~0.85 for these params).
    @common
    @given(
        r1=st.floats(min_value=0.86, max_value=0.98),
        r2=st.floats(min_value=0.86, max_value=0.98),
        rate=st.floats(min_value=0.5, max_value=500.0),
    )
    def test_minutes_monotone_in_dirty_rate(self, r1, r2, rate):
        lo, hi = sorted((r1, r2))
        cluster = _cluster()
        model = SloModel(
            {0: VmSlo(vm_id=0, tenant_class="gold",
                      request_rate=rate, latency_target_ms=50.0)}
        )

        def minutes(ratio):
            acct = _accountant(cluster, model=model)
            tl = precopy_timeline(_MEMORY, ratio * _BANDWIDTH, _BANDWIDTH)
            return acct.charge_downtime(0, dst_host=0, timeline=tl)

        m_lo, m_hi = minutes(lo), minutes(hi)
        assert m_lo >= 0.0
        assert m_hi >= m_lo
        if hi > lo:
            assert m_hi > m_lo

    @common
    @given(
        ratio=st.floats(min_value=0.05, max_value=0.98),
        vm=st.integers(min_value=0, max_value=30),
    )
    def test_zero_request_rate_vms_are_never_charged(self, ratio, vm):
        cluster = _cluster()
        vm = vm % cluster.placement.num_vms
        base = SloModel.from_cluster(cluster)
        slos = {s.vm_id: s for s in base}
        slos[vm] = VmSlo(
            vm_id=vm, tenant_class=slos[vm].tenant_class,
            request_rate=0.0, latency_target_ms=slos[vm].latency_target_ms,
        )
        acct = _accountant(cluster, model=SloModel(slos))
        tl = precopy_timeline(_MEMORY, ratio * _BANDWIDTH, _BANDWIDTH)
        assert acct.charge_downtime(vm, dst_host=0, timeline=tl) == 0.0
        assert acct.total_minutes == 0.0
        assert all(v == 0.0 for v in acct.by_class.values())


class TestChargeSites:
    def test_downtime_scales_with_request_rate(self):
        cluster = _cluster()
        tl = precopy_timeline(_MEMORY, 0.9 * _BANDWIDTH, _BANDWIDTH)
        charges = []
        for rate in (10.0, 20.0):
            model = SloModel(
                {0: VmSlo(0, "silver", rate, 150.0)}
            )
            acct = _accountant(cluster, model=model)
            charges.append(acct.charge_downtime(0, dst_host=0, timeline=tl))
        assert charges[1] == 2.0 * charges[0] > 0.0
        assert charges[0] == tl.downtime * 10.0 / 60.0

    def test_stretch_charges_only_lengthened_paths(self):
        cluster = _cluster()
        acct = _accountant(cluster)
        pl = cluster.placement
        deps = cluster.dependencies
        vm = next(v for v in range(pl.num_vms) if deps.neighbors(v))
        home = int(pl.vm_host[vm])
        # moving a VM "to" its own host is a no-op: same rack, no charge
        assert acct.charge_stretch(vm, home, home) == 0.0
        assert acct.total_minutes == 0.0

    def test_overload_round_charges_resident_vms(self):
        cluster = _cluster()
        acct = _accountant(cluster, overload_threshold=0.5)
        load = np.zeros(cluster.placement.num_hosts)
        hot = int(cluster.placement.vm_host[0])
        load[hot] = 1.0  # fully saturated -> full round charged
        charged = acct.charge_round(0, load)
        assert charged > 0.0
        assert acct.by_source["overload"] == charged
        assert acct.total_minutes == charged

    def test_charge_round_without_load_only_closes_episodes(self):
        cluster = _cluster()
        acct = _accountant(cluster)
        assert acct.charge_round(0) == 0.0
        assert acct.total_minutes == 0.0


class TestEpisodes:
    def test_consecutive_rounds_grow_one_episode(self):
        cluster = _cluster()
        model = SloModel({0: VmSlo(0, "gold", 100.0, 50.0)})
        acct = _accountant(cluster, model=model)
        tl = precopy_timeline(_MEMORY, 0.9 * _BANDWIDTH, _BANDWIDTH)
        for rnd in range(3):
            acct.charge_downtime(0, dst_host=0, timeline=tl)
            acct.charge_round(rnd)
        # still open: nothing closed yet
        assert acct.episode_lengths(include_open=False) == []
        assert acct.episode_lengths() == [3]
        acct.charge_round(3)  # a clean round closes it
        assert acct.episode_lengths(include_open=False) == [3]
        assert acct.episode_quantile(0.5) == 3.0

    def test_quantile_interpolates(self):
        cluster = _cluster()
        acct = _accountant(cluster)
        acct._episode_lengths = [1, 3]
        assert acct.episode_quantile(0.5) == 2.0
        assert acct.episode_quantile(0.0) == 1.0
        assert acct.episode_quantile(1.0) == 3.0


class TestBudgetAndSinks:
    def test_budget_exhaustion_fires_once_per_class(self):
        cluster = _cluster()
        model = SloModel({0: VmSlo(0, "gold", 100.0, 50.0)})
        tracer = RecordingTracer()
        metrics = MetricsRegistry()
        acct = _accountant(
            cluster, model=model, budget_minutes=1e-9,
            tracer=tracer, metrics=metrics,
        )
        tl = precopy_timeline(_MEMORY, 0.9 * _BANDWIDTH, _BANDWIDTH)
        acct.charge_downtime(0, dst_host=0, timeline=tl)
        acct.charge_downtime(0, dst_host=0, timeline=tl)
        exhausted = [
            e for e in tracer.events if type(e).__name__ == "SloBudgetExhausted"
        ]
        assert len(exhausted) == 1
        assert exhausted[0].tenant == "gold"
        assert acct.summary()["budget_exhausted"] == ["gold"]

    def test_charges_hit_metrics_and_tracer(self):
        cluster = _cluster()
        model = SloModel({0: VmSlo(0, "silver", 50.0, 150.0)})
        tracer = RecordingTracer()
        metrics = MetricsRegistry()
        acct = _accountant(cluster, model=model, tracer=tracer, metrics=metrics)
        tl = precopy_timeline(_MEMORY, 0.9 * _BANDWIDTH, _BANDWIDTH)
        minutes = acct.charge_downtime(0, dst_host=3, timeline=tl)
        ev = [e for e in tracer.events if type(e).__name__ == "SloViolation"]
        assert len(ev) == 1
        assert ev[0].vm == 0 and ev[0].tenant == "silver"
        assert ev[0].source == "downtime" and ev[0].host == 3
        counters = metrics.as_dict()
        key = next(k for k in counters if "slo_violation_minutes" in k)
        assert abs(counters[key] - minutes) < 1e-12
        assert "tenant=silver" in key and "source=downtime" in key

    def test_summary_shape(self):
        cluster = _cluster()
        acct = _accountant(cluster)
        s = acct.summary()
        assert set(s) == {
            "total_minutes", "by_class", "by_source", "episodes",
            "budget_minutes", "budget_exhausted",
        }
        assert set(s["by_source"]) == set(VIOLATION_SOURCES)
        assert s["episodes"]["count"] == 0
