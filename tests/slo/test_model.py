"""SLO model derivation: classes, rates and latency targets from the cluster."""

from repro.cluster import build_cluster
from repro.slo import SloModel, TENANT_CLASSES, VmSlo
from repro.topology import build_fattree


def _cluster(seed=2015, delay_frac=0.1):
    return build_cluster(
        build_fattree(4),
        hosts_per_rack=4,
        fill_fraction=0.5,
        skew=1.1,
        seed=seed,
        delay_sensitive_fraction=delay_frac,
    )


class TestDerivation:
    def test_every_vm_gets_a_contract(self):
        cluster = _cluster()
        model = SloModel.from_cluster(cluster)
        assert len(model) == cluster.placement.num_vms
        for slo in model:
            assert isinstance(slo, VmSlo)
            assert slo.tenant_class in TENANT_CLASSES
            assert slo.request_rate >= 0.0
            assert slo.latency_target_ms > 0.0

    def test_delay_sensitive_vms_are_gold(self):
        cluster = _cluster(delay_frac=0.3)
        model = SloModel.from_cluster(cluster)
        pl = cluster.placement
        for vm in range(pl.num_vms):
            if bool(pl.vm_delay_sensitive[vm]):
                assert model.slo_for(vm).tenant_class == "gold"

    def test_zero_value_vms_serve_nothing(self):
        cluster = _cluster()
        model = SloModel.from_cluster(cluster)
        pl = cluster.placement
        for vm in range(pl.num_vms):
            if float(pl.vm_value[vm]) == 0.0:
                assert model.slo_for(vm).request_rate == 0.0

    def test_latency_budget_loosens_with_dependency_degree(self):
        cluster = _cluster()
        model = SloModel.from_cluster(cluster)
        deps = cluster.dependencies
        # within one class, a chattier VM never gets a *tighter* budget
        by_class = {}
        for slo in model:
            degree = len(deps.neighbors(slo.vm_id))
            by_class.setdefault(slo.tenant_class, []).append(
                (degree, slo.latency_target_ms)
            )
        for rows in by_class.values():
            rows.sort()
            for (d1, l1), (d2, l2) in zip(rows, rows[1:]):
                if d1 < d2:
                    assert l1 <= l2

    def test_deterministic_per_seed(self):
        a = SloModel.from_cluster(_cluster(seed=7))
        b = SloModel.from_cluster(_cluster(seed=7))
        assert [s for s in a] == [s for s in b]

    def test_by_class_partitions_the_fleet(self):
        cluster = _cluster()
        model = SloModel.from_cluster(cluster)
        groups = model.by_class()
        assert set(groups) == set(TENANT_CLASSES)
        all_vms = sorted(vm for vms in groups.values() for vm in vms)
        assert all_vms == list(range(cluster.placement.num_vms))
