"""SLO-aware migration scoring: the scorer and the engine integration."""

import numpy as np
import pytest

from repro.cluster import build_cluster
from repro.config import SheriffConfig
from repro.errors import ConfigurationError
from repro.sim import SheriffSimulation, inject_fraction_alerts
from repro.sim.inflight import MigrationTiming
from repro.slo import SloModel, SloScorer, VmSlo
from repro.topology import build_fattree


def _cluster(seed=2015):
    return build_cluster(
        build_fattree(4),
        hosts_per_rack=4,
        fill_fraction=0.5,
        skew=1.1,
        seed=seed,
        delay_sensitive_fraction=0.1,
    )


class TestScorer:
    def _model(self):
        return SloModel(
            {
                0: VmSlo(0, "gold", 100.0, 50.0),
                1: VmSlo(1, "bronze", 0.0, 400.0),
            }
        )

    def test_damage_is_downtime_times_rate(self):
        timing = MigrationTiming()
        scorer = SloScorer(self._model(), timing)
        damage = scorer.damage([0, 1], [2, 2])
        _, tl = timing.rounds_for(2)
        assert damage[0] == pytest.approx(tl.downtime * 100.0 / 60.0)
        assert damage[1] == 0.0  # zero-rate VMs never add cost

    def test_addend_couples_damage_with_destination_load(self):
        scorer = SloScorer(self._model(), MigrationTiming(), weight=2.0)
        damage = np.array([1.0, 0.0])
        load = np.array([0.0, 0.5, 1.0])
        addend = scorer.addend(damage, load)
        assert addend.shape == (2, 3)
        # busier destinations cost strictly more for a served VM...
        assert addend[0, 0] < addend[0, 1] < addend[0, 2]
        assert addend[0, 0] == pytest.approx(2.0 * 1.0 * 0.5)
        # ...and a zero-damage row degenerates to pure Eq. (1) cost
        assert np.all(addend[1] == 0.0)

    def test_downtime_memoized_per_capacity(self):
        calls = []

        class CountingTiming:
            def rounds_for(self, capacity):
                calls.append(capacity)
                return MigrationTiming().rounds_for(capacity)

        scorer = SloScorer(self._model(), CountingTiming())
        scorer.damage([0, 0, 0], [2, 2, 3])
        assert calls == [2, 3]


class TestEngineIntegration:
    def test_invalid_scoring_rejected(self):
        with pytest.raises(ConfigurationError):
            SheriffSimulation(_cluster(), SheriffConfig(scoring="magic"))

    def test_slo_scoring_builds_scorer_without_accountant(self):
        sim = SheriffSimulation(_cluster(), SheriffConfig(scoring="slo"))
        assert sim.slo_scorer is not None
        assert sim.slo is None  # accounting stays opt-in separately

    def test_slo_scoring_run_reports_predicted_damage(self):
        cluster = _cluster()
        sim = SheriffSimulation(
            cluster, SheriffConfig(balance_weight=25.0, scoring="slo")
        )
        damage = 0.0
        for r in range(4):
            alerts, vma = inject_fraction_alerts(
                cluster, 0.08, time=r, seed=3 + r
            )
            summary = sim.run_round(alerts, vma)
            damage += sum(
                rep.predicted_slo_damage for rep in summary.reports
            )
        assert damage > 0.0

    def test_serial_and_planned_paths_agree_under_slo_scoring(self):
        # the scorer addend must not break the workers=0 / workers=1
        # equivalence contract (same operand order, elementwise identical)
        def run(workers):
            cluster = _cluster()
            sim = SheriffSimulation(
                cluster,
                SheriffConfig(
                    balance_weight=25.0, scoring="slo", workers=workers
                ),
            )
            for r in range(4):
                alerts, vma = inject_fraction_alerts(
                    cluster, 0.08, time=r, seed=3 + r
                )
                sim.run_round(alerts, vma)
            return cluster.placement.vm_host.copy(), [
                (s.migrations, s.total_cost) for s in sim.history
            ]

        hosts_serial, hist_serial = run(0)
        hosts_planned, hist_planned = run(1)
        assert hist_serial == hist_planned
        assert np.array_equal(hosts_serial, hosts_planned)
