"""Profile aggregation tests."""

import numpy as np
import pytest

from repro.alerts.aggregate import (
    host_profiles,
    hottest_resource,
    rack_profiles,
    rack_uplink_traffic,
)
from repro.cluster.host import Host
from repro.cluster.placement import Placement
from repro.cluster.resources import NUM_RESOURCES, ResourceKind
from repro.cluster.vm import VM
from repro.errors import ConfigurationError


@pytest.fixture
def placement():
    vms = [VM(0, 10, 1.0), VM(1, 30, 1.0), VM(2, 20, 1.0)]
    hosts = [Host(0, 0, 100), Host(1, 0, 100), Host(2, 1, 100)]
    return Placement(vms, hosts, [0, 0, 2])


def profiles_for(placement, rows):
    return np.asarray(rows, dtype=np.float64)


class TestHostProfiles:
    def test_capacity_weighted_mean(self, placement):
        p = profiles_for(placement, [
            [1.0, 0.0, 0.0, 0.0],   # vm0, cap 10
            [0.0, 0.0, 0.0, 0.0],   # vm1, cap 30
            [0.5, 0.5, 0.5, 0.5],   # vm2, cap 20
        ])
        hp = host_profiles(placement, p)
        assert hp[0, 0] == pytest.approx(10 / 40)  # (10*1 + 30*0) / 40
        np.testing.assert_allclose(hp[2], 0.5)

    def test_empty_host_zero(self, placement):
        p = np.zeros((3, NUM_RESOURCES))
        hp = host_profiles(placement, p)
        np.testing.assert_allclose(hp[1], 0.0)

    def test_shape_validation(self, placement):
        with pytest.raises(ConfigurationError):
            host_profiles(placement, np.zeros((2, NUM_RESOURCES)))
        with pytest.raises(ConfigurationError):
            host_profiles(placement, np.full((3, NUM_RESOURCES), 1.5))


class TestRackProfiles:
    def test_rack_rollup(self, placement):
        p = profiles_for(placement, [
            [0.8, 0, 0, 0],
            [0.4, 0, 0, 0],
            [0.6, 0, 0, 0],
        ])
        rp = rack_profiles(placement, p)
        # rack 0 holds vm0 (cap 10) and vm1 (cap 30)
        assert rp[0, 0] == pytest.approx((10 * 0.8 + 30 * 0.4) / 40)
        assert rp[1, 0] == pytest.approx(0.6)

    def test_uplink_traffic(self, placement):
        p = np.zeros((3, NUM_RESOURCES))
        p[:, int(ResourceKind.TRF)] = [0.5, 0.5, 1.0]
        t = rack_uplink_traffic(placement, p)
        assert t[0] == pytest.approx(10 * 0.5 + 30 * 0.5)
        assert t[1] == pytest.approx(20 * 1.0)


class TestHottestResource:
    def test_argmax(self):
        assert hottest_resource(np.array([0.1, 0.9, 0.3, 0.2])) is ResourceKind.MEM

    def test_tie_lowest_index(self):
        assert hottest_resource(np.array([0.5, 0.5, 0.5, 0.5])) is ResourceKind.CPU

    def test_shape_validation(self):
        with pytest.raises(ConfigurationError):
            hottest_resource(np.zeros(3))
