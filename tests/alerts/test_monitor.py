"""VM monitor tests: the pre-alert must fire before the overload lands."""

import numpy as np
import pytest

from repro.alerts.monitor import VMMonitor, default_model_pool, light_model_pool
from repro.alerts.threshold import AlertConfig
from repro.cluster.resources import NUM_RESOURCES, ResourceKind
from repro.errors import ConfigurationError
from repro.traces.workload import WorkloadStream


def drive(monitor, stream, start, end):
    """Feed rounds [start, end) returning the first alerting round (or None)."""
    first = None
    for t in range(start, end):
        a = monitor.alert_value()
        if a > 0 and first is None:
            first = t
        monitor.observe(stream.at(t))
    return first


class TestConstruction:
    def test_rejects_bad_history(self):
        cfg = AlertConfig()
        with pytest.raises(ConfigurationError):
            VMMonitor(np.ones((5, NUM_RESOURCES)), cfg)  # too short
        with pytest.raises(ConfigurationError):
            VMMonitor(np.ones((50, 2)), cfg)  # wrong width


class TestPreAlert:
    def test_quiet_stream_never_alerts(self):
        ws = WorkloadStream.generate(120, base_level=0.3, seed=0, burst_rate=0.0)
        mon = VMMonitor(ws.history(59, 60), AlertConfig(threshold=0.9))
        assert drive(mon, ws, 60, 110) is None

    def test_ramp_triggers_alert_before_peak(self):
        """An injected overload ramp must be predicted before saturation."""
        ramp_start, ramp_len = 80, 12
        ws = WorkloadStream.generate(
            140,
            base_level=0.35,
            wander_sigma=0.01,
            burst_rate=0.0,
            ramps=[(int(ResourceKind.CPU), ramp_start, ramp_len, 0.6)],
            seed=1,
        )
        mon = VMMonitor(ws.history(59, 60), AlertConfig(threshold=0.85))
        first = drive(mon, ws, 60, 130)
        assert first is not None
        # saturation is when the observed CPU itself crosses the threshold
        crossed = np.nonzero(ws.profile[:, 0] > 0.85)[0]
        assert crossed.size
        assert first <= crossed[0] + 1  # alert no later than one round after

    def test_alert_value_uses_max_component(self):
        ws = WorkloadStream.generate(
            100,
            base_level=0.2,
            wander_sigma=0.0,
            burst_rate=0.0,
            ramps=[(int(ResourceKind.TRF), 0, 1, 0.79)],
            seed=2,
        )
        mon = VMMonitor(ws.history(59, 60), AlertConfig(threshold=0.5))
        a = mon.alert_value()
        assert a > 0.5  # TRF component dominates

    def test_predicted_profile_shape(self):
        ws = WorkloadStream.generate(80, seed=3)
        mon = VMMonitor(ws.history(59, 60), AlertConfig())
        p = mon.predicted_profile()
        assert p.shape == (NUM_RESOURCES,)
        assert ((p >= 0) & (p <= 1)).all()


class TestPools:
    def test_default_pool_composition(self):
        pool = default_model_pool()
        assert len(pool) == 4  # two ARIMA + two NARNET, as the paper's example
        names = "".join(pool)
        assert "arima" in names and "narnet" in names

    def test_light_pool_cheap_members(self):
        pool = light_model_pool()
        for factory in pool.values():
            factory()  # constructible

    def test_monitor_with_default_pool(self):
        ws = WorkloadStream.generate(120, seed=4)
        mon = VMMonitor(
            ws.history(99, 100),
            AlertConfig(),
            pool_factory=default_model_pool,
            refit_every=1000,
        )
        assert mon.predicted_profile().shape == (NUM_RESOURCES,)
