"""Alert value and message tests (Sec. IV-C)."""

import numpy as np
import pytest

from repro.alerts.alert import Alert, AlertKind, compute_alert
from repro.alerts.threshold import AlertConfig
from repro.errors import ConfigurationError


class TestComputeAlert:
    def test_below_threshold_is_zero(self):
        assert compute_alert(np.array([0.5, 0.6, 0.7, 0.8]), 0.9) == 0.0

    def test_above_threshold_returns_max(self):
        assert compute_alert(np.array([0.5, 0.95, 0.7, 0.8]), 0.9) == 0.95

    def test_strict_inequality(self):
        assert compute_alert(np.array([0.9, 0.0, 0.0, 0.0]), 0.9) == 0.0

    def test_overshoot_clipped(self):
        assert compute_alert(np.array([1.4, 0.0, 0.0, 0.0]), 0.9) == 1.0

    def test_negative_prediction_clipped(self):
        assert compute_alert(np.array([-0.5, 0.2, 0.2, 0.2]), 0.1) == 0.2

    def test_empty_profile_raises(self):
        with pytest.raises(ConfigurationError):
            compute_alert(np.array([]), 0.9)

    def test_bad_threshold_raises(self):
        with pytest.raises(ConfigurationError):
            compute_alert(np.array([0.5]), 0.0)
        with pytest.raises(ConfigurationError):
            compute_alert(np.array([0.5]), 1.5)


class TestAlertRecord:
    def test_server_alert_requires_host(self):
        with pytest.raises(ConfigurationError):
            Alert(kind=AlertKind.SERVER, rack=0, magnitude=0.95)

    def test_switch_alert_requires_switch(self):
        with pytest.raises(ConfigurationError):
            Alert(kind=AlertKind.OUTER_SWITCH, rack=0, magnitude=0.95)

    def test_zero_magnitude_rejected(self):
        with pytest.raises(ConfigurationError):
            Alert(kind=AlertKind.LOCAL_TOR, rack=0, magnitude=0.0)

    def test_valid_records(self):
        Alert(kind=AlertKind.SERVER, rack=1, magnitude=0.92, host=3)
        Alert(kind=AlertKind.OUTER_SWITCH, rack=1, magnitude=0.92, switch=9)
        Alert(kind=AlertKind.LOCAL_TOR, rack=1, magnitude=0.92)


class TestAlertConfig:
    def test_defaults_match_paper(self):
        cfg = AlertConfig()
        assert cfg.threshold == 0.9

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            AlertConfig(threshold=0.0)
        with pytest.raises(ConfigurationError):
            AlertConfig(horizon=0)
        with pytest.raises(ConfigurationError):
            AlertConfig(collection_period=-1)
        with pytest.raises(ConfigurationError):
            AlertConfig(queue_threshold=2.0)
