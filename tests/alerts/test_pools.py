"""Model pool composition tests."""

import numpy as np

from repro.alerts.monitor import (
    default_model_pool,
    light_model_pool,
    seasonal_model_pool,
)
from repro.traces import weekly_traffic_trace


class TestSeasonalPool:
    def test_members_constructible_and_fittable(self):
        pool = seasonal_model_pool(period=144)
        y = weekly_traffic_trace(seed=1)[:500]
        for name, factory in pool.items():
            m = factory()
            m.fit(y)
            assert np.isfinite(m.forecast(3)).all(), name

    def test_contains_seasonal_member(self):
        pool = seasonal_model_pool(period=96)
        assert any("sarima" in name for name in pool)

    def test_pools_are_fresh_each_call(self):
        a = light_model_pool()
        b = light_model_pool()
        assert a is not b
        assert a["naive"]() is not b["naive"]()
