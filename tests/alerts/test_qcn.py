"""QCN queue model and ToR uplink monitor tests."""

import numpy as np
import pytest

from repro.alerts.qcn import SwitchQueue, ToRUplinkMonitor
from repro.errors import ConfigurationError


class TestSwitchQueue:
    def test_drains_when_underloaded(self):
        q = SwitchQueue(service_rate=10.0, buffer_size=100.0)
        q.step(50.0)
        occ = q.occupancy
        q.step(0.0)
        assert q.occupancy < occ

    def test_builds_when_overloaded(self):
        q = SwitchQueue(service_rate=10.0, buffer_size=100.0)
        for _ in range(5):
            q.step(20.0)
        assert q.occupancy == pytest.approx(50.0)

    def test_saturates_at_buffer(self):
        q = SwitchQueue(service_rate=1.0, buffer_size=10.0)
        for _ in range(100):
            q.step(5.0)
        assert q.occupancy == 10.0
        assert q.normalized == 1.0

    def test_never_negative(self):
        q = SwitchQueue(service_rate=10.0, buffer_size=100.0)
        q.step(0.0)
        assert q.occupancy == 0.0

    def test_feedback_sign(self):
        q = SwitchQueue(service_rate=1.0, buffer_size=100.0, equilibrium=0.5)
        # empty queue: positive feedback (no congestion)
        q.step(0.0)
        assert q.feedback() > 0
        assert not q.congested
        # drive far above equilibrium
        for _ in range(30):
            q.step(5.0)
        assert q.feedback() < 0
        assert q.congested

    def test_growth_term_anticipates(self):
        # below equilibrium but growing fast -> w-term can flip the sign
        q = SwitchQueue(service_rate=1.0, buffer_size=100.0, equilibrium=0.5, w=5.0)
        q.step(40.0)  # jump from 0 to 39
        assert q.feedback() < 0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SwitchQueue(service_rate=0, buffer_size=10)
        with pytest.raises(ConfigurationError):
            SwitchQueue(service_rate=1, buffer_size=0)
        with pytest.raises(ConfigurationError):
            SwitchQueue(service_rate=1, buffer_size=10, equilibrium=1.5)
        q = SwitchQueue(service_rate=1, buffer_size=10)
        with pytest.raises(ConfigurationError):
            q.step(-1.0)


class TestToRUplinkMonitor:
    def test_warms_up_with_last_value(self):
        q = SwitchQueue(service_rate=10.0, buffer_size=100.0)
        mon = ToRUplinkMonitor(q, threshold=0.8)
        mon.record(5.0)
        assert mon.predicted_occupancy() == q.normalized

    def test_predicts_rising_queue(self):
        q = SwitchQueue(service_rate=5.0, buffer_size=100.0)
        mon = ToRUplinkMonitor(q, threshold=0.5, min_history=16)
        # steady overload: queue rises ~3 units/round
        for _ in range(30):
            mon.record(8.0)
        pred = mon.predicted_occupancy()
        assert pred >= q.normalized - 0.02  # anticipates continued growth

    def test_alert_fires_above_threshold(self):
        q = SwitchQueue(service_rate=1.0, buffer_size=50.0)
        mon = ToRUplinkMonitor(q, threshold=0.6, min_history=10)
        fired = False
        for _ in range(60):
            mon.record(3.0)
            if mon.alert_value() > 0:
                fired = True
                break
        assert fired

    def test_quiet_uplink_never_alerts(self):
        q = SwitchQueue(service_rate=10.0, buffer_size=100.0)
        mon = ToRUplinkMonitor(q, threshold=0.8, min_history=10)
        for _ in range(40):
            mon.record(2.0)
            assert mon.alert_value() == 0.0

    def test_validation(self):
        q = SwitchQueue(service_rate=1.0, buffer_size=10.0)
        with pytest.raises(ConfigurationError):
            ToRUplinkMonitor(q, threshold=0.0)
        with pytest.raises(ConfigurationError):
            ToRUplinkMonitor(q, threshold=0.5, min_history=2)
