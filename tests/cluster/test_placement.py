"""Placement accounting and migration invariants."""

import numpy as np
import pytest

from repro.cluster.host import Host
from repro.cluster.placement import Placement
from repro.cluster.vm import VM
from repro.errors import CapacityError, ConfigurationError, PlacementError


def make_placement():
    vms = [
        VM(0, 10, 1.0),
        VM(1, 20, 2.0),
        VM(2, 30, 3.0),
        VM(3, 5, 4.0, delay_sensitive=True),
    ]
    hosts = [Host(0, 0, 50), Host(1, 0, 50), Host(2, 1, 50)]
    return Placement(vms, hosts, [0, 0, 1, 2])


class TestConstruction:
    def test_accounting(self):
        pl = make_placement()
        np.testing.assert_array_equal(pl.host_used, [30, 30, 5])
        pl.check_invariants()

    def test_rejects_overfull_initial(self):
        vms = [VM(0, 60, 1.0)]
        hosts = [Host(0, 0, 50)]
        with pytest.raises(CapacityError):
            Placement(vms, hosts, [0])

    def test_rejects_misnumbered_vms(self):
        with pytest.raises(PlacementError):
            Placement([VM(5, 1, 1.0)], [Host(0, 0, 10)], [0])

    def test_rejects_bad_host_ids(self):
        with pytest.raises(PlacementError):
            Placement([VM(0, 1, 1.0)], [Host(0, 0, 10)], [3])

    def test_rejects_wrong_vm_host_shape(self):
        with pytest.raises(PlacementError):
            Placement([VM(0, 1, 1.0)], [Host(0, 0, 10)], [0, 0])


class TestQueries:
    def test_vms_on_host(self):
        pl = make_placement()
        np.testing.assert_array_equal(pl.vms_on_host(0), [0, 1])
        np.testing.assert_array_equal(pl.vms_on_host(2), [3])

    def test_vms_in_rack(self):
        pl = make_placement()
        np.testing.assert_array_equal(pl.vms_in_rack(0), [0, 1, 2])
        np.testing.assert_array_equal(pl.vms_in_rack(1), [3])

    def test_rack_of(self):
        pl = make_placement()
        assert pl.rack_of(3) == 1
        assert pl.rack_of(0) == 0

    def test_free_capacity(self):
        pl = make_placement()
        assert pl.free_capacity(0) == 20
        assert pl.free_capacity(2) == 45

    def test_load_fraction(self):
        pl = make_placement()
        np.testing.assert_allclose(pl.host_load_fraction(), [0.6, 0.6, 0.1])

    def test_rack_used(self):
        pl = make_placement()
        np.testing.assert_array_equal(pl.rack_used(), [60, 5])


class TestMigrate:
    def test_successful_move(self):
        pl = make_placement()
        pl.migrate(0, 2)
        assert pl.host_of(0) == 2
        np.testing.assert_array_equal(pl.host_used, [20, 30, 15])
        pl.check_invariants()
        assert pl.migrations_performed == 1

    def test_capacity_enforced(self):
        pl = make_placement()
        pl.migrate(2, 2)  # vm2 needs 30; host2 now used=35, free=15
        with pytest.raises(CapacityError):
            pl.migrate(1, 2)  # vm1 needs 20 > 15

    def test_noop_move_rejected(self):
        pl = make_placement()
        with pytest.raises(PlacementError):
            pl.migrate(0, 0)

    def test_unknown_ids_rejected(self):
        pl = make_placement()
        with pytest.raises(PlacementError):
            pl.migrate(99, 0)
        with pytest.raises(PlacementError):
            pl.migrate(0, 99)

    def test_clone_is_independent(self):
        pl = make_placement()
        cl = pl.clone()
        cl.migrate(0, 2)
        assert pl.host_of(0) == 0
        assert cl.host_of(0) == 2
        pl.check_invariants()
        cl.check_invariants()

    def test_drift_detection(self):
        pl = make_placement()
        pl.host_used[0] += 1  # corrupt
        with pytest.raises(PlacementError):
            pl.check_invariants()


class TestVMHostRecords:
    def test_vm_validation(self):
        with pytest.raises(ConfigurationError):
            VM(0, 0, 1.0)
        with pytest.raises(ConfigurationError):
            VM(0, 5, -1.0)
        with pytest.raises(ConfigurationError):
            VM(-1, 5, 1.0)

    def test_host_validation(self):
        with pytest.raises(ConfigurationError):
            Host(0, 0, 0)
        with pytest.raises(ConfigurationError):
            Host(-1, 0, 10)
        with pytest.raises(ConfigurationError):
            Host(0, -2, 10)
