"""Cluster factory tests."""

import numpy as np
import pytest

from repro.cluster import build_cluster
from repro.errors import ConfigurationError
from repro.topology import build_bcube, build_fattree


class TestBuildCluster:
    def test_counts(self, fattree4):
        c = build_cluster(fattree4, hosts_per_rack=3, seed=0)
        assert c.num_racks == fattree4.num_racks
        assert c.num_hosts == 3 * fattree4.num_racks
        assert c.num_vms > 0
        c.placement.check_invariants()

    def test_fill_fraction_respected(self, fattree4):
        c = build_cluster(fattree4, fill_fraction=0.5, skew=0.0, seed=1)
        mean_fill = c.placement.host_load_fraction().mean()
        assert 0.4 <= mean_fill <= 0.6

    def test_skew_raises_stddev(self, fattree4):
        flat = build_cluster(fattree4, skew=0.0, seed=2)
        skewed = build_cluster(fattree4, skew=0.9, seed=2)
        assert skewed.workload_std() > flat.workload_std()

    def test_vm_capacity_bounded(self, fattree4):
        c = build_cluster(fattree4, vm_capacity_max=20, seed=3)
        assert int(c.placement.vm_capacity.max()) <= 20
        assert int(c.placement.vm_capacity.min()) >= 1

    def test_delay_sensitive_fraction(self, fattree4):
        c = build_cluster(fattree4, delay_sensitive_fraction=0.5, seed=4)
        frac = c.placement.vm_delay_sensitive.mean()
        assert 0.3 <= frac <= 0.7

    def test_deterministic_given_seed(self, fattree4):
        a = build_cluster(fattree4, seed=9)
        b = build_cluster(fattree4, seed=9)
        np.testing.assert_array_equal(a.placement.vm_host, b.placement.vm_host)
        np.testing.assert_array_equal(a.placement.vm_capacity, b.placement.vm_capacity)

    def test_works_on_bcube(self):
        c = build_cluster(build_bcube(4), seed=5)
        assert c.num_racks == 4
        c.placement.check_invariants()

    def test_rejects_bad_fill(self, fattree4):
        with pytest.raises(ConfigurationError):
            build_cluster(fattree4, fill_fraction=0.0)
        with pytest.raises(ConfigurationError):
            build_cluster(fattree4, fill_fraction=1.5)

    def test_rejects_vm_bigger_than_host(self, fattree4):
        with pytest.raises(ConfigurationError):
            build_cluster(fattree4, vm_capacity_max=200, host_capacity=100)

    def test_rejects_negative_skew(self, fattree4):
        with pytest.raises(ConfigurationError):
            build_cluster(fattree4, skew=-1.0)

    def test_workload_stats(self, small_cluster):
        assert small_cluster.workload_mean() > 0
        assert small_cluster.workload_std() >= 0
