"""Dependency graph tests: storage, projection, conflicts."""

import numpy as np
import pytest

from repro.cluster.dependency import DependencyGraph
from repro.cluster.host import Host
from repro.cluster.placement import Placement
from repro.cluster.vm import VM
from repro.errors import PlacementError


def make_placement():
    vms = [VM(i, 5, 1.0) for i in range(6)]
    hosts = [Host(0, 0, 100), Host(1, 1, 100), Host(2, 2, 100)]
    # two VMs per host; racks 0, 1, 2
    return Placement(vms, hosts, [0, 0, 1, 1, 2, 2])


class TestStorage:
    def test_add_and_query(self):
        g = DependencyGraph(4, [(0, 1), (2, 3)])
        assert g.are_dependent(0, 1)
        assert g.are_dependent(1, 0)
        assert not g.are_dependent(0, 2)
        assert g.num_pairs == 2

    def test_duplicate_pairs_idempotent(self):
        g = DependencyGraph(3)
        g.add_pair(0, 1)
        g.add_pair(1, 0)
        assert g.num_pairs == 1

    def test_self_dependency_rejected(self):
        g = DependencyGraph(3)
        with pytest.raises(PlacementError):
            g.add_pair(1, 1)

    def test_out_of_range_rejected(self):
        g = DependencyGraph(3)
        with pytest.raises(PlacementError):
            g.add_pair(0, 7)


class TestProjection:
    def test_rack_edges(self):
        pl = make_placement()
        g = DependencyGraph(6, [(0, 2), (1, 4), (2, 3)])
        edges = g.rack_edges(pl)
        # vm0(r0)-vm2(r1) -> (0,1); vm1(r0)-vm4(r2) -> (0,2);
        # vm2(r1)-vm3(r1) intra-rack -> none
        assert edges == {(0, 1), (0, 2)}

    def test_rack_neighbors_includes_self(self):
        pl = make_placement()
        g = DependencyGraph(6, [(0, 2)])
        assert g.rack_neighbors(pl, 0) == {0, 1}
        assert g.rack_neighbors(pl, 2) == {2}

    def test_projection_follows_migration(self):
        pl = make_placement()
        g = DependencyGraph(6, [(0, 2)])
        pl.migrate(2, 0)  # vm2 joins rack 0
        assert g.rack_edges(pl) == set()


class TestConflicts:
    def test_conflict_detected(self):
        pl = make_placement()
        g = DependencyGraph(6, [(0, 2)])
        # vm2 lives on host1; placing vm0 there would co-locate dependents
        assert g.conflicts_on_host(pl, 0, 1)
        assert not g.conflicts_on_host(pl, 0, 2)

    def test_no_conflict_without_dependency(self):
        pl = make_placement()
        g = DependencyGraph(6)
        assert not g.conflicts_on_host(pl, 0, 1)


class TestRandom:
    def test_mean_degree_approx(self):
        rng = np.random.default_rng(0)
        g = DependencyGraph.random(200, 2.0, rng)
        degree = 2 * g.num_pairs / 200
        assert 1.5 <= degree <= 2.0  # target is an upper bound (dedup skips)

    def test_zero_degree(self):
        rng = np.random.default_rng(0)
        g = DependencyGraph.random(50, 0.0, rng)
        assert g.num_pairs == 0

    def test_deterministic_with_seed(self):
        a = DependencyGraph.random(50, 1.5, np.random.default_rng(7))
        b = DependencyGraph.random(50, 1.5, np.random.default_rng(7))
        assert {frozenset((i, j)) for i in range(50) for j in a.neighbors(i)} == {
            frozenset((i, j)) for i in range(50) for j in b.neighbors(i)
        }
