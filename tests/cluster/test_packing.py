"""Bin-packing placement policy tests."""

import numpy as np
import pytest

from repro.cluster import build_cluster_packed, pack
from repro.cluster.packing import POLICIES
from repro.errors import CapacityError, ConfigurationError
from repro.topology import build_fattree


class TestPack:
    @pytest.mark.parametrize("policy", sorted(POLICIES))
    def test_capacity_respected(self, policy):
        rng = np.random.default_rng(0)
        sizes = rng.integers(1, 15, size=40)
        caps = np.full(10, 60)
        out = pack(sizes, caps, policy, seed=1)
        used = np.bincount(out, weights=sizes, minlength=10)
        assert (used <= caps).all()
        assert out.shape == (40,)

    def test_first_fit_front_loads(self):
        out = pack([10] * 6, [100, 100, 100], "first_fit")
        assert (out == 0).all()

    def test_worst_fit_spreads(self):
        out = pack([10] * 6, [100, 100, 100], "worst_fit")
        counts = np.bincount(out, minlength=3)
        assert counts.max() - counts.min() <= 1

    def test_round_robin_stripes(self):
        out = pack([10] * 6, [100, 100, 100], "round_robin")
        np.testing.assert_array_equal(out, [0, 1, 2, 0, 1, 2])

    def test_best_fit_tightest_gap(self):
        # host 1 has gap exactly 10: best fit chooses it over host 0
        out = pack([10], [100, 10], "best_fit")
        assert out[0] == 1

    def test_first_fit_decreasing_packs_better(self):
        # classic: sizes that FF fragments but FFD packs
        sizes = [6, 6, 6, 4, 4, 4]  # capacities 10 each
        caps = [10, 10, 10]
        ffd = pack(sizes, caps, "first_fit_decreasing")
        used = np.bincount(ffd, weights=np.asarray(sizes), minlength=3)
        assert (used == 10).all()  # perfect packing

    def test_infeasible_raises(self):
        with pytest.raises(CapacityError):
            pack([50], [10, 10], "first_fit")

    def test_unknown_policy(self):
        with pytest.raises(ConfigurationError):
            pack([1], [10], "definitely_not_a_policy")

    def test_random_fit_deterministic_with_seed(self):
        sizes = list(range(1, 15))
        a = pack(sizes, [40] * 5, "random_fit", seed=3)
        b = pack(sizes, [40] * 5, "random_fit", seed=3)
        np.testing.assert_array_equal(a, b)


class TestBuildClusterPacked:
    def test_policies_produce_different_balance(self):
        topo = build_fattree(4)
        consolidated = build_cluster_packed(topo, policy="first_fit", seed=5)
        balanced = build_cluster_packed(topo, policy="worst_fit", seed=5)
        assert consolidated.workload_std() > balanced.workload_std() * 1.5
        consolidated.placement.check_invariants()
        balanced.placement.check_invariants()

    def test_fill_target_met(self):
        topo = build_fattree(4)
        c = build_cluster_packed(topo, fill_fraction=0.6, seed=6)
        mean_fill = c.placement.host_load_fraction().mean()
        assert 0.5 <= mean_fill <= 0.7

    def test_validation(self):
        topo = build_fattree(4)
        with pytest.raises(ConfigurationError):
            build_cluster_packed(topo, fill_fraction=0.99)
