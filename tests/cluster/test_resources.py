"""Workload profile and normalization tests."""

import numpy as np
import pytest

from repro.cluster.resources import (
    NUM_RESOURCES,
    ResourceKind,
    WorkloadProfile,
    normalize_profile,
)
from repro.errors import ConfigurationError


class TestNormalize:
    def test_basic(self):
        raw = np.array([50.0, 8.0, 100.0, 500.0])
        maxima = [100.0, 16.0, 400.0, 1000.0]
        out = normalize_profile(raw, maxima)
        np.testing.assert_allclose(out, [0.5, 0.5, 0.25, 0.5])

    def test_clips_above_full_scale(self):
        out = normalize_profile(np.array([150.0, 0, 0, 0]), [100.0, 1, 1, 1])
        assert out[0] == 1.0

    def test_batched(self):
        raw = np.ones((5, 3, NUM_RESOURCES)) * 50
        out = normalize_profile(raw, [100.0] * NUM_RESOURCES)
        assert out.shape == raw.shape
        assert (out == 0.5).all()

    def test_rejects_wrong_width(self):
        with pytest.raises(ConfigurationError):
            normalize_profile(np.ones(3), [1.0] * NUM_RESOURCES)

    def test_rejects_zero_maxima(self):
        with pytest.raises(ConfigurationError):
            normalize_profile(np.ones(4), [1.0, 0.0, 1.0, 1.0])


class TestWorkloadProfile:
    def test_roundtrip(self):
        w = WorkloadProfile(0.1, 0.2, 0.3, 0.4)
        np.testing.assert_array_equal(w.as_array(), [0.1, 0.2, 0.3, 0.4])
        assert WorkloadProfile.from_array(w.as_array()) == w

    def test_max_component(self):
        assert WorkloadProfile(0.1, 0.9, 0.3, 0.4).max_component() == 0.9

    def test_exceeds_is_strict(self):
        w = WorkloadProfile(0.9, 0.1, 0.1, 0.1)
        assert not w.exceeds(0.9)
        assert w.exceeds(0.89)

    def test_rejects_out_of_range(self):
        with pytest.raises(ConfigurationError):
            WorkloadProfile(1.5, 0, 0, 0)
        with pytest.raises(ConfigurationError):
            WorkloadProfile(-0.1, 0, 0, 0)

    def test_rejects_wrong_length(self):
        with pytest.raises(ConfigurationError):
            WorkloadProfile.from_array([0.1, 0.2])

    def test_resource_kind_order_matches_names(self):
        assert ResourceKind.CPU == 0
        assert ResourceKind.TRF == NUM_RESOURCES - 1
