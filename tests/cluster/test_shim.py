"""Shim view / neighbor-rack tests."""

import numpy as np
import pytest

from repro.cluster import build_cluster
from repro.cluster.shim import ShimView, neighbor_racks
from repro.errors import TopologyError
from repro.topology import build_bcube, build_fattree


class TestNeighborRacks:
    def test_fattree_neighbors_are_pod(self):
        t = build_fattree(8)
        half = 4
        # rack 0's one-hop neighbors via its pod aggs = rest of pod 0
        assert neighbor_racks(t, 0) == frozenset(range(1, half))

    def test_bcube_two_level_all_neighbors(self):
        t = build_bcube(6)
        # complete bipartite: every rack is one switch away from every other
        assert neighbor_racks(t, 0) == frozenset(range(1, 6))

    def test_excludes_self(self):
        t = build_fattree(4)
        for r in range(t.num_racks):
            assert r not in neighbor_racks(t, r)

    def test_symmetry(self):
        t = build_fattree(8)
        for a in range(t.num_racks):
            for b in neighbor_racks(t, a):
                assert a in neighbor_racks(t, b)

    def test_out_of_range(self):
        t = build_fattree(4)
        with pytest.raises(TopologyError):
            neighbor_racks(t, 99)


class TestShimView:
    def test_region_contains_self(self, small_cluster):
        shim = ShimView(small_cluster, 0)
        assert 0 in shim.region
        assert shim.neighbors == shim.region - {0}

    def test_local_vms_match_placement(self, small_cluster):
        shim = ShimView(small_cluster, 2)
        np.testing.assert_array_equal(
            shim.local_vms(), small_cluster.placement.vms_in_rack(2)
        )

    def test_candidate_hosts_in_neighbor_racks(self, small_cluster):
        shim = ShimView(small_cluster, 0)
        pl = small_cluster.placement
        hosts = shim.candidate_hosts()
        assert hosts.size > 0
        for h in hosts:
            assert int(pl.host_rack[h]) in shim.neighbors

    def test_search_space_scales_with_candidates(self, small_cluster):
        shim = ShimView(small_cluster, 0)
        assert shim.search_space(4) == 2 * shim.search_space(2)
        assert shim.search_space(0) == 0
