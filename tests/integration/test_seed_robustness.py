"""Seed robustness: the reproduced shapes must not be one-seed artifacts.

Benchmarks pin seed 2015 for bit-reproducibility; these tests re-run the
headline claims over several other seeds at reduced scale and require the
*qualitative* result to hold for (almost) all of them.
"""

import numpy as np
import pytest

from repro.cluster import build_cluster
from repro.costs.model import CostModel
from repro.forecast import ARIMA, NARNET, mse
from repro.forecast.selection import rolling_one_step
from repro.sim import (
    SheriffSimulation,
    centralized_migration_round,
    inject_fraction_alerts,
    regional_migration_round,
)
from repro.topology import build_fattree
from repro.traces import nonlinear_trace

SEEDS = [1, 7, 42, 1234]


class TestBalancingRobustness:
    """Fig. 9's decline holds for every seed."""

    @pytest.mark.parametrize("seed", SEEDS)
    def test_std_declines(self, seed):
        cluster = build_cluster(
            build_fattree(4),
            hosts_per_rack=3,
            skew=1.0,
            fill_fraction=0.5,
            seed=seed,
            delay_sensitive_fraction=0.0,
        )
        sim = SheriffSimulation(cluster)
        for r in range(12):
            alerts, vma = inject_fraction_alerts(cluster, 0.05, time=r, seed=seed + r)
            sim.run_round(alerts, vma)
        series = sim.workload_std_series()
        assert series[-1] < 0.75 * series[0]
        cluster.placement.check_invariants()


class TestCostShapeRobustness:
    """Figs. 11/12's shape holds for every seed."""

    @pytest.mark.parametrize("seed", SEEDS)
    def test_regional_close_and_smaller_space(self, seed):
        cluster = build_cluster(
            build_fattree(8),
            hosts_per_rack=2,
            fill_fraction=0.5,
            skew=0.5,
            seed=seed,
            delay_sensitive_fraction=0.0,
        )
        cm = CostModel(cluster)
        _, vma = inject_fraction_alerts(cluster, 0.05, seed=seed)
        cands = sorted(vma)
        reg = regional_migration_round(cluster, cm, cands)
        cen = centralized_migration_round(cluster, cm, cands)
        assert reg.search_space * 3 < cen.search_space
        if reg.moves and cen.moves:
            reg_per = reg.total_cost / len(reg.moves)
            cen_per = cen.total_cost / len(cen.moves)
            assert reg_per <= 2.0 * cen_per


class TestForecastRobustness:
    """Fig. 7's NARNET > ARIMA ordering holds for most seeds."""

    def test_narnet_wins_majority_on_chaos(self):
        wins = 0
        for seed in SEEDS:
            y = nonlinear_trace(700, seed=seed)
            train = 500
            nar = rolling_one_step(
                lambda: NARNET(ni=8, nh=16, restarts=1, seed=seed, maxiter=200),
                y,
                train,
                refit_every=120,
            )
            ar = rolling_one_step(lambda: ARIMA(2, 0, 1), y, train, refit_every=120)
            actual = y[train:]
            if mse(actual, nar) < mse(actual, ar):
                wins += 1
        assert wins >= len(SEEDS) - 1  # at most one adversarial seed
