"""Every shipped example must run clean end to end."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted((Path(__file__).parents[2] / "examples").glob("*.py"))


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(script):
    proc = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert proc.returncode == 0, (
        f"{script.name} failed\n--- stdout ---\n{proc.stdout[-2000:]}"
        f"\n--- stderr ---\n{proc.stderr[-2000:]}"
    )
    assert proc.stdout.strip(), f"{script.name} printed nothing"


def test_examples_exist():
    names = {p.name for p in EXAMPLES}
    assert "quickstart.py" in names
    assert len(names) >= 3  # the deliverable floor; we ship more
