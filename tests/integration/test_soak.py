"""Soak test: long mixed-scenario runs must stay consistent.

200 rounds of alternating regimes — balancing alerts, quiet stretches,
congestion events, a switch failure and recovery, timed migrations —
with placement invariants re-derived throughout and bounded-state checks
at the end (no leak of reservations, holds, or cooldown entries).
"""

import numpy as np
import pytest

from repro.cluster import build_cluster
from repro.migration.reroute import FlowTable
from repro.sim import (
    FailureInjector,
    MigrationTiming,
    SheriffSimulation,
    congestion_alerts,
    inject_fraction_alerts,
)
from repro.topology import build_fattree
from repro.topology.base import NodeKind

SEED = 777
ROUNDS = 200


@pytest.mark.slow
def test_soak_mixed_regimes():
    cluster = build_cluster(
        build_fattree(4),
        hosts_per_rack=3,
        fill_fraction=0.5,
        skew=0.9,
        seed=SEED,
        dependency_degree=1.5,
        delay_sensitive_fraction=0.1,
    )
    flows = FlowTable(cluster.topology, ecmp=True)
    pl = cluster.placement
    racks = pl.host_rack[pl.vm_host]
    for vm in range(cluster.num_vms):
        for other in sorted(cluster.dependencies.neighbors(vm)):
            if other > vm and racks[vm] != racks[other]:
                flows.add_flow(vm, int(racks[vm]), int(racks[other]), 0.2)

    sim = SheriffSimulation(
        cluster,
        migration_timing=MigrationTiming(round_seconds=30.0),
    )
    for mgr in sim.managers.values():
        mgr.flow_table = flows

    injector = FailureInjector(cluster, flow_table=flows)
    aggs = cluster.topology.nodes_of_kind(NodeKind.AGG)
    failed_switch = None
    rng = np.random.default_rng(SEED)

    for r in range(ROUNDS):
        regime = r % 20
        if regime < 8:  # balancing pressure
            alerts, vma = inject_fraction_alerts(
                cluster, 0.05, time=r, seed=SEED + r
            )
        elif regime < 12:  # quiet
            alerts, vma = [], {}
        else:  # congestion pressure
            alerts, vma = congestion_alerts(
                cluster, flows, utilization_threshold=0.5, time=r
            )
        if r == 77:
            failed_switch = int(aggs[0])
            injector.fail(failed_switch)
        if r == 133 and failed_switch is not None:
            injector.recover(failed_switch)
            failed_switch = None
        sim.run_round(alerts, vma)
        if r % 25 == 0:
            cluster.placement.check_invariants()

    # drain in-flight migrations
    for _ in range(30):
        sim.run_round([], {})
        if not sim.inflight.vms_in_flight:
            break
    cluster.placement.check_invariants()
    assert not sim.inflight.vms_in_flight
    assert sim.receivers.pending == 0
    # no residual capacity holds
    for h in range(cluster.num_hosts):
        assert sim.inflight.hold_on(h) == 0
    # flow accounting still conserved
    expected = sum(f.rate * len(f.path) for f in flows.flows.values())
    assert flows.node_load.sum() == pytest.approx(expected, rel=1e-9)
    # the long run achieved (and held) a better balance than the start
    series = sim.workload_std_series()
    assert series[-1] < series[0]
    assert len(sim.history) == ROUNDS + min(30, len(sim.history) - ROUNDS)
