"""End-to-end integration tests: the full Sheriff pipeline."""

import numpy as np
import pytest

from repro.alerts.monitor import VMMonitor
from repro.alerts.threshold import AlertConfig
from repro.cluster import build_cluster
from repro.cluster.resources import ResourceKind
from repro.costs.model import CostModel
from repro.sim import (
    SheriffSimulation,
    centralized_migration_round,
    forecast_alert_round,
    inject_fraction_alerts,
    regional_migration_round,
)
from repro.sim.reactive import DemandDrivenWorkload, ReactiveManager
from repro.topology import build_bcube, build_fattree
from repro.traces.workload import WorkloadStream


class TestFullBalancingRun:
    """Figs. 9/10 in miniature: std-dev falls over 24 rounds."""

    @pytest.mark.parametrize("make_topo", [lambda: build_fattree(8), lambda: build_bcube(8)])
    def test_workload_balancing(self, make_topo):
        cluster = build_cluster(
            make_topo(),
            hosts_per_rack=4,
            skew=0.8,
            fill_fraction=0.55,
            seed=7,
            delay_sensitive_fraction=0.0,
        )
        sim = SheriffSimulation(cluster)
        for r in range(24):
            alerts, vma = inject_fraction_alerts(cluster, 0.05, time=r, seed=100 + r)
            sim.run_round(alerts, vma)
        series = sim.workload_std_series()
        assert series[-1] < 0.66 * series[0]
        cluster.placement.check_invariants()


class TestRegionalVsCentralizedShape:
    """Figs. 11/12 in miniature: comparable cost, far smaller search space."""

    def test_shape_holds_across_sizes(self):
        costs = []
        for k in (8, 16):
            cluster = build_cluster(
                build_fattree(k),
                hosts_per_rack=2,
                fill_fraction=0.5,
                skew=0.5,
                seed=7,
                delay_sensitive_fraction=0.0,
            )
            cm = CostModel(cluster)
            _, vma = inject_fraction_alerts(cluster, 0.05, seed=5)
            cands = sorted(vma)
            reg = regional_migration_round(cluster, cm, cands)
            cen = centralized_migration_round(cluster, cm, cands)
            assert reg.search_space * 5 < cen.search_space
            # per-placed-VM cost within 2x of the optimal manager
            if reg.moves and cen.moves:
                reg_per = reg.total_cost / len(reg.moves)
                cen_per = cen.total_cost / len(cen.moves)
                assert reg_per <= 2.0 * cen_per
            costs.append((reg.total_cost, cen.total_cost))
        # both costs grow with the fabric
        assert costs[1][0] > costs[0][0]
        assert costs[1][1] > costs[0][1]


class TestPreAlertBeatsReactive:
    """The paper's core claim: predicting avoids overload-rounds."""

    def test_prealert_reduces_overload_exposure(self):
        cluster_a = build_cluster(
            build_fattree(4),
            hosts_per_rack=2,
            fill_fraction=0.45,
            seed=3,
            dependency_degree=0.0,
            delay_sensitive_fraction=0.0,
        )
        threshold = 0.75
        horizon = 110
        warm = 60

        def make_streams(cluster, seed0):
            streams = {}
            rng = np.random.default_rng(seed0)
            pl = cluster.placement
            for vm in range(cluster.num_vms):
                ramps = []
                if rng.random() < 0.25:
                    start = int(rng.integers(warm + 5, 95))
                    ramps = [(int(ResourceKind.CPU), start, 8, 0.7)]
                streams[vm] = WorkloadStream.generate(
                    horizon,
                    base_level=0.4,
                    burst_rate=0.0,
                    wander_sigma=0.01,
                    ramps=ramps,
                    seed=int(rng.integers(0, 2**31)),
                )
            return streams

        def overload_rounds(cluster, workload, policy):
            sim = SheriffSimulation(cluster)
            cfg = AlertConfig(threshold=threshold)
            monitors = None
            if policy == "prealert":
                monitors = {
                    vm: VMMonitor(workload.streams[vm].history(warm - 1, warm), cfg)
                    for vm in range(cluster.num_vms)
                }
            reactive = ReactiveManager(workload, threshold=threshold)
            total = 0
            for t in range(warm, horizon):
                total += int(workload.overloaded_hosts(t, threshold).size)
                if policy == "prealert":
                    alerts, vma = forecast_alert_round(cluster, monitors, time=t)
                else:
                    alerts, vma = reactive.alerts_at(t)
                sim.run_round(alerts, vma)
                if monitors is not None:
                    for vm, mon in monitors.items():
                        mon.observe(workload.streams[vm].at(t))
            return total

        # identical initial conditions for both policies
        import copy

        cluster_b = build_cluster(
            build_fattree(4),
            hosts_per_rack=2,
            fill_fraction=0.45,
            seed=3,
            dependency_degree=0.0,
            delay_sensitive_fraction=0.0,
        )
        wl_a = DemandDrivenWorkload(cluster_a, make_streams(cluster_a, 11))
        wl_b = DemandDrivenWorkload(cluster_b, make_streams(cluster_b, 11))
        pre = overload_rounds(cluster_a, wl_a, "prealert")
        rea = overload_rounds(cluster_b, wl_b, "reactive")
        # pre-alert should not be worse; typically strictly better
        assert pre <= rea


class TestPublicAPI:
    def test_quickstart_docstring_flow(self):
        """The README / __init__ quickstart must actually run."""
        from repro.topology import build_fattree
        from repro.cluster import build_cluster
        from repro.sim import SheriffSimulation, inject_fraction_alerts

        cluster = build_cluster(build_fattree(8), seed=1, skew=0.8)
        sim = SheriffSimulation(cluster)
        alerts, magnitudes = inject_fraction_alerts(cluster, 0.05, seed=2)
        summary = sim.run_round(alerts, magnitudes)
        assert summary.migrations >= 0
        assert np.isfinite(summary.total_cost)
