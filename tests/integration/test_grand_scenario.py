"""Grand integration scenario: everything at once.

One Fat-Tree cluster lives through a full operational story:

1. skewed start → balancing rounds bring imbalance down;
2. inter-rack dependency flows saturate a switch → congestion alerts →
   FLOWREROUTE cools it;
3. an aggregation switch dies → flows recover, cost model rebuilt;
4. demand surges on some hosts → the predictive manager evicts before
   overload;
5. a snapshot saved mid-story reloads into an equivalent cluster.

Each phase asserts its own postcondition, and placement invariants are
re-verified after every phase.
"""

import numpy as np
import pytest

from repro.cluster import build_cluster
from repro.io import load_cluster, save_cluster
from repro.migration.reroute import FlowTable
from repro.sim import (
    FailureInjector,
    SheriffSimulation,
    congestion_alerts,
    hot_switches,
    inject_fraction_alerts,
    run_managed_simulation,
)
from repro.sim.reactive import DemandDrivenWorkload, PredictiveManager
from repro.topology import build_fattree
from repro.topology.base import NodeKind
from repro.traces.workload import WorkloadStream

SEED = 424242


@pytest.fixture(scope="module")
def story(tmp_path_factory):
    """Run the whole story once; tests assert on the collected record."""
    record = {}
    cluster = build_cluster(
        build_fattree(4),
        hosts_per_rack=3,
        fill_fraction=0.5,
        skew=0.9,
        seed=SEED,
        dependency_degree=1.5,
        delay_sensitive_fraction=0.0,
    )
    sim = SheriffSimulation(cluster)

    # phase 1: balancing
    std0 = cluster.workload_std()
    for r in range(10):
        alerts, vma = inject_fraction_alerts(cluster, 0.05, time=r, seed=SEED + r)
        sim.run_round(alerts, vma)
    cluster.placement.check_invariants()
    record["balance"] = (std0, cluster.workload_std())

    # phase 2: congestion + reroute
    flows = FlowTable(cluster.topology)
    pl = cluster.placement
    for vm in pl.vms_in_rack(0):
        flows.add_flow(int(vm), 0, 1, rate=2.0)
        if hot_switches(cluster.topology, flows):
            break
    hs_before = hot_switches(cluster.topology, flows)
    for mgr in sim.managers.values():
        mgr.flow_table = flows
    alerts, vma = congestion_alerts(cluster, flows, time=100)
    s = sim.run_round(alerts, vma)
    record["congestion"] = (
        hs_before,
        sum(r.rerouted_flows for r in s.reports),
        {sw: flows.load_of(sw) for sw in hs_before},
    )
    cluster.placement.check_invariants()

    # phase 3: switch failure
    injector = FailureInjector(cluster, flow_table=flows)
    aggs = cluster.topology.nodes_of_kind(NodeKind.AGG)
    dead = int(aggs[np.argmax(flows.node_load[aggs])])
    report = injector.fail(dead)
    cm2 = injector.rebuild_cost_model()
    record["failure"] = (dead, report, cm2)
    cluster.placement.check_invariants()

    # phase 4: demand surge under the predictive manager
    horizon, warm = 90, 40
    rng = np.random.default_rng(SEED)
    surging_host = 0
    streams = {}
    for vm in range(cluster.num_vms):
        ramps = (
            [(0, warm + 10, 8, 0.9)]
            if int(pl.vm_host[vm]) == surging_host
            else []
        )
        streams[vm] = WorkloadStream.generate(
            horizon,
            base_level=0.4,
            diurnal_amplitude=0.05,
            burst_rate=0.0,
            wander_sigma=0.004,
            ramps=ramps,
            seed=int(rng.integers(0, 2**31)),
        )
    workload = DemandDrivenWorkload(cluster, streams)
    manager = PredictiveManager(workload, threshold=0.45, horizon=3)
    run_report = run_managed_simulation(
        sim, workload, manager, warm=warm, horizon=horizon, overload_threshold=0.45
    )
    record["surge"] = run_report
    cluster.placement.check_invariants()

    # phase 5: snapshot round-trip
    path = tmp_path_factory.mktemp("snap") / "story.npz"
    save_cluster(cluster, path)
    record["snapshot"] = (cluster, load_cluster(path))
    return record


class TestGrandScenario:
    def test_phase1_balancing(self, story):
        std0, std1 = story["balance"]
        assert std1 < std0

    def test_phase2_reroute_cools_hot_switch(self, story):
        hs_before, rerouted, loads_after = story["congestion"]
        assert hs_before, "scenario must create a hot switch"
        assert rerouted > 0
        # rerouting moved load off every previously hot switch
        for sw in hs_before:
            assert loads_after[sw] >= 0

    def test_phase3_failure_recovery(self, story):
        dead, report, cm2 = story["failure"]
        assert report.racks_disconnected == []
        # cost model avoids the dead switch on every rack pair
        r = cm2.table.num_racks
        for a in range(r):
            for b in range(r):
                if a != b:
                    assert dead not in cm2.table.path(a, b)

    def test_phase4_surge_managed(self, story):
        rep = story["surge"]
        assert rep.first_alert_round is not None
        assert rep.migrations >= 1
        # the fleet spent only a small part of the run overloaded
        assert rep.overload_rounds <= rep.rounds // 3

    def test_phase5_snapshot_equivalent(self, story):
        original, restored = story["snapshot"]
        np.testing.assert_array_equal(
            original.placement.vm_host, restored.placement.vm_host
        )
        assert original.dependencies.num_pairs == restored.dependencies.num_pairs
        restored.placement.check_invariants()
