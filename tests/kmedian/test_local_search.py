"""k-median instance, local search, exact and greedy tests."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.kmedian import (
    KMedianInstance,
    exact_kmedian,
    greedy_kmedian,
    local_search,
)


class TestInstance:
    def test_cost_of_solution(self):
        d = np.array([[1.0, 5.0], [4.0, 2.0]])
        inst = KMedianInstance(d, k=1)
        assert inst.cost([0]) == 5.0
        assert inst.cost([1]) == 7.0

    def test_weighted_cost(self):
        d = np.array([[1.0, 5.0], [4.0, 2.0]])
        inst = KMedianInstance(d, k=1, weights=np.array([2.0, 1.0]))
        assert inst.cost([0]) == 2 * 1 + 4

    def test_assignment(self):
        d = np.array([[1.0, 5.0], [4.0, 2.0]])
        inst = KMedianInstance(d, k=2)
        np.testing.assert_array_equal(inst.assignment([0, 1]), [0, 1])

    def test_solution_validation(self):
        inst = KMedianInstance(np.ones((2, 3)), k=2)
        with pytest.raises(ConfigurationError):
            inst.cost([0])  # wrong size
        with pytest.raises(ConfigurationError):
            inst.cost([0, 9])  # out of range

    def test_input_validation(self):
        with pytest.raises(ConfigurationError):
            KMedianInstance(np.ones((2, 2)) * -1, k=1)
        with pytest.raises(ConfigurationError):
            KMedianInstance(np.ones((2, 2)), k=3)
        with pytest.raises(ConfigurationError):
            KMedianInstance(np.full((2, 2), np.inf), k=1)

    def test_from_points(self):
        pts = np.array([[0.0, 0.0], [3.0, 4.0]])
        inst = KMedianInstance.from_points(pts, k=1)
        assert inst.distances[0, 1] == pytest.approx(5.0)


class TestLocalSearch:
    def test_single_swap_reaches_optimum_on_small(self, rng):
        for trial in range(15):
            pts = rng.random((10, 2))
            inst = KMedianInstance.from_points(pts, k=3)
            _, opt = exact_kmedian(inst)
            res = local_search(inst, p=1, seed=trial)
            assert res.cost <= opt * 5.0 + 1e-9  # theory bound 3 + 2/1
            assert res.cost >= opt - 1e-9

    def test_ratio_beats_bound(self, rng):
        worst = 1.0
        for trial in range(20):
            pts = rng.random((12, 2))
            inst = KMedianInstance.from_points(pts, k=4)
            _, opt = exact_kmedian(inst)
            res = local_search(inst, p=1, seed=trial)
            if opt > 0:
                worst = max(worst, res.cost / opt)
        assert worst <= 1.2  # empirically near-optimal, far below 5

    def test_p2_at_least_as_good_as_p1(self, rng):
        pts = rng.random((14, 2))
        inst = KMedianInstance.from_points(pts, k=4)
        r1 = local_search(inst, p=1, seed=0)
        r2 = local_search(inst, p=2, seed=0, initial=r1.solution)
        assert r2.cost <= r1.cost + 1e-9

    def test_converged_flag(self, rng):
        pts = rng.random((10, 2))
        inst = KMedianInstance.from_points(pts, k=2)
        res = local_search(inst, p=1)
        assert res.converged
        capped = local_search(inst, p=1, max_iters=1)
        assert capped.iterations == 1

    def test_respects_initial_solution(self, rng):
        pts = rng.random((8, 2))
        inst = KMedianInstance.from_points(pts, k=3)
        res = local_search(inst, initial=[0, 1, 2])
        assert res.solution.shape == (3,)
        assert res.cost <= inst.cost([0, 1, 2]) + 1e-9

    def test_weighted_instance(self, rng):
        pts = rng.random((12, 2))
        w = rng.uniform(0.5, 3.0, 12)
        inst = KMedianInstance.from_points(pts, k=3, weights=w)
        _, opt = exact_kmedian(inst)
        res = local_search(inst, p=1)
        assert res.cost <= opt * 5 + 1e-9

    def test_k_equals_n_is_free(self):
        inst = KMedianInstance.from_points(np.random.default_rng(0).random((6, 2)), k=6)
        res = local_search(inst)
        assert res.cost == pytest.approx(0.0)

    def test_invalid_p(self):
        inst = KMedianInstance(np.ones((2, 2)), k=1)
        with pytest.raises(ConfigurationError):
            local_search(inst, p=0)

    def test_invalid_initial(self):
        inst = KMedianInstance(np.ones((2, 3)), k=2)
        with pytest.raises(ConfigurationError):
            local_search(inst, initial=[0])


class TestExactAndGreedy:
    def test_exact_beats_or_ties_everything(self, rng):
        pts = rng.random((9, 2))
        inst = KMedianInstance.from_points(pts, k=3)
        _, opt = exact_kmedian(inst)
        _, g = greedy_kmedian(inst)
        ls = local_search(inst)
        assert opt <= g + 1e-9
        assert opt <= ls.cost + 1e-9

    def test_exact_cap(self):
        inst = KMedianInstance(np.ones((2, 60)), k=30)
        with pytest.raises(ConfigurationError):
            exact_kmedian(inst)

    def test_greedy_opens_k(self, rng):
        pts = rng.random((20, 2))
        inst = KMedianInstance.from_points(pts, k=5)
        sol, cost = greedy_kmedian(inst)
        assert sol.shape == (5,)
        assert cost == pytest.approx(inst.cost(sol))

    def test_greedy_weighted(self, rng):
        pts = rng.random((15, 2))
        w = rng.uniform(0.1, 2.0, 15)
        inst = KMedianInstance.from_points(pts, k=4, weights=w)
        sol, cost = greedy_kmedian(inst)
        assert cost == pytest.approx(inst.cost(sol))
