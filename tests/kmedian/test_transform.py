"""VMMIGRATION -> k-median transformation tests (Sec. V-A)."""

import numpy as np
import pytest

from repro.costs.model import CostModel
from repro.errors import ConfigurationError
from repro.kmedian import local_search, vmmigration_to_kmedian


class TestTransform:
    def test_instance_shape(self, small_cluster, cost_model):
        inst = vmmigration_to_kmedian(cost_model, [0, 2, 5], k=2)
        assert inst.num_clients == 3
        assert inst.num_facilities == small_cluster.num_racks
        assert inst.k == 2

    def test_client_rows_match_cost_matrix(self, cost_model):
        inst = vmmigration_to_kmedian(cost_model, [1, 3], k=1, capacity=10.0)
        full = cost_model.pairwise_rack_cost(10.0)
        np.testing.assert_allclose(inst.distances[0], full[1])
        np.testing.assert_allclose(inst.distances[1], full[3])

    def test_own_rack_is_free_facility(self, cost_model):
        """Opening the source ToR itself costs zero for that client."""
        inst = vmmigration_to_kmedian(cost_model, [2], k=1)
        assert inst.distances[0, 2] == 0.0
        res = local_search(inst)
        assert res.cost == 0.0
        assert 2 in res.solution.tolist()

    def test_weighted_sources(self, cost_model):
        w = np.array([5.0, 1.0])
        inst = vmmigration_to_kmedian(cost_model, [0, 4], k=1, weights=w)
        # the heavy client should dominate the optimal facility choice
        res = local_search(inst)
        assert inst.distances[0, res.solution].min() <= inst.distances[1, res.solution].min() * 5

    def test_solves_end_to_end(self, cost_model, small_cluster):
        srcs = list(range(min(6, small_cluster.num_racks)))
        inst = vmmigration_to_kmedian(cost_model, srcs, k=3)
        res = local_search(inst, p=1)
        assert res.solution.shape == (3,)
        assert np.isfinite(res.cost)

    def test_validation(self, cost_model):
        with pytest.raises(ConfigurationError):
            vmmigration_to_kmedian(cost_model, [], k=1)
        with pytest.raises(ConfigurationError):
            vmmigration_to_kmedian(cost_model, [0, 0], k=1)
        with pytest.raises(ConfigurationError):
            vmmigration_to_kmedian(cost_model, [10**6], k=1)
