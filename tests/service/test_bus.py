"""EventBus semantics: typed dispatch, priority, run-to-completion."""

import pytest

from repro.service.bus import EventBus
from repro.service.events import (
    AlertRaised,
    RoundClosed,
    RoundOpened,
    ServiceEvent,
)


def _opened(n=0):
    return RoundOpened(round=n, alerts=0)


class TestSubscription:
    def test_typed_delivery(self):
        bus = EventBus()
        got = []
        bus.subscribe(RoundOpened, got.append)
        bus.publish(_opened())
        bus.publish(RoundClosed(round=0, alerts=0, migrations=0, total_cost=0.0))
        assert [e.kind for e in got] == ["RoundOpened"]

    def test_base_class_subscription_sees_everything(self):
        bus = EventBus()
        got = []
        bus.subscribe(ServiceEvent, got.append)
        bus.publish(_opened())
        bus.publish(AlertRaised(round=0, rack=1, alert_kind="SERVER", magnitude=1.0))
        assert [e.kind for e in got] == ["RoundOpened", "AlertRaised"]

    def test_cancel_detaches(self):
        bus = EventBus()
        got = []
        sub = bus.subscribe(RoundOpened, got.append)
        bus.publish(_opened(0))
        sub.cancel()
        sub.cancel()  # idempotent
        bus.publish(_opened(1))
        assert len(got) == 1
        assert bus.subscriber_count(RoundOpened) == 0

    def test_subscribe_rejects_non_event_types(self):
        bus = EventBus()
        with pytest.raises(TypeError):
            bus.subscribe(int, lambda e: None)

    def test_publish_rejects_non_events(self):
        bus = EventBus()
        with pytest.raises(TypeError):
            bus.publish("RoundOpened")


class TestOrdering:
    def test_priority_then_subscription_order(self):
        bus = EventBus()
        calls = []
        bus.subscribe(RoundOpened, lambda e: calls.append("low"), priority=-5)
        bus.subscribe(RoundOpened, lambda e: calls.append("first"), priority=10)
        bus.subscribe(RoundOpened, lambda e: calls.append("a"), priority=0)
        bus.subscribe(RoundOpened, lambda e: calls.append("b"), priority=0)
        bus.publish(_opened())
        assert calls == ["first", "a", "b", "low"]

    def test_base_and_exact_subscribers_merge_by_priority(self):
        bus = EventBus()
        calls = []
        bus.subscribe(ServiceEvent, lambda e: calls.append("any"), priority=0)
        bus.subscribe(RoundOpened, lambda e: calls.append("exact"), priority=1)
        bus.publish(_opened())
        assert calls == ["exact", "any"]

    def test_run_to_completion(self):
        # an event published from a handler dispatches after the current
        # event's remaining handlers — never interleaved
        bus = EventBus()
        calls = []

        def cascade(event):
            calls.append("open:first")
            bus.publish(
                RoundClosed(round=0, alerts=0, migrations=0, total_cost=0.0)
            )

        bus.subscribe(RoundOpened, cascade, priority=1)
        bus.subscribe(RoundOpened, lambda e: calls.append("open:second"))
        bus.subscribe(RoundClosed, lambda e: calls.append("closed"))
        bus.publish(_opened())
        assert calls == ["open:first", "open:second", "closed"]


class TestRecording:
    def test_counts_always_on(self):
        bus = EventBus()
        bus.publish(_opened(0))
        bus.publish(_opened(1))
        assert bus.counts["RoundOpened"] == 2

    def test_history_requires_record(self):
        bus = EventBus()
        with pytest.raises(ValueError):
            bus.event_kinds()

    def test_record_and_clear(self):
        bus = EventBus(record=True)
        bus.publish(_opened())
        assert bus.event_kinds() == ["RoundOpened"]
        bus.clear_history()
        assert bus.event_kinds() == []
        assert not bus.counts
