"""The persistent planner pool is byte-identical to the seed engine.

Pins the pooled engines against the same ``golden_seed_engine.json``
capture the bus-scheduler identity suite uses: ``planner="process"``
(contiguous rack chunks over forked workers) and ``planner="sharded"``
(pod-aligned shards) must reproduce every RoundSummary field and the
final placement hash of the pre-refactor serial engine — plan shipping
over shared memory, the alert wire codec, the result arena and the
parent-side block reassembly are pure transport, not behavior.
"""

import dataclasses
import hashlib
import json
from pathlib import Path

import pytest

from repro.cluster import build_cluster
from repro.config import SheriffConfig
from repro.faults import ChannelPolicy, FaultKind, FaultSchedule, FaultSpec
from repro.sim.engine import SheriffSimulation
from repro.sim.scenario import inject_fraction_alerts
from repro.topology import build_fattree

GOLDEN = json.loads(
    (Path(__file__).parent / "golden_seed_engine.json").read_text()
)

ROUNDS = 6
SEED = 2015
ALERT_FRACTION = 0.08


def _cluster():
    return build_cluster(
        build_fattree(4),
        hosts_per_rack=4,
        fill_fraction=0.5,
        skew=1.1,
        seed=SEED,
        delay_sensitive_fraction=0.0,
    )


def _chaos_kwargs():
    return dict(
        fault_schedule=FaultSchedule(
            [
                FaultSpec(FaultKind.SHIM_DOWN, target=1, at_round=2, duration=2),
                FaultSpec(FaultKind.HOST_CRASH, target=3, at_round=3),
            ]
        ),
        channel_policy=ChannelPolicy(
            loss_probability=0.1, max_retries=3, seed=SEED
        ),
    )


def _run(config: SheriffConfig):
    cluster = _cluster()
    sim = SheriffSimulation(cluster, config)
    for r in range(ROUNDS):
        alerts, vma = inject_fraction_alerts(
            cluster, ALERT_FRACTION, time=r, seed=SEED + r
        )
        sim.run_round(alerts, vma)
    sim.close()
    return cluster, sim


def _summary_dicts(sim):
    out = []
    for s in sim.history:
        d = dataclasses.asdict(s)
        d.pop("timings")
        d.pop("reports")
        d.pop("pool", None)
        out.append(d)
    return json.loads(json.dumps(out))


def _placement_sha256(cluster):
    return hashlib.sha256(cluster.placement.vm_host.tobytes()).hexdigest()


POOLED_CONFIGS = {
    "process": dict(planner="process", workers=2),
    "process_one_shard": dict(planner="process", workers=1),
    "sharded": dict(planner="sharded"),
    "sharded_two": dict(planner="sharded", shards=2),
}


@pytest.mark.parametrize("name", sorted(POOLED_CONFIGS))
def test_pooled_planner_matches_seed_engine(name):
    cluster, sim = _run(
        SheriffConfig(balance_weight=25.0, **POOLED_CONFIGS[name])
    )
    assert _summary_dicts(sim) == GOLDEN["workers0"]["summaries"]
    assert _placement_sha256(cluster) == GOLDEN["workers0"]["placement_sha256"]


@pytest.mark.parametrize("planner", ["process", "sharded"])
def test_pooled_planner_matches_seed_engine_under_chaos(planner):
    # fault injection flows through the shipped fleet state: down racks
    # plan nothing, crashed hosts disappear from every shard's snapshot
    cluster, sim = _run(
        SheriffConfig(balance_weight=25.0, planner=planner, **_chaos_kwargs())
    )
    assert _summary_dicts(sim) == GOLDEN["chaos_w0"]["summaries"]
    assert _placement_sha256(cluster) == GOLDEN["chaos_w0"]["placement_sha256"]


def test_pool_summary_stats_populate():
    _, sim = _run(SheriffConfig(balance_weight=25.0, planner="sharded"))
    last = sim.history[-1]
    assert last.pool["attached"] >= 1
    assert last.pool["ships"] >= 1
