"""Alert sources for serve mode: JSONL parsing and seeded replay."""

import io

import pytest

from repro.cluster import build_cluster
from repro.errors import ConfigurationError
from repro.service.ingest import JsonlAlertSource, ReplayAlertSource
from repro.topology import build_fattree


def _jsonl(*lines):
    return JsonlAlertSource(io.StringIO("\n".join(lines) + "\n"))


class TestJsonlParsing:
    def test_rows_sharing_a_time_form_one_batch(self):
        src = _jsonl(
            '{"rack": 0, "kind": "server", "host": 1, "vm": 2, "magnitude": 0.5, "time": 0}',
            '{"rack": 1, "kind": "server", "host": 5, "vm": 6, "magnitude": 0.7, "time": 0}',
            '{"rack": 2, "kind": "local_tor", "magnitude": 1.2, "time": 1}',
        )
        batches = list(src.batches())
        assert [len(b) for b in batches] == [2, 1]
        (alert, magnitude) = batches[0][0]
        assert (alert.rack, alert.host, alert.vm, magnitude) == (0, 1, 2, 0.5)
        assert batches[1][0][0].kind.value == "local_tor"

    def test_untimed_rows_never_coalesce(self):
        src = _jsonl(
            '{"rack": 0, "kind": "local_tor", "magnitude": 1.0}',
            '{"rack": 1, "kind": "local_tor", "magnitude": 1.0}',
        )
        assert [len(b) for b in src.batches()] == [1, 1]

    def test_blank_lines_skipped(self):
        src = _jsonl(
            '{"rack": 0, "kind": "local_tor", "magnitude": 1.0, "time": 3}',
            "",
            '{"rack": 1, "kind": "local_tor", "magnitude": 1.0, "time": 3}',
        )
        assert [len(b) for b in src.batches()] == [2]

    def test_unknown_key_rejected(self):
        src = _jsonl('{"rack": 0, "kind": "local_tor", "magnitude": 1, "rak": 2}')
        with pytest.raises(ConfigurationError, match="line 1.*rak"):
            list(src.batches())

    def test_unknown_kind_rejected(self):
        src = _jsonl('{"rack": 0, "kind": "spine", "magnitude": 1.0}')
        with pytest.raises(ConfigurationError, match="spine"):
            list(src.batches())

    def test_missing_rack_rejected(self):
        src = _jsonl('{"kind": "local_tor", "magnitude": 1.0}')
        with pytest.raises(ConfigurationError, match="rack"):
            list(src.batches())

    def test_malformed_json_names_the_line(self):
        src = _jsonl(
            '{"rack": 0, "kind": "local_tor", "magnitude": 1.0}',
            "{not json",
        )
        with pytest.raises(ConfigurationError, match="line 2"):
            list(src.batches())

    def test_non_object_row_rejected(self):
        src = _jsonl("[1, 2, 3]")
        with pytest.raises(ConfigurationError, match="object"):
            list(src.batches())


class TestReplay:
    def _cluster(self):
        return build_cluster(
            build_fattree(4),
            hosts_per_rack=4,
            fill_fraction=0.5,
            skew=1.1,
            seed=7,
            delay_sensitive_fraction=0.0,
        )

    def test_bounded_rounds(self):
        src = ReplayAlertSource(self._cluster(), fraction=0.1, rounds=3, seed=9)
        batches = list(src.batches())
        assert len(batches) == 3
        assert all(batches)

    def test_same_seed_same_stream(self):
        a = ReplayAlertSource(self._cluster(), fraction=0.1, rounds=2, seed=9)
        b = ReplayAlertSource(self._cluster(), fraction=0.1, rounds=2, seed=9)
        sig_a = [[(al.rack, al.vm, m) for al, m in batch] for batch in a.batches()]
        sig_b = [[(al.rack, al.vm, m) for al, m in batch] for batch in b.batches()]
        assert sig_a == sig_b

    def test_negative_rounds_rejected(self):
        with pytest.raises(ConfigurationError):
            ReplayAlertSource(self._cluster(), rounds=-1)
