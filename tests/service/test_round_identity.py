"""The bus-driven round scheduler is byte-identical to the seed engine.

``golden_seed_engine.json`` was captured from the pre-refactor engine
(the monolithic ``run_round``) over four configurations: serial,
thread-pool, chaos (faults + lossy channel) and timed migrations.  The
blackboard/event-bus scheduler must reproduce every RoundSummary field
and the final placement hash exactly — the refactor is a pure
re-expression, not a behavior change.
"""

import dataclasses
import hashlib
import json
from pathlib import Path

import pytest

from repro.cluster import build_cluster
from repro.config import SheriffConfig
from repro.faults import ChannelPolicy, FaultKind, FaultSchedule, FaultSpec
from repro.service.bus import EventBus
from repro.sim.engine import SheriffSimulation
from repro.sim.inflight import MigrationTiming
from repro.sim.scenario import inject_fraction_alerts
from repro.topology import build_fattree

GOLDEN = json.loads(
    (Path(__file__).parent / "golden_seed_engine.json").read_text()
)

ROUNDS = 6
SEED = 2015
ALERT_FRACTION = 0.08


def _cluster():
    return build_cluster(
        build_fattree(4),
        hosts_per_rack=4,
        fill_fraction=0.5,
        skew=1.1,
        seed=SEED,
        delay_sensitive_fraction=0.0,
    )


def _config(variant: str, **extra) -> SheriffConfig:
    if variant == "workers0":
        return SheriffConfig(balance_weight=25.0, workers=0, **extra)
    if variant == "workers4":
        return SheriffConfig(balance_weight=25.0, workers=4, **extra)
    if variant == "chaos_w0":
        return SheriffConfig(
            balance_weight=25.0,
            workers=0,
            fault_schedule=FaultSchedule(
                [
                    FaultSpec(
                        FaultKind.SHIM_DOWN, target=1, at_round=2, duration=2
                    ),
                    FaultSpec(FaultKind.HOST_CRASH, target=3, at_round=3),
                ]
            ),
            channel_policy=ChannelPolicy(
                loss_probability=0.1, max_retries=3, seed=SEED
            ),
            **extra,
        )
    assert variant == "timed_w0"
    return SheriffConfig(
        balance_weight=25.0,
        workers=0,
        migration_timing=MigrationTiming(),
        **extra,
    )


def _run(variant: str, **extra):
    cluster = _cluster()
    sim = SheriffSimulation(cluster, _config(variant, **extra))
    for r in range(ROUNDS):
        alerts, vma = inject_fraction_alerts(
            cluster, ALERT_FRACTION, time=r, seed=SEED + r
        )
        sim.run_round(alerts, vma)
    sim.close()
    return cluster, sim


def _summary_dicts(sim):
    out = []
    for s in sim.history:
        d = dataclasses.asdict(s)
        d.pop("timings")
        d.pop("reports")
        d.pop("pool", None)
        out.append(d)
    # normalize through JSON exactly like the golden capture did
    return json.loads(json.dumps(out))


def _placement_sha256(cluster):
    return hashlib.sha256(cluster.placement.vm_host.tobytes()).hexdigest()


@pytest.mark.parametrize("variant", sorted(GOLDEN))
def test_bus_scheduler_matches_seed_engine(variant):
    cluster, sim = _run(variant)
    assert _summary_dicts(sim) == GOLDEN[variant]["summaries"]
    assert _placement_sha256(cluster) == GOLDEN[variant]["placement_sha256"]


def test_recording_bus_does_not_perturb_results():
    # observing every event must not change a single decision
    cluster, sim = _run("workers0", event_bus=EventBus(record=True))
    assert _summary_dicts(sim) == GOLDEN["workers0"]["summaries"]
    assert _placement_sha256(cluster) == GOLDEN["workers0"]["placement_sha256"]
    kinds = set(sim.bus.event_kinds())
    assert {"RoundOpened", "AlertRaised", "RackPlanned", "RoundClosed"} <= kinds


def test_event_order_is_seed_deterministic():
    runs = []
    for _ in range(2):
        _, sim = _run("workers0", event_bus=EventBus(record=True))
        runs.append(sim.bus.event_kinds())
    assert runs[0] == runs[1]
    assert runs[0]  # the stream is non-trivial


def test_parallel_planning_preserves_event_order():
    # planning may fan out over threads, but publishes stay in rack order
    _, serial = _run("workers0", event_bus=EventBus(record=True))
    _, pooled = _run("workers4", event_bus=EventBus(record=True))
    assert serial.bus.event_kinds() == pooled.bus.event_kinds()
