"""The always-on driver: backpressure shedding, HTTP surface, drain."""

import asyncio
import json

import pytest

from repro.alerts.alert import Alert, AlertKind
from repro.cluster import build_cluster
from repro.config import SheriffConfig
from repro.errors import ConfigurationError
from repro.service.events import AlertShed
from repro.service.ingest import ReplayAlertSource
from repro.service.server import ServeSettings, SheriffService
from repro.sim.engine import SheriffSimulation
from repro.topology import build_fattree


def _sim():
    cluster = build_cluster(
        build_fattree(4),
        hosts_per_rack=4,
        fill_fraction=0.5,
        skew=1.1,
        seed=2015,
        delay_sensitive_fraction=0.0,
    )
    return cluster, SheriffSimulation(
        cluster, SheriffConfig(balance_weight=25.0)
    )


def _alert(rack):
    return Alert(kind=AlertKind.LOCAL_TOR, rack=rack, magnitude=1.0)


class TestSettings:
    def test_bad_shed_policy(self):
        with pytest.raises(ConfigurationError, match="shed_policy"):
            ServeSettings(shed_policy="drop-random")

    def test_bad_queue_limit(self):
        with pytest.raises(ConfigurationError, match="queue_limit"):
            ServeSettings(queue_limit=0)

    def test_bad_max_rounds(self):
        with pytest.raises(ConfigurationError, match="max_rounds"):
            ServeSettings(max_rounds=0)

    def test_negative_interval(self):
        with pytest.raises(ConfigurationError, match="interval"):
            ServeSettings(round_interval=-1.0)


class TestBackpressure:
    def _service(self, policy, limit=2):
        cluster, sim = _sim()
        source = ReplayAlertSource(cluster, rounds=1)
        settings = ServeSettings(queue_limit=limit, shed_policy=policy)
        return sim, SheriffService(sim, source, settings)

    def test_drop_oldest_evicts_the_head(self):
        sim, svc = self._service("drop-oldest")
        shed = []
        sim.bus.subscribe(AlertShed, shed.append)
        for rack in range(3):
            assert svc.offer(_alert(rack), 1.0)
        assert [a.rack for a, _ in svc._queue] == [1, 2]
        assert svc.alerts_shed == 1
        assert [e.rack for e in shed] == [0]
        assert shed[0].policy == "drop-oldest"
        sim.close()

    def test_drop_newest_rejects_the_newcomer(self):
        sim, svc = self._service("drop-newest")
        assert svc.offer(_alert(0), 1.0)
        assert svc.offer(_alert(1), 1.0)
        assert not svc.offer(_alert(2), 1.0)
        assert [a.rack for a, _ in svc._queue] == [0, 1]
        assert svc.alerts_shed == 1
        sim.close()

    def test_shed_counter_metric(self):
        sim, svc = self._service("drop-oldest", limit=1)
        svc.offer(_alert(0), 1.0)
        svc.offer(_alert(1), 1.0)
        assert (
            sim.metrics.counter("sheriff_ingest_shed_total").value == 1
        )
        sim.close()

    def test_flooded_ingest_sheds_but_keeps_serving(self):
        # flood 50 alerts through a queue of 4: the service must bound
        # memory (shed the excess) and still plan the survivors
        sim, svc = self._service("drop-oldest", limit=4)
        racks = len(sim.managers)
        for i in range(50):
            svc.offer(_alert(i % racks), 1.0)
        assert len(svc._queue) == 4
        assert svc.alerts_shed == 46
        svc._run_one_round()
        assert svc.rounds_run == 1
        assert len(svc._queue) == 0
        sim.close()


async def _get(port, path):
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    writer.write(f"GET {path} HTTP/1.0\r\n\r\n".encode())
    await writer.drain()
    raw = await reader.read()
    writer.close()
    await writer.wait_closed()
    head, _, body = raw.partition(b"\r\n\r\n")
    return head.split(b"\r\n")[0].decode(), body.decode()


class TestServeLoop:
    def _boot(self, rounds=3, **kw):
        cluster, sim = _sim()
        source = ReplayAlertSource(cluster, fraction=0.08, rounds=rounds)
        settings = ServeSettings(round_interval=0.01, **kw)
        return sim, SheriffService(sim, source, settings)

    def test_serves_http_and_drains_clean(self):
        sim, svc = self._boot()

        async def scenario():
            runner = asyncio.create_task(svc.run())
            while svc.bound_port is None:
                await asyncio.sleep(0.005)
            status, body = await _get(svc.bound_port, "/healthz")
            assert status.endswith("200 OK")
            health = json.loads(body)
            assert health["status"] in ("serving", "draining")
            assert health["shed_policy"] == "drop-oldest"
            status, metrics = await _get(svc.bound_port, "/metrics")
            assert status.endswith("200 OK")
            assert "sheriff_ingest_alerts_total" in metrics
            status, _ = await _get(svc.bound_port, "/nope")
            assert status.endswith("404 Not Found")
            return await runner

        report = asyncio.run(scenario())
        assert report["clean_drain"]
        assert report["ingested"] > 0
        assert report["planned"] == report["ingested"]
        assert svc.state == "stopped"
        assert svc.rounds_run >= 1

    def test_request_drain_stops_an_endless_source(self):
        sim, svc = self._boot(rounds=0)  # endless replay

        async def scenario():
            runner = asyncio.create_task(svc.run())
            while svc.rounds_run < 1:
                await asyncio.sleep(0.005)
            svc.request_drain()
            return await runner

        report = asyncio.run(scenario())
        assert report["clean_drain"]
        assert svc.state == "stopped"

    def test_max_rounds_is_a_hard_stop(self):
        sim, svc = self._boot(rounds=0, max_rounds=2)
        report = asyncio.run(svc.run())
        assert svc.rounds_run == 2
        assert report["rounds"] == 2

    def test_serve_rounds_match_batch_engine_decisions(self):
        # one replay tick drained into one round must equal a batch-mode
        # run_round on the same seeded alerts
        cluster_a, sim_a = _sim()
        source = ReplayAlertSource(cluster_a, fraction=0.08, rounds=1)
        svc = SheriffService(sim_a, source, ServeSettings(round_interval=0.01))
        report = asyncio.run(svc.run())
        assert report["rounds"] == 1

        from repro.sim.scenario import inject_fraction_alerts

        cluster_b, sim_b = _sim()
        alerts, vma = inject_fraction_alerts(
            cluster_b, 0.08, time=0, seed=2015
        )
        sim_b.run_round(alerts, vma)
        sim_b.close()
        a, b = sim_a.history[0], sim_b.history[0]
        assert (a.alerts, a.migrations, a.requests, a.total_cost) == (
            b.alerts,
            b.migrations,
            b.requests,
            b.total_cost,
        )
