"""BlackboardController scheduling: priority, quiescence, runaway guard."""

import pytest

from repro.service.blackboard import (
    BlackboardController,
    ControlError,
    FunctionSource,
)
from repro.service.bus import EventBus


class Board:
    """A tiny two-phase blackboard for scheduling tests."""

    def __init__(self):
        self.steps = []
        self.a_done = False
        self.b_done = False


def _source(name, ready, run, priority=0):
    return FunctionSource(name, ready, run, priority=priority)


def _controller(*sources):
    return BlackboardController(EventBus(), sources)


class TestScheduling:
    def test_highest_priority_ready_source_runs_first(self):
        def run_a(board, bus):
            board.steps.append("a")
            board.a_done = True

        def run_b(board, bus):
            board.steps.append("b")
            board.b_done = True

        ctl = _controller(
            _source("b", lambda b: b.a_done and not b.b_done, run_b, priority=1),
            _source("a", lambda b: not b.a_done, run_a, priority=5),
        )
        board = Board()
        ctl.bind(board)
        assert ctl.run() == 2
        assert board.steps == ["a", "b"]

    def test_registration_order_breaks_priority_ties(self):
        seen = []

        def once(tag):
            fired = []

            def ready(board):
                return not fired

            def run(board, bus):
                fired.append(tag)
                seen.append(tag)

            return _source(tag, ready, run, priority=0)

        ctl = _controller(once("first"), once("second"))
        ctl.bind(Board())
        ctl.run()
        assert seen == ["first", "second"]

    def test_step_returns_none_when_quiescent(self):
        ctl = _controller(_source("never", lambda b: False, lambda b, bus: None))
        ctl.bind(Board())
        assert ctl.step() is None
        assert ctl.run() == 0

    def test_sources_property_lists_scheduling_order(self):
        lo = _source("lo", lambda b: False, lambda b, bus: None, priority=1)
        hi = _source("hi", lambda b: False, lambda b, bus: None, priority=9)
        ctl = _controller(lo, hi)
        assert [s.name for s in ctl.sources] == ["hi", "lo"]


class TestGuards:
    def test_unbound_board_raises(self):
        ctl = _controller()
        with pytest.raises(ControlError, match="bind"):
            ctl.step()

    def test_runaway_source_trips_max_steps(self):
        ctl = BlackboardController(
            EventBus(),
            [_source("spin", lambda b: True, lambda b, bus: None)],
            max_steps=50,
        )
        ctl.bind(Board())
        with pytest.raises(ControlError, match="quiesce"):
            ctl.run()

    def test_bind_none_detaches(self):
        ctl = _controller()
        ctl.bind(Board())
        ctl.bind(None)
        with pytest.raises(ControlError):
            ctl.step()
