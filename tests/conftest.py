"""Shared fixtures: small clusters on both topology families."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import build_cluster
from repro.costs import CostModel
from repro.topology import build_bcube, build_fattree


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture
def fattree4():
    """Tiny 4-pod Fat-Tree (8 racks, 20 nodes)."""
    return build_fattree(4)


@pytest.fixture
def fattree8():
    return build_fattree(8)


@pytest.fixture
def bcube4():
    """BCube(4, 1): 4 racks, 16 servers."""
    return build_bcube(4)


@pytest.fixture
def small_cluster(fattree4):
    """Deterministic populated cluster with some skew."""
    return build_cluster(
        fattree4,
        hosts_per_rack=3,
        host_capacity=100,
        fill_fraction=0.5,
        skew=0.5,
        seed=42,
    )


@pytest.fixture
def cost_model(small_cluster):
    return CostModel(small_cluster)
