"""Exception hierarchy for the Sheriff reproduction.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything the library throws with a single ``except`` clause while
still distinguishing configuration problems from runtime protocol failures.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigurationError",
    "TopologyError",
    "PlacementError",
    "CapacityError",
    "ForecastError",
    "ConvergenceError",
    "MigrationError",
    "ProtocolError",
    "SimulationError",
    "ObservabilityError",
]


class ReproError(Exception):
    """Base class for every exception raised by :mod:`repro`."""


class ConfigurationError(ReproError, ValueError):
    """A user-supplied parameter is out of its documented domain."""


class TopologyError(ReproError):
    """A topology is malformed (unknown node, disconnected fabric, ...)."""


class PlacementError(ReproError):
    """A VM placement request cannot be satisfied."""


class CapacityError(PlacementError):
    """A host or switch does not have room for the requested resources."""


class ForecastError(ReproError):
    """A forecasting model could not be fit or queried."""


class ConvergenceError(ForecastError):
    """An iterative fit (ARIMA CSS, NARNET training) failed to converge."""


class MigrationError(ReproError):
    """A VM migration could not be scheduled or executed."""


class ProtocolError(MigrationError):
    """The REQUEST/ACK protocol was violated (e.g. duplicate commit)."""


class SimulationError(ReproError):
    """The round-based simulator reached an inconsistent state."""


class ObservabilityError(ReproError):
    """The tracing/metrics layer was misused (e.g. metric type clash)."""
