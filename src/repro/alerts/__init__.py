"""Pre-alert mechanism (Sec. III-B and IV).

Hosts monitor their VMs' workload profiles, forecast ``T`` seconds ahead
with the model pool, and emit ``ALERT = max(W)`` when any predicted
component crosses the THRESHOLD.  Switches signal congestion through a
QCN-style queue-length feedback, and shims watch their ToR uplink.
"""

from repro.alerts.threshold import AlertConfig, confidence_stance, migration_expense
from repro.alerts.alert import Alert, AlertKind, compute_alert, compute_alerts
from repro.alerts.monitor import VMMonitor, default_model_pool, fleet_alert_values
from repro.alerts.qcn import SwitchQueue, ToRUplinkMonitor
from repro.alerts.aggregate import (
    host_profiles,
    hottest_resource,
    rack_profiles,
    rack_uplink_traffic,
)

__all__ = [
    "AlertConfig",
    "confidence_stance",
    "migration_expense",
    "Alert",
    "AlertKind",
    "compute_alert",
    "compute_alerts",
    "VMMonitor",
    "default_model_pool",
    "fleet_alert_values",
    "SwitchQueue",
    "ToRUplinkMonitor",
    "host_profiles",
    "rack_profiles",
    "rack_uplink_traffic",
    "hottest_resource",
]
