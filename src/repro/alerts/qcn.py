"""QCN-style switch congestion feedback (Sec. III-A/B).

Switches detect flow congestion from their queue occupancy and signal it
(via DSCP bits or QCN feedback frames in the paper; via return values
here).  A shim also proactively watches its ToR's uplink queue and treats
a predicted overflow as an alert.

The queue model is the standard fluid one: occupancy integrates
(arrival − service) and saturates at the buffer size.  QCN's feedback
value combines queue offset from the equilibrium point and the queue
growth rate, ``Fb = -(q_off + w * q_delta)``; congestion is signalled when
``Fb`` is negative (queue above/through equilibrium).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.forecast.arima import ARIMA
from repro.forecast.base import Forecaster

__all__ = ["SwitchQueue", "ToRUplinkMonitor"]


@dataclass
class SwitchQueue:
    """Fluid queue of one switch port.

    Attributes
    ----------
    service_rate:
        Drain rate in capacity units per round (the link capacity share).
    buffer_size:
        Saturation level; occupancy is reported normalized by this.
    equilibrium:
        QCN's ``Q_eq`` set-point as a fraction of the buffer.
    w:
        QCN's weight on the queue-growth term.
    """

    service_rate: float
    buffer_size: float
    equilibrium: float = 0.5
    w: float = 2.0
    occupancy: float = field(default=0.0, init=False)
    _last_occupancy: float = field(default=0.0, init=False)

    def __post_init__(self) -> None:
        if self.service_rate <= 0:
            raise ConfigurationError(f"service_rate must be positive, got {self.service_rate}")
        if self.buffer_size <= 0:
            raise ConfigurationError(f"buffer_size must be positive, got {self.buffer_size}")
        if not (0.0 < self.equilibrium < 1.0):
            raise ConfigurationError(f"equilibrium must be in (0, 1), got {self.equilibrium}")

    def step(self, arrival: float) -> float:
        """Advance one round with *arrival* units offered; returns occupancy."""
        if arrival < 0:
            raise ConfigurationError(f"arrival must be non-negative, got {arrival}")
        self._last_occupancy = self.occupancy
        self.occupancy = float(
            np.clip(self.occupancy + arrival - self.service_rate, 0.0, self.buffer_size)
        )
        return self.occupancy

    @property
    def normalized(self) -> float:
        """Occupancy as a fraction of the buffer."""
        return self.occupancy / self.buffer_size

    def feedback(self) -> float:
        """QCN ``Fb``; negative values signal congestion."""
        q_eq = self.equilibrium * self.buffer_size
        q_off = self.occupancy - q_eq
        q_delta = self.occupancy - self._last_occupancy
        return -(q_off + self.w * q_delta)

    @property
    def congested(self) -> bool:
        return self.feedback() < 0.0


class ToRUplinkMonitor:
    """Shim-side predictive watch on the local ToR uplink queue.

    Keeps the queue-length history and predicts the next occupancy with a
    forecaster (paper: "Using the historic information about the queue
    length, we can predict future queue length"); alerts when the
    *predicted* normalized occupancy crosses the threshold — before the
    queue actually overflows.
    """

    def __init__(
        self,
        queue: SwitchQueue,
        threshold: float,
        *,
        forecaster_factory: Callable[[], Forecaster] = lambda: ARIMA(1, 0, 1, maxiter=40),
        min_history: int = 16,
        refit_every: int = 40,
    ) -> None:
        if not (0.0 < threshold <= 1.0):
            raise ConfigurationError(f"threshold must be in (0, 1], got {threshold}")
        if min_history < 8:
            raise ConfigurationError(f"min_history must be >= 8, got {min_history}")
        self.queue = queue
        self.threshold = threshold
        self._factory = forecaster_factory
        self._min_history = min_history
        self._refit_every = refit_every
        self._history: list[float] = []
        self._model: Optional[Forecaster] = None
        self._since_fit = 0

    def record(self, arrival: float) -> None:
        """Advance the queue one round and log its occupancy."""
        self.queue.step(arrival)
        self._history.append(self.queue.normalized)
        if self._model is not None:
            self._model.append(self.queue.normalized)
            self._since_fit += 1

    def predicted_occupancy(self) -> float:
        """One-step-ahead normalized occupancy (last value until warm)."""
        n = len(self._history)
        if n < self._min_history:
            return self._history[-1] if self._history else 0.0
        if self._model is None or self._since_fit >= self._refit_every:
            model = self._factory()
            model.fit(np.asarray(self._history))
            self._model = model
            self._since_fit = 0
        return float(np.clip(self._model.predict_one(), 0.0, 1.0))

    def alert_value(self) -> float:
        """Positive predicted occupancy when above threshold, else 0."""
        pred = self.predicted_occupancy()
        return pred if pred > self.threshold else 0.0
