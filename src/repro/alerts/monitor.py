"""Per-VM monitoring and prediction (Sec. IV-A/B).

Each VM's "local computing device" periodically samples the workload
profile ``[CPU, MEM, IO, TRF]``, feeds one forecaster per component, and
reports ``ALERT = max(predicted W)`` to its shim when the prediction
crosses the threshold.

For fleet-scale simulations the per-component model pool is configurable:
the full ARIMA+NARNET pool reproduces the paper's prediction quality,
while a light pool (naive + small ARIMA) keeps thousand-VM sweeps fast.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.alerts.alert import compute_alert, compute_alerts
from repro.alerts.threshold import AlertConfig, confidence_stance
from repro.cluster.resources import NUM_RESOURCES
from repro.errors import ConfigurationError, ForecastError
from repro.forecast.arima import ARIMA
from repro.forecast.naive import NaiveLast
from repro.forecast.narnet import NARNET
from repro.forecast.selection import DynamicModelSelector

__all__ = [
    "default_model_pool",
    "light_model_pool",
    "seasonal_model_pool",
    "VMMonitor",
    "fleet_alert_values",
]


def default_model_pool() -> Dict[str, Callable[[], object]]:
    """The paper's four-predictor example pool: two ARIMA + two NARNET."""
    return {
        "arima111": lambda: ARIMA(1, 1, 1),
        "arima212": lambda: ARIMA(2, 1, 2),
        "narnet8x10": lambda: NARNET(ni=8, nh=10, restarts=1, seed=11, maxiter=120),
        "narnet12x20": lambda: NARNET(ni=12, nh=20, restarts=1, seed=13, maxiter=120),
    }


def light_model_pool() -> Dict[str, Callable[[], object]]:
    """Cheap pool for fleet-scale simulation (naive + one small ARIMA)."""
    return {
        "arima110": lambda: ARIMA(1, 1, 0, maxiter=40),
        "naive": lambda: NaiveLast(),
    }


def seasonal_model_pool(period: int) -> Dict[str, Callable[[], object]]:
    """Pool for strongly periodic workloads (diurnal VMs).

    Adds a seasonal ARIMA at the given *period* so long-horizon pre-alerts
    keep the daily shape (see the horizon ablation); the plain ARIMA stays
    in the pool for the short-horizon regime, and the selector arbitrates.
    """
    from repro.forecast.sarima import SeasonalARIMA

    return {
        "arima111": lambda: ARIMA(1, 1, 1, maxiter=60),
        f"sarima_{period}": lambda: SeasonalARIMA(1, 0, 1, period=period),
        "naive": lambda: NaiveLast(),
    }


class VMMonitor:
    """Forecast-driven alert source for one VM.

    Parameters
    ----------
    history:
        ``(t0, NUM_RESOURCES)`` normalized profile history used for the
        initial fit; must cover at least ``min_history`` rows.
    config:
        Thresholds and horizon.
    pool_factory:
        Zero-arg callable returning the model-factory mapping for each
        resource component's :class:`DynamicModelSelector`.
    period, refit_every, max_history:
        Selector tuning (Eq. 14 window, refit cadence, bounded memory).
    """

    def __init__(
        self,
        history: np.ndarray,
        config: AlertConfig,
        *,
        pool_factory: Callable[[], Dict[str, Callable[[], object]]] = light_model_pool,
        period: int = 20,
        refit_every: int = 40,
        max_history: Optional[int] = 240,
    ) -> None:
        hist = np.asarray(history, dtype=np.float64)
        if hist.ndim != 2 or hist.shape[1] != NUM_RESOURCES:
            raise ConfigurationError(
                f"history must be (t, {NUM_RESOURCES}), got {hist.shape}"
            )
        if hist.shape[0] < 16:
            raise ConfigurationError(
                f"need >= 16 history rows to initialize monitors, got {hist.shape[0]}"
            )
        self.config = config
        self._selectors: List[DynamicModelSelector] = []
        for r in range(NUM_RESOURCES):
            sel = DynamicModelSelector(
                pool_factory(),
                period=period,
                refit_every=refit_every,
                max_history=max_history,
            )
            sel.fit(hist[:, r])
            self._selectors.append(sel)

    def predicted_profile(self) -> np.ndarray:
        """T-seconds-ahead profile prediction (horizon steps ahead)."""
        h = self.config.horizon
        out = np.empty(NUM_RESOURCES)
        for r, sel in enumerate(self._selectors):
            out[r] = sel.forecast(h)[h - 1]
        return np.clip(out, 0.0, 1.0)

    def alert_value(
        self,
        *,
        headroom: Optional[float] = None,
        migration_cost_s: Optional[float] = None,
    ) -> float:
        """ALERT magnitude from the current prediction (0 = no alert).

        Must be called *before* :meth:`observe` for the round so the
        prediction genuinely precedes the observation.

        With ``config.confidence_gate`` on, *headroom* (mean free-capacity
        fraction) and *migration_cost_s* (precopy-timeline seconds; see
        :func:`~repro.alerts.threshold.migration_expense`) pick the
        interval bound the THRESHOLD is compared against — hair-trigger
        when capacity is cheap, conservative when migration is expensive.
        Both default to ``None`` (neutral), and with the gate off the
        historical point-forecast path runs byte-identically.
        """
        # One-step pool bookkeeping: predict_one caches every member's
        # prediction so observe() can score the pool.
        one_step = np.empty(NUM_RESOURCES)
        for r, sel in enumerate(self._selectors):
            one_step[r] = sel.predict_one()
        stance = confidence_stance(self.config, headroom, migration_cost_s)
        if stance != "mean":
            one_step = self._stance_profile(one_step, stance)
        if self.config.horizon == 1:
            # the cached one-step predictions ARE the alert input
            profile = np.clip(one_step, 0.0, 1.0)
        else:
            profile = self.predicted_profile()
        return compute_alert(profile, self.config.threshold)

    def _stance_profile(self, one_step: np.ndarray, stance: str) -> np.ndarray:
        """Replace point predictions with the stance's interval bound.

        Components whose answering member has no interval support keep
        their point forecast — a missing band never silently becomes a
        zero-width one.
        """
        out = one_step.copy()
        for r, sel in enumerate(self._selectors):
            interval = sel.last_answer_interval(self.config.interval_alpha)
            if interval is None:
                continue
            out[r] = interval.upper if stance == "upper" else interval.lower
        return out

    def observe(self, profile: np.ndarray) -> None:
        """Feed the realized profile row for this round."""
        row = np.asarray(profile, dtype=np.float64).ravel()
        if row.shape[0] != NUM_RESOURCES:
            raise ConfigurationError(
                f"profile row must have {NUM_RESOURCES} entries, got {row.shape[0]}"
            )
        for r, sel in enumerate(self._selectors):
            sel.observe(float(row[r]))


def fleet_alert_values(
    monitors: Sequence[VMMonitor],
    *,
    headroom: Optional[float] = None,
    migration_cost_s: Optional[float] = None,
) -> np.ndarray:
    """``[m.alert_value() for m in monitors]`` with batched fleet kernels.

    Collects every monitor's per-resource selectors, runs their one-step
    pool predictions through the stacked ARIMA kernels (one group per
    order across the *whole* fleet), and evaluates the ALERT threshold
    gate over the resulting profile matrix in one vectorized pass.  Values
    and selector side effects (the ``_last_pred`` caches that
    :meth:`VMMonitor.observe` scores) are byte-identical to calling
    :meth:`VMMonitor.alert_value` per monitor.

    *headroom* / *migration_cost_s* are the fleet-level confidence-gate
    signals (see :meth:`VMMonitor.alert_value`); monitors whose stance
    resolves to an interval bound rewrite their profile row from the
    answering members' bands *after* the batched prediction pass, so the
    fleet kernels still serve every selector.
    """
    from repro.forecast.selection import batch_predict_one

    mons = list(monitors)
    if not mons:
        return np.empty(0)
    sels = [sel for m in mons for sel in m._selectors]
    one = np.empty((len(mons), NUM_RESOURCES))
    flat = batch_predict_one(sels)
    for i in range(len(mons)):
        for r in range(NUM_RESOURCES):
            one[i, r] = flat[i * NUM_RESOURCES + r]
    profiles = np.empty((len(mons), NUM_RESOURCES))
    for i, mon in enumerate(mons):
        row = one[i]
        stance = confidence_stance(mon.config, headroom, migration_cost_s)
        if stance != "mean":
            row = mon._stance_profile(row, stance)
        if mon.config.horizon == 1:
            profiles[i] = np.clip(row, 0.0, 1.0)
        else:
            profiles[i] = mon.predicted_profile()
    thresholds = np.asarray([mon.config.threshold for mon in mons])
    return compute_alerts(profiles, thresholds)
