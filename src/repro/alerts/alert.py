"""Alert values and message records (Sec. III-B, IV-C).

The seriousness of a VM's predicted condition is

    ``ALERT = max(W)``  if any component of the predicted profile ``W``
    exceeds THRESHOLD, else ``0``.

Shims receive three kinds of alert (Sec. III-B): from a local host (server
overload), from the local ToR (uplink congestion), and from an outer
switch (path congestion) — Alg. 1 dispatches on the kind.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Optional

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["AlertKind", "Alert", "compute_alert", "compute_alerts"]


class AlertKind(Enum):
    """Origin class of an alert, driving Alg. 1's switch statement."""

    SERVER = "server"
    LOCAL_TOR = "local_tor"
    OUTER_SWITCH = "outer_switch"


def compute_alert(predicted_profile: np.ndarray, threshold: float) -> float:
    """The paper's ALERT value for one predicted profile.

    Parameters
    ----------
    predicted_profile:
        Length-``NUM_RESOURCES`` normalized prediction ``W``; values are
        clipped into ``[0, 1]`` first (forecasters may slightly overshoot).
    threshold:
        THRESHOLD in ``(0, 1]``.
    """
    w = np.clip(np.asarray(predicted_profile, dtype=np.float64).ravel(), 0.0, 1.0)
    if w.size == 0:
        raise ConfigurationError("empty profile")
    if not (0.0 < threshold <= 1.0):
        raise ConfigurationError(f"threshold must be in (0, 1], got {threshold}")
    m = float(w.max())
    return m if m > threshold else 0.0


def compute_alerts(profiles: np.ndarray, threshold) -> np.ndarray:
    """Vectorized ALERT over a fleet's predicted-profile matrix.

    Row ``i`` of the result is bitwise ``compute_alert(profiles[i],
    threshold[i])`` — clip, row-max, threshold gate are the same IEEE
    operations applied element-wise.  *threshold* may be a scalar (shared
    THRESHOLD) or a length-``n`` vector (per-VM configs).
    """
    w = np.clip(np.asarray(profiles, dtype=np.float64), 0.0, 1.0)
    if w.ndim != 2 or w.shape[1] == 0:
        raise ConfigurationError(f"profiles must be (n, R) with R >= 1, got {w.shape}")
    thr = np.asarray(threshold, dtype=np.float64)
    if thr.ndim not in (0, 1) or (thr.ndim == 1 and thr.shape[0] != w.shape[0]):
        raise ConfigurationError(
            f"threshold must be scalar or length {w.shape[0]}, got shape {thr.shape}"
        )
    if np.any(thr <= 0.0) or np.any(thr > 1.0):
        raise ConfigurationError(f"thresholds must be in (0, 1], got {thr}")
    m = w.max(axis=1)
    return np.where(m > thr, m, 0.0)


@dataclass(frozen=True)
class Alert:
    """One ALERT message delivered to a shim.

    Attributes
    ----------
    kind:
        Which of the three Alg. 1 cases applies.
    rack:
        Delegation node the alert is addressed to.
    magnitude:
        The ALERT value (``max(W)`` for servers, normalized queue occupancy
        for switches); always > 0 — zero alerts are simply not sent.
    vm, host, switch:
        Origin coordinates, filled according to *kind*.
    time:
        Collection round the alert was raised in.
    """

    kind: AlertKind
    rack: int
    magnitude: float
    time: int = 0
    vm: Optional[int] = None
    host: Optional[int] = None
    switch: Optional[int] = None

    def __post_init__(self) -> None:
        if self.magnitude <= 0.0:
            raise ConfigurationError(
                f"alerts carry positive magnitude, got {self.magnitude}"
            )
        if self.kind is AlertKind.SERVER and self.host is None:
            raise ConfigurationError("server alert needs a host id")
        if self.kind is AlertKind.OUTER_SWITCH and self.switch is None:
            raise ConfigurationError("outer-switch alert needs a switch id")
