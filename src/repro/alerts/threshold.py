"""Alert thresholds and monitoring cadence.

The paper's running example flags a server whose CPU or memory utilization
"reaches up to 90 %", so the default THRESHOLD is 0.9 on the normalized
profile scale.  ``collection_period`` is the ``T`` of "delegated controller
collects alerts from all VMs in its dominating range every T seconds".
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError

__all__ = ["AlertConfig"]


@dataclass(frozen=True)
class AlertConfig:
    """Tunables of the pre-alert mechanism.

    Attributes
    ----------
    threshold:
        THRESHOLD on normalized profile components (paper: 0.9).
    horizon:
        Forecast look-ahead in collection periods (the T-seconds-ahead
        prediction; 1 = one-step-ahead).
    collection_period:
        Seconds between shim collection rounds (``T``); informational —
        the simulator advances in rounds, each representing one period.
    queue_threshold:
        Normalized ToR/switch queue occupancy that signals congestion.
    """

    threshold: float = 0.9
    horizon: int = 1
    collection_period: float = 60.0
    queue_threshold: float = 0.8

    def __post_init__(self) -> None:
        if not (0.0 < self.threshold <= 1.0):
            raise ConfigurationError(f"threshold must be in (0, 1], got {self.threshold}")
        if self.horizon < 1:
            raise ConfigurationError(f"horizon must be >= 1, got {self.horizon}")
        if self.collection_period <= 0:
            raise ConfigurationError(
                f"collection_period must be positive, got {self.collection_period}"
            )
        if not (0.0 < self.queue_threshold <= 1.0):
            raise ConfigurationError(
                f"queue_threshold must be in (0, 1], got {self.queue_threshold}"
            )
