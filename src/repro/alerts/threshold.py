"""Alert thresholds and monitoring cadence.

The paper's running example flags a server whose CPU or memory utilization
"reaches up to 90 %", so the default THRESHOLD is 0.9 on the normalized
profile scale.  ``collection_period`` is the ``T`` of "delegated controller
collects alerts from all VMs in its dominating range every T seconds".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import ConfigurationError

__all__ = ["AlertConfig", "confidence_stance", "migration_expense"]


@dataclass(frozen=True)
class AlertConfig:
    """Tunables of the pre-alert mechanism.

    Attributes
    ----------
    threshold:
        THRESHOLD on normalized profile components (paper: 0.9).
    horizon:
        Forecast look-ahead in collection periods (the T-seconds-ahead
        prediction; 1 = one-step-ahead).
    collection_period:
        Seconds between shim collection rounds (``T``); informational —
        the simulator advances in rounds, each representing one period.
    queue_threshold:
        Normalized ToR/switch queue occupancy that signals congestion.
    confidence_gate:
        Confidence-aware ALERT evaluation (off by default; off is
        byte-identical to the historical gate).  When on, the THRESHOLD
        comparison moves from the point forecast to an interval bound
        chosen by :func:`confidence_stance` — the *upper* bound when
        capacity headroom is cheap (hair-trigger: a speculative migration
        costs little), the *lower* bound when the precopy model says a
        migration is expensive (conservative: only act when even the
        optimistic forecast crosses the line).
    interval_alpha:
        Prediction-interval level used by the gate (band covers
        ``1 - interval_alpha``).
    cheap_headroom:
        Mean free-capacity fraction at or above which migrations are
        considered cheap and the gate goes hair-trigger.
    expensive_migration_s:
        Precopy-timeline total (seconds) at or above which a migration is
        considered expensive and the gate goes conservative.  Expense
        wins over headroom when both signals are present.
    """

    threshold: float = 0.9
    horizon: int = 1
    collection_period: float = 60.0
    queue_threshold: float = 0.8
    confidence_gate: bool = False
    interval_alpha: float = 0.2
    cheap_headroom: float = 0.35
    expensive_migration_s: float = 45.0

    def __post_init__(self) -> None:
        if not (0.0 < self.threshold <= 1.0):
            raise ConfigurationError(f"threshold must be in (0, 1], got {self.threshold}")
        if self.horizon < 1:
            raise ConfigurationError(f"horizon must be >= 1, got {self.horizon}")
        if self.collection_period <= 0:
            raise ConfigurationError(
                f"collection_period must be positive, got {self.collection_period}"
            )
        if not (0.0 < self.queue_threshold <= 1.0):
            raise ConfigurationError(
                f"queue_threshold must be in (0, 1], got {self.queue_threshold}"
            )
        if not (0.0 < self.interval_alpha < 1.0):
            raise ConfigurationError(
                f"interval_alpha must be in (0, 1), got {self.interval_alpha}"
            )
        if not (0.0 <= self.cheap_headroom <= 1.0):
            raise ConfigurationError(
                f"cheap_headroom must be in [0, 1], got {self.cheap_headroom}"
            )
        if self.expensive_migration_s <= 0:
            raise ConfigurationError(
                f"expensive_migration_s must be positive, got "
                f"{self.expensive_migration_s}"
            )


def confidence_stance(
    config: AlertConfig,
    headroom: Optional[float] = None,
    migration_cost_s: Optional[float] = None,
) -> str:
    """Which interval bound the ALERT gate should evaluate.

    Returns ``"mean"`` (the historical point-forecast gate), ``"upper"``
    (hair-trigger) or ``"lower"`` (conservative).  ``None`` signals leave
    the corresponding lever neutral; with the gate disabled the stance is
    always ``"mean"``.
    """
    if not config.confidence_gate:
        return "mean"
    if (
        migration_cost_s is not None
        and migration_cost_s >= config.expensive_migration_s
    ):
        return "lower"
    if headroom is not None and headroom >= config.cheap_headroom:
        return "upper"
    return "mean"


def migration_expense(
    memory: float, dirty_rate: float, bandwidth: float, **kwargs
) -> float:
    """Expected migration cost in seconds from the precopy model.

    Thin bridge to :func:`repro.costs.precopy.precopy_timeline` returning
    the timeline total — the ``migration_cost_s`` signal of
    :func:`confidence_stance`.
    """
    from repro.costs.precopy import precopy_timeline

    return float(precopy_timeline(memory, dirty_rate, bandwidth, **kwargs).total)
