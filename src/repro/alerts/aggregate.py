"""Host- and rack-level workload profile aggregation.

Shims reason about servers and ToRs, not individual VMs: a host's
effective profile is the capacity-weighted mean of its VMs' profiles
(a saturated big VM matters more than a saturated tiny one), and a rack's
traffic through its ToR is the sum of its VMs' TRF components.  These
rollups are what Sec. III-B's "feedbacks piggyback the value of target
items" carry upward.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.cluster.cluster import Cluster
from repro.cluster.placement import Placement
from repro.cluster.resources import NUM_RESOURCES, ResourceKind
from repro.errors import ConfigurationError

__all__ = [
    "host_profiles",
    "rack_profiles",
    "rack_uplink_traffic",
    "hottest_resource",
]


def _check_profiles(placement: Placement, vm_profiles: np.ndarray) -> np.ndarray:
    p = np.asarray(vm_profiles, dtype=np.float64)
    if p.shape != (placement.num_vms, NUM_RESOURCES):
        raise ConfigurationError(
            f"vm_profiles must be ({placement.num_vms}, {NUM_RESOURCES}), got {p.shape}"
        )
    if ((p < 0) | (p > 1)).any():
        raise ConfigurationError("profile values must lie in [0, 1]")
    return p


def host_profiles(placement: Placement, vm_profiles: np.ndarray) -> np.ndarray:
    """Capacity-weighted mean profile per host, ``(hosts, NUM_RESOURCES)``.

    Hosts with no VMs report an all-zero profile.
    """
    p = _check_profiles(placement, vm_profiles)
    weights = placement.vm_capacity.astype(np.float64)
    out = np.zeros((placement.num_hosts, NUM_RESOURCES))
    denom = np.bincount(placement.vm_host, weights=weights, minlength=placement.num_hosts)
    for r in range(NUM_RESOURCES):
        num = np.bincount(
            placement.vm_host, weights=weights * p[:, r], minlength=placement.num_hosts
        )
        nz = denom > 0
        out[nz, r] = num[nz] / denom[nz]
    return out


def rack_profiles(placement: Placement, vm_profiles: np.ndarray) -> np.ndarray:
    """Capacity-weighted mean profile per rack, ``(racks, NUM_RESOURCES)``."""
    p = _check_profiles(placement, vm_profiles)
    racks = placement.host_rack[placement.vm_host]
    weights = placement.vm_capacity.astype(np.float64)
    out = np.zeros((placement.num_racks, NUM_RESOURCES))
    denom = np.bincount(racks, weights=weights, minlength=placement.num_racks)
    for r in range(NUM_RESOURCES):
        num = np.bincount(
            racks, weights=weights * p[:, r], minlength=placement.num_racks
        )
        nz = denom > 0
        out[nz, r] = num[nz] / denom[nz]
    return out


def rack_uplink_traffic(placement: Placement, vm_profiles: np.ndarray) -> np.ndarray:
    """Capacity-weighted TRF sum per rack — the ToR uplink demand proxy.

    This is the quantity the shim compares against ``β · ToR capacity``
    (Eq. 10) when deciding whether the rack as a whole must shed load.
    """
    p = _check_profiles(placement, vm_profiles)
    racks = placement.host_rack[placement.vm_host]
    demand = placement.vm_capacity * p[:, int(ResourceKind.TRF)]
    return np.bincount(racks, weights=demand, minlength=placement.num_racks)


def hottest_resource(profile: np.ndarray) -> ResourceKind:
    """Which resource dominates a profile row (ties → lowest index)."""
    p = np.asarray(profile, dtype=np.float64).ravel()
    if p.shape[0] != NUM_RESOURCES:
        raise ConfigurationError(
            f"profile must have {NUM_RESOURCES} entries, got {p.shape[0]}"
        )
    return ResourceKind(int(np.argmax(p)))
