"""Profiling hooks: wall-clock section timers with per-round breakdowns.

The engine opens one round window per management round; the migration
machinery wraps its hot stages (``priority``, ``matching``, ``request``,
``commit``, ``reroute``, ``local_search``) in
:meth:`Profiler.section`.  The accumulated seconds surface as
``RoundSummary.timings`` and — via ``Profiler.totals`` — as the CLI's
``--json`` timing breakdown.

With ``Profiler(record_spans=True)`` each section entry/exit is also
recorded as a :class:`Span` — nested, since sections open inside other
sections (``matching`` inside a shim's round inside the engine round) —
and the span list exports to Chrome/Perfetto ``trace_event`` JSON via
:func:`repro.obs.export.chrome_trace`, rendering a round as a
flamegraph.  Span recording is off by default: the flat accumulators
stay the zero-overhead production path.

:data:`NULL_PROFILER` is the disabled singleton: its ``section`` returns
a shared re-entrant no-op context manager, so a disabled profiler costs
one method call and no timer reads.
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter
from typing import Dict, List, Optional

__all__ = ["Profiler", "NullProfiler", "NULL_PROFILER", "Span"]


@dataclass
class Span:
    """One recorded section execution, positioned in the nesting tree.

    ``start``/``duration`` are ``perf_counter`` seconds relative to the
    profiler's construction; ``depth`` is the section-stack depth at
    entry (0 = top level); ``parent`` indexes the enclosing span in
    :attr:`Profiler.spans` (``None`` at top level); ``round`` is the
    management-round index active when the span opened.
    """

    name: str
    start: float
    duration: float
    depth: int
    parent: Optional[int]
    round: Optional[int]


class _NullSection:
    """Shared no-op context manager (re-entrant, stateless)."""

    __slots__ = ()

    def __enter__(self) -> "_NullSection":
        return self

    def __exit__(self, *exc) -> None:
        pass


_NULL_SECTION = _NullSection()


class NullProfiler:
    """Disabled profiler: sections cost one call, rounds record nothing."""

    enabled: bool = False

    def section(self, name: str) -> _NullSection:
        return _NULL_SECTION

    def add(self, name: str, elapsed: float) -> None:
        pass

    def begin_round(self, index: Optional[int] = None) -> None:
        pass

    def round_timings(self) -> Dict[str, float]:
        return {}

    @property
    def totals(self) -> Dict[str, float]:
        return {}


NULL_PROFILER = NullProfiler()
"""Shared module-level disabled profiler."""


class _Section:
    __slots__ = ("_profiler", "_name", "_t0", "_index")

    def __init__(self, profiler: "Profiler", name: str) -> None:
        self._profiler = profiler
        self._name = name
        self._t0 = 0.0
        self._index = -1

    def __enter__(self) -> "_Section":
        self._t0 = perf_counter()
        if self._profiler._record_spans:
            self._index = self._profiler._open_span(self._name, self._t0)
        return self

    def __exit__(self, *exc) -> None:
        t1 = perf_counter()
        self._profiler._add(self._name, t1 - self._t0)
        if self._index >= 0:
            self._profiler._close_span(self._index, t1)


class Profiler:
    """Accumulating wall-clock section timer.

    ``totals`` holds seconds per section since construction; the
    per-round window (``begin_round`` / ``round_timings``) holds the same
    breakdown for the current round only.  With ``record_spans=True``
    every section execution additionally lands on :attr:`spans` as a
    nested :class:`Span` (see :func:`repro.obs.export.chrome_trace`).
    """

    enabled: bool = True

    def __init__(self, *, record_spans: bool = False) -> None:
        self.totals: Dict[str, float] = {}
        self.counts: Dict[str, int] = {}
        self._round: Optional[Dict[str, float]] = None
        self._record_spans = record_spans
        self.spans: List[Span] = []
        self._stack: List[int] = []
        self._epoch = perf_counter()
        self.current_round: Optional[int] = None

    @property
    def record_spans(self) -> bool:
        return self._record_spans

    def _add(self, name: str, elapsed: float) -> None:
        self.totals[name] = self.totals.get(name, 0.0) + elapsed
        self.counts[name] = self.counts.get(name, 0) + 1
        if self._round is not None:
            self._round[name] = self._round.get(name, 0.0) + elapsed

    # -- span bookkeeping (only touched when record_spans is on) ------- #
    def _open_span(self, name: str, t0: float) -> int:
        index = len(self.spans)
        self.spans.append(
            Span(
                name=name,
                start=t0 - self._epoch,
                duration=0.0,
                depth=len(self._stack),
                parent=self._stack[-1] if self._stack else None,
                round=self.current_round,
            )
        )
        self._stack.append(index)
        return index

    def _close_span(self, index: int, t1: float) -> None:
        span = self.spans[index]
        span.duration = t1 - self._epoch - span.start
        if self._stack and self._stack[-1] == index:
            self._stack.pop()

    def section(self, name: str) -> _Section:
        """Context manager timing one block under *name*."""
        return _Section(self, name)

    def add(self, name: str, elapsed: float) -> None:
        """Record externally measured seconds under *name*.

        Used by the parallel plan phase: workers time their own sections
        locally (the shared profiler is not touched off the main thread)
        and the engine folds the measurements in afterwards.  When spans
        are recorded, the fold lands as a zero-depth span ending *now* —
        the true worker-local start is not observable from this thread.
        """
        self._add(name, elapsed)
        if self._record_spans:
            end = perf_counter() - self._epoch
            self.spans.append(
                Span(
                    name=name,
                    start=max(0.0, end - elapsed),
                    duration=elapsed,
                    depth=len(self._stack),
                    parent=self._stack[-1] if self._stack else None,
                    round=self.current_round,
                )
            )

    # ------------------------------------------------------------------ #
    def begin_round(self, index: Optional[int] = None) -> None:
        """Reset the per-round window (engine calls this at round start).

        *index* labels subsequent spans with the management-round number;
        older callers that pass nothing keep round-less spans.
        """
        self._round = {}
        if index is not None:
            self.current_round = index

    def round_timings(self) -> Dict[str, float]:
        """Seconds per section accumulated since ``begin_round``."""
        return dict(self._round) if self._round is not None else {}

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready lifetime breakdown."""
        return {
            name: {"seconds": self.totals[name], "calls": self.counts[name]}
            for name in self.totals
        }
