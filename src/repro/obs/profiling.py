"""Profiling hooks: wall-clock section timers with per-round breakdowns.

The engine opens one round window per management round; the migration
machinery wraps its hot stages (``priority``, ``matching``, ``request``,
``commit``, ``reroute``, ``local_search``) in
:meth:`Profiler.section`.  The accumulated seconds surface as
``RoundSummary.timings`` and — via ``Profiler.totals`` — as the CLI's
``--json`` timing breakdown.

:data:`NULL_PROFILER` is the disabled singleton: its ``section`` returns
a shared re-entrant no-op context manager, so a disabled profiler costs
one method call and no timer reads.
"""

from __future__ import annotations

from time import perf_counter
from typing import Dict, Optional

__all__ = ["Profiler", "NullProfiler", "NULL_PROFILER"]


class _NullSection:
    """Shared no-op context manager (re-entrant, stateless)."""

    __slots__ = ()

    def __enter__(self) -> "_NullSection":
        return self

    def __exit__(self, *exc) -> None:
        pass


_NULL_SECTION = _NullSection()


class NullProfiler:
    """Disabled profiler: sections cost one call, rounds record nothing."""

    enabled: bool = False

    def section(self, name: str) -> _NullSection:
        return _NULL_SECTION

    def add(self, name: str, elapsed: float) -> None:
        pass

    def begin_round(self) -> None:
        pass

    def round_timings(self) -> Dict[str, float]:
        return {}

    @property
    def totals(self) -> Dict[str, float]:
        return {}


NULL_PROFILER = NullProfiler()
"""Shared module-level disabled profiler."""


class _Section:
    __slots__ = ("_profiler", "_name", "_t0")

    def __init__(self, profiler: "Profiler", name: str) -> None:
        self._profiler = profiler
        self._name = name
        self._t0 = 0.0

    def __enter__(self) -> "_Section":
        self._t0 = perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self._profiler._add(self._name, perf_counter() - self._t0)


class Profiler:
    """Accumulating wall-clock section timer.

    ``totals`` holds seconds per section since construction; the
    per-round window (``begin_round`` / ``round_timings``) holds the same
    breakdown for the current round only.
    """

    enabled: bool = True

    def __init__(self) -> None:
        self.totals: Dict[str, float] = {}
        self.counts: Dict[str, int] = {}
        self._round: Optional[Dict[str, float]] = None

    def _add(self, name: str, elapsed: float) -> None:
        self.totals[name] = self.totals.get(name, 0.0) + elapsed
        self.counts[name] = self.counts.get(name, 0) + 1
        if self._round is not None:
            self._round[name] = self._round.get(name, 0.0) + elapsed

    def section(self, name: str) -> _Section:
        """Context manager timing one block under *name*."""
        return _Section(self, name)

    def add(self, name: str, elapsed: float) -> None:
        """Record externally measured seconds under *name*.

        Used by the parallel plan phase: workers time their own sections
        locally (the shared profiler is not touched off the main thread)
        and the engine folds the measurements in afterwards.
        """
        self._add(name, elapsed)

    # ------------------------------------------------------------------ #
    def begin_round(self) -> None:
        """Reset the per-round window (engine calls this at round start)."""
        self._round = {}

    def round_timings(self) -> Dict[str, float]:
        """Seconds per section accumulated since ``begin_round``."""
        return dict(self._round) if self._round is not None else {}

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready lifetime breakdown."""
        return {
            name: {"seconds": self.totals[name], "calls": self.counts[name]}
            for name in self.totals
        }
