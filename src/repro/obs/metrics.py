"""Metrics registry: labeled counters, gauges and histograms.

The registry is the simulator's single numeric scoreboard.  Decision
sites increment labeled instruments (e.g. ``requests_total{rack=3}``);
:class:`RoundSummary <repro.sim.engine.RoundSummary>` and the CLI read
round totals back through :class:`MetricsScope` instead of re-deriving
them with ad-hoc sums.

Design notes
------------
* Instruments are get-or-create: ``registry.counter(name, **labels)``
  always returns the same object for the same ``(name, labels)`` key, so
  hot paths hoist the lookup out of their loops.
* :meth:`MetricsRegistry.scope` opens a window during which every
  counter increment and histogram observation is *also* accumulated into
  the scope, per instrument, starting from exactly ``0.0``.  Scope totals
  over a round therefore reproduce the engine's historical per-report
  summation order bit-for-bit (each label's partial sum accumulates
  sequentially, and the cross-label total adds the partials in
  first-touch order) — which is what lets ``RoundSummary`` read from the
  registry without changing seed numerics.
* A name registered as one instrument type cannot be re-registered as
  another — that raises :class:`~repro.errors.ObservabilityError`.
"""

from __future__ import annotations

import math
import random
import zlib
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.errors import ObservabilityError

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry", "MetricsScope"]

RESERVOIR_SIZE = 512
"""Bounded per-histogram sample reservoir (Vitter's Algorithm R)."""

LabelKey = Tuple[Tuple[str, str], ...]
MetricKey = Tuple[str, LabelKey]


def _label_key(labels: Dict[str, object]) -> LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class Counter:
    """Monotonically non-decreasing sum."""

    def __init__(self, registry: "MetricsRegistry", key: MetricKey) -> None:
        self._registry = registry
        self._key = key
        self.value: float = 0.0

    @property
    def name(self) -> str:
        return self._key[0]

    @property
    def labels(self) -> Dict[str, str]:
        return dict(self._key[1])

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ObservabilityError(
                f"counter {self.name} cannot decrease (inc({amount}))"
            )
        self.value += amount
        self._registry._record(self._key, amount)


class Gauge:
    """Point-in-time value (can move both ways)."""

    def __init__(self, registry: "MetricsRegistry", key: MetricKey) -> None:
        self._key = key
        self.value: float = 0.0

    @property
    def name(self) -> str:
        return self._key[0]

    @property
    def labels(self) -> Dict[str, str]:
        return dict(self._key[1])

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class Histogram:
    """Streaming distribution: count/sum/min/max plus optional buckets.

    Quantiles come from a bounded reservoir (Algorithm R, capacity
    :data:`RESERVOIR_SIZE`): memory stays O(1) per histogram no matter
    how many observations stream through, unlike an unbounded sample
    list.  The reservoir RNG is seeded from the instrument's formatted
    key via CRC-32 — *not* Python's per-process-salted ``hash()`` — so
    identical observation streams yield identical quantiles run-to-run.

    Parameters
    ----------
    buckets:
        Optional ascending upper bounds; observations count into the
        first bucket whose bound is >= the value (a final implicit
        ``+inf`` bucket catches the rest).
    """

    def __init__(
        self,
        registry: "MetricsRegistry",
        key: MetricKey,
        buckets: Optional[Sequence[float]] = None,
    ) -> None:
        self._registry = registry
        self._key = key
        self.count: int = 0
        self.sum: float = 0.0
        self.min: float = math.inf
        self.max: float = -math.inf
        self.buckets: Optional[Tuple[float, ...]] = (
            tuple(buckets) if buckets is not None else None
        )
        if self.buckets is not None and list(self.buckets) != sorted(self.buckets):
            raise ObservabilityError(
                f"histogram {key[0]}: buckets must be ascending, got {buckets}"
            )
        self.bucket_counts: List[int] = (
            [0] * (len(self.buckets) + 1) if self.buckets is not None else []
        )
        self._reservoir: List[float] = []
        self._rng = random.Random(zlib.crc32(_format_key(key).encode()))

    @property
    def name(self) -> str:
        return self._key[0]

    @property
    def labels(self) -> Dict[str, str]:
        return dict(self._key[1])

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def observe(self, value: float) -> None:
        v = float(value)
        self.count += 1
        self.sum += v
        if v < self.min:
            self.min = v
        if v > self.max:
            self.max = v
        if self.buckets is not None:
            for i, bound in enumerate(self.buckets):
                if v <= bound:
                    self.bucket_counts[i] += 1
                    break
            else:
                self.bucket_counts[-1] += 1
        if len(self._reservoir) < RESERVOIR_SIZE:
            self._reservoir.append(v)
        else:
            j = self._rng.randrange(self.count)
            if j < RESERVOIR_SIZE:
                self._reservoir[j] = v
        self._registry._record(self._key, v)

    def quantile(self, q: float) -> float:
        """Reservoir estimate of the *q*-quantile (0 <= q <= 1).

        Exact while the stream fits the reservoir (fewer than
        :data:`RESERVOIR_SIZE` observations); a uniform-sample estimate
        beyond.  Linear interpolation between order statistics; ``0.0``
        on an empty histogram.
        """
        if not 0.0 <= q <= 1.0:
            raise ObservabilityError(f"quantile {q} outside [0, 1]")
        if not self._reservoir:
            return 0.0
        ordered = sorted(self._reservoir)
        pos = q * (len(ordered) - 1)
        lo = int(pos)
        hi = min(lo + 1, len(ordered) - 1)
        frac = pos - lo
        return ordered[lo] * (1.0 - frac) + ordered[hi] * frac

    def quantiles(self) -> Dict[str, float]:
        """The standard reporting trio: ``{"p50", "p95", "p99"}``."""
        ordered = sorted(self._reservoir)
        out: Dict[str, float] = {}
        for label, q in (("p50", 0.5), ("p95", 0.95), ("p99", 0.99)):
            if not ordered:
                out[label] = 0.0
                continue
            pos = q * (len(ordered) - 1)
            lo = int(pos)
            hi = min(lo + 1, len(ordered) - 1)
            frac = pos - lo
            out[label] = ordered[lo] * (1.0 - frac) + ordered[hi] * frac
        return out


class MetricsScope:
    """Per-instrument accumulation window (one management round).

    Opened by :meth:`MetricsRegistry.scope`; while active, every counter
    increment and histogram observation lands here too, each instrument's
    partial starting from exactly ``0.0``.
    """

    def __init__(self) -> None:
        self._values: Dict[MetricKey, float] = {}
        self._counts: Dict[MetricKey, int] = {}

    def _record(self, key: MetricKey, amount: float) -> None:
        self._values[key] = self._values.get(key, 0.0) + amount
        self._counts[key] = self._counts.get(key, 0) + 1

    # ------------------------------------------------------------------ #
    def value(self, name: str, **labels: object) -> float:
        """This window's sum for one exact ``(name, labels)`` instrument."""
        return self._values.get((name, _label_key(labels)), 0.0)

    def total(self, name: str) -> float:
        """This window's sum for *name* across all label sets.

        Partials are added in first-touch order, mirroring the order the
        engine historically summed per-shim reports in.
        """
        out = 0.0
        for (n, _), v in self._values.items():
            if n == name:
                out += v
        return out

    def count(self, name: str) -> int:
        """Number of recordings for *name* across all label sets."""
        return sum(c for (n, _), c in self._counts.items() if n == name)

    def by_label(self, name: str, label: str) -> Dict[str, float]:
        """Per-label-value sums for *name* (e.g. per-rack reject counts)."""
        out: Dict[str, float] = {}
        for (n, lk), v in self._values.items():
            if n != name:
                continue
            for k, lv in lk:
                if k == label:
                    out[lv] = out.get(lv, 0.0) + v
        return out

    def as_dict(self) -> Dict[str, float]:
        """Flat ``name{k=v,...} -> sum`` mapping of the window."""
        return {_format_key(k): v for k, v in self._values.items()}


def _format_key(key: MetricKey) -> str:
    name, labels = key
    if not labels:
        return name
    inner = ",".join(f"{k}={v}" for k, v in labels)
    return f"{name}{{{inner}}}"


class MetricsRegistry:
    """Get-or-create store of labeled instruments."""

    def __init__(self) -> None:
        self._metrics: Dict[MetricKey, object] = {}
        self._types: Dict[str, type] = {}
        self._scopes: List[MetricsScope] = []

    # ------------------------------------------------------------------ #
    def _get(self, cls: type, name: str, labels: Dict[str, object], **kw):
        if not name:
            raise ObservabilityError("metric name must be non-empty")
        seen = self._types.get(name)
        if seen is not None and seen is not cls:
            raise ObservabilityError(
                f"metric {name!r} already registered as {seen.__name__}, "
                f"cannot re-register as {cls.__name__}"
            )
        key: MetricKey = (name, _label_key(labels))
        metric = self._metrics.get(key)
        if metric is None:
            metric = cls(self, key, **kw)
            self._metrics[key] = metric
            self._types[name] = cls
        return metric

    def counter(self, name: str, **labels: object) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels: object) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(
        self, name: str, *, buckets: Optional[Sequence[float]] = None, **labels: object
    ) -> Histogram:
        return self._get(Histogram, name, labels, buckets=buckets)

    # ------------------------------------------------------------------ #
    def _record(self, key: MetricKey, amount: float) -> None:
        for scope in self._scopes:
            scope._record(key, amount)

    class _ScopeContext:
        def __init__(self, registry: "MetricsRegistry") -> None:
            self._registry = registry
            self.scope = MetricsScope()

        def __enter__(self) -> MetricsScope:
            self._registry._scopes.append(self.scope)
            return self.scope

        def __exit__(self, *exc) -> None:
            self._registry._scopes.remove(self.scope)

    def scope(self) -> "MetricsRegistry._ScopeContext":
        """Open an accumulation window (used per management round)."""
        return MetricsRegistry._ScopeContext(self)

    # ------------------------------------------------------------------ #
    def instruments(self) -> Iterator[object]:
        """Every registered instrument (counters, gauges, histograms)."""
        return iter(self._metrics.values())

    def series(self, name: str) -> Dict[str, object]:
        """All instruments named *name*, keyed by their formatted labels."""
        return {
            _format_key(k): m for k, m in self._metrics.items() if k[0] == name
        }

    def total(self, name: str) -> float:
        """Cumulative sum of a counter family across all label sets."""
        out = 0.0
        for (n, _), m in self._metrics.items():
            if n == name:
                out += m.value if isinstance(m, (Counter, Gauge)) else m.sum
        return out

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready snapshot of every instrument."""
        out: Dict[str, object] = {}
        for key, m in self._metrics.items():
            label = _format_key(key)
            if isinstance(m, Counter):
                out[label] = m.value
            elif isinstance(m, Gauge):
                out[label] = m.value
            else:
                assert isinstance(m, Histogram)
                entry: Dict[str, object] = {
                    "count": m.count,
                    "sum": m.sum,
                    "mean": m.mean,
                }
                if m.count:
                    entry["min"] = m.min
                    entry["max"] = m.max
                    entry.update(m.quantiles())
                if m.buckets is not None:
                    entry["buckets"] = {
                        **{str(b): c for b, c in zip(m.buckets, m.bucket_counts)},
                        "+inf": m.bucket_counts[-1],
                    }
                out[label] = entry
        return out
