"""Exporters: Prometheus text exposition and Chrome ``trace_event`` JSON.

Two read-only views over the observability state:

* :func:`prometheus_text` renders a
  :class:`~repro.obs.metrics.MetricsRegistry` in the Prometheus text
  exposition format (version 0.0.4) — counters and gauges as plain
  samples, reservoir histograms as summaries with ``quantile`` labels,
  bucketed histograms as native Prometheus histograms with cumulative
  ``le`` buckets.
* :func:`chrome_trace` renders a span-recording
  :class:`~repro.obs.profiling.Profiler` as Chrome/Perfetto
  ``trace_event`` JSON (complete ``"ph": "X"`` events), so
  ``chrome://tracing`` or https://ui.perfetto.dev draws a management
  round as a flamegraph.

Both are pure functions over already-collected state; neither touches
the simulation hot path.
"""

from __future__ import annotations

import json
from typing import IO, Dict, List, Optional

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.profiling import Profiler

__all__ = ["prometheus_text", "chrome_trace", "write_chrome_trace"]

_PROM_PREFIX = "sheriff_"


def _prom_name(name: str) -> str:
    """Metric name with the exporter namespace prefix applied once."""
    if name.startswith(_PROM_PREFIX):
        return name
    return _PROM_PREFIX + name


def _escape_label_value(value: str) -> str:
    """Escape a label value per the exposition format: ``\\``, ``"``, newline."""
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _prom_labels(labels: Dict[str, str], extra: Optional[Dict[str, str]] = None) -> str:
    merged = dict(labels)
    if extra:
        merged.update(extra)
    if not merged:
        return ""
    inner = ",".join(
        f'{k}="{_escape_label_value(v)}"' for k, v in sorted(merged.items())
    )
    return "{" + inner + "}"


_HELP: Dict[str, str] = {
    "sheriff_rounds_total": "Management rounds executed.",
    "sheriff_alerts_total": "ALERT messages delivered to shims.",
    "sheriff_shim_alerts_total": "Alerts processed per shim.",
    "sheriff_requests_sent_total": "Migration REQUESTs sent (Alg. 3).",
    "sheriff_requests_acked_total": "Migration REQUESTs ACKed (Alg. 4).",
    "sheriff_requests_rejected_total": "Migration REQUESTs rejected.",
    "sheriff_migration_cost_total": "Summed Eq. (1) cost of accepted moves.",
    "sheriff_search_space_total": "Candidate (VM, host) pairs examined.",
    "sheriff_unplaced_total": "Candidates no shim could place.",
    "sheriff_migrations_committed_total": "Reservations committed.",
    "sheriff_migrations_landed_total": "VMs running at their destination.",
    "sheriff_flows_rerouted_total": "Flows rerouted around hot switches.",
    "sheriff_reroute_failures_total": "Flow reroutes that found no path.",
    "sheriff_matching_size": "Rows entering each matching solve.",
    "sheriff_move_cost": "Eq. (1) cost per accepted move.",
    "sheriff_workload_std": "Post-round workload standard deviation.",
    "sheriff_rollbacks_total": "Reservations/migrations rolled back.",
    "sheriff_channel_retries_total": "REQUEST retransmissions (lossy channel).",
    "sheriff_degraded_rounds_total": "Rounds completed in degraded mode.",
    "sheriff_fallback_transitions_total": "Worst-case fallback mode switches.",
    "sheriff_cross_shard_requests_total": "REQUESTs crossing planner shards.",
    "sheriff_slo_violation_minutes_total": (
        "SLO-violation-minutes charged, by tenant class and source."
    ),
    "sheriff_slo_request_latency": (
        "Synthetic request latency implied by SLO charges (ms)."
    ),
    "sheriff_slo_budget_exhausted_total": (
        "Tenant classes that spent their whole SLO error budget."
    ),
}


def _prom_help(pname: str) -> str:
    return _HELP.get(pname, f"Sheriff metric {pname}.")


def _fmt(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    return repr(float(value))


def prometheus_text(registry: MetricsRegistry) -> str:
    """The registry in Prometheus text exposition format.

    Instruments are grouped per family with exactly one ``# HELP`` and
    one ``# TYPE`` line each — even when labeled series of different
    families interleave in registration order; families appear in
    registration order (deterministic for identical runs), label sets in
    registration order within a family.  Label values are escaped per
    the exposition format (backslash, double quote, newline).
    """
    families: Dict[str, List[object]] = {}
    order: List[str] = []
    for metric in registry.instruments():
        name = metric.name  # type: ignore[attr-defined]
        if name not in families:
            families[name] = []
            order.append(name)
        families[name].append(metric)

    lines: List[str] = []
    for name in order:
        members = families[name]
        first = members[0]
        pname = _prom_name(name)
        lines.append(f"# HELP {pname} {_prom_help(pname)}")
        if isinstance(first, Counter):
            lines.append(f"# TYPE {pname} counter")
            for m in members:
                lines.append(f"{pname}{_prom_labels(m.labels)} {_fmt(m.value)}")
        elif isinstance(first, Gauge):
            lines.append(f"# TYPE {pname} gauge")
            for m in members:
                lines.append(f"{pname}{_prom_labels(m.labels)} {_fmt(m.value)}")
        else:
            assert isinstance(first, Histogram)
            if first.buckets is not None:
                lines.append(f"# TYPE {pname} histogram")
                for m in members:
                    cumulative = 0
                    for bound, count in zip(m.buckets, m.bucket_counts):
                        cumulative += count
                        lines.append(
                            f"{pname}_bucket"
                            f"{_prom_labels(m.labels, {'le': _fmt(bound)})} "
                            f"{cumulative}"
                        )
                    cumulative += m.bucket_counts[-1]
                    lines.append(
                        f"{pname}_bucket{_prom_labels(m.labels, {'le': '+Inf'})} "
                        f"{cumulative}"
                    )
                    lines.append(f"{pname}_sum{_prom_labels(m.labels)} {_fmt(m.sum)}")
                    lines.append(f"{pname}_count{_prom_labels(m.labels)} {m.count}")
            else:
                lines.append(f"# TYPE {pname} summary")
                for m in members:
                    qs = m.quantiles()
                    for label, q in (("p50", "0.5"), ("p95", "0.95"), ("p99", "0.99")):
                        lines.append(
                            f"{pname}{_prom_labels(m.labels, {'quantile': q})} "
                            f"{_fmt(qs[label])}"
                        )
                    lines.append(f"{pname}_sum{_prom_labels(m.labels)} {_fmt(m.sum)}")
                    lines.append(f"{pname}_count{_prom_labels(m.labels)} {m.count}")
    return "\n".join(lines) + "\n" if lines else ""


def chrome_trace(profiler: Profiler) -> Dict[str, object]:
    """The profiler's recorded spans as a ``trace_event`` JSON document.

    Spans become complete (``"ph": "X"``) events with microsecond
    timestamps relative to the profiler's epoch; the management-round
    index and nesting depth travel in ``args``.  All spans land on one
    pid/tid — the simulator's decision loop is single-threaded at emit
    time — so the nesting renders purely from time containment, which is
    exactly how the spans were recorded.
    """
    events: List[Dict[str, object]] = []
    for span in profiler.spans:
        args: Dict[str, object] = {"depth": span.depth}
        if span.round is not None:
            args["round"] = span.round
        events.append(
            {
                "name": span.name,
                "ph": "X",
                "ts": round(span.start * 1e6, 3),
                "dur": round(span.duration * 1e6, 3),
                "pid": 1,
                "tid": 1,
                "cat": "sheriff",
                "args": args,
            }
        )
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"exporter": "repro.obs.export.chrome_trace"},
    }


def write_chrome_trace(profiler: Profiler, stream: IO[str]) -> int:
    """Serialize :func:`chrome_trace` to *stream*; returns the span count."""
    doc = chrome_trace(profiler)
    json.dump(doc, stream)
    stream.write("\n")
    return len(doc["traceEvents"])  # type: ignore[arg-type]
