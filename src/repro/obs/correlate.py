"""Lifecycle correlation: causal trace ids across a migration attempt.

The flat event stream answers *what* happened; this module answers *which
attempt* each event belongs to.  A :class:`LifecycleStitcher` rides inside
every enabled tracer's ``emit`` path and stamps two fields onto events:

* ``trace_id`` — the causal chain the event belongs to.  Rack-level
  events (``AlertDelivered``, ``PrioritySelected``, ``FlowRerouted``,
  ``MatchingSolved``) share one *alert-group* id per ``(round, rack)``;
  per-VM protocol events (``RequestSent`` → ``RequestAcked`` /
  ``RequestRejected`` / ``RequestTimedOut`` → ``MigrationCommitted`` →
  ``MigrationAborted`` / ``MigrationLanded``) share one *attempt* id per
  migration attempt; fault events get one id per fault firing.
* ``parent_id`` — on attempt events, the alert-group id of the
  ``PrioritySelected`` invocation that put the VM into the migration set
  (``None`` for attempts minted outside Alg. 2, e.g. emergency
  evacuations off a crashed host).

Id grammar (stable, parseable by the ``repro trace`` CLI):

* alert group:  ``r<round>.k<rack>``
* VM attempt:   ``r<minted_round>.v<vm>``
* fault firing: ``r<round>.f.<fault_kind>.<target>``

Stamping happens at **emit time**, never at event construction.  This is
what makes correlation safe under the parallel plan/execute split: plan
workers queue ``PrioritySelected`` events concurrently, but ids are
minted only when :meth:`ShimManager.execute_plan` replays the queue on
the main thread in deterministic rack order — so the id sequence is
byte-identical to the serial path's.  An attempt id outlives its round
when the migration is in flight (timed engine): the id minted at
selection sticks until ``MigrationLanded``/``MigrationAborted`` closes
the attempt, which is exactly what lets the CLI measure alert→landed
latency in rounds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.obs.events import (
    AlertDelivered,
    FaultInjected,
    FlowRerouted,
    HostCrashed,
    MatchingSolved,
    MigrationAborted,
    MigrationCommitted,
    MigrationLanded,
    PrioritySelected,
    RequestAcked,
    RequestRejected,
    RequestSent,
    RequestTimedOut,
    TraceEvent,
)

__all__ = ["LifecycleStitcher"]


@dataclass
class _Attempt:
    """One open migration attempt (selection → terminal event)."""

    trace_id: str
    parent_id: Optional[str]
    minted_round: Optional[int]
    committed: bool = False


class LifecycleStitcher:
    """Stamps ``trace_id``/``parent_id`` onto events as they are emitted.

    Purely observational: it mutates only the two correlation fields of
    events that are already being recorded, so the tracer-on decision
    path is untouched and the tracer-off path never constructs one.
    """

    def __init__(self) -> None:
        self._round: Optional[int] = None
        self._attempts: Dict[int, _Attempt] = {}

    # ------------------------------------------------------------------ #
    def begin_round(self, index: int) -> None:
        self._round = index

    def _group(self, rack: int) -> str:
        return f"r{self._round}.k{rack}"

    def _mint(self, vm: int, parent: Optional[str]) -> _Attempt:
        attempt = _Attempt(
            trace_id=f"r{self._round}.v{vm}",
            parent_id=parent,
            minted_round=self._round,
        )
        self._attempts[vm] = attempt
        return attempt

    def _select(self, vm: int, parent: str) -> None:
        """A PRIORITY invocation put *vm* into the migration set.

        Mints a fresh attempt unless one is already open for this round
        (two Alg. 2 invocations can select the same VM — first mint wins)
        or the VM is in flight (frozen VMs can still appear in
        ``PrioritySelected.selected``; their committed attempt must keep
        its id until the landing closes it).
        """
        attempt = self._attempts.get(vm)
        if attempt is not None and (
            attempt.committed or attempt.minted_round == self._round
        ):
            return
        self._mint(vm, parent)

    def _attempt_for(self, vm: int) -> _Attempt:
        """The VM's open attempt, minted on first sight if absent.

        First-sight minting covers chains that start outside Alg. 2 —
        emergency evacuations off a crashed host send REQUESTs for VMs no
        PRIORITY ever selected.
        """
        attempt = self._attempts.get(vm)
        if attempt is None:
            attempt = self._mint(vm, None)
        return attempt

    def _close(self, vm: int) -> None:
        self._attempts.pop(vm, None)

    # ------------------------------------------------------------------ #
    def stamp(self, event: TraceEvent) -> None:
        """Assign correlation ids to one event (idempotent per event)."""
        if isinstance(event, AlertDelivered):
            event.trace_id = self._group(event.rack)
        elif isinstance(event, PrioritySelected):
            gid = self._group(event.rack)
            event.trace_id = gid
            for vm in event.selected:
                self._select(int(vm), gid)
        elif isinstance(event, FlowRerouted):
            event.trace_id = self._group(event.rack)
        elif isinstance(event, MatchingSolved):
            if event.rack is not None:
                event.trace_id = self._group(event.rack)
        elif isinstance(
            event, (RequestSent, RequestAcked, RequestRejected, RequestTimedOut)
        ):
            attempt = self._attempt_for(event.vm)
            event.trace_id = attempt.trace_id
            event.parent_id = attempt.parent_id
        elif isinstance(event, MigrationCommitted):
            attempt = self._attempt_for(event.vm)
            attempt.committed = True
            event.trace_id = attempt.trace_id
            event.parent_id = attempt.parent_id
        elif isinstance(event, (MigrationLanded, MigrationAborted)):
            attempt = self._attempt_for(event.vm)
            event.trace_id = attempt.trace_id
            event.parent_id = attempt.parent_id
            self._close(event.vm)
        elif isinstance(event, FaultInjected):
            event.trace_id = f"r{self._round}.f.{event.fault_kind}.{event.target}"
        elif isinstance(event, HostCrashed):
            event.trace_id = f"r{self._round}.f.host_crash.{event.host}"
        # ModelSelected and future kinds: no chain, leave unstamped
