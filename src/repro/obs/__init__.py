"""Observability: structured tracing, metrics and profiling hooks.

Three independent, composable facilities:

* :mod:`repro.obs.events` / :mod:`repro.obs.tracer` — a typed event
  trace of every per-decision step (alert delivery, PRIORITY, matching,
  REQUEST/ACK/REJECT, commits, landings, reroutes, model selection),
  emitted through a zero-cost-when-disabled :class:`Tracer`;
* :mod:`repro.obs.metrics` — a :class:`MetricsRegistry` of labeled
  counters/gauges/histograms that ``RoundSummary`` and the CLI read
  round totals from;
* :mod:`repro.obs.profiling` — wall-clock section timers around
  PRIORITY, Kuhn–Munkres, REQUEST and Local Search, surfaced as the
  per-round timing breakdown, with optional nested-span recording.

On top of these sit the causal layer and its tooling:

* :mod:`repro.obs.correlate` — the :class:`LifecycleStitcher` that
  stamps ``trace_id``/``parent_id`` attempt chains at emit time;
* :mod:`repro.obs.export` — Prometheus text exposition
  (:func:`prometheus_text`) and Chrome/Perfetto ``trace_event`` JSON
  (:func:`chrome_trace`);
* :mod:`repro.obs.analysis` — ``repro trace`` backends: summarize,
  per-VM lifecycle, diff, and the protocol-invariant linter.

See ``docs/observability.md`` for the event schema and metrics
catalogue.
"""

from repro.obs.analysis import (
    LintViolation,
    diff_traces,
    lint_trace,
    summarize_trace,
    vm_lifecycle,
)
from repro.obs.correlate import LifecycleStitcher
from repro.obs.events import (
    EVENT_TYPES,
    AlertDelivered,
    FlowRerouted,
    MatchingSolved,
    MigrationCommitted,
    MigrationLanded,
    ModelSelected,
    PrioritySelected,
    RequestAcked,
    RequestRejected,
    RequestSent,
    TraceEvent,
)
from repro.obs.export import chrome_trace, prometheus_text, write_chrome_trace
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    MetricsScope,
)
from repro.obs.profiling import NULL_PROFILER, NullProfiler, Profiler, Span
from repro.obs.tracer import (
    NULL_TRACER,
    TRACE_SCHEMA_VERSION,
    JsonlTracer,
    NullTracer,
    RecordingTracer,
    Tracer,
    load_trace,
)

__all__ = [
    "TraceEvent",
    "AlertDelivered",
    "PrioritySelected",
    "MatchingSolved",
    "RequestSent",
    "RequestAcked",
    "RequestRejected",
    "MigrationCommitted",
    "MigrationLanded",
    "FlowRerouted",
    "ModelSelected",
    "EVENT_TYPES",
    "Tracer",
    "NullTracer",
    "RecordingTracer",
    "JsonlTracer",
    "NULL_TRACER",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MetricsScope",
    "Profiler",
    "NullProfiler",
    "NULL_PROFILER",
    "Span",
    "LifecycleStitcher",
    "TRACE_SCHEMA_VERSION",
    "load_trace",
    "prometheus_text",
    "chrome_trace",
    "write_chrome_trace",
    "LintViolation",
    "lint_trace",
    "summarize_trace",
    "vm_lifecycle",
    "diff_traces",
]
