"""Observability: structured tracing, metrics and profiling hooks.

Three independent, composable facilities:

* :mod:`repro.obs.events` / :mod:`repro.obs.tracer` — a typed event
  trace of every per-decision step (alert delivery, PRIORITY, matching,
  REQUEST/ACK/REJECT, commits, landings, reroutes, model selection),
  emitted through a zero-cost-when-disabled :class:`Tracer`;
* :mod:`repro.obs.metrics` — a :class:`MetricsRegistry` of labeled
  counters/gauges/histograms that ``RoundSummary`` and the CLI read
  round totals from;
* :mod:`repro.obs.profiling` — wall-clock section timers around
  PRIORITY, Kuhn–Munkres, REQUEST and Local Search, surfaced as the
  per-round timing breakdown.

See ``docs/observability.md`` for the event schema and metrics
catalogue.
"""

from repro.obs.events import (
    EVENT_TYPES,
    AlertDelivered,
    FlowRerouted,
    MatchingSolved,
    MigrationCommitted,
    MigrationLanded,
    ModelSelected,
    PrioritySelected,
    RequestAcked,
    RequestRejected,
    RequestSent,
    TraceEvent,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    MetricsScope,
)
from repro.obs.profiling import NULL_PROFILER, NullProfiler, Profiler
from repro.obs.tracer import (
    NULL_TRACER,
    JsonlTracer,
    NullTracer,
    RecordingTracer,
    Tracer,
)

__all__ = [
    "TraceEvent",
    "AlertDelivered",
    "PrioritySelected",
    "MatchingSolved",
    "RequestSent",
    "RequestAcked",
    "RequestRejected",
    "MigrationCommitted",
    "MigrationLanded",
    "FlowRerouted",
    "ModelSelected",
    "EVENT_TYPES",
    "Tracer",
    "NullTracer",
    "RecordingTracer",
    "JsonlTracer",
    "NULL_TRACER",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MetricsScope",
    "Profiler",
    "NullProfiler",
    "NULL_PROFILER",
]
