"""Trace analysis: summarize, lifecycle reconstruction, diff, and lint.

Pure functions over the event-dict lists produced by
:func:`repro.obs.tracer.load_trace` (or a
:class:`~repro.obs.tracer.RecordingTracer`'s ``as_dict()`` stream).
These back the ``repro trace`` CLI subcommands:

* :func:`summarize_trace` — per-round event counts plus alert→landed
  latency quantiles (in rounds), parsed out of the v2 correlation ids.
* :func:`vm_lifecycle` — one VM's causal chains, grouped per attempt
  ``trace_id`` in emission order: the "where did VM 7 stall?" view.
* :func:`diff_traces` — per-(round, kind) count deltas between two
  traces (chaos vs. clean runs).
* :func:`lint_trace` — the protocol invariant checker.  It doubles as a
  correctness oracle for the faults layer: a trace that passes proves
  the run never half-committed, double-resolved, or planned from a
  silenced rack.

Lint invariants (each violation carries the first offending line):

1. **Resolution** — every ``RequestSent`` resolves to exactly one
   allowed verdict sequence for its ``(vm, dst_host)``: ``Acked``,
   ``Rejected``, ``TimedOut``, or ``Acked → TimedOut`` (the lossy
   channel's lease expiry: the receiver ACKed but every reply leg was
   lost, so the sender times out and the orphan reservation is
   cancelled).  Verdicts with no open send are orphans.
2. **Commit ⊆ acked** — ``MigrationCommitted(vm, dst_host)`` requires
   the latest verdict for that pair in the same round to be an ACK.
3. **Landed ⊆ committed** — ``MigrationLanded`` requires a prior
   ``MigrationCommitted`` for the same ``(vm, dst_host)`` with no
   intervening ``MigrationAborted``.
4. **Down-rack silence** — between a ``shim_down`` fault on rack *k*
   (round *N*, detail ``until-round-X`` or ``until-shim-up``) and its
   recovery, rack *k* emits no ``PrioritySelected`` /
   ``FlowRerouted`` / ``MatchingSolved`` and sources no ``RequestSent``
   (``AlertDelivered`` is exempt: alerts are delivered, then dropped).
5. **Correlation** — in a correlated (schema-2) trace, every protocol
   event carries a ``trace_id`` and all events of one attempt agree on
   it.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

__all__ = [
    "LintViolation",
    "lint_trace",
    "summarize_trace",
    "vm_lifecycle",
    "diff_traces",
]

_ATTEMPT_ID = re.compile(r"^r(\d+)\.v(\d+)$")

_VERDICT_KINDS = ("RequestAcked", "RequestRejected", "RequestTimedOut")
_PROTOCOL_KINDS = _VERDICT_KINDS + (
    "RequestSent",
    "MigrationCommitted",
    "MigrationLanded",
    "MigrationAborted",
)
_ALLOWED_SEQUENCES = (
    ("RequestAcked",),
    ("RequestRejected",),
    ("RequestTimedOut",),
    ("RequestAcked", "RequestTimedOut"),
)


@dataclass
class LintViolation:
    """One broken invariant: which rule, where, and why."""

    rule: str
    line: int
    message: str

    def __str__(self) -> str:  # pragma: no cover - display helper
        return f"[{self.rule}] event #{self.line}: {self.message}"


def _quantile(ordered: Sequence[float], q: float) -> float:
    if not ordered:
        return 0.0
    pos = q * (len(ordered) - 1)
    lo = int(pos)
    hi = min(lo + 1, len(ordered) - 1)
    frac = pos - lo
    return ordered[lo] * (1.0 - frac) + ordered[hi] * frac


# --------------------------------------------------------------------- #
# summarize
# --------------------------------------------------------------------- #
def summarize_trace(events: List[Dict[str, Any]]) -> Dict[str, Any]:
    """Per-round counts and alert→landed latency quantiles.

    Latency is measured in management rounds: for every
    ``MigrationLanded`` whose ``trace_id`` parses as ``r<N>.v<vm>``, the
    attempt took ``landed_round - N`` rounds from selection to landing
    (0 = instant commit in the selecting round).
    """
    per_round: Dict[int, Dict[str, int]] = {}
    totals: Dict[str, int] = {}
    latencies: List[float] = []
    attempts = set()
    slo_by_tenant: Dict[str, float] = {}
    slo_by_source: Dict[str, float] = {}
    # (vm, round) pairs → consecutive-round violation episodes per VM
    slo_vm_rounds: Dict[int, set] = {}
    slo_budget_exhausted: List[str] = []
    for ev in events:
        kind = ev.get("event", "?")
        rnd = ev.get("round")
        totals[kind] = totals.get(kind, 0) + 1
        if isinstance(rnd, int):
            per_round.setdefault(rnd, {})
            per_round[rnd][kind] = per_round[rnd].get(kind, 0) + 1
        if kind == "SloViolation":
            tenant = str(ev.get("tenant", "?"))
            source = str(ev.get("source", "?"))
            minutes = float(ev.get("minutes", 0.0))
            slo_by_tenant[tenant] = slo_by_tenant.get(tenant, 0.0) + minutes
            slo_by_source[source] = slo_by_source.get(source, 0.0) + minutes
            vm = ev.get("vm")
            if isinstance(vm, int) and isinstance(rnd, int):
                slo_vm_rounds.setdefault(vm, set()).add(rnd)
        elif kind == "SloBudgetExhausted":
            slo_budget_exhausted.append(str(ev.get("tenant", "?")))
        tid = ev.get("trace_id")
        if isinstance(tid, str):
            m = _ATTEMPT_ID.match(tid)
            if m:
                attempts.add(tid)
                if kind == "MigrationLanded" and isinstance(rnd, int):
                    latencies.append(float(rnd - int(m.group(1))))
    latencies.sort()
    episode_lengths = sorted(_episode_lengths(slo_vm_rounds))
    summary: Dict[str, Any] = {
        "events": len(events),
        "rounds": len(per_round),
        "attempts": len(attempts),
        "totals": dict(sorted(totals.items())),
        "per_round": {
            str(r): dict(sorted(kinds.items()))
            for r, kinds in sorted(per_round.items())
        },
        "no_landings": totals.get("MigrationLanded", 0) == 0,
        "alert_to_landed_rounds": {
            "count": len(latencies),
            "p50": _quantile(latencies, 0.5),
            "p95": _quantile(latencies, 0.95),
            "p99": _quantile(latencies, 0.99),
            "max": latencies[-1] if latencies else 0.0,
        },
    }
    if slo_by_tenant or slo_budget_exhausted:
        summary["slo"] = {
            "violation_minutes": sum(slo_by_tenant.values()),
            "by_tenant": dict(sorted(slo_by_tenant.items())),
            "by_source": dict(sorted(slo_by_source.items())),
            "episodes": {
                "count": len(episode_lengths),
                "p50_rounds": _quantile(episode_lengths, 0.5),
                "p99_rounds": _quantile(episode_lengths, 0.99),
                "max_rounds": episode_lengths[-1] if episode_lengths else 0.0,
            },
            "budget_exhausted": sorted(set(slo_budget_exhausted)),
        }
    return summary


def _episode_lengths(vm_rounds: Dict[int, set]) -> List[float]:
    """Lengths of each VM's runs of consecutive violating rounds."""
    lengths: List[float] = []
    for rounds in vm_rounds.values():
        ordered = sorted(rounds)
        run = 1
        for prev, cur in zip(ordered, ordered[1:]):
            if cur == prev + 1:
                run += 1
            else:
                lengths.append(float(run))
                run = 1
        lengths.append(float(run))
    return lengths


# --------------------------------------------------------------------- #
# lifecycle
# --------------------------------------------------------------------- #
def vm_lifecycle(events: List[Dict[str, Any]], vm: int) -> Dict[str, Any]:
    """All of one VM's causal chains, grouped per attempt.

    Falls back to the ``vm`` field when a trace is uncorrelated
    (schema 1): those events group under the pseudo-attempt ``"?"``.
    """
    suffix = f".v{vm}"
    chains: Dict[str, List[Dict[str, Any]]] = {}
    order: List[str] = []
    for ev in events:
        tid = ev.get("trace_id")
        attempt: Optional[str] = None
        if isinstance(tid, str) and _ATTEMPT_ID.match(tid) and tid.endswith(suffix):
            attempt = tid
        elif ev.get("vm") == vm and ev.get("event") in _PROTOCOL_KINDS:
            attempt = tid if isinstance(tid, str) else "?"
        if attempt is None:
            continue
        if attempt not in chains:
            chains[attempt] = []
            order.append(attempt)
        chains[attempt].append(ev)
    return {
        "vm": vm,
        "attempts": [
            {
                "trace_id": attempt,
                "parent_id": next(
                    (
                        e["parent_id"]
                        for e in chains[attempt]
                        if e.get("parent_id") is not None
                    ),
                    None,
                ),
                "events": chains[attempt],
                "outcome": chains[attempt][-1].get("event"),
            }
            for attempt in order
        ],
    }


# --------------------------------------------------------------------- #
# diff
# --------------------------------------------------------------------- #
def diff_traces(
    a: List[Dict[str, Any]], b: List[Dict[str, Any]]
) -> Dict[str, Any]:
    """Per-(round, kind) count deltas between two traces.

    Returns only rows where the counts differ; ``delta`` is ``b - a``
    (read: *b* relative to *a*, e.g. chaos relative to clean).
    """

    def census(events: List[Dict[str, Any]]) -> Dict[Tuple[Any, str], int]:
        out: Dict[Tuple[Any, str], int] = {}
        for ev in events:
            key = (ev.get("round"), ev.get("event", "?"))
            out[key] = out.get(key, 0) + 1
        return out

    ca, cb = census(a), census(b)
    rows = []
    for key in sorted(
        set(ca) | set(cb), key=lambda k: (k[0] if k[0] is not None else -1, k[1])
    ):
        va, vb = ca.get(key, 0), cb.get(key, 0)
        if va != vb:
            rows.append(
                {"round": key[0], "event": key[1], "a": va, "b": vb, "delta": vb - va}
            )
    return {
        "a_events": len(a),
        "b_events": len(b),
        "identical": not rows,
        "rows": rows,
    }


# --------------------------------------------------------------------- #
# lint
# --------------------------------------------------------------------- #
@dataclass
class _OpenSend:
    line: int
    round: Optional[int]
    verdicts: List[str] = field(default_factory=list)
    trace_id: Optional[str] = None


def lint_trace(events: List[Dict[str, Any]]) -> List[LintViolation]:
    """Check the protocol invariants; returns violations (empty = clean).

    Event numbers in violations are 0-based indices into *events* (the
    loader already stripped the header line).
    """
    violations: List[LintViolation] = []
    open_sends: Dict[Tuple[int, int], List[_OpenSend]] = {}
    committed: Dict[Tuple[int, int], int] = {}  # (vm, dst_host) -> line
    last_verdict: Dict[Tuple[int, int], Tuple[str, Optional[int]]] = {}
    down_since: Dict[int, int] = {}  # rack -> first down round
    down_until: Dict[int, Optional[int]] = {}  # rack -> up round (None = open)
    correlated = any(isinstance(ev.get("trace_id"), str) for ev in events)

    def rack_is_down(rack: Any, rnd: Any) -> bool:
        if not isinstance(rack, int) or not isinstance(rnd, int):
            return False
        if rack not in down_since:
            return False
        up = down_until[rack]
        return rnd >= down_since[rack] and (up is None or rnd < up)

    for line, ev in enumerate(events):
        kind = ev.get("event", "?")
        rnd = ev.get("round")
        tid = ev.get("trace_id")

        # --- invariant 5: correlated traces stamp every protocol event #
        if correlated and kind in _PROTOCOL_KINDS and not isinstance(tid, str):
            violations.append(
                LintViolation(
                    "correlation",
                    line,
                    f"{kind} for vm {ev.get('vm')} has no trace_id in a "
                    f"correlated trace",
                )
            )

        if kind == "FaultInjected":
            f_kind = ev.get("fault_kind")
            target = ev.get("target")
            if f_kind == "shim_down" and isinstance(target, int):
                down_since[target] = rnd if isinstance(rnd, int) else 0
                detail = str(ev.get("detail", ""))
                m = re.match(r"until-round-(\d+)$", detail)
                down_until[target] = int(m.group(1)) if m else None
            elif f_kind == "shim_up" and isinstance(target, int):
                if target in down_since and isinstance(rnd, int):
                    down_until[target] = rnd
            continue

        # --- invariant 4: down racks stay silent -------------------- #
        if kind in ("PrioritySelected", "FlowRerouted", "MatchingSolved"):
            if rack_is_down(ev.get("rack"), rnd):
                violations.append(
                    LintViolation(
                        "down-rack",
                        line,
                        f"{kind} from rack {ev.get('rack')} in round {rnd} "
                        f"while its shim is down",
                    )
                )
        if kind == "RequestSent" and rack_is_down(ev.get("src_rack"), rnd):
            violations.append(
                LintViolation(
                    "down-rack",
                    line,
                    f"RequestSent sourced from down rack {ev.get('src_rack')} "
                    f"in round {rnd}",
                )
            )

        if kind not in _PROTOCOL_KINDS:
            continue
        vm, dst = ev.get("vm"), ev.get("dst_host")
        key = (vm, dst)

        if kind == "RequestSent":
            open_sends.setdefault(key, []).append(
                _OpenSend(line=line, round=rnd, trace_id=tid if isinstance(tid, str) else None)
            )
        elif kind in _VERDICT_KINDS:
            sends = open_sends.get(key)
            if not sends:
                violations.append(
                    LintViolation(
                        "resolution",
                        line,
                        f"{kind} for vm {vm} → host {dst} with no open "
                        f"RequestSent",
                    )
                )
            else:
                send = sends[-1]
                send.verdicts.append(kind)
                if tuple(send.verdicts) not in _ALLOWED_SEQUENCES:
                    violations.append(
                        LintViolation(
                            "resolution",
                            line,
                            f"RequestSent (event #{send.line}) for vm {vm} "
                            f"resolved as disallowed sequence {send.verdicts}",
                        )
                    )
                elif (
                    correlated
                    and isinstance(tid, str)
                    and send.trace_id is not None
                    and tid != send.trace_id
                ):
                    violations.append(
                        LintViolation(
                            "correlation",
                            line,
                            f"{kind} trace_id {tid!r} does not match its "
                            f"RequestSent's {send.trace_id!r}",
                        )
                    )
            last_verdict[key] = (kind, line)
        elif kind == "MigrationCommitted":
            verdict = last_verdict.get(key)
            if verdict is None or verdict[0] != "RequestAcked":
                got = verdict[0] if verdict else "no verdict"
                violations.append(
                    LintViolation(
                        "commit-unacked",
                        line,
                        f"MigrationCommitted for vm {vm} → host {dst} but the "
                        f"latest verdict is {got}",
                    )
                )
            committed[key] = line
        elif kind == "MigrationLanded":
            if key not in committed:
                violations.append(
                    LintViolation(
                        "landed-uncommitted",
                        line,
                        f"MigrationLanded for vm {vm} → host {dst} without a "
                        f"prior MigrationCommitted",
                    )
                )
            committed.pop(key, None)
        elif kind == "MigrationAborted":
            committed.pop(key, None)

    # sends still open at end of trace with no verdict at all
    for key, sends in sorted(
        open_sends.items(), key=lambda kv: (str(kv[0][0]), str(kv[0][1]))
    ):
        for send in sends:
            if not send.verdicts:
                violations.append(
                    LintViolation(
                        "resolution",
                        send.line,
                        f"RequestSent for vm {key[0]} → host {key[1]} "
                        f"(round {send.round}) never resolved",
                    )
                )
    violations.sort(key=lambda v: v.line)
    return violations
