"""Typed trace events — the vocabulary of the Sheriff decision story.

Every observable decision the simulator takes maps to exactly one event
class; the full schema (fields, emitting site, ordering guarantees) is
documented in ``docs/observability.md``.  Events are plain dataclasses so
they serialize to JSON with :meth:`TraceEvent.as_dict` and stay cheap to
construct — they are only built when a tracer is enabled.

The ``round`` field is stamped by the tracer (see
:meth:`repro.obs.tracer.RecordingTracer.emit`) from the engine's
``begin_round`` call, so emitting sites deep inside the migration
machinery never need to thread the round index explicitly.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import List, Optional, Tuple

__all__ = [
    "TraceEvent",
    "AlertDelivered",
    "PrioritySelected",
    "MatchingSolved",
    "RequestSent",
    "RequestAcked",
    "RequestRejected",
    "MigrationCommitted",
    "MigrationLanded",
    "FlowRerouted",
    "ModelSelected",
    "FallbackTransition",
    "FaultInjected",
    "HostCrashed",
    "RequestTimedOut",
    "MigrationAborted",
    "SloViolation",
    "SloBudgetExhausted",
    "EVENT_TYPES",
]


@dataclass
class TraceEvent:
    """Base class for every trace event.

    ``round`` is the management-round index the event belongs to; ``None``
    means the event happened outside a round (e.g. offline forecasting).

    ``trace_id`` correlates one migration attempt's causal chain
    (alert → PRIORITY → REQUEST → commit → landing); ``parent_id`` links
    a chain to the rack-level alert group that spawned it.  Both are
    stamped by the tracer's :class:`~repro.obs.correlate.LifecycleStitcher`
    at emit time — emitting sites never compute ids, so the disabled
    path stays zero-cost and plan workers stay id-free (their queued
    events are stitched when the main thread emits them on commit).
    """

    round: Optional[int] = None
    trace_id: Optional[str] = None
    parent_id: Optional[str] = None

    @property
    def kind(self) -> str:
        """Event type name, stable across refactors (the class name)."""
        return type(self).__name__

    def as_dict(self) -> dict:
        """JSON-ready representation: ``{"event": kind, ...fields}``.

        The correlation fields (``trace_id``/``parent_id``) are included
        only when stamped, so uncorrelated traces keep the schema-1 row
        shape.
        """
        out = {"event": self.kind}
        for f in fields(self):
            v = getattr(self, f.name)
            if v is None and f.name in ("trace_id", "parent_id"):
                continue
            if isinstance(v, tuple):
                v = list(v)
            out[f.name] = v
        return out


@dataclass
class AlertDelivered(TraceEvent):
    """An ALERT message reached its shim (engine dispatch)."""

    rack: int = -1
    alert_kind: str = ""
    magnitude: float = 0.0
    host: Optional[int] = None
    switch: Optional[int] = None


@dataclass
class PrioritySelected(TraceEvent):
    """One PRIORITY (Alg. 2) invocation finished."""

    rack: int = -1
    factor: str = ""
    budget: Optional[int] = None
    candidates: int = 0
    selected: Tuple[int, ...] = ()


@dataclass
class MatchingSolved(TraceEvent):
    """One Kuhn–Munkres (or greedy-fallback) solve inside VMMIGRATION."""

    rack: Optional[int] = None
    rows: int = 0
    cols: int = 0
    matched: int = 0
    iteration: int = 0
    fallback: bool = False
    elapsed_s: float = 0.0


@dataclass
class RequestSent(TraceEvent):
    """Sender side: a REQUEST(vm → dst_host) left the shim."""

    vm: int = -1
    dst_host: int = -1
    dst_rack: int = -1
    src_rack: Optional[int] = None


@dataclass
class RequestAcked(TraceEvent):
    """Receiver side: the destination delegation ACKed the REQUEST."""

    vm: int = -1
    dst_host: int = -1
    dst_rack: int = -1


@dataclass
class RequestRejected(TraceEvent):
    """Receiver side: REJECT (or IGNORED), with the Alg. 4 reason."""

    vm: int = -1
    dst_host: int = -1
    dst_rack: int = -1
    reason: str = ""


@dataclass
class MigrationCommitted(TraceEvent):
    """A reserved migration was committed (instant engines: placement
    mutated; timed engines: the live-migration window started)."""

    vm: int = -1
    dst_host: int = -1


@dataclass
class MigrationLanded(TraceEvent):
    """The VM is running at its destination (instant commit or the end of
    its Fig. 2 live-migration window)."""

    vm: int = -1
    dst_host: int = -1


@dataclass
class FlowRerouted(TraceEvent):
    """A shim's FLOWREROUTE pass finished for one round."""

    rack: int = -1
    rerouted: int = 0
    failed: int = 0
    flows: Tuple[int, ...] = ()
    hot_switches: Tuple[int, ...] = ()


@dataclass
class ModelSelected(TraceEvent):
    """Dynamic model selection (Eq. 14) answered with a pool member."""

    model: str = ""
    step: int = 0
    prediction: float = 0.0


@dataclass
class FallbackTransition(TraceEvent):
    """The worst-case fallback governor switched alerting modes.

    ``mode`` is the mode *entered* (``"reactive"`` when trailing forecast
    error crossed the bound, ``"predictive"`` on recovery);
    ``trailing_error`` is the windowed mean absolute forecast error that
    drove the decision.
    """

    mode: str = ""
    trailing_error: float = 0.0
    at_round: int = -1


@dataclass
class FaultInjected(TraceEvent):
    """A scheduled fault fired (see :mod:`repro.faults`)."""

    fault_kind: str = ""
    target: int = -1
    detail: str = ""


@dataclass
class HostCrashed(TraceEvent):
    """A host died: who escaped (emergency evacuation) and who did not."""

    host: int = -1
    evacuated: Tuple[int, ...] = ()
    lost: Tuple[int, ...] = ()


@dataclass
class RequestTimedOut(TraceEvent):
    """Sender side: a REQUEST exhausted its retries without a reply."""

    vm: int = -1
    dst_host: int = -1
    dst_rack: int = -1
    attempts: int = 0


@dataclass
class MigrationAborted(TraceEvent):
    """An accepted migration was rolled back before landing."""

    vm: int = -1
    dst_host: int = -1
    reason: str = ""


@dataclass
class SloViolation(TraceEvent):
    """One VM accrued SLO-violation-minutes from one source this round.

    ``source`` names the charge origin: ``"overload"`` (the VM sat out a
    round on a host above the SLO overload threshold), ``"downtime"``
    (the stop-and-copy window of its live migration, weighted by the
    VM's request rate) or ``"stretch"`` (a placement change lengthened
    its dependency paths).
    """

    vm: int = -1
    tenant: str = ""
    source: str = ""
    minutes: float = 0.0
    host: Optional[int] = None


@dataclass
class SloBudgetExhausted(TraceEvent):
    """A tenant class spent its whole SLO error budget (emitted once)."""

    tenant: str = ""
    budget_minutes: float = 0.0
    total_minutes: float = 0.0


EVENT_TYPES: List[type] = [
    AlertDelivered,
    PrioritySelected,
    MatchingSolved,
    RequestSent,
    RequestAcked,
    RequestRejected,
    MigrationCommitted,
    MigrationLanded,
    FlowRerouted,
    ModelSelected,
    FallbackTransition,
    FaultInjected,
    HostCrashed,
    RequestTimedOut,
    MigrationAborted,
    SloViolation,
    SloBudgetExhausted,
]
