"""Tracer protocol and implementations.

The tracer contract is deliberately tiny so it can be threaded through
every layer without coupling:

* ``enabled`` — emitting sites guard event *construction* behind this
  flag, so a disabled tracer costs one attribute read per site and zero
  allocations (the zero-cost-when-disabled property);
* ``emit(event)`` — record one :class:`~repro.obs.events.TraceEvent`;
* ``begin_round(index)`` — round boundary; implementations stamp every
  subsequent event's ``round`` field with *index*.

:data:`NULL_TRACER` is the shared disabled singleton every constructor
defaults to; :class:`RecordingTracer` keeps events in memory (tests,
notebooks); :class:`JsonlTracer` streams them to a JSON-lines file (the
CLI's ``--trace PATH``).
"""

from __future__ import annotations

import json
from typing import IO, List, Optional, Protocol, runtime_checkable

from repro.obs.events import TraceEvent

__all__ = [
    "Tracer",
    "NullTracer",
    "RecordingTracer",
    "JsonlTracer",
    "NULL_TRACER",
]


@runtime_checkable
class Tracer(Protocol):
    """Structural type every tracer implementation satisfies."""

    enabled: bool

    def emit(self, event: TraceEvent) -> None:  # pragma: no cover - protocol
        ...

    def begin_round(self, index: int) -> None:  # pragma: no cover - protocol
        ...


class NullTracer:
    """Disabled tracer: every operation is a no-op.

    Emitting sites check ``tracer.enabled`` before building an event, so
    the per-site cost of the null tracer is one attribute read.
    """

    enabled: bool = False

    def emit(self, event: TraceEvent) -> None:
        pass

    def begin_round(self, index: int) -> None:
        pass


NULL_TRACER = NullTracer()
"""Shared module-level disabled tracer (the default everywhere)."""


class RecordingTracer:
    """In-memory tracer: events accumulate on :attr:`events`."""

    enabled: bool = True

    def __init__(self) -> None:
        self.events: List[TraceEvent] = []
        self.current_round: Optional[int] = None

    def begin_round(self, index: int) -> None:
        self.current_round = index

    def emit(self, event: TraceEvent) -> None:
        if event.round is None:
            event.round = self.current_round
        self.events.append(event)

    # ------------------------------------------------------------------ #
    def kinds(self) -> List[str]:
        """Event type names in emission order."""
        return [e.kind for e in self.events]

    def of_kind(self, kind: str) -> List[TraceEvent]:
        """All events of one type, in emission order."""
        return [e for e in self.events if e.kind == kind]

    def clear(self) -> None:
        self.events.clear()


class JsonlTracer:
    """Streaming tracer: one JSON object per line on *stream*.

    Parameters
    ----------
    stream:
        Open text file object; the caller owns it unless this tracer was
        built with :meth:`open`, in which case :meth:`close` closes it.
    """

    enabled: bool = True

    def __init__(self, stream: IO[str]) -> None:
        self.stream = stream
        self.current_round: Optional[int] = None
        self._owns_stream = False
        self.emitted = 0

    @classmethod
    def open(cls, path: str) -> "JsonlTracer":
        """Create a tracer writing to *path* (truncates; close with
        :meth:`close` or use as a context manager)."""
        tracer = cls(open(path, "w"))
        tracer._owns_stream = True
        return tracer

    def begin_round(self, index: int) -> None:
        self.current_round = index

    def emit(self, event: TraceEvent) -> None:
        if event.round is None:
            event.round = self.current_round
        self.stream.write(json.dumps(event.as_dict()) + "\n")
        self.emitted += 1

    def close(self) -> None:
        if self._owns_stream:
            self.stream.close()

    def __enter__(self) -> "JsonlTracer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
