"""Tracer protocol and implementations.

The tracer contract is deliberately tiny so it can be threaded through
every layer without coupling:

* ``enabled`` — emitting sites guard event *construction* behind this
  flag, so a disabled tracer costs one attribute read per site and zero
  allocations (the zero-cost-when-disabled property);
* ``emit(event)`` — record one :class:`~repro.obs.events.TraceEvent`;
* ``begin_round(index)`` — round boundary; implementations stamp every
  subsequent event's ``round`` field with *index*.

:data:`NULL_TRACER` is the shared disabled singleton every constructor
defaults to; :class:`RecordingTracer` keeps events in memory (tests,
notebooks); :class:`JsonlTracer` streams them to a JSON-lines file (the
CLI's ``--trace PATH``).

Both enabled tracers run a
:class:`~repro.obs.correlate.LifecycleStitcher` in their ``emit`` path
by default, stamping ``trace_id``/``parent_id`` onto every event so the
flat stream carries per-attempt causal chains (pass ``correlate=False``
for schema-1 behaviour).

JSONL traces written by :class:`JsonlTracer` start with a header line
``{"schema_version": 2}``; :func:`load_trace` reads them back (header or
no header) as a list of event dicts for the ``repro trace`` CLI.
"""

from __future__ import annotations

import json
from typing import IO, Any, Dict, List, Optional, Protocol, runtime_checkable

from repro.obs.correlate import LifecycleStitcher
from repro.obs.events import TraceEvent

__all__ = [
    "Tracer",
    "NullTracer",
    "RecordingTracer",
    "JsonlTracer",
    "NULL_TRACER",
    "TRACE_SCHEMA_VERSION",
    "load_trace",
]

TRACE_SCHEMA_VERSION = 2
"""Current JSONL trace schema: v2 adds the header line and the
``trace_id``/``parent_id`` correlation fields."""


@runtime_checkable
class Tracer(Protocol):
    """Structural type every tracer implementation satisfies."""

    enabled: bool

    def emit(self, event: TraceEvent) -> None:  # pragma: no cover - protocol
        ...

    def begin_round(self, index: int) -> None:  # pragma: no cover - protocol
        ...


class NullTracer:
    """Disabled tracer: every operation is a no-op.

    Emitting sites check ``tracer.enabled`` before building an event, so
    the per-site cost of the null tracer is one attribute read.
    """

    enabled: bool = False

    def emit(self, event: TraceEvent) -> None:
        pass

    def begin_round(self, index: int) -> None:
        pass


NULL_TRACER = NullTracer()
"""Shared module-level disabled tracer (the default everywhere)."""


class RecordingTracer:
    """In-memory tracer: events accumulate on :attr:`events`."""

    enabled: bool = True

    def __init__(self, *, correlate: bool = True) -> None:
        self.events: List[TraceEvent] = []
        self.current_round: Optional[int] = None
        self._stitcher = LifecycleStitcher() if correlate else None

    def begin_round(self, index: int) -> None:
        self.current_round = index
        if self._stitcher is not None:
            self._stitcher.begin_round(index)

    def emit(self, event: TraceEvent) -> None:
        if event.round is None:
            event.round = self.current_round
        if self._stitcher is not None:
            self._stitcher.stamp(event)
        self.events.append(event)

    # ------------------------------------------------------------------ #
    def kinds(self) -> List[str]:
        """Event type names in emission order."""
        return [e.kind for e in self.events]

    def of_kind(self, kind: str) -> List[TraceEvent]:
        """All events of one type, in emission order."""
        return [e for e in self.events if e.kind == kind]

    def clear(self) -> None:
        self.events.clear()


class JsonlTracer:
    """Streaming tracer: one JSON object per line on *stream*.

    The first line written is the schema header
    ``{"schema_version": 2}``; every subsequent line is one event dict.
    The stream is flushed at each :meth:`begin_round`, so a crashed or
    faulted run leaves complete rounds on disk.

    Parameters
    ----------
    stream:
        Open text file object; the caller owns it unless this tracer was
        built with :meth:`open`, in which case :meth:`close` closes it.
    correlate:
        Stamp lifecycle ``trace_id``/``parent_id`` fields (default on).
    """

    enabled: bool = True

    def __init__(self, stream: IO[str], *, correlate: bool = True) -> None:
        self.stream = stream
        self.current_round: Optional[int] = None
        self._owns_stream = False
        self.emitted = 0
        self._stitcher = LifecycleStitcher() if correlate else None
        self.stream.write(
            json.dumps({"schema_version": TRACE_SCHEMA_VERSION}) + "\n"
        )

    @classmethod
    def open(cls, path: str, *, correlate: bool = True) -> "JsonlTracer":
        """Create a tracer writing to *path* (truncates; close with
        :meth:`close` or use as a context manager)."""
        tracer = cls(open(path, "w"), correlate=correlate)
        tracer._owns_stream = True
        return tracer

    def begin_round(self, index: int) -> None:
        self.current_round = index
        if self._stitcher is not None:
            self._stitcher.begin_round(index)
        self.stream.flush()

    def emit(self, event: TraceEvent) -> None:
        if event.round is None:
            event.round = self.current_round
        if self._stitcher is not None:
            self._stitcher.stamp(event)
        self.stream.write(json.dumps(event.as_dict()) + "\n")
        self.emitted += 1

    def close(self) -> None:
        if self._owns_stream:
            self.stream.close()

    def __enter__(self) -> "JsonlTracer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def load_trace(path: str) -> List[Dict[str, Any]]:
    """Read a JSONL trace back as a list of event dicts.

    Accepts both schema-2 files (leading ``{"schema_version": N}``
    header, which is skipped) and headerless schema-1 files; blank lines
    are ignored.  Raises ``ValueError`` on a header from a future schema
    or on a row without an ``"event"`` key.
    """
    events: List[Dict[str, Any]] = []
    with open(path) as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            row = json.loads(line)
            if "schema_version" in row and "event" not in row:
                version = row["schema_version"]
                if version > TRACE_SCHEMA_VERSION:
                    raise ValueError(
                        f"{path}:{lineno}: trace schema_version {version} "
                        f"is newer than supported ({TRACE_SCHEMA_VERSION})"
                    )
                continue
            if "event" not in row:
                raise ValueError(f"{path}:{lineno}: row has no 'event' key")
            events.append(row)
    return events
