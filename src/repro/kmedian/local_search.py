"""Local Search for k-median with ``p``-swaps (Alg. 5; Arya et al. 2004).

Start from any feasible set of ``k`` facilities; while some swap of at
most ``p`` facilities improves the objective, take it.  The result is a
``(3 + 2/p)``-approximation — the bound the paper proves for
VMMIGRATION.

Single swaps (``p = 1``) dominate the running time, so they are fully
vectorized: one sweep computes the improvement of **every** (drop o, add
f) pair in ``O(|F|·|C|)`` using the classic first/second-closest-facility
decomposition, instead of the naive ``O(|F|·k·|C|)``.  Multi-swaps are
enumerated exhaustively when the neighborhood is small and sampled
otherwise (both stay inside the same accept-if-better loop).
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.kmedian.instance import KMedianInstance
from repro.obs.profiling import NULL_PROFILER
from repro.rng import SeedLike, as_generator

__all__ = ["LocalSearchResult", "local_search"]

_ENUMERATION_CAP = 20000  # max multi-swap candidate pairs enumerated per sweep


@dataclass(frozen=True)
class LocalSearchResult:
    """Outcome of a local-search run."""

    solution: np.ndarray
    cost: float
    iterations: int
    swaps_taken: int
    converged: bool
    """True when no improving swap existed at termination (a genuine local
    optimum); False when the iteration budget ran out first."""


def _closest_two(
    d: np.ndarray, weights: Optional[np.ndarray], sol: np.ndarray
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Per-client (closest open facility, its cost, second-closest cost)."""
    sub = d[:, sol]
    order = np.argsort(sub, axis=1)
    best_local = order[:, 0]
    d1 = sub[np.arange(d.shape[0]), best_local]
    if sol.shape[0] > 1:
        d2 = sub[np.arange(d.shape[0]), order[:, 1]]
    else:
        d2 = np.full(d.shape[0], np.inf)
    return sol[best_local], d1, d2


def _best_single_swap(
    inst: KMedianInstance, sol: np.ndarray
) -> Tuple[float, int, int]:
    """Best (delta, out_facility, in_facility) over all single swaps.

    delta < 0 means the swap improves.  The sweep is fully vectorized:
    one ``(clients, candidates)`` broadcast computes every candidate's
    common term, and a single ``np.add.at`` scatter accumulates the
    dropped-facility corrections for all (candidate, out) pairs at once —
    ``O(|C|·|F|)`` array work, no Python loop over facilities.
    """
    d = inst.distances
    w = inst.weights
    assign, d1, d2 = _closest_two(d, w, sol)
    in_sol = np.zeros(inst.num_facilities, dtype=bool)
    in_sol[sol] = True
    candidates = np.nonzero(~in_sol)[0]
    if candidates.size == 0:
        return (0.0, -1, -1)
    k = sol.shape[0]
    # position of each open facility for the scatter grouping
    pos_of = {int(f): i for i, f in enumerate(sol)}
    assign_pos = np.fromiter(
        (pos_of[int(a)] for a in assign), dtype=np.int64, count=d.shape[0]
    )
    D_cand = d[:, candidates]  # (clients, candidates)
    base = np.minimum(d1[:, None], D_cand)  # cost if own facility stays open
    common = base - d1[:, None]
    special = np.minimum(d2[:, None], D_cand) - base
    if w is not None:
        common = common * w[:, None]
        special = special * w[:, None]
    common_total = common.sum(axis=0)  # (candidates,)
    # per_out[o, f] = Σ_{clients assigned to o} special[client, f]
    per_out = np.zeros((k, candidates.size))
    np.add.at(per_out, assign_pos, special)
    deltas = common_total[None, :] + per_out  # (k, candidates)
    o_idx, f_idx = np.unravel_index(int(np.argmin(deltas)), deltas.shape)
    best_delta = float(deltas[o_idx, f_idx])
    if best_delta >= 0.0:
        return (0.0, -1, -1)
    return (best_delta, int(sol[o_idx]), int(candidates[f_idx]))


def _best_multi_swap(
    inst: KMedianInstance,
    sol: np.ndarray,
    p: int,
    rng: np.random.Generator,
) -> Tuple[float, Tuple[int, ...], Tuple[int, ...]]:
    """Best swap of exactly ``q`` facilities for some ``2 <= q <= p``.

    Exhaustive when the candidate count is small, sampled otherwise.
    """
    cur_cost = inst.cost(sol)
    in_sol = np.zeros(inst.num_facilities, dtype=bool)
    in_sol[sol] = True
    outside = np.nonzero(~in_sol)[0]
    best: Tuple[float, Tuple[int, ...], Tuple[int, ...]] = (0.0, (), ())
    for q in range(2, p + 1):
        if q > sol.shape[0] or q > outside.shape[0]:
            break
        from math import comb

        n_pairs = comb(sol.shape[0], q) * comb(outside.shape[0], q)
        if n_pairs <= _ENUMERATION_CAP:
            pairs = (
                (outs, ins)
                for outs in combinations(sol.tolist(), q)
                for ins in combinations(outside.tolist(), q)
            )
        else:
            def sampled():
                for _ in range(_ENUMERATION_CAP):
                    outs = tuple(rng.choice(sol, size=q, replace=False).tolist())
                    ins = tuple(rng.choice(outside, size=q, replace=False).tolist())
                    yield outs, ins

            pairs = sampled()
        for outs, ins in pairs:
            cand = [f for f in sol.tolist() if f not in outs] + list(ins)
            c = inst.cost(cand)
            delta = c - cur_cost
            if delta < best[0]:
                best = (float(delta), tuple(outs), tuple(ins))
    return best


def local_search(
    inst: KMedianInstance,
    *,
    p: int = 1,
    initial: Optional[Sequence[int]] = None,
    max_iters: int = 10_000,
    tolerance: float = 1e-9,
    seed: SeedLike = 0,
    profiler=NULL_PROFILER,
) -> LocalSearchResult:
    """Run Alg. 5 on *inst*.

    Parameters
    ----------
    p:
        Local change size (swap up to ``p`` facilities per move); the
        approximation guarantee is ``3 + 2/p``.
    initial:
        Starting facility set; defaults to the ``k`` facilities that are
        individually cheapest (a deterministic feasible start).
    max_iters:
        Safety bound on improving moves.
    tolerance:
        Minimum improvement accepted (guards float noise cycling).
    profiler:
        Optional :class:`~repro.obs.profiling.Profiler`; the whole search
        is timed under the ``local_search`` section.
    """
    if p < 1:
        raise ConfigurationError(f"swap size p must be >= 1, got {p}")
    rng = as_generator(seed)
    if initial is None:
        # facilities ranked by total (weighted) connection cost if opened alone
        d = inst.distances
        tot = (d * inst.weights[:, None]).sum(axis=0) if inst.weights is not None else d.sum(axis=0)
        sol = np.sort(np.argsort(tot)[: inst.k]).astype(np.int64)
    else:
        sol = np.asarray(sorted(set(int(x) for x in initial)), dtype=np.int64)
        if sol.shape[0] != inst.k:
            raise ConfigurationError(
                f"initial solution must have k={inst.k} distinct facilities"
            )
    cost = inst.cost(sol)
    iters = 0
    swaps = 0
    converged = False
    with profiler.section("local_search"):
        while iters < max_iters:
            iters += 1
            delta1, out1, in1 = _best_single_swap(inst, sol)
            delta_m: Tuple[float, Tuple[int, ...], Tuple[int, ...]] = (0.0, (), ())
            if p > 1:
                delta_m = _best_multi_swap(inst, sol, p, rng)
            if delta1 <= delta_m[0]:
                delta, outs, ins = delta1, (out1,), (in1,)
            else:
                delta, outs, ins = delta_m
            if delta >= -tolerance:
                converged = True
                break
            keep = [f for f in sol.tolist() if f not in outs]
            sol = np.asarray(sorted(keep + list(ins)), dtype=np.int64)
            cost += delta
            swaps += 1
    # re-derive the cost to shed accumulated float drift
    cost = inst.cost(sol)
    return LocalSearchResult(
        solution=sol,
        cost=cost,
        iterations=iters,
        swaps_taken=swaps,
        converged=converged,
    )
