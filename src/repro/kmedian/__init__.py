"""k-median machinery (Sec. V-A and VI-C).

The centralized VMMIGRATION reduces to metric k-median: clients are the
alerting (source) ToRs, facilities are all ToRs, and the connection cost
between two ToRs is the path-independent ``Cost(v_i, v_p)``.  The Local
Search algorithm with ``p``-swaps (Arya et al., SICOMP 2004 — the paper's
Alg. 5) gives the ``3 + 2/p`` approximation the paper proves.
"""

from repro.kmedian.instance import KMedianInstance
from repro.kmedian.local_search import LocalSearchResult, local_search
from repro.kmedian.exact import exact_kmedian
from repro.kmedian.greedy import greedy_kmedian
from repro.kmedian.transform import vmmigration_to_kmedian

__all__ = [
    "KMedianInstance",
    "local_search",
    "LocalSearchResult",
    "exact_kmedian",
    "greedy_kmedian",
    "vmmigration_to_kmedian",
]
