"""k-median problem instances.

An instance is a client×facility connection-cost matrix plus the number
``k`` of facilities to open; the objective is the sum over clients of the
distance to the closest open facility.  Clients may carry weights
(several alerting VMs behind one ToR).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["KMedianInstance"]


@dataclass(frozen=True)
class KMedianInstance:
    """One k-median instance.

    Attributes
    ----------
    distances:
        ``(clients, facilities)`` non-negative connection costs.
    k:
        Number of facilities to open (1 ≤ k ≤ facilities).
    weights:
        Optional per-client demand weights (default 1).
    """

    distances: np.ndarray
    k: int
    weights: Optional[np.ndarray] = None

    def __post_init__(self) -> None:
        d = np.asarray(self.distances, dtype=np.float64)
        if d.ndim != 2 or d.shape[0] == 0 or d.shape[1] == 0:
            raise ConfigurationError(f"distances must be 2-D non-empty, got {d.shape}")
        if not np.isfinite(d).all() or (d < 0).any():
            raise ConfigurationError("distances must be finite and non-negative")
        if not (1 <= self.k <= d.shape[1]):
            raise ConfigurationError(
                f"k must be in 1..{d.shape[1]} facilities, got {self.k}"
            )
        object.__setattr__(self, "distances", d)
        if self.weights is not None:
            w = np.asarray(self.weights, dtype=np.float64)
            if w.shape != (d.shape[0],):
                raise ConfigurationError(
                    f"weights must have shape ({d.shape[0]},), got {w.shape}"
                )
            if (w < 0).any():
                raise ConfigurationError("weights must be non-negative")
            object.__setattr__(self, "weights", w)

    @property
    def num_clients(self) -> int:
        return int(self.distances.shape[0])

    @property
    def num_facilities(self) -> int:
        return int(self.distances.shape[1])

    def cost(self, solution: Iterable[int]) -> float:
        """Objective value of an open-facility set."""
        s = self._check_solution(solution)
        d = self.distances[:, s].min(axis=1)
        if self.weights is not None:
            d = d * self.weights
        return float(d.sum())

    def assignment(self, solution: Iterable[int]) -> np.ndarray:
        """Closest open facility (as a facility index) per client."""
        s = self._check_solution(solution)
        local = self.distances[:, s].argmin(axis=1)
        return s[local]

    def _check_solution(self, solution: Iterable[int]) -> np.ndarray:
        s = np.asarray(sorted(set(int(x) for x in solution)), dtype=np.int64)
        if s.shape[0] != self.k:
            raise ConfigurationError(
                f"solution must open exactly k={self.k} distinct facilities, got {s.shape[0]}"
            )
        if s.shape[0] and (s[0] < 0 or s[-1] >= self.num_facilities):
            raise ConfigurationError("solution contains out-of-range facility ids")
        return s

    @classmethod
    def from_points(
        cls,
        points: np.ndarray,
        k: int,
        *,
        weights: Optional[np.ndarray] = None,
    ) -> "KMedianInstance":
        """Euclidean instance where every point is client and facility."""
        p = np.asarray(points, dtype=np.float64)
        if p.ndim != 2:
            raise ConfigurationError(f"points must be 2-D, got shape {p.shape}")
        diff = p[:, None, :] - p[None, :, :]
        d = np.sqrt((diff * diff).sum(axis=2))
        return cls(distances=d, k=k, weights=weights)
