"""VMMIGRATION → k-median transformation (Sec. V-A).

The centralized migration problem — pick ``m`` destination ToRs and route
every alerting ToR's evicted load to one of them at minimum total cost —
becomes k-median once the cost between any two racks is path-independent:

1. **Simplification** — ``Cost(v_i, v_p) = C_r + f(v_i, v_p) + g(...)``
   with ``f`` depending only on the endpoints;
2. **Transformation** — all-pairs shortest paths (Floyd/Dijkstra) turn
   ``g(v_i, v_p, e_ip)`` into ``G(v_i, v_p)``: see
   :class:`~repro.costs.transmission.TransmissionCostTable`;
3. **Reduction** — clients ``C`` = alerting (source) ToRs, facilities
   ``F`` = all ToRs, connection cost = ``Cost``; solve k-median.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.costs.model import CostModel
from repro.errors import ConfigurationError
from repro.kmedian.instance import KMedianInstance

__all__ = ["vmmigration_to_kmedian"]


def vmmigration_to_kmedian(
    cost_model: CostModel,
    source_racks: Sequence[int],
    k: int,
    *,
    capacity: Optional[float] = None,
    weights: Optional[np.ndarray] = None,
) -> KMedianInstance:
    """Build the k-median instance of Sec. V-A.

    Parameters
    ----------
    cost_model:
        Cost oracle over the cluster (provides ``C_r + G``).
    source_racks:
        The alerting ToRs (the client set ``C``).
    k:
        Number of destination ToRs to open.
    capacity:
        VM capacity used in the transmission term; defaults to the cost
        model's reference capacity.
    weights:
        Per-source demand weights, e.g. the amount of alerting VM capacity
        behind each source ToR.
    """
    srcs = [int(s) for s in source_racks]
    if not srcs:
        raise ConfigurationError("need at least one source rack")
    n_racks = cost_model.table.num_racks
    if any(not (0 <= s < n_racks) for s in srcs):
        raise ConfigurationError(f"source rack out of range 0..{n_racks - 1}")
    if len(set(srcs)) != len(srcs):
        raise ConfigurationError("duplicate source racks; aggregate their weight instead")
    cap = capacity if capacity is not None else cost_model.params.reference_capacity
    full = cost_model.pairwise_rack_cost(cap)
    dist = full[np.asarray(srcs, dtype=np.int64), :]
    return KMedianInstance(distances=dist, k=k, weights=weights)
