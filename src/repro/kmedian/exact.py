"""Exact k-median by exhaustive enumeration (small instances only).

Used by the approximation-ratio benchmark (paper Sec. VI-C): measure
``cost(local_search) / cost(optimal)`` on instances small enough to
enumerate, and confirm it never exceeds ``3 + 2/p`` (empirically it stays
near 1).
"""

from __future__ import annotations

from itertools import combinations
from math import comb
from typing import Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.kmedian.instance import KMedianInstance

__all__ = ["exact_kmedian"]

_MAX_SOLUTIONS = 2_000_000


def exact_kmedian(inst: KMedianInstance) -> Tuple[np.ndarray, float]:
    """Optimal facility set and cost by enumeration.

    Raises :class:`ConfigurationError` when the search space exceeds the
    enumeration cap — this is a verification oracle, not a solver.
    """
    n, k = inst.num_facilities, inst.k
    total = comb(n, k)
    if total > _MAX_SOLUTIONS:
        raise ConfigurationError(
            f"C({n}, {k}) = {total} solutions exceeds the enumeration cap "
            f"{_MAX_SOLUTIONS}; use local_search for instances this large"
        )
    d = inst.distances
    w = inst.weights
    best_cost = np.inf
    best_sol: Tuple[int, ...] = ()
    for sol in combinations(range(n), k):
        dd = d[:, sol].min(axis=1)
        c = float((dd * w).sum()) if w is not None else float(dd.sum())
        if c < best_cost:
            best_cost = c
            best_sol = sol
    return np.asarray(best_sol, dtype=np.int64), best_cost
