"""Greedy k-median baseline.

Repeatedly open the facility that reduces the total connection cost the
most (the classic forward-greedy heuristic, in the spirit of the
Jain–Mahdian–Saberi greedy family the paper cites for the lower bound).
Serves as a fast baseline the ablation benches compare Local Search to.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.kmedian.instance import KMedianInstance

__all__ = ["greedy_kmedian"]


def greedy_kmedian(inst: KMedianInstance) -> Tuple[np.ndarray, float]:
    """Forward-greedy facility set and its cost.

    Each of the ``k`` rounds is vectorized: with current per-client cost
    ``d_cur``, opening facility ``f`` yields ``Σ min(d_cur, D[:, f])``,
    computed for all facilities at once via broadcasting.
    """
    d = inst.distances
    w = inst.weights
    n_clients, n_fac = d.shape
    d_cur = np.full(n_clients, np.inf)
    chosen: list[int] = []
    open_mask = np.zeros(n_fac, dtype=bool)
    for _ in range(inst.k):
        # candidate cost per facility: (clients, facilities) min then sum
        cand = np.minimum(d_cur[:, None], d)
        totals = (cand * w[:, None]).sum(axis=0) if w is not None else cand.sum(axis=0)
        totals[open_mask] = np.inf
        f = int(np.argmin(totals))
        chosen.append(f)
        open_mask[f] = True
        d_cur = cand[:, f]
    sol = np.asarray(sorted(chosen), dtype=np.int64)
    return sol, inst.cost(sol)
