"""Synthetic "ZopleCloud" trace suite (Figs. 3–5 substitute).

The paper collected, from a local data-center provider:

* **Fig. 3** — CPU utilization (%) of one VM over ~24 h: mid-level mean
  with frequent spiky bursts toward 100 %;
* **Fig. 4** — disk I/O rate (MB) over ~24 h: heavily bursty, occasionally
  spiking an order of magnitude over the base rate;
* **Fig. 5** — weekly uplink traffic (MB) of a switch over ~7 days:
  pronounced, regular daily peaks and troughs — the series their
  ARIMA(1,1,1) is trained on.

Each builder returns the physical-unit series; resolution defaults match
the figure x-axes (minutes for the daily traces, ~10-minute samples for
the weekly one).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.rng import SeedLike, as_generator, spawn
from repro.traces.diurnal import diurnal_pattern, weekly_pattern
from repro.traces.noise import ar1_noise, bursty_spikes
from repro.traces.nonlinear import mackey_glass, regime_switching

__all__ = [
    "cpu_trace",
    "disk_io_trace",
    "weekly_traffic_trace",
    "nonlinear_trace",
    "mixed_trace",
    "ZopleCloudTraces",
]


def cpu_trace(
    hours: float = 24.0,
    samples_per_hour: int = 60,
    seed: SeedLike = None,
) -> np.ndarray:
    """CPU utilization (%) — diurnal base plus AR(1) wander plus bursts."""
    n = int(round(hours * samples_per_hour))
    if n <= 0:
        raise ConfigurationError(f"empty trace requested ({hours} h)")
    r_base, r_ar, r_burst = spawn(seed, 3)
    period = 24 * samples_per_hour
    base = diurnal_pattern(n, period, base=45.0, amplitude=18.0, sharpness=1.6)
    wander = ar1_noise(n, phi=0.9, sigma=3.0, seed=r_ar)
    bursts = bursty_spikes(n, rate=0.03, scale=22.0, decay=0.5, seed=r_burst)
    return np.clip(base + wander + bursts, 0.0, 100.0)


def disk_io_trace(
    hours: float = 24.0,
    samples_per_hour: int = 60,
    seed: SeedLike = None,
) -> np.ndarray:
    """Disk I/O rate (MB/s) — low base rate with heavy bursts (Fig. 4)."""
    n = int(round(hours * samples_per_hour))
    if n <= 0:
        raise ConfigurationError(f"empty trace requested ({hours} h)")
    r_ar, r_burst = spawn(seed, 2)
    base = 80.0 + ar1_noise(n, phi=0.8, sigma=15.0, seed=r_ar)
    bursts = bursty_spikes(n, rate=0.015, scale=350.0, decay=0.4, seed=r_burst)
    return np.clip(base + bursts, 0.0, None)


def weekly_traffic_trace(
    days: float = 7.0,
    samples_per_day: int = 144,
    seed: SeedLike = None,
    *,
    peak_mb: float = 90.0,
) -> np.ndarray:
    """Weekly switch traffic (MB) — regular peaks/troughs (Fig. 5).

    Deliberately dominated by linear + seasonal structure so that a
    differenced ARIMA explains it well, reproducing the paper's finding
    that "classical time series model ARIMA can be a candidate solution".
    """
    n = int(round(days * samples_per_day))
    if n <= 0:
        raise ConfigurationError(f"empty trace requested ({days} d)")
    r_ar, _ = spawn(seed, 2)
    base = diurnal_pattern(
        n, samples_per_day, base=0.5, amplitude=0.42, sharpness=1.3
    )
    week = weekly_pattern(n, samples_per_day, weekend_factor=0.7)
    noise = ar1_noise(n, phi=0.6, sigma=0.03, seed=r_ar)
    series = peak_mb * (base * week + noise)
    return np.clip(series, 0.0, None)


def nonlinear_trace(
    n: int = 1000,
    seed: SeedLike = None,
    *,
    scale: float = 40.0,
    offset: float = 50.0,
) -> np.ndarray:
    """Chaotic Mackey–Glass series scaled into a traffic-like range.

    The regime where the paper reports "NARNET ... outperforms ARIMA".
    """
    mg = mackey_glass(n, seed=seed, noise_sigma=0.005)
    lo, hi = float(mg.min()), float(mg.max())
    if hi - lo < 1e-12:
        raise ConfigurationError("degenerate Mackey-Glass series")
    return offset + scale * (mg - lo) / (hi - lo)


def mixed_trace(
    n: int = 1008,
    samples_per_day: int = 144,
    seed: SeedLike = None,
) -> np.ndarray:
    """Linear-seasonal + nonlinear mixture (Fig. 8's combined-model input).

    First half of the variance comes from the weekly seasonal process,
    the rest from a chaotic component — "a dataset may contain both linear
    data and nonlinear data".
    """
    r_lin, r_nl = spawn(seed, 2)
    days = n / samples_per_day
    lin = weekly_traffic_trace(days, samples_per_day, seed=r_lin)[:n]
    nl = nonlinear_trace(n, seed=r_nl, scale=25.0, offset=0.0)
    return lin + nl


@dataclass(frozen=True)
class ZopleCloudTraces:
    """The full synthetic suite, generated together from one seed."""

    cpu: np.ndarray
    disk_io: np.ndarray
    weekly_traffic: np.ndarray
    nonlinear: np.ndarray
    mixed: np.ndarray

    @classmethod
    def generate(cls, seed: SeedLike = 2015) -> "ZopleCloudTraces":
        r = spawn(seed, 5)
        return cls(
            cpu=cpu_trace(seed=r[0]),
            disk_io=disk_io_trace(seed=r[1]),
            weekly_traffic=weekly_traffic_trace(seed=r[2]),
            nonlinear=nonlinear_trace(seed=r[3]),
            mixed=mixed_trace(seed=r[4]),
        )
