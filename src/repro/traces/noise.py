"""Noise primitives for trace synthesis.

All generators take an explicit :class:`numpy.random.Generator` (see
:mod:`repro.rng`) and return float64 arrays; composition happens by simple
addition in the calling trace builders.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.rng import SeedLike, as_generator

__all__ = ["white_noise", "ar1_noise", "bursty_spikes"]


def _check_n(n: int) -> None:
    if n < 0:
        raise ConfigurationError(f"sample count must be non-negative, got {n}")


def white_noise(n: int, sigma: float = 1.0, seed: SeedLike = None) -> np.ndarray:
    """Gaussian white noise ``WN(0, sigma^2)`` — the ARIMA innovation model."""
    _check_n(n)
    if sigma < 0:
        raise ConfigurationError(f"sigma must be non-negative, got {sigma}")
    rng = as_generator(seed)
    return rng.normal(0.0, sigma, size=n)


def ar1_noise(
    n: int,
    phi: float = 0.7,
    sigma: float = 1.0,
    seed: SeedLike = None,
) -> np.ndarray:
    """Stationary AR(1) noise ``x_t = phi * x_{t-1} + eps_t``.

    Initialized from the stationary distribution so there is no burn-in
    transient.  ``|phi| < 1`` required.
    """
    _check_n(n)
    if not (-1.0 < phi < 1.0):
        raise ConfigurationError(f"AR(1) requires |phi| < 1, got {phi}")
    if sigma < 0:
        raise ConfigurationError(f"sigma must be non-negative, got {sigma}")
    rng = as_generator(seed)
    if n == 0:
        return np.empty(0)
    eps = rng.normal(0.0, sigma, size=n)
    out = np.empty(n)
    stat_sd = sigma / np.sqrt(1.0 - phi * phi) if sigma > 0 else 0.0
    out[0] = rng.normal(0.0, stat_sd) if stat_sd > 0 else 0.0
    # The recurrence is inherently sequential; scipy.signal.lfilter runs it
    # in C instead of a Python loop.
    from scipy.signal import lfilter

    out = lfilter([1.0], [1.0, -phi], eps)
    out[0] += rng.normal(0.0, stat_sd) if stat_sd > 0 else 0.0
    return out


def bursty_spikes(
    n: int,
    rate: float = 0.02,
    scale: float = 5.0,
    decay: float = 0.6,
    seed: SeedLike = None,
) -> np.ndarray:
    """Compound-Poisson bursts with geometric decay tails.

    Each time step independently starts a burst with probability *rate*;
    burst heights are exponential with mean *scale* and relax geometrically
    with factor *decay* — the spiky texture of the paper's raw CPU and disk
    I/O traces (Figs. 3–4).
    """
    _check_n(n)
    if not (0.0 <= rate <= 1.0):
        raise ConfigurationError(f"rate must be in [0, 1], got {rate}")
    if scale < 0:
        raise ConfigurationError(f"scale must be non-negative, got {scale}")
    if not (0.0 <= decay < 1.0):
        raise ConfigurationError(f"decay must be in [0, 1), got {decay}")
    rng = as_generator(seed)
    if n == 0:
        return np.empty(0)
    starts = rng.random(n) < rate
    heights = np.where(starts, rng.exponential(scale, size=n), 0.0)
    # x_t = decay * x_{t-1} + heights_t  — again an AR(1) filter.
    from scipy.signal import lfilter

    return lfilter([1.0], [1.0, -decay], heights)
