"""Nonlinear / chaotic series generators.

Sec. IV-B motivates NARNET with data that "ARIMA ... may not work"
on: nonlinear, dynamic, chaotic signals.  We synthesize three canonical
kinds:

* :func:`mackey_glass` — the classic chaotic delay-differential benchmark
  used throughout the NAR-network literature;
* :func:`logistic_map` — discrete chaos with tunable ``r``;
* :func:`regime_switching` — a Markov-switching AR process whose
  conditional dynamics change abruptly, defeating any single linear fit.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.rng import SeedLike, as_generator

__all__ = ["mackey_glass", "logistic_map", "regime_switching"]


def mackey_glass(
    n: int,
    *,
    tau: int = 17,
    beta: float = 0.2,
    gamma: float = 0.1,
    exponent: float = 10.0,
    dt: float = 1.0,
    x0: float = 1.2,
    discard: int = 300,
    seed: SeedLike = None,
    noise_sigma: float = 0.0,
) -> np.ndarray:
    """Mackey–Glass series via Euler discretization.

    ``dx/dt = beta * x(t - tau) / (1 + x(t - tau)^exponent) - gamma * x(t)``

    With the default ``tau = 17`` the attractor is mildly chaotic — the
    standard difficulty class for NAR benchmarks.  *discard* initial samples
    are dropped to skip the transient.
    """
    if n < 0:
        raise ConfigurationError(f"n must be non-negative, got {n}")
    if tau < 1:
        raise ConfigurationError(f"tau must be >= 1, got {tau}")
    if discard < 0:
        raise ConfigurationError(f"discard must be non-negative, got {discard}")
    rng = as_generator(seed)
    total = n + discard
    hist = max(tau, 1)
    x = np.empty(total + hist)
    # seed history with small perturbations around x0 so distinct seeds
    # land on distinct stretches of the attractor
    x[:hist] = x0 + (rng.normal(0.0, 0.01, size=hist) if noise_sigma >= 0 else 0.0)
    for t in range(hist, total + hist):
        xd = x[t - tau]
        x[t] = x[t - 1] + dt * (beta * xd / (1.0 + xd**exponent) - gamma * x[t - 1])
    out = x[hist + discard :]
    if noise_sigma > 0:
        out = out + rng.normal(0.0, noise_sigma, size=out.shape)
    return out


def logistic_map(
    n: int,
    *,
    r: float = 3.9,
    x0: float = 0.4,
    discard: int = 100,
) -> np.ndarray:
    """Logistic map ``x_{t+1} = r x_t (1 - x_t)``; chaotic for r ≈ 3.57+."""
    if n < 0:
        raise ConfigurationError(f"n must be non-negative, got {n}")
    if not (0.0 < x0 < 1.0):
        raise ConfigurationError(f"x0 must be in (0, 1), got {x0}")
    if not (0.0 < r <= 4.0):
        raise ConfigurationError(f"r must be in (0, 4], got {r}")
    total = n + discard
    x = np.empty(total + 1)
    x[0] = x0
    for t in range(total):
        x[t + 1] = r * x[t] * (1.0 - x[t])
    return x[1 + discard :]


def regime_switching(
    n: int,
    *,
    phis: tuple[float, ...] = (0.95, -0.5),
    sigmas: tuple[float, ...] = (0.3, 1.0),
    stay_prob: float = 0.985,
    seed: SeedLike = None,
) -> np.ndarray:
    """Markov-switching AR(1): per-regime coefficient and noise scale.

    The chain stays in its regime with probability *stay_prob* per step and
    otherwise jumps uniformly to another regime.  A single global ARIMA fit
    averages the regimes and underperforms a nonlinear model.
    """
    if n < 0:
        raise ConfigurationError(f"n must be non-negative, got {n}")
    if len(phis) != len(sigmas) or len(phis) < 2:
        raise ConfigurationError("need >= 2 regimes with matching phi/sigma")
    if not all(-1.0 < p < 1.0 for p in phis):
        raise ConfigurationError(f"all phis must satisfy |phi| < 1, got {phis}")
    if not (0.0 < stay_prob < 1.0):
        raise ConfigurationError(f"stay_prob must be in (0, 1), got {stay_prob}")
    rng = as_generator(seed)
    k = len(phis)
    regime = int(rng.integers(0, k))
    x = 0.0
    out = np.empty(n)
    jumps = rng.random(n)
    for t in range(n):
        if jumps[t] > stay_prob:
            choices = [r for r in range(k) if r != regime]
            regime = int(choices[int(rng.integers(0, k - 1))])
        x = phis[regime] * x + rng.normal(0.0, sigmas[regime])
        out[t] = x
    return out
