"""Per-VM workload streams.

Each VM in the simulator carries a :class:`WorkloadStream`: a lazily
generated, normalized ``(t, NUM_RESOURCES)`` series the monitor samples
every round.  Streams mix a diurnal base, AR(1) wander, and optional
*overload ramps* — scheduled future excursions above the alert threshold
that let experiments verify the pre-alert machinery actually fires *before*
the overload lands.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.cluster.resources import NUM_RESOURCES
from repro.errors import ConfigurationError
from repro.rng import SeedLike, as_generator, spawn
from repro.traces.diurnal import diurnal_pattern
from repro.traces.noise import ar1_noise, bursty_spikes

__all__ = ["WorkloadStream", "overload_ramp", "generate_streams"]


def overload_ramp(
    n: int,
    start: int,
    ramp_len: int,
    peak: float = 0.98,
) -> np.ndarray:
    """Additive ramp reaching *peak* at ``start + ramp_len``, then holding.

    Used to inject a predictable upcoming overload: the ramp's early slope
    is visible to the forecaster several steps before the threshold is
    crossed.
    """
    if n < 0:
        raise ConfigurationError(f"n must be non-negative, got {n}")
    if start < 0 or ramp_len < 1:
        raise ConfigurationError(
            f"ramp needs start >= 0 and ramp_len >= 1, got ({start}, {ramp_len})"
        )
    out = np.zeros(n)
    if start >= n:
        return out
    t = np.arange(n)
    rising = (t >= start) & (t < start + ramp_len)
    out[rising] = peak * (t[rising] - start + 1) / ramp_len
    out[t >= start + ramp_len] = peak
    return out


@dataclass
class WorkloadStream:
    """Pre-generated normalized workload series for one VM.

    Attributes
    ----------
    profile:
        ``(length, NUM_RESOURCES)`` array in ``[0, 1]``.
    """

    profile: np.ndarray

    def __post_init__(self) -> None:
        p = np.asarray(self.profile, dtype=np.float64)
        if p.ndim != 2 or p.shape[1] != NUM_RESOURCES:
            raise ConfigurationError(
                f"profile must be (t, {NUM_RESOURCES}), got {p.shape}"
            )
        if ((p < 0) | (p > 1)).any():
            raise ConfigurationError("profile values must lie in [0, 1]")
        object.__setattr__(self, "profile", p)

    @property
    def length(self) -> int:
        return int(self.profile.shape[0])

    def at(self, t: int) -> np.ndarray:
        """Profile row at time *t* (clamped to the final row past the end)."""
        return self.profile[min(t, self.length - 1)]

    def history(self, t: int, window: int) -> np.ndarray:
        """Rows ``[max(0, t-window+1) .. t]`` — forecaster input."""
        lo = max(0, t - window + 1)
        return self.profile[lo : t + 1]

    # ------------------------------------------------------------------ #
    @classmethod
    def generate(
        cls,
        length: int,
        *,
        base_level: float = 0.45,
        diurnal_period: int = 96,
        diurnal_amplitude: float = 0.15,
        wander_sigma: float = 0.03,
        burst_rate: float = 0.01,
        ramps: Optional[List[Tuple[int, int, int, float]]] = None,
        seed: SeedLike = None,
    ) -> "WorkloadStream":
        """Synthesize a stream.

        Parameters
        ----------
        ramps:
            Optional list of ``(resource, start, ramp_len, peak)`` overload
            injections added to individual resource columns.
        """
        if length < 1:
            raise ConfigurationError(f"length must be >= 1, got {length}")
        gens = spawn(seed, 2 * NUM_RESOURCES)
        cols = []
        for r in range(NUM_RESOURCES):
            base = diurnal_pattern(
                length,
                diurnal_period,
                base=base_level,
                amplitude=diurnal_amplitude,
                peak_phase=0.5 + 0.05 * r,  # stagger resource peaks
                sharpness=1.4,
            )
            wander = ar1_noise(length, phi=0.85, sigma=wander_sigma, seed=gens[2 * r])
            bursts = bursty_spikes(
                length, rate=burst_rate, scale=0.12, decay=0.5, seed=gens[2 * r + 1]
            )
            cols.append(base + wander + bursts)
        prof = np.stack(cols, axis=1)
        if ramps:
            for resource, start, ramp_len, peak in ramps:
                if not (0 <= resource < NUM_RESOURCES):
                    raise ConfigurationError(f"unknown resource index {resource}")
                prof[:, resource] += overload_ramp(length, start, ramp_len, peak)
        return cls(profile=np.clip(prof, 0.0, 1.0))


def generate_streams(
    count: int,
    length: int,
    *,
    base_level: float = 0.45,
    diurnal_period: int = 96,
    diurnal_amplitude: float = 0.15,
    wander_sigma: float = 0.03,
    burst_rate: float = 0.01,
    seed: SeedLike = None,
) -> List[WorkloadStream]:
    """Vectorized batch synthesis of *count* workload streams.

    Functionally the same recipe as :meth:`WorkloadStream.generate`
    (diurnal base + AR(1) wander + bursts per resource) but generated as
    ``(count, length)`` matrices with one ``lfilter`` pass per resource —
    paper-scale fleets (thousands of VMs) build in milliseconds instead
    of seconds.  Stream *i* of a batch is reproducible from
    ``(seed, count, i)`` but differs from ``WorkloadStream.generate``'s
    single-stream derivation; pick one path per experiment.

    Ramps are not supported here — inject them per-VM afterwards by
    rebuilding the few affected streams with :meth:`WorkloadStream.generate`
    or adding :func:`overload_ramp` onto ``stream.profile`` columns.
    """
    from scipy.signal import lfilter

    from repro.traces.diurnal import diurnal_pattern

    if count < 0:
        raise ConfigurationError(f"count must be non-negative, got {count}")
    if length < 1:
        raise ConfigurationError(f"length must be >= 1, got {length}")
    if count == 0:
        return []
    rng = as_generator(seed)
    profiles = np.empty((count, length, NUM_RESOURCES))
    for r in range(NUM_RESOURCES):
        base = diurnal_pattern(
            length,
            diurnal_period,
            base=base_level,
            amplitude=diurnal_amplitude,
            peak_phase=0.5 + 0.05 * r,
            sharpness=1.4,
        )
        # AR(1) wander for all streams at once (lfilter along time axis)
        eps = rng.normal(0.0, wander_sigma, size=(count, length))
        wander = lfilter([1.0], [1.0, -0.85], eps, axis=1)
        # bursts: per-step starts with exponential heights, geometric decay
        starts = rng.random((count, length)) < burst_rate
        heights = np.where(starts, rng.exponential(0.12, size=(count, length)), 0.0)
        bursts = lfilter([1.0], [1.0, -0.5], heights, axis=1)
        profiles[:, :, r] = base[None, :] + wander + bursts
    np.clip(profiles, 0.0, 1.0, out=profiles)
    return [WorkloadStream(profile=profiles[i]) for i in range(count)]
