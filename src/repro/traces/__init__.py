"""Synthetic trace generation.

The paper evaluates prediction on proprietary traces from "ZopleCloud
Corp." (weekly switch traffic, VM CPU utilization, disk I/O — Figs. 3–5).
Those traces are not public, so this subpackage synthesizes equivalents
with the statistical structure the evaluation relies on:

* strong diurnal/weekly seasonality with regular peaks and troughs
  (Fig. 5) — the regime where ARIMA after differencing shines;
* nonlinear, chaotic components (Mackey–Glass, regime switching) — the
  regime where NARNET outperforms ARIMA;
* bursty, heavy-tailed noise for CPU and disk I/O (Figs. 3–4).

See DESIGN.md §2 for the substitution rationale.
"""

from repro.traces.noise import ar1_noise, bursty_spikes, white_noise
from repro.traces.diurnal import diurnal_pattern, weekly_pattern
from repro.traces.nonlinear import logistic_map, mackey_glass, regime_switching
from repro.traces.zoplecloud import (
    ZopleCloudTraces,
    cpu_trace,
    disk_io_trace,
    mixed_trace,
    nonlinear_trace,
    weekly_traffic_trace,
)
from repro.traces.workload import WorkloadStream, generate_streams, overload_ramp
from repro.traces.adversarial import adversarial_series, adversarial_streams

__all__ = [
    "white_noise",
    "ar1_noise",
    "bursty_spikes",
    "diurnal_pattern",
    "weekly_pattern",
    "mackey_glass",
    "logistic_map",
    "regime_switching",
    "ZopleCloudTraces",
    "cpu_trace",
    "disk_io_trace",
    "weekly_traffic_trace",
    "nonlinear_trace",
    "mixed_trace",
    "WorkloadStream",
    "generate_streams",
    "overload_ramp",
    "adversarial_series",
    "adversarial_streams",
]
