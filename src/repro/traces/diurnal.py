"""Seasonal (diurnal / weekly) deterministic components.

Telecommunication-style workloads have explicit diurnal patterns
(Sec. I cites [24]); web traffic additionally dips on weekends.  These
builders return the *deterministic* seasonal skeleton; callers add noise
from :mod:`repro.traces.noise`.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["diurnal_pattern", "weekly_pattern"]


def diurnal_pattern(
    n: int,
    period: int,
    *,
    base: float = 0.5,
    amplitude: float = 0.4,
    peak_phase: float = 0.58,
    sharpness: float = 2.0,
    harmonics: Sequence[float] = (1.0, 0.35, 0.1),
) -> np.ndarray:
    """One-day repeating pattern with a sharpened afternoon peak.

    Parameters
    ----------
    n, period:
        Total samples and samples per day.
    base, amplitude:
        Mean level and swing of the pattern.
    peak_phase:
        Fraction of the day where the main peak sits (0.58 ≈ 14:00).
    sharpness:
        >1 makes peaks narrower than troughs (raising the positive half
        of the wave to this power), matching real diurnal load shapes.
    harmonics:
        Relative weights of the fundamental and its overtones.
    """
    if period < 2:
        raise ConfigurationError(f"period must be >= 2, got {period}")
    if n < 0:
        raise ConfigurationError(f"n must be non-negative, got {n}")
    if amplitude < 0:
        raise ConfigurationError(f"amplitude must be non-negative, got {amplitude}")
    t = np.arange(n) / period
    wave = np.zeros(n)
    for k, w in enumerate(harmonics, start=1):
        wave += w * np.cos(2.0 * np.pi * k * (t - peak_phase))
    norm = np.sum(np.abs(harmonics))
    if norm > 0:
        wave /= norm
    if sharpness != 1.0:
        pos = wave > 0
        wave[pos] = wave[pos] ** sharpness
    return base + amplitude * wave


def weekly_pattern(
    n: int,
    period: int,
    *,
    weekend_factor: float = 0.6,
    days_per_week: int = 7,
    weekend_days: Sequence[int] = (5, 6),
) -> np.ndarray:
    """Multiplicative weekday/weekend modulation.

    Returns an array of per-sample multipliers: 1.0 on weekdays,
    *weekend_factor* on weekend days, with a half-day cosine ramp at the
    boundaries so the modulation is smooth (step changes would confuse
    low-order ARIMA differencing more than real traffic does).
    """
    if period < 2:
        raise ConfigurationError(f"period must be >= 2, got {period}")
    if weekend_factor <= 0:
        raise ConfigurationError(f"weekend_factor must be positive, got {weekend_factor}")
    day = (np.arange(n) // period) % days_per_week
    target = np.where(np.isin(day, weekend_days), weekend_factor, 1.0)
    if n == 0:
        return target
    # Smooth with a centered moving average half a day wide.
    w = max(1, period // 2)
    kernel = np.ones(w) / w
    sm = np.convolve(target, kernel, mode="same")
    # convolve shrinks edges towards 0 where the kernel hangs off the
    # array; renormalize by the effective kernel mass.
    mass = np.convolve(np.ones(n), kernel, mode="same")
    return sm / mass
