"""Adversarial workload traces: every pool member systematically wrong.

The robustness question behind the fallback governor
(:mod:`repro.sim.fallback`) is not "how accurate are the forecasters" but
"how much damage can they do when they are all wrong at once".  These
traces are engineered to keep the entire default model pool wrong in the
*damaging* direction on every regime change:

* long calm plateaus end in abrupt overload cliffs — persistence models
  (NaiveLast) and differenced AR models both extrapolate the plateau, so
  the pre-alert fires exactly zero rounds early;
* the cliff collapses just as abruptly — trend followers now extrapolate
  the spike, manufacturing false alerts (wasteful migrations) during the
  recovery;
* plateau/cliff phases are jittered per VM so the fleet's mistakes do not
  cancel in the host aggregate.

Unlike :func:`~repro.traces.workload.overload_ramp` (whose early slope is
deliberately visible to the forecaster), the adversarial cliff carries no
warning in-band: any model selected by trailing MSE during the plateau is
maximally confident and maximally wrong at the transition.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.cluster.resources import NUM_RESOURCES
from repro.errors import ConfigurationError
from repro.rng import SeedLike, spawn
from repro.traces.workload import WorkloadStream

__all__ = ["adversarial_series", "adversarial_streams"]


def adversarial_series(
    length: int,
    *,
    period: int = 12,
    spike_len: int = 3,
    low: float = 0.30,
    high: float = 0.97,
    noise: float = 0.015,
    phase: int = 0,
    seed: SeedLike = None,
) -> np.ndarray:
    """One deceptive calm-then-cliff series in ``[0, 1]``.

    ``period`` rounds per cycle, the last *spike_len* of which sit at
    *high*; the rest idle at *low* plus a little noise so differenced
    models keep estimating a near-zero trend.  *phase* rotates the cycle.
    """
    if length < 1:
        raise ConfigurationError(f"length must be >= 1, got {length}")
    if not (1 <= spike_len < period):
        raise ConfigurationError(
            f"need 1 <= spike_len < period, got {spike_len}/{period}"
        )
    if not (0.0 <= low < high <= 1.0):
        raise ConfigurationError(
            f"need 0 <= low < high <= 1, got ({low}, {high})"
        )
    rng = spawn(seed, 1)[0]
    t = (np.arange(length) + phase) % period
    series = np.where(t >= period - spike_len, high, low)
    series = series + rng.normal(0.0, noise, size=length)
    return np.clip(series, 0.0, 1.0)


def adversarial_streams(
    count: int,
    length: int,
    *,
    period: int = 12,
    spike_len: int = 3,
    low: float = 0.30,
    high: float = 0.97,
    noise: float = 0.015,
    phase_jitter: int = 2,
    seed: SeedLike = None,
) -> List[WorkloadStream]:
    """*count* per-VM streams under the adversarial regime.

    Every resource component of a VM follows the same cliff schedule (a
    VM pegged on one resource stresses its host either way — see
    :meth:`~repro.sim.reactive.DemandDrivenWorkload.vm_utilization`);
    phases are jittered per VM within ``[0, phase_jitter]`` rounds from
    the seed.  The jitter window is deliberately *small*: spreading
    phases over the whole period would average the cliffs away at the
    host level, while a slight smear keeps host aggregates jumping yet
    stops every VM from being a bitwise clone.
    """
    if count < 0:
        raise ConfigurationError(f"count must be non-negative, got {count}")
    if not (0 <= phase_jitter < period):
        raise ConfigurationError(
            f"need 0 <= phase_jitter < period, got {phase_jitter}/{period}"
        )
    gens = spawn(seed, count + 1)
    phase_rng = gens[0]
    phases = phase_rng.integers(0, phase_jitter + 1, size=count) if count else []
    streams: List[WorkloadStream] = []
    for i in range(count):
        col = adversarial_series(
            length,
            period=period,
            spike_len=spike_len,
            low=low,
            high=high,
            noise=noise,
            phase=int(phases[i]),
            seed=gens[i + 1],
        )
        profile = np.tile(col[:, None], (1, NUM_RESOURCES))
        streams.append(WorkloadStream(profile=profile))
    return streams
