"""Rack records.

A rack is the paper's basic management unit: a set of hosts plus a ToR
switch with its shim layer.  The ToR's uplink capacity bounds how much VM
traffic the PRIORITY β-selection may move through it (Eq. (10)).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.errors import ConfigurationError

__all__ = ["Rack"]


@dataclass
class Rack:
    """One rack / delegation region ``v_i``.

    ``rack_id`` equals the ToR node id in the :class:`~repro.topology.base.Topology`
    (ToR nodes are the id-prefix by construction).
    """

    rack_id: int
    host_ids: List[int] = field(default_factory=list)
    tor_capacity: int = 100

    def __post_init__(self) -> None:
        if self.rack_id < 0:
            raise ConfigurationError(f"rack_id must be non-negative, got {self.rack_id}")
        if self.tor_capacity <= 0:
            raise ConfigurationError(
                f"rack {self.rack_id}: ToR capacity must be positive, got {self.tor_capacity}"
            )
        if len(set(self.host_ids)) != len(self.host_ids):
            raise ConfigurationError(f"rack {self.rack_id}: duplicate host ids")

    @property
    def num_hosts(self) -> int:
        return len(self.host_ids)
