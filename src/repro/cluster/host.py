"""Physical host (server) records.

The paper calls servers "hosts" (``h_ij``) to avoid clashing with switches.
A host has a fixed capacity budget; the sum of capacities of the VMs placed
on it may never exceed that budget (constraint Eq. (8)/(9) of the problem
formulation, enforced by :class:`~repro.cluster.placement.Placement`).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError

__all__ = ["Host"]


@dataclass
class Host:
    """One physical server ``h_ij``.

    ``host_id`` is global; ``rack`` is the delegation-node id ``v_i`` it
    lives under (fixed for the host's lifetime — Sheriff migrates VMs,
    never servers).
    """

    host_id: int
    rack: int
    capacity: int

    def __post_init__(self) -> None:
        if self.host_id < 0:
            raise ConfigurationError(f"host_id must be non-negative, got {self.host_id}")
        if self.rack < 0:
            raise ConfigurationError(f"host {self.host_id}: negative rack id {self.rack}")
        if self.capacity <= 0:
            raise ConfigurationError(
                f"host {self.host_id}: capacity must be positive, got {self.capacity}"
            )
