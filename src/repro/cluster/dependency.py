"""Dependency graph ``G_d`` (Sec. II-C).

The paper defines ``G_d = (V, E_d)`` over delegation nodes: racks ``v_i``
and ``v_j`` are dependent when some VM in ``v_i`` communicates with some VM
in ``v_j``.  We store the underlying VM-pair dependencies and *project* them
onto racks through the current placement, because migrations move VMs and
therefore move rack-level edges.

Two dependent VMs "usually cannot reach an accommodation if hosted on the
same physical server" — ``G_d`` doubles as a conflict graph: the matching
step refuses destinations that would co-locate dependent VMs on one host.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Set, Tuple

import numpy as np

from repro.cluster.placement import Placement
from repro.errors import PlacementError

__all__ = ["DependencyGraph"]


class DependencyGraph:
    """VM-pair dependency store with rack-level projection.

    Parameters
    ----------
    num_vms:
        Total VM population; pair endpoints must be below this.
    pairs:
        Iterable of dependent ``(vm_a, vm_b)`` pairs (undirected).
    """

    def __init__(self, num_vms: int, pairs: Iterable[Tuple[int, int]] = ()) -> None:
        if num_vms < 0:
            raise PlacementError(f"num_vms must be non-negative, got {num_vms}")
        self.num_vms = num_vms
        self._nbrs: List[Set[int]] = [set() for _ in range(num_vms)]
        self._pairs_cache: np.ndarray = None  # type: ignore[assignment]
        for a, b in pairs:
            self.add_pair(a, b)

    def add_pair(self, a: int, b: int) -> None:
        """Register an undirected dependency between VMs *a* and *b*."""
        if not (0 <= a < self.num_vms and 0 <= b < self.num_vms):
            raise PlacementError(f"dependency pair ({a}, {b}) out of range")
        if a == b:
            raise PlacementError(f"VM {a} cannot depend on itself")
        self._nbrs[a].add(b)
        self._nbrs[b].add(a)
        self._pairs_cache = None

    def pairs(self) -> np.ndarray:
        """``(P, 2)`` array of dependent pairs with ``a < b``, lexicographic.

        The row order matches iterating VMs ascending and each VM's
        neighbors ascending, so consumers that assign ids per pair (e.g.
        flow tables) stay deterministic.  Cached until the next
        :meth:`add_pair`.
        """
        if self._pairs_cache is None:
            rows: List[Tuple[int, int]] = []
            for a in range(self.num_vms):
                rows.extend((a, b) for b in sorted(self._nbrs[a]) if b > a)
            self._pairs_cache = (
                np.asarray(rows, dtype=np.int64)
                if rows
                else np.empty((0, 2), dtype=np.int64)
            )
        return self._pairs_cache

    def neighbors(self, vm: int) -> Set[int]:
        """VMs dependent on *vm* (live view; do not mutate)."""
        return self._nbrs[vm]

    def are_dependent(self, a: int, b: int) -> bool:
        return b in self._nbrs[a]

    @property
    def num_pairs(self) -> int:
        return sum(len(s) for s in self._nbrs) // 2

    # ------------------------------------------------------------------ #
    # projections through a placement
    # ------------------------------------------------------------------ #
    def rack_edges(self, placement: Placement) -> Set[Tuple[int, int]]:
        """Rack-level edge set ``E_d`` under the current placement.

        Each returned tuple ``(i, j)`` has ``i < j``; intra-rack
        dependencies do not create edges (a rack trivially "neighbors"
        itself, per the paper's ``N_d(v_i)`` including ``v_i``).
        """
        edges: Set[Tuple[int, int]] = set()
        racks = placement.host_rack[placement.vm_host]
        for a in range(self.num_vms):
            ra = int(racks[a])
            for b in self._nbrs[a]:
                if b <= a:
                    continue
                rb = int(racks[b])
                if ra != rb:
                    edges.add((ra, rb) if ra < rb else (rb, ra))
        return edges

    def rack_neighbors(self, placement: Placement, rack: int) -> Set[int]:
        """``N_d(v_i)`` — racks dependent on *rack* (includes *rack* itself)."""
        out: Set[int] = {rack}
        vms = placement.vms_in_rack(rack)
        racks = placement.host_rack[placement.vm_host]
        for a in vms:
            for b in self._nbrs[int(a)]:
                out.add(int(racks[b]))
        return out

    def conflicts_on_host(self, placement: Placement, vm: int, host: int) -> bool:
        """Would placing *vm* on *host* co-locate it with a dependent VM?

        Used as the conflict-graph check before accepting a migration
        destination (Sec. II-C: dependent VMs cannot share a server).
        """
        on_host = placement.vms_on_host(host)
        nbrs = self._nbrs[vm]
        return any(int(o) in nbrs for o in on_host)

    # ------------------------------------------------------------------ #
    # generators
    # ------------------------------------------------------------------ #
    @classmethod
    def random(
        cls,
        num_vms: int,
        avg_degree: float,
        rng: np.random.Generator,
    ) -> "DependencyGraph":
        """Erdős–Rényi-style random dependencies with the given mean degree.

        Multi-tier applications packaged into VMs typically talk to a
        handful of peers; ``avg_degree`` around 1–3 mimics that.
        """
        g = cls(num_vms)
        if num_vms < 2 or avg_degree <= 0:
            return g
        n_pairs = int(round(avg_degree * num_vms / 2.0))
        made = 0
        attempts = 0
        while made < n_pairs and attempts < 20 * n_pairs + 100:
            attempts += 1
            a, b = rng.integers(0, num_vms, size=2)
            if a == b or g.are_dependent(int(a), int(b)):
                continue
            g.add_pair(int(a), int(b))
            made += 1
        return g
