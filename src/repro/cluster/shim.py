"""Shim-layer view of a delegation region.

The shim (Sec. II-B) is the per-rack management agent.  Its *dominating
region* is its own rack; its *migration horizon* is the set of one-hop
wired neighbor racks — racks reachable through a single intermediate
switch, which is exactly the regional scope the paper's conclusion states
("dominate its local region by one hop wired neighbors").

:class:`ShimView` is a read-mostly helper: it precomputes the neighbor-rack
set from the topology once, and exposes the queries the distributed
manager (Alg. 1) needs each round.
"""

from __future__ import annotations

from typing import FrozenSet, List, Set

import numpy as np

from repro.cluster.cluster import Cluster
from repro.errors import TopologyError
from repro.topology.base import Topology

__all__ = ["ShimView", "neighbor_racks"]


def neighbor_racks(topology: Topology, rack: int) -> FrozenSet[int]:
    """Racks sharing at least one switch with *rack* (excluding itself).

    In Fat-Tree this is the rest of the pod; in BCube it is every rack that
    shares a level-1+ switch.  This is the candidate destination set of the
    regional VMMIGRATION.
    """
    if not (0 <= rack < topology.num_racks):
        raise TopologyError(f"rack {rack} out of range 0..{topology.num_racks - 1}")
    out: Set[int] = set()
    for sw in topology.neighbors(rack):
        if sw < topology.num_racks:
            # direct rack-rack link (possible in server-centric fabrics)
            out.add(int(sw))
            continue
        for other in topology.neighbors(int(sw)):
            if other < topology.num_racks:
                out.add(int(other))
    out.discard(rack)
    return frozenset(out)


class ShimView:
    """Per-rack management viewpoint bound to a cluster.

    Parameters
    ----------
    cluster:
        The shared cluster state.
    rack:
        The delegation node this shim runs on.
    """

    def __init__(self, cluster: Cluster, rack: int) -> None:
        self.cluster = cluster
        self.rack = rack
        self.neighbors: FrozenSet[int] = neighbor_racks(cluster.topology, rack)
        self._candidate_hosts: np.ndarray = None  # computed on first use

    @property
    def region(self) -> FrozenSet[int]:
        """Own rack plus migration-horizon racks (``N_r ∪ {v_i}``)."""
        return self.neighbors | {self.rack}

    def local_vms(self) -> np.ndarray:
        """VM ids currently inside the dominating rack."""
        return self.cluster.placement.vms_in_rack(self.rack)

    def local_hosts(self) -> np.ndarray:
        return self.cluster.placement.hosts_in_rack(self.rack)

    def candidate_hosts(self) -> np.ndarray:
        """Hosts in neighbor racks — possible migration destinations.

        ``host_rack`` and the neighbor set are both immutable for the
        lifetime of a fabric (hosts may die, but dying changes capacity,
        not rack membership), so the scan runs once and the result is
        cached.  Callers treat the returned array as read-only.
        """
        if self._candidate_hosts is None:
            pl = self.cluster.placement
            mask = np.isin(pl.host_rack, list(self.neighbors))
            self._candidate_hosts = np.nonzero(mask)[0]
        return self._candidate_hosts

    def search_space(self, num_candidate_vms: int) -> int:
        """Candidate (VM, destination-host) pairs this shim examines.

        The Fig. 12/14 metric: a regional shim only pairs its candidate VMs
        against hosts in neighboring racks, while a centralized manager
        pairs them against *every* host in the DCN.
        """
        return num_candidate_vms * int(self.candidate_hosts().shape[0])
