"""Cluster model: racks, hosts, VMs, placement and the dependency graph.

This subpackage holds the paper's Sec. II-C objects:

* ``V = {v_i}`` — delegation (shim) nodes, one per rack;
* ``H_i = {h_ij}`` — hosts inside rack ``v_i``;
* ``M_ij = {m^k_ij}`` — VMs placed on host ``h_ij``;
* the location function ``ξ`` (here: the :class:`~repro.cluster.placement.Placement`
  arrays mapping VM → host → rack);
* the dependency graph ``G_d`` over delegation nodes, induced from VM-pair
  dependencies.
"""

from repro.cluster.resources import (
    NUM_RESOURCES,
    RESOURCE_NAMES,
    ResourceKind,
    WorkloadProfile,
    normalize_profile,
)
from repro.cluster.vm import VM
from repro.cluster.host import Host
from repro.cluster.rack import Rack
from repro.cluster.dependency import DependencyGraph
from repro.cluster.placement import Placement
from repro.cluster.snapshot import FleetSnapshot
from repro.cluster.cluster import Cluster, build_cluster
from repro.cluster.packing import POLICIES, build_cluster_packed, pack
from repro.cluster.shim import ShimView

__all__ = [
    "NUM_RESOURCES",
    "RESOURCE_NAMES",
    "ResourceKind",
    "WorkloadProfile",
    "normalize_profile",
    "VM",
    "Host",
    "Rack",
    "DependencyGraph",
    "Placement",
    "FleetSnapshot",
    "Cluster",
    "build_cluster",
    "build_cluster_packed",
    "pack",
    "POLICIES",
    "ShimView",
]
