"""Initial VM placement policies (bin packing).

:func:`repro.cluster.cluster.build_cluster` fills each host locally; this
module separates the VM *population* from its *placement* so experiments
can start from qualitatively different initial states:

* ``first_fit`` / ``first_fit_decreasing`` — classic packers, produce
  consolidated (front-loaded) fleets;
* ``best_fit`` — tightest-gap packing, maximally consolidated;
* ``worst_fit`` — emptiest-host-first, the most balanced start;
* ``round_robin`` — stripe across hosts;
* ``random_fit`` — uniform among feasible hosts.

:func:`pack` dispatches by name; :func:`build_cluster_packed` is a
factory mirroring ``build_cluster`` but with an explicit policy.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.cluster.cluster import Cluster
from repro.cluster.dependency import DependencyGraph
from repro.cluster.host import Host
from repro.cluster.placement import Placement
from repro.cluster.rack import Rack
from repro.cluster.vm import VM
from repro.errors import CapacityError, ConfigurationError
from repro.rng import SeedLike, as_generator
from repro.topology.base import Topology

__all__ = ["POLICIES", "pack", "build_cluster_packed"]


def _pack_greedy(
    sizes: np.ndarray,
    capacities: np.ndarray,
    choose: Callable[[np.ndarray, int], int],
    order: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Shared packing loop: place each VM on ``choose(free, size)``."""
    n = sizes.shape[0]
    free = capacities.astype(np.int64).copy()
    out = np.empty(n, dtype=np.int64)
    idx = np.arange(n) if order is None else order
    for i in idx:
        size = int(sizes[i])
        host = choose(free, size)
        if host < 0:
            raise CapacityError(
                f"no host can take VM of size {size} "
                f"(max free {int(free.max()) if free.size else 0})"
            )
        out[i] = host
        free[host] -= size
    return out


def first_fit(sizes, capacities, rng=None):
    """Lowest-id host with room."""
    def choose(free, size):
        ok = np.nonzero(free >= size)[0]
        return int(ok[0]) if ok.size else -1

    return _pack_greedy(np.asarray(sizes), np.asarray(capacities), choose)


def first_fit_decreasing(sizes, capacities, rng=None):
    """First-fit after sorting VMs by size descending (better packing)."""
    s = np.asarray(sizes)
    order = np.argsort(-s, kind="stable")

    def choose(free, size):
        ok = np.nonzero(free >= size)[0]
        return int(ok[0]) if ok.size else -1

    return _pack_greedy(s, np.asarray(capacities), choose, order=order)


def best_fit(sizes, capacities, rng=None):
    """Host whose remaining gap after placement is smallest."""
    def choose(free, size):
        ok = np.nonzero(free >= size)[0]
        if not ok.size:
            return -1
        return int(ok[np.argmin(free[ok] - size)])

    return _pack_greedy(np.asarray(sizes), np.asarray(capacities), choose)


def worst_fit(sizes, capacities, rng=None):
    """Emptiest feasible host — produces the most balanced start."""
    def choose(free, size):
        ok = np.nonzero(free >= size)[0]
        if not ok.size:
            return -1
        return int(ok[np.argmax(free[ok])])

    return _pack_greedy(np.asarray(sizes), np.asarray(capacities), choose)


def round_robin(sizes, capacities, rng=None):
    """Stripe VMs across hosts, skipping full ones."""
    n_hosts = len(capacities)
    cursor = [0]

    def choose(free, size):
        for step in range(n_hosts):
            h = (cursor[0] + step) % n_hosts
            if free[h] >= size:
                cursor[0] = (h + 1) % n_hosts
                return h
        return -1

    return _pack_greedy(np.asarray(sizes), np.asarray(capacities), choose)


def random_fit(sizes, capacities, rng=None):
    """Uniformly random feasible host."""
    gen = as_generator(rng)

    def choose(free, size):
        ok = np.nonzero(free >= size)[0]
        if not ok.size:
            return -1
        return int(gen.choice(ok))

    return _pack_greedy(np.asarray(sizes), np.asarray(capacities), choose)


POLICIES: Dict[str, Callable] = {
    "first_fit": first_fit,
    "first_fit_decreasing": first_fit_decreasing,
    "best_fit": best_fit,
    "worst_fit": worst_fit,
    "round_robin": round_robin,
    "random_fit": random_fit,
}


def pack(
    sizes: Sequence[int],
    capacities: Sequence[int],
    policy: str = "first_fit",
    *,
    seed: SeedLike = None,
) -> np.ndarray:
    """Place VM *sizes* into host *capacities* under *policy*.

    Returns the host index per VM; raises :class:`CapacityError` when a
    VM fits nowhere (no backtracking — these are the classic greedy
    heuristics, not exact bin packing).
    """
    if policy not in POLICIES:
        raise ConfigurationError(
            f"unknown policy {policy!r}; choose from {sorted(POLICIES)}"
        )
    s = np.asarray(sizes, dtype=np.int64)
    c = np.asarray(capacities, dtype=np.int64)
    if s.ndim != 1 or c.ndim != 1 or c.size == 0:
        raise ConfigurationError("sizes and capacities must be non-empty 1-D")
    if (s <= 0).any() or (c <= 0).any():
        raise ConfigurationError("sizes and capacities must be positive")
    return POLICIES[policy](s, c, seed)


def build_cluster_packed(
    topology: Topology,
    *,
    policy: str = "worst_fit",
    hosts_per_rack: int = 4,
    host_capacity: int = 100,
    vm_capacity_max: int = 20,
    fill_fraction: float = 0.5,
    tor_capacity: int = 400,
    dependency_degree: float = 1.0,
    delay_sensitive_fraction: float = 0.1,
    seed: SeedLike = None,
) -> Cluster:
    """Like :func:`build_cluster`, but a global VM population placed by *policy*.

    The VM population targets ``fill_fraction`` of total fleet capacity;
    its distribution over hosts is then entirely the policy's doing, so
    ``first_fit`` yields a consolidated skewed start while ``worst_fit``
    yields a balanced one.
    """
    if not (0.0 < fill_fraction <= 0.95):
        raise ConfigurationError(
            f"fill_fraction must be in (0, 0.95], got {fill_fraction}"
        )
    rng = as_generator(seed)
    n_racks = topology.num_racks
    racks: List[Rack] = []
    hosts: List[Host] = []
    for r in range(n_racks):
        ids = list(range(r * hosts_per_rack, (r + 1) * hosts_per_rack))
        racks.append(Rack(rack_id=r, host_ids=ids, tor_capacity=tor_capacity))
        for hid in ids:
            hosts.append(Host(host_id=hid, rack=r, capacity=host_capacity))

    budget = int(fill_fraction * host_capacity * len(hosts))
    sizes: List[int] = []
    used = 0
    while used < budget:
        cap = int(rng.integers(1, vm_capacity_max + 1))
        if used + cap > budget:
            cap = budget - used
            if cap <= 0:
                break
        sizes.append(cap)
        used += cap
    vm_host = pack(sizes, [h.capacity for h in hosts], policy, seed=rng)

    vms = [
        VM(
            vm_id=i,
            capacity=int(sizes[i]),
            value=float(rng.uniform(1.0, 10.0)),
            delay_sensitive=bool(rng.random() < delay_sensitive_fraction),
        )
        for i in range(len(sizes))
    ]
    placement = Placement(vms, hosts, vm_host)
    deps = DependencyGraph.random(len(vms), dependency_degree, rng)
    return Cluster(
        topology=topology,
        racks=racks,
        hosts=hosts,
        vms=vms,
        placement=placement,
        dependencies=deps,
    )
