"""The :class:`Cluster` aggregate and its factory.

A cluster binds together everything Sheriff manages: the wired topology,
rack/host/VM inventory, the live placement, and the dependency graph.  The
factory :func:`build_cluster` populates a fabric the way the paper's
simulation does — homogeneous hosts per rack, VM capacities up to 20 units,
an initial placement drawn at random but respecting capacities.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.cluster.dependency import DependencyGraph
from repro.cluster.host import Host
from repro.cluster.placement import Placement
from repro.cluster.rack import Rack
from repro.cluster.vm import VM
from repro.errors import ConfigurationError, PlacementError
from repro.rng import SeedLike, as_generator
from repro.topology.base import Topology

__all__ = ["Cluster", "build_cluster"]


@dataclass
class Cluster:
    """Topology + inventory + placement + dependencies.

    The simulator and the managers only ever share one ``Cluster``; cloning
    the placement (:meth:`Placement.clone`) is how baselines explore
    alternative plans without disturbing live state.
    """

    topology: Topology
    racks: List[Rack]
    hosts: List[Host]
    vms: List[VM]
    placement: Placement
    dependencies: DependencyGraph

    def __post_init__(self) -> None:
        if len(self.racks) != self.topology.num_racks:
            raise ConfigurationError(
                f"{len(self.racks)} rack records for a topology with "
                f"{self.topology.num_racks} ToR nodes"
            )

    @property
    def num_racks(self) -> int:
        return len(self.racks)

    @property
    def num_hosts(self) -> int:
        return len(self.hosts)

    @property
    def num_vms(self) -> int:
        return len(self.vms)

    def tor_capacity(self, rack: int) -> int:
        return self.racks[rack].tor_capacity

    def workload_std(self) -> float:
        """Std-dev of per-host load percentage — the Fig. 9/10 y-axis."""
        return float(np.std(self.placement.host_load_fraction() * 100.0))

    def workload_mean(self) -> float:
        return float(np.mean(self.placement.host_load_fraction() * 100.0))


def build_cluster(
    topology: Topology,
    *,
    hosts_per_rack: int = 4,
    host_capacity: int = 100,
    vm_capacity_max: int = 20,
    fill_fraction: float = 0.5,
    tor_capacity: int = 400,
    dependency_degree: float = 1.0,
    delay_sensitive_fraction: float = 0.1,
    skew: float = 0.0,
    seed: SeedLike = None,
) -> Cluster:
    """Populate *topology* with hosts and VMs.

    Parameters
    ----------
    hosts_per_rack, host_capacity:
        Homogeneous rack contents.  The paper's facility uses 40 servers per
        rack; simulations here default to 4 to keep benchmark sweeps (pods
        8..48) tractable while preserving the algorithms' behaviour.
    vm_capacity_max:
        VM sizes are drawn uniformly from ``1..vm_capacity_max`` — the
        paper's "VM capacity is set up to value 20".
    fill_fraction:
        Mean fraction of each host's capacity occupied initially.
    skew:
        0 gives a uniform fill; larger values concentrate load on a subset
        of hosts (lognormal multiplier), creating the imbalance Figs. 9/10
        start from.
    dependency_degree:
        Mean VM dependency degree for :meth:`DependencyGraph.random`.
    delay_sensitive_fraction:
        Fraction of VMs marked delay-sensitive (never migrated).
    """
    if not (0.0 < fill_fraction <= 1.0):
        raise ConfigurationError(f"fill_fraction must be in (0, 1], got {fill_fraction}")
    if not (0.0 <= delay_sensitive_fraction <= 1.0):
        raise ConfigurationError(
            f"delay_sensitive_fraction must be in [0, 1], got {delay_sensitive_fraction}"
        )
    if vm_capacity_max < 1 or vm_capacity_max > host_capacity:
        raise ConfigurationError(
            f"vm_capacity_max must be in 1..host_capacity, got {vm_capacity_max}"
        )
    if skew < 0:
        raise ConfigurationError(f"skew must be non-negative, got {skew}")
    rng = as_generator(seed)

    n_racks = topology.num_racks
    racks: List[Rack] = []
    hosts: List[Host] = []
    for r in range(n_racks):
        ids = list(range(r * hosts_per_rack, (r + 1) * hosts_per_rack))
        racks.append(Rack(rack_id=r, host_ids=ids, tor_capacity=tor_capacity))
        for hid in ids:
            hosts.append(Host(host_id=hid, rack=r, capacity=host_capacity))

    # Per-host target fill: lognormal skew normalized to mean fill_fraction.
    n_hosts = len(hosts)
    if skew > 0:
        mult = rng.lognormal(mean=0.0, sigma=skew, size=n_hosts)
        mult /= mult.mean()
    else:
        mult = np.ones(n_hosts)
    target = np.clip(fill_fraction * mult, 0.02, 0.95) * host_capacity

    vms: List[VM] = []
    vm_host: List[int] = []
    for h in range(n_hosts):
        used = 0
        budget = int(target[h])
        while used < budget:
            cap = int(rng.integers(1, vm_capacity_max + 1))
            if used + cap > host_capacity:
                cap = host_capacity - used
                if cap <= 0:
                    break
            value = float(rng.uniform(1.0, 10.0))
            sensitive = bool(rng.random() < delay_sensitive_fraction)
            vms.append(
                VM(
                    vm_id=len(vms),
                    capacity=cap,
                    value=value,
                    delay_sensitive=sensitive,
                )
            )
            vm_host.append(h)
            used += cap

    placement = Placement(vms, hosts, vm_host)
    deps = DependencyGraph.random(len(vms), dependency_degree, rng)
    return Cluster(
        topology=topology,
        racks=racks,
        hosts=hosts,
        vms=vms,
        placement=placement,
        dependencies=deps,
    )
