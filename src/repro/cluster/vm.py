"""Virtual machine records.

A VM in Sheriff carries three scalars the algorithms consume:

* ``capacity`` — its size in the paper's minimum capacity unit (Mbps);
  knapsack weight in PRIORITY (Alg. 2), slot requirement in REQUEST
  (Alg. 4), and numerator of the transmission time ``T(e)`` in Eq. (1).
* ``value`` — its worth to the operator; PRIORITY evicts *low-value,
  large-size* VMs first.
* ``delay_sensitive`` — delay-sensitive VMs are never migrated
  (Alg. 2 line 1 eliminates them).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError

__all__ = ["VM"]


@dataclass
class VM:
    """One virtual machine ``m^k_ij``.

    ``vm_id`` is global and stable; rack/host coordinates live in
    :class:`~repro.cluster.placement.Placement`, not here, so a migration
    never mutates the VM record itself.
    """

    vm_id: int
    capacity: int
    value: float
    delay_sensitive: bool = False

    def __post_init__(self) -> None:
        if self.vm_id < 0:
            raise ConfigurationError(f"vm_id must be non-negative, got {self.vm_id}")
        if self.capacity <= 0:
            raise ConfigurationError(
                f"VM {self.vm_id}: capacity must be a positive integer "
                f"(minimum unit = 1 Mbps), got {self.capacity}"
            )
        if self.value < 0:
            raise ConfigurationError(f"VM {self.vm_id}: negative value {self.value}")
