"""Resource dimensions and workload profiles.

The paper's per-VM workload profile (Sec. IV-A) is

    ``W^k_ij = [CPU, MEM, IO, TRF]``

with every component normalized to ``[0, 1]``.  We fix the dimension order
here once; every array in the library whose trailing axis is "resource"
follows :data:`RESOURCE_NAMES`.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum
from typing import Iterable, Sequence, Union

import numpy as np

from repro.errors import ConfigurationError

__all__ = [
    "ResourceKind",
    "NUM_RESOURCES",
    "RESOURCE_NAMES",
    "WorkloadProfile",
    "normalize_profile",
]


class ResourceKind(IntEnum):
    """Index of each monitored resource in a workload profile."""

    CPU = 0
    MEM = 1
    IO = 2
    TRF = 3


NUM_RESOURCES = 4
RESOURCE_NAMES = ("cpu", "mem", "io", "trf")


def normalize_profile(
    raw: np.ndarray,
    maxima: Union[Sequence[float], np.ndarray],
) -> np.ndarray:
    """Normalize raw resource readings into ``[0, 1]`` component-wise.

    ``raw`` has shape ``(..., NUM_RESOURCES)``; ``maxima`` gives the
    physical full-scale value of each component (e.g. 100 for CPU %,
    NIC line rate for TRF).  Values above full scale clip to 1 — a
    saturated sensor reads saturated.
    """
    raw = np.asarray(raw, dtype=np.float64)
    m = np.asarray(maxima, dtype=np.float64)
    if raw.shape[-1] != NUM_RESOURCES:
        raise ConfigurationError(
            f"profile trailing axis must be {NUM_RESOURCES}, got {raw.shape}"
        )
    if m.shape != (NUM_RESOURCES,):
        raise ConfigurationError(f"maxima must have shape ({NUM_RESOURCES},), got {m.shape}")
    if (m <= 0).any():
        raise ConfigurationError("all resource maxima must be positive")
    return np.clip(raw / m, 0.0, 1.0)


@dataclass(frozen=True)
class WorkloadProfile:
    """A normalized point-in-time workload profile ``W`` of one VM.

    Immutable value object; arithmetic-heavy code paths use raw arrays of
    shape ``(num_vms, NUM_RESOURCES)`` instead and only materialize
    ``WorkloadProfile`` at API boundaries.
    """

    cpu: float
    mem: float
    io: float
    trf: float

    def __post_init__(self) -> None:
        for name in RESOURCE_NAMES:
            x = getattr(self, name)
            if not (0.0 <= x <= 1.0) or not np.isfinite(x):
                raise ConfigurationError(f"profile component {name}={x} outside [0, 1]")

    @classmethod
    def from_array(cls, arr: Iterable[float]) -> "WorkloadProfile":
        vals = list(arr)
        if len(vals) != NUM_RESOURCES:
            raise ConfigurationError(
                f"profile needs {NUM_RESOURCES} components, got {len(vals)}"
            )
        return cls(*map(float, vals))

    def as_array(self) -> np.ndarray:
        return np.array([self.cpu, self.mem, self.io, self.trf], dtype=np.float64)

    def max_component(self) -> float:
        """``max(W)`` — the paper's ALERT magnitude (Sec. IV-C)."""
        return float(max(self.cpu, self.mem, self.io, self.trf))

    def exceeds(self, threshold: float) -> bool:
        """True iff any component exceeds *threshold* (strict, per Eq. ALERT)."""
        return self.max_component() > threshold
