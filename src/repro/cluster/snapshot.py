"""Structure-of-arrays fleet snapshot — the round's shared hot-path state.

The per-shim planning code historically answered every per-entity question
(`which VMs sit on this host?`, `how much room has this host?`, `what are
this VM's PRIORITY attributes?`) by scanning or indexing the placement
arrays one entity at a time — thousands of tiny numpy fancy-indexing calls
per round at paper scale.  Within one management round the placement is
frozen (reservations live in the receiver registry; accepted moves land at
commit), so all of it can be gathered **once** into flat arrays and shared
read-only with every planner.

:class:`FleetSnapshot` is that gather:

* ``vm_rack`` — rack of every VM (``host_rack[vm_host]``, computed once);
* ``host_free`` — free capacity per host, already zeroed for dead hosts
  (the vectorized form of ``Placement.free_capacity``);
* ``host_load`` — per-host utilization fraction (destination steering);
* CSR-style indexes host → VMs and rack → VMs, so membership queries are
  an O(degree) slice instead of an O(num_vms) scan;
* an optional profile matrix ``W ∈ R^{N×R}`` (one row per VM, one column
  per resource) for the vectorized ALERT evaluation in
  :func:`repro.alerts.alert.compute_alerts`.

Every query returns values bit-identical to the scalar
:class:`~repro.cluster.placement.Placement` calls it replaces (same
integers, same gather order); the hypothesis suite in
``tests/property/test_fleet_kernels.py`` enforces this.  A snapshot is
valid until the next placement mutation — the engine builds one per round
after fault injection and discards it at commit.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.cluster.placement import Placement

__all__ = ["FleetSnapshot"]


class _SharedPlacementView:
    """Placement facade mixing static arrays with shared-memory views.

    Quacks exactly enough like :class:`Placement` for the
    :class:`FleetSnapshot` constructor: statics resolve to the local
    placement, the three round-mutable arrays resolve to the
    :class:`~repro.parallel.shm.SharedFleet` segments.
    """

    __slots__ = ("_pl", "_fleet")

    def __init__(self, placement: Placement, fleet) -> None:
        self._pl = placement
        self._fleet = fleet

    @property
    def vm_host(self) -> np.ndarray:
        return self._fleet.views["vm_host"]

    @property
    def host_used(self) -> np.ndarray:
        return self._fleet.views["host_used"]

    @property
    def host_alive(self) -> np.ndarray:
        return self._fleet.views["host_alive"]

    def __getattr__(self, name):
        return getattr(self._pl, name)


class FleetSnapshot:
    """Read-only SoA view of one round's placement state.

    Parameters
    ----------
    placement:
        The live placement; its arrays are referenced (not copied) where
        immutability within the round makes that safe.
    profile:
        Optional ``(num_vms, NUM_RESOURCES)`` predicted profile matrix
        ``W`` for vectorized ALERT evaluation.
    """

    def __init__(
        self, placement: Placement, *, profile: Optional[np.ndarray] = None
    ) -> None:
        pl = placement
        self.placement = pl
        self.num_vms = pl.num_vms
        self.num_hosts = pl.num_hosts
        self.num_racks = pl.num_racks
        self.vm_host = pl.vm_host
        self.vm_capacity = pl.vm_capacity
        self.vm_value = pl.vm_value
        self.vm_delay_sensitive = pl.vm_delay_sensitive
        self.host_rack = pl.host_rack
        # one gather for the whole fleet instead of one per query site
        self.vm_rack = pl.host_rack[pl.vm_host]
        # vectorized Placement.free_capacity: dead hosts report 0
        self.host_free = np.where(
            pl.host_alive, pl.host_capacity - pl.host_used, 0
        ).astype(np.int64)
        self.host_load = pl.host_used / pl.host_capacity
        self.generation = pl.generation
        self.profile = profile
        self._alert_token: Optional[Dict[int, float]] = None
        self._alert_vec: Optional[np.ndarray] = None

        # CSR host -> VMs: a stable argsort of vm_host keeps VM ids
        # ascending within each host, exactly the order np.nonzero
        # (and therefore Placement.vms_on_host) returns.
        order = np.argsort(pl.vm_host, kind="stable")
        counts = np.bincount(pl.vm_host, minlength=pl.num_hosts)
        self._host_order = order
        self._host_starts = np.concatenate(
            ([0], np.cumsum(counts))
        ).astype(np.int64)
        # CSR rack -> VMs, same construction over vm_rack
        rorder = np.argsort(self.vm_rack, kind="stable")
        rcounts = np.bincount(self.vm_rack, minlength=pl.num_racks)
        self._rack_order = rorder
        self._rack_starts = np.concatenate(
            ([0], np.cumsum(rcounts))
        ).astype(np.int64)

    # ------------------------------------------------------------------ #
    @classmethod
    def from_shared(
        cls,
        fleet,
        placement: Placement,
        *,
        profile: Optional[np.ndarray] = None,
    ) -> "FleetSnapshot":
        """Zero-copy snapshot over a :class:`~repro.parallel.shm.SharedFleet`.

        Worker-side constructor: the mutable arrays (``vm_host``,
        ``host_used``, ``host_alive``) are read straight from the shared
        segments the owner ships into each round, while the static arrays
        (capacities, values, rack map) come from the fork-inherited
        *placement*.  Values are bit-identical to an in-process
        ``FleetSnapshot(placement)`` built after the same mutations — the
        hypothesis suite in ``tests/property/test_shm_snapshot.py`` holds
        the two constructions equal through arbitrary ship/repair cycles.
        """
        pl = placement
        if pl.vm_host is fleet.views["vm_host"]:
            # adopted placement: its arrays already alias the segments
            return cls(pl, profile=profile)
        proxy = _SharedPlacementView(pl, fleet)
        snap = cls(proxy, profile=profile)
        snap.placement = pl
        return snap

    def vms_on_host(self, host: int) -> np.ndarray:
        """VM ids on *host*, ascending — same as ``Placement.vms_on_host``."""
        return self._host_order[self._host_starts[host] : self._host_starts[host + 1]]

    def vms_in_rack(self, rack: int) -> np.ndarray:
        """VM ids in *rack*, ascending — same as ``Placement.vms_in_rack``."""
        return self._rack_order[self._rack_starts[rack] : self._rack_starts[rack + 1]]

    def free_capacity(self, hosts: np.ndarray) -> np.ndarray:
        """Free capacity of *hosts* (vectorized, dead hosts = 0)."""
        return self.host_free[hosts]

    # ------------------------------------------------------------------ #
    def prime_alerts(self, vm_alerts: Dict[int, float]) -> None:
        """Densify this round's ALERT dict into a per-VM vector.

        Lets :meth:`alerted_candidates` drop zero-alert VMs with one
        vectorized compare instead of building a candidate record per VM
        just to filter it out.  Keyed on the dict's identity, so a stale
        vector from a previous round is never consulted.
        """
        vec = np.zeros(self.num_vms, dtype=np.float64)
        if vm_alerts:
            ids = np.fromiter(vm_alerts.keys(), dtype=np.int64, count=len(vm_alerts))
            vals = np.fromiter(
                vm_alerts.values(), dtype=np.float64, count=len(vm_alerts)
            )
            vec[ids] = vals
        self._alert_vec = vec
        self._alert_token = vm_alerts

    def alerted_candidates(
        self, vm_ids, vm_alerts: Dict[int, float]
    ) -> List["CandidateVM"]:
        """Candidates for *vm_ids* restricted to ``alert > 0``.

        Identical to filtering :meth:`candidates` output on ``c.alert > 0``
        (same VMs, same ascending order, same field values) — but when the
        round's alerts are primed, the filter runs on the dense vector
        before any records are built.
        """
        ids = np.asarray(vm_ids, dtype=np.int64)
        if ids.size == 0:
            return []
        if self._alert_token is vm_alerts and self._alert_vec is not None:
            ids = ids[self._alert_vec[ids] > 0.0]
            return self.candidates(ids, vm_alerts)
        return [c for c in self.candidates(ids, vm_alerts) if c.alert > 0]

    def candidates(self, vm_ids, vm_alerts: Dict[int, float]) -> List["CandidateVM"]:
        """PRIORITY candidate records for *vm_ids* via batched gathers.

        Replaces the per-VM ``ShimManager._candidate`` construction: one
        fancy-indexing gather per attribute instead of one per (VM,
        attribute) pair.  Field values are bit-identical — same arrays,
        same casts.
        """
        from repro.migration.priority import CandidateVM

        ids = np.asarray(vm_ids, dtype=np.int64)
        if ids.size == 0:
            return []
        caps = self.vm_capacity[ids].tolist()
        vals = self.vm_value[ids].tolist()
        ds = self.vm_delay_sensitive[ids].tolist()
        get = vm_alerts.get
        return [
            CandidateVM(
                vm_id=vm,
                capacity=cap,
                value=val,
                alert=float(get(vm, 0.0)),
                delay_sensitive=d,
            )
            for vm, cap, val, d in zip(ids.tolist(), caps, vals, ds)
        ]
