"""VM placement state — the location function ``ξ`` of the paper.

The placement is the single mutable object the migration algorithms act on.
It is stored as flat numpy arrays (``vm_host``, ``host_rack``, capacities)
so that per-host loads, per-rack loads and balance metrics are one
``np.bincount`` away — no Python loop over VMs in the hot simulation path.

Capacity invariants (Eq. (8)/(9) of the problem formulation) are enforced
incrementally: ``migrate`` refuses to overfill a destination host, and
``check_invariants`` re-derives everything from scratch for the test-suite.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.cluster.host import Host
from repro.cluster.vm import VM
from repro.errors import CapacityError, PlacementError

__all__ = ["Placement"]


class Placement:
    """Mapping VM → host → rack with capacity accounting.

    Parameters
    ----------
    vms:
        VM records; ``vm_id`` must equal the list index.
    hosts:
        Host records; ``host_id`` must equal the list index.
    vm_host:
        Initial host id of each VM.
    """

    def __init__(
        self,
        vms: Sequence[VM],
        hosts: Sequence[Host],
        vm_host: Sequence[int],
    ) -> None:
        for i, vm in enumerate(vms):
            if vm.vm_id != i:
                raise PlacementError(f"vm at index {i} has vm_id {vm.vm_id}")
        for j, h in enumerate(hosts):
            if h.host_id != j:
                raise PlacementError(f"host at index {j} has host_id {h.host_id}")
        self.num_vms = len(vms)
        self.num_hosts = len(hosts)
        self.vm_capacity = np.asarray([vm.capacity for vm in vms], dtype=np.int64)
        self.vm_value = np.asarray([vm.value for vm in vms], dtype=np.float64)
        self.vm_delay_sensitive = np.asarray(
            [vm.delay_sensitive for vm in vms], dtype=bool
        )
        self.host_capacity = np.asarray([h.capacity for h in hosts], dtype=np.int64)
        self.host_rack = np.asarray([h.rack for h in hosts], dtype=np.int64)
        self.num_racks = int(self.host_rack.max()) + 1 if self.num_hosts else 0

        vh = np.asarray(vm_host, dtype=np.int64)
        if vh.shape != (self.num_vms,):
            raise PlacementError(
                f"vm_host must have shape ({self.num_vms},), got {vh.shape}"
            )
        if self.num_vms and ((vh < 0) | (vh >= self.num_hosts)).any():
            raise PlacementError("vm_host contains out-of-range host ids")
        self.vm_host = vh.copy()
        self.host_used = np.bincount(
            self.vm_host, weights=self.vm_capacity.astype(np.float64),
            minlength=self.num_hosts,
        ).astype(np.int64)
        over = np.nonzero(self.host_used > self.host_capacity)[0]
        if over.size:
            raise CapacityError(
                f"initial placement overfills hosts {over[:5].tolist()} "
                f"(used {self.host_used[over[:5]].tolist()} vs "
                f"capacity {self.host_capacity[over[:5]].tolist()})"
            )
        self._migrations = 0
        self._generation = 0
        self._move_log: List[int] = []  # vm id per successful migrate()
        # (vm, src_host, dst_host) per generation bump; lost/restore events
        # use src == dst as a "no placement change" sentinel
        self._move_details: List[Tuple[int, int, int]] = []
        self.host_alive = np.ones(self.num_hosts, dtype=bool)
        self.lost_vms: set = set()  # VMs whose host crashed before evacuation

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def host_of(self, vm: int) -> int:
        return int(self.vm_host[vm])

    def rack_of(self, vm: int) -> int:
        return int(self.host_rack[self.vm_host[vm]])

    def vms_on_host(self, host: int) -> np.ndarray:
        """VM ids currently placed on *host* (ascending)."""
        return np.nonzero(self.vm_host == host)[0]

    def vms_in_rack(self, rack: int) -> np.ndarray:
        """VM ids currently placed in *rack* (ascending)."""
        return np.nonzero(self.host_rack[self.vm_host] == rack)[0]

    def hosts_in_rack(self, rack: int) -> np.ndarray:
        return np.nonzero(self.host_rack == rack)[0]

    def free_capacity(self, host: int) -> int:
        if not self.host_alive[host]:
            return 0
        return int(self.host_capacity[host] - self.host_used[host])

    def host_load_fraction(self) -> np.ndarray:
        """Per-host utilization in ``[0, 1]`` — the Fig. 9/10 metric base."""
        return self.host_used / self.host_capacity

    def rack_used(self) -> np.ndarray:
        """Total placed VM capacity per rack."""
        return np.bincount(
            self.host_rack, weights=self.host_used.astype(np.float64),
            minlength=self.num_racks,
        ).astype(np.int64)

    @property
    def migrations_performed(self) -> int:
        """Count of successful :meth:`migrate` calls since construction."""
        return self._migrations

    @property
    def generation(self) -> int:
        """Monotone mutation counter: +1 per successful :meth:`migrate`.

        Cost-kernel caches key their per-VM entries on this value; a cache
        holding entries computed at generation ``g`` only needs to drop the
        VMs named by ``moved_since(g)`` (plus their dependency neighbors).
        """
        return self._generation

    def moved_since(self, generation: int) -> List[int]:
        """VM ids moved after *generation* (one entry per move, in order)."""
        if generation < 0:
            return list(self._move_log)
        return self._move_log[generation:]

    def moves_since(self, generation: int) -> List[Tuple[int, int, int]]:
        """``(vm, src_host, dst_host)`` per generation bump after *generation*.

        Lost/restore events (which bump the generation without relocating
        the VM) appear with ``src_host == dst_host`` so incremental caches
        can tell "the VM changed racks" apart from "the VM changed
        liveness"."""
        if generation < 0:
            return list(self._move_details)
        return self._move_details[generation:]

    # ------------------------------------------------------------------ #
    # mutation
    # ------------------------------------------------------------------ #
    def migrate(self, vm: int, dst_host: int) -> None:
        """Move *vm* to *dst_host*, maintaining capacity accounting.

        Raises :class:`CapacityError` when the destination lacks room and
        :class:`PlacementError` on a no-op move (the algorithms never emit
        one; silently accepting it would hide matching bugs).
        """
        if not (0 <= vm < self.num_vms):
            raise PlacementError(f"unknown vm {vm}")
        if not (0 <= dst_host < self.num_hosts):
            raise PlacementError(f"unknown host {dst_host}")
        if vm in self.lost_vms:
            raise PlacementError(f"vm {vm} is lost (its host crashed)")
        if not self.host_alive[dst_host]:
            raise PlacementError(f"host {dst_host} is down")
        src = int(self.vm_host[vm])
        if src == dst_host:
            raise PlacementError(f"vm {vm} is already on host {dst_host}")
        need = int(self.vm_capacity[vm])
        if self.free_capacity(dst_host) < need:
            raise CapacityError(
                f"host {dst_host} has {self.free_capacity(dst_host)} free, "
                f"vm {vm} needs {need}"
            )
        self.vm_host[vm] = dst_host
        self.host_used[src] -= need
        self.host_used[dst_host] += need
        self._migrations += 1
        self._generation += 1
        self._move_log.append(vm)
        self._move_details.append((vm, src, dst_host))

    # ------------------------------------------------------------------ #
    # failure state (see repro.faults)
    # ------------------------------------------------------------------ #
    def disable_host(self, host: int) -> None:
        """Mark *host* dead: it stops accepting placements.

        Resident VMs keep their ``vm_host`` entry (array indexing stays
        valid everywhere); the fault layer either evacuates them or marks
        them lost.  ``free_capacity`` reports 0 for a dead host, so the
        matching never selects it as a destination.
        """
        if not (0 <= host < self.num_hosts):
            raise PlacementError(f"unknown host {host}")
        if not self.host_alive[host]:
            raise PlacementError(f"host {host} is already down")
        self.host_alive[host] = False

    def enable_host(self, host: int) -> None:
        """Bring a dead host back; its booked capacity is valid again."""
        if not (0 <= host < self.num_hosts):
            raise PlacementError(f"unknown host {host}")
        if self.host_alive[host]:
            raise PlacementError(f"host {host} is not down")
        self.host_alive[host] = True

    def mark_lost(self, vm: int) -> None:
        """Record *vm* as lost (down with its crashed host).

        The VM keeps its slot on the dead host — its capacity stays booked
        there so accounting never drifts — but it must not migrate or hold
        reservations.  Bumps the generation/move log so cost caches
        invalidate the VM's entries.
        """
        if not (0 <= vm < self.num_vms):
            raise PlacementError(f"unknown vm {vm}")
        if vm in self.lost_vms:
            raise PlacementError(f"vm {vm} is already lost")
        self.lost_vms.add(vm)
        self._generation += 1
        self._move_log.append(vm)
        host = int(self.vm_host[vm])
        self._move_details.append((vm, host, host))

    def restore_lost(self, vm: int) -> None:
        """Un-lose *vm* (its host recovered); it resumes where it was."""
        if vm not in self.lost_vms:
            raise PlacementError(f"vm {vm} is not lost")
        self.lost_vms.discard(vm)
        self._generation += 1
        self._move_log.append(vm)
        host = int(self.vm_host[vm])
        self._move_details.append((vm, host, host))

    def clone(self) -> "Placement":
        """Deep copy (used by the centralized baseline to explore plans)."""
        new = object.__new__(Placement)
        new.num_vms = self.num_vms
        new.num_hosts = self.num_hosts
        new.num_racks = self.num_racks
        new.vm_capacity = self.vm_capacity  # immutable by convention
        new.vm_value = self.vm_value
        new.vm_delay_sensitive = self.vm_delay_sensitive
        new.host_capacity = self.host_capacity
        new.host_rack = self.host_rack
        new.vm_host = self.vm_host.copy()
        new.host_used = self.host_used.copy()
        new._migrations = self._migrations
        new._generation = self._generation
        new._move_log = list(self._move_log)
        new._move_details = list(self._move_details)
        new.host_alive = self.host_alive.copy()
        new.lost_vms = set(self.lost_vms)
        return new

    # ------------------------------------------------------------------ #
    # verification
    # ------------------------------------------------------------------ #
    def check_invariants(self) -> None:
        """Re-derive accounting from scratch; raise on any drift."""
        used = np.bincount(
            self.vm_host, weights=self.vm_capacity.astype(np.float64),
            minlength=self.num_hosts,
        ).astype(np.int64)
        if not np.array_equal(used, self.host_used):
            raise PlacementError("host_used accounting has drifted")
        over = np.nonzero(used > self.host_capacity)[0]
        if over.size:
            raise CapacityError(f"hosts {over[:5].tolist()} overfilled")
        bad = [v for v in self.lost_vms if not (0 <= v < self.num_vms)]
        if bad:
            raise PlacementError(f"lost_vms contains unknown VMs {bad[:5]}")
