"""Command-line interface: run the paper's experiments from a shell.

``python -m repro <command>`` (or the ``sheriff-repro`` entry point):

* ``balance``  — Figs. 9/10: workload std-dev over migration rounds;
* ``sweep``    — Figs. 11/12 (or 13/14 with ``--topology bcube``): cost
  and search-space comparison of regional Sheriff vs the centralized
  optimal manager across fabric sizes;
* ``forecast`` — Figs. 6–8: ARIMA / NARNET / combined-model accuracy on a
  chosen trace regime;
* ``traces``   — Figs. 3–5: summary statistics of the synthetic suite;
* ``approx``   — Sec. VI-C: empirical Local Search ratio vs the 3 + 2/p
  bound;
* ``trace``    — analyze a ``--trace`` JSONL file: ``summarize``,
  ``lifecycle <vm>``, ``diff``, and the ``lint`` invariant checker;
* ``serve``    — the always-on service: continuous alert ingest with
  bounded-queue backpressure, live ``/healthz`` + ``/metrics`` HTTP
  endpoints and graceful drain on SIGTERM (see ``docs/service.md``);
* ``slo``      — application-facing SLO accounting: ``slo report`` runs
  a surge scenario with violation-minutes charging on and prints the
  per-tenant-class / per-source ledger (see ``docs/slo.md``).

Every simulation-running command (``balance``, ``sweep``, ``approx``,
``chaos``, ``serve``) additionally accepts ``--perfetto PATH``
(nested-span flamegraph as Chrome ``trace_event`` JSON), ``--prom
PATH`` (Prometheus text exposition of the metrics registry) and
``--metrics-out PATH`` (per-round metric snapshots as JSON-lines).

Every command accepts ``--seed`` and prints plain aligned tables.  Two
global flags hook into :mod:`repro.obs` on every subcommand:

* ``--json`` emits the results as machine-readable JSON (including the
  wall-clock timing breakdown where the command runs the simulator);
* ``--trace PATH`` streams every structured trace event to *PATH* as
  JSON-lines (see ``docs/observability.md`` for the event schema).

Without either flag the plain-table output is unchanged.
"""

from __future__ import annotations

import argparse
import json
import sys
from contextlib import contextmanager
from typing import List, Optional

import numpy as np

__all__ = ["main", "build_parser"]


def _common_flags() -> argparse.ArgumentParser:
    """The per-subcommand global flags (``parents=`` share one definition)."""
    common = argparse.ArgumentParser(add_help=False)
    common.add_argument(
        "--json",
        action="store_true",
        help="emit machine-readable JSON instead of the plain table",
    )
    common.add_argument(
        "--trace",
        metavar="PATH",
        dest="trace_path",
        default=None,
        help="dump structured trace events to PATH as JSON-lines",
    )
    return common


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="sheriff-repro",
        description="Sheriff (ICPP 2015) reproduction experiments",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    common = _common_flags()
    exporters = _exporter_flags()

    p = sub.add_parser(
        "balance",
        help="workload balancing over rounds (Figs. 9/10)",
        parents=[common, exporters],
    )
    p.add_argument("--topology", choices=["fattree", "bcube"], default="fattree")
    p.add_argument("--size", type=int, default=8, help="pods (fattree) / switches per level (bcube)")
    p.add_argument("--rounds", type=int, default=24)
    p.add_argument("--alert-fraction", type=float, default=0.05)
    p.add_argument("--seed", type=int, default=2015)
    p.add_argument(
        "--workers",
        type=int,
        default=0,
        help="shim plan workers: 0 = legacy serial loop, 1 = plan/execute "
        "split inline, >= 2 = thread pool, -1 = one per CPU (results are "
        "identical either way; see docs/performance.md)",
    )

    p = sub.add_parser(
        "sweep",
        help="regional vs centralized sweep (Figs. 11-14)",
        parents=[common, exporters],
    )
    p.add_argument("--topology", choices=["fattree", "bcube"], default="fattree")
    p.add_argument(
        "--sizes", type=str, default="8,16,24",
        help="comma-separated pod counts / switches per level",
    )
    p.add_argument("--seed", type=int, default=2015)

    p = sub.add_parser(
        "forecast", help="prediction accuracy (Figs. 6-8)", parents=[common]
    )
    p.add_argument(
        "--series",
        choices=["weekly", "nonlinear", "mixed"],
        default="mixed",
        help="synthetic workload regime to forecast",
    )
    p.add_argument("--train-frac", type=float, default=0.6)
    p.add_argument("--seed", type=int, default=2015)
    p.add_argument(
        "--workers",
        type=int,
        default=0,
        help="refit the selector's pool members concurrently "
        "(<= 1 = inline, -1 = one per CPU)",
    )

    p = sub.add_parser(
        "traces",
        help="synthetic trace suite statistics (Figs. 3-5)",
        parents=[common],
    )
    p.add_argument("--seed", type=int, default=2015)

    p = sub.add_parser(
        "approx",
        help="Local Search ratio vs 3 + 2/p (Sec. VI-C)",
        parents=[common, exporters],
    )
    p.add_argument("--trials", type=int, default=20)
    p.add_argument("--swap-size", type=int, default=1)
    p.add_argument("--seed", type=int, default=2015)

    p = sub.add_parser(
        "chaos",
        help="seeded fault-injection campaign (docs/robustness.md)",
        parents=[common, exporters],
    )
    p.add_argument("--topology", choices=["fattree", "bcube"], default="fattree")
    p.add_argument("--size", type=int, default=4)
    p.add_argument("--rounds", type=int, default=12)
    p.add_argument("--alert-fraction", type=float, default=0.1)
    p.add_argument("--seed", type=int, default=2015)
    p.add_argument(
        "--loss",
        type=float,
        default=0.1,
        help="REQUEST/ACK channel loss probability in [0, 1)",
    )
    p.add_argument(
        "--slo",
        action="store_true",
        help="charge SLO-violation-minutes during the campaign "
        "(docs/slo.md); trace gains SloViolation events",
    )
    p.add_argument(
        "--output", type=str, default=None, help="write the JSON report to a file"
    )

    p = sub.add_parser(
        "adversarial",
        help="worst-case fallback campaign: guarded vs reactive bound "
        "(docs/robust-forecasting.md)",
        parents=[common, exporters],
    )
    p.add_argument("--size", type=int, default=4)
    p.add_argument("--rounds", type=int, default=36)
    p.add_argument("--warm", type=int, default=16)
    p.add_argument("--seed", type=int, default=2015)
    p.add_argument("--threshold", type=float, default=0.7)
    p.add_argument(
        "--factor",
        type=float,
        default=1.5,
        help="worst-case bound: guarded damage <= factor * reactive + slack",
    )
    p.add_argument("--slack", type=float, default=2.0)
    p.add_argument(
        "--error-bound",
        type=float,
        default=0.08,
        help="trailing forecast error that trips the fallback governor",
    )
    p.add_argument(
        "--output", type=str, default=None, help="write the JSON report to a file"
    )

    p = sub.add_parser(
        "serve",
        help="always-on service: continuous ingest, /healthz, /metrics "
        "(docs/service.md)",
        parents=[common, exporters],
    )
    p.add_argument("--topology", choices=["fattree", "bcube"], default="fattree")
    p.add_argument("--size", type=int, default=4)
    p.add_argument("--seed", type=int, default=2015)
    p.add_argument(
        "--source",
        type=str,
        default="replay",
        help="alert source: 'replay' (seeded synthetic trace), a JSONL "
        "path, or '-' for stdin",
    )
    p.add_argument(
        "--alert-fraction",
        type=float,
        default=0.05,
        help="per-tick alerting VM fraction (replay source only)",
    )
    p.add_argument(
        "--rounds",
        type=int,
        default=0,
        help="replay ticks to ingest; 0 = replay forever (stop with "
        "SIGTERM or --max-rounds)",
    )
    p.add_argument(
        "--workers", type=int, default=0, help="shim plan workers (see balance)"
    )
    p.add_argument(
        "--config",
        type=str,
        default=None,
        help="SheriffConfig JSON file (SheriffConfig.to_dict schema)",
    )
    p.add_argument("--host", type=str, default="127.0.0.1")
    p.add_argument(
        "--port", type=int, default=0, help="HTTP port; 0 picks a free one"
    )
    p.add_argument(
        "--interval",
        type=float,
        default=0.05,
        help="seconds between management-round ticks",
    )
    p.add_argument(
        "--queue-limit",
        type=int,
        default=1024,
        help="ingest queue capacity before the shed policy applies",
    )
    p.add_argument(
        "--shed-policy",
        choices=["drop-oldest", "drop-newest", "block"],
        default="drop-oldest",
    )
    p.add_argument(
        "--max-rounds",
        type=int,
        default=None,
        help="hard stop after N management rounds",
    )

    p = sub.add_parser(
        "report",
        help="run every experiment family, emit markdown",
        parents=[common],
    )
    p.add_argument("--seed", type=int, default=2015)
    p.add_argument("--full", action="store_true", help="benchmark-suite scales")
    p.add_argument("--output", type=str, default=None, help="write to file")

    p = sub.add_parser(
        "trace",
        help="analyze a JSONL event trace (docs/observability.md)",
    )
    tsub = p.add_subparsers(dest="trace_command", required=True)

    t = tsub.add_parser(
        "summarize",
        help="per-round event counts and alert-to-landed latency quantiles",
    )
    t.add_argument("path", help="trace file written with --trace PATH")
    t.add_argument("--json", action="store_true", help="emit JSON")

    t = tsub.add_parser(
        "lifecycle", help="one VM's causal chains (attempt by attempt)"
    )
    t.add_argument("path", help="trace file written with --trace PATH")
    t.add_argument("vm", type=int, help="VM id to follow")
    t.add_argument("--json", action="store_true", help="emit JSON")

    t = tsub.add_parser(
        "diff", help="per-(round, kind) event-count deltas between two traces"
    )
    t.add_argument("a", help="baseline trace (e.g. a clean run)")
    t.add_argument("b", help="compared trace (e.g. a chaos run)")
    t.add_argument("--json", action="store_true", help="emit JSON")

    t = tsub.add_parser(
        "lint",
        help="check protocol invariants (exit 1 on any violation)",
    )
    t.add_argument("path", help="trace file written with --trace PATH")
    t.add_argument("--json", action="store_true", help="emit JSON")

    p = sub.add_parser(
        "slo",
        help="application-facing SLO accounting (docs/slo.md)",
    )
    ssub = p.add_subparsers(dest="slo_command", required=True)

    s = ssub.add_parser(
        "report",
        help="run a surge scenario with SLO accounting on; print the "
        "violation-minutes ledger per tenant class and source",
        parents=[common, exporters],
    )
    s.add_argument("--size", type=int, default=4, help="fat-tree pods")
    s.add_argument("--rounds", type=int, default=36)
    s.add_argument("--warm", type=int, default=12)
    s.add_argument("--seed", type=int, default=2015)
    s.add_argument(
        "--threshold",
        type=float,
        default=0.7,
        help="overload threshold the reactive manager alerts at",
    )
    s.add_argument(
        "--scoring",
        choices=["network", "slo"],
        default="network",
        help="migration scoring: pure Eq. (1) network cost, or network "
        "cost plus predicted SLO damage (docs/slo.md)",
    )
    s.add_argument(
        "--budget",
        type=float,
        default=0.0,
        help="per-tenant-class SLO error budget in violation-minutes "
        "(0 disables budget tracking)",
    )

    return parser


def _exporter_flags() -> argparse.ArgumentParser:
    """Exporter flags every simulation-running subcommand shares.

    A ``parents=`` parser like :func:`_common_flags`, so ``balance``,
    ``sweep``, ``approx``, ``chaos`` and ``serve`` expose the identical
    ``--perfetto`` / ``--prom`` / ``--metrics-out`` surface.
    """
    p = argparse.ArgumentParser(add_help=False)
    p.add_argument(
        "--perfetto",
        metavar="PATH",
        dest="perfetto_path",
        default=None,
        help="record nested profiler spans and write Chrome/Perfetto "
        "trace_event JSON to PATH (load in ui.perfetto.dev)",
    )
    p.add_argument(
        "--prom",
        metavar="PATH",
        dest="prom_path",
        default=None,
        help="write the final metrics registry to PATH in Prometheus "
        "text exposition format",
    )
    p.add_argument(
        "--metrics-out",
        metavar="PATH",
        dest="metrics_out_path",
        default=None,
        help="stream one JSON line of per-round metrics to PATH "
        "(next to the --trace event stream)",
    )
    return p


@contextmanager
def _tracer_for(args: argparse.Namespace):
    """The subcommand's tracer: JSONL when ``--trace PATH``, else disabled."""
    from repro.obs.tracer import NULL_TRACER, JsonlTracer

    if getattr(args, "trace_path", None):
        try:
            ctx = JsonlTracer.open(args.trace_path)
        except OSError as exc:
            print(f"error: cannot open trace file: {exc}", file=sys.stderr)
            raise SystemExit(2) from None
        with ctx as tracer:
            yield tracer
    else:
        yield NULL_TRACER


@contextmanager
def _exporters_for(args: argparse.Namespace):
    """Exporter handles for a simulator command: (profiler, metrics, stream).

    Each is ``None`` unless its flag was passed.  On exit the Perfetto
    span export and the Prometheus snapshot are written from whatever the
    command recorded.
    """
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.profiling import Profiler

    profiler = (
        Profiler(record_spans=True)
        if getattr(args, "perfetto_path", None)
        else None
    )
    metrics = MetricsRegistry() if getattr(args, "prom_path", None) else None
    stream = None
    try:
        if getattr(args, "metrics_out_path", None):
            stream = open(args.metrics_out_path, "w")
        yield profiler, metrics, stream
    except OSError as exc:
        print(f"error: cannot open exporter file: {exc}", file=sys.stderr)
        raise SystemExit(2) from None
    finally:
        if stream is not None:
            stream.close()
        if profiler is not None:
            from repro.obs.export import write_chrome_trace

            with open(args.perfetto_path, "w") as fh:
                write_chrome_trace(profiler, fh)
        if metrics is not None:
            from repro.obs.export import prometheus_text

            with open(args.prom_path, "w") as fh:
                fh.write(prometheus_text(metrics))


def _emit(args: argparse.Namespace, plain: str, payload: dict) -> None:
    """Print the plain table, or the JSON payload under ``--json``."""
    if getattr(args, "json", False):
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(plain)


def _build_topology(kind: str, size: int):
    from repro.topology import build_bcube, build_fattree

    return build_fattree(size) if kind == "fattree" else build_bcube(size)


def _cluster_for(kind: str, size: int, seed: int, skew: float = 0.8):
    from repro.cluster import build_cluster

    hosts = 4 if kind == "fattree" else max(2, size)
    return build_cluster(
        _build_topology(kind, size),
        hosts_per_rack=hosts,
        fill_fraction=0.5,
        skew=skew,
        seed=seed,
        delay_sensitive_fraction=0.0,
    )


def cmd_balance(args: argparse.Namespace) -> int:
    from repro.analysis import Series, format_series
    from repro.config import SheriffConfig
    from repro.sim import SheriffSimulation, inject_fraction_alerts

    cluster = _cluster_for(args.topology, args.size, args.seed, skew=1.1)
    with _tracer_for(args) as tracer, _exporters_for(args) as (
        profiler,
        metrics,
        stream,
    ):
        sim = SheriffSimulation(
            cluster,
            SheriffConfig(
                balance_weight=25.0,
                workers=args.workers,
                tracer=tracer,
                profiler=profiler,
                metrics=metrics,
                metrics_stream=stream,
            ),
        )
        for r in range(args.rounds):
            alerts, vma = inject_fraction_alerts(
                cluster, args.alert_fraction, time=r, seed=args.seed + r
            )
            sim.run_round(alerts, vma)
    series = sim.workload_std_series()
    plain = format_series(
        f"Workload std-dev (%) on {args.topology}-{args.size}, "
        f"{args.alert_fraction:.0%} alerting per round",
        [Series("std_dev_pct", list(range(len(series))), series.tolist())],
        x_label="round",
    )
    payload = {
        "command": "balance",
        "topology": args.topology,
        "size": args.size,
        "rounds": args.rounds,
        "alert_fraction": args.alert_fraction,
        "seed": args.seed,
        "std_dev_pct": series.tolist(),
        "migrations": sum(s.migrations for s in sim.history),
        "requests": sum(s.requests for s in sim.history),
        "rejects": sum(s.rejects for s in sim.history),
        "total_cost": sum(s.total_cost for s in sim.history),
        "timings": sim.timing_breakdown(),
        "metrics": sim.metrics.as_dict(),
    }
    _emit(args, plain, payload)
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    from repro.analysis import format_table
    from repro.costs.model import CostModel
    from repro.obs.profiling import Profiler
    from repro.sim import (
        centralized_migration_round,
        inject_fraction_alerts,
        regional_migration_round,
    )

    sizes = [int(x) for x in args.sizes.split(",") if x.strip()]
    rows = []
    with _tracer_for(args) as tracer, _exporters_for(args) as (
        xprofiler,
        metrics,
        _stream,  # sweep has no per-round metrics window to stream
    ):
        profiler = xprofiler if xprofiler is not None else Profiler()
        for size in sizes:
            cluster = _cluster_for(args.topology, size, args.seed, skew=0.5)
            cm = CostModel(cluster)
            _, vma = inject_fraction_alerts(cluster, 0.05, seed=args.seed)
            cands = sorted(vma)
            reg = regional_migration_round(
                cluster,
                cm,
                cands,
                tracer=tracer,
                profiler=profiler,
                metrics=metrics,
            )
            cen = centralized_migration_round(
                cluster, cm, cands, tracer=tracer, profiler=profiler
            )
            rows.append(
                {
                    "size": size,
                    "sheriff_cost": reg.total_cost,
                    "optimal_cost": cen.total_cost,
                    "sheriff_space": reg.search_space,
                    "central_space": cen.search_space,
                }
            )
    plain = format_table(
        f"Sheriff vs centralized optimal on {args.topology} "
        "(cost and search space)",
        rows,
    )
    payload = {
        "command": "sweep",
        "topology": args.topology,
        "seed": args.seed,
        "rows": rows,
        "timings": dict(profiler.totals),
    }
    _emit(args, plain, payload)
    return 0


def cmd_forecast(args: argparse.Namespace) -> int:
    from repro.analysis import format_table
    from repro.forecast import ARIMA, NARNET, DynamicModelSelector, mse
    from repro.forecast.selection import rolling_one_step
    from repro.traces import mixed_trace, nonlinear_trace, weekly_traffic_trace

    makers = {
        "weekly": lambda: weekly_traffic_trace(seed=args.seed),
        "nonlinear": lambda: nonlinear_trace(1000, seed=args.seed),
        "mixed": lambda: mixed_trace(seed=args.seed),
    }
    y = makers[args.series]()
    train = int(args.train_frac * len(y))
    actual = y[train:]
    with _tracer_for(args) as tracer:
        arima = rolling_one_step(lambda: ARIMA(1, 1, 1), y, train, refit_every=120)
        narnet = rolling_one_step(
            lambda: NARNET(ni=10, nh=16, restarts=1, seed=1, maxiter=150),
            y,
            train,
            refit_every=120,
        )
        selector = DynamicModelSelector(
            {
                "arima": lambda: ARIMA(1, 1, 1),
                "narnet": lambda: NARNET(ni=10, nh=16, restarts=1, seed=1, maxiter=150),
            },
            period=20,
            refit_every=120,
            workers=args.workers,
            tracer=tracer,
        )
        combined = selector.run(y, train).predictions
    results = {
        "arima_mse": mse(actual, arima),
        "narnet_mse": mse(actual, narnet),
        "combined_mse": mse(actual, combined),
    }
    plain = format_table(
        f"One-step prediction MSE on the {args.series} trace "
        f"(train {train} / test {len(actual)})",
        [results],
    )
    payload = {
        "command": "forecast",
        "series": args.series,
        "seed": args.seed,
        "train": train,
        "test": len(actual),
        **results,
    }
    _emit(args, plain, payload)
    return 0


def cmd_traces(args: argparse.Namespace) -> int:
    from repro.analysis import format_table
    from repro.traces import ZopleCloudTraces

    suite = ZopleCloudTraces.generate(args.seed)
    names = ["cpu_pct", "disk_io_mb", "weekly_traffic_mb"]
    rows = []
    for arr in (suite.cpu, suite.disk_io, suite.weekly_traffic):
        rows.append(
            {
                "mean": float(arr.mean()),
                "max": float(arr.max()),
                "std": float(arr.std()),
                "burst_ratio": float(arr.max() / max(np.median(arr), 1e-9)),
            }
        )
    plain = format_table(
        "Synthetic ZopleCloud traces (rows: CPU %, disk I/O MB, weekly MB)",
        rows,
    )
    payload = {
        "command": "traces",
        "seed": args.seed,
        "traces": dict(zip(names, rows)),
    }
    with _tracer_for(args):
        pass  # no simulator events here; --trace yields an empty file
    _emit(args, plain, payload)
    return 0


def cmd_approx(args: argparse.Namespace) -> int:
    from repro.analysis import format_table
    from repro.kmedian import KMedianInstance, exact_kmedian, local_search
    from repro.obs.profiling import Profiler

    rng = np.random.default_rng(args.seed)
    ratios = []
    with _tracer_for(args), _exporters_for(args) as (xprofiler, metrics, _stream):
        profiler = xprofiler if xprofiler is not None else Profiler()
        for trial in range(args.trials):
            n = int(rng.integers(8, 14))
            k = int(rng.integers(2, min(5, n - 1)))
            inst = KMedianInstance.from_points(rng.random((n, 2)), k)
            _, opt = exact_kmedian(inst)
            res = local_search(inst, p=args.swap_size, seed=trial, profiler=profiler)
            if opt > 1e-12:
                ratios.append(res.cost / opt)
                if metrics is not None:
                    metrics.counter("kmedian_trials_total").inc()
                    metrics.histogram("kmedian_approx_ratio").observe(
                        res.cost / opt
                    )
    bound = 3.0 + 2.0 / args.swap_size
    results = {
        "max_ratio": float(np.max(ratios)),
        "mean_ratio": float(np.mean(ratios)),
        "bound": bound,
    }
    plain = format_table(
        f"Local Search (p={args.swap_size}) vs exact optimum, "
        f"{args.trials} instances",
        [results],
    )
    payload = {
        "command": "approx",
        "trials": args.trials,
        "swap_size": args.swap_size,
        "seed": args.seed,
        **results,
        "timings": dict(profiler.totals),
    }
    _emit(args, plain, payload)
    return 0 if max(ratios) <= bound else 1


def cmd_chaos(args: argparse.Namespace) -> int:
    from repro.analysis import format_table
    from repro.config import SheriffConfig
    from repro.faults import ChannelPolicy, run_chaos_campaign

    with _tracer_for(args) as tracer, _exporters_for(args) as (
        profiler,
        metrics,
        stream,
    ):
        report = run_chaos_campaign(
            topology=args.topology,
            size=args.size,
            rounds=args.rounds,
            seed=args.seed,
            alert_fraction=args.alert_fraction,
            channel=ChannelPolicy(
                loss_probability=args.loss, max_retries=3, seed=args.seed
            ),
            config=SheriffConfig(
                slo=args.slo,
                tracer=tracer,
                profiler=profiler,
                metrics=metrics,
                metrics_stream=stream,
            ),
        )
    if args.output:
        with open(args.output, "w") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
            fh.write("\n")
    plain = format_table(
        f"Chaos campaign on {args.topology}-{args.size} "
        f"(seed {args.seed}, {args.rounds} rounds, loss {args.loss:.0%})",
        report["rounds"],
    ) + "\ntotals: " + json.dumps(report["totals"], sort_keys=True)
    _emit(args, plain, report)
    return 0


def cmd_adversarial(args: argparse.Namespace) -> int:
    from repro.analysis import format_table
    from repro.config import SheriffConfig
    from repro.faults import run_adversarial_campaign

    with _tracer_for(args) as tracer, _exporters_for(args) as (
        profiler,
        metrics,
        stream,
    ):
        report = run_adversarial_campaign(
            size=args.size,
            rounds=args.rounds,
            warm=args.warm,
            seed=args.seed,
            overload_threshold=args.threshold,
            factor=args.factor,
            slack=args.slack,
            error_bound=args.error_bound,
            config=SheriffConfig(
                tracer=tracer,
                profiler=profiler,
                metrics=metrics,
                metrics_stream=stream,
            ),
        )
    if args.output:
        with open(args.output, "w") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
            fh.write("\n")
    rows = [
        {"arm": name, **metrics_row}
        for name, metrics_row in report["arms"].items()
    ]
    plain = format_table(
        f"Adversarial campaign on fattree-{args.size} "
        f"(seed {args.seed}, {args.rounds} rounds, "
        f"bound {args.factor}x + {args.slack})",
        rows,
    ) + "\nbound: " + json.dumps(report["bound"], sort_keys=True)
    _emit(args, plain, report)
    return 0 if report["bound"]["holds"] else 1


def cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.config import SheriffConfig
    from repro.errors import ConfigurationError
    from repro.service.ingest import JsonlAlertSource, ReplayAlertSource
    from repro.service.server import ServeSettings, SheriffService
    from repro.sim import SheriffSimulation

    if args.config:
        try:
            with open(args.config) as fh:
                cfg = SheriffConfig.from_dict(json.load(fh))
        except (OSError, ValueError, ConfigurationError) as exc:
            print(f"error: cannot load config: {exc}", file=sys.stderr)
            raise SystemExit(2) from None
    else:
        cfg = SheriffConfig(balance_weight=25.0)
    try:
        settings = ServeSettings(
            host=args.host,
            port=args.port,
            round_interval=args.interval,
            queue_limit=args.queue_limit,
            shed_policy=args.shed_policy,
            max_rounds=args.max_rounds,
        )
    except ConfigurationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        raise SystemExit(2) from None
    cluster = _cluster_for(args.topology, args.size, args.seed, skew=1.1)
    with _tracer_for(args) as tracer, _exporters_for(args) as (
        profiler,
        metrics,
        stream,
    ):
        sim = SheriffSimulation(
            cluster,
            cfg.replace(
                workers=args.workers,
                tracer=tracer,
                profiler=profiler,
                metrics=metrics,
                metrics_stream=stream,
            ),
        )
        if args.source == "replay":
            source = ReplayAlertSource(
                cluster,
                fraction=args.alert_fraction,
                rounds=args.rounds,
                seed=args.seed,
            )
        else:
            source = JsonlAlertSource(args.source)
        service = SheriffService(sim, source, settings)

        async def _serve():
            runner = asyncio.create_task(service.run())
            while service.bound_port is None and not runner.done():
                await asyncio.sleep(0.005)
            if service.bound_port is not None:
                # the ready line: smoke tests parse this to find the port
                print(
                    json.dumps(
                        {
                            "serving": True,
                            "host": settings.host,
                            "port": service.bound_port,
                        }
                    ),
                    flush=True,
                )
            return await runner

        report = asyncio.run(_serve())
    payload = {
        "command": "serve",
        "topology": args.topology,
        "size": args.size,
        "seed": args.seed,
        "source": args.source,
        **report,
    }
    _emit(
        args,
        "serve: "
        + ", ".join(f"{k}={report[k]}" for k in sorted(report)),
        payload,
    )
    return 0 if report["clean_drain"] else 1


def cmd_report(args: argparse.Namespace) -> int:
    from repro.report import generate_report

    with _tracer_for(args) as tracer:
        text = generate_report(args.seed, fast=not args.full, tracer=tracer)
    if args.output:
        with open(args.output, "w") as fh:
            fh.write(text)
        if getattr(args, "json", False):
            print(json.dumps({"command": "report", "output": args.output}))
        else:
            print(f"wrote {args.output}")
    else:
        _emit(
            args,
            text,
            {"command": "report", "output": None, "markdown": text},
        )
    return 0


def _load_trace_or_die(path: str):
    from repro.obs.tracer import load_trace

    try:
        return load_trace(path)
    except (OSError, ValueError) as exc:
        print(f"error: cannot read trace: {exc}", file=sys.stderr)
        raise SystemExit(2) from None


def cmd_trace(args: argparse.Namespace) -> int:
    from repro.obs.analysis import (
        diff_traces,
        lint_trace,
        summarize_trace,
        vm_lifecycle,
    )

    if args.trace_command == "summarize":
        summary = summarize_trace(_load_trace_or_die(args.path))
        if args.json:
            print(json.dumps(summary, indent=2, sort_keys=True))
            return 0
        lat = summary["alert_to_landed_rounds"]
        print(
            f"{summary['events']} events over {summary['rounds']} rounds, "
            f"{summary['attempts']} migration attempts"
        )
        for kind, count in summary["totals"].items():
            print(f"  {kind:<22} {count}")
        if summary["no_landings"]:
            print("alert->landed latency (rounds): no landings")
        else:
            print(
                f"alert->landed latency (rounds): "
                f"p50={lat['p50']:g} p95={lat['p95']:g} p99={lat['p99']:g} "
                f"max={lat['max']:g} over {lat['count']} landings"
            )
        slo = summary.get("slo")
        if slo:
            print(
                f"slo violation-minutes: {slo['violation_minutes']:.4f} total"
            )
            for tenant, minutes in slo["by_tenant"].items():
                print(f"  tenant {tenant:<8} {minutes:.4f}")
            for source, minutes in slo["by_source"].items():
                print(f"  source {source:<8} {minutes:.4f}")
            ep = slo["episodes"]
            print(
                f"  episodes: {ep['count']} "
                f"(p50={ep['p50_rounds']:g} p99={ep['p99_rounds']:g} "
                f"max={ep['max_rounds']:g} rounds)"
            )
            if slo["budget_exhausted"]:
                print(
                    "  budget exhausted: "
                    + ", ".join(slo["budget_exhausted"])
                )
        return 0

    if args.trace_command == "lifecycle":
        life = vm_lifecycle(_load_trace_or_die(args.path), args.vm)
        if args.json:
            print(json.dumps(life, indent=2, sort_keys=True))
            return 0
        if not life["attempts"]:
            print(f"vm {args.vm}: no events in trace")
            return 0
        for attempt in life["attempts"]:
            parent = attempt["parent_id"] or "-"
            print(
                f"attempt {attempt['trace_id']} (parent {parent}) -> "
                f"{attempt['outcome']}"
            )
            for ev in attempt["events"]:
                extra = ", ".join(
                    f"{k}={ev[k]}"
                    for k in ("dst_host", "dst_rack", "reason", "attempts")
                    if k in ev and ev[k] not in (None, "")
                )
                print(f"  round {ev.get('round')}: {ev['event']}"
                      + (f" ({extra})" if extra else ""))
        return 0

    if args.trace_command == "diff":
        diff = diff_traces(
            _load_trace_or_die(args.a), _load_trace_or_die(args.b)
        )
        if args.json:
            print(json.dumps(diff, indent=2, sort_keys=True))
        elif diff["identical"]:
            print(
                f"traces agree: {diff['a_events']} events each, "
                f"identical per-round census"
            )
        else:
            print(
                f"{diff['a_events']} vs {diff['b_events']} events; "
                f"{len(diff['rows'])} differing (round, kind) rows:"
            )
            for row in diff["rows"]:
                print(
                    f"  round {row['round']}: {row['event']:<22} "
                    f"{row['a']} -> {row['b']} ({row['delta']:+d})"
                )
        return 0

    assert args.trace_command == "lint"
    violations = lint_trace(_load_trace_or_die(args.path))
    if args.json:
        print(
            json.dumps(
                {
                    "violations": [
                        {"rule": v.rule, "line": v.line, "message": v.message}
                        for v in violations
                    ]
                },
                indent=2,
                sort_keys=True,
            )
        )
    elif not violations:
        print("trace is clean: all protocol invariants hold")
    else:
        for v in violations:
            print(str(v))
        print(f"{len(violations)} violation(s)")
    return 1 if violations else 0


def cmd_slo(args: argparse.Namespace) -> int:
    from repro.cluster import build_cluster
    from repro.config import SheriffConfig
    from repro.sim import (
        ReactiveManager,
        SheriffSimulation,
        host_surges,
        run_managed_simulation,
    )
    from repro.errors import ConfigurationError
    from repro.topology import build_fattree

    assert args.slo_command == "report"
    cluster = build_cluster(
        build_fattree(args.size),
        hosts_per_rack=4,
        fill_fraction=0.5,
        skew=1.1,
        seed=args.seed,
        delay_sensitive_fraction=0.1,
    )
    try:
        workload, _surges = host_surges(
            cluster,
            args.rounds,
            fraction=0.25,
            earliest=args.warm,
            latest=max(args.warm + 1, args.rounds - 6),
            ramp_len=6,
            peak=0.97,
            seed=args.seed,
        )
    except ConfigurationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        raise SystemExit(2) from None
    manager = ReactiveManager(workload, threshold=args.threshold)
    with _tracer_for(args) as tracer, _exporters_for(args) as (
        profiler,
        metrics,
        stream,
    ):
        sim = SheriffSimulation(
            cluster,
            SheriffConfig(
                balance_weight=25.0,
                slo=True,
                scoring=args.scoring,
                slo_overload_threshold=args.threshold,
                slo_budget_minutes=args.budget,
                tracer=tracer,
                profiler=profiler,
                metrics=metrics,
                metrics_stream=stream,
            ),
        )
        run = run_managed_simulation(
            sim,
            workload,
            manager,
            warm=args.warm,
            horizon=args.rounds,
            overload_threshold=args.threshold,
        )
    ledger = sim.slo.summary()
    lines = [
        f"SLO report on fattree-{args.size} (seed {args.seed}, "
        f"{args.rounds} rounds, scoring {args.scoring})",
        f"  migrations {run.migrations}, overload rounds "
        f"{run.overload_rounds}, network cost {run.total_cost:.1f}",
        f"violation-minutes: {ledger['total_minutes']:.4f} total",
    ]
    for tenant, minutes in sorted(ledger["by_class"].items()):
        lines.append(f"  tenant {tenant:<8} {minutes:.4f}")
    for source, minutes in sorted(ledger["by_source"].items()):
        lines.append(f"  source {source:<8} {minutes:.4f}")
    ep = ledger["episodes"]
    lines.append(
        f"episodes: {ep['count']} (p50={ep['p50_rounds']:g} "
        f"p99={ep['p99_rounds']:g} max={ep['max_rounds']:g} rounds)"
    )
    if ledger["budget_minutes"] > 0:
        exhausted = ledger["budget_exhausted"]
        lines.append(
            f"budget {ledger['budget_minutes']:g} min/class; exhausted: "
            + (", ".join(exhausted) if exhausted else "none")
        )
    payload = {
        "command": "slo-report",
        "size": args.size,
        "rounds": args.rounds,
        "warm": args.warm,
        "seed": args.seed,
        "threshold": args.threshold,
        "scoring": args.scoring,
        "migrations": run.migrations,
        "overload_rounds": run.overload_rounds,
        "total_cost": run.total_cost,
        "slo": ledger,
        "timings": run.timings,
    }
    _emit(args, "\n".join(lines), payload)
    return 0


_COMMANDS = {
    "balance": cmd_balance,
    "sweep": cmd_sweep,
    "forecast": cmd_forecast,
    "traces": cmd_traces,
    "approx": cmd_approx,
    "chaos": cmd_chaos,
    "adversarial": cmd_adversarial,
    "serve": cmd_serve,
    "report": cmd_report,
    "trace": cmd_trace,
    "slo": cmd_slo,
}


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except BrokenPipeError:
        # output piped into a pager/head that closed early — not an error
        import os

        try:
            sys.stdout.close()
        except OSError:
            pass
        os.dup2(os.open(os.devnull, os.O_WRONLY), 1)
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
