"""Command-line interface: run the paper's experiments from a shell.

``python -m repro <command>`` (or the ``sheriff-repro`` entry point):

* ``balance``  — Figs. 9/10: workload std-dev over migration rounds;
* ``sweep``    — Figs. 11/12 (or 13/14 with ``--topology bcube``): cost
  and search-space comparison of regional Sheriff vs the centralized
  optimal manager across fabric sizes;
* ``forecast`` — Figs. 6–8: ARIMA / NARNET / combined-model accuracy on a
  chosen trace regime;
* ``traces``   — Figs. 3–5: summary statistics of the synthetic suite;
* ``approx``   — Sec. VI-C: empirical Local Search ratio vs the 3 + 2/p
  bound.

Every command accepts ``--seed`` and prints plain aligned tables.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

import numpy as np

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="sheriff-repro",
        description="Sheriff (ICPP 2015) reproduction experiments",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("balance", help="workload balancing over rounds (Figs. 9/10)")
    p.add_argument("--topology", choices=["fattree", "bcube"], default="fattree")
    p.add_argument("--size", type=int, default=8, help="pods (fattree) / switches per level (bcube)")
    p.add_argument("--rounds", type=int, default=24)
    p.add_argument("--alert-fraction", type=float, default=0.05)
    p.add_argument("--seed", type=int, default=2015)

    p = sub.add_parser("sweep", help="regional vs centralized sweep (Figs. 11-14)")
    p.add_argument("--topology", choices=["fattree", "bcube"], default="fattree")
    p.add_argument(
        "--sizes", type=str, default="8,16,24",
        help="comma-separated pod counts / switches per level",
    )
    p.add_argument("--seed", type=int, default=2015)

    p = sub.add_parser("forecast", help="prediction accuracy (Figs. 6-8)")
    p.add_argument("--trace", choices=["weekly", "nonlinear", "mixed"], default="mixed")
    p.add_argument("--train-frac", type=float, default=0.6)
    p.add_argument("--seed", type=int, default=2015)

    p = sub.add_parser("traces", help="synthetic trace suite statistics (Figs. 3-5)")
    p.add_argument("--seed", type=int, default=2015)

    p = sub.add_parser("approx", help="Local Search ratio vs 3 + 2/p (Sec. VI-C)")
    p.add_argument("--trials", type=int, default=20)
    p.add_argument("--swap-size", type=int, default=1)
    p.add_argument("--seed", type=int, default=2015)

    p = sub.add_parser("report", help="run every experiment family, emit markdown")
    p.add_argument("--seed", type=int, default=2015)
    p.add_argument("--full", action="store_true", help="benchmark-suite scales")
    p.add_argument("--output", type=str, default=None, help="write to file")

    return parser


def _build_topology(kind: str, size: int):
    from repro.topology import build_bcube, build_fattree

    return build_fattree(size) if kind == "fattree" else build_bcube(size)


def _cluster_for(kind: str, size: int, seed: int, skew: float = 0.8):
    from repro.cluster import build_cluster

    hosts = 4 if kind == "fattree" else max(2, size)
    return build_cluster(
        _build_topology(kind, size),
        hosts_per_rack=hosts,
        fill_fraction=0.5,
        skew=skew,
        seed=seed,
        delay_sensitive_fraction=0.0,
    )


def cmd_balance(args: argparse.Namespace) -> int:
    from repro.analysis import Series, format_series
    from repro.sim import SheriffSimulation, inject_fraction_alerts

    cluster = _cluster_for(args.topology, args.size, args.seed, skew=1.1)
    sim = SheriffSimulation(cluster, balance_weight=25.0)
    for r in range(args.rounds):
        alerts, vma = inject_fraction_alerts(
            cluster, args.alert_fraction, time=r, seed=args.seed + r
        )
        sim.run_round(alerts, vma)
    series = sim.workload_std_series()
    print(
        format_series(
            f"Workload std-dev (%) on {args.topology}-{args.size}, "
            f"{args.alert_fraction:.0%} alerting per round",
            [Series("std_dev_pct", list(range(len(series))), series.tolist())],
            x_label="round",
        )
    )
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    from repro.analysis import format_table
    from repro.costs.model import CostModel
    from repro.sim import (
        centralized_migration_round,
        inject_fraction_alerts,
        regional_migration_round,
    )

    sizes = [int(x) for x in args.sizes.split(",") if x.strip()]
    rows = []
    for size in sizes:
        cluster = _cluster_for(args.topology, size, args.seed, skew=0.5)
        cm = CostModel(cluster)
        _, vma = inject_fraction_alerts(cluster, 0.05, seed=args.seed)
        cands = sorted(vma)
        reg = regional_migration_round(cluster, cm, cands)
        cen = centralized_migration_round(cluster, cm, cands)
        rows.append(
            {
                "size": size,
                "sheriff_cost": reg.total_cost,
                "optimal_cost": cen.total_cost,
                "sheriff_space": reg.search_space,
                "central_space": cen.search_space,
            }
        )
    print(
        format_table(
            f"Sheriff vs centralized optimal on {args.topology} "
            "(cost and search space)",
            rows,
        )
    )
    return 0


def cmd_forecast(args: argparse.Namespace) -> int:
    from repro.analysis import format_table
    from repro.forecast import ARIMA, NARNET, DynamicModelSelector, mse
    from repro.forecast.selection import rolling_one_step
    from repro.traces import mixed_trace, nonlinear_trace, weekly_traffic_trace

    makers = {
        "weekly": lambda: weekly_traffic_trace(seed=args.seed),
        "nonlinear": lambda: nonlinear_trace(1000, seed=args.seed),
        "mixed": lambda: mixed_trace(seed=args.seed),
    }
    y = makers[args.trace]()
    train = int(args.train_frac * len(y))
    actual = y[train:]
    arima = rolling_one_step(lambda: ARIMA(1, 1, 1), y, train, refit_every=120)
    narnet = rolling_one_step(
        lambda: NARNET(ni=10, nh=16, restarts=1, seed=1, maxiter=150),
        y,
        train,
        refit_every=120,
    )
    selector = DynamicModelSelector(
        {
            "arima": lambda: ARIMA(1, 1, 1),
            "narnet": lambda: NARNET(ni=10, nh=16, restarts=1, seed=1, maxiter=150),
        },
        period=20,
        refit_every=120,
    )
    combined = selector.run(y, train).predictions
    print(
        format_table(
            f"One-step prediction MSE on the {args.trace} trace "
            f"(train {train} / test {len(actual)})",
            [
                {
                    "arima_mse": mse(actual, arima),
                    "narnet_mse": mse(actual, narnet),
                    "combined_mse": mse(actual, combined),
                }
            ],
        )
    )
    return 0


def cmd_traces(args: argparse.Namespace) -> int:
    from repro.analysis import format_table
    from repro.traces import ZopleCloudTraces

    suite = ZopleCloudTraces.generate(args.seed)
    rows = []
    for arr in (suite.cpu, suite.disk_io, suite.weekly_traffic):
        rows.append(
            {
                "mean": float(arr.mean()),
                "max": float(arr.max()),
                "std": float(arr.std()),
                "burst_ratio": float(arr.max() / max(np.median(arr), 1e-9)),
            }
        )
    print(
        format_table(
            "Synthetic ZopleCloud traces (rows: CPU %, disk I/O MB, weekly MB)",
            rows,
        )
    )
    return 0


def cmd_approx(args: argparse.Namespace) -> int:
    from repro.analysis import format_table
    from repro.kmedian import KMedianInstance, exact_kmedian, local_search

    rng = np.random.default_rng(args.seed)
    ratios = []
    for trial in range(args.trials):
        n = int(rng.integers(8, 14))
        k = int(rng.integers(2, min(5, n - 1)))
        inst = KMedianInstance.from_points(rng.random((n, 2)), k)
        _, opt = exact_kmedian(inst)
        res = local_search(inst, p=args.swap_size, seed=trial)
        if opt > 1e-12:
            ratios.append(res.cost / opt)
    bound = 3.0 + 2.0 / args.swap_size
    print(
        format_table(
            f"Local Search (p={args.swap_size}) vs exact optimum, "
            f"{args.trials} instances",
            [
                {
                    "max_ratio": float(np.max(ratios)),
                    "mean_ratio": float(np.mean(ratios)),
                    "bound": bound,
                }
            ],
        )
    )
    return 0 if max(ratios) <= bound else 1


def cmd_report(args: argparse.Namespace) -> int:
    from repro.report import generate_report

    text = generate_report(args.seed, fast=not args.full)
    if args.output:
        with open(args.output, "w") as fh:
            fh.write(text)
        print(f"wrote {args.output}")
    else:
        print(text)
    return 0


_COMMANDS = {
    "balance": cmd_balance,
    "sweep": cmd_sweep,
    "forecast": cmd_forecast,
    "traces": cmd_traces,
    "approx": cmd_approx,
    "report": cmd_report,
}


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except BrokenPipeError:
        # output piped into a pager/head that closed early — not an error
        import os

        try:
            sys.stdout.close()
        except Exception:
            pass
        os.dup2(os.open(os.devnull, os.O_WRONLY), 1)
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
