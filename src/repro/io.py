"""Persistence: save and reload fabrics and clusters.

Experiments worth publishing are worth replaying.  ``save_cluster`` /
``load_cluster`` round-trip the complete simulation state that is not
derivable from a seed — topology, inventory, live placement and the
dependency graph — as a single compressed ``.npz`` archive, so a run can
be snapshotted mid-experiment and resumed or inspected elsewhere.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

import numpy as np

from repro.cluster.cluster import Cluster
from repro.cluster.dependency import DependencyGraph
from repro.cluster.host import Host
from repro.cluster.placement import Placement
from repro.cluster.rack import Rack
from repro.cluster.vm import VM
from repro.errors import ConfigurationError
from repro.topology.base import NodeKind, Topology

__all__ = ["save_topology", "load_topology", "save_cluster", "load_cluster"]

PathLike = Union[str, Path]
_FORMAT_VERSION = 1


def _topology_payload(topo: Topology) -> dict:
    lt = topo.links
    return {
        "topo_kinds": topo.kinds,
        "topo_u": lt.u,
        "topo_v": lt.v,
        "topo_capacity": lt.capacity,
        "topo_distance": lt.distance,
        "topo_meta": np.frombuffer(
            json.dumps({"name": topo.name, "meta": topo.meta}).encode(), dtype=np.uint8
        ),
    }


def _topology_from_payload(data) -> Topology:
    info = json.loads(bytes(data["topo_meta"]).decode())
    kinds = [NodeKind(int(k)) for k in data["topo_kinds"]]
    topo = Topology(info["name"], kinds)
    topo.meta.update(info.get("meta", {}))
    for u, v, cap, dist in zip(
        data["topo_u"], data["topo_v"], data["topo_capacity"], data["topo_distance"]
    ):
        topo.add_link(int(u), int(v), float(cap), float(dist))
    return topo


def save_topology(topo: Topology, path: PathLike) -> None:
    """Write *topo* to a compressed ``.npz`` archive."""
    np.savez_compressed(
        Path(path), format_version=_FORMAT_VERSION, **_topology_payload(topo)
    )


def load_topology(path: PathLike) -> Topology:
    """Read a topology saved by :func:`save_topology`."""
    with np.load(Path(path)) as data:
        _check_version(data)
        return _topology_from_payload(data)


def save_cluster(cluster: Cluster, path: PathLike) -> None:
    """Write the full cluster state (topology, inventory, placement, G_d)."""
    pl = cluster.placement
    pairs = []
    for a in range(cluster.dependencies.num_vms):
        for b in cluster.dependencies.neighbors(a):
            if b > a:
                pairs.append((a, b))
    dep = (
        np.asarray(pairs, dtype=np.int64).reshape(-1, 2)
        if pairs
        else np.empty((0, 2), dtype=np.int64)
    )
    np.savez_compressed(
        Path(path),
        format_version=_FORMAT_VERSION,
        **_topology_payload(cluster.topology),
        vm_capacity=pl.vm_capacity,
        vm_value=pl.vm_value,
        vm_delay_sensitive=pl.vm_delay_sensitive,
        vm_host=pl.vm_host,
        host_capacity=pl.host_capacity,
        host_rack=pl.host_rack,
        tor_capacity=np.asarray(
            [r.tor_capacity for r in cluster.racks], dtype=np.int64
        ),
        dependency_pairs=dep,
    )


def load_cluster(path: PathLike) -> Cluster:
    """Reload a cluster saved by :func:`save_cluster`.

    The placement is revalidated on construction, so a corrupted archive
    (e.g. edited capacities) fails loudly instead of mis-simulating.
    """
    with np.load(Path(path)) as data:
        _check_version(data)
        topo = _topology_from_payload(data)
        host_rack = data["host_rack"]
        host_capacity = data["host_capacity"]
        hosts = [
            Host(host_id=i, rack=int(host_rack[i]), capacity=int(host_capacity[i]))
            for i in range(host_rack.shape[0])
        ]
        vm_capacity = data["vm_capacity"]
        vm_value = data["vm_value"]
        vm_delay = data["vm_delay_sensitive"]
        vms = [
            VM(
                vm_id=i,
                capacity=int(vm_capacity[i]),
                value=float(vm_value[i]),
                delay_sensitive=bool(vm_delay[i]),
            )
            for i in range(vm_capacity.shape[0])
        ]
        placement = Placement(vms, hosts, data["vm_host"])
        tor = data["tor_capacity"]
        if tor.shape[0] != topo.num_racks:
            raise ConfigurationError(
                f"archive has {tor.shape[0]} racks for a "
                f"{topo.num_racks}-rack topology"
            )
        racks = [
            Rack(
                rack_id=r,
                host_ids=[int(h) for h in np.nonzero(host_rack == r)[0]],
                tor_capacity=int(tor[r]),
            )
            for r in range(topo.num_racks)
        ]
        deps = DependencyGraph(
            len(vms),
            [(int(a), int(b)) for a, b in data["dependency_pairs"]],
        )
        return Cluster(
            topology=topo,
            racks=racks,
            hosts=hosts,
            vms=vms,
            placement=placement,
            dependencies=deps,
        )


def _check_version(data) -> None:
    v = int(data["format_version"])
    if v != _FORMAT_VERSION:
        raise ConfigurationError(
            f"unsupported archive format version {v} (expected {_FORMAT_VERSION})"
        )
