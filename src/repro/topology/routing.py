"""Equal-cost multipath (ECMP) utilities.

A Fat-Tree's raison d'être is path diversity: every inter-pod rack pair
has ``(k/2)²`` equal-cost paths, and production fabrics spread flows
across them by hashing (the paper's congestion citations — Hedera [1],
Mahout [8] — are about what happens when that hashing collides).  These
helpers enumerate the equal-cost path set so flow placement can model
ECMP instead of always picking one deterministic shortest path:

* :func:`equal_cost_paths` — all minimum-weight simple paths between two
  racks (bounded enumeration);
* :func:`ecmp_path` — deterministic hash-pick among them (what a real
  switch does with a flow tuple);
* :func:`path_diversity` — the equal-cost path count matrix, a fabric
  health metric.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np
from scipy.sparse import csr_matrix
from scipy.sparse.csgraph import dijkstra

from repro.errors import ConfigurationError, TopologyError
from repro.topology.base import Topology

__all__ = ["equal_cost_paths", "ecmp_path", "path_diversity"]

_MAX_PATHS = 256


def _weights_and_dist(topology: Topology, weight: str):
    lt = topology.links
    n = topology.num_nodes
    if weight == "hops":
        w = np.ones(len(lt))
    elif weight == "inverse_capacity":
        w = 1.0 / lt.capacity
    elif weight == "distance":
        w = lt.distance.copy()
        if (w <= 0).any():
            raise TopologyError("distance weights must be positive for routing")
    else:
        raise ConfigurationError(
            f"unknown weight {weight!r}; use hops/inverse_capacity/distance"
        )
    g = csr_matrix(
        (
            np.concatenate([w, w]),
            (np.concatenate([lt.u, lt.v]), np.concatenate([lt.v, lt.u])),
        ),
        shape=(n, n),
    )
    edge_w: Dict[Tuple[int, int], float] = {}
    for i in range(len(lt)):
        a, b = int(lt.u[i]), int(lt.v[i])
        edge_w[(a, b)] = edge_w[(b, a)] = float(w[i])
    return g, edge_w


def equal_cost_paths(
    topology: Topology,
    src: int,
    dst: int,
    *,
    weight: str = "hops",
    max_paths: int = _MAX_PATHS,
) -> List[List[int]]:
    """All minimum-weight simple paths ``src → dst``.

    Enumerates along the shortest-path DAG (a node/edge is on *some*
    shortest path iff ``d(src, u) + w(u, v) + d(v, dst) == d(src, dst)``),
    so only optimal paths are ever expanded.  Enumeration is capped at
    *max_paths*; hitting the cap raises rather than silently truncating.
    """
    n = topology.num_nodes
    if not (0 <= src < n and 0 <= dst < n):
        raise TopologyError(f"endpoints ({src}, {dst}) out of range 0..{n - 1}")
    if max_paths < 1:
        raise ConfigurationError(f"max_paths must be >= 1, got {max_paths}")
    if src == dst:
        return [[src]]
    g, edge_w = _weights_and_dist(topology, weight)
    d_src = dijkstra(g, directed=False, indices=src)
    d_dst = dijkstra(g, directed=False, indices=dst)
    total = d_src[dst]
    if not np.isfinite(total):
        raise TopologyError(f"node {dst} unreachable from {src}")

    paths: List[List[int]] = []
    tol = 1e-9

    def extend(node: int, prefix: List[int]) -> None:
        if node == dst:
            paths.append(prefix.copy())
            if len(paths) > max_paths:
                raise ConfigurationError(
                    f"more than {max_paths} equal-cost paths between "
                    f"{src} and {dst}; raise max_paths to enumerate them"
                )
            return
        for nxt in topology.neighbors(node):
            nxt = int(nxt)
            w = edge_w[(node, nxt)]
            if abs(d_src[node] + w + d_dst[nxt] - total) < tol:
                prefix.append(nxt)
                extend(nxt, prefix)
                prefix.pop()

    extend(src, [src])
    return paths


def ecmp_path(
    topology: Topology,
    src: int,
    dst: int,
    flow_key: int,
    *,
    weight: str = "hops",
) -> List[int]:
    """Deterministic hash-pick among the equal-cost paths.

    ``flow_key`` stands in for the 5-tuple a switch would hash; the same
    key always takes the same path (flowlet consistency), different keys
    spread across the ECMP group.
    """
    paths = equal_cost_paths(topology, src, dst, weight=weight)
    # Fibonacci hashing spreads small consecutive keys well
    idx = (int(flow_key) * 2654435761) % (2**32) % len(paths)
    return paths[idx]


def path_diversity(topology: Topology, *, weight: str = "hops") -> np.ndarray:
    """``(racks, racks)`` matrix of equal-cost path counts.

    Diagonal is 1 (the trivial path).  In a healthy ``k``-pod Fat-Tree the
    inter-pod entries equal ``(k/2)²`` and intra-pod entries ``k/2``.
    """
    r = topology.num_racks
    out = np.ones((r, r), dtype=np.int64)
    for a in range(r):
        for b in range(a + 1, r):
            c = len(equal_cost_paths(topology, a, b, weight=weight))
            out[a, b] = out[b, a] = c
    return out
