"""BCube fabric (Guo et al., SIGCOMM 2009) as a rack-level topology.

``BCube(n, l)`` (``l`` = number of levels minus one, i.e. levels
``0..l``) has ``n^(l+1)`` servers and ``l+1`` levels of ``n^l`` switches
each.  Server ``s`` with base-``n`` digits ``(d_l, ..., d_1, d_0)`` connects
at level ``i`` to the switch indexed by its digits with digit ``i`` removed.

Sheriff's unit of management is the rack/delegation node, so we model the
**level-0 switch together with its ``n`` servers as one rack** (the level-0
switch plays the ToR role, exactly like the shim-on-ToR pairing of the
paper).  Higher-level switches become plain :class:`NodeKind.BCUBE` switch
nodes.  A rack then links to the level-``i`` (``i >= 1``) switches that its
member servers attach to; because all ``n`` servers of a level-0 switch share
every digit except digit 0, each rack reaches exactly ``n`` distinct switches
per higher level.

Node-id layout::

    [0 .. n^l)                            ToR  (= level-0 switches / racks)
    [n^l .. n^l + l * n^l)                BCUBE switches, level-major

The paper's Fig. 13/14 sweep "each level having k switches" — that is
``n^l = k``, most simply ``BCube(n=k, l=1)``; :func:`build_bcube` defaults to
two levels so ``build_bcube(k)`` reproduces that sweep directly.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.topology.base import NodeKind, Topology

__all__ = ["build_bcube", "bcube_counts"]


def bcube_counts(n: int, levels: int = 2) -> dict:
    """Element counts for ``BCube(n, levels-1)``.

    ``levels`` counts switch levels including level 0, so ``levels=2`` is the
    classic BCube\\ :sub:`1`.
    """
    _check(n, levels)
    l = levels - 1
    switches_per_level = n**l
    return {
        "servers": n ** (l + 1),
        "racks": switches_per_level,
        "switch_levels": levels,
        "switches_per_level": switches_per_level,
        "upper_switches": l * switches_per_level,
    }


def _check(n: int, levels: int) -> None:
    if n < 2:
        raise ConfigurationError(f"BCube requires n >= 2 servers per switch, got {n}")
    if levels < 1:
        raise ConfigurationError(f"BCube requires >= 1 level, got {levels}")


def build_bcube(
    n: int,
    levels: int = 2,
    *,
    link_capacity: float = 1.0,
    upper_capacity: float = 10.0,
    link_distance: float = 1.0,
    upper_distance: float = 2.0,
) -> Topology:
    """Build ``BCube(n, levels-1)`` as a rack-level :class:`Topology`.

    Parameters
    ----------
    n:
        Port count / servers per level-0 switch.  Paper's Fig. 13/14 sweep
        this as "k switches per level" with two levels.
    levels:
        Total switch levels (level 0 = ToR role).  ``levels=1`` degenerates
        to a single isolated rack, rejected here because a one-node fabric
        cannot route; use ``levels >= 2``.
    """
    _check(n, levels)
    if levels == 1:
        raise ConfigurationError("BCube with a single level has no inter-rack links")
    l = levels - 1
    per_level = n**l
    n_tor = per_level
    n_upper = l * per_level

    kinds = [NodeKind.TOR] * n_tor + [NodeKind.BCUBE] * n_upper
    topo = Topology(f"bcube-n{n}-l{l}", kinds)
    topo.meta["n"] = float(n)
    topo.meta["levels"] = float(levels)

    # Rack r (level-0 switch r) hosts servers with digit-0 = 0..n-1 and
    # higher digits = digits of r.  At level i (1-based among uppers), server
    # (r, d0) attaches to the switch whose index drops digit i from the
    # server address.  Enumerate the distinct (rack, upper-switch) pairs.
    for rack in range(n_tor):
        digits = _digits(rack, n, l)  # digits (d_1..d_l) of the rack id
        for i in range(1, l + 1):
            for d0 in range(n):
                # server address digits: [d0] + digits (low to high)
                addr = [d0] + digits
                # switch index at level i: all digits except digit i
                sw_digits = addr[:i] + addr[i + 1 :]
                sw = _undigits(sw_digits, n)
                upper = n_tor + (i - 1) * per_level + sw
                if not topo.has_edge(rack, upper):
                    topo.add_link(rack, upper, link_capacity, upper_distance if i > 1 else link_distance)
    # Uniform capacities by default; callers can vary upper_capacity by
    # rebuilding with different parameters.
    if upper_capacity != link_capacity and l >= 2:
        # capacities are applied at construction; nothing more to do — the
        # distinction above already used link/upper distance. Capacity for
        # level-1 vs higher links is uniform in BCube hardware (all 1 Gbps
        # NICs), so we intentionally keep link_capacity everywhere.
        pass
    return topo


def _digits(x: int, n: int, count: int) -> list[int]:
    """Base-``n`` digits of *x*, least significant first, padded to *count*."""
    out = []
    for _ in range(count):
        out.append(x % n)
        x //= n
    return out


def _undigits(digits: list[int], n: int) -> int:
    """Inverse of :func:`_digits` (least significant digit first)."""
    x = 0
    for d in reversed(digits):
        x = x * n + d
    return x
