"""k-ary Fat-Tree fabric (Al-Fares et al., SIGCOMM 2008).

A ``k``-pod Fat-Tree has:

* ``k`` pods, each with ``k/2`` edge (ToR) switches and ``k/2`` aggregation
  switches;
* ``(k/2)^2`` core switches;
* every ToR connects to all ``k/2`` aggregation switches in its pod;
* aggregation switch ``a`` (index ``j`` within its pod) connects to core
  switches ``j*(k/2) .. (j+1)*(k/2)-1``.

Node-id layout (ToR prefix is required by :class:`~repro.topology.base.Topology`)::

    [0 .. k*k/2)                        ToR   (pod-major order)
    [k*k/2 .. k*k)                      AGG   (pod-major order)
    [k*k .. k*k + (k/2)^2)              CORE

The paper's simulation settings (Sec. VI-B) give aggregation↔core links an
available bandwidth of 10 and ToR↔aggregation links 1; those are the
defaults here.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import ConfigurationError
from repro.topology.base import NodeKind, Topology

__all__ = ["build_fattree", "fattree_counts"]


def fattree_counts(k: int) -> dict:
    """Closed-form element counts for a k-pod Fat-Tree.

    Returns a dict with ``tor``, ``agg``, ``core``, ``links`` and
    ``hosts_max`` (``k^3/4``, the canonical host capacity).
    """
    _check_k(k)
    half = k // 2
    tor = k * half
    agg = k * half
    core = half * half
    # each ToR has k/2 uplinks; each agg has k/2 uplinks to core
    links = tor * half + agg * half
    return {
        "tor": tor,
        "agg": agg,
        "core": core,
        "links": links,
        "hosts_max": half * tor,
    }


def _check_k(k: int) -> None:
    if k < 2 or k % 2 != 0:
        raise ConfigurationError(f"Fat-Tree requires an even k >= 2, got {k}")


def build_fattree(
    k: int,
    *,
    tor_agg_capacity: float = 1.0,
    agg_core_capacity: float = 10.0,
    tor_agg_distance: float = 1.0,
    agg_core_distance: float = 2.0,
) -> Topology:
    """Build a ``k``-pod Fat-Tree :class:`Topology`.

    Parameters
    ----------
    k:
        Number of pods (even, >= 2).  The paper sweeps ``k`` from 8 to 48.
    tor_agg_capacity, agg_core_capacity:
        Link capacities ``C(e)``; defaults follow the paper's simulation
        (1 for ToR↔agg, 10 for agg↔core).
    tor_agg_distance, agg_core_distance:
        Physical distances ``D(e)`` used by the dependency cost.  Intra-pod
        cabling is shorter than pod↔core runs, hence the 1/2 defaults.
    """
    _check_k(k)
    half = k // 2
    n_tor = k * half
    n_agg = k * half
    n_core = half * half

    kinds = (
        [NodeKind.TOR] * n_tor + [NodeKind.AGG] * n_agg + [NodeKind.CORE] * n_core
    )
    topo = Topology(f"fattree-k{k}", kinds)
    topo.meta["k"] = float(k)
    topo.meta["pods"] = float(k)

    agg_base = n_tor
    core_base = n_tor + n_agg

    for pod in range(k):
        for i in range(half):  # ToR i of this pod
            tor = pod * half + i
            for j in range(half):  # agg j of this pod
                agg = agg_base + pod * half + j
                topo.add_link(tor, agg, tor_agg_capacity, tor_agg_distance)
        for j in range(half):  # agg j uplinks to its core group
            agg = agg_base + pod * half + j
            for c in range(half):
                core = core_base + j * half + c
                topo.add_link(agg, core, agg_core_capacity, agg_core_distance)
    return topo
