"""Core topology data structures.

A :class:`Topology` is the wired network graph ``G_r = (V ∪ S, E_r)`` of the
paper: delegation nodes (ToR switches with their shim layer, one per rack)
plus aggregation/core/BCube switches, and the physical links between them.

The representation is array-of-struct-of-arrays: node kinds live in one numpy
array, links in a :class:`LinkTable` of parallel numpy arrays.  This keeps the
hot kernels (Floyd–Warshall, per-edge cost evaluation, bandwidth accounting)
fully vectorized, per the HPC guide's "vectorize the loops, keep views not
copies" discipline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import IntEnum
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import TopologyError

__all__ = ["NodeKind", "LinkTable", "Topology"]


class NodeKind(IntEnum):
    """Role of a node in the wired graph.

    ``TOR`` nodes are the delegation nodes ``v_i`` of the paper — a ToR
    switch fused with its rack's shim layer.  Every other kind is a plain
    switch ``s_j``.
    """

    TOR = 0
    AGG = 1
    CORE = 2
    BCUBE = 3  # a BCube level-(>=1) switch


@dataclass
class LinkTable:
    """Typed, parallel-array link storage.

    Attributes
    ----------
    u, v:
        Endpoint node ids (undirected; stored once with ``u < v`` not
        required but deduplicated by :meth:`Topology.add_link`).
    capacity:
        Maximum capacity ``C(e)`` of each link, in the paper's abstract
        bandwidth units (Gbps in the prose, ``10``/``1`` in the simulation).
    distance:
        Physical distance ``D(e)`` used by the dependency cost.
    """

    u: np.ndarray
    v: np.ndarray
    capacity: np.ndarray
    distance: np.ndarray

    def __len__(self) -> int:
        return int(self.u.shape[0])

    @classmethod
    def from_lists(
        cls,
        u: Sequence[int],
        v: Sequence[int],
        capacity: Sequence[float],
        distance: Sequence[float],
    ) -> "LinkTable":
        return cls(
            u=np.asarray(u, dtype=np.int64),
            v=np.asarray(v, dtype=np.int64),
            capacity=np.asarray(capacity, dtype=np.float64),
            distance=np.asarray(distance, dtype=np.float64),
        )


class Topology:
    """A DCN wired graph with typed nodes and capacitated links.

    Nodes are integers ``0..num_nodes-1``.  By convention the first
    ``num_racks`` ids are the ToR/delegation nodes, so rack index and ToR
    node id coincide — the simulator relies on this.

    Parameters
    ----------
    name:
        Human-readable fabric name, e.g. ``"fattree-k8"``.
    kinds:
        Per-node :class:`NodeKind` values; ToR nodes must form a prefix.
    """

    def __init__(self, name: str, kinds: Sequence[NodeKind]) -> None:
        self.name = name
        self.kinds = np.asarray([int(k) for k in kinds], dtype=np.int8)
        if self.kinds.ndim != 1 or self.kinds.shape[0] == 0:
            raise TopologyError("a topology needs at least one node")
        tor_mask = self.kinds == int(NodeKind.TOR)
        n_tor = int(tor_mask.sum())
        if n_tor == 0:
            raise TopologyError("a topology needs at least one ToR node")
        if not tor_mask[:n_tor].all():
            raise TopologyError("ToR nodes must occupy node ids 0..num_racks-1")
        self._num_racks = n_tor
        self._u: List[int] = []
        self._v: List[int] = []
        self._cap: List[float] = []
        self._dist: List[float] = []
        self._edge_index: Dict[Tuple[int, int], int] = {}
        self._links: Optional[LinkTable] = None
        self._adj: Optional[List[np.ndarray]] = None
        self.meta: Dict[str, float] = {}

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    def add_link(self, u: int, v: int, capacity: float, distance: float) -> int:
        """Add an undirected link; returns its edge id.

        Duplicate ``(u, v)`` pairs raise: the fabrics built here are simple
        graphs and a silent duplicate would double-count bandwidth.
        """
        n = self.num_nodes
        if not (0 <= u < n and 0 <= v < n):
            raise TopologyError(f"link endpoints ({u}, {v}) out of range 0..{n - 1}")
        if u == v:
            raise TopologyError(f"self-loop on node {u}")
        if capacity <= 0:
            raise TopologyError(f"link ({u}, {v}) has non-positive capacity {capacity}")
        if distance < 0:
            raise TopologyError(f"link ({u}, {v}) has negative distance {distance}")
        key = (u, v) if u < v else (v, u)
        if key in self._edge_index:
            raise TopologyError(f"duplicate link {key}")
        eid = len(self._u)
        self._edge_index[key] = eid
        self._u.append(u)
        self._v.append(v)
        self._cap.append(float(capacity))
        self._dist.append(float(distance))
        self._links = None
        self._adj = None
        return eid

    # ------------------------------------------------------------------ #
    # views
    # ------------------------------------------------------------------ #
    @property
    def num_nodes(self) -> int:
        return int(self.kinds.shape[0])

    @property
    def num_racks(self) -> int:
        """Number of ToR/delegation nodes (== number of racks)."""
        return self._num_racks

    @property
    def num_links(self) -> int:
        return len(self._u)

    @property
    def links(self) -> LinkTable:
        """The (cached) immutable link table."""
        if self._links is None:
            self._links = LinkTable.from_lists(self._u, self._v, self._cap, self._dist)
        return self._links

    def edge_id(self, u: int, v: int) -> int:
        """Edge id of link ``(u, v)``; raises :class:`TopologyError` if absent."""
        key = (u, v) if u < v else (v, u)
        try:
            return self._edge_index[key]
        except KeyError:
            raise TopologyError(f"no link between nodes {u} and {v}") from None

    def has_edge(self, u: int, v: int) -> bool:
        key = (u, v) if u < v else (v, u)
        return key in self._edge_index

    def neighbors(self, node: int) -> np.ndarray:
        """Sorted array of nodes adjacent to *node*."""
        if self._adj is None:
            self._build_adjacency()
        assert self._adj is not None
        return self._adj[node]

    def _build_adjacency(self) -> None:
        adj: List[List[int]] = [[] for _ in range(self.num_nodes)]
        for u, v in zip(self._u, self._v):
            adj[u].append(v)
            adj[v].append(u)
        self._adj = [np.asarray(sorted(a), dtype=np.int64) for a in adj]

    def nodes_of_kind(self, kind: NodeKind) -> np.ndarray:
        """All node ids with the given kind."""
        return np.nonzero(self.kinds == int(kind))[0]

    def racks(self) -> np.ndarray:
        """Node ids of all delegation/ToR nodes (== ``range(num_racks)``)."""
        return np.arange(self._num_racks, dtype=np.int64)

    def switches(self) -> np.ndarray:
        """Node ids of all non-ToR switches."""
        return np.arange(self._num_racks, self.num_nodes, dtype=np.int64)

    # ------------------------------------------------------------------ #
    # matrices
    # ------------------------------------------------------------------ #
    def adjacency_matrix(self, weight: str = "distance") -> np.ndarray:
        """Dense symmetric weight matrix with ``inf`` for non-edges.

        ``weight`` selects the link attribute (``"distance"``,
        ``"capacity"``, or ``"hops"`` for unit weights).
        """
        lt = self.links
        n = self.num_nodes
        mat = np.full((n, n), np.inf, dtype=np.float64)
        np.fill_diagonal(mat, 0.0)
        if weight == "distance":
            w = lt.distance
        elif weight == "capacity":
            w = lt.capacity
        elif weight == "hops":
            w = np.ones(len(lt), dtype=np.float64)
        else:
            raise TopologyError(f"unknown weight attribute {weight!r}")
        mat[lt.u, lt.v] = w
        mat[lt.v, lt.u] = w
        return mat

    def to_networkx(self):
        """Export as a :class:`networkx.Graph` (for validation/analysis)."""
        import networkx as nx

        g = nx.Graph(name=self.name)
        for i in range(self.num_nodes):
            g.add_node(i, kind=NodeKind(int(self.kinds[i])).name)
        lt = self.links
        for eid in range(len(lt)):
            g.add_edge(
                int(lt.u[eid]),
                int(lt.v[eid]),
                capacity=float(lt.capacity[eid]),
                distance=float(lt.distance[eid]),
            )
        return g

    def degree(self) -> np.ndarray:
        """Per-node degree vector."""
        lt = self.links
        deg = np.zeros(self.num_nodes, dtype=np.int64)
        np.add.at(deg, lt.u, 1)
        np.add.at(deg, lt.v, 1)
        return deg

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Topology({self.name!r}, nodes={self.num_nodes}, "
            f"racks={self.num_racks}, links={self.num_links})"
        )
