"""Custom fabric construction.

Sheriff "can be easily implemented in other DCN topologies" (Sec. II-A).
These builders let users bring their own fabric — an explicit edge list
or an annotated :mod:`networkx` graph — and get a validated
:class:`~repro.topology.base.Topology` the rest of the library consumes.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Sequence, Tuple, Union

from repro.errors import TopologyError
from repro.topology.base import NodeKind, Topology
from repro.topology.validate import validate_topology

__all__ = ["from_edge_list", "from_networkx"]

EdgeSpec = Tuple[int, int, float, float]  # (u, v, capacity, distance)


def from_edge_list(
    kinds: Sequence[Union[NodeKind, str]],
    edges: Iterable[EdgeSpec],
    *,
    name: str = "custom",
    validate: bool = True,
) -> Topology:
    """Build a topology from node kinds and ``(u, v, capacity, distance)`` rows.

    ``kinds`` accepts :class:`NodeKind` values or their names
    (case-insensitive); ToR nodes must come first, as everywhere else.
    """
    parsed = []
    for k in kinds:
        if isinstance(k, NodeKind):
            parsed.append(k)
        else:
            try:
                parsed.append(NodeKind[str(k).upper()])
            except KeyError:
                raise TopologyError(
                    f"unknown node kind {k!r}; expected one of "
                    f"{[n.name for n in NodeKind]}"
                ) from None
    topo = Topology(name, parsed)
    for row in edges:
        if len(row) != 4:
            raise TopologyError(
                f"edge rows must be (u, v, capacity, distance), got {row!r}"
            )
        u, v, cap, dist = row
        topo.add_link(int(u), int(v), float(cap), float(dist))
    if validate:
        validate_topology(topo)
    return topo


def from_networkx(
    graph,
    *,
    kind_attr: str = "kind",
    capacity_attr: str = "capacity",
    distance_attr: str = "distance",
    default_capacity: float = 1.0,
    default_distance: float = 1.0,
    validate: bool = True,
) -> Topology:
    """Convert an annotated :class:`networkx.Graph`.

    Nodes must be integers ``0..n-1`` with a *kind* attribute; ToR nodes
    must occupy the id prefix.  Missing edge attributes fall back to the
    defaults.  This inverts :meth:`Topology.to_networkx`.
    """
    n = graph.number_of_nodes()
    if sorted(graph.nodes) != list(range(n)):
        raise TopologyError("nodes must be exactly the integers 0..n-1")
    kinds = []
    for i in range(n):
        attrs = graph.nodes[i]
        if kind_attr not in attrs:
            raise TopologyError(f"node {i} missing the {kind_attr!r} attribute")
        kinds.append(attrs[kind_attr])
    edges = (
        (
            u,
            v,
            data.get(capacity_attr, default_capacity),
            data.get(distance_attr, default_distance),
        )
        for u, v, data in graph.edges(data=True)
    )
    return from_edge_list(
        kinds, edges, name=graph.name or "custom", validate=validate
    )
