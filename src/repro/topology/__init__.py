"""DCN topology substrate: Fat-Tree and BCube fabrics.

The paper evaluates Sheriff on a switch-centric topology (Fat-Tree, Al-Fares
et al., SIGCOMM'08) and a server-centric one (BCube).  This subpackage builds
both as :class:`~repro.topology.base.Topology` objects: a typed node table, a
typed link table with per-link capacity/distance, and vectorized all-pairs
shortest-path kernels used by the migration cost model.
"""

from repro.topology.base import LinkTable, NodeKind, Topology
from repro.topology.fattree import build_fattree
from repro.topology.bcube import build_bcube
from repro.topology.leafspine import build_leaf_spine, leaf_spine_counts
from repro.topology.shortest_paths import (
    floyd_warshall,
    floyd_warshall_with_paths,
    reconstruct_path,
)
from repro.topology.layout import rack_positions, rack_distance_matrix
from repro.topology.validate import validate_topology
from repro.topology.custom import from_edge_list, from_networkx
from repro.topology.routing import ecmp_path, equal_cost_paths, path_diversity

__all__ = [
    "NodeKind",
    "LinkTable",
    "Topology",
    "build_fattree",
    "build_bcube",
    "build_leaf_spine",
    "leaf_spine_counts",
    "floyd_warshall",
    "floyd_warshall_with_paths",
    "reconstruct_path",
    "rack_positions",
    "rack_distance_matrix",
    "validate_topology",
    "from_edge_list",
    "from_networkx",
    "equal_cost_paths",
    "ecmp_path",
    "path_diversity",
]
