"""Leaf-spine (2-tier Clos) fabric builder.

The dominant post-Fat-Tree enterprise fabric: every leaf (ToR) connects
to every spine, giving two-hop any-to-any reachability and ``spines``
equal-cost paths between any pair of racks.  Sheriff runs on it
unchanged — and because every leaf is a one-hop neighbor of every other,
the regional migration horizon covers the whole fabric (the regional ≈
centralized regime, like a two-level BCube).
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.topology.base import NodeKind, Topology

__all__ = ["build_leaf_spine", "leaf_spine_counts"]


def leaf_spine_counts(leaves: int, spines: int) -> dict:
    """Closed-form element counts."""
    _check(leaves, spines)
    return {
        "leaves": leaves,
        "spines": spines,
        "links": leaves * spines,
        "equal_cost_paths": spines,
    }


def _check(leaves: int, spines: int) -> None:
    if leaves < 2:
        raise ConfigurationError(f"need >= 2 leaves, got {leaves}")
    if spines < 1:
        raise ConfigurationError(f"need >= 1 spine, got {spines}")


def build_leaf_spine(
    leaves: int,
    spines: int,
    *,
    link_capacity: float = 10.0,
    link_distance: float = 1.0,
) -> Topology:
    """Build a full-mesh leaf-spine :class:`Topology`.

    Parameters
    ----------
    leaves:
        Number of ToR (leaf) switches — the racks.
    spines:
        Number of spine switches; also the ECMP fan-out.
    link_capacity:
        Uniform leaf↔spine link capacity (10 = the 10 Gbps uplinks of the
        paper's rack model).
    """
    _check(leaves, spines)
    kinds = [NodeKind.TOR] * leaves + [NodeKind.AGG] * spines
    topo = Topology(f"leafspine-{leaves}x{spines}", kinds)
    topo.meta["leaves"] = float(leaves)
    topo.meta["spines"] = float(spines)
    for leaf in range(leaves):
        for s in range(spines):
            topo.add_link(leaf, leaves + s, link_capacity, link_distance)
    return topo
